// Package lvm_test holds the benchmark harness: one testing.B benchmark
// per table and figure of the paper's evaluation (Section 4), plus
// ablation benches for the design choices called out in DESIGN.md.
//
// Each benchmark drives the same experiment code as cmd/lvmbench and
// reports the paper's metric via b.ReportMetric (simulated cycles,
// speedups, trans/sec), so `go test -bench=. -benchmem` regenerates the
// evaluation. Wall-clock ns/op measures the simulator, not the modeled
// machine; the custom metrics are the reproduction.
package lvm_test

import (
	"testing"

	"lvm/internal/experiments"
	"lvm/internal/timewarp"
	"lvm/internal/tpca"
)

// BenchmarkTable2 checks the basic machine operations (Table 2).
func BenchmarkTable2(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table2()
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.TotalCycle), r.Operation[:4]+"_total_cycles")
	}
}

// BenchmarkTable3SingleWrite measures the single recoverable write
// (Table 3, line 1: paper 3515 vs 16 cycles).
func BenchmarkTable3SingleWrite(b *testing.B) {
	var res experiments.Table3Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Table3(60)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.RVMWriteCycles, "rvm_cycles/write")
	b.ReportMetric(res.RLVMWriteCycles, "rlvm_cycles/write")
}

// BenchmarkTable3TPCA measures TPC-A throughput (Table 3, line 2: paper
// 418 vs 552 trans/sec).
func BenchmarkTable3TPCA(b *testing.B) {
	cfg := tpca.DefaultConfig()
	cfg.Txns = 200
	var rvmTPS, rlvmTPS float64
	for i := 0; i < b.N; i++ {
		rv, _, err := tpca.RunRVM(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rl, _, err := tpca.RunRLVM(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rvmTPS, rlvmTPS = rv.TPS, rl.TPS
	}
	b.ReportMetric(rvmTPS, "rvm_tps")
	b.ReportMetric(rlvmTPS, "rlvm_tps")
}

// BenchmarkFig7 measures the headline Figure 7 point and the speedup
// trend over compute grain (LVM vs copy-based checkpointing).
func BenchmarkFig7(b *testing.B) {
	var sSmallC, sLargeC float64
	for i := 0; i < b.N; i++ {
		var err error
		sSmallC, _, _, err = timewarp.Speedup(256, 256, 8, 200)
		if err != nil {
			b.Fatal(err)
		}
		sLargeC, _, _, err = timewarp.Speedup(4096, 256, 8, 200)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sSmallC, "speedup_c256")
	b.ReportMetric(sLargeC, "speedup_c4096")
}

// BenchmarkFig8 measures the fraction-written sweep endpoints for the
// s=256, c=2048 curve.
func BenchmarkFig8(b *testing.B) {
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		var err error
		lo, _, _, err = timewarp.Speedup(2048, 256, 8, 200) // 1/8 written
		if err != nil {
			b.Fatal(err)
		}
		hi, _, _, err = timewarp.Speedup(2048, 256, 64, 200) // fully written
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lo, "speedup_frac0.125")
	b.ReportMetric(hi, "speedup_frac1.0")
}

// BenchmarkFig9 measures resetDeferredCopy vs bcopy for the 512 KiB
// segment (Figure 9, middle panel).
func BenchmarkFig9(b *testing.B) {
	var points []experiments.Fig9Point
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.Fig9()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.SegmentBytes == 512<<10 && (p.DirtyKB == 64 || p.DirtyKB == 512) {
			b.ReportMetric(float64(p.ResetCycles)/1000, "reset_kcycles_dirty"+itoa(int(p.DirtyKB)))
		}
		if p.SegmentBytes == 512<<10 && p.DirtyKB == 0 {
			b.ReportMetric(float64(p.BcopyCycles)/1000, "bcopy_kcycles")
		}
	}
	b.ReportMetric(experiments.Crossover(points, 512<<10), "crossover_fraction")
}

// BenchmarkFig10 measures the per-write cost with and without logging for
// the 4-write cluster at moderate compute grain.
func BenchmarkFig10(b *testing.B) {
	var points []experiments.Fig10Point
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.Fig10(600)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.Cluster == 4 && p.Compute == 400 {
			name := "unlogged_cycles/write"
			if p.Logged {
				name = "logged_cycles/write"
			}
			b.ReportMetric(p.CyclesPerWrite, name)
		}
	}
}

// BenchmarkFig11 measures the total per-iteration cost at the overload
// point (c=0) and past the threshold (c=45).
func BenchmarkFig11(b *testing.B) {
	var points []experiments.Fig11Point
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.Fig11([]uint64{0, 45}, 2000)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.Compute == 0 {
			b.ReportMetric(p.LoggedCyclesIter, "logged_cycles/iter_c0")
		}
		if p.Compute == 45 {
			b.ReportMetric(p.LoggedCyclesIter, "logged_cycles/iter_c45")
		}
	}
}

// BenchmarkFig12 measures the overload-event rate at c=0 (Figure 12).
func BenchmarkFig12(b *testing.B) {
	var points []experiments.Fig11Point
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.Fig11([]uint64{0, 27}, 3000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(points[0].OverloadsPer1000, "overloads/1000iter_c0")
	b.ReportMetric(points[1].OverloadsPer1000, "overloads/1000iter_c27")
}

// BenchmarkAblationLoggerModels compares the prototype bus logger against
// the Section 4.6 on-chip design.
func BenchmarkAblationLoggerModels(b *testing.B) {
	var pts []experiments.LoggerModelPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.LoggerModels([]uint64{50}, 2000)
	}
	b.ReportMetric(pts[0].PrototypeWrite, "prototype_cycles/write")
	b.ReportMetric(pts[0].OnChipWrite, "onchip_cycles/write")
	b.ReportMetric(pts[0].UnloggedWrite, "unlogged_cycles/write")
}

// BenchmarkAblationConsistency compares log-based consistency with Munin
// twin/diff.
func BenchmarkAblationConsistency(b *testing.B) {
	var pts []experiments.ConsistencyPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Consistency(200)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pts[0].MuninCycles), "munin_cycles")
	b.ReportMetric(float64(pts[0].LVMCycles), "lvm_cycles")
	b.ReportMetric(float64(pts[1].LVMBytes)/float64(pts[1].MuninBytes), "lvm_bytes_ratio_repeated")
}

// BenchmarkAblationSetRangeAmortization compares per-write set_range,
// amortized set_range, and RLVM.
func BenchmarkAblationSetRangeAmortization(b *testing.B) {
	var r experiments.SetRangeResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.SetRangeAblation(64)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.PerWriteRVM, "perwrite_cycles")
	b.ReportMetric(r.AmortizedRVM, "amortized_cycles")
	b.ReportMetric(r.RLVM, "rlvm_cycles")
}

// BenchmarkAblationCheckpointStyles compares deferred-copy rollback with
// Li/Appel write-protect checkpointing.
func BenchmarkAblationCheckpointStyles(b *testing.B) {
	var pts []experiments.CheckpointStylePoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.CheckpointStyles(64, []int{4})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pts[0].DeferredCycles), "deferred_cycles")
	b.ReportMetric(float64(pts[0].WriteProtCycles), "writeprotect_cycles")
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationOnChipFullStack compares the Section 4.6 kernel with
// the prototype through the complete VM stack.
func BenchmarkAblationOnChipFullStack(b *testing.B) {
	var pts []experiments.FullStackPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.FullStackOnChip([]uint64{50}, 1500)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].PrototypeIter, "prototype_cycles/iter")
	b.ReportMetric(pts[0].OnChipIter, "onchip_cycles/iter")
	b.ReportMetric(pts[0].UnloggedIter, "unlogged_cycles/iter")
}

// BenchmarkExtensionParallelSim runs complete 4-scheduler optimistic
// simulations (rollbacks included) under both state savers.
func BenchmarkExtensionParallelSim(b *testing.B) {
	var pts []experiments.ParallelSimResult
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.ParallelSim(4, 200, true)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pts[0].Elapsed), "lvm_elapsed_cycles")
	b.ReportMetric(float64(pts[2].Elapsed), "copy_elapsed_cycles")
	b.ReportMetric(float64(pts[0].Rollbacks), "lvm_rollbacks")
}

// BenchmarkSimulatorThroughput measures the host-side speed of the
// simulator itself: simulated logged stores per wall-clock second. This
// is about the Go implementation, not the modeled machine. The warmed
// steady state is allocation-free (TestLoggedStoreZeroAlloc pins that).
func BenchmarkSimulatorThroughput(b *testing.B) {
	sl, err := experiments.NewStoreLoop()
	if err != nil {
		b.Fatal(err)
	}
	if err := sl.Warm(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sl.Step()
	}
	b.StopTimer()
	if err := sl.Err(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkExtensionOODB measures the object-database speedup at short
// and long transactions (the Section 4.2 prediction that longer
// transactions benefit more from LVM).
func BenchmarkExtensionOODB(b *testing.B) {
	var pts []experiments.OODBPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.OODB([]int{1, 32}, 25)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].Speedup, "speedup_txnlen1")
	b.ReportMetric(pts[1].Speedup, "speedup_txnlen32")
}
