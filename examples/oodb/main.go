// OODB: a memory-mapped object database over recoverable logged virtual
// memory — the application the paper's introduction motivates:
//
// "Object-oriented database management systems can also use logged
// virtual memory to log updates to the objects mapped into a virtual
// memory region... persistent objects supporting atomic transactions can
// be read and written in virtual memory with the same efficiency as
// standard C++ objects."
//
// A small order database (objects + hash index, all in one recoverable
// region) processes order transactions under RLVM, survives a crash, and
// is then compared against the RVM baseline as transactions grow longer.
package main

import (
	"fmt"
	"log"

	"lvm/internal/core"
	"lvm/internal/experiments"
	"lvm/internal/oodb"
	"lvm/internal/ramdisk"
)

func main() {
	disk := ramdisk.New()
	cfg := oodb.DefaultConfig()

	sys := core.NewSystem(core.DefaultConfig())
	p := sys.NewProcess(0, sys.NewAddressSpace())
	db, err := oodb.OpenRLVM(sys, p, cfg, disk)
	if err != nil {
		log.Fatal(err)
	}

	// Create some orders: plain stores inside a transaction; the LVM log
	// is the only write-tracking machinery anywhere.
	must(db.Begin())
	for i := uint32(0); i < 5; i++ {
		if _, err := db.Create(9000+i, []uint32{i * 11, 100 + i, 0}); err != nil {
			log.Fatal(err)
		}
	}
	must(db.Commit())

	// A business transaction: mark two orders shipped; abort another
	// attempted change.
	must(db.Begin())
	for _, key := range []uint32{9001, 9003} {
		id, ok := db.Lookup(key)
		if !ok {
			log.Fatalf("order %d missing", key)
		}
		must(db.Update(id, 2, 1)) // shipped = 1
	}
	must(db.Commit())

	must(db.Begin())
	id, _ := db.Lookup(9000)
	must(db.Update(id, 2, 1))
	must(db.Abort()) // changed our mind — deferred copy rolls it back

	fmt.Println("orders after commits and an abort:")
	for i := uint32(0); i < 5; i++ {
		oid, _ := db.Lookup(9000 + i)
		fmt.Printf("  order %d: qty=%-3d cust=%-3d shipped=%d\n",
			9000+i, db.Field(oid, 0), db.Field(oid, 1), db.Field(oid, 2))
	}

	// Crash and recover on a new machine: the RAM disk is all that
	// survives.
	sys2 := core.NewSystem(core.DefaultConfig())
	p2 := sys2.NewProcess(0, sys2.NewAddressSpace())
	db2, err := oodb.OpenRLVM(sys2, p2, cfg, disk)
	if err != nil {
		log.Fatal(err)
	}
	oid, ok := db2.Lookup(9003)
	if !ok || db2.Field(oid, 2) != 1 {
		log.Fatal("recovery lost the shipped flag")
	}
	fmt.Println("\nrecovered after crash: order 9003 still shipped ✓")

	// The Section 4.2 prediction, measured: longer transactions widen
	// RLVM's advantage over set_range-based RVM.
	fmt.Println("\nRLVM speedup vs transaction length (objects touched per txn):")
	pts, err := experiments.OODB([]int{1, 4, 16}, 30)
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range pts {
		fmt.Printf("  %2d objects/txn: RVM %5.0f tps, RLVM %5.0f tps → %.2fx\n",
			pt.TouchesPerTxn, pt.RVMTPS, pt.RLVMTPS, pt.Speedup)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
