// Timewarp: optimistic parallel simulation over LVM (Section 2.4 and
// Figure 3 of the paper).
//
// Three schedulers run a synthetic discrete-event workload optimistically:
// each keeps its objects in a working segment whose deferred-copy source
// is a checkpoint segment, with every update logged. When a straggler
// event arrives, the scheduler rolls back with resetDeferredCopy() plus
// roll-forward from the log; CULT advances checkpoints as GVT progresses.
//
// The example runs the same workload (a) sequentially, (b) optimistically
// with LVM state saving, and (c) optimistically with conventional
// copy-based state saving, verifies all three agree, and prints the
// rollback statistics and state-saving costs.
package main

import (
	"fmt"
	"log"

	"lvm/internal/timewarp"
)

const (
	totalObjects = 12
	horizon      = 300
)

func build(scheds int, saver timewarp.SaverKind) *timewarp.Sim {
	cfg := timewarp.Config{
		Schedulers:          scheds,
		ObjectsPerScheduler: totalObjects / scheds,
		ObjectBytes:         128,
		Saver:               saver,
		GVTInterval:         32,
	}
	h := timewarp.Synthetic{
		Compute:     600,
		Writes:      6,
		ObjectWords: 32,
		Horizon:     horizon,
		MaxDelay:    6,
		NumObjects:  totalObjects,
	}
	sim, err := timewarp.New(cfg, h)
	if err != nil {
		log.Fatal(err)
	}
	for i := uint32(0); i < totalObjects; i++ {
		sim.Inject(0, i, 42+i)
	}
	return sim
}

func checksum(s *timewarp.Sim) uint32 {
	var sum uint32
	for obj := uint32(0); obj < totalObjects; obj++ {
		for w := 0; w < 32; w++ {
			sum = sum*31 + s.ObjectWord(obj, w)
		}
	}
	return sum
}

func main() {
	seq := build(1, timewarp.SaverLVM)
	seqCycles := seq.Run(timewarp.PolicyGlobalOrder)
	fmt.Printf("sequential:        %7d events, %9d cycles, checksum %08x\n",
		seq.TotalStats().Events, seqCycles, checksum(seq))

	lvm := build(3, timewarp.SaverLVM)
	lvmCycles := lvm.Run(timewarp.PolicyRoundRobin)
	st := lvm.TotalStats()
	fmt.Printf("optimistic (LVM):  %7d events, %9d cycles, checksum %08x\n",
		st.Events, lvmCycles, checksum(lvm))
	fmt.Printf("                   %d rollbacks undid %d events; %d anti-messages (%d annihilated); %d records replayed\n",
		st.Rollbacks, st.RolledBack, st.AntisSent, st.Annihilated, st.Replayed)

	cp := build(3, timewarp.SaverCopy)
	cpCycles := cp.Run(timewarp.PolicyRoundRobin)
	cst := cp.TotalStats()
	fmt.Printf("optimistic (copy): %7d events, %9d cycles, checksum %08x\n",
		cst.Events, cpCycles, checksum(cp))

	if checksum(seq) != checksum(lvm) || checksum(seq) != checksum(cp) {
		log.Fatal("BUG: runs disagree")
	}
	fmt.Println("\nall three executions computed identical final state ✓")
	fmt.Printf("elapsed, LVM %d vs copy %d cycles under heavy rollback\n", lvmCycles, cpCycles)
	fmt.Println("(rollback is costlier with LVM — reset + roll-forward — but the")
	fmt.Println(" paper notes only processes AHEAD of GVT roll back, so this does")
	fmt.Println(" not slow overall progress; the forward path is where LVM wins:)")

	// The Figure 7 measurement at one point: pure forward cost.
	sp, cpf, lvf, err := timewarp.Speedup(1024, 256, 8, 400)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nforward-cost point (c=1024, s=256, w=8):\n  copy: %s\n  lvm:  %s\n  speedup %.2f (Figure 7 territory)\n",
		cpf, lvf, sp)
}
