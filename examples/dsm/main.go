// DSM: log-based consistency for producer-consumer sharing (Section 2.6
// of the paper), compared against Munin-style twin/diff.
//
// A producer updates a write-shared region inside a critical section; at
// lock release the updates must reach the consumer's replica. With LVM
// the hardware already enumerated the updates in the log, so release-time
// processing collapses to log consumption; Munin instead pays a
// protection fault plus a page twin on first touch and a word-by-word
// diff of every twinned page at release.
package main

import (
	"fmt"
	"log"
	"time"

	"lvm/internal/core"
	"lvm/internal/dsm"
	"lvm/internal/logship"
)

const size = 8 * core.PageSize

func main() {
	// Log-based producer/consumer.
	sysL := core.NewSystem(core.DefaultConfig())
	prodL, err := dsm.NewLVMProducer(sysL, sysL.NewProcess(0, sysL.NewAddressSpace()), size, 64)
	if err != nil {
		log.Fatal(err)
	}
	consL, err := dsm.NewConsumer(sysL, sysL.NewProcess(1, sysL.NewAddressSpace()), size)
	if err != nil {
		log.Fatal(err)
	}

	// Munin producer/consumer on an identical machine.
	sysM := core.NewSystem(core.DefaultConfig())
	prodM, err := dsm.NewMuninProducer(sysM, sysM.NewProcess(0, sysM.NewAddressSpace()), size)
	if err != nil {
		log.Fatal(err)
	}
	consM, err := dsm.NewConsumer(sysM, sysM.NewProcess(1, sysM.NewAddressSpace()), size)
	if err != nil {
		log.Fatal(err)
	}

	// The critical section: 40 sparse updates across 8 pages.
	for i := uint32(0); i < 40; i++ {
		off := (i * 820) % size &^ 3
		prodL.Write(off, 0xAA000000+i)
		prodM.Write(off, 0xAA000000+i)
	}

	msgL, stL := prodL.Release()
	msgM, stM := prodM.Release()
	consL.Apply(msgL)
	consM.Apply(msgM)

	if err := dsm.Verify(dsm.SegmentOf(prodL), consL, size); err != nil {
		log.Fatal(err)
	}
	if err := dsm.Verify(dsm.SegmentOf(prodM), consM, size); err != nil {
		log.Fatal(err)
	}
	fmt.Println("both replicas consistent with the producer ✓")
	fmt.Println()
	fmt.Printf("%-22s %12s %12s\n", "", "log-based", "munin")
	fmt.Printf("%-22s %12d %12d\n", "write-path cycles", prodL.WriteCycles(), prodM.WriteCycles())
	fmt.Printf("%-22s %12d %12d\n", "release cycles", stL.Cycles, stM.Cycles)
	fmt.Printf("%-22s %12d %12d\n", "bytes transmitted", stL.Bytes, stM.Bytes)
	fmt.Printf("%-22s %12d %12d\n", "entries", stL.Entries, stM.Entries)
	fmt.Println()
	fmt.Println("log-based consistency pays a write-through per store but needs")
	fmt.Println("no faults, twins or page diffs — release-time work is just")
	fmt.Println("synchronizing with the end of the log (Section 2.6).")

	// The same idea over a real transport: a log-shipping server streams
	// the producer's records to two replica machines, and lock release
	// becomes "flush the log and wait for every replica's ack". One
	// replica crashes mid-stream and rejoins; the shipper re-reads its
	// log to catch it up, and both replicas converge byte-identical.
	fmt.Println()
	ln, dial := logship.NewMemTransport()
	ship := logship.NewShipper(sysL, prodL.Segment(), prodL.LogSegment(), ln, logship.Config{})
	defer ship.Close()
	var reps [2]*logship.Replica
	for i := range reps {
		r, err := logship.NewReplica(dial, size)
		if err != nil {
			log.Fatal(err)
		}
		if err := r.Connect(); err != nil {
			log.Fatal(err)
		}
		reps[i] = r
	}
	for i := uint32(0); i < 40; i++ {
		prodL.Write((i*412)%size&^3, 0xBB000000+i)
	}
	if err := ship.ReleaseShip(5 * time.Second); err != nil {
		log.Fatal(err)
	}
	reps[1].Kill() // crash replica 1 mid-stream
	for i := uint32(40); i < 80; i++ {
		prodL.Write((i*412)%size&^3, 0xBB000000+i)
	}
	if err := ship.ReleaseShip(5 * time.Second); err != nil {
		log.Fatal(err)
	}
	if err := reps[1].Connect(); err != nil { // rejoin and catch up
		log.Fatal(err)
	}
	if err := ship.ReleaseShip(5 * time.Second); err != nil {
		log.Fatal(err)
	}
	for i, r := range reps {
		if err := dsm.Verify(prodL.Segment(), r.Consumer(), size); err != nil {
			log.Fatalf("shipped replica %d: %v", i, err)
		}
	}
	fmt.Printf("log shipping: 2 replicas converged over the wire ✓ (crash+rejoin caught up %d records)\n",
		ship.Stats.CatchupRecords.Load())
}
