// Debugger: the debugging use case of Sections 1 and 2.7 of the paper.
//
// A buggy "program" runs against a region that a debugger has attached a
// log segment to — dynamically, with no change to the program itself. The
// debugger then:
//
//  1. asks the log who clobbered a variable (write watchpoint, post hoc);
//  2. reverse-executes from the failure point back to the last good state.
package main

import (
	"fmt"
	"log"

	"lvm/internal/core"
	"lvm/internal/debug"
)

func main() {
	sys := core.NewSystem(core.DefaultConfig())
	seg := core.NewNamedSegment(sys, "program-heap", 2*core.PageSize, nil)
	reg := core.NewStdRegion(sys, seg)
	as := sys.NewAddressSpace()
	base, err := reg.Bind(as, 0)
	if err != nil {
		log.Fatal(err)
	}
	p := sys.NewProcess(0, as)

	// The debugger attaches logging to the running program's region —
	// "a separate program such as a debugger can dynamically modify the
	// memory regions used by a program to cause them to log updates...
	// with no change to the program binary" (Section 2.7).
	ls := core.NewLogSegment(sys, 32)
	if err := reg.Log(ls); err != nil {
		log.Fatal(err)
	}
	// Checkpoint the (empty) initial state for reverse execution.
	ckpt := core.NewNamedSegment(sys, "ckpt", 2*core.PageSize, nil)

	// The buggy program: `balance` lives at +0x100, a byte buffer at
	// +0x180 (128 bytes). The program overruns the buffer and corrupts
	// balance.
	const balanceOff, bufOff = 0x100, 0x180
	p.Store32(base+balanceOff, 5000)
	for i := uint32(0); i < 16; i++ {
		p.Compute(300)
		p.Store32(base+bufOff+i*4, 0x11110000+i)
	}
	// The bug: loop runs two entries too far... except the buffer is
	// BELOW balance, so model the classic negative-index overrun:
	p.Store32(base+balanceOff, 4000)        // legitimate update
	p.Store32(base+bufOff-0x80, 0xDEADBEEF) // stray write... lands at +0x100!
	p.Compute(1000)
	got := p.Load32(base + balanceOff)
	fmt.Printf("program finished; balance = %#x (expected 4000 = 0xfa0)\n\n", got)

	// 1. Watchpoint query: who wrote balance?
	w := debug.NewWatcher(sys, seg, ls)
	writes := w.WritesTo(balanceOff, 4)
	fmt.Printf("the log shows %d writes to &balance:\n", len(writes))
	for _, wi := range writes {
		fmt.Printf("  record %-3d value %08x ts=%d\n", wi.Index, wi.Value, wi.Timestamp)
	}
	bad, _ := w.FirstOverwriteAfter(balanceOff, 4, writes[1].Index+1)
	fmt.Printf("→ the corrupting write is record %d (value %08x)\n\n", bad.Index, bad.Value)

	// 2. Reverse execution: back up from the failure to the last state
	// where the balance was sane.
	re, err := debug.NewReverseExecutor(sys, seg, ls, ckpt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reverse execution over %d records:\n", re.Records())
	n, err := re.FindLastGood(func(r *debug.ReverseExecutor) bool {
		v := r.Word(balanceOff)
		return v == 4000 || v == 5000 || v == 0
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  last good position: after record %d (balance = %d)\n", n-1, re.Word(balanceOff))
	re.StepBack()
	fmt.Printf("  one more step back:  balance = %d\n", re.Word(balanceOff))
	fmt.Println("\nthe write immediately after the last good position is the bug ✓")
}
