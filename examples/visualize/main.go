// Visualize: the high-performance output use of LVM (Section 2.6 of the
// paper).
//
// "A program supporting visualization can set the segment containing its
// state to be logged. A separate process can then interpret this log and
// display the visual representation of the program. This approach
// effectively offloads the application process of this activity..."
//
// The simulation process draws a bouncing particle into its state region,
// which is logged in DIRECT-MAPPED mode: "the logged updates to a segment
// are written to the corresponding offset in the log segment. This mode
// allows an output device to be written using mapped I/O." The display
// process renders frames from the log segment — never touching the
// application's memory — and a second, INDEXED-mode log streams the
// particle's positions as a bare value sequence.
package main

import (
	"fmt"
	"log"

	"lvm/internal/core"
)

const (
	gridW, gridH = 32, 8
	frames       = 6
)

func main() {
	sys := core.NewSystem(core.DefaultConfig())

	// The application's state region: one byte per cell, logged
	// direct-mapped into the "display device" segment.
	state := core.NewNamedSegment(sys, "sim-state", core.PageSize, nil)
	reg := core.NewStdRegion(sys, state)
	reg.SetLogMode(core.ModeDirect)
	display := core.NewLogSegment(sys, 1) // the mapped frame buffer
	if err := reg.Log(display); err != nil {
		log.Fatal(err)
	}

	// A second region holds the particle coordinates, logged in indexed
	// mode: a stream of bare values for a telemetry consumer.
	coords := core.NewNamedSegment(sys, "coords", core.PageSize, nil)
	creg := core.NewStdRegion(sys, coords)
	creg.SetLogMode(core.ModeIndexed)
	stream := core.NewLogSegment(sys, 4)
	if err := creg.Log(stream); err != nil {
		log.Fatal(err)
	}

	as := sys.NewAddressSpace()
	base, err := reg.Bind(as, 0)
	if err != nil {
		log.Fatal(err)
	}
	cbase, err := creg.Bind(as, 0)
	if err != nil {
		log.Fatal(err)
	}
	p := sys.NewProcess(0, as)

	// The simulation: a particle bouncing across the grid.
	x, y, dx, dy := 2, 1, 3, 1
	for f := 0; f < frames; f++ {
		p.Compute(2000) // physics!
		// Erase, move, draw — ordinary stores into the state region.
		p.Store8(base+uint32(y*gridW+x), 0)
		x += dx
		y += dy
		if x <= 0 || x >= gridW-1 {
			dx = -dx
			x += 2 * dx
		}
		if y <= 0 || y >= gridH-1 {
			dy = -dy
			y += 2 * dy
		}
		p.Store8(base+uint32(y*gridW+x), 1)
		p.Store32(cbase, uint32(x)<<16|uint32(y)) // telemetry

		// The display process (asynchronous; synchronizes only on the
		// end of the log): renders from the DEVICE segment.
		sys.Sync()
		fmt.Printf("frame %d (rendered from the log segment, not the app's memory):\n", f)
		for row := 0; row < gridH; row++ {
			line := display.RawRead(uint32(row*gridW), gridW)
			out := make([]byte, gridW)
			for i, b := range line {
				if b != 0 {
					out[i] = '*'
				} else {
					out[i] = '.'
				}
			}
			fmt.Printf("  %s\n", out)
		}
	}

	// The telemetry consumer reads the indexed stream.
	vals := core.ReadIndexed(sys, stream)
	fmt.Printf("\nindexed telemetry stream (%d positions): ", len(vals))
	for _, v := range vals {
		fmt.Printf("(%d,%d) ", v>>16, v&0xFFFF)
	}
	fmt.Println()
	fmt.Printf("application cycles: %d — none spent rendering\n", p.Now())
}
