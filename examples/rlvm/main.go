// RLVM: atomic transactions on memory-mapped persistent objects
// (Section 2.5 of the paper).
//
// "With an efficient logged virtual memory facility, persistent objects
// supporting atomic transactions can be read and written in virtual
// memory with the same efficiency as standard C++ objects."
//
// The example keeps a small persistent account table in an RLVM
// recoverable region: plain stores inside a transaction, commit, abort,
// and crash recovery — with no set_range() calls anywhere.
package main

import (
	"fmt"
	"log"

	"lvm/internal/core"
	"lvm/internal/ramdisk"
	"lvm/internal/rlvm"
)

const accounts = 8

func balanceVA(m *rlvm.Manager, acct uint32) core.Addr { return m.Base() + acct*4 }

func printAccounts(p *core.Process, m *rlvm.Manager, label string) {
	fmt.Printf("%-28s", label)
	for a := uint32(0); a < accounts; a++ {
		fmt.Printf(" %5d", p.Load32(balanceVA(m, a)))
	}
	fmt.Println()
}

func main() {
	disk := ramdisk.New() // the persistent store survives "crashes"

	sys := core.NewSystem(core.DefaultConfig())
	p := sys.NewProcess(0, sys.NewAddressSpace())
	m, err := rlvm.New(sys, p, 4*core.PageSize, disk, rlvm.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Transaction 1: fund every account. Writes are ordinary stores —
	// the LVM log supplies the redo records at commit.
	must(m.Begin())
	for a := uint32(0); a < accounts; a++ {
		must(m.RecoverableWrite32(balanceVA(m, a), 100))
	}
	must(m.Commit())
	printAccounts(p, m, "after funding (committed):")

	// Transaction 2: a transfer that aborts mid-flight. Abort is
	// resetDeferredCopy back to the committed checkpoint plus a rewind
	// of the log (Section 2.3).
	must(m.Begin())
	must(m.RecoverableWrite32(balanceVA(m, 0), 0))
	must(m.RecoverableWrite32(balanceVA(m, 1), 200))
	printAccounts(p, m, "mid-transfer (uncommitted):")
	must(m.Abort())
	printAccounts(p, m, "after abort:")

	// Transaction 3: a committed transfer.
	must(m.Begin())
	must(m.RecoverableWrite32(balanceVA(m, 0), 40))
	must(m.RecoverableWrite32(balanceVA(m, 1), 160))
	must(m.Commit())
	printAccounts(p, m, "after transfer (committed):")

	// Crash: the machine disappears; only the RAM disk survives. A new
	// system recovers from the image + write-ahead log.
	fmt.Println("\n-- crash; recovering from disk --")
	sys2 := core.NewSystem(core.DefaultConfig())
	p2 := sys2.NewProcess(0, sys2.NewAddressSpace())
	m2, err := rlvm.New(sys2, p2, 4*core.PageSize, disk, rlvm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	printAccounts(p2, m2, "recovered state:")

	var total uint32
	for a := uint32(0); a < accounts; a++ {
		total += p2.Load32(balanceVA(m2, a))
	}
	if total != accounts*100 {
		log.Fatalf("money not conserved: %d", total)
	}
	fmt.Printf("\nmoney conserved across abort, commit and crash: %d ✓\n", total)
	fmt.Printf("transactions: %d, LVM log records consumed at commit: %d\n", m.Stats.Txns, m.Stats.Records)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
