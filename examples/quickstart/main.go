// Quickstart: the Section 2.2 example of the paper, in Go.
//
// It builds the mapping structure of Figure 1 — a segment bound to a
// region with an associated log segment — writes through the region, and
// reads the hardware-generated log records back.
//
//	seg_a = new StdSegment(size)      →  core.NewStdSegment(sys, size, nil)
//	reg_r = new StdRegion(seg_a)      →  core.NewStdRegion(sys, segA)
//	ls    = new LogSegment()          →  core.NewLogSegment(sys, pages)
//	reg_r->log(ls)                    →  regR.Log(ls)
//	reg_r->bind(as)                   →  regR.Bind(as, 0)
package main

import (
	"fmt"
	"log"

	"lvm/internal/core"
)

func main() {
	sys := core.NewSystem(core.DefaultConfig())

	segA := core.NewStdSegment(sys, 64*1024, nil)
	regR := core.NewStdRegion(sys, segA)

	// "This code sample illustrates the simplicity of adding logging,
	// namely the two lines to create a new LogSegment and associate it
	// with the region."
	ls := core.NewLogSegment(sys, 16)
	if err := regR.Log(ls); err != nil {
		log.Fatal(err)
	}

	as := sys.NewAddressSpace()
	base, err := regR.Bind(as, 0)
	if err != nil {
		log.Fatal(err)
	}

	// A process writes ordinary data through the region; every write is
	// logged by the (simulated) hardware with no per-write software.
	p := sys.NewProcess(0, as)
	fmt.Printf("region bound at %#x on a %d-CPU machine\n\n", base, len(sys.Machine().CPUs))
	for i := uint32(0); i < 8; i++ {
		p.Compute(500) // the application's own work
		p.Store32(base+i*8, 0xC0DE0000+i)
	}
	p.Store16(base+0x100, 0xBEEF)
	p.Store8(base+0x105, 0x42)

	// Read the log: one 16-byte record per write — address, datum, size,
	// timestamp (6.25 MHz) — in write order.
	r := core.NewLogReader(sys, ls)
	fmt.Printf("%d records in the log:\n", r.Remaining())
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		va, _ := rec.VAIn(regR)
		fmt.Printf("  va %#08x  value %08x  size %d  ts %-6d\n", va, rec.Value, rec.WriteSize, rec.Timestamp)
	}
	fmt.Printf("\nelapsed: %d cycles (%.1f µs at 25 MHz)\n", sys.Elapsed(), float64(sys.Elapsed())*0.04)
}
