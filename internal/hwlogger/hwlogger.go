// Package hwlogger models the prototype's hardware logger: the FPGA device
// on the ParaDiGM bus that snoops write operations to logged segments and
// translates each into a 16-byte log record DMAed into a log segment
// (Section 3.1 and Figures 4–6 of the paper).
//
// Structure (Figure 5):
//
//	snoop → write FIFO → page-mapping-table lookup → log-table lookup →
//	log-record FIFO → DMA
//
// The page mapping table is a direct-mapped, TLB-like structure keyed by
// the 20-bit physical page number: the low 15 bits index the table, the
// top 5 bits are the tag (Section 3.1: "A physical page address is looked
// up in this table by splitting it into a tag (upper five bits) and index
// (lower 15 bits)"). Each entry names a log-table index; the log table
// holds one entry per log with the physical address at which the next
// record is written. Appending a record advances that address by 16; if it
// crosses a page boundary the entry is marked invalid and the next write
// to the log raises a logging fault for the kernel to resolve.
//
// The FIFOs hold 819 entries; when occupancy exceeds 512 the logger is
// "overloaded" and interrupts the kernel, which suspends all processes
// that might generate log data until the FIFOs drain (Section 3.1.3).
package hwlogger

import (
	"lvm/internal/bus"
	"lvm/internal/cycles"
	"lvm/internal/logrec"
	"lvm/internal/machine"
	"lvm/internal/metrics"
	"lvm/internal/phys"
)

// Mode selects how the logger materializes writes into the log segment
// (Section 2.6: record mode is the default; direct-mapped and indexed
// modes support output).
type Mode uint8

const (
	// ModeRecord appends a 16-byte record per write (the default).
	ModeRecord Mode = iota
	// ModeDirect writes the datum at the corresponding offset in the log
	// page ("the logged updates to a segment are written to the
	// corresponding offset in the log segment").
	ModeDirect
	// ModeIndexed appends just the data values, 4 bytes each, without
	// addresses or timestamps ("the log generates a sequence of data
	// values into the log segment").
	ModeIndexed
)

// PMT geometry.
const (
	pmtIndexBits = 15
	pmtEntries   = 1 << pmtIndexBits
	pmtIndexMask = pmtEntries - 1
)

// PMTEntry is one page-mapping-table entry: physical page → log index.
// Absorb is the page's absorb-enable attribute: writes to pages with the
// bit clear act as absorption barriers (Section 3.1's FIFO discussion
// proposes write absorption; marker-word pages must opt out so that
// transaction brackets are never coalesced away or reordered across).
type PMTEntry struct {
	Valid    bool
	Absorb   bool
	Tag      uint8 // top 5 bits of the 20-bit PPN
	LogIndex uint16
}

// LogTableEntry holds the next record address for one log.
type LogTableEntry struct {
	Valid bool
	Mode  Mode
	// Addr is the physical address at which the next record is written.
	// In ModeDirect it is the base of the log page mirroring the data
	// page and is never advanced.
	Addr phys.Addr
}

// FaultKind distinguishes the two logging-fault causes (Section 3.2).
type FaultKind uint8

const (
	// FaultMissingPMT: the written page has no (or a conflicting)
	// page-mapping-table entry.
	FaultMissingPMT FaultKind = iota
	// FaultInvalidLogAddr: the log-table entry is invalid, typically
	// because the log address just crossed a page boundary.
	FaultInvalidLogAddr
)

// Fault describes a logging fault delivered to the kernel.
type Fault struct {
	Kind FaultKind
	// PPN is the physical page number of the faulting write.
	PPN uint32
	// LogIndex is the log involved (valid for FaultInvalidLogAddr and
	// for FaultMissingPMT when the conflicting entry was valid).
	LogIndex uint16
	// Write is the logged write being serviced.
	Write machine.LoggedWrite
}

// FaultHandler is the kernel's logging-fault handler. It must repair the
// logger's tables (LoadPMT / SetLogHead) and return true, or return false
// to drop the record (the kernel "needs to be prepared to discard data",
// Section 3.2).
type FaultHandler func(l *Logger, f Fault) bool

// Logger is the hardware logger device. It satisfies machine.LogDevice.
type Logger struct {
	bus *bus.Bus
	mem *phys.Memory

	pmt      []PMTEntry
	logTable []LogTableEntry

	// fifo is the combined occupancy of the write FIFO and log-record
	// FIFO (entries not yet DMAed): a fixed-capacity ring, like the
	// hardware's 819-entry FIFO chips — steady-state pushes and pops
	// never allocate.
	fifo     []machine.LoggedWrite
	fifoHead int
	fifoLen  int

	// Write absorption (disabled when absorbWindow == 0): a snooped write
	// whose address matches a pending FIFO entry within the youngest
	// absorbWindow entries overwrites that entry's value instead of
	// enqueueing a new one. headSeq is the absolute (monotonic) sequence
	// number of the FIFO head entry; absorbBase is the absolute sequence
	// below which entries may never be absorbed into — it is raised past
	// any write to a no-absorb page (a barrier), so coalescing can never
	// move a store across a transaction marker.
	absorbWindow int
	headSeq      uint64
	absorbBase   uint64
	// absorbSig is a host-side fast-miss filter: one bit per hashed word
	// address (addr>>2, mod 64) of every entry currently queued. It is a
	// superset of the absorbable window — a clear bit proves no match and
	// skips the scan; a set bit (possibly stale) just falls through to
	// the exact scan. Cleared whenever the ring empties. It never changes
	// simulated behavior, only host time.
	absorbSig uint64

	// Group commit (disabled when groupSize <= 1): instead of DMAing each
	// record as soon as its lookup completes, the logger waits until
	// groupSize records are queued or the head record has waited
	// groupDeadline cycles, then drains the batch in one bus tenure —
	// one lookup + one DMA setup amortized over the batch.
	groupSize     int
	groupDeadline uint64

	// freeAt is when the logger engine finishes its current service.
	freeAt uint64

	// OnFault is the kernel's logging-fault handler.
	OnFault FaultHandler
	// OnOverload, if set, is invoked on each overload event with the
	// cycle at which the drain completed; it returns the cycle at which
	// the processors may resume (the kernel adds its software overhead).
	// If nil, the default adds cycles.OverloadKernelCycles.
	OnOverload func(drainedAt uint64) (resumeAt uint64)

	// DMAHook, when non-nil, observes each record-mode DMA just before the
	// 16-byte record reaches memory at dst. The hook may mutate the record
	// (bit corruption) or return drop=true to lose it entirely (the drop
	// is tallied through the normal lost-record accounting). It is the
	// fault injector's insertion point; nil (the default) costs the DMA
	// path one predictable branch.
	DMAHook func(rec *logrec.Record, dst phys.Addr) (drop bool)
	// hookRec is the scratch record handed to DMAHook: hooks mutate it in
	// place, and keeping it on the Logger (rather than taking the address
	// of a local) keeps the record-mode DMA path allocation-free.
	hookRec logrec.Record

	// Capacity and threshold, configurable for experiments; defaults are
	// the prototype's 819/512.
	Capacity  int
	Threshold int

	// Stats.
	RecordsWritten  uint64
	RecordsLost     uint64
	RecordsAbsorbed uint64
	GroupCommits    uint64
	Overloads       uint64
	Faults          uint64
	StallCycles     uint64

	// ms is the metrics shard the logger charges hardware events to; tr
	// is the (possibly nil) event tracer. New installs a private shard so
	// increments never need a nil check; SetMetrics rebinds both to the
	// owning machine's registry.
	ms *metrics.Shard
	tr *metrics.Tracer
}

// New creates a logger attached to the given bus and memory.
func New(b *bus.Bus, mem *phys.Memory) *Logger {
	return &Logger{
		bus:       b,
		mem:       mem,
		pmt:       make([]PMTEntry, pmtEntries),
		logTable:  make([]LogTableEntry, 256),
		fifo:      make([]machine.LoggedWrite, cycles.LoggerFIFOEntries),
		Capacity:  cycles.LoggerFIFOEntries,
		Threshold: cycles.LoggerOverloadThreshold,
		ms:        metrics.New(1).Shard(0),
	}
}

// SetMetrics points the logger's hardware-event counters at sh (typically
// the machine's device shard) and its trace emissions at tr (may be nil).
func (l *Logger) SetMetrics(sh *metrics.Shard, tr *metrics.Tracer) {
	if sh != nil {
		l.ms = sh
	}
	l.tr = tr
}

// Pending reports the current combined FIFO occupancy.
func (l *Logger) Pending() int { return l.fifoLen }

// FreeAt reports when the logger engine is next idle.
func (l *Logger) FreeAt() uint64 { return l.freeAt }

// --- Kernel-facing table management (Section 3.2) ---

// LoadPMT installs a page-mapping-table entry for the given physical page,
// returning the entry it displaced (valid==false if none).
func (l *Logger) LoadPMT(ppn uint32, logIndex uint16) (displaced PMTEntry) {
	idx := ppn & pmtIndexMask
	displaced = l.pmt[idx]
	l.pmt[idx] = PMTEntry{Valid: true, Absorb: true, Tag: uint8(ppn >> pmtIndexBits), LogIndex: logIndex}
	return displaced
}

// SetPMTAbsorb sets the absorb-enable attribute of ppn's page-mapping
// entry, if one is present. The kernel clears it for pages holding
// transaction marker words (see PMTEntry).
func (l *Logger) SetPMTAbsorb(ppn uint32, absorb bool) {
	idx := ppn & pmtIndexMask
	if e := &l.pmt[idx]; e.Valid && e.Tag == uint8(ppn>>pmtIndexBits) {
		e.Absorb = absorb
	}
}

// SetAbsorbWindow configures write absorption: a snooped write may
// coalesce into a matching pending entry among the youngest n FIFO
// entries. n <= 0 disables absorption (the default, and the prototype's
// behaviour).
func (l *Logger) SetAbsorbWindow(n int) {
	if n < 0 {
		n = 0
	}
	l.absorbWindow = n
}

// AbsorbWindow reports the configured absorption window.
func (l *Logger) AbsorbWindow() int { return l.absorbWindow }

// SetGroupCommit configures batched DMA drains: records are held in the
// FIFO until n are queued or the oldest has waited deadline cycles,
// whichever comes first, then drained in one bus tenure. n <= 1 restores
// per-record DMA (the default). Durability fences (Sync, DrainAll,
// overload drains) still flush everything immediately.
func (l *Logger) SetGroupCommit(n int, deadline uint64) {
	if n < 1 {
		n = 1
	}
	l.groupSize = n
	l.groupDeadline = deadline
}

// InvalidatePMT removes the entry for ppn if it maps that page.
func (l *Logger) InvalidatePMT(ppn uint32) {
	idx := ppn & pmtIndexMask
	if l.pmt[idx].Valid && l.pmt[idx].Tag == uint8(ppn>>pmtIndexBits) {
		l.pmt[idx].Valid = false
	}
}

// LookupPMT reports the log index for ppn, if mapped.
func (l *Logger) LookupPMT(ppn uint32) (logIndex uint16, ok bool) {
	e := l.pmt[ppn&pmtIndexMask]
	if e.Valid && e.Tag == uint8(ppn>>pmtIndexBits) {
		return e.LogIndex, true
	}
	return 0, false
}

// SetLogHead sets the next-record address (and mode) for a log.
func (l *Logger) SetLogHead(logIndex uint16, addr phys.Addr, mode Mode) {
	l.logTable[logIndex] = LogTableEntry{Valid: true, Mode: mode, Addr: addr}
}

// InvalidateLog marks a log-table entry invalid.
func (l *Logger) InvalidateLog(logIndex uint16) { l.logTable[logIndex].Valid = false }

// LogHead reports a log's table entry (for tests and the kernel).
func (l *Logger) LogHead(logIndex uint16) LogTableEntry { return l.logTable[logIndex] }

// NumLogs reports the log-table capacity.
func (l *Logger) NumLogs() int { return len(l.logTable) }

// --- machine.LogDevice ---

// Snoop accepts a logged write from the bus. When the combined FIFO
// occupancy exceeds the overload threshold, the logger interrupts the
// kernel, which suspends the processors until the FIFOs drain; Snoop
// models that by returning the resume cycle.
func (l *Logger) Snoop(w machine.LoggedWrite) (stallUntil uint64) {
	if l.absorbWindow > 0 && l.tryAbsorb(&w) {
		l.RecordsAbsorbed++
		l.ms.Inc(metrics.HWSnoops)
		l.ms.Inc(metrics.HWRecordsAbsorbed)
		return w.Time
	}
	l.push(&w)
	l.ms.Inc(metrics.HWSnoops)
	l.ms.Observe(metrics.HistFIFODepth, uint64(l.fifoLen))
	l.ms.SetMax(metrics.HWFIFOHighWater, uint64(l.fifoLen))
	if l.Pending() >= l.Threshold {
		l.Overloads++
		l.ms.Inc(metrics.HWOverloads)
		drained := l.DrainAll()
		resume := drained + cycles.OverloadKernelCycles
		if l.OnOverload != nil {
			resume = l.OnOverload(drained)
		}
		if resume > w.Time {
			l.StallCycles += resume - w.Time
			l.ms.Add(metrics.HWOverloadDrainCycles, resume-w.Time)
		}
		l.tr.Emit(w.Time, metrics.EvOverload, int(w.CPU), drained, resume)
		return resume
	}
	return w.Time
}

// tryAbsorb attempts to coalesce w into a pending FIFO entry: the youngest
// absorbWindow entries are scanned newest-first for a matching address and
// size, bounded below by the head and by absorbBase (the last barrier).
// A write to a page whose PMT entry is missing or has absorb disabled is a
// barrier: it raises absorbBase past itself so no later write can coalesce
// into an entry at or before it.
func (l *Logger) tryAbsorb(w *machine.LoggedWrite) bool {
	e := l.pmt[phys.PPN(w.Addr)&pmtIndexMask]
	if !e.Valid || !e.Absorb || e.Tag != uint8(phys.PPN(w.Addr)>>pmtIndexBits) {
		l.absorbBase = l.headSeq + uint64(l.fifoLen) + 1
		return false
	}
	if l.absorbSig&(1<<((uint32(w.Addr)>>2)&63)) == 0 {
		return false
	}
	top := l.headSeq + uint64(l.fifoLen)
	floor := l.headSeq
	if l.absorbBase > floor {
		floor = l.absorbBase
	}
	if floor >= top {
		return false
	}
	count := int(top - floor)
	if count > l.absorbWindow {
		count = l.absorbWindow
	}
	// Walk ring slots directly, newest first.
	i := l.fifoHead + l.fifoLen - 1
	if i >= len(l.fifo) {
		i -= len(l.fifo)
	}
	for ; count > 0; count-- {
		fe := &l.fifo[i]
		if fe.Addr == w.Addr && fe.Size == w.Size {
			// Keep the original entry's position and timestamp; only the
			// datum changes — exactly what a hardware FIFO cell rewrite
			// would do.
			fe.Value = w.Value
			return true
		}
		i--
		if i < 0 {
			i = len(l.fifo) - 1
		}
	}
	return false
}

// PumpUntil services queued writes whose DMA would request the bus before
// cycle t (the arrival time of the next competing bus request). Records
// whose bus request would come later wait their turn: arbitration is
// first-come-first-served by request time, so the logger does not reserve
// future bus slots ahead of an earlier CPU request.
//
// Under group commit a record additionally waits until its batch is ready:
// either groupSize records are queued, or the head record has aged
// groupDeadline cycles.
func (l *Logger) PumpUntil(t uint64) {
	if l.groupSize > 1 {
		l.pumpGrouped(t)
		return
	}
	for l.Pending() > 0 {
		start := l.freeAt
		if e := l.fifo[l.fifoHead]; e.Time > start {
			start = e.Time
		}
		if start+cycles.LoggerLookupCycles >= t {
			return
		}
		l.serviceOne()
	}
}

func (l *Logger) pumpGrouped(t uint64) {
	for l.Pending() > 0 {
		head := &l.fifo[l.fifoHead]
		// The batch is ready at the earlier of "groupSize records queued"
		// (the arrival of the Nth) and "the head aged out".
		ready := head.Time + l.groupDeadline
		if l.fifoLen >= l.groupSize {
			if nt := l.nthTime(l.groupSize - 1); nt < ready {
				ready = nt
			}
		}
		start := l.freeAt
		if ready > start {
			start = ready
		}
		if start+cycles.LoggerLookupCycles >= t {
			return
		}
		l.serviceBatch(start, false)
	}
}

// nthTime returns the snoop time of the i-th queued entry (0 = head).
func (l *Logger) nthTime(i int) uint64 {
	idx := l.fifoHead + i
	if idx >= len(l.fifo) {
		idx -= len(l.fifo)
	}
	return l.fifo[idx].Time
}

// DrainAll services everything queued and returns the idle cycle.
func (l *Logger) DrainAll() uint64 {
	for l.Pending() > 0 {
		if l.groupSize > 1 {
			start := l.freeAt
			if e := l.fifo[l.fifoHead]; e.Time > start {
				start = e.Time
			}
			l.serviceBatch(start, true)
		} else {
			l.serviceOne()
		}
	}
	return l.freeAt
}

func (l *Logger) push(w *machine.LoggedWrite) {
	if l.fifoLen >= l.Capacity {
		// Cannot happen with threshold < capacity, but never lose the
		// accounting if an experiment disables overloads.
		l.recordLost()
		return
	}
	l.absorbSig |= 1 << ((uint32(w.Addr) >> 2) & 63)
	if l.fifoLen == 0 {
		// Empty ring: rewind so the common drained-between-stores case
		// keeps reusing the same few slots instead of streaming through
		// the whole ring (which evicts it from the host's L1).
		l.fifoHead = 0
		l.fifo[0] = *w
		l.fifoLen = 1
		return
	}
	if l.fifoLen == len(l.fifo) {
		// Capacity was raised past the ring's allocation (experiments
		// resize the FIFO after New): re-linearize into a larger ring,
		// once per resize.
		grown := make([]machine.LoggedWrite, l.Capacity)
		for i := 0; i < l.fifoLen; i++ {
			grown[i] = l.fifo[(l.fifoHead+i)%len(l.fifo)]
		}
		l.fifo = grown
		l.fifoHead = 0
	}
	idx := l.fifoHead + l.fifoLen
	if idx >= len(l.fifo) {
		idx -= len(l.fifo)
	}
	l.fifo[idx] = *w
	l.fifoLen++
}

func (l *Logger) pop() machine.LoggedWrite {
	w := l.fifo[l.fifoHead]
	l.fifoHead++
	if l.fifoHead == len(l.fifo) {
		l.fifoHead = 0
	}
	l.fifoLen--
	l.headSeq++
	if l.fifoLen == 0 {
		l.absorbSig = 0
	}
	return w
}

// serviceOne processes the FIFO head: PMT lookup, log-table lookup, record
// assembly, and DMA, raising logging faults to the kernel as needed.
func (l *Logger) serviceOne() {
	e := l.pop()
	start := l.freeAt
	if e.Time > start {
		start = e.Time
	}

	ppn := phys.PPN(e.Addr)
	logIndex, ok := l.LookupPMT(ppn)
	if !ok {
		l.Faults++
		l.ms.Inc(metrics.HWLoggingFaultsPMT)
		l.tr.Emit(start, metrics.EvLoggingFault, int(e.CPU), uint64(FaultMissingPMT), uint64(ppn))
		start += cycles.LoggingFaultCycles
		if l.OnFault == nil || !l.OnFault(l, Fault{Kind: FaultMissingPMT, PPN: ppn, Write: e}) {
			l.recordLost()
			l.freeAt = start
			return
		}
		logIndex, ok = l.LookupPMT(ppn)
		if !ok {
			l.recordLost()
			l.freeAt = start
			return
		}
	}
	lt := &l.logTable[logIndex]
	if !lt.Valid {
		l.Faults++
		l.ms.Inc(metrics.HWLoggingFaultsLogAddr)
		l.tr.Emit(start, metrics.EvLoggingFault, int(e.CPU), uint64(FaultInvalidLogAddr), uint64(ppn))
		start += cycles.LoggingFaultCycles
		if l.OnFault == nil || !l.OnFault(l, Fault{Kind: FaultInvalidLogAddr, PPN: ppn, LogIndex: logIndex, Write: e}) {
			l.recordLost()
			l.freeAt = start
			return
		}
		lt = &l.logTable[logIndex]
		if !lt.Valid {
			l.recordLost()
			l.freeAt = start
			return
		}
	}

	// Internal lookup/assembly time, then the DMA. The DMA holds the bus
	// for LogRecordDMABus cycles and completes LogRecordDMATotal cycles
	// after it begins, so one uncontended record service costs
	// LoggerLookupCycles + LogRecordDMATotal = 33 cycles.
	dmaReady := start + cycles.LoggerLookupCycles
	grant := l.bus.Acquire(dmaReady, cycles.LogRecordDMABus)
	complete := grant + cycles.LogRecordDMATotal
	l.ms.Add(metrics.HWDMAWaitCycles, grant-dmaReady)

	switch lt.Mode {
	case ModeRecord:
		rec := logrec.Record{
			Addr:      e.Addr,
			Value:     e.Value,
			WriteSize: e.Size,
			CPU:       e.CPU,
			Timestamp: cycles.ToTimestamp(e.Time),
		}
		if l.DMAHook != nil {
			l.hookRec = rec
			if l.DMAHook(&l.hookRec, lt.Addr) {
				// The DMA transfer was lost: the head does not advance,
				// so later records close the gap and the log stays dense.
				l.recordLost()
				l.freeAt = complete
				return
			}
			rec = l.hookRec
		}
		var buf [logrec.Size]byte
		rec.Encode(buf[:])
		l.mem.WriteBlock16(lt.Addr, &buf)
		lt.Addr += logrec.Size
		if lt.Addr&phys.PageMask == 0 {
			lt.Valid = false
		}
	case ModeDirect:
		dst := lt.Addr + (e.Addr & phys.PageMask)
		var buf [4]byte
		n := int(e.Size)
		if n > 4 {
			n = 4
		}
		for i := 0; i < n; i++ {
			buf[i] = byte(e.Value >> (8 * i))
		}
		l.mem.Write(dst, buf[:n])
	case ModeIndexed:
		l.mem.Write32(lt.Addr, e.Value)
		lt.Addr += 4
		if lt.Addr&phys.PageMask == 0 {
			lt.Valid = false
		}
	}
	l.RecordsWritten++
	l.ms.Inc(metrics.HWRecordsDMAed)
	l.freeAt = complete
}

// serviceBatch drains up to groupSize FIFO-head records as one group
// commit beginning at cycle start: one PMT + log-table lookup for the
// whole batch, one DMA setup, and one bus tenure of n×LogRecordDMABus
// cycles. The batch ends at the first record that routes to a different
// log, would cross the log page boundary, or — unless drain is set —
// arrived after start. A drain (Sync, overload, crash capture) flushes
// everything queued, so it batches regardless of arrival time but cannot
// begin before its youngest member arrived. A head record that needs
// fault handling — or a non-record-mode log — falls back to the
// per-record path, which charges the full fault cost.
func (l *Logger) serviceBatch(start uint64, drain bool) {
	head := &l.fifo[l.fifoHead]
	logIndex, ok := l.LookupPMT(phys.PPN(head.Addr))
	if !ok {
		l.serviceOne()
		return
	}
	lt := &l.logTable[logIndex]
	if !lt.Valid || lt.Mode != ModeRecord {
		l.serviceOne()
		return
	}
	room := int((phys.PageSize - uint32(lt.Addr&phys.PageMask)) / logrec.Size)
	n := 1
	youngest := head.Time
	for n < l.groupSize && n < l.fifoLen && n < room {
		idx := l.fifoHead + n
		if idx >= len(l.fifo) {
			idx -= len(l.fifo)
		}
		e := &l.fifo[idx]
		if !drain && e.Time > start {
			break
		}
		if li, ok2 := l.LookupPMT(phys.PPN(e.Addr)); !ok2 || li != logIndex {
			break
		}
		if e.Time > youngest {
			youngest = e.Time
		}
		n++
	}
	if youngest > start {
		start = youngest
	}

	// One lookup, then one DMA transfer of n records: the bus is held for
	// n×LogRecordDMABus cycles, and the transfer completes one DMA setup
	// (LogRecordDMATotal − LogRecordDMABus cycles) after the grant plus
	// the bus time. For n == 1 this is exactly the per-record cost.
	dmaReady := start + cycles.LoggerLookupCycles
	busCycles := uint32(n) * cycles.LogRecordDMABus
	grant := l.bus.Acquire(dmaReady, busCycles)
	complete := grant + (cycles.LogRecordDMATotal - cycles.LogRecordDMABus) + uint64(busCycles)
	l.ms.Add(metrics.HWDMAWaitCycles, grant-dmaReady)

	oldest := head.Time
	frame := l.mem.Frame(phys.PPN(lt.Addr))
	off := int(lt.Addr & phys.PageMask)
	written := 0
	if l.DMAHook == nil {
		// Fast path: encode straight out of the ring and advance the head
		// once for the whole batch.
		idx := l.fifoHead
		for i := 0; i < n; i++ {
			e := &l.fifo[idx]
			rec := logrec.Record{
				Addr:      e.Addr,
				Value:     e.Value,
				WriteSize: e.Size,
				CPU:       e.CPU,
				Timestamp: cycles.ToTimestamp(e.Time),
			}
			rec.Encode(frame[off+written : off+written+logrec.Size])
			written += logrec.Size
			idx++
			if idx == len(l.fifo) {
				idx = 0
			}
		}
		l.fifoHead = idx
		l.fifoLen -= n
		l.headSeq += uint64(n)
		if l.fifoLen == 0 {
			l.absorbSig = 0
		}
		l.RecordsWritten += uint64(n)
		l.ms.Add(metrics.HWRecordsDMAed, uint64(n))
	} else {
		for i := 0; i < n; i++ {
			e := l.pop()
			rec := logrec.Record{
				Addr:      e.Addr,
				Value:     e.Value,
				WriteSize: e.Size,
				CPU:       e.CPU,
				Timestamp: cycles.ToTimestamp(e.Time),
			}
			l.hookRec = rec
			if l.DMAHook(&l.hookRec, lt.Addr+phys.Addr(written)) {
				// This record's transfer was lost: the later batch members
				// close the gap so the log stays dense.
				l.recordLost()
				continue
			}
			rec = l.hookRec
			rec.Encode(frame[off+written : off+written+logrec.Size])
			written += logrec.Size
			l.RecordsWritten++
			l.ms.Inc(metrics.HWRecordsDMAed)
		}
	}
	if written > 0 {
		lt.Addr += phys.Addr(written)
		if lt.Addr&phys.PageMask == 0 {
			lt.Valid = false
		}
	}
	l.GroupCommits++
	l.ms.Inc(metrics.HWGroupCommits)
	l.ms.Observe(metrics.HistBatchSize, uint64(n))
	l.ms.Observe(metrics.HistCommitLatency, complete-oldest)
	l.freeAt = complete
}

// recordLost tallies a dropped record in both the legacy stats field and
// the metrics shard.
func (l *Logger) recordLost() {
	l.RecordsLost++
	l.ms.Inc(metrics.HWRecordsLost)
}

// PendingWrites visits every FIFO entry not yet DMAed, oldest first,
// without consuming them (crash forensics: the fault injector captures
// the in-flight writes a power loss would destroy).
func (l *Logger) PendingWrites(fn func(w machine.LoggedWrite)) {
	for i := 0; i < l.fifoLen; i++ {
		idx := l.fifoHead + i
		if idx >= len(l.fifo) {
			idx -= len(l.fifo)
		}
		fn(l.fifo[idx])
	}
}

// DiscardPending empties the FIFOs without DMAing the queued records,
// modeling the loss of the volatile FIFO chips at a crash. It returns the
// number of entries discarded; the caller (the fault injector) owns the
// accounting of what was lost.
func (l *Logger) DiscardPending() int {
	n := l.fifoLen
	l.headSeq += uint64(n)
	l.absorbBase = l.headSeq
	l.absorbSig = 0
	l.fifoLen = 0
	l.fifoHead = 0
	return n
}
