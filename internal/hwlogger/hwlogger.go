// Package hwlogger models the prototype's hardware logger: the FPGA device
// on the ParaDiGM bus that snoops write operations to logged segments and
// translates each into a 16-byte log record DMAed into a log segment
// (Section 3.1 and Figures 4–6 of the paper).
//
// Structure (Figure 5):
//
//	snoop → write FIFO → page-mapping-table lookup → log-table lookup →
//	log-record FIFO → DMA
//
// The page mapping table is a direct-mapped, TLB-like structure keyed by
// the 20-bit physical page number: the low 15 bits index the table, the
// top 5 bits are the tag (Section 3.1: "A physical page address is looked
// up in this table by splitting it into a tag (upper five bits) and index
// (lower 15 bits)"). Each entry names a log-table index; the log table
// holds one entry per log with the physical address at which the next
// record is written. Appending a record advances that address by 16; if it
// crosses a page boundary the entry is marked invalid and the next write
// to the log raises a logging fault for the kernel to resolve.
//
// The FIFOs hold 819 entries; when occupancy exceeds 512 the logger is
// "overloaded" and interrupts the kernel, which suspends all processes
// that might generate log data until the FIFOs drain (Section 3.1.3).
package hwlogger

import (
	"lvm/internal/bus"
	"lvm/internal/cycles"
	"lvm/internal/logrec"
	"lvm/internal/machine"
	"lvm/internal/metrics"
	"lvm/internal/phys"
)

// Mode selects how the logger materializes writes into the log segment
// (Section 2.6: record mode is the default; direct-mapped and indexed
// modes support output).
type Mode uint8

const (
	// ModeRecord appends a 16-byte record per write (the default).
	ModeRecord Mode = iota
	// ModeDirect writes the datum at the corresponding offset in the log
	// page ("the logged updates to a segment are written to the
	// corresponding offset in the log segment").
	ModeDirect
	// ModeIndexed appends just the data values, 4 bytes each, without
	// addresses or timestamps ("the log generates a sequence of data
	// values into the log segment").
	ModeIndexed
)

// PMT geometry.
const (
	pmtIndexBits = 15
	pmtEntries   = 1 << pmtIndexBits
	pmtIndexMask = pmtEntries - 1
)

// PMTEntry is one page-mapping-table entry: physical page → log index.
type PMTEntry struct {
	Valid    bool
	Tag      uint8 // top 5 bits of the 20-bit PPN
	LogIndex uint16
}

// LogTableEntry holds the next record address for one log.
type LogTableEntry struct {
	Valid bool
	Mode  Mode
	// Addr is the physical address at which the next record is written.
	// In ModeDirect it is the base of the log page mirroring the data
	// page and is never advanced.
	Addr phys.Addr
}

// FaultKind distinguishes the two logging-fault causes (Section 3.2).
type FaultKind uint8

const (
	// FaultMissingPMT: the written page has no (or a conflicting)
	// page-mapping-table entry.
	FaultMissingPMT FaultKind = iota
	// FaultInvalidLogAddr: the log-table entry is invalid, typically
	// because the log address just crossed a page boundary.
	FaultInvalidLogAddr
)

// Fault describes a logging fault delivered to the kernel.
type Fault struct {
	Kind FaultKind
	// PPN is the physical page number of the faulting write.
	PPN uint32
	// LogIndex is the log involved (valid for FaultInvalidLogAddr and
	// for FaultMissingPMT when the conflicting entry was valid).
	LogIndex uint16
	// Write is the logged write being serviced.
	Write machine.LoggedWrite
}

// FaultHandler is the kernel's logging-fault handler. It must repair the
// logger's tables (LoadPMT / SetLogHead) and return true, or return false
// to drop the record (the kernel "needs to be prepared to discard data",
// Section 3.2).
type FaultHandler func(l *Logger, f Fault) bool

// Logger is the hardware logger device. It satisfies machine.LogDevice.
type Logger struct {
	bus *bus.Bus
	mem *phys.Memory

	pmt      []PMTEntry
	logTable []LogTableEntry

	// fifo is the combined occupancy of the write FIFO and log-record
	// FIFO (entries not yet DMAed): a fixed-capacity ring, like the
	// hardware's 819-entry FIFO chips — steady-state pushes and pops
	// never allocate.
	fifo     []machine.LoggedWrite
	fifoHead int
	fifoLen  int

	// freeAt is when the logger engine finishes its current service.
	freeAt uint64

	// OnFault is the kernel's logging-fault handler.
	OnFault FaultHandler
	// OnOverload, if set, is invoked on each overload event with the
	// cycle at which the drain completed; it returns the cycle at which
	// the processors may resume (the kernel adds its software overhead).
	// If nil, the default adds cycles.OverloadKernelCycles.
	OnOverload func(drainedAt uint64) (resumeAt uint64)

	// DMAHook, when non-nil, observes each record-mode DMA just before the
	// 16-byte record reaches memory at dst. The hook may mutate the record
	// (bit corruption) or return drop=true to lose it entirely (the drop
	// is tallied through the normal lost-record accounting). It is the
	// fault injector's insertion point; nil (the default) costs the DMA
	// path one predictable branch.
	DMAHook func(rec *logrec.Record, dst phys.Addr) (drop bool)
	// hookRec is the scratch record handed to DMAHook: hooks mutate it in
	// place, and keeping it on the Logger (rather than taking the address
	// of a local) keeps the record-mode DMA path allocation-free.
	hookRec logrec.Record

	// Capacity and threshold, configurable for experiments; defaults are
	// the prototype's 819/512.
	Capacity  int
	Threshold int

	// Stats.
	RecordsWritten uint64
	RecordsLost    uint64
	Overloads      uint64
	Faults         uint64
	StallCycles    uint64

	// ms is the metrics shard the logger charges hardware events to; tr
	// is the (possibly nil) event tracer. New installs a private shard so
	// increments never need a nil check; SetMetrics rebinds both to the
	// owning machine's registry.
	ms *metrics.Shard
	tr *metrics.Tracer
}

// New creates a logger attached to the given bus and memory.
func New(b *bus.Bus, mem *phys.Memory) *Logger {
	return &Logger{
		bus:       b,
		mem:       mem,
		pmt:       make([]PMTEntry, pmtEntries),
		logTable:  make([]LogTableEntry, 256),
		fifo:      make([]machine.LoggedWrite, cycles.LoggerFIFOEntries),
		Capacity:  cycles.LoggerFIFOEntries,
		Threshold: cycles.LoggerOverloadThreshold,
		ms:        metrics.New(1).Shard(0),
	}
}

// SetMetrics points the logger's hardware-event counters at sh (typically
// the machine's device shard) and its trace emissions at tr (may be nil).
func (l *Logger) SetMetrics(sh *metrics.Shard, tr *metrics.Tracer) {
	if sh != nil {
		l.ms = sh
	}
	l.tr = tr
}

// Pending reports the current combined FIFO occupancy.
func (l *Logger) Pending() int { return l.fifoLen }

// FreeAt reports when the logger engine is next idle.
func (l *Logger) FreeAt() uint64 { return l.freeAt }

// --- Kernel-facing table management (Section 3.2) ---

// LoadPMT installs a page-mapping-table entry for the given physical page,
// returning the entry it displaced (valid==false if none).
func (l *Logger) LoadPMT(ppn uint32, logIndex uint16) (displaced PMTEntry) {
	idx := ppn & pmtIndexMask
	displaced = l.pmt[idx]
	l.pmt[idx] = PMTEntry{Valid: true, Tag: uint8(ppn >> pmtIndexBits), LogIndex: logIndex}
	return displaced
}

// InvalidatePMT removes the entry for ppn if it maps that page.
func (l *Logger) InvalidatePMT(ppn uint32) {
	idx := ppn & pmtIndexMask
	if l.pmt[idx].Valid && l.pmt[idx].Tag == uint8(ppn>>pmtIndexBits) {
		l.pmt[idx].Valid = false
	}
}

// LookupPMT reports the log index for ppn, if mapped.
func (l *Logger) LookupPMT(ppn uint32) (logIndex uint16, ok bool) {
	e := l.pmt[ppn&pmtIndexMask]
	if e.Valid && e.Tag == uint8(ppn>>pmtIndexBits) {
		return e.LogIndex, true
	}
	return 0, false
}

// SetLogHead sets the next-record address (and mode) for a log.
func (l *Logger) SetLogHead(logIndex uint16, addr phys.Addr, mode Mode) {
	l.logTable[logIndex] = LogTableEntry{Valid: true, Mode: mode, Addr: addr}
}

// InvalidateLog marks a log-table entry invalid.
func (l *Logger) InvalidateLog(logIndex uint16) { l.logTable[logIndex].Valid = false }

// LogHead reports a log's table entry (for tests and the kernel).
func (l *Logger) LogHead(logIndex uint16) LogTableEntry { return l.logTable[logIndex] }

// NumLogs reports the log-table capacity.
func (l *Logger) NumLogs() int { return len(l.logTable) }

// --- machine.LogDevice ---

// Snoop accepts a logged write from the bus. When the combined FIFO
// occupancy exceeds the overload threshold, the logger interrupts the
// kernel, which suspends the processors until the FIFOs drain; Snoop
// models that by returning the resume cycle.
func (l *Logger) Snoop(w machine.LoggedWrite) (stallUntil uint64) {
	l.push(w)
	l.ms.Inc(metrics.HWSnoops)
	l.ms.Observe(metrics.HistFIFODepth, uint64(l.fifoLen))
	l.ms.SetMax(metrics.HWFIFOHighWater, uint64(l.fifoLen))
	if l.Pending() >= l.Threshold {
		l.Overloads++
		l.ms.Inc(metrics.HWOverloads)
		drained := l.DrainAll()
		resume := drained + cycles.OverloadKernelCycles
		if l.OnOverload != nil {
			resume = l.OnOverload(drained)
		}
		if resume > w.Time {
			l.StallCycles += resume - w.Time
			l.ms.Add(metrics.HWOverloadDrainCycles, resume-w.Time)
		}
		l.tr.Emit(w.Time, metrics.EvOverload, int(w.CPU), drained, resume)
		return resume
	}
	return w.Time
}

// PumpUntil services queued writes whose DMA would request the bus before
// cycle t (the arrival time of the next competing bus request). Records
// whose bus request would come later wait their turn: arbitration is
// first-come-first-served by request time, so the logger does not reserve
// future bus slots ahead of an earlier CPU request.
func (l *Logger) PumpUntil(t uint64) {
	for l.Pending() > 0 {
		start := l.freeAt
		if e := l.fifo[l.fifoHead]; e.Time > start {
			start = e.Time
		}
		if start+cycles.LoggerLookupCycles >= t {
			return
		}
		l.serviceOne()
	}
}

// DrainAll services everything queued and returns the idle cycle.
func (l *Logger) DrainAll() uint64 {
	for l.Pending() > 0 {
		l.serviceOne()
	}
	return l.freeAt
}

func (l *Logger) push(w machine.LoggedWrite) {
	if l.fifoLen >= l.Capacity {
		// Cannot happen with threshold < capacity, but never lose the
		// accounting if an experiment disables overloads.
		l.recordLost()
		return
	}
	if l.fifoLen == 0 {
		// Empty ring: rewind so the common drained-between-stores case
		// keeps reusing the same few slots instead of streaming through
		// the whole ring (which evicts it from the host's L1).
		l.fifoHead = 0
	} else if l.fifoLen == len(l.fifo) {
		// Capacity was raised past the ring's allocation (experiments
		// resize the FIFO after New): re-linearize into a larger ring,
		// once per resize.
		grown := make([]machine.LoggedWrite, l.Capacity)
		for i := 0; i < l.fifoLen; i++ {
			grown[i] = l.fifo[(l.fifoHead+i)%len(l.fifo)]
		}
		l.fifo = grown
		l.fifoHead = 0
	}
	idx := l.fifoHead + l.fifoLen
	if idx >= len(l.fifo) {
		idx -= len(l.fifo)
	}
	l.fifo[idx] = w
	l.fifoLen++
}

func (l *Logger) pop() machine.LoggedWrite {
	w := l.fifo[l.fifoHead]
	l.fifoHead++
	if l.fifoHead == len(l.fifo) {
		l.fifoHead = 0
	}
	l.fifoLen--
	return w
}

// serviceOne processes the FIFO head: PMT lookup, log-table lookup, record
// assembly, and DMA, raising logging faults to the kernel as needed.
func (l *Logger) serviceOne() {
	e := l.pop()
	start := l.freeAt
	if e.Time > start {
		start = e.Time
	}

	ppn := phys.PPN(e.Addr)
	logIndex, ok := l.LookupPMT(ppn)
	if !ok {
		l.Faults++
		l.ms.Inc(metrics.HWLoggingFaultsPMT)
		l.tr.Emit(start, metrics.EvLoggingFault, int(e.CPU), uint64(FaultMissingPMT), uint64(ppn))
		start += cycles.LoggingFaultCycles
		if l.OnFault == nil || !l.OnFault(l, Fault{Kind: FaultMissingPMT, PPN: ppn, Write: e}) {
			l.recordLost()
			l.freeAt = start
			return
		}
		logIndex, ok = l.LookupPMT(ppn)
		if !ok {
			l.recordLost()
			l.freeAt = start
			return
		}
	}
	lt := &l.logTable[logIndex]
	if !lt.Valid {
		l.Faults++
		l.ms.Inc(metrics.HWLoggingFaultsLogAddr)
		l.tr.Emit(start, metrics.EvLoggingFault, int(e.CPU), uint64(FaultInvalidLogAddr), uint64(ppn))
		start += cycles.LoggingFaultCycles
		if l.OnFault == nil || !l.OnFault(l, Fault{Kind: FaultInvalidLogAddr, PPN: ppn, LogIndex: logIndex, Write: e}) {
			l.recordLost()
			l.freeAt = start
			return
		}
		lt = &l.logTable[logIndex]
		if !lt.Valid {
			l.recordLost()
			l.freeAt = start
			return
		}
	}

	// Internal lookup/assembly time, then the DMA. The DMA holds the bus
	// for LogRecordDMABus cycles and completes LogRecordDMATotal cycles
	// after it begins, so one uncontended record service costs
	// LoggerLookupCycles + LogRecordDMATotal = 33 cycles.
	dmaReady := start + cycles.LoggerLookupCycles
	grant := l.bus.Acquire(dmaReady, cycles.LogRecordDMABus)
	complete := grant + cycles.LogRecordDMATotal
	l.ms.Add(metrics.HWDMAWaitCycles, grant-dmaReady)

	switch lt.Mode {
	case ModeRecord:
		rec := logrec.Record{
			Addr:      e.Addr,
			Value:     e.Value,
			WriteSize: e.Size,
			CPU:       e.CPU,
			Timestamp: cycles.ToTimestamp(e.Time),
		}
		if l.DMAHook != nil {
			l.hookRec = rec
			if l.DMAHook(&l.hookRec, lt.Addr) {
				// The DMA transfer was lost: the head does not advance,
				// so later records close the gap and the log stays dense.
				l.recordLost()
				l.freeAt = complete
				return
			}
			rec = l.hookRec
		}
		var buf [logrec.Size]byte
		rec.Encode(buf[:])
		l.mem.WriteBlock16(lt.Addr, &buf)
		lt.Addr += logrec.Size
		if lt.Addr&phys.PageMask == 0 {
			lt.Valid = false
		}
	case ModeDirect:
		dst := lt.Addr + (e.Addr & phys.PageMask)
		var buf [4]byte
		n := int(e.Size)
		if n > 4 {
			n = 4
		}
		for i := 0; i < n; i++ {
			buf[i] = byte(e.Value >> (8 * i))
		}
		l.mem.Write(dst, buf[:n])
	case ModeIndexed:
		l.mem.Write32(lt.Addr, e.Value)
		lt.Addr += 4
		if lt.Addr&phys.PageMask == 0 {
			lt.Valid = false
		}
	}
	l.RecordsWritten++
	l.ms.Inc(metrics.HWRecordsDMAed)
	l.freeAt = complete
}

// recordLost tallies a dropped record in both the legacy stats field and
// the metrics shard.
func (l *Logger) recordLost() {
	l.RecordsLost++
	l.ms.Inc(metrics.HWRecordsLost)
}

// PendingWrites visits every FIFO entry not yet DMAed, oldest first,
// without consuming them (crash forensics: the fault injector captures
// the in-flight writes a power loss would destroy).
func (l *Logger) PendingWrites(fn func(w machine.LoggedWrite)) {
	for i := 0; i < l.fifoLen; i++ {
		idx := l.fifoHead + i
		if idx >= len(l.fifo) {
			idx -= len(l.fifo)
		}
		fn(l.fifo[idx])
	}
}

// DiscardPending empties the FIFOs without DMAing the queued records,
// modeling the loss of the volatile FIFO chips at a crash. It returns the
// number of entries discarded; the caller (the fault injector) owns the
// accounting of what was lost.
func (l *Logger) DiscardPending() int {
	n := l.fifoLen
	l.fifoLen = 0
	l.fifoHead = 0
	return n
}
