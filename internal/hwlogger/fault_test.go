package hwlogger

import (
	"testing"

	"lvm/internal/logrec"
	"lvm/internal/machine"
	"lvm/internal/phys"
)

// TestDMAHookDropKeepsLogDense: a dropped DMA must not advance the log
// head, so the surviving records stay contiguous (the fault injector
// depends on this to compute ground-truth damage offsets).
func TestDMAHookDropKeepsLogDense(t *testing.T) {
	l, mem, _ := newRig(t, 8)
	l.LoadPMT(1, 0)
	l.SetLogHead(0, 0x2000, ModeRecord)

	var seen int
	l.DMAHook = func(rec *logrec.Record, dst phys.Addr) bool {
		seen++
		return rec.Value == 2 // lose the middle write
	}
	for i := uint32(1); i <= 3; i++ {
		l.Snoop(machine.LoggedWrite{Addr: 0x1000 + 4*i, Value: i, Size: 4, Time: uint64(i * 10)})
	}
	l.DrainAll()

	if seen != 3 {
		t.Fatalf("hook saw %d records, want 3", seen)
	}
	if l.RecordsLost != 1 || l.RecordsWritten != 2 {
		t.Fatalf("lost=%d written=%d, want 1/2", l.RecordsLost, l.RecordsWritten)
	}
	recs := logrec.DecodeAll(mem.Frame(2)[:2*logrec.Size])
	if recs[0].Value != 1 || recs[1].Value != 3 {
		t.Fatalf("surviving records = %v, want values 1 then 3 (dense)", recs)
	}
	if h := l.LogHead(0); h.Addr != 0x2000+2*logrec.Size {
		t.Fatalf("log head = %#x, want to advance by exactly 2 records", h.Addr)
	}
}

// TestDMAHookMutatesRecord: in-place corruption through the hook must land
// in memory, and the scratch-record plumbing must not leak the mutation
// into later records.
func TestDMAHookMutatesRecord(t *testing.T) {
	l, mem, _ := newRig(t, 8)
	l.LoadPMT(1, 0)
	l.SetLogHead(0, 0x2000, ModeRecord)

	first := true
	l.DMAHook = func(rec *logrec.Record, dst phys.Addr) bool {
		if first {
			rec.Value ^= 0xdeadbeef
			first = false
		}
		return false
	}
	l.Snoop(machine.LoggedWrite{Addr: 0x1000, Value: 7, Size: 4, Time: 10})
	l.Snoop(machine.LoggedWrite{Addr: 0x1004, Value: 8, Size: 4, Time: 20})
	l.DrainAll()

	recs := logrec.DecodeAll(mem.Frame(2)[:2*logrec.Size])
	if recs[0].Value != 7^0xdeadbeef {
		t.Fatalf("corrupted record value = %#x, want %#x", recs[0].Value, uint32(7)^0xdeadbeef)
	}
	if recs[1].Value != 8 {
		t.Fatalf("second record value = %#x, corruption leaked", recs[1].Value)
	}
}

// TestPendingWritesAndDiscard models the crash capture: the injector reads
// the volatile FIFO contents, then discards them without DMA.
func TestPendingWritesAndDiscard(t *testing.T) {
	l, mem, _ := newRig(t, 8)
	l.LoadPMT(1, 0)
	l.SetLogHead(0, 0x2000, ModeRecord)

	for i := uint32(0); i < 4; i++ {
		l.Snoop(machine.LoggedWrite{Addr: 0x1000 + 4*i, Value: 100 + i, Size: 4, Time: uint64(i)})
	}
	var vals []uint32
	l.PendingWrites(func(w machine.LoggedWrite) { vals = append(vals, w.Value) })
	if len(vals) != 4 {
		t.Fatalf("PendingWrites visited %d entries, want 4", len(vals))
	}
	for i, v := range vals {
		if v != 100+uint32(i) {
			t.Fatalf("pending[%d] = %d, not oldest-first", i, v)
		}
	}
	// Visiting must not consume.
	if l.Pending() != 4 {
		t.Fatalf("Pending = %d after visit, want 4", l.Pending())
	}
	if n := l.DiscardPending(); n != 4 {
		t.Fatalf("DiscardPending = %d, want 4", n)
	}
	if l.Pending() != 0 {
		t.Fatalf("Pending = %d after discard", l.Pending())
	}
	// Nothing reached memory.
	if rec := logrec.Decode(mem.Frame(2)[:]); rec.Value != 0 {
		t.Fatalf("discarded record reached memory: %+v", rec)
	}
	if l.RecordsWritten != 0 {
		t.Fatalf("RecordsWritten = %d after discard", l.RecordsWritten)
	}
}
