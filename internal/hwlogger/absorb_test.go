package hwlogger

import (
	"testing"

	"lvm/internal/cycles"
	"lvm/internal/logrec"
	"lvm/internal/machine"
)

func snoopW(l *Logger, addr, value uint32, tm uint64) {
	l.Snoop(machine.LoggedWrite{Addr: addr, Value: value, Size: 4, Time: tm})
}

// TestAbsorbCoalescesRepeatedStores: within the window, a repeated store
// to the same word rewrites the pending FIFO cell — one record, final
// value, the ORIGINAL timestamp — instead of enqueueing a second record.
func TestAbsorbCoalescesRepeatedStores(t *testing.T) {
	l, mem, _ := newRig(t, 8)
	l.LoadPMT(1, 0)
	l.SetLogHead(0, 0x2000, ModeRecord)
	l.SetAbsorbWindow(8)

	snoopW(l, 0x1100, 1, 10)
	snoopW(l, 0x1104, 2, 20)
	snoopW(l, 0x1100, 3, 30) // absorbs into the first entry
	if l.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2 after absorption", l.Pending())
	}
	if l.RecordsAbsorbed != 1 {
		t.Fatalf("RecordsAbsorbed = %d, want 1", l.RecordsAbsorbed)
	}
	l.DrainAll()

	r0 := logrec.Decode(mem.Frame(2)[0:])
	r1 := logrec.Decode(mem.Frame(2)[16:])
	if r0.Addr != 0x1100 || r0.Value != 3 {
		t.Fatalf("record 0 = %+v, want coalesced value 3", r0)
	}
	if r0.Timestamp != cycles.ToTimestamp(10) {
		t.Fatalf("coalesced timestamp = %d, want the original store's (%d)",
			r0.Timestamp, cycles.ToTimestamp(10))
	}
	if r1.Addr != 0x1104 || r1.Value != 2 {
		t.Fatalf("record 1 = %+v", r1)
	}
	if l.RecordsWritten != 2 {
		t.Fatalf("RecordsWritten = %d, want 2", l.RecordsWritten)
	}
}

// TestAbsorbWindowBound: an entry older than the window is not a
// coalescing target.
func TestAbsorbWindowBound(t *testing.T) {
	l, _, _ := newRig(t, 8)
	l.LoadPMT(1, 0)
	l.SetLogHead(0, 0x2000, ModeRecord)
	l.SetAbsorbWindow(2)

	snoopW(l, 0x1100, 1, 10)
	snoopW(l, 0x1104, 2, 20)
	snoopW(l, 0x1108, 3, 30)
	snoopW(l, 0x1100, 4, 40) // 0x1100 now outside the 2-entry window
	if l.Pending() != 4 || l.RecordsAbsorbed != 0 {
		t.Fatalf("Pending=%d absorbed=%d, want 4/0", l.Pending(), l.RecordsAbsorbed)
	}
	snoopW(l, 0x1108, 5, 50) // 0x1108 is within the window
	if l.Pending() != 4 || l.RecordsAbsorbed != 1 {
		t.Fatalf("Pending=%d absorbed=%d, want 4/1", l.Pending(), l.RecordsAbsorbed)
	}
}

// TestNoAbsorbPageIsBarrier: writes to a page with the absorb-enable bit
// clear (marker pages) are never coalesced, and they also fence earlier
// entries — a later store cannot absorb into an entry queued before the
// barrier, which is what keeps stores from moving across transaction
// markers.
func TestNoAbsorbPageIsBarrier(t *testing.T) {
	l, _, _ := newRig(t, 8)
	l.LoadPMT(1, 0) // data page
	l.LoadPMT(2, 0) // marker page
	l.SetPMTAbsorb(2, false)
	l.SetLogHead(0, 0x3000, ModeRecord)
	l.SetAbsorbWindow(8)

	snoopW(l, 0x1100, 1, 10) // data
	snoopW(l, 0x2000, 7, 20) // marker write: barrier, always enqueued
	snoopW(l, 0x2000, 8, 30) // marker again: still not coalesced
	snoopW(l, 0x1100, 2, 40) // must NOT absorb across the barrier
	if l.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4 (no coalescing across barrier)", l.Pending())
	}
	snoopW(l, 0x1100, 3, 50) // absorbs into the post-barrier 0x1100 entry
	if l.Pending() != 4 || l.RecordsAbsorbed != 1 {
		t.Fatalf("Pending=%d absorbed=%d, want 4/1", l.Pending(), l.RecordsAbsorbed)
	}
}

// TestAbsorbUnmappedPageIsBarrier: a write whose page misses the PMT will
// raise a logging fault at service time; at snoop time it must act as a
// barrier too (the logger cannot know where it routes).
func TestAbsorbUnmappedPageIsBarrier(t *testing.T) {
	l, _, _ := newRig(t, 8)
	l.LoadPMT(1, 0)
	l.SetLogHead(0, 0x2000, ModeRecord)
	l.SetAbsorbWindow(8)

	snoopW(l, 0x1100, 1, 10)
	snoopW(l, 0x5000, 9, 20) // unmapped page
	snoopW(l, 0x1100, 2, 30)
	if l.Pending() != 3 || l.RecordsAbsorbed != 0 {
		t.Fatalf("Pending=%d absorbed=%d, want 3/0", l.Pending(), l.RecordsAbsorbed)
	}
}

// TestGroupCommitBatchCycles pins the batched DMA cycle model: a batch of
// n records costs one lookup (15) + one DMA setup (10) + n×8 bus cycles,
// against n×33 for per-record service.
func TestGroupCommitBatchCycles(t *testing.T) {
	l, mem, _ := newRig(t, 8)
	l.LoadPMT(1, 0)
	l.SetLogHead(0, 0x2000, ModeRecord)
	l.SetGroupCommit(4, 10_000)

	for i := uint64(0); i < 4; i++ {
		snoopW(l, 0x1100+uint32(i*4), uint32(i), 100+i)
	}
	idle := l.DrainAll()
	// The batch begins at its youngest member's arrival (103); dmaReady =
	// 103+15 = 118, bus granted at 118 for 4*8 = 32 cycles, complete =
	// 118 + (18-8) + 32 = 160.
	want := uint64(103 + cycles.LoggerLookupCycles +
		(cycles.LogRecordDMATotal - cycles.LogRecordDMABus) + 4*cycles.LogRecordDMABus)
	if idle != want {
		t.Fatalf("batch completion = %d, want %d", idle, want)
	}
	if l.GroupCommits != 1 || l.RecordsWritten != 4 {
		t.Fatalf("GroupCommits=%d RecordsWritten=%d, want 1/4", l.GroupCommits, l.RecordsWritten)
	}
	for i := uint32(0); i < 4; i++ {
		rec := logrec.Decode(mem.Frame(2)[16*i:])
		if rec.Addr != 0x1100+i*4 || rec.Value != i {
			t.Fatalf("record %d = %+v", i, rec)
		}
	}
	if h := l.LogHead(0); !h.Valid || h.Addr != 0x2040 {
		t.Fatalf("log head = %+v, want @0x2040", h)
	}
}

// TestGroupCommitSingleMatchesLegacy: a batch of one must cost exactly
// the per-record 33 cycles, so enabling group commit does not change the
// model for sparse write streams.
func TestGroupCommitSingleMatchesLegacy(t *testing.T) {
	legacy, _, _ := newRig(t, 8)
	legacy.LoadPMT(1, 0)
	legacy.SetLogHead(0, 0x2000, ModeRecord)
	snoopW(legacy, 0x1100, 1, 100)
	wantIdle := legacy.DrainAll()

	grouped, _, _ := newRig(t, 8)
	grouped.LoadPMT(1, 0)
	grouped.SetLogHead(0, 0x2000, ModeRecord)
	grouped.SetGroupCommit(8, 1024)
	snoopW(grouped, 0x1100, 1, 100)
	if idle := grouped.DrainAll(); idle != wantIdle {
		t.Fatalf("single-record group commit idle = %d, legacy = %d", idle, wantIdle)
	}
}

// TestGroupCommitDeadline: with a long deadline and a partial batch,
// PumpUntil holds the records back; once the head ages past the deadline
// the partial batch flushes.
func TestGroupCommitDeadline(t *testing.T) {
	l, _, _ := newRig(t, 8)
	l.LoadPMT(1, 0)
	l.SetLogHead(0, 0x2000, ModeRecord)
	l.SetGroupCommit(8, 500)

	snoopW(l, 0x1100, 1, 100)
	snoopW(l, 0x1104, 2, 120)
	l.PumpUntil(400) // deadline (100+500) not reached: nothing drains
	if l.Pending() != 2 || l.RecordsWritten != 0 {
		t.Fatalf("drained before deadline: pending=%d written=%d", l.Pending(), l.RecordsWritten)
	}
	l.PumpUntil(10_000) // way past the deadline: partial batch flushes
	if l.Pending() != 0 || l.RecordsWritten != 2 || l.GroupCommits != 1 {
		t.Fatalf("deadline flush: pending=%d written=%d commits=%d",
			l.Pending(), l.RecordsWritten, l.GroupCommits)
	}
}

// TestGroupCommitFullBatchDoesNotWaitForDeadline: once groupSize records
// are queued the batch is ready at the Nth record's arrival, not at the
// head's deadline.
func TestGroupCommitFullBatchDoesNotWaitForDeadline(t *testing.T) {
	l, _, _ := newRig(t, 8)
	l.LoadPMT(1, 0)
	l.SetLogHead(0, 0x2000, ModeRecord)
	l.SetGroupCommit(2, 100_000)

	snoopW(l, 0x1100, 1, 100)
	snoopW(l, 0x1104, 2, 140)
	l.PumpUntil(1_000)
	if l.RecordsWritten != 2 || l.GroupCommits != 1 {
		t.Fatalf("full batch waited for deadline: written=%d commits=%d",
			l.RecordsWritten, l.GroupCommits)
	}
}

// TestGroupCommitStopsAtPageBoundary: a batch never crosses the log page;
// the page-crossing head invalidation (and the logging fault it causes)
// happens exactly as in per-record service.
func TestGroupCommitStopsAtPageBoundary(t *testing.T) {
	l, _, _ := newRig(t, 8)
	l.LoadPMT(1, 0)
	// 2 record slots left in the log page.
	l.SetLogHead(0, 0x2fe0, ModeRecord)
	l.SetGroupCommit(8, 0)

	for i := uint32(0); i < 3; i++ {
		snoopW(l, 0x1100+i*4, i, 100)
	}
	// First batch: 2 records, then the head goes invalid at the boundary.
	faults := 0
	l.OnFault = func(lg *Logger, f Fault) bool {
		faults++
		lg.SetLogHead(0, 0x4000, ModeRecord)
		return true
	}
	l.DrainAll()
	if l.RecordsWritten != 3 {
		t.Fatalf("RecordsWritten = %d, want 3", l.RecordsWritten)
	}
	if faults != 1 {
		t.Fatalf("faults = %d, want 1 page-crossing fault", faults)
	}
	if h := l.LogHead(0); !h.Valid || h.Addr != 0x4010 {
		t.Fatalf("log head = %+v, want @0x4010", h)
	}
}

// TestGroupCommitMixedLogsSplitBatches: records routed to different logs
// never share a batch.
func TestGroupCommitMixedLogsSplitBatches(t *testing.T) {
	l, _, _ := newRig(t, 8)
	l.LoadPMT(1, 0)
	l.LoadPMT(2, 1)
	l.SetLogHead(0, 0x3000, ModeRecord)
	l.SetLogHead(1, 0x4000, ModeRecord)
	l.SetGroupCommit(8, 0)

	snoopW(l, 0x1100, 1, 100)
	snoopW(l, 0x1104, 2, 100)
	snoopW(l, 0x2100, 3, 100)
	snoopW(l, 0x1108, 4, 100)
	l.DrainAll()
	if l.RecordsWritten != 4 {
		t.Fatalf("RecordsWritten = %d", l.RecordsWritten)
	}
	if l.GroupCommits != 3 {
		t.Fatalf("GroupCommits = %d, want 3 (log0 pair, log1 single, log0 single)", l.GroupCommits)
	}
	if h0 := l.LogHead(0); h0.Addr != 0x3030 {
		t.Fatalf("log 0 head = %+v, want @0x3030", h0)
	}
	if h1 := l.LogHead(1); h1.Addr != 0x4010 {
		t.Fatalf("log 1 head = %+v, want @0x4010", h1)
	}
}

// TestDiscardPendingResetsAbsorption: after a crash discard, no stale
// sequence state lets a new write absorb into entries that no longer
// exist.
func TestDiscardPendingResetsAbsorption(t *testing.T) {
	l, _, _ := newRig(t, 8)
	l.LoadPMT(1, 0)
	l.SetLogHead(0, 0x2000, ModeRecord)
	l.SetAbsorbWindow(8)

	snoopW(l, 0x1100, 1, 10)
	if n := l.DiscardPending(); n != 1 {
		t.Fatalf("DiscardPending = %d", n)
	}
	snoopW(l, 0x1100, 2, 20)
	if l.Pending() != 1 || l.RecordsAbsorbed != 0 {
		t.Fatalf("absorbed into a discarded entry: pending=%d absorbed=%d",
			l.Pending(), l.RecordsAbsorbed)
	}
}
