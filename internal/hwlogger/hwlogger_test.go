package hwlogger

import (
	"testing"

	"lvm/internal/bus"
	"lvm/internal/cycles"
	"lvm/internal/logrec"
	"lvm/internal/machine"
	"lvm/internal/phys"
)

// newRig builds a logger over a private bus and memory with the frames for
// physical pages [1..n] pre-allocated so tests can address them directly.
func newRig(t *testing.T, frames int) (*Logger, *phys.Memory, *bus.Bus) {
	t.Helper()
	mem := phys.NewMemory(frames + 1)
	for i := 0; i < frames; i++ {
		if _, err := mem.Alloc(); err != nil {
			t.Fatalf("alloc frame: %v", err)
		}
	}
	b := bus.New()
	return New(b, mem), mem, b
}

// TestWorkedExample reproduces the example of Section 3.1.1 / Figure 6:
// physical pages 0x1xxx and 0x2xxx are logged in log 1; log-table entry 1
// points at 0x7d20; the CPU writes 0x4321 to 0x1250; the logger emits the
// record "00001250 00004321 0004 <timestamp>" at 0x7d20 and advances the
// entry to 0x7d30.
func TestWorkedExample(t *testing.T) {
	l, mem, _ := newRig(t, 8)
	l.LoadPMT(1, 1) // page 0x1xxx -> log 1
	l.LoadPMT(2, 1) // page 0x2xxx -> log 1
	l.SetLogHead(1, 0x7d20, ModeRecord)

	l.Snoop(machine.LoggedWrite{Addr: 0x1250, Value: 0x4321, Size: 4, CPU: 0, Time: 40})
	l.DrainAll()

	rec := logrec.Decode(mem.Frame(7)[0xd20:])
	if rec.Addr != 0x1250 || rec.Value != 0x4321 || rec.WriteSize != 4 {
		t.Fatalf("record = %+v", rec)
	}
	if rec.Timestamp != cycles.ToTimestamp(40) {
		t.Fatalf("timestamp = %d, want %d", rec.Timestamp, cycles.ToTimestamp(40))
	}
	if h := l.LogHead(1); !h.Valid || h.Addr != 0x7d30 {
		t.Fatalf("log head = %+v, want valid @0x7d30", h)
	}
	if l.RecordsWritten != 1 {
		t.Fatalf("RecordsWritten = %d", l.RecordsWritten)
	}
}

func TestRecordsAreTimeOrdered(t *testing.T) {
	l, mem, _ := newRig(t, 8)
	l.LoadPMT(1, 0)
	l.SetLogHead(0, 0x2000, ModeRecord)
	for i := 0; i < 10; i++ {
		l.Snoop(machine.LoggedWrite{Addr: 0x1000 + uint32(i*4), Value: uint32(i), Size: 4, Time: uint64(i * 6)})
	}
	l.DrainAll()
	recs := logrec.DecodeAll(mem.Frame(2)[:10*logrec.Size])
	for i := 1; i < len(recs); i++ {
		if recs[i].Timestamp < recs[i-1].Timestamp {
			t.Fatalf("records out of order at %d: %v then %v", i, recs[i-1], recs[i])
		}
		if recs[i].Value != uint32(i) {
			t.Fatalf("record %d value = %d", i, recs[i].Value)
		}
	}
}

func TestPageCrossingInvalidatesHead(t *testing.T) {
	l, _, _ := newRig(t, 8)
	l.LoadPMT(1, 0)
	l.SetLogHead(0, 0x3000-logrec.Size, ModeRecord) // one record left in page 2
	l.Snoop(machine.LoggedWrite{Addr: 0x1000, Value: 1, Size: 4, Time: 10})
	l.DrainAll()
	if h := l.LogHead(0); h.Valid {
		t.Fatalf("log head still valid after page crossing: %+v", h)
	}
}

func TestInvalidHeadFaultsAndKernelFixes(t *testing.T) {
	l, mem, _ := newRig(t, 8)
	l.LoadPMT(1, 0)
	var faults []Fault
	l.OnFault = func(lg *Logger, f Fault) bool {
		faults = append(faults, f)
		lg.SetLogHead(0, 0x4000, ModeRecord)
		return true
	}
	l.Snoop(machine.LoggedWrite{Addr: 0x1008, Value: 7, Size: 4, Time: 5})
	l.DrainAll()
	if len(faults) != 1 || faults[0].Kind != FaultInvalidLogAddr {
		t.Fatalf("faults = %+v", faults)
	}
	rec := logrec.Decode(mem.Frame(4)[:])
	if rec.Value != 7 {
		t.Fatalf("record after fault fix = %+v", rec)
	}
}

func TestMissingPMTFaults(t *testing.T) {
	l, _, _ := newRig(t, 8)
	var got Fault
	l.OnFault = func(lg *Logger, f Fault) bool {
		got = f
		return false // kernel declines: record dropped
	}
	l.Snoop(machine.LoggedWrite{Addr: 0x5123, Value: 1, Size: 4, Time: 1})
	l.DrainAll()
	if got.Kind != FaultMissingPMT || got.PPN != 5 {
		t.Fatalf("fault = %+v", got)
	}
	if l.RecordsLost != 1 {
		t.Fatalf("RecordsLost = %d, want 1", l.RecordsLost)
	}
}

func TestPMTTagMismatchIsMissing(t *testing.T) {
	l, _, _ := newRig(t, 8)
	// Two pages with the same PMT index but different tags: PPN x and
	// x + 2^15.
	l.LoadPMT(3, 0)
	other := uint32(3 + (1 << 15))
	if _, ok := l.LookupPMT(other); ok {
		t.Fatalf("tag mismatch lookup succeeded")
	}
	if idx, ok := l.LookupPMT(3); !ok || idx != 0 {
		t.Fatalf("lookup(3) = %d,%v", idx, ok)
	}
	// Loading the conflicting page displaces the first.
	displaced := l.LoadPMT(other, 1)
	if !displaced.Valid || displaced.LogIndex != 0 {
		t.Fatalf("displaced = %+v", displaced)
	}
	if _, ok := l.LookupPMT(3); ok {
		t.Fatalf("displaced entry still present")
	}
}

func TestOverloadDrainsAndStalls(t *testing.T) {
	l, _, _ := newRig(t, 8)
	l.LoadPMT(1, 0)
	l.SetLogHead(0, 0x2000, ModeRecord)
	l.OnFault = func(lg *Logger, f Fault) bool {
		// Keep the log running through page crossings.
		if f.Kind == FaultInvalidLogAddr {
			lg.SetLogHead(0, 0x2000, ModeRecord) // wrap in place
			return true
		}
		return false
	}
	var stall uint64
	for i := 0; ; i++ {
		s := l.Snoop(machine.LoggedWrite{Addr: 0x1000, Value: uint32(i), Size: 4, Time: uint64(i)})
		if s > uint64(i) {
			stall = s
			break
		}
		if i > 2*cycles.LoggerOverloadThreshold {
			t.Fatalf("no overload after %d writes", i)
		}
	}
	if l.Overloads != 1 {
		t.Fatalf("Overloads = %d, want 1", l.Overloads)
	}
	if l.Pending() != 0 {
		t.Fatalf("FIFO not drained after overload: %d pending", l.Pending())
	}
	// The stall must cover the drain plus the kernel overhead: > 30,000
	// cycles per Section 4.5.3.
	if stall < 30_000 {
		t.Fatalf("overload stall = %d cycles, want > 30000", stall)
	}
}

func TestServiceCostUncontended(t *testing.T) {
	l, _, _ := newRig(t, 8)
	l.LoadPMT(1, 0)
	l.SetLogHead(0, 0x2000, ModeRecord)
	l.Snoop(machine.LoggedWrite{Addr: 0x1000, Value: 1, Size: 4, Time: 100})
	done := l.DrainAll()
	if done != 100+cycles.LoggerServiceCycles {
		t.Fatalf("service completed at %d, want %d", done, 100+cycles.LoggerServiceCycles)
	}
}

func TestDirectMode(t *testing.T) {
	l, mem, _ := newRig(t, 8)
	l.LoadPMT(1, 0)
	l.SetLogHead(0, 0x6000, ModeDirect)
	l.Snoop(machine.LoggedWrite{Addr: 0x1250, Value: 0xCAFE, Size: 2, Time: 1})
	l.Snoop(machine.LoggedWrite{Addr: 0x1254, Value: 0xBEEF, Size: 2, Time: 2})
	l.DrainAll()
	f := mem.Frame(6)
	if got := uint32(f[0x250]) | uint32(f[0x251])<<8; got != 0xCAFE {
		t.Fatalf("direct write 1 = %#x", got)
	}
	if got := uint32(f[0x254]) | uint32(f[0x255])<<8; got != 0xBEEF {
		t.Fatalf("direct write 2 = %#x", got)
	}
	if h := l.LogHead(0); !h.Valid || h.Addr != 0x6000 {
		t.Fatalf("direct-mode head moved: %+v", h)
	}
}

func TestIndexedMode(t *testing.T) {
	l, mem, _ := newRig(t, 8)
	l.LoadPMT(1, 0)
	l.SetLogHead(0, 0x7000, ModeIndexed)
	for i := uint32(0); i < 5; i++ {
		l.Snoop(machine.LoggedWrite{Addr: 0x1000 + i*8, Value: 100 + i, Size: 4, Time: uint64(i)})
	}
	l.DrainAll()
	for i := uint32(0); i < 5; i++ {
		if got := mem.Read32(0x7000 + i*4); got != 100+i {
			t.Fatalf("indexed value %d = %d, want %d", i, got, 100+i)
		}
	}
	if h := l.LogHead(0); h.Addr != 0x7014 {
		t.Fatalf("indexed head = %#x, want 0x7014", h.Addr)
	}
}

func TestPumpUntilStopsAtBoundary(t *testing.T) {
	l, _, _ := newRig(t, 8)
	l.LoadPMT(1, 0)
	l.SetLogHead(0, 0x2000, ModeRecord)
	l.Snoop(machine.LoggedWrite{Addr: 0x1000, Value: 1, Size: 4, Time: 100})
	l.Snoop(machine.LoggedWrite{Addr: 0x1004, Value: 2, Size: 4, Time: 106})
	// The first record's DMA requests the bus at 100+lookup; a competing
	// request arriving before then goes first, so the pump must not
	// service it.
	l.PumpUntil(100 + cycles.LoggerLookupCycles)
	if l.Pending() != 2 {
		t.Fatalf("PumpUntil serviced a record whose bus request was later: %d pending", l.Pending())
	}
	l.PumpUntil(100 + cycles.LoggerLookupCycles + 1)
	if l.Pending() != 1 {
		t.Fatalf("PumpUntil did not service the first record")
	}
	l.DrainAll()
	if l.RecordsWritten != 2 {
		t.Fatalf("RecordsWritten = %d", l.RecordsWritten)
	}
}

func TestCapacityDropWhenOverloadDisabled(t *testing.T) {
	l, _, _ := newRig(t, 8)
	l.LoadPMT(1, 0)
	l.SetLogHead(0, 0x2000, ModeRecord)
	// Disable the overload interrupt (threshold beyond capacity): the
	// FIFO must drop excess writes rather than grow without bound.
	l.Capacity = 16
	l.Threshold = 1000
	for i := uint32(0); i < 40; i++ {
		l.Snoop(machine.LoggedWrite{Addr: 0x1000, Value: i, Size: 4, Time: 0})
	}
	if l.Pending() > 16 {
		t.Fatalf("FIFO exceeded capacity: %d", l.Pending())
	}
	if l.RecordsLost == 0 {
		t.Fatalf("no records dropped at capacity")
	}
	l.DrainAll()
}

func TestTimestampResolution(t *testing.T) {
	// The 6.25 MHz logger clock ticks once per four CPU cycles.
	l, mem, _ := newRig(t, 8)
	l.LoadPMT(1, 0)
	l.SetLogHead(0, 0x2000, ModeRecord)
	l.Snoop(machine.LoggedWrite{Addr: 0x1000, Value: 1, Size: 4, Time: 400})
	l.DrainAll()
	rec := logrec.Decode(mem.Frame(2)[:])
	if rec.Timestamp != 100 {
		t.Fatalf("timestamp = %d, want 100 (= 400 cycles / 4)", rec.Timestamp)
	}
}

func TestTwoLogsInterleave(t *testing.T) {
	l, mem, _ := newRig(t, 8)
	l.LoadPMT(1, 0)
	l.LoadPMT(2, 1)
	l.SetLogHead(0, 0x3000, ModeRecord)
	l.SetLogHead(1, 0x4000, ModeRecord)
	for i := uint32(0); i < 6; i++ {
		page := uint32(0x1000)
		if i%2 == 1 {
			page = 0x2000
		}
		l.Snoop(machine.LoggedWrite{Addr: page + i*4, Value: i, Size: 4, Time: uint64(i)})
	}
	l.DrainAll()
	for i := uint32(0); i < 3; i++ {
		a := logrec.Decode(mem.Frame(3)[i*16:])
		b := logrec.Decode(mem.Frame(4)[i*16:])
		if a.Value != i*2 || b.Value != i*2+1 {
			t.Fatalf("interleave broken: %v / %v", a, b)
		}
	}
}
