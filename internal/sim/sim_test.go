package sim

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrder(t *testing.T) {
	for _, w := range []int{1, 2, 8, 33} {
		SetWorkers(w)
		t.Cleanup(func() { SetWorkers(0) })
		out, err := Map(100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: len = %d", w, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestMapFirstErrorByIndex(t *testing.T) {
	SetWorkers(8)
	t.Cleanup(func() { SetWorkers(0) })
	out, err := Map(64, func(i int) (int, error) {
		if i == 7 || i == 40 {
			return 0, fmt.Errorf("point %d failed", i)
		}
		return i, nil
	})
	if out != nil {
		t.Fatalf("results on error: %v", out)
	}
	if err == nil || err.Error() != "point 7 failed" {
		t.Fatalf("err = %v, want the lowest-index failure", err)
	}
}

func TestMapEachIndexOnce(t *testing.T) {
	SetWorkers(16)
	t.Cleanup(func() { SetWorkers(0) })
	var calls [500]atomic.Int64
	if err := Do(len(calls), func(i int) error {
		calls[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Fatalf("index %d called %d times", i, n)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || out != nil {
		t.Fatalf("empty sweep: %v, %v", out, err)
	}
}

func TestFlatMapOrder(t *testing.T) {
	SetWorkers(4)
	t.Cleanup(func() { SetWorkers(0) })
	out, err := FlatMap(10, func(i int) ([]int, error) {
		return []int{i * 10, i*10 + 1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 20 {
		t.Fatalf("len = %d", len(out))
	}
	for i := 0; i < 10; i++ {
		if out[2*i] != i*10 || out[2*i+1] != i*10+1 {
			t.Fatalf("chunk %d out of order: %v", i, out[2*i:2*i+2])
		}
	}
}

func TestWorkersDefault(t *testing.T) {
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	SetWorkers(-5)
	if Workers() < 1 {
		t.Fatalf("Workers() after reset = %d", Workers())
	}
}
