// Package sim is the host-side parallel sweep-execution engine.
//
// Every figure and ablation of the paper's evaluation is a sweep of
// independent points: each point boots its own machine.Machine /
// core.System, runs a deterministic single-threaded simulation, and
// reports numbers denominated in simulated cycles. Points share nothing,
// so the host may run them concurrently without perturbing the science —
// the simulated machine remains deterministic and single-threaded per
// instance; only wall-clock time changes.
//
// Map runs a sweep on a pool of worker goroutines (default size
// GOMAXPROCS, overridable with SetWorkers or lvmbench -parallel) and
// collects results in input order, so the output of a parallel sweep is
// byte-identical to a sequential one. The determinism regression test in
// internal/experiments asserts exactly that for Figures 7 and 11.
package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers is the configured pool size; 0 means "use GOMAXPROCS".
var workers atomic.Int64

// Workers reports the worker-pool size sweeps will use.
func Workers() int {
	if n := workers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers sets the worker-pool size. n <= 0 restores the default
// (GOMAXPROCS). n == 1 forces fully sequential execution.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
}

// Map runs fn(0..n-1) across the worker pool and returns the results in
// input order. Each fn call must be self-contained (build its own machine
// instances); fn is never called twice for the same index. If any call
// fails, Map returns the error of the lowest failing index — the same
// error a sequential loop would have surfaced first — and the results
// slice is nil.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapWorkers(Workers(), n, fn)
}

// MapWorkers is Map with an explicit worker count for this call only,
// independent of the global pool setting. Callers that parallelize inside
// one simulation (e.g. partitioned log recovery) use it so they never race
// with a concurrently configured sweep pool.
func MapWorkers[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	nw := workers
	if nw > n {
		nw = n
	}
	if nw <= 1 {
		for i := 0; i < n; i++ {
			r, err := fn(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Do is Map for sweeps whose points only produce side effects local to
// the caller's per-index state.
func Do(n int, fn func(i int) error) error {
	_, err := Map(n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// FlatMap runs fn across the pool like Map and concatenates the result
// slices in input order. Sweeps whose points each produce several rows
// (e.g. one Figure 9 segment size yielding a row per dirty fraction) use
// it to keep the flattened row order identical to a sequential run.
func FlatMap[T any](n int, fn func(i int) ([]T, error)) ([]T, error) {
	chunks, err := Map(n, fn)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	out := make([]T, 0, total)
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out, nil
}
