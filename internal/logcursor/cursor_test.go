package logcursor

import (
	"testing"

	"lvm/internal/core"
	"lvm/internal/logrec"
)

const segSize = 4 * core.PageSize

// rec builds a valid data record for walker tests.
func rec(off, val uint32, size uint16) Rec {
	return Rec{Off: off, Value: val, Size: size, Valid: true, Data: true}
}

func TestIsMarker(t *testing.T) {
	cases := []struct {
		off   uint32
		size  uint16
		limit uint32
		want  bool
	}{
		{0, 4, 16, true},
		{4, 4, 16, true},
		{12, 4, 16, true},
		{16, 4, 16, false}, // at the limit: data
		{0, 2, 16, false},  // sub-word: never a marker
		{0, 1, 16, false},
		{0, 4, 0, false}, // limit 0 disables marker interpretation
	}
	for _, c := range cases {
		if got := IsMarker(c.off, c.size, c.limit); got != c.want {
			t.Errorf("IsMarker(%d, %d, %d) = %v, want %v", c.off, c.size, c.limit, got, c.want)
		}
	}
}

func TestValidWrite(t *testing.T) {
	cases := []struct {
		off  uint32
		size uint16
		want bool
	}{
		{0, 4, true},
		{segSize - 4, 4, true},
		{segSize, 4, false}, // out of bounds
		{2, 4, false},       // unaligned word
		{2, 2, true},
		{3, 2, false}, // unaligned half
		{3, 1, true},
		{0, 0, false}, // sizes the hardware never emits
		{0, 3, false},
		{0, 7, false},
		{0, 8, false},
		{^uint32(0) - 2, 4, false}, // off+size wraps
	}
	for _, c := range cases {
		if got := ValidWrite(c.off, c.size, segSize); got != c.want {
			t.Errorf("ValidWrite(%d, %d, %d) = %v, want %v", c.off, c.size, segSize, got, c.want)
		}
	}
}

func TestWalkerCommittedView(t *testing.T) {
	var applied []Rec
	w := NewWalker(Config{View: Committed, MarkerLimit: 16, End: 160,
		Apply: func(r Rec) { applied = append(applied, r) }})
	feed := []Rec{
		rec(0, 1, 4), // begin 1
		rec(0x100, 11, 4),
		rec(0x104, 0xBEEF, 2),
		rec(0, 1|MarkerCommit, 4), // commit 1
		{Off: 0x500, Value: 9, Size: 4, Valid: true, Data: false}, // foreign
		rec(4, 2, 4),      // begin 2 via a non-zero marker word
		rec(0x200, 22, 4), // never commits
	}
	for _, r := range feed {
		if !w.Feed(r) {
			t.Fatalf("clean record halted the walk: %+v", r)
		}
	}
	st := w.Finish()
	if st.Quarantined() {
		t.Fatalf("clean walk quarantined: %+v", st)
	}
	if len(applied) != 2 || applied[0].Off != 0x100 || applied[1].Off != 0x104 {
		t.Fatalf("applied %+v, want the two committed writes", applied)
	}
	if st.Scanned != 7 || st.Applied != 2 || st.Skipped != 1 || st.Txns != 1 {
		t.Fatalf("counters: %+v", st)
	}
	if st.LastSeq != 1 || st.IncompleteTail != 1 {
		t.Fatalf("tail accounting: %+v", st)
	}
}

func TestWalkerBeginDropsUncommittedPredecessor(t *testing.T) {
	n := 0
	w := NewWalker(Config{View: Committed, MarkerLimit: 16,
		Apply: func(Rec) { n++ }})
	w.Feed(rec(0, 1, 4)) // begin 1
	w.Feed(rec(0x100, 11, 4))
	w.Feed(rec(0, 2, 4)) // begin 2: txn 1 never committed
	w.Feed(rec(0x104, 22, 4))
	w.Feed(rec(0, 2|MarkerCommit, 4))
	st := w.Finish()
	if n != 1 || st.Applied != 1 || st.IncompleteTail != 0 || st.Txns != 1 {
		t.Fatalf("begin-after-uncommitted: applied %d, %+v", n, st)
	}
}

func TestWalkerNonMonotonicCommit(t *testing.T) {
	w := NewWalker(Config{View: Committed, MarkerLimit: 16})
	w.Feed(rec(0, 5|MarkerCommit, 4))
	w.Feed(rec(0, 3|MarkerCommit, 4)) // regression: counted, LastSeq holds
	w.Feed(rec(0, 5|MarkerCommit, 4)) // equal: not a regression
	st := w.Finish()
	if st.LastSeq != 5 || st.NonMonotonicCommits != 1 || st.Txns != 3 {
		t.Fatalf("non-monotonic accounting: %+v", st)
	}
}

func TestWalkerQuarantinesInvalid(t *testing.T) {
	w := NewWalker(Config{View: Committed, MarkerLimit: 16, End: 160})
	w.Feed(rec(0, 1, 4))
	w.Feed(rec(0x100, 11, 4))
	bad := Rec{Off: 0x300, Value: 5, Size: 7, LogOff: 32, Idx: 2}
	if w.Feed(bad) {
		t.Fatal("invalid record did not halt the walk")
	}
	if w.Feed(rec(0x104, 22, 4)) {
		t.Fatal("halted walker accepted another record")
	}
	st := w.Finish()
	if !st.Quarantined() || st.QuarantinedFrom != 32 || st.QuarantinedBytes != 128 {
		t.Fatalf("quarantine anchor: %+v", st)
	}
	if st.InvalidRecords != 1 || st.IncompleteTail != 1 || st.Applied != 0 {
		t.Fatalf("quarantine counters: %+v", st)
	}
	if st.Bad != bad {
		t.Fatalf("Bad = %+v, want %+v", st.Bad, bad)
	}
	// Scanned counts the damaged record; the post-halt one was refused.
	if st.Scanned != 3 {
		t.Fatalf("scanned %d, want 3", st.Scanned)
	}
}

func TestWalkerSubWordMarkerAreaStoreQuarantines(t *testing.T) {
	w := NewWalker(Config{View: Committed, MarkerLimit: 16, End: 64})
	w.Feed(rec(0, 1, 4))
	if w.Feed(Rec{Off: 4, Value: 9, Size: 2, LogOff: 16, Valid: true, Data: true}) {
		t.Fatal("sub-word marker-area store did not quarantine")
	}
	st := w.Finish()
	if !st.Quarantined() || st.QuarantinedFrom != 16 {
		t.Fatalf("quarantine: %+v", st)
	}
}

func TestWalkerApplyAllView(t *testing.T) {
	var offs []uint32
	w := NewWalker(Config{View: ApplyAll, MarkerLimit: 16,
		Apply: func(r Rec) { offs = append(offs, r.Off) }})
	w.Feed(rec(0, 1, 4)) // markers apply too
	w.Feed(rec(0x100, 11, 4))
	w.Feed(Rec{Off: 4, Value: 9, Size: 2, Valid: true, Data: true}) // not a violation here
	w.Feed(rec(0, 1|MarkerCommit, 4))
	st := w.Finish()
	if st.Quarantined() || st.Applied != 4 || len(offs) != 4 {
		t.Fatalf("apply-all: %+v offs=%v", st, offs)
	}
	if st.Txns != 0 || st.LastSeq != 0 {
		t.Fatalf("apply-all bracketed transactions: %+v", st)
	}
}

func TestWalkerDryRunAndStats(t *testing.T) {
	// nil Apply validates and counts only; Stats() reads mid-walk.
	w := NewWalker(Config{View: Committed, MarkerLimit: 16})
	w.Feed(rec(0, 1, 4))
	w.Feed(rec(0x100, 11, 4))
	if st := w.Stats(); st.Scanned != 2 || st.Applied != 0 {
		t.Fatalf("mid-walk stats: %+v", st)
	}
	w.Feed(rec(0, 1|MarkerCommit, 4))
	if st := w.Finish(); st.Applied != 1 || st.Txns != 1 {
		t.Fatalf("dry run: %+v", st)
	}
}

func TestWalkerNoMarkerLimitBuffersForever(t *testing.T) {
	// MarkerLimit 0 in the Committed view: nothing ever commits, every
	// data record lands in the incomplete tail.
	w := NewWalker(Config{View: Committed})
	w.Feed(rec(0, 1, 4))
	w.Feed(rec(0x100, 11, 4))
	if st := w.Finish(); st.Applied != 0 || st.IncompleteTail != 2 {
		t.Fatalf("limit-0 walk: %+v", st)
	}
}

// wire encodes records into a packed stream for BytesSource tests.
func wire(recs ...logrec.Record) []byte {
	b := make([]byte, 0, len(recs)*logrec.Size)
	for _, r := range recs {
		var s [logrec.Size]byte
		r.Encode(s[:])
		b = append(b, s[:]...)
	}
	return b
}

func TestBytesSource(t *testing.T) {
	b := wire(
		logrec.Record{Addr: 0, Value: 1, WriteSize: 4},
		logrec.Record{Addr: 0x100, Value: 11, WriteSize: 4},
		logrec.Record{Addr: 0x300, Value: 5, WriteSize: 7}, // invalid
	)
	b = append(b, 0xEE, 0xEE) // trailing partial record: ignored
	src := NewBytesSource(b, segSize)
	if src.End() != 3*logrec.Size {
		t.Fatalf("End() = %d, want %d", src.End(), 3*logrec.Size)
	}
	var got []Rec
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		got = append(got, r)
	}
	if len(got) != 3 {
		t.Fatalf("yielded %d records, want 3", len(got))
	}
	if !got[0].Valid || !got[0].Data || got[0].LogOff != 0 || got[0].Idx != 0 {
		t.Fatalf("record 0: %+v", got[0])
	}
	if got[1].Off != 0x100 || got[1].Value != 11 || got[1].LogOff != logrec.Size {
		t.Fatalf("record 1: %+v", got[1])
	}
	if got[2].Valid {
		t.Fatalf("size-7 record classified valid: %+v", got[2])
	}
}

// machine boots a one-CPU system with a logged data segment.
func machine(t *testing.T) (*core.System, *core.Segment, *core.Segment, *core.Process, core.Addr) {
	t.Helper()
	sys := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 256})
	seg := core.NewNamedSegment(sys, "data", segSize, nil)
	reg := core.NewStdRegion(sys, seg)
	ls := core.NewLogSegment(sys, 16)
	if err := reg.Log(ls); err != nil {
		t.Fatal(err)
	}
	as := sys.NewAddressSpace()
	base, err := reg.Bind(as, 0)
	if err != nil {
		t.Fatal(err)
	}
	return sys, seg, ls, sys.NewProcess(0, as), base
}

func TestMachineSource(t *testing.T) {
	sys, seg, ls, p, base := machine(t)
	p.Store32(base, 1)
	p.Store32(base+0x100, 11)
	p.Store16(base+0x104, 0xBEEF)
	p.Store8(base+0x107, 0x7F)
	p.Store32(base, 1|MarkerCommit)
	sys.Sync()

	src := NewMachineSource(sys, ls, seg)
	if src.End() != 5*logrec.Size {
		t.Fatalf("End() = %d, want %d", src.End(), 5*logrec.Size)
	}
	st := Run(src, NewWalker(Config{View: Committed, MarkerLimit: 16, End: src.End()}))
	if st.Quarantined() || st.Applied != 3 || st.Txns != 1 || st.LastSeq != 1 {
		t.Fatalf("machine walk: %+v", st)
	}

	// Seek/Offset/SetEnd drive a bounded rewalk.
	src2 := NewMachineSource(sys, ls, seg)
	if err := src2.Seek(logrec.Size); err != nil {
		t.Fatal(err)
	}
	if src2.Offset() != logrec.Size {
		t.Fatalf("Offset() = %d", src2.Offset())
	}
	src2.SetEnd(2 * logrec.Size)
	n := 0
	for {
		if _, ok := src2.Next(); !ok {
			break
		}
		n++
	}
	if n != 1 {
		t.Fatalf("bounded rewalk yielded %d records, want 1", n)
	}

	// NewMachineSourceAt walks an explicit window without syncing.
	at := NewMachineSourceAt(sys, ls, seg, logrec.Size, 4*logrec.Size)
	n = 0
	for {
		r, ok := at.Next()
		if !ok {
			break
		}
		if !r.Valid || !r.Data {
			t.Fatalf("windowed record invalid: %+v", r)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("windowed walk yielded %d records, want 3", n)
	}

	// Corrupt a record's WriteSize in the log image: the source must
	// classify it invalid, never panic.
	ls.RawWrite(1*logrec.Size+8, []byte{7, 0})
	src3 := NewMachineSource(sys, ls, seg)
	st = Run(src3, NewWalker(Config{View: Committed, MarkerLimit: 16, End: src3.End()}))
	if !st.Quarantined() || st.QuarantinedFrom != 1*logrec.Size {
		t.Fatalf("corrupt log walk: %+v", st)
	}
}

func TestWrapReaderAndEachData(t *testing.T) {
	sys, seg, ls, p, base := machine(t)
	other := core.NewNamedSegment(sys, "other", segSize, nil)
	reg2 := core.NewStdRegion(sys, other)
	if err := reg2.Log(ls); err != nil { // both segments share the log
		t.Fatal(err)
	}
	as2 := sys.NewAddressSpace()
	base2, err := reg2.Bind(as2, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2 := sys.NewProcess(0, as2)
	p.Store32(base+0x100, 11)
	p2.Store32(base2+0x400, 44) // lands in the shared log, foreign to seg
	sys.Sync()

	r := core.NewLogReader(sys, ls)
	src := WrapReader(r, seg)
	rec, ok := src.Next()
	if !ok || rec.Off != 0x100 || !rec.Data {
		t.Fatalf("wrapped read: %+v ok=%v", rec, ok)
	}
	rec, ok = src.Next()
	if !ok || !rec.Valid || rec.Data {
		t.Fatalf("foreign record not classified: %+v ok=%v", rec, ok)
	}

	// Wire re-addresses a machine record to its segment offset.
	p.Store32(base+0x200, 22)
	sys.Sync()
	r2 := core.NewLogReader(sys, ls)
	r2.Sync()
	raw, ok := r2.Next()
	if !ok {
		t.Fatal("no record")
	}
	w := Wire(raw)
	if w.Addr != raw.SegOff || w.Value != raw.Value || w.WriteSize != raw.WriteSize {
		t.Fatalf("Wire(%+v) = %+v", raw, w)
	}

	// EachData walks to the end, classifying segment membership, and
	// stops on a callback error.
	p.Store32(base+0x300, 33)
	sys.Sync()
	r3 := core.NewLogReader(sys, ls)
	r3.Sync()
	data, foreign := 0, 0
	err = EachData(r3, seg, func(rec core.Record, isData bool) error {
		if isData {
			data++
		} else {
			foreign++
		}
		return nil
	})
	if err != nil || data != 3 || foreign != 1 {
		t.Fatalf("EachData: err=%v data=%d foreign=%d", err, data, foreign)
	}
	r4 := core.NewLogReader(sys, ls)
	r4.Sync()
	stop := 0
	sentinel := errSentinel{}
	err = EachData(r4, seg, func(core.Record, bool) error {
		stop++
		return sentinel
	})
	if err != sentinel || stop != 1 {
		t.Fatalf("EachData error stop: err=%v calls=%d", err, stop)
	}
}

type errSentinel struct{}

func (errSentinel) Error() string { return "stop" }
