// Package logcursor is the single validated cursor over the hardware
// log's record stream. Four subsystems consume that stream — crash
// recovery's marker-protocol replay (internal/recovery, sequential and
// page-partitioned parallel), log-shipping catch-up and replica apply
// (internal/logship), the DSM consumer (internal/dsm), and compaction's
// tail replay after checkpoint election (internal/compact) — and every
// past divergence between their hand-rolled walks has been a shipped
// bug. The paper's argument (Sections 2.4, 4.5) is that one log is the
// single source of truth for recovery, replication, and distributed
// consistency; this package is the one place its records are decoded,
// validated, bracketed into transactions, and quarantined when damaged.
//
// The model is a push-style state machine: a Source yields records as
// the uniform Rec form (segment offset, value, size, validity), a
// Walker consumes them under one of two views —
//
//   - Committed: marker-word transaction bracketing. A store to the
//     marker area (offset < MarkerLimit) with MarkerCommit clear opens
//     a transaction, one with it set commits; records in between are
//     buffered and applied only at their commit marker, so an
//     uncommitted tail is discarded rather than half-applied.
//   - ApplyAll: every valid record applies immediately, markers
//     included. Replication replicas use this (the replica image keeps
//     the producer's marker words; rollback is a separate ledger), as
//     do edge tests that replay raw logs.
//
// — and the first record that fails validation quarantines the rest of
// the stream: nothing past the damage applies, and Stats reports the
// quarantine anchor and extent. The walker never panics on damaged
// input; degrade-don't-panic is the contract every consumer inherits.
package logcursor

// MarkerCommit is the high bit of a marker-word value: set = the store
// commits the transaction the marker opened.
const MarkerCommit = uint32(0x8000_0000)

// NoQuarantine is the QuarantinedFrom value when the whole stream
// walked cleanly.
const NoQuarantine = ^uint32(0)

// Rec is one log record in the cursor's uniform form: addressed by its
// offset within the data segment being walked, with validity and
// segment membership already classified by the Source that yielded it.
type Rec struct {
	// Off is the byte offset of the write within the data segment.
	Off uint32
	// Value holds the written bytes, little-endian in the low Size bytes.
	Value uint32
	// Size is the write size in bytes (1, 2, or 4 when valid).
	Size uint16
	// LogOff is the byte offset of the record within the log stream —
	// the quarantine anchor when this record fails validation.
	LogOff uint32
	// Idx is the ordinal of the record within this walk (0-based).
	Idx int
	// Valid reports that the record passed validation: a write size the
	// hardware emits, a size-aligned in-bounds offset, an address that
	// still resolves, and not a write into a log segment.
	Valid bool
	// Data reports that the record resolves to the data segment being
	// walked (false = it belongs to another segment sharing the log).
	Data bool
}

// IsMarker is the canonical marker-word classifier: a whole-word store
// into the marker area. This is the one rule every consumer shares —
// recovery's replay brackets transactions with it, and the replication
// replica's undo ledger tracks begin/commit by it. Sub-word stores into
// the marker area are NOT markers; in the Committed view the Walker
// treats them as protocol violations and quarantines (the area is
// reserved for the protocol, so a partial store there can only be
// damage). limit == 0 disables marker interpretation entirely.
func IsMarker(off uint32, size uint16, limit uint32) bool {
	return off < limit && size == 4
}

// ValidWrite reports whether (off, size) can describe a real logged
// write into a segment of segSize bytes: a size the hardware emits, a
// size-aligned offset, and a range inside the segment. This is the
// record-validation core shared by crash-recovery replay, the logship
// replica, and the DSM consumer, all of which quarantine on the first
// record that fails it.
func ValidWrite(off uint32, size uint16, segSize uint32) bool {
	switch size {
	case 1, 2, 4:
	default:
		return false
	}
	ws := uint32(size)
	return off%ws == 0 && off+ws <= segSize
}

// View selects how the Walker treats transaction bracketing.
type View uint8

const (
	// Committed applies only marker-bracketed, committed writes.
	Committed View = iota
	// ApplyAll applies every valid record immediately, markers included.
	ApplyAll
)

// Config configures one Walker.
type Config struct {
	// View selects committed-only or apply-all semantics.
	View View
	// MarkerLimit: data offsets below this are marker words driving the
	// transaction protocol. 0 disables marker interpretation.
	MarkerLimit uint32
	// End is the log end offset, used to size the quarantined extent
	// (QuarantinedBytes = End - quarantine anchor).
	End uint32
	// Apply receives each record to apply, in log order. nil = dry run
	// (validate and count only).
	Apply func(Rec)
}

// Stats reports what one walk did and what it could not recover. The
// field meanings mirror recovery.Result exactly — recovery builds its
// Result from these counters.
type Stats struct {
	Scanned        int // records fed to the walker
	Applied        int // records handed to Apply
	Skipped        int // records resolving to other segments
	Txns           int // committed transactions walked
	InvalidRecords int // records rejected (0 or 1: the first halts the walk)
	IncompleteTail int // buffered records discarded (no commit marker / quarantine)

	// QuarantinedFrom/QuarantinedBytes describe the damaged tail: the
	// stream offset of the first invalid record and the extent from
	// there to End. QuarantinedFrom == NoQuarantine when clean.
	QuarantinedFrom  uint32
	QuarantinedBytes uint32

	// LastSeq is the highest committed transaction sequence number
	// observed. A commit whose sequence regresses below an earlier one
	// does not lower it; it increments NonMonotonicCommits instead (a
	// damaged or replayed-out-of-order log can only have produced it —
	// genuine commit sequences are monotone).
	LastSeq             uint32
	NonMonotonicCommits int

	// Bad is the record that quarantined the walk (zero when clean).
	Bad Rec
}

// Quarantined reports whether the walk hit a damaged tail.
func (s *Stats) Quarantined() bool { return s.QuarantinedFrom != NoQuarantine }

// Walker is the cursor's record-consuming state machine. Feed it
// records in log order; it validates, brackets transactions, applies
// per its view, and halts at the first damaged record.
type Walker struct {
	cfg    Config
	st     Stats
	batch  []Rec
	halted bool
}

// NewWalker builds a walker over cfg.
func NewWalker(cfg Config) *Walker {
	return &Walker{cfg: cfg, st: Stats{QuarantinedFrom: NoQuarantine}}
}

// Feed consumes one record. It reports false once the walk has halted
// (quarantine): the caller must stop feeding and call Finish.
func (w *Walker) Feed(r Rec) bool {
	if w.halted {
		return false
	}
	w.st.Scanned++
	if !r.Valid {
		return w.quarantine(r)
	}
	if !r.Data {
		w.st.Skipped++
		return true
	}
	if w.cfg.View == Committed && w.cfg.MarkerLimit > 0 && r.Off < w.cfg.MarkerLimit {
		if r.Size != 4 {
			// A sub-word store into the marker area is a protocol
			// violation: no writer emits one, so it can only be damage.
			// Treating it as a marker (or as data) would corrupt the
			// transaction bracketing — quarantine instead.
			return w.quarantine(r)
		}
		if r.Value&MarkerCommit != 0 {
			seq := r.Value &^ MarkerCommit
			if seq >= w.st.LastSeq {
				w.st.LastSeq = seq
			} else {
				w.st.NonMonotonicCommits++
			}
			w.st.Txns++
			for _, b := range w.batch {
				w.apply(b)
			}
		}
		// A begin marker after an uncommitted transaction drops that
		// transaction's buffered writes, same as a commit flush.
		w.batch = w.batch[:0]
		return true
	}
	if w.cfg.View == ApplyAll {
		w.apply(r)
		return true
	}
	w.batch = append(w.batch, r)
	return true
}

// Finish ends the walk: records still buffered without a commit marker
// are discarded into IncompleteTail, and the final Stats are returned.
func (w *Walker) Finish() Stats {
	if !w.halted {
		w.st.IncompleteTail += len(w.batch)
		w.batch = nil
		w.halted = true
	}
	return w.st
}

// Stats returns the walk counters accumulated so far.
func (w *Walker) Stats() Stats { return w.st }

func (w *Walker) apply(r Rec) {
	if w.cfg.Apply != nil {
		w.cfg.Apply(r)
	}
	w.st.Applied++
}

func (w *Walker) quarantine(r Rec) bool {
	w.st.InvalidRecords++
	w.st.QuarantinedFrom = r.LogOff
	w.st.QuarantinedBytes = w.cfg.End - r.LogOff
	w.st.IncompleteTail += len(w.batch)
	w.st.Bad = r
	w.batch = nil
	w.halted = true
	return false
}

// Source yields successive records of a log stream in write order.
type Source interface {
	Next() (Rec, bool)
}

// Run drives every record of src through w and returns the final stats
// — the whole cursor in one call for consumers that need no per-record
// interleaving of their own.
func Run(src Source, w *Walker) Stats {
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if !w.Feed(r) {
			break
		}
	}
	return w.Finish()
}
