package logcursor

import (
	"lvm/internal/core"
	"lvm/internal/logrec"
)

// MachineSource yields the records of a hardware log segment as seen
// through the kernel's reverse address translation (core.LogReader):
// each record is resolved back to its owning segment, classified
// against the data segment being walked, and validated with the shared
// ValidWrite rules plus the machine-only checks (the frame must still
// be owned, and a "write" into a log segment is never real — the
// logger does not log its own log).
type MachineSource struct {
	r    *core.LogReader
	data *core.Segment
	idx  int
}

// NewMachineSource opens a synced source over log's records, walking
// them as writes into data. It synchronizes with the logger to find
// the log end.
func NewMachineSource(sys *core.System, log, data *core.Segment) *MachineSource {
	return &MachineSource{r: core.NewLogReader(sys, log), data: data}
}

// NewMachineSourceAt opens a source over [start, end) of the log
// WITHOUT synchronizing with the logger or touching kernel or device
// state, so any number may run concurrently over a quiescent machine —
// the partitioned parallel replay depends on exactly that. Bounds must
// have been established beforehand (typically from a synced source).
func NewMachineSourceAt(sys *core.System, log, data *core.Segment, start, end uint32) *MachineSource {
	return &MachineSource{r: core.NewLogReaderAt(sys, log, start, end), data: data}
}

// WrapReader adopts an existing, already-positioned core.LogReader —
// for consumers that interleave cursor iteration with reader-level
// operations (seeks, truncation) of their own.
func WrapReader(r *core.LogReader, data *core.Segment) *MachineSource {
	return &MachineSource{r: r, data: data}
}

// SetEnd overrides the source's view of the log end (clamped to the
// segment size) — crash recovery scanning a log whose hardware append
// state did not survive.
func (s *MachineSource) SetEnd(end uint32) { s.r.SetEnd(end) }

// End reports the source's view of the log end offset.
func (s *MachineSource) End() uint32 { return s.r.End() }

// Offset reports the source's current byte offset within the log.
func (s *MachineSource) Offset() uint32 { return s.r.Offset() }

// Seek positions the source at the given byte offset (must be record
// aligned).
func (s *MachineSource) Seek(off uint32) error { return s.r.Seek(off) }

// Next yields the next record in the cursor's uniform form.
func (s *MachineSource) Next() (Rec, bool) {
	off := s.r.Offset()
	rec, ok := s.r.Next()
	if !ok {
		return Rec{}, false
	}
	r := Rec{
		Off:    rec.SegOff,
		Value:  rec.Value,
		Size:   rec.WriteSize,
		LogOff: off,
		Idx:    s.idx,
		Valid: rec.Seg != nil &&
			ValidWrite(rec.SegOff, rec.WriteSize, rec.Seg.Size()) &&
			!rec.Seg.IsLog(),
		Data: rec.Seg == s.data,
	}
	s.idx++
	return r, true
}

// BytesSource yields records from a packed byte stream of 16-byte wire
// records whose Addr field is already a data-segment offset — the form
// records take once shipped off-machine (logship batches, the lvmd
// durable tail mirror). Validation is ValidWrite against the segment
// size; there is no kernel to resolve addresses against, so every
// record is Data.
type BytesSource struct {
	b       []byte
	segSize uint32
	off     int
	idx     int
}

// NewBytesSource opens a source over b (whole records only; a trailing
// partial record is ignored) for a data segment of segSize bytes.
func NewBytesSource(b []byte, segSize uint32) *BytesSource {
	return &BytesSource{b: b, segSize: segSize}
}

// End reports the byte length of the whole records in the stream.
func (s *BytesSource) End() uint32 {
	return uint32(len(s.b) - len(s.b)%logrec.Size)
}

// Next yields the next record in the cursor's uniform form.
func (s *BytesSource) Next() (Rec, bool) {
	if s.off+logrec.Size > len(s.b) {
		return Rec{}, false
	}
	rec := logrec.Decode(s.b[s.off:])
	r := Rec{
		Off:    rec.Addr,
		Value:  rec.Value,
		Size:   rec.WriteSize,
		LogOff: uint32(s.off),
		Idx:    s.idx,
		Valid:  ValidWrite(rec.Addr, rec.WriteSize, s.segSize),
		Data:   true,
	}
	s.off += logrec.Size
	s.idx++
	return r, true
}

// Wire returns rec re-addressed to its segment offset — the canonical
// form for shipping a data record off-machine (a BytesSource on the
// other end addresses it back into the replica segment).
func Wire(rec core.Record) logrec.Record {
	w := rec.Record
	w.Addr = rec.SegOff
	return w
}

// EachData drives r to the end of the log, calling f for every record
// with isData reporting whether it resolves to data. This is the
// selection walk shared by the log shippers (emit data records in wire
// form, ignore foreign ones), the lvmd durable tail mirror (foreign
// records are a configuration error there), and the DSM producer's
// release enumeration. f returning an error stops the walk.
func EachData(r *core.LogReader, data *core.Segment, f func(rec core.Record, isData bool) error) error {
	for {
		rec, ok := r.Next()
		if !ok {
			return nil
		}
		if err := f(rec, rec.Seg == data); err != nil {
			return err
		}
	}
}
