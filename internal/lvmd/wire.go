// Package lvmd is the multi-tenant logged-memory server: a long-running
// daemon hosting many independent logged segments across shard groups.
// Each shard is one deterministic simulated System — an arena segment
// carved into tenant slots, logged into one hardware log — owned by a
// single-writer goroutine, with one compact.Manager (checkpointed
// compaction to a file-backed device) and one logship.Shipper
// (replication subscribers) per shard. Segment IDs hash to shards;
// client transactions apply behind the recovery marker protocol, so a
// restart is per-shard compact.Recover and an acknowledged commit is
// durable across SIGKILL.
//
// The client protocol reuses the logship CRC framing (logship.Frame*
// types). All payloads are little-endian, fixed layouts:
//
//	open       := segID(8)
//	openResp   := segID(8) slotOff(4) slotSize(4) arenaSize(4) status(1) shard(1) pad(2)
//	store      := segID(8) off(4) val(4)
//	commit     := segID(8) clientSeq(8)
//	commitResp := segID(8) clientSeq(8) shardSeq(4) status(1) pad(3)
//	read       := segID(8) off(4) n(4)
//	readResp   := segID(8) off(4) status(1) pad(3) data…
//	subscribe  := shard(4)
//	stats      := (empty)  → statsResp carries a JSON metrics snapshot
package lvmd

import (
	"fmt"
	"net"

	"lvm/internal/logship"
)

// Status codes carried by openResp/commitResp/readResp.
const (
	StatusOK       = byte(0)
	StatusNoSlot   = byte(1) // shard's slot directory is full
	StatusBad      = byte(2) // malformed or out-of-range request
	StatusDraining = byte(3) // server is shutting down
	StatusUnknown  = byte(4) // segment was never opened on this connection
	StatusMoved    = byte(5) // segment migrated (or is mid-cutover): re-resolve and retry
	StatusDemoted  = byte(6) // serving lease lost: writes refused until the host restarts as primary
)

func put32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func put64(b []byte, v uint64) {
	put32(b, uint32(v))
	put32(b[4:], uint32(v>>32))
}

func get32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func get64(b []byte) uint64 {
	return uint64(get32(b)) | uint64(get32(b[4:]))<<32
}

func errSize(frame string, n int) error {
	return fmt.Errorf("%w: %s payload %d bytes", logship.ErrCorrupt, frame, n)
}

func encodeOpen(segID uint64) []byte {
	b := make([]byte, 8)
	put64(b, segID)
	return b
}

func decodeOpen(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, errSize("open", len(p))
	}
	return get64(p), nil
}

// openResp tells the client where its segment landed.
type openResp struct {
	segID     uint64
	slotOff   uint32 // arena byte offset of the slot (subscribers use it)
	slotSize  uint32
	arenaSize uint32
	status    byte
	shard     byte
}

const openRespSize = 24

func encodeOpenResp(r openResp) []byte {
	b := make([]byte, openRespSize)
	put64(b, r.segID)
	put32(b[8:], r.slotOff)
	put32(b[12:], r.slotSize)
	put32(b[16:], r.arenaSize)
	b[20] = r.status
	b[21] = r.shard
	return b
}

func decodeOpenResp(p []byte) (openResp, error) {
	if len(p) != openRespSize {
		return openResp{}, errSize("openResp", len(p))
	}
	return openResp{
		segID:     get64(p),
		slotOff:   get32(p[8:]),
		slotSize:  get32(p[12:]),
		arenaSize: get32(p[16:]),
		status:    p[20],
		shard:     p[21],
	}, nil
}

// storeReq is one buffered word write of the session's open transaction.
type storeReq struct {
	segID uint64
	off   uint32
	val   uint32
}

const storeSize = 16

func encodeStore(s storeReq) []byte {
	b := make([]byte, storeSize)
	put64(b, s.segID)
	put32(b[8:], s.off)
	put32(b[12:], s.val)
	return b
}

func decodeStore(p []byte) (storeReq, error) {
	if len(p) != storeSize {
		return storeReq{}, errSize("store", len(p))
	}
	return storeReq{segID: get64(p), off: get32(p[8:]), val: get32(p[12:])}, nil
}

type commitReq struct {
	segID     uint64
	clientSeq uint64
}

const commitSize = 16

func encodeCommit(c commitReq) []byte {
	b := make([]byte, commitSize)
	put64(b, c.segID)
	put64(b[8:], c.clientSeq)
	return b
}

func decodeCommit(p []byte) (commitReq, error) {
	if len(p) != commitSize {
		return commitReq{}, errSize("commit", len(p))
	}
	return commitReq{segID: get64(p), clientSeq: get64(p[8:])}, nil
}

type commitResp struct {
	segID     uint64
	clientSeq uint64
	shardSeq  uint32 // marker-protocol transaction sequence
	status    byte
}

const commitRespSize = 24

func encodeCommitResp(c commitResp) []byte {
	b := make([]byte, commitRespSize)
	put64(b, c.segID)
	put64(b[8:], c.clientSeq)
	put32(b[16:], c.shardSeq)
	b[20] = c.status
	return b
}

func decodeCommitResp(p []byte) (commitResp, error) {
	if len(p) != commitRespSize {
		return commitResp{}, errSize("commitResp", len(p))
	}
	return commitResp{
		segID:     get64(p),
		clientSeq: get64(p[8:]),
		shardSeq:  get32(p[16:]),
		status:    p[20],
	}, nil
}

type readReq struct {
	segID uint64
	off   uint32
	n     uint32
}

const readSize = 16

func encodeRead(r readReq) []byte {
	b := make([]byte, readSize)
	put64(b, r.segID)
	put32(b[8:], r.off)
	put32(b[12:], r.n)
	return b
}

func decodeRead(p []byte) (readReq, error) {
	if len(p) != readSize {
		return readReq{}, errSize("read", len(p))
	}
	return readReq{segID: get64(p), off: get32(p[8:]), n: get32(p[12:])}, nil
}

type readResp struct {
	segID  uint64
	off    uint32
	status byte
	data   []byte
}

const readRespHdr = 16

func encodeReadResp(r readResp) []byte {
	b := make([]byte, readRespHdr+len(r.data))
	put64(b, r.segID)
	put32(b[8:], r.off)
	b[12] = r.status
	copy(b[readRespHdr:], r.data)
	return b
}

func decodeReadResp(p []byte) (readResp, error) {
	if len(p) < readRespHdr {
		return readResp{}, errSize("readResp", len(p))
	}
	return readResp{segID: get64(p), off: get32(p[8:]), status: p[12], data: p[readRespHdr:]}, nil
}

func encodeSubscribe(shard uint32) []byte {
	b := make([]byte, 4)
	put32(b, shard)
	return b
}

// SubscribeDialer wraps a client-port dialer into a replication dialer
// for one shard: each connection opens with a subscribe frame, after
// which the server hands the socket to that shard's shipper and the
// logship handshake proceeds as usual. This is how a standby daemon
// follows a primary — one subscribed replica per shard.
func SubscribeDialer(dial logship.DialFunc, shard uint32) logship.DialFunc {
	return func() (net.Conn, error) {
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		if _, err := conn.Write(logship.EncodeFrame(logship.FrameSubscribe, encodeSubscribe(shard))); err != nil {
			conn.Close()
			return nil, err
		}
		return conn, nil
	}
}

func decodeSubscribe(p []byte) (uint32, error) {
	if len(p) != 4 {
		return 0, errSize("subscribe", len(p))
	}
	return get32(p), nil
}
