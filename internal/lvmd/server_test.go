package lvmd

import (
	"net"
	"testing"
	"time"

	"lvm/internal/dsm"
	"lvm/internal/logship"
)

func testServer(t *testing.T, dir string, shards int) (*Server, logship.DialFunc) {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Dir:    dir,
		Shards: shards,
		Shard: ShardConfig{
			Core: CoreConfig{Slots: 32, SlotSize: 1024, LogPages: 64,
				AbsorbWindow: 8, GroupSize: 8, GroupDeadline: 1024},
		},
		StallTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, dial := logship.NewMemTransport()
	srv.Serve(ln)
	return srv, dial
}

func TestServerLoadDrainRestart(t *testing.T) {
	dir := t.TempDir()
	srv, dial := testServer(t, dir, 4)
	res, model, err := RunLoad(LoadConfig{
		Dial:            dial,
		Clients:         32,
		Segments:        16,
		Duration:        300 * time.Millisecond,
		StoresPerCommit: 4,
		VerifyEvery:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Acked == 0 || res.Acked != res.Sent || res.Deaths != 0 {
		t.Fatalf("load: %+v", res)
	}
	if res.ReadErrors != 0 {
		t.Fatalf("%d read-back mismatches during load", res.ReadErrors)
	}
	rep := srv.Drain()
	if !rep.Drained {
		t.Fatalf("drain not clean: %+v", rep)
	}
	if len(rep.Shards) != 4 {
		t.Fatalf("drain reported %d shards", len(rep.Shards))
	}

	// Restart: every shard must recover byte-identically to its drain
	// digest, and the acked model must read back.
	srv2, dial2 := testServer(t, dir, 4)
	rep2 := srv2.Drain() // immediate drain: digests reflect pure recovery
	for i := range rep.Shards {
		if rep.Shards[i].Digest != rep2.Shards[i].Digest {
			t.Fatalf("shard %d digest changed across restart:\n%s\n%s",
				i, rep.Shards[i].Digest, rep2.Shards[i].Digest)
		}
		if rep.Shards[i].Seq != rep2.Shards[i].Seq {
			t.Fatalf("shard %d seq %d → %d across restart",
				i, rep.Shards[i].Seq, rep2.Shards[i].Seq)
		}
	}

	srv3, dial3 := testServer(t, dir, 4)
	_ = dial2
	checked, bad, err := VerifyModel(dial3, model)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) > 0 {
		t.Fatalf("model verify: %d/%d words wrong, e.g. %s", len(bad), checked, bad[0])
	}
	if checked == 0 {
		t.Fatal("model verified nothing")
	}
	srv3.Drain()
}

func TestServerSubscriber(t *testing.T) {
	dir := t.TempDir()
	srv, dial := testServer(t, dir, 2)

	// A subscriber dials the client port and speaks FrameSubscribe first;
	// the daemon hands the raw connection to the shard's shipper and the
	// logship protocol takes over.
	shardID := uint32(0)
	subDial := func() (net.Conn, error) {
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		if _, err := conn.Write(logship.EncodeFrame(logship.FrameSubscribe, encodeSubscribe(shardID))); err != nil {
			conn.Close()
			return nil, err
		}
		return conn, nil
	}
	arenaSize, err := CoreConfig{Slots: 32, SlotSize: 1024, LogPages: 64}.ArenaSize()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := logship.NewReplica(subDial, arenaSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Connect(); err != nil {
		t.Fatalf("subscriber connect: %v", err)
	}

	// Drive commits at every shard; only shard 0's flow to the replica.
	res, _, err := RunLoad(LoadConfig{
		Dial:     dial,
		Clients:  8,
		Segments: 8,
		Duration: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Acked == 0 {
		t.Fatalf("no commits acked: %+v", res)
	}
	report := srv.Drain() // drain hands the last batches to the replica
	rep.Kill()
	if rep.Err() != nil {
		// The drain disconnect races the last ack; a closed-conn error is
		// the expected way a shipper session ends.
		t.Logf("replica session end: %v", rep.Err())
	}
	if rep.LastSeq() == 0 {
		t.Fatal("replica never consumed a batch")
	}
	if report.Host.Subscribers != 1 {
		t.Fatalf("host stats counted %d subscribers", report.Host.Subscribers)
	}

	// The replica's segment must match shard 0's drained arena.
	srv2, _ := testServer(t, dir, 2)
	sh0 := srv2.shards[0]
	srv2.Drain()
	if err := dsm.Verify(sh0.Core.Arena, rep.Consumer(), arenaSize); err != nil {
		t.Fatalf("replica diverged from shard 0: %v", err)
	}
}

func TestServerDrainRefusesNewWork(t *testing.T) {
	dir := t.TempDir()
	srv, dial := testServer(t, dir, 2)
	cl, err := DialClient(dial)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Open(7); err != nil {
		t.Fatal(err)
	}
	if err := cl.Commit(7, []Write{{Off: 0, Val: 1}}); err != nil {
		t.Fatal(err)
	}
	srv.Drain()
	// The drained server killed the connection: further calls fail rather
	// than hang.
	if err := cl.Commit(7, []Write{{Off: 0, Val: 2}}); err == nil {
		t.Fatal("commit succeeded against a drained server")
	}
}

func TestServerStatsFrame(t *testing.T) {
	dir := t.TempDir()
	srv, dial := testServer(t, dir, 2)
	defer srv.Drain()
	cl, err := DialClient(dial)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	hs, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Accepted == 0 || hs.Sessions == 0 {
		t.Fatalf("stats: %+v", hs)
	}
}
