package lvmd

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/bits"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lvm/internal/logship"
)

// Client is one synchronous lvmd protocol client: one in-flight request
// at a time (the load generator gets concurrency from many clients, as
// the paper's Section 4 workloads get it from many processes).
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	seq  uint64
}

// DialClient connects and returns a protocol client.
func DialClient(dial logship.DialFunc) (*Client, error) {
	conn, err := dial()
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn)}, nil
}

func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) call(typ byte, payload []byte, wantTyp byte) ([]byte, error) {
	if _, err := c.conn.Write(logship.EncodeFrame(typ, payload)); err != nil {
		return nil, err
	}
	gotTyp, resp, err := logship.ReadFrame(c.r)
	if err != nil {
		return nil, err
	}
	if gotTyp != wantTyp {
		return nil, fmt.Errorf("lvmd: got frame %d, want %d", gotTyp, wantTyp)
	}
	return resp, nil
}

// movedRetries bounds how many times a client chases a migrating
// segment (StatusMoved) before surfacing the error; each retry backs
// off linearly, so a cutover in progress has time to flip the route.
// movedChaseBudget bounds the chase in wall-clock terms as well — a
// route that keeps answering Moved (however fast) must not spin the
// client forever. The budget comfortably exceeds the benchgated
// stop-and-copy cutover pause, so a healthy migration never trips it.
const (
	movedRetries     = 10
	movedChaseBudget = 2 * time.Second
)

// MovedError reports a moved-chase that exhausted its retry or time
// budget: the segment kept answering StatusMoved. It unwraps to
// ErrMoved so callers can distinguish routing churn from I/O failure
// with errors.Is.
type MovedError struct {
	Seg      uint64
	Attempts int
	Elapsed  time.Duration
}

func (e *MovedError) Error() string {
	return fmt.Sprintf("lvmd: segment %d still moving after %d attempts over %v",
		e.Seg, e.Attempts, e.Elapsed.Round(time.Millisecond))
}

// Unwrap ties the chase exhaustion to the core's ErrMoved sentinel.
func (e *MovedError) Unwrap() error { return ErrMoved }

// movedChase tracks one operation's pursuit of a migrating segment.
type movedChase struct {
	start    time.Time
	attempts int
}

// again backs off linearly and reports nil to retry; an exhausted
// attempt count or time budget returns the typed MovedError instead.
func (ch *movedChase) again(seg uint64) error {
	if ch.attempts == 0 {
		ch.start = time.Now()
	}
	ch.attempts++
	if ch.attempts > movedRetries || time.Since(ch.start) > movedChaseBudget {
		return &MovedError{Seg: seg, Attempts: ch.attempts, Elapsed: time.Since(ch.start)}
	}
	time.Sleep(time.Duration(ch.attempts) * time.Millisecond)
	return nil
}

// Open maps a segment, returning its slot geometry.
func (c *Client) Open(segID uint64) (slotSize uint32, err error) {
	var chase movedChase
	for {
		p, err := c.call(logship.FrameOpen, encodeOpen(segID), logship.FrameOpenResp)
		if err != nil {
			return 0, err
		}
		resp, err := decodeOpenResp(p)
		if err != nil {
			return 0, err
		}
		if resp.status == StatusMoved {
			if err := chase.again(segID); err != nil {
				return 0, err
			}
			continue
		}
		if resp.status != StatusOK {
			return 0, fmt.Errorf("lvmd: open segment %d: status %d", segID, resp.status)
		}
		return resp.slotSize, nil
	}
}

// Commit sends the transaction's stores and its commit, and waits for
// the durable acknowledgement. A StatusMoved answer (the segment is
// migrating) retries the whole transaction — the moved attempt did not
// commit — against the server's updated route.
func (c *Client) Commit(segID uint64, writes []Write) error {
	var chase movedChase
	for {
		resp, err := c.commitOnce(segID, writes)
		if err != nil {
			return err
		}
		if resp.status == StatusMoved {
			if err := chase.again(segID); err != nil {
				return err
			}
			continue
		}
		if resp.status != StatusOK {
			return fmt.Errorf("lvmd: commit segment %d: status %d", segID, resp.status)
		}
		if resp.clientSeq != c.seq {
			return fmt.Errorf("lvmd: commit ack for seq %d, want %d", resp.clientSeq, c.seq)
		}
		return nil
	}
}

func (c *Client) commitOnce(segID uint64, writes []Write) (commitResp, error) {
	var buf []byte
	for _, w := range writes {
		buf = append(buf, logship.EncodeFrame(logship.FrameStore,
			encodeStore(storeReq{segID: segID, off: w.Off, val: w.Val}))...)
	}
	c.seq++
	buf = append(buf, logship.EncodeFrame(logship.FrameCommit,
		encodeCommit(commitReq{segID: segID, clientSeq: c.seq}))...)
	if _, err := c.conn.Write(buf); err != nil {
		return commitResp{}, err
	}
	typ, p, err := logship.ReadFrame(c.r)
	if err != nil {
		return commitResp{}, err
	}
	if typ != logship.FrameCommitResp {
		return commitResp{}, fmt.Errorf("lvmd: got frame %d, want commit response", typ)
	}
	return decodeCommitResp(p)
}

// Read returns committed segment bytes.
func (c *Client) Read(segID uint64, off, n uint32) ([]byte, error) {
	var chase movedChase
	for {
		p, err := c.call(logship.FrameRead, encodeRead(readReq{segID: segID, off: off, n: n}),
			logship.FrameReadResp)
		if err != nil {
			return nil, err
		}
		resp, err := decodeReadResp(p)
		if err != nil {
			return nil, err
		}
		if resp.status == StatusMoved {
			if err := chase.again(segID); err != nil {
				return nil, err
			}
			continue
		}
		if resp.status != StatusOK {
			return nil, fmt.Errorf("lvmd: read segment %d: status %d", segID, resp.status)
		}
		return resp.data, nil
	}
}

// Stats fetches the daemon's host counters.
func (c *Client) Stats() (HostStats, error) {
	var hs HostStats
	p, err := c.call(logship.FrameStats, nil, logship.FrameStatsResp)
	if err != nil {
		return hs, err
	}
	err = json.Unmarshal(p, &hs)
	return hs, err
}

// LoadConfig drives a fleet of simulated clients.
type LoadConfig struct {
	Dial     logship.DialFunc
	Clients  int
	Segments int
	Duration time.Duration
	// Rate is the fleet-wide target commits/sec (0 = closed loop: every
	// client commits back-to-back). A nonzero rate is an open-loop
	// arrival model: each client's transactions arrive on an absolute
	// wall-clock schedule regardless of how long earlier commits took, so
	// a slow server accumulates a backlog (reported as queue depth)
	// instead of silently shedding offered load the way coordinated
	// pacing would.
	Rate float64
	// StoresPerCommit is the transaction size (default 4); VerifyEvery
	// makes every Nth operation a read-back check (0 = never).
	StoresPerCommit int
	VerifyEvery     int
}

// ModelEntry is the acked-state model for one word: the last
// acknowledged value and any values sent later whose acks never arrived
// (in-doubt after a kill — the server may or may not have applied them).
type ModelEntry struct {
	Seg     uint64   `json:"seg"`
	Off     uint32   `json:"off"`
	Acked   uint32   `json:"acked"`
	HasAck  bool     `json:"has_ack"`
	InDoubt []uint32 `json:"in_doubt,omitempty"`
}

// Model is the client fleet's view of what the server must hold.
type Model struct {
	Entries []ModelEntry `json:"entries"`
}

// LoadResult is one load run's outcome.
type LoadResult struct {
	Clients     int     `json:"clients"`
	Segments    int     `json:"segments"`
	Seconds     float64 `json:"seconds"`
	Sent        uint64  `json:"sent"`
	Acked       uint64  `json:"acked"`
	Failed      uint64  `json:"failed"` // commits refused or errored (not conn death)
	Deaths      uint64  `json:"deaths"` // clients whose connection died
	Reads       uint64  `json:"reads"`
	ReadErrors  uint64  `json:"read_errors"`
	CommitsPerS float64 `json:"commits_per_sec"`
	P50us       float64 `json:"p50_us"`
	P95us       float64 `json:"p95_us"`
	P99us       float64 `json:"p99_us"`
	MaxUs       float64 `json:"max_us"`
	// Open-loop backlog (Rate > 0 only): arrivals whose scheduled time
	// had already passed when the client got to them. A depth that grows
	// with the run means the offered rate exceeds capacity.
	QueueMaxDepth uint64  `json:"queue_max_depth,omitempty"`
	QueueAvgDepth float64 `json:"queue_avg_depth,omitempty"`
	Hist          []uint64
	Host          *HostStats `json:"host,omitempty"`
}

// latHist is a lock-free power-of-two latency histogram (bucket i holds
// samples with bits.Len64(ns) == i).
type latHist [65]atomic.Uint64

func (h *latHist) observe(d time.Duration) {
	h[bits.Len64(uint64(d.Nanoseconds()))].Add(1)
}

func (h *latHist) percentile(p float64) float64 {
	var total uint64
	for i := range h {
		total += h[i].Load()
	}
	if total == 0 {
		return 0
	}
	want := uint64(p * float64(total))
	var seen uint64
	for i := range h {
		seen += h[i].Load()
		if seen > want {
			return float64(uint64(1)<<i) / 1e3 // bucket upper bound, µs
		}
	}
	return 0
}

// RunLoad drives the fleet and returns the result plus the acked-state
// model. Client i owns a fixed set of words in segment (i mod Segments):
// word indexes congruent to its per-segment rank, so every word has
// exactly one writer and the model is exact.
func RunLoad(cfg LoadConfig) (LoadResult, *Model, error) {
	if cfg.Clients <= 0 || cfg.Segments <= 0 {
		return LoadResult{}, nil, fmt.Errorf("lvmd: load needs clients and segments")
	}
	if cfg.StoresPerCommit <= 0 {
		cfg.StoresPerCommit = 4
	}
	clientsPerSeg := (cfg.Clients + cfg.Segments - 1) / cfg.Segments
	// Probe the slot geometry first: the word-ownership scheme only stays
	// single-writer while every client's words fit without wrapping.
	probe, err := DialClient(cfg.Dial)
	if err != nil {
		return LoadResult{}, nil, fmt.Errorf("lvmd: load probe: %w", err)
	}
	slotSize, err := probe.Open(1)
	probe.Close()
	if err != nil {
		return LoadResult{}, nil, fmt.Errorf("lvmd: load probe: %w", err)
	}
	if need := uint32(clientsPerSeg * cfg.StoresPerCommit * 4); need > slotSize {
		return LoadResult{}, nil, fmt.Errorf(
			"lvmd: %d clients × %d stores need %d-byte slots, server offers %d",
			cfg.Clients, cfg.StoresPerCommit, need, slotSize)
	}
	var (
		sent, acked, failed, deaths, reads, readErrs atomic.Uint64
		depthSum, depthN, depthMax                   atomic.Uint64
		hist                                         latHist
		wg                                           sync.WaitGroup
		modelMu                                      sync.Mutex
	)
	model := make(map[uint64]map[uint32]*ModelEntry) // seg → off → entry
	deadline := time.Now().Add(cfg.Duration)
	var pace time.Duration
	if cfg.Rate > 0 {
		pace = time.Duration(float64(cfg.Clients) / cfg.Rate * float64(time.Second))
	}
	start := time.Now()
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			segID := uint64(i%cfg.Segments) + 1
			rank := uint32(i / cfg.Segments)
			cl, err := DialClient(cfg.Dial)
			if err != nil {
				deaths.Add(1)
				return
			}
			defer cl.Close()
			slotSize, err := cl.Open(segID)
			if err != nil {
				deaths.Add(1)
				return
			}
			words := slotSize / 4
			local := make(map[uint32]*ModelEntry)
			defer func() {
				modelMu.Lock()
				seg := model[segID]
				if seg == nil {
					seg = make(map[uint32]*ModelEntry)
					model[segID] = seg
				}
				for off, e := range local {
					seg[off] = e
				}
				modelMu.Unlock()
			}()
			writes := make([]Write, cfg.StoresPerCommit)
			for n := uint32(0); time.Now().Before(deadline); n++ {
				if pace > 0 {
					// Open loop: the nth arrival is due at an absolute time;
					// if it is already overdue, the client injects immediately
					// and the arrears count as queue depth.
					next := start.Add(time.Duration(i)*pace/time.Duration(cfg.Clients) +
						time.Duration(n)*pace)
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					} else {
						depth := uint64(-d/pace) + 1
						depthSum.Add(depth)
						for {
							cur := depthMax.Load()
							if depth <= cur || depthMax.CompareAndSwap(cur, depth) {
								break
							}
						}
					}
					depthN.Add(1)
				}
				if cfg.VerifyEvery > 0 && n > 0 && n%uint32(cfg.VerifyEvery) == 0 {
					off := writes[0].Off
					want := local[off]
					b, err := cl.Read(segID, off, 4)
					reads.Add(1)
					if err != nil {
						deaths.Add(1)
						return
					}
					if want != nil && want.HasAck && !modelAccepts(want, get32(b)) {
						readErrs.Add(1)
					}
					continue
				}
				for k := range writes {
					word := (rank + uint32(k)*uint32(clientsPerSeg)) % words
					writes[k] = Write{Off: word * 4, Val: uint32(i)<<16 | (n & 0xFFFF)}
				}
				for _, w := range writes {
					e := local[w.Off]
					if e == nil {
						e = &ModelEntry{Seg: segID, Off: w.Off}
						local[w.Off] = e
					}
					e.InDoubt = append(e.InDoubt, w.Val)
				}
				sent.Add(1)
				t0 := time.Now()
				if err := cl.Commit(segID, writes); err != nil {
					deaths.Add(1)
					return
				}
				hist.observe(time.Since(t0))
				acked.Add(1)
				for _, w := range writes {
					e := local[w.Off]
					e.Acked, e.HasAck, e.InDoubt = w.Val, true, e.InDoubt[:0]
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	res := LoadResult{
		Clients:  cfg.Clients,
		Segments: cfg.Segments,
		Seconds:  elapsed,
		Sent:     sent.Load(), Acked: acked.Load(), Failed: failed.Load(),
		Deaths: deaths.Load(), Reads: reads.Load(), ReadErrors: readErrs.Load(),
		P50us: hist.percentile(0.50), P95us: hist.percentile(0.95),
		P99us:         hist.percentile(0.99),
		QueueMaxDepth: depthMax.Load(),
	}
	if n := depthN.Load(); n > 0 {
		res.QueueAvgDepth = float64(depthSum.Load()) / float64(n)
	}
	if elapsed > 0 {
		res.CommitsPerS = float64(res.Acked) / elapsed
	}
	for i := len(hist) - 1; i >= 0; i-- {
		if hist[i].Load() > 0 {
			res.MaxUs = float64(uint64(1)<<i) / 1e3
			break
		}
	}
	res.Hist = make([]uint64, len(hist))
	for i := range hist {
		res.Hist[i] = hist[i].Load()
	}
	m := &Model{}
	for _, seg := range model {
		for _, e := range seg {
			if e.HasAck || len(e.InDoubt) > 0 {
				m.Entries = append(m.Entries, *e)
			}
		}
	}
	sort.Slice(m.Entries, func(a, b int) bool {
		if m.Entries[a].Seg != m.Entries[b].Seg {
			return m.Entries[a].Seg < m.Entries[b].Seg
		}
		return m.Entries[a].Off < m.Entries[b].Off
	})
	return res, m, nil
}

// modelAccepts reports whether a read-back value is consistent with the
// model: the last acked value, or any in-doubt value sent after it.
func modelAccepts(e *ModelEntry, got uint32) bool {
	if e.HasAck && got == e.Acked {
		return true
	}
	if !e.HasAck && got == 0 {
		return true // never acked, never applied
	}
	for _, v := range e.InDoubt {
		if got == v {
			return true
		}
	}
	return false
}

// VerifyModel reads every modeled word back and checks it. Words whose
// writers died mid-commit accept their in-doubt values. Returns how many
// words were checked and the mismatches.
func VerifyModel(dial logship.DialFunc, m *Model) (checked int, mismatches []string, err error) {
	cl, err := DialClient(dial)
	if err != nil {
		return 0, nil, err
	}
	defer cl.Close()
	opened := make(map[uint64]bool)
	for i := range m.Entries {
		e := &m.Entries[i]
		if !opened[e.Seg] {
			if _, err := cl.Open(e.Seg); err != nil {
				return checked, mismatches, fmt.Errorf("open segment %d: %w", e.Seg, err)
			}
			opened[e.Seg] = true
		}
		b, err := cl.Read(e.Seg, e.Off, 4)
		if err != nil {
			return checked, mismatches, fmt.Errorf("read %d/%d: %w", e.Seg, e.Off, err)
		}
		checked++
		if got := get32(b); !modelAccepts(e, got) {
			mismatches = append(mismatches, fmt.Sprintf(
				"seg %d off %d: got %#x, want acked %#x (in-doubt %v)",
				e.Seg, e.Off, got, e.Acked, e.InDoubt))
		}
	}
	return checked, mismatches, nil
}
