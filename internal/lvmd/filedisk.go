package lvmd

import (
	"fmt"
	"io"
	"os"

	"lvm/internal/machine"
)

// FileDisk adapts one host file to the ramdisk.Device interface, giving
// each shard's compact.Manager a checkpoint area that survives the
// process. Reads past the current end of file return zeros, matching the
// RAM disk's fresh-block semantics (compact.loadState probes both header
// slots on a disk that may never have been written). Simulated cycle
// costs are not charged: the device lives on the host side of the
// daemon, and the serving shards' simulated clocks carry no calibrated
// meaning.
type FileDisk struct {
	f *os.File
}

// OpenFileDisk opens (creating if needed) the backing file.
func OpenFileDisk(path string) (*FileDisk, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lvmd: open checkpoint file: %w", err)
	}
	return &FileDisk{f: f}, nil
}

// TryReadAt implements ramdisk.Device.
func (d *FileDisk) TryReadAt(cpu *machine.CPU, off uint64, out []byte) error {
	n, err := d.f.ReadAt(out, int64(off))
	if err == io.EOF {
		for i := n; i < len(out); i++ {
			out[i] = 0
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("lvmd: checkpoint read at %d: %w", off, err)
	}
	return nil
}

// TryWriteAt implements ramdisk.Device.
func (d *FileDisk) TryWriteAt(cpu *machine.CPU, off uint64, b []byte) error {
	if _, err := d.f.WriteAt(b, int64(off)); err != nil {
		return fmt.Errorf("lvmd: checkpoint write at %d: %w", off, err)
	}
	return nil
}

// TrySync implements ramdisk.Device.
func (d *FileDisk) TrySync(cpu *machine.CPU) error {
	if err := d.f.Sync(); err != nil {
		return fmt.Errorf("lvmd: checkpoint sync: %w", err)
	}
	return nil
}

// Close closes the backing file.
func (d *FileDisk) Close() error { return d.f.Close() }
