package lvmd

import (
	"fmt"
	"os"
	"path/filepath"

	"lvm/internal/logrec"
)

// tailMagic is the tail-file preamble, "LVTL" little-endian.
const tailMagic = uint32(0x4C54564C)

const (
	tailVersion = 1
	tailHdrSize = 16
)

// TailFile durably mirrors one shard's physical log: the byte at file
// offset tailHdrSize+k is the byte at physical log offset k, with record
// address fields rewritten to segment offsets (physical addresses cannot
// be resolved by a fresh boot). The header records cutBase — the logical
// log offset of physical byte 0 — which matches the cutBase the shard's
// checkpoint headers store, so a restart can re-issue the mirrored tail
// through a fresh machine and hand compact.Recover a log whose offsets
// line up with the checkpoint watermark.
//
// Compaction cuts rewrite the file through a temp-file rename, so a
// crash leaves either the pre-cut or post-cut mirror, never a torn one.
// A crash mid-append can leave a partial final record; Load truncates to
// a record boundary — the partial record was never acked (the fsync that
// would have acked it did not complete).
type TailFile struct {
	path    string
	f       *os.File
	cutBase uint64
	size    uint64 // record bytes currently in the file (excl. header)
	buf     []byte // appended but not yet flushed
}

// OpenTail opens (creating if needed) the tail file and reads its
// header. A fresh or header-less file starts at cutBase 0.
func OpenTail(path string) (*TailFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lvmd: open tail file: %w", err)
	}
	t := &TailFile{path: path, f: f}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("lvmd: stat tail file: %w", err)
	}
	if st.Size() < tailHdrSize {
		if err := t.writeHeader(0); err != nil {
			f.Close()
			return nil, err
		}
		return t, nil
	}
	var hdr [tailHdrSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("lvmd: tail header read: %w", err)
	}
	if get32(hdr[:]) != tailMagic || get32(hdr[4:]) != tailVersion {
		f.Close()
		return nil, fmt.Errorf("lvmd: tail file %s: bad header", path)
	}
	t.cutBase = get64(hdr[8:])
	body := uint64(st.Size()) - tailHdrSize
	t.size = body - body%logrec.Size // ignore a torn final record
	return t, nil
}

func (t *TailFile) writeHeader(cutBase uint64) error {
	var hdr [tailHdrSize]byte
	put32(hdr[:], tailMagic)
	put32(hdr[4:], tailVersion)
	put64(hdr[8:], cutBase)
	if _, err := t.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("lvmd: tail header write: %w", err)
	}
	t.cutBase = cutBase
	return nil
}

// CutBase reports the logical log offset of the first mirrored byte.
func (t *TailFile) CutBase() uint64 { return t.cutBase }

// Size reports the mirrored record bytes (buffered appends included).
func (t *TailFile) Size() uint64 { return t.size + uint64(len(t.buf)) }

// Append buffers record bytes; Flush makes them durable.
func (t *TailFile) Append(records []byte) {
	t.buf = append(t.buf, records...)
}

// Flush writes the buffered bytes and fsyncs. This is the durability
// point a commit acknowledgement waits behind.
func (t *TailFile) Flush() error {
	if len(t.buf) > 0 {
		if _, err := t.f.WriteAt(t.buf, int64(tailHdrSize+t.size)); err != nil {
			return fmt.Errorf("lvmd: tail append: %w", err)
		}
		t.size += uint64(len(t.buf))
		t.buf = t.buf[:0]
	}
	if err := t.f.Sync(); err != nil {
		return fmt.Errorf("lvmd: tail fsync: %w", err)
	}
	return nil
}

// Cut drops the first cutBytes mirrored bytes (a compaction truncated
// the physical log) and advances cutBase accordingly, atomically via a
// temp-file rename. The caller must have Flushed first: compaction only
// runs at batch boundaries, after the mirror caught up with the log.
func (t *TailFile) Cut(cutBytes uint64) error {
	if len(t.buf) != 0 {
		return fmt.Errorf("lvmd: tail cut with %d unflushed bytes", len(t.buf))
	}
	if cutBytes > t.size {
		return fmt.Errorf("lvmd: tail cut %d of %d bytes", cutBytes, t.size)
	}
	keep := t.size - cutBytes
	body := make([]byte, keep)
	if keep > 0 {
		if _, err := t.f.ReadAt(body, int64(tailHdrSize+cutBytes)); err != nil {
			return fmt.Errorf("lvmd: tail cut read: %w", err)
		}
	}
	return t.rewrite(t.cutBase+cutBytes, body)
}

// Reset empties the mirror and moves cutBase (restart recovery: the
// whole reconstructed log was truncated and re-checkpointed).
func (t *TailFile) Reset(cutBase uint64) error {
	t.buf = t.buf[:0]
	return t.rewrite(cutBase, nil)
}

// rewrite replaces the file with header(cutBase)+body via temp+rename.
func (t *TailFile) rewrite(cutBase uint64, body []byte) error {
	tmpPath := t.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("lvmd: tail rewrite: %w", err)
	}
	var hdr [tailHdrSize]byte
	put32(hdr[:], tailMagic)
	put32(hdr[4:], tailVersion)
	put64(hdr[8:], cutBase)
	if _, err := tmp.WriteAt(hdr[:], 0); err == nil && len(body) > 0 {
		_, err = tmp.WriteAt(body, tailHdrSize)
	} else if err != nil {
		tmp.Close()
		return fmt.Errorf("lvmd: tail rewrite: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("lvmd: tail rewrite sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("lvmd: tail rewrite close: %w", err)
	}
	if err := os.Rename(tmpPath, t.path); err != nil {
		return fmt.Errorf("lvmd: tail rewrite rename: %w", err)
	}
	old := t.f
	f, err := os.OpenFile(t.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("lvmd: tail reopen: %w", err)
	}
	old.Close()
	t.f = f
	t.cutBase = cutBase
	t.size = uint64(len(body))
	// Make the rename durable (directory entry).
	if dir, err := os.Open(filepath.Dir(t.path)); err == nil {
		_ = dir.Sync() //errgate:ok — best-effort directory fsync; data durability is the file's own fsync
		dir.Close()
	}
	return nil
}

// Load reads the mirrored record bytes.
func (t *TailFile) Load() ([]byte, error) {
	body := make([]byte, t.size)
	if t.size > 0 {
		if _, err := t.f.ReadAt(body, tailHdrSize); err != nil {
			return nil, fmt.Errorf("lvmd: tail load: %w", err)
		}
	}
	return body, nil
}

// Close closes the backing file.
func (t *TailFile) Close() error { return t.f.Close() }
