package lvmd

import (
	"fmt"
	"sort"
	"time"

	"lvm/internal/core"
	"lvm/internal/recovery"
)

// Live segment migration moves one tenant slot between shards while
// clients keep committing, in three phases:
//
//  1. Snapshot: the source dumps the slot image and starts capturing
//     subsequent commits; the destination installs the image into a
//     receiving-marked slot (a copy that holds data but does not own the
//     segment yet).
//  2. Chase: captured deltas stream to the destination until the lag per
//     round falls under a threshold.
//  3. Cutover (the measured pause): the source freezes the segment
//     (commits answer StatusMoved and clients re-resolve), the final
//     delta lands on the destination and is fenced durable, the source
//     commits its tombstone, the destination activates its entry, and
//     the server flips the route.
//
// Crash rule — "recoverable from exactly one side": the destination's
// data is fenced complete strictly before the source's tombstone
// commits, and the tombstone commits strictly before the activation.
// An untombstoned source therefore always owns the truth (its freeze
// and capture state are volatile, so a crash simply aborts the
// migration), and a receiving copy serves only when the source's
// durable tombstone proves it was complete.

// writeDirEntry stores one slot-directory entry inside the caller's open
// marker transaction.
func (c *ShardCore) writeDirEntry(slot uint32, e uint64) {
	dir := c.base + core.Addr(MarkerLimit+slot*dirEntryBytes)
	c.P.Store32(dir, uint32(e))
	c.P.Store32(dir+4, uint32(e>>32))
}

// SlotImage dumps a tenant slot's current bytes — the migration
// snapshot. Durable state only after the caller's last SyncBatch, so run
// it at a batch boundary.
func (c *ShardCore) SlotImage(segID uint64) ([]byte, error) {
	slot, ok := c.slots[segID]
	if !ok {
		return nil, fmt.Errorf("lvmd: snapshot of unopened segment %d", segID)
	}
	img := make([]byte, c.cfg.SlotSize)
	c.Arena.ReadInto(c.SlotOff(slot), img)
	return img, nil
}

// StartCapture begins recording every committed write to segID so the
// chase phase can forward them. Volatile by design: a crash drops the
// capture along with the migration it served.
func (c *ShardCore) StartCapture(segID uint64) {
	c.captureID = segID
	c.captureBuf = nil
}

// TakeDelta returns and clears the captured writes.
func (c *ShardCore) TakeDelta() []Write {
	d := c.captureBuf
	c.captureBuf = nil
	return d
}

// CaptureLag reports the captured writes not yet taken.
func (c *ShardCore) CaptureLag() int { return len(c.captureBuf) }

// StopCapture ends the capture.
func (c *ShardCore) StopCapture() {
	c.captureID = 0
	c.captureBuf = nil
}

// Freeze makes commits to segID answer ErrMoved (StatusMoved on the
// wire) for the cutover window. Volatile: a crash un-freezes.
func (c *ShardCore) Freeze(segID uint64) { c.frozen = segID }

// Unfreeze lifts the cutover freeze (abort path).
func (c *ShardCore) Unfreeze() { c.frozen = 0 }

// ImportImage installs a migrated slot image on the destination: a
// receiving-marked directory entry (allocating a slot, or reusing the
// one a tombstone or aborted import left), then every word of the image
// in one marker transaction — every word, because an aborted earlier
// import may have left the slot dirty. Durable after the next SyncBatch.
func (c *ShardCore) ImportImage(segID uint64, img []byte) error {
	if segID == 0 || segID&dirFlagMask != 0 {
		return fmt.Errorf("lvmd: import of invalid segment ID %#x", segID)
	}
	if uint32(len(img)) != c.cfg.SlotSize {
		return fmt.Errorf("lvmd: import image %d bytes, slot %d", len(img), c.cfg.SlotSize)
	}
	slot, ok := c.slots[segID]
	if ok && !c.receiving[segID] {
		return fmt.Errorf("lvmd: import of segment %d this shard already serves", segID)
	}
	if !ok {
		if s, gone := c.moved[segID]; gone {
			slot = s // the segment is migrating back: reuse its old slot
			delete(c.moved, segID)
		} else {
			if int(c.nextSlot) >= c.cfg.Slots {
				return ErrNoSlot
			}
			slot = c.nextSlot
			c.nextSlot++
		}
	}
	c.seq++
	c.P.Store32(c.base, c.seq&^recovery.MarkerCommit) // begin
	c.writeDirEntry(slot, segID|receivingBit)
	va := c.base + core.Addr(c.SlotOff(slot))
	for off := uint32(0); off < c.cfg.SlotSize; off += 4 {
		c.P.Store32(va+core.Addr(off), get32(img[off:]))
	}
	c.P.Store32(c.base, c.seq|recovery.MarkerCommit) // commit
	c.slots[segID] = slot
	c.receiving[segID] = true
	return nil
}

// Tombstone retires a migrated-away segment: the directory entry is
// rewritten to its tombstone in one marker transaction, the slot stays
// allocated (retired), and further operations answer ErrMoved. Call only
// after the destination's copy is fenced durable; durable after the next
// SyncBatch.
func (c *ShardCore) Tombstone(segID uint64) error {
	slot, ok := c.slots[segID]
	if !ok {
		return fmt.Errorf("lvmd: tombstone of unopened segment %d", segID)
	}
	c.seq++
	c.P.Store32(c.base, c.seq&^recovery.MarkerCommit) // begin
	c.writeDirEntry(slot, segID|movedBit)
	c.P.Store32(c.base, c.seq|recovery.MarkerCommit) // commit
	delete(c.slots, segID)
	delete(c.receiving, segID)
	c.moved[segID] = slot
	if c.frozen == segID {
		c.frozen = 0
	}
	if c.captureID == segID {
		c.StopCapture()
	}
	return nil
}

// Activate clears a receiving mark: the destination now owns the
// segment outright. Call only after the source's tombstone is fenced
// durable; durable after the next SyncBatch.
func (c *ShardCore) Activate(segID uint64) error {
	slot, ok := c.slots[segID]
	if !ok || !c.receiving[segID] {
		return fmt.Errorf("lvmd: activate of segment %d not in receiving state", segID)
	}
	c.seq++
	c.P.Store32(c.base, c.seq&^recovery.MarkerCommit) // begin
	c.writeDirEntry(slot, segID)
	c.P.Store32(c.base, c.seq|recovery.MarkerCommit) // commit
	delete(c.receiving, segID)
	return nil
}

// DirEntryInfo decodes a raw slot-directory entry into its segment ID
// and migration marks — for crash tooling that inspects recovered
// directory images without booting a core.
func DirEntryInfo(e uint64) (segID uint64, moved, receiving bool) {
	return e &^ dirFlagMask, e&movedBit != 0, e&receivingBit != 0
}

// Moved reports whether segID's tombstone is on this shard.
func (c *ShardCore) Moved(segID uint64) bool {
	_, ok := c.moved[segID]
	return ok
}

// Receiving reports whether segID is an unactivated inbound copy.
func (c *ShardCore) Receiving(segID uint64) bool { return c.receiving[segID] }

// Tenants lists the segment IDs this shard holds data for (owned and
// receiving), sorted.
func (c *ShardCore) Tenants() []uint64 {
	ids := make([]uint64, 0, len(c.slots))
	for id := range c.slots {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// MigrateReport measures one live migration.
type MigrateReport struct {
	SegID         uint64 `json:"seg_id"`
	From          int    `json:"from"`
	To            int    `json:"to"`
	ChaseRounds   int    `json:"chase_rounds"`
	SnapshotBytes int    `json:"snapshot_bytes"`
	DeltaWrites   int    `json:"delta_writes"`
	// PauseNS is the convergence pause: freeze to route flip, the window
	// in which the segment accepted no commits.
	PauseNS int64 `json:"pause_ns"`
}

// chaseThreshold is the captured-write lag under which the chase phase
// hands off to the cutover; chaseLimit bounds the rounds so a write rate
// that outruns the copier degrades to a longer pause, not a livelock.
const (
	chaseThreshold = 16
	chaseLimit     = 64
)

// Migrate moves segID from its current shard to shard `to` while clients
// keep committing. Each phase is one Shard.Exec, so the fence order the
// crash rule needs (destination data durable → source tombstone →
// destination activation → route flip) is the call order here. On error
// the migration aborts in place: capture and freeze are lifted and the
// source keeps serving; a receiving entry left on the destination is
// inert and is reused by a retry.
func (s *Server) Migrate(segID uint64, to int) (MigrateReport, error) {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	if to < 0 || to >= len(s.shards) {
		return MigrateReport{}, fmt.Errorf("lvmd: migrate to unknown shard %d", to)
	}
	src := s.route(segID)
	dst := s.shards[to]
	rep := MigrateReport{SegID: segID, From: src.ID, To: to}
	if src == dst {
		return rep, fmt.Errorf("lvmd: segment %d already on shard %d", segID, to)
	}
	stall := s.cfg.StallTimeout
	abort := func(err error) (MigrateReport, error) {
		_, _ = src.Exec(func(c *ShardCore) bool { //errgate:ok — best-effort abort cleanup
			c.Unfreeze()
			c.StopCapture()
			return false
		}, stall)
		return rep, err
	}
	step := func(sh *Shard, what string, fn func(c *ShardCore) bool) error {
		ran, err := sh.Exec(fn, stall)
		if err != nil {
			return fmt.Errorf("lvmd: migrate %s: %w", what, err)
		}
		if !ran {
			return fmt.Errorf("lvmd: migrate %s: shard %d refused", what, sh.ID)
		}
		return nil
	}

	// Phase 1 — snapshot the source slot and start capturing commits.
	var img []byte
	var cerr error
	if err := step(src, "snapshot", func(c *ShardCore) bool {
		img, cerr = c.SlotImage(segID)
		if cerr == nil {
			c.StartCapture(segID)
		}
		return false
	}); err != nil {
		return rep, err
	}
	if cerr != nil {
		return rep, cerr
	}
	rep.SnapshotBytes = len(img)
	if err := step(dst, "import", func(c *ShardCore) bool {
		cerr = c.ImportImage(segID, img)
		return cerr == nil
	}); err != nil {
		return abort(err)
	}
	if cerr != nil {
		return abort(cerr)
	}

	// Phase 2 — chase the capture until a round's delta is small.
	for {
		rep.ChaseRounds++
		var delta []Write
		if err := step(src, "chase", func(c *ShardCore) bool {
			delta = c.TakeDelta()
			return false
		}); err != nil {
			return abort(err)
		}
		if len(delta) > 0 {
			rep.DeltaWrites += len(delta)
			if err := step(dst, "delta", func(c *ShardCore) bool {
				_, cerr = c.Commit(segID, delta)
				return cerr == nil
			}); err != nil {
				return abort(err)
			}
			if cerr != nil {
				return abort(cerr)
			}
		}
		if len(delta) <= chaseThreshold || rep.ChaseRounds >= chaseLimit {
			break
		}
	}

	// Phase 3 — cutover: freeze, final delta (fenced durable on the
	// destination by its Exec), tombstone, activate, flip the route.
	t0 := time.Now()
	if err := step(src, "freeze", func(c *ShardCore) bool {
		c.Freeze(segID)
		return false
	}); err != nil {
		return abort(err)
	}
	var final []Write
	if err := step(src, "final-delta", func(c *ShardCore) bool {
		final = c.TakeDelta()
		c.StopCapture()
		return false
	}); err != nil {
		return abort(err)
	}
	if len(final) > 0 {
		rep.DeltaWrites += len(final)
		if err := step(dst, "final-apply", func(c *ShardCore) bool {
			_, cerr = c.Commit(segID, final)
			return cerr == nil
		}); err != nil {
			return abort(err)
		}
		if cerr != nil {
			return abort(cerr)
		}
	}
	if err := step(src, "tombstone", func(c *ShardCore) bool {
		cerr = c.Tombstone(segID)
		return cerr == nil
	}); err != nil {
		return abort(err)
	}
	if cerr != nil {
		return abort(cerr)
	}
	if err := step(dst, "activate", func(c *ShardCore) bool {
		cerr = c.Activate(segID)
		return cerr == nil
	}); err != nil {
		return rep, err // past the tombstone: the destination owns the data
	}
	if cerr != nil {
		return rep, cerr
	}
	s.routeMu.Lock()
	if s.homeShard(segID) == to {
		delete(s.reroute, segID)
	} else {
		s.reroute[segID] = to
	}
	s.routeMu.Unlock()
	rep.PauseNS = time.Since(t0).Nanoseconds()
	s.migrations.Add(1)
	return rep, nil
}
