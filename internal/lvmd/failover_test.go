package lvmd

import (
	"testing"
	"time"

	"lvm/internal/logship"
)

// TestPromoteFromRecoveredPrimary is the in-process shape of soak phase
// C with the hard twist: the primary boots with PRE-EXISTING state, so
// standby replicas can only seed correctly via snapshot catch-up — the
// truncated log never contained the earlier arena image. A shipper
// whose logical cursor started at zero would stream the log tail alone,
// the replicas would miss the recovered slot directory, and a server
// booted from their images would route segments to the wrong slots.
// Regression for exactly that bug: NewShard must seed Ship.StartSeq
// from the recovered commit counter.
func TestPromoteFromRecoveredPrimary(t *testing.T) {
	dir := t.TempDir()
	core := CoreConfig{Slots: 32, SlotSize: 1024, LogPages: 64,
		AbsorbWindow: 8, GroupSize: 8, GroupDeadline: 1024}
	mk := func(sync bool) (*Server, logship.DialFunc) {
		srv, err := NewServer(ServerConfig{
			Dir: dir, Shards: 2,
			Shard:        ShardConfig{Core: core, SyncReplicas: sync},
			StallTimeout: 2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		ln, dial := logship.NewMemTransport()
		srv.Serve(ln)
		return srv, dial
	}

	// Build pre-existing state (phase A/B stand-in), then drain.
	srv0, dial0 := mk(false)
	if _, _, err := RunLoad(LoadConfig{Dial: dial0, Clients: 32, Segments: 8,
		Duration: 500 * time.Millisecond, StoresPerCommit: 4, VerifyEvery: 8}); err != nil {
		t.Fatal(err)
	}
	srv0.Drain()

	// Recover with sync replication, attach standby replicas (which must
	// arrive by snapshot), and load again.
	srv, dial := mk(true)
	arena, _ := core.ArenaSize()
	reps := make([]*logship.Replica, 2)
	for i := range reps {
		d := SubscribeDialer(dial, uint32(i))
		r, err := logship.NewReplica(d, arena)
		if err != nil {
			t.Fatal(err)
		}
		r.TrackMarkers(MarkerLimit)
		if err := r.Connect(); err != nil {
			t.Fatal(err)
		}
		reps[i] = r
	}
	time.Sleep(100 * time.Millisecond)

	res, model, err := RunLoad(LoadConfig{Dial: dial, Clients: 32, Segments: 8,
		Duration: 800 * time.Millisecond, StoresPerCommit: 4, VerifyEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Acked == 0 || res.Deaths != 0 {
		t.Fatalf("load under sync replication: acked=%d deaths=%d", res.Acked, res.Deaths)
	}

	// Promote: roll each replica back to its last committed marker,
	// stamp the commit word, and boot a fresh server from the images —
	// the same sequence cmd/lvmd's standby mode runs on SIGUSR1.
	boot := make([]BootShard, 2)
	for i, r := range reps {
		r.Kill()
		if _, err := r.Rollback(); err != nil {
			t.Fatal(err)
		}
		if r.Stats.SnapshotsApplied.Load() == 0 {
			t.Fatalf("replica %d seeded without a snapshot: recovered state was never shipped", i)
		}
		img := r.Image()
		seq := get32(img) &^ 0x80000000
		put32(img, seq|0x80000000)
		boot[i] = BootShard{Img: img, Seq: seq, Epoch: r.Epoch() + 1}
	}
	srv.Drain()

	srv2, err := NewServer(ServerConfig{
		Dir: t.TempDir(), Shards: 2,
		Shard:        ShardConfig{Core: core},
		StallTimeout: 2 * time.Second,
		Boot:         boot,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln2, dial2 := logship.NewMemTransport()
	srv2.Serve(ln2)
	checked, bad, err := VerifyModel(dial2, model)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) > 0 {
		t.Fatalf("promoted server lost acked state: %d/%d mismatches, e.g. %s",
			len(bad), checked, bad[0])
	}
	if checked == 0 {
		t.Fatal("model verified nothing")
	}
	srv2.Drain()
}

// TestPromotedEpochSurvivesRestart pins the promoted-epoch restart
// fence-out fix. A daemon booted from a promotion grant serves the
// granted epoch E — typically far above its checkpoint generation. The
// old code derived a restarted daemon's epoch from the generation
// alone, so after a drain and restart (no Boot) the daemon came back
// BELOW E and every standby replica floored at E refused it as a
// zombie (ErrFenced), permanently fencing out the legitimate primary.
// Now the grant is stamped into the checkpoint header and a restart
// elects strictly past it.
func TestPromotedEpochSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	core := CoreConfig{Slots: 16, SlotSize: 512, LogPages: 32}
	const granted = uint32(40) // far above any checkpoint generation here
	arena, err := core.ArenaSize()
	if err != nil {
		t.Fatal(err)
	}

	// Boot from a promotion: a (blank) promoted image under grant epoch E.
	srv, err := NewServer(ServerConfig{
		Dir: dir, Shards: 1,
		Shard:        ShardConfig{Core: core},
		StallTimeout: 2 * time.Second,
		Boot:         []BootShard{{Img: make([]byte, arena), Seq: 0, Epoch: granted}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if e := srv.shards[0].Shipper.Epoch(); e != granted {
		t.Fatalf("promoted boot serves epoch %d, granted %d", e, granted)
	}
	ln, dial := logship.NewMemTransport()
	srv.Serve(ln)
	c, err := DialClient(dial)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(1, []Write{{Off: 0, Val: 0xAB}}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	rep := srv.Drain()
	if got := rep.Shards[0].Epoch; got != granted {
		t.Fatalf("drain manifest records epoch %d, granted %d", got, granted)
	}

	// Restart from the daemon's own files, no Boot: the serving epoch
	// must come back strictly above the grant.
	srv2, err := NewServer(ServerConfig{
		Dir: dir, Shards: 1,
		Shard:        ShardConfig{Core: core},
		StallTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e := srv2.shards[0].Shipper.Epoch(); e <= granted {
		t.Fatalf("restart serves epoch %d, not past granted %d: replicas floored at the grant fence it out", e, granted)
	}
	ln2, dial2 := logship.NewMemTransport()
	srv2.Serve(ln2)

	// A standby replica floored at the granted epoch — one that followed
	// the promoted daemon before the restart — must resubscribe.
	r, err := logship.NewReplica(SubscribeDialer(dial2, 0), arena)
	if err != nil {
		t.Fatal(err)
	}
	r.TrackMarkers(MarkerLimit)
	r.SetEpoch(granted)
	if err := r.Connect(); err != nil {
		t.Fatalf("standby floored at the granted epoch cannot resubscribe: %v", err)
	}
	r.Kill()
	srv2.Drain()
}

// TestRestartRenumbersShipEpoch pins the cross-boot fencing rule: each
// recovered boot adopts the checkpoint generation as its shipper epoch,
// so a subscriber of an earlier boot can never silently resume against
// a renumbered log.
func TestRestartRenumbersShipEpoch(t *testing.T) {
	dir := t.TempDir()
	core := CoreConfig{Slots: 16, SlotSize: 512, LogPages: 32,
		AbsorbWindow: 8, GroupSize: 8, GroupDeadline: 1024}
	mk := func() (*Server, logship.DialFunc) {
		srv, err := NewServer(ServerConfig{
			Dir: dir, Shards: 1,
			Shard:        ShardConfig{Core: core},
			StallTimeout: 2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		ln, dial := logship.NewMemTransport()
		srv.Serve(ln)
		return srv, dial
	}

	srv, dial := mk()
	first := srv.shards[0].Shipper.Epoch()
	c, err := DialClient(dial)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(1, []Write{{Off: 0, Val: 0xEE}}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	srv.Drain()

	srv2, _ := mk()
	second := srv2.shards[0].Shipper.Epoch()
	srv2.Drain()
	if second <= first {
		t.Fatalf("restart epoch %d did not advance past %d", second, first)
	}
}
