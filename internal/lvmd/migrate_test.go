package lvmd

import (
	"strings"
	"testing"
	"time"
)

// TestMigrateUnderLoad moves a hot segment between shards while the
// loadgen fleet commits against it: no client may die, every
// acknowledged word must read back through the post-migration routes,
// and the convergence pause must be recorded.
func TestMigrateUnderLoad(t *testing.T) {
	dir := t.TempDir()
	srv, dial := testServer(t, dir, 4)

	type out struct {
		res   LoadResult
		model *Model
		err   error
	}
	ch := make(chan out, 1)
	go func() {
		res, model, err := RunLoad(LoadConfig{
			Dial:            dial,
			Clients:         24,
			Segments:        8,
			Duration:        500 * time.Millisecond,
			StoresPerCommit: 4,
			VerifyEvery:     8,
		})
		ch <- out{res, model, err}
	}()

	time.Sleep(120 * time.Millisecond) // let the fleet open and heat the segment
	const segID = uint64(1)
	from := srv.Owner(segID)
	to := (from + 1) % 4
	rep, err := srv.Migrate(segID, to)
	if err != nil {
		t.Fatalf("migrate under load: %v", err)
	}

	o := <-ch
	if o.err != nil {
		t.Fatal(o.err)
	}
	if o.res.Deaths != 0 {
		t.Fatalf("%d clients died across the migration", o.res.Deaths)
	}
	if o.res.ReadErrors != 0 {
		t.Fatalf("%d read-back mismatches during load", o.res.ReadErrors)
	}
	if o.res.Acked == 0 {
		t.Fatal("fleet acked nothing")
	}
	if got := srv.Owner(segID); got != to {
		t.Fatalf("post-migration owner = shard %d, want %d", got, to)
	}
	if rep.From != from || rep.To != to {
		t.Fatalf("report routes %d->%d, want %d->%d", rep.From, rep.To, from, to)
	}
	if rep.SnapshotBytes == 0 || rep.ChaseRounds == 0 || rep.PauseNS <= 0 {
		t.Fatalf("report missing phase measurements: %+v", rep)
	}
	if got := srv.Stats().Migrations; got != 1 {
		t.Fatalf("migrations counter = %d, want 1", got)
	}

	// The acked-readable proof: every word the fleet was ever
	// acknowledged reads back, the migrated segment's from shard `to`.
	checked, bad, err := VerifyModel(dial, o.model)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) > 0 {
		t.Fatalf("model verify: %d/%d words wrong, e.g. %s", len(bad), checked, bad[0])
	}
	if checked == 0 {
		t.Fatal("model verified nothing")
	}
	if rep2 := srv.Drain(); !rep2.Drained {
		t.Fatalf("drain not clean after migration: %+v", rep2)
	}
}

// TestMigrateRestartPreservesRoute restarts the server after a
// migration: boot-time ownership resolution must route the segment to
// the destination (the tombstone proves the copy was complete), its
// data must survive, and new commits must land there.
func TestMigrateRestartPreservesRoute(t *testing.T) {
	dir := t.TempDir()
	srv, dial := testServer(t, dir, 4)
	const segID = uint64(3)

	c, err := DialClient(dial)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open(segID); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(segID, []Write{{Off: 0, Val: 0x11110000}, {Off: 8, Val: 0x22220000}}); err != nil {
		t.Fatal(err)
	}
	from := srv.Owner(segID)
	to := (from + 1) % 4
	if _, err := srv.Migrate(segID, to); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(segID, []Write{{Off: 4, Val: 0x33330000}}); err != nil {
		t.Fatalf("commit after migration: %v", err)
	}
	c.Close()
	srv.Drain()

	// Restart: scanOwnership resolves the tombstone/active pair to the
	// destination, and the data (pre- and post-migration commits) reads
	// back through the recovered route.
	srv2, dial2 := testServer(t, dir, 4)
	if got := srv2.Owner(segID); got != to {
		t.Fatalf("recovered owner = shard %d, want destination %d", got, to)
	}
	c2, err := DialClient(dial2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Open(segID); err != nil {
		t.Fatal(err)
	}
	b, err := c2.Read(segID, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	words := []uint32{get32(b), get32(b[4:]), get32(b[8:])}
	want := []uint32{0x11110000, 0x33330000, 0x22220000}
	for i := range want {
		if words[i] != want[i] {
			t.Fatalf("word %d after restart = %#x, want %#x", i, words[i], want[i])
		}
	}
	if err := c2.Commit(segID, []Write{{Off: 12, Val: 0x44440000}}); err != nil {
		t.Fatalf("commit after restart: %v", err)
	}
	c2.Close()
	srv2.Drain()
}

// TestMigrateRoundTrip moves a segment away and back home: the return
// trip reuses the tombstoned slot on the origin, and the reroute entry
// disappears (home ownership needs no override).
func TestMigrateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	srv, dial := testServer(t, dir, 2)
	const segID = uint64(2)

	c, err := DialClient(dial)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open(segID); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(segID, []Write{{Off: 0, Val: 0xAB}}); err != nil {
		t.Fatal(err)
	}
	home := srv.Owner(segID)
	away := (home + 1) % 2
	if _, err := srv.Migrate(segID, away); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Migrate(segID, home); err != nil {
		t.Fatalf("migrate back home: %v", err)
	}
	if got := srv.Owner(segID); got != home {
		t.Fatalf("owner after round trip = shard %d, want home %d", got, home)
	}
	srv.routeMu.Lock()
	overrides := len(srv.reroute)
	srv.routeMu.Unlock()
	if overrides != 0 {
		t.Fatalf("%d reroute overrides after returning home, want 0", overrides)
	}
	b, err := c.Read(segID, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := get32(b); got != 0xAB {
		t.Fatalf("word after round trip = %#x, want 0xAB", got)
	}
	c.Close()
	srv.Drain()
}

// TestMigrateErrors pins the refusal paths: unknown destination, a
// no-op move to the current owner, and a segment no client ever opened.
func TestMigrateErrors(t *testing.T) {
	dir := t.TempDir()
	srv, dial := testServer(t, dir, 2)
	const segID = uint64(5)

	c, err := DialClient(dial)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open(segID); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Migrate(segID, 99); err == nil || !strings.Contains(err.Error(), "unknown shard") {
		t.Fatalf("unknown destination error = %v", err)
	}
	if _, err := srv.Migrate(segID, srv.Owner(segID)); err == nil || !strings.Contains(err.Error(), "already on shard") {
		t.Fatalf("same-shard error = %v", err)
	}
	const unopened = uint64(6)
	dst := (srv.Owner(unopened) + 1) % 2
	if _, err := srv.Migrate(unopened, dst); err == nil || !strings.Contains(err.Error(), "unopened segment") {
		t.Fatalf("unopened segment error = %v", err)
	}
	c.Close()
	srv.Drain()
}
