package lvmd

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"lvm/internal/compact"
	"lvm/internal/core"
	"lvm/internal/logcursor"
	"lvm/internal/logrec"
	"lvm/internal/metrics"
	"lvm/internal/ramdisk"
	"lvm/internal/recovery"
)

// MarkerLimit is the marker-word area of every shard arena: stores below
// it drive the recovery marker protocol (one transaction per client
// commit), exactly as internal/rlvm and the crashtest log workload use
// it.
const MarkerLimit = uint32(16)

// dirEntryBytes is one slot-directory entry: the tenant segment ID (0 =
// free). The directory lives in the arena right after the marker area
// and is written with logged stores inside the open transaction, so slot
// assignments recover with the data — no side-channel catalog to keep
// consistent.
const dirEntryBytes = uint32(8)

// Directory entry flag bits. Segment IDs must stay below receivingBit;
// the top two bits carry migration state, which recovers with the data
// because the entry is rewritten inside marker transactions:
//
//	id            — this shard owns and serves the segment
//	id|movedBit   — tombstone: the segment migrated away (slot retired)
//	id|receivingBit — inbound copy: data is being imported; it serves
//	                  only if the source's tombstone committed first
//
// The cutover order (destination data fenced, then source tombstone,
// then destination activation) makes the crash rule single-valued: an
// untombstoned source always wins, and a receiving copy wins only when
// the source's tombstone proves the destination copy was complete.
const (
	movedBit     = uint64(1) << 63
	receivingBit = uint64(1) << 62
	dirFlagMask  = movedBit | receivingBit
)

// CoreConfig sizes one shard's deterministic simulation.
type CoreConfig struct {
	// Slots is the tenant-segment capacity; SlotSize the bytes per tenant
	// (a multiple of 4).
	Slots    int
	SlotSize uint32
	// LogPages sizes the hardware log; compaction triggers at half.
	LogPages uint32
	// Disk holds the shard's checkpoint area (compact.Manager slots).
	Disk ramdisk.Device
	// DiskBase is the checkpoint area's offset on Disk.
	DiskBase uint64
	// Tail, when non-nil, durably mirrors the physical log for restart
	// recovery. nil runs the shard without cross-process durability (the
	// crashtest scenario recovers in-process from the surviving log).
	Tail *TailFile
	// Epoch, when non-zero, is an explicit fencing epoch from a promotion
	// grant: the shard serves exactly it. Zero lets NewCore elect one
	// strictly above both the checkpoint generation and the epoch the
	// last committed checkpoint persisted, so a restarted shard — even
	// one that was promoted to a high granted epoch in a previous life —
	// is never fenced out by replicas floored at that epoch.
	Epoch uint32
	// AbsorbWindow/GroupSize/GroupDeadline tune the bus logger once
	// EnableTuning is called (zero values leave the stage off).
	AbsorbWindow  int
	GroupSize     int
	GroupDeadline uint64
}

func (c *CoreConfig) fill() error {
	if c.Slots <= 0 {
		c.Slots = 64
	}
	if c.Slots > 1<<16 {
		return fmt.Errorf("lvmd: %d slots exceeds the directory limit", c.Slots)
	}
	if c.SlotSize == 0 {
		c.SlotSize = 4096
	}
	if c.SlotSize%4 != 0 {
		return fmt.Errorf("lvmd: slot size %d is not word-aligned", c.SlotSize)
	}
	if c.LogPages == 0 {
		c.LogPages = 1024
	}
	return nil
}

// Write is one word store of a client transaction, relative to the
// tenant slot.
type Write struct {
	Off uint32
	Val uint32
}

// ShardCore is one shard's single-threaded simulation: every method must
// be called from the shard's owning goroutine (or test), never
// concurrently. It hosts the arena (marker words + slot directory +
// tenant slots), the hardware log, the compaction manager, and the
// durable tail mirror.
type ShardCore struct {
	Sys    *core.System
	Arena  *core.Segment
	LogSeg *core.Segment
	P      *core.Process
	Mgr    *compact.Manager

	cfg      CoreConfig
	base     core.Addr
	slotBase uint32
	seq      uint32
	slots    map[uint64]uint32 // segID → slot index
	nextSlot uint32

	// Migration state. moved holds tombstoned entries (segment migrated
	// away); receiving marks slots whose data arrived by migration but
	// whose entry has not been activated yet. frozen/captureID/captureBuf
	// are volatile: a crash un-freezes and drops the capture, which is
	// safe because an unfinished migration resolves to the source.
	moved      map[uint64]uint32
	receiving  map[uint64]bool
	frozen     uint64
	captureID  uint64
	captureBuf []Write

	reader  *core.LogReader // tail-capture cursor (Tail != nil only)
	ship    *coreShip
	sh      *metrics.Shard
	scratch [logrec.Size]byte
	lost    uint64 // LostRecords watermark already accounted
}

// coreShip is the compact.Shipper the manager notifies: it keeps the
// tail mirror and the optional replication shipper in step with every
// physical cut, and re-seeks the capture reader (offsets slide with the
// log).
type coreShip struct {
	c   *ShardCore
	ext compact.Shipper // the shard's logship.Shipper, when serving
}

func (s *coreShip) MinAcked() uint64 {
	if s.ext != nil {
		return s.ext.MinAcked()
	}
	return ^uint64(0)
}

func (s *coreShip) Compacted(cutRecords uint64) error {
	if s.c.cfg.Tail != nil {
		if err := s.c.cfg.Tail.Cut(cutRecords * logrec.Size); err != nil {
			return err
		}
		s.c.reader.Sync()
		phys := uint64(s.c.reader.Offset())
		cutBytes := cutRecords * logrec.Size
		if cutBytes > phys {
			return fmt.Errorf("lvmd: compaction cut %d bytes but capture scanned %d", cutBytes, phys)
		}
		if err := s.c.reader.Seek(uint32(phys - cutBytes)); err != nil {
			return fmt.Errorf("lvmd: capture reseek: %w", err)
		}
	}
	if s.ext != nil {
		return s.ext.Compacted(cutRecords)
	}
	return nil
}

// ArenaSize reports the arena bytes a config implies, page-rounded to
// match what the segment will report (subscribers size their replicas
// from this, and the logship handshake rejects a size mismatch).
func (cfg CoreConfig) ArenaSize() (uint32, error) {
	if err := cfg.fill(); err != nil {
		return 0, err
	}
	slotBase := slotBaseFor(cfg.Slots)
	size := uint64(slotBase) + uint64(cfg.Slots)*uint64(cfg.SlotSize)
	size = (size + core.PageSize - 1) &^ uint64(core.PageSize-1)
	if size > 1<<31 {
		return 0, fmt.Errorf("lvmd: arena of %d slots × %d bytes too large", cfg.Slots, cfg.SlotSize)
	}
	return uint32(size), nil
}

func slotBaseFor(slots int) uint32 {
	b := MarkerLimit + uint32(slots)*dirEntryBytes
	return (b + 15) &^ 15
}

// NewCore boots a fresh shard. img, when non-nil, is a recovered arena
// image (RecoverImage): it is installed raw, the slot directory and
// transaction sequence are rebuilt from it, and — because the recovered
// state must be durable before anything is acknowledged on top of it —
// a fresh-generation checkpoint is committed and the tail mirror reset,
// so the shard's logical log offsets restart at zero in every layer
// (checkpoint header, tail header, shipper base) in step.
//
// The bus-logger tuning stages stay off until EnableTuning: restart
// re-issue (RecoverImage) and recovery tests need the log to mirror the
// issued stores one-to-one.
func NewCore(cfg CoreConfig, img []byte, seq uint32) (*ShardCore, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if cfg.Disk == nil {
		return nil, errors.New("lvmd: CoreConfig.Disk is required")
	}
	arenaSize, err := cfg.ArenaSize()
	if err != nil {
		return nil, err
	}
	if img != nil && uint32(len(img)) != arenaSize {
		return nil, fmt.Errorf("lvmd: recovered image %d bytes, arena %d", len(img), arenaSize)
	}
	arenaPages := (arenaSize + core.PageSize - 1) / core.PageSize
	sys := core.NewSystem(core.Config{
		NumCPUs:   1,
		MemFrames: int(arenaPages) + int(cfg.LogPages) + 512,
	})
	arena := core.NewNamedSegment(sys, "lvmd-arena", arenaSize, nil)
	arena.SetNoAbsorbLimit(MarkerLimit) // marker words are barriers, never coalesced
	reg := core.NewStdRegion(sys, arena)
	ls := core.NewLogSegment(sys, cfg.LogPages)
	if err := reg.Log(ls); err != nil {
		return nil, fmt.Errorf("lvmd: log binding: %w", err)
	}
	as := sys.NewAddressSpace()
	base, err := reg.Bind(as, 0)
	if err != nil {
		return nil, fmt.Errorf("lvmd: arena binding: %w", err)
	}
	c := &ShardCore{
		Sys:       sys,
		Arena:     arena,
		LogSeg:    ls,
		P:         sys.NewProcess(0, as),
		cfg:       cfg,
		base:      base,
		slotBase:  slotBaseFor(cfg.Slots),
		slots:     make(map[uint64]uint32),
		moved:     make(map[uint64]uint32),
		receiving: make(map[uint64]bool),
		sh:        sys.DeviceShard(),
	}
	c.ship = &coreShip{c: c}
	c.Mgr, err = compact.New(sys, compact.Options{
		Data: arena, Log: ls, Disk: cfg.Disk, DiskBase: cfg.DiskBase, Ship: c.ship,
	})
	if err != nil {
		return nil, err
	}
	// Serving-epoch election, before any checkpoint can stamp it: an
	// explicit grant serves exactly; otherwise advance strictly past both
	// the committed checkpoint generation and the epoch the last committed
	// header persisted. A shard promoted to a high granted epoch in a
	// previous incarnation therefore restarts above it instead of falling
	// back to the generation and being fenced out by its own replicas.
	// (Legacy headers read epoch 0, reproducing the old generation-as-
	// epoch numbering exactly.)
	if cfg.Epoch != 0 {
		c.Mgr.SetEpoch(cfg.Epoch)
	} else {
		e := c.Mgr.Seq() + 1
		if pe := c.Mgr.Epoch(); pe >= e {
			e = pe + 1
		}
		c.Mgr.SetEpoch(e)
	}
	if cfg.Tail != nil {
		c.reader = core.NewLogReader(sys, ls)
	}
	if img != nil {
		arena.RawWrite(0, img)
		c.seq = seq
		c.rebuildSlots(img)
		c.sh.Inc(metrics.LvmdRecoveries)
		// Durability order: the new-generation checkpoint commits first
		// (covering the whole recovered state), the tail resets second. A
		// crash between the two replays the old tail over the new image —
		// an in-order re-application of transactions the image already
		// holds, which is idempotent.
		if err := c.Mgr.Checkpoint(nil); err != nil {
			return nil, fmt.Errorf("lvmd: post-recovery checkpoint: %w", err)
		}
		if cfg.Tail != nil {
			if err := cfg.Tail.Reset(0); err != nil {
				return nil, fmt.Errorf("lvmd: post-recovery tail reset: %w", err)
			}
		}
	}
	return c, nil
}

// rebuildSlots reconstructs the segID→slot map from a recovered image's
// directory region. Tombstoned entries keep their slot retired; a
// receiving entry holds real data and is mapped so the ownership scan
// can serve it if the source proved the copy complete.
func (c *ShardCore) rebuildSlots(img []byte) {
	for i := 0; i < c.cfg.Slots; i++ {
		off := MarkerLimit + uint32(i)*dirEntryBytes
		e := get64(img[off:])
		if e == 0 {
			break // entries are allocated densely
		}
		id := e &^ dirFlagMask
		switch {
		case e&movedBit != 0:
			c.moved[id] = uint32(i)
		case e&receivingBit != 0:
			c.slots[id] = uint32(i)
			c.receiving[id] = true
		default:
			c.slots[id] = uint32(i)
		}
		c.nextSlot = uint32(i) + 1
	}
}

// EnableTuning turns on the configured write-absorption and group-commit
// stages. Call once recovery (if any) is complete.
func (c *ShardCore) EnableTuning() {
	if c.cfg.AbsorbWindow > 0 {
		c.Sys.EnableWriteAbsorption(c.cfg.AbsorbWindow)
	}
	if c.cfg.GroupSize > 1 {
		c.Sys.EnableGroupCommit(c.cfg.GroupSize, c.cfg.GroupDeadline)
	}
}

// SetShipper attaches the shard's replication shipper: compaction cuts
// are bounded by its consumers' acks and forwarded to it.
func (c *ShardCore) SetShipper(s compact.Shipper) { c.ship.ext = s }

// Seq reports the last issued transaction sequence.
func (c *ShardCore) Seq() uint32 { return c.seq }

// Segments reports how many tenant segments are open.
func (c *ShardCore) Segments() int { return len(c.slots) }

// SlotOff reports the arena byte offset of slot i.
func (c *ShardCore) SlotOff(i uint32) uint32 {
	return c.slotBase + i*c.cfg.SlotSize
}

// SlotSize reports the per-tenant slot bytes.
func (c *ShardCore) SlotSize() uint32 { return c.cfg.SlotSize }

// Lookup returns a tenant's slot index.
func (c *ShardCore) Lookup(segID uint64) (uint32, bool) {
	s, ok := c.slots[segID]
	return s, ok
}

// ErrNoSlot reports a full slot directory.
var ErrNoSlot = errors.New("lvmd: shard slot directory full")

// ErrMoved reports an operation on a segment this shard no longer (or
// not yet) serves: it migrated away, or is frozen mid-cutover. The
// server answers StatusMoved and the client re-resolves its route.
var ErrMoved = errors.New("lvmd: segment moved")

// Open maps segID to a slot, allocating one inside a marker-bracketed
// transaction on first open (the directory write recovers with the
// data). The allocation is durable only after the next SyncBatch; the
// caller acknowledges after that fence, like a commit.
func (c *ShardCore) Open(segID uint64) (slot uint32, existed bool, err error) {
	if segID == 0 {
		return 0, false, errors.New("lvmd: segment ID 0 is reserved")
	}
	if segID&dirFlagMask != 0 {
		return 0, false, fmt.Errorf("lvmd: segment ID %#x collides with directory flag bits", segID)
	}
	if s, ok := c.slots[segID]; ok {
		return s, true, nil
	}
	if _, gone := c.moved[segID]; gone {
		return 0, false, ErrMoved
	}
	if int(c.nextSlot) >= c.cfg.Slots {
		return 0, false, ErrNoSlot
	}
	slot = c.nextSlot
	c.seq++
	c.P.Store32(c.base, c.seq&^recovery.MarkerCommit) // begin
	dir := c.base + core.Addr(MarkerLimit+slot*dirEntryBytes)
	c.P.Store32(dir, uint32(segID))
	c.P.Store32(dir+4, uint32(segID>>32))
	c.P.Store32(c.base, c.seq|recovery.MarkerCommit) // commit
	c.nextSlot++
	c.slots[segID] = slot
	c.sh.Inc(metrics.LvmdOpens)
	return slot, false, nil
}

// Commit applies one client transaction: every write behind a begin
// marker, then the commit marker. Durable (and acknowledgeable) only
// after the next SyncBatch. Returns the marker-protocol sequence.
func (c *ShardCore) Commit(segID uint64, writes []Write) (uint32, error) {
	slot, ok := c.slots[segID]
	if !ok {
		if _, gone := c.moved[segID]; gone {
			return 0, ErrMoved
		}
		return 0, fmt.Errorf("lvmd: commit to unopened segment %d", segID)
	}
	if c.frozen == segID {
		return 0, ErrMoved
	}
	for _, w := range writes {
		if w.Off%4 != 0 || w.Off+4 > c.cfg.SlotSize {
			return 0, fmt.Errorf("lvmd: store offset %d invalid for %d-byte slot", w.Off, c.cfg.SlotSize)
		}
	}
	c.seq++
	c.P.Store32(c.base, c.seq&^recovery.MarkerCommit) // begin
	va := c.base + core.Addr(c.SlotOff(slot))
	for _, w := range writes {
		c.P.Store32(va+core.Addr(w.Off), w.Val)
	}
	c.P.Store32(c.base, c.seq|recovery.MarkerCommit) // commit
	if c.captureID == segID && segID != 0 {
		c.captureBuf = append(c.captureBuf, writes...)
	}
	c.sh.Inc(metrics.LvmdCommits)
	c.sh.Add(metrics.LvmdStores, uint64(len(writes)))
	return c.seq, nil
}

// Read returns committed tenant bytes (call after SyncBatch for
// read-your-acked-writes consistency; the shard goroutine serializes
// reads with commits either way).
func (c *ShardCore) Read(segID uint64, off, n uint32) ([]byte, error) {
	slot, ok := c.slots[segID]
	if !ok {
		if _, gone := c.moved[segID]; gone {
			return nil, ErrMoved
		}
		return nil, fmt.Errorf("lvmd: read of unopened segment %d", segID)
	}
	if off+n < off || off+n > c.cfg.SlotSize {
		return nil, fmt.Errorf("lvmd: read [%d,%d) leaves %d-byte slot", off, off+n, c.cfg.SlotSize)
	}
	out := make([]byte, n)
	c.Arena.ReadInto(c.SlotOff(slot)+off, out)
	c.sh.Inc(metrics.LvmdReads)
	return out, nil
}

// SyncBatch is the group durability fence: drain the bus logger, mirror
// the new log records into the tail file, and fsync it. Everything
// applied since the previous fence is durable when it returns — the
// point at which commit acknowledgements may be sent. It refuses to
// succeed if the hardware lost records (a full log wrapped into absorb
// mode): acknowledging on top of silent loss would be a durability lie.
func (c *ShardCore) SyncBatch() error {
	c.Sys.Sync()
	if lost := c.LogSeg.LostRecords(); lost > c.lost {
		c.lost = lost
		return fmt.Errorf("lvmd: hardware log overflowed, %d records lost", lost)
	}
	c.sh.Inc(metrics.LvmdBatches)
	if c.cfg.Tail == nil {
		return nil
	}
	c.reader.Sync()
	appended := uint64(0)
	err := logcursor.EachData(c.reader, c.Arena, func(rec core.Record, isData bool) error {
		if !isData {
			return fmt.Errorf("lvmd: log record for foreign segment at offset %d", c.reader.Offset())
		}
		logcursor.Wire(rec).Encode(c.scratch[:])
		c.cfg.Tail.Append(c.scratch[:])
		appended += logrec.Size
		return nil
	})
	if err != nil {
		return err
	}
	if err := c.cfg.Tail.Flush(); err != nil {
		return err
	}
	c.sh.Add(metrics.LvmdTailBytes, appended)
	return nil
}

// MaybeCompact runs a checkpoint-and-truncate cycle once the log tail
// passes half the log's capacity. A refused compaction (e.g. a device
// error) leaves the log intact and recovery falls back to a longer
// replay; it is reported but not fatal.
func (c *ShardCore) MaybeCompact() (bool, error) {
	end := c.Sys.K.LogAppendOffset(c.LogSeg)
	if uint64(end) < uint64(c.cfg.LogPages)*uint64(core.PageSize)/2 {
		return false, nil
	}
	if err := c.Mgr.Compact(c.P.CPU); err != nil {
		return false, err
	}
	return true, nil
}

// Checkpoint commits a checkpoint image without truncating (drain path:
// it must not wait on lagging replication consumers).
func (c *ShardCore) Checkpoint() error { return c.Mgr.Checkpoint(nil) }

// Digest hashes the arena's recoverable bytes (directory + slots; the
// volatile marker word is excluded). Two shards with identical committed
// state digest identically — the byte-identical-restart check.
func (c *ShardCore) Digest() [32]byte {
	buf := make([]byte, c.Arena.Size()-MarkerLimit)
	c.Arena.ReadInto(MarkerLimit, buf)
	return sha256.Sum256(buf)
}

// RecoverInfo reports what a restart recovery did.
type RecoverInfo struct {
	compact.RecoverResult
	// TailRecords is how many mirrored records the tail file held;
	// ReissuedRecords how many were re-issued (fewer after a torn or
	// invalid record, which ends the re-issue like a quarantined tail).
	TailRecords     int
	ReissuedRecords int
	Seq             uint32
}

// RecoverImage reconstructs a shard's committed arena image from its
// durable files without modifying them: the tail mirror is re-issued
// as real stores through a throwaway machine (the log segment's record
// addresses resolve only against live mappings, so persisted bytes
// cannot be replayed directly), then compact.Recover seeds a fresh
// segment from the last committed checkpoint and replays the
// marker-committed tail past its watermark. Pure: calling it twice must
// produce identical images — the -check mode's determinism probe.
func RecoverImage(cfg CoreConfig, tail *TailFile) ([]byte, RecoverInfo, error) {
	var info RecoverInfo
	if err := cfg.fill(); err != nil {
		return nil, info, err
	}
	arenaSize, err := cfg.ArenaSize()
	if err != nil {
		return nil, info, err
	}
	// Boot the throwaway machine with tuning off: re-issue must append
	// one log record per mirrored record, or the checkpoint watermark
	// arithmetic stops lining up with physical offsets.
	boot := cfg
	boot.Tail = nil
	boot.AbsorbWindow, boot.GroupSize, boot.GroupDeadline = 0, 0, 0
	c, err := NewCore(boot, nil, 0)
	if err != nil {
		return nil, info, err
	}
	records, err := tail.Load()
	if err != nil {
		return nil, info, err
	}
	info.TailRecords = len(records) / int(logrec.Size)
	for off := 0; off+logrec.Size <= len(records); off += logrec.Size {
		rec := logrec.Decode(records[off:])
		if !recovery.ValidWrite(rec.Addr, rec.WriteSize, arenaSize) {
			break // torn or damaged mirror: stop, like a quarantined tail
		}
		va := c.base + core.Addr(rec.Addr)
		switch rec.WriteSize {
		case 4:
			c.P.Store32(va, rec.Value)
		case 2:
			c.P.Store16(va, uint16(rec.Value))
		default:
			c.P.Store8(va, uint8(rec.Value))
		}
		info.ReissuedRecords++
	}
	c.Sys.Sync()
	if got := c.Sys.K.LogAppendOffset(c.LogSeg); got != uint32(info.ReissuedRecords)*uint32(logrec.Size) {
		return nil, info, fmt.Errorf("lvmd: re-issued %d records but log holds %d bytes",
			info.ReissuedRecords, got)
	}
	dst := core.NewNamedSegment(c.Sys, "lvmd-recover", arenaSize, nil)
	rr, err := compact.Recover(c.Sys, compact.RecoverOptions{
		Disk:     recovery.NewRetryDisk(cfg.Disk, nil, c.sh),
		DiskBase: cfg.DiskBase,
		Log:      c.LogSeg, Data: c.Arena, Dst: dst, MarkerLimit: MarkerLimit,
	})
	if err != nil {
		return nil, info, err
	}
	info.RecoverResult = rr
	img := make([]byte, arenaSize)
	dst.ReadInto(0, img)
	// The transaction sequence resumes past both the image's marker word
	// (the last marker the checkpoint captured) and the replayed tail.
	info.Seq = get32(img) &^ recovery.MarkerCommit
	if rr.LastSeq > info.Seq {
		info.Seq = rr.LastSeq
	}
	// Stamp the resolved sequence back into the marker word: replay never
	// writes protocol words into Dst, so the image would otherwise keep the
	// marker the checkpoint captured. A generation that serves no new
	// transactions re-checkpoints its image verbatim, and the next recovery
	// — with an empty tail and so no LastSeq to compensate — would report
	// the stale sequence.
	if info.Seq != 0 {
		put32(img, info.Seq|recovery.MarkerCommit)
	}
	return img, info, nil
}
