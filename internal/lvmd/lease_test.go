package lvmd

import (
	"errors"
	"strings"
	"testing"
	"time"

	"lvm/internal/lease"
	"lvm/internal/logship"
)

// TestShardLeaseDemotion: a shard whose lease clock jumps past the TTL
// (a pause, a wedge — anything that kept the run loop from renewing)
// demotes itself: writes answer StatusDemoted, reads keep serving, and
// the drain report says so.
func TestShardLeaseDemotion(t *testing.T) {
	clk := lease.NewManual(0)
	ttl := 50 * time.Millisecond
	srv, err := NewServer(ServerConfig{
		Dir:    t.TempDir(),
		Shards: 1,
		Shard: ShardConfig{
			Core: CoreConfig{Slots: 32, SlotSize: 1024, LogPages: 64,
				AbsorbWindow: 8, GroupSize: 8, GroupDeadline: 1024},
			LeaseTTL:   ttl,
			LeaseClock: clk,
		},
		StallTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, dial := logship.NewMemTransport()
	srv.Serve(ln)

	cl, err := DialClient(dial)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Open(1); err != nil {
		t.Fatal(err)
	}
	if err := cl.Commit(1, []Write{{Off: 0, Val: 0xAA}}); err != nil {
		t.Fatalf("commit under a held lease: %v", err)
	}

	// Freeze the renewal clock past the TTL: the next wall-clock tick
	// finds the lease unrenewable and the shard demotes itself.
	clk.Advance(lease.Ticks(ttl) + 1)
	deadline := time.Now().Add(2 * time.Second)
	for !srv.shards[0].Demoted() {
		if time.Now().After(deadline) {
			t.Fatal("shard never demoted after its lease clock jumped")
		}
		time.Sleep(time.Millisecond)
	}

	if err := cl.Commit(1, []Write{{Off: 0, Val: 0xBB}}); err == nil ||
		!strings.Contains(err.Error(), "status 6") {
		t.Fatalf("commit on a demoted shard = %v, want StatusDemoted refusal", err)
	}
	if _, err := cl.Open(2); err == nil || !strings.Contains(err.Error(), "status 6") {
		t.Fatalf("open on a demoted shard = %v, want StatusDemoted refusal", err)
	}
	// Reads stay up: the data is consistent to the last acked commit.
	b, err := cl.Read(1, 0, 4)
	if err != nil {
		t.Fatalf("read on a demoted shard: %v", err)
	}
	if got := get32(b); got != 0xAA {
		t.Fatalf("demoted read = %#x, want the pre-demotion ack %#x", got, 0xAA)
	}

	rep := srv.Drain()
	if !rep.Shards[0].Demoted {
		t.Fatal("drain report does not record the demotion")
	}
}

// TestShardDemotesBeforeAckAfterPause is the regression for the
// select-race hole: a run loop resumed after a pause longer than the
// TTL has both the op queue and the beat ticker ready at its select,
// and Go picks between ready cases uniformly — so the old code could
// process and acknowledge a full batch of writes before the ticker
// case ever ran leaseTick, after a standby had already promoted. The
// ticker here is parked a quarter-hour away (huge wall TTL) so it
// cannot fire within the test: only the lease check at the top of
// process() can demote, and the post-pause commit must be refused —
// deterministically, not per the scheduler's coin flip.
func TestShardDemotesBeforeAckAfterPause(t *testing.T) {
	clk := lease.NewManual(0)
	ttl := time.Hour
	srv, err := NewServer(ServerConfig{
		Dir:    t.TempDir(),
		Shards: 1,
		Shard: ShardConfig{
			Core: CoreConfig{Slots: 32, SlotSize: 1024, LogPages: 64,
				AbsorbWindow: 8, GroupSize: 8, GroupDeadline: 1024},
			LeaseTTL:   ttl,
			LeaseClock: clk,
		},
		StallTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, dial := logship.NewMemTransport()
	srv.Serve(ln)

	cl, err := DialClient(dial)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Open(1); err != nil {
		t.Fatal(err)
	}
	if err := cl.Commit(1, []Write{{Off: 0, Val: 0xAA}}); err != nil {
		t.Fatalf("commit under a held lease: %v", err)
	}

	// The pause: the lease clock jumps past the TTL while the ticker
	// stays silent. The very next write must find the shard demoted.
	clk.Advance(lease.Ticks(ttl) + 1)
	if err := cl.Commit(1, []Write{{Off: 0, Val: 0xBB}}); err == nil ||
		!strings.Contains(err.Error(), "status 6") {
		t.Fatalf("first post-pause commit = %v, want StatusDemoted refusal", err)
	}
	if !srv.shards[0].Demoted() {
		t.Fatal("shard acked past the pause without demoting")
	}
	// The pre-pause ack survives; the refused write never applied.
	b, err := cl.Read(1, 0, 4)
	if err != nil {
		t.Fatalf("read on a demoted shard: %v", err)
	}
	if got := get32(b); got != 0xAA {
		t.Fatalf("demoted read = %#x, want the pre-demotion ack %#x", got, 0xAA)
	}
	srv.Drain()
}

// TestServerIdleDeadline is the satellite regression: a connected client
// that goes silent is reaped after IdleTimeout and counted, while an
// active client — each frame refreshes the deadline — outlives many
// timeouts' worth of wall clock.
func TestServerIdleDeadline(t *testing.T) {
	srv, dial := func() (*Server, logship.DialFunc) {
		srv, err := NewServer(ServerConfig{
			Dir:    t.TempDir(),
			Shards: 1,
			Shard: ShardConfig{
				Core: CoreConfig{Slots: 32, SlotSize: 1024, LogPages: 64,
					AbsorbWindow: 8, GroupSize: 8, GroupDeadline: 1024},
			},
			StallTimeout: 2 * time.Second,
			IdleTimeout:  60 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		ln, dial := logship.NewMemTransport()
		srv.Serve(ln)
		return srv, dial
	}()
	defer srv.Drain()

	silent, err := DialClient(dial)
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	if _, err := silent.Open(1); err != nil {
		t.Fatal(err)
	}

	active, err := DialClient(dial)
	if err != nil {
		t.Fatal(err)
	}
	defer active.Close()
	if _, err := active.Open(1); err != nil {
		t.Fatal(err)
	}

	// The active client paces well under the deadline but runs far past
	// it in total; the silent one sends nothing at all.
	for i := 0; i < 8; i++ {
		time.Sleep(25 * time.Millisecond)
		if err := active.Commit(1, []Write{{Off: 0, Val: uint32(i)}}); err != nil {
			t.Fatalf("active client reaped at iteration %d: %v", i, err)
		}
	}
	if got := srv.Stats().IdleExpired; got != 1 {
		t.Fatalf("idle expired = %d, want exactly the silent client", got)
	}
	// The reaped socket is actually dead, not just counted.
	if err := silent.Commit(1, []Write{{Off: 4, Val: 9}}); err == nil {
		t.Fatal("silent client's connection survived the idle deadline")
	}
}

// TestMovedChaseExhausted: a route that keeps answering StatusMoved
// surfaces the typed MovedError — unwrapping to ErrMoved — after the
// bounded retry schedule, instead of spinning forever.
func TestMovedChaseExhausted(t *testing.T) {
	ln, dial := logship.NewMemTransport()
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			typ, p, err := logship.ReadFrame(conn)
			if err != nil {
				return
			}
			if typ != logship.FrameOpen {
				return
			}
			segID, _ := decodeOpen(p)
			resp := encodeOpenResp(openResp{segID: segID, status: StatusMoved})
			if _, err := conn.Write(logship.EncodeFrame(logship.FrameOpenResp, resp)); err != nil {
				return
			}
		}
	}()

	cl, err := DialClient(dial)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.Open(7)
	if err == nil {
		t.Fatal("open against a permanently-moved route succeeded")
	}
	if !errors.Is(err, ErrMoved) {
		t.Fatalf("chase exhaustion error = %v, does not unwrap to ErrMoved", err)
	}
	var me *MovedError
	if !errors.As(err, &me) {
		t.Fatalf("chase exhaustion error = %T, want *MovedError", err)
	}
	if me.Seg != 7 || me.Attempts != movedRetries+1 || me.Elapsed <= 0 {
		t.Fatalf("MovedError = %+v", me)
	}

	// The wall-clock budget trips even when the retry count has not:
	// exercised directly so the test does not sleep out the real budget.
	ch := movedChase{start: time.Now().Add(-movedChaseBudget - time.Second), attempts: 1}
	if err := ch.again(9); err == nil || !errors.Is(err, ErrMoved) {
		t.Fatalf("time-budget exhaustion = %v, want MovedError", err)
	}
}

// TestIdleTimeoutDefaultsGenerous guards the fill: the deadline exists
// to reap half-open clients, not to police think time.
func TestIdleTimeoutDefaultsGenerous(t *testing.T) {
	cfg := ServerConfig{}
	cfg.fill()
	if cfg.IdleTimeout < time.Minute {
		t.Fatalf("default idle timeout %v is aggressive enough to police think time", cfg.IdleTimeout)
	}
}
