package lvmd

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"lvm/internal/logship"
	"lvm/internal/metrics"
)

// ServerConfig tunes the daemon.
type ServerConfig struct {
	// Dir is the data directory: shard-N.ckpt and shard-N.tail per shard.
	Dir string
	// Shards is the shard-group count (default 8); Shard the per-shard
	// template (its Core.Disk/Tail are filled per shard from Dir).
	Shards int
	Shard  ShardConfig
	// Policy is the slow-client policy for the shard op queue and each
	// session's outbound queue: PolicyStall waits StallTimeout then kills
	// the connection, PolicyDrop kills immediately.
	Policy       logship.Policy
	StallTimeout time.Duration
	// MaxTxnStores bounds a session's buffered stores per segment
	// (default 1024); WriteQueue the outbound frames queued per session
	// (default 256).
	MaxTxnStores int
	WriteQueue   int
	// IdleTimeout is the per-session read deadline, refreshed before
	// every frame (default 2 minutes — generous: it exists to reap
	// half-open and abandoned clients, not to police think time). A
	// session that sends nothing for this long is disconnected and
	// counted in HostStats.IdleExpired; without it a dead peer pins a
	// goroutine and a tracked conn forever — exactly the silent-failure
	// mode lease detection exists to catch on the serving side.
	IdleTimeout time.Duration
	// Boot, when non-nil (one entry per shard), seeds each shard from a
	// promoted replica image instead of recovering from Dir's files: the
	// image is installed as the shard's arena, its first checkpoint makes
	// the promoted state durable in Dir, and the shard's shipper serves
	// the granted epoch so zombie-generation subscribers are fenced.
	Boot []BootShard
}

// BootShard is one shard's promoted state: a rolled-back replica image,
// the transaction sequence its marker word holds, and the fencing epoch
// the promotion granted.
type BootShard struct {
	Img   []byte
	Seq   uint32
	Epoch uint32
}

func (c *ServerConfig) fill() {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 5 * time.Second
	}
	if c.MaxTxnStores <= 0 {
		c.MaxTxnStores = 1024
	}
	if c.WriteQueue <= 0 {
		c.WriteQueue = 256
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
}

// HostStats are the daemon's host-side counters (the simulated machines'
// own metrics live in the drain report — they are single-writer state of
// the shard goroutines and are only read once those quiesce).
type HostStats struct {
	Accepted     uint64 `json:"accepted"`
	Sessions     int64  `json:"sessions"`
	Subscribers  uint64 `json:"subscribers"`
	KilledStall  uint64 `json:"killed_stall"`
	KilledDrop   uint64 `json:"killed_drop"`
	BadFrames    uint64 `json:"bad_frames"`
	RefusedDrain uint64 `json:"refused_drain"`
	Migrations   uint64 `json:"migrations"`
	IdleExpired  uint64 `json:"idle_expired"`
}

// Server is the lvmd daemon: an accept loop feeding per-shard
// single-writer goroutines through bounded queues.
type Server struct {
	cfg    ServerConfig
	shards []*Shard
	disks  []*FileDisk
	tails  []*TailFile
	info   []RecoverInfo

	ln       net.Listener
	mu       sync.Mutex
	sessions map[net.Conn]struct{}
	draining atomic.Bool
	acceptWG sync.WaitGroup
	sessWG   sync.WaitGroup

	// reroute overrides the hash route for migrated segments: segID →
	// shard index of the current owner. Rebuilt from the directory marks
	// at boot, updated at each cutover flip.
	routeMu sync.RWMutex
	reroute map[uint64]int
	migMu   sync.Mutex // serializes migrations

	accepted    atomic.Uint64
	sessionsNow atomic.Int64
	subscribers atomic.Uint64
	killedStall atomic.Uint64
	killedDrop  atomic.Uint64
	badFrames   atomic.Uint64
	refused     atomic.Uint64
	migrations  atomic.Uint64
	idleExpired atomic.Uint64
}

// NewServer recovers (or creates) every shard from cfg.Dir and starts
// their goroutines. It does not accept connections until Serve.
func NewServer(cfg ServerConfig) (*Server, error) {
	cfg.fill()
	s := &Server{cfg: cfg, sessions: make(map[net.Conn]struct{}), reroute: make(map[uint64]int)}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("lvmd: data dir: %w", err)
	}
	if cfg.Boot != nil && len(cfg.Boot) != cfg.Shards {
		return nil, fmt.Errorf("lvmd: %d boot images for %d shards", len(cfg.Boot), cfg.Shards)
	}
	for i := 0; i < cfg.Shards; i++ {
		disk, tail, err := openShardFiles(cfg.Dir, i)
		if err != nil {
			s.closeFiles()
			return nil, err
		}
		s.disks, s.tails = append(s.disks, disk), append(s.tails, tail)
		shCfg := cfg.Shard
		shCfg.Core.Disk, shCfg.Core.Tail = disk, tail
		var img []byte
		var info RecoverInfo
		if cfg.Boot != nil {
			img, info = cfg.Boot[i].Img, RecoverInfo{Seq: cfg.Boot[i].Seq}
			// The grant flows through the core so the post-recovery
			// checkpoint persists it: a later restart of this daemon (no
			// Boot) then elects past it instead of falling back to the
			// checkpoint generation and fencing itself out.
			shCfg.Core.Epoch = cfg.Boot[i].Epoch
		} else {
			img, info, err = RecoverImage(shCfg.Core, tail)
			if err != nil {
				s.closeFiles()
				return nil, fmt.Errorf("lvmd: shard %d recovery: %w", i, err)
			}
		}
		sh, err := NewShard(i, shCfg, img, info.Seq)
		if err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("lvmd: shard %d: %w", i, err)
		}
		s.shards, s.info = append(s.shards, sh), append(s.info, info)
	}
	if err := s.scanOwnership(); err != nil {
		s.Drain()
		return nil, err
	}
	return s, nil
}

// scanOwnership rebuilds the migration route table from the recovered
// directories and resolves a crash mid-migration: an untombstoned owner
// always serves; a receiving copy serves — and is activated — only when
// no owner claims the segment (the source's tombstone committed, which
// by the cutover's fence order proves this copy is complete).
func (s *Server) scanOwnership() error {
	owners := make(map[uint64]int)
	recv := make(map[uint64]int)
	for i, sh := range s.shards {
		var tenants []uint64
		var receiving map[uint64]bool
		ran, err := sh.Exec(func(c *ShardCore) bool {
			tenants = c.Tenants()
			receiving = make(map[uint64]bool, len(tenants))
			for _, id := range tenants {
				receiving[id] = c.Receiving(id)
			}
			return false
		}, s.cfg.StallTimeout)
		if err != nil || !ran {
			return fmt.Errorf("lvmd: shard %d ownership scan failed", i)
		}
		for _, id := range tenants {
			if receiving[id] {
				recv[id] = i
			} else {
				owners[id] = i
			}
		}
	}
	for id, i := range owners {
		if s.homeShard(id) != i {
			s.reroute[id] = i
		}
	}
	for id, i := range recv {
		if _, owned := owners[id]; owned {
			continue // migration aborted: the copy is inert, the owner serves
		}
		sh := s.shards[i]
		var aerr error
		ran, err := sh.Exec(func(c *ShardCore) bool {
			aerr = c.Activate(id)
			return aerr == nil
		}, s.cfg.StallTimeout)
		if err != nil || !ran {
			return fmt.Errorf("lvmd: shard %d activation failed", i)
		}
		if aerr != nil {
			return fmt.Errorf("lvmd: segment %d activation: %w", id, aerr)
		}
		if s.homeShard(id) != i {
			s.reroute[id] = i
		}
	}
	return nil
}

func openShardFiles(dir string, i int) (*FileDisk, *TailFile, error) {
	disk, err := OpenFileDisk(filepath.Join(dir, fmt.Sprintf("shard-%d.ckpt", i)))
	if err != nil {
		return nil, nil, err
	}
	tail, err := OpenTail(filepath.Join(dir, fmt.Sprintf("shard-%d.tail", i)))
	if err != nil {
		disk.Close()
		return nil, nil, err
	}
	return disk, tail, nil
}

func (s *Server) closeFiles() {
	for _, d := range s.disks {
		d.Close()
	}
	for _, t := range s.tails {
		t.Close()
	}
}

// RecoverInfos reports what each shard's boot recovery did.
func (s *Server) RecoverInfos() []RecoverInfo { return s.info }

// Shards reports the shard count.
func (s *Server) Shards() int { return len(s.shards) }

// homeShard is a segment ID's hash home (splitmix finalizer — the same
// hash everywhere, or restarts would scatter tenants).
func (s *Server) homeShard(segID uint64) int {
	h := segID
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return int(h % uint64(len(s.shards)))
}

// route resolves a segment ID to its current owner: the migration
// override if one exists, the hash home otherwise.
func (s *Server) route(segID uint64) *Shard {
	s.routeMu.RLock()
	i, ok := s.reroute[segID]
	s.routeMu.RUnlock()
	if ok {
		return s.shards[i]
	}
	return s.shards[s.homeShard(segID)]
}

// Owner reports the shard index currently serving segID (hash home or
// migration override) — the `from` a Migrate caller plans around.
func (s *Server) Owner(segID uint64) int { return s.route(segID).ID }

// Serve accepts client connections until the listener closes (Drain).
func (s *Server) Serve(ln net.Listener) {
	s.ln = ln
	s.acceptWG.Add(1)
	go func() {
		defer s.acceptWG.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed: drain
			}
			if s.draining.Load() {
				conn.Close()
				continue
			}
			s.accepted.Add(1)
			s.track(conn, true)
			s.sessWG.Add(1)
			go s.session(conn)
		}
	}()
}

func (s *Server) track(conn net.Conn, add bool) {
	s.mu.Lock()
	if add {
		s.sessions[conn] = struct{}{}
		s.sessionsNow.Add(1)
	} else if _, ok := s.sessions[conn]; ok {
		delete(s.sessions, conn)
		s.sessionsNow.Add(-1)
	}
	s.mu.Unlock()
}

// untrack removes a connection without closing it (subscriber handoff).
func (s *Server) untrack(conn net.Conn) { s.track(conn, false) }

// session owns one client connection: a reader loop decoding frames and
// a writer goroutine draining the response queue. Responses are enqueued
// by shard goroutines via the reply closure; a queue that stays full
// past the policy's patience kills the connection — backpressure reaches
// the client as disconnection, never as an unbounded buffer.
func (s *Server) session(conn net.Conn) {
	defer s.sessWG.Done()
	defer s.track(conn, false)

	// The first frame decides the connection's role, and is read
	// unbuffered: a subscriber handoff must leave the shipper's bytes
	// (the logship hello that follows) unread on the socket. Every read
	// sits behind the idle deadline so a half-open or silent client is
	// reaped instead of pinning this goroutine forever.
	_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)) //errgate:ok — a conn that can't set deadlines fails the read instead
	typ, payload, err := logship.ReadFrame(conn)
	if err != nil {
		s.noteIdle(err)
		conn.Close()
		return
	}
	if typ == logship.FrameSubscribe {
		shardID, err := decodeSubscribe(payload)
		if err != nil || shardID >= uint32(len(s.shards)) || s.draining.Load() {
			s.badFrames.Add(1)
			conn.Close()
			return
		}
		// The shipper paces its own handshake deadline; the session's
		// idle policy must not leak onto the adopted conn.
		_ = conn.SetReadDeadline(time.Time{}) //errgate:ok — the shipper re-arms its own deadline
		s.subscribers.Add(1)
		s.untrack(conn) // the shipper owns (and will close) it now
		s.shards[shardID].Adopt(conn)
		return
	}

	// sessDone, not a channel close, ends the writer and neutralizes the
	// reply closures: shard goroutines may still hold replies for ops
	// this session queued, and a send racing a close would panic. After
	// sessDone every send returns immediately — a shard can never block
	// on a dead session beyond its policy patience.
	out := make(chan []byte, s.cfg.WriteQueue)
	sessDone := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for {
			select {
			case frame := <-out:
				if _, err := conn.Write(frame); err != nil {
					conn.Close() // unblocks the reader loop too
					return
				}
			case <-sessDone:
				return
			}
		}
	}()
	send := func(typ byte, payload []byte) {
		frame := logship.EncodeFrame(typ, payload)
		if s.cfg.Policy == logship.PolicyDrop {
			select {
			case out <- frame:
			case <-sessDone:
			default:
				s.killedDrop.Add(1)
				conn.Close()
			}
			return
		}
		t := time.NewTimer(s.cfg.StallTimeout)
		defer t.Stop()
		select {
		case out <- frame:
		case <-sessDone:
		case <-writerDone:
		case <-t.C:
			s.killedStall.Add(1)
			conn.Close()
		}
	}

	pending := make(map[uint64][]Write)
	r := bufio.NewReader(conn)
	for {
		if err := s.handleFrame(conn, typ, payload, pending, send); err != nil {
			break
		}
		_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)) //errgate:ok — a conn that can't set deadlines fails the read instead
		typ, payload, err = logship.ReadFrame(r)
		if err != nil {
			s.noteIdle(err)
			break
		}
	}
	conn.Close()
	close(sessDone)
	<-writerDone
}

// noteIdle counts a session read that died on the idle deadline.
func (s *Server) noteIdle(err error) {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		s.idleExpired.Add(1)
	}
}

// stall returns the submit patience for the configured policy.
func (s *Server) stall() time.Duration {
	if s.cfg.Policy == logship.PolicyDrop {
		return 0
	}
	return s.cfg.StallTimeout
}

func (s *Server) handleFrame(conn net.Conn, typ byte, payload []byte,
	pending map[uint64][]Write, send func(byte, []byte)) error {
	draining := s.draining.Load()
	switch typ {
	case logship.FrameOpen:
		segID, err := decodeOpen(payload)
		if err != nil {
			s.badFrames.Add(1)
			return err
		}
		if draining {
			s.refused.Add(1)
			send(logship.FrameOpenResp, encodeOpenResp(openResp{segID: segID, status: StatusDraining}))
			return nil
		}
		sh := s.route(segID)
		if !sh.submit(shardOp{kind: opOpen, segID: segID, t0: time.Now(), reply: send}, s.stall()) {
			return s.overloaded(conn)
		}
	case logship.FrameStore:
		st, err := decodeStore(payload)
		if err != nil {
			s.badFrames.Add(1)
			return err
		}
		buf := pending[st.segID]
		if len(buf) >= s.cfg.MaxTxnStores {
			s.badFrames.Add(1)
			return fmt.Errorf("lvmd: transaction exceeds %d stores", s.cfg.MaxTxnStores)
		}
		pending[st.segID] = append(buf, Write{Off: st.off, Val: st.val})
	case logship.FrameCommit:
		cr, err := decodeCommit(payload)
		if err != nil {
			s.badFrames.Add(1)
			return err
		}
		writes := pending[cr.segID]
		delete(pending, cr.segID)
		if draining {
			s.refused.Add(1)
			send(logship.FrameCommitResp, encodeCommitResp(commitResp{
				segID: cr.segID, clientSeq: cr.clientSeq, status: StatusDraining}))
			return nil
		}
		sh := s.route(cr.segID)
		if !sh.submit(shardOp{kind: opCommit, segID: cr.segID, writes: writes,
			clientSeq: cr.clientSeq, t0: time.Now(), reply: send}, s.stall()) {
			return s.overloaded(conn)
		}
	case logship.FrameRead:
		rr, err := decodeRead(payload)
		if err != nil {
			s.badFrames.Add(1)
			return err
		}
		sh := s.route(rr.segID)
		if !sh.submit(shardOp{kind: opRead, segID: rr.segID, off: rr.off, n: rr.n,
			t0: time.Now(), reply: send}, s.stall()) {
			return s.overloaded(conn)
		}
	case logship.FrameStats:
		b, err := json.Marshal(s.Stats())
		if err != nil {
			return err
		}
		send(logship.FrameStatsResp, b)
	default:
		s.badFrames.Add(1)
		return fmt.Errorf("lvmd: unexpected frame type %d", typ)
	}
	return nil
}

// overloaded records a submit that exhausted the policy's patience and
// kills the connection: under PolicyStall this only happens after a full
// StallTimeout of a saturated shard queue, under PolicyDrop immediately.
func (s *Server) overloaded(conn net.Conn) error {
	if s.cfg.Policy == logship.PolicyDrop {
		s.killedDrop.Add(1)
	} else {
		s.killedStall.Add(1)
	}
	conn.Close()
	return fmt.Errorf("lvmd: shard queue full")
}

// Stats snapshots the host-side counters.
func (s *Server) Stats() HostStats {
	return HostStats{
		Accepted:     s.accepted.Load(),
		Sessions:     s.sessionsNow.Load(),
		Subscribers:  s.subscribers.Load(),
		KilledStall:  s.killedStall.Load(),
		KilledDrop:   s.killedDrop.Load(),
		BadFrames:    s.badFrames.Load(),
		RefusedDrain: s.refused.Load(),
		Migrations:   s.migrations.Load(),
		IdleExpired:  s.idleExpired.Load(),
	}
}

// ShardReport is one shard's state at drain.
type ShardReport struct {
	Digest   string            `json:"digest"`
	Seq      uint32            `json:"seq"`
	Epoch    uint32            `json:"epoch"`
	Segments int               `json:"segments"`
	Demoted  bool              `json:"demoted,omitempty"`
	Error    string            `json:"error,omitempty"`
	Metrics  *metrics.Snapshot `json:"metrics,omitempty"`
}

// DrainReport is the manifest a clean shutdown leaves behind.
type DrainReport struct {
	Drained bool          `json:"drained"`
	Shards  []ShardReport `json:"shards"`
	Host    HostStats     `json:"host"`
}

// Drain gracefully shuts the daemon down: stop accepting, tear down
// client sessions, then drain every shard — each fences its queue
// remainder, closes its shipper, and commits a final checkpoint behind
// the marker protocol. The report carries per-shard digests so a restart
// can prove byte-identical recovery.
func (s *Server) Drain() DrainReport {
	s.draining.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	s.acceptWG.Wait()
	s.mu.Lock()
	for conn := range s.sessions {
		conn.Close()
	}
	s.mu.Unlock()
	s.sessWG.Wait()

	rep := DrainReport{Drained: true}
	for _, sh := range s.shards {
		sh.Close()
		d := sh.Digest()
		sr := ShardReport{
			Digest:   hex.EncodeToString(d[:]),
			Seq:      sh.Core.Seq(),
			Epoch:    sh.Core.Mgr.Epoch(),
			Segments: sh.Core.Segments(),
			Demoted:  sh.Demoted(),
		}
		// The shard goroutine is gone: its simulation metrics are safe to
		// read now.
		if snap := sh.Core.Sys.MetricsSnapshot(); snap != nil {
			sr.Metrics = snap
		}
		if err := sh.Err(); err != nil {
			sr.Error = err.Error()
			rep.Drained = false
		}
		rep.Shards = append(rep.Shards, sr)
	}
	rep.Host = s.Stats()
	s.closeFiles()
	return rep
}
