package lvmd

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"lvm/internal/lease"
	"lvm/internal/logship"
	"lvm/internal/metrics"
)

// opKind discriminates shard queue entries.
type opKind byte

const (
	opOpen opKind = iota
	opCommit
	opRead
	// opFunc runs an arbitrary function on the shard goroutine behind the
	// batch fence — the migration driver's doorway into a live core.
	opFunc
)

// shardOp is one client request routed to a shard's single-writer
// goroutine. reply delivers the response frame; it must not block
// indefinitely (sessions enqueue with their own backpressure policy).
type shardOp struct {
	kind      opKind
	segID     uint64
	writes    []Write
	clientSeq uint64
	off, n    uint32
	t0        time.Time
	reply     func(typ byte, payload []byte)
	// fn is the opFunc body; it reports whether it mutated the core (so
	// the batch fence runs before its reply).
	fn func(c *ShardCore) bool
}

// ShardConfig tunes one serving shard.
type ShardConfig struct {
	Core CoreConfig
	// QueueDepth bounds the op queue (default 1024); MaxBatch bounds how
	// many ops one durability fence covers (default 256).
	QueueDepth int
	MaxBatch   int
	// Ship tunes the shard's replication shipper.
	Ship logship.Config
	// SyncReplicas makes the batch fence wait (up to SyncWait, default 2s)
	// for every subscriber to ack the sealed sequence before the batch is
	// acknowledged — acked therefore implies replicated, so a failover at
	// the acked watermark loses nothing. A subscriber that cannot keep up
	// is dropped rather than allowed to stall commits forever.
	SyncReplicas bool
	SyncWait     time.Duration
	// LeaseTTL enables the serving lease (internal/lease): the shard
	// broadcasts heartbeat frames renewing a lease of this duration down
	// its subscription stream, and a shard that cannot prove the lease
	// in time demotes itself: writes are refused with StatusDemoted from
	// then on (reads still serve; the data is consistent, just no longer
	// authoritative for new writes), because a standby observing the
	// missed renewal may already have promoted. Proof has two halves:
	// the renewal loop itself must run on schedule (catches pauses and
	// wedges), and once a standby has subscribed, some observer must
	// keep acknowledging beats (catches partitions — a cut-off primary
	// stops seeing acks and demotes within one TTL even though its own
	// loop is healthy). 0 disables (the SIGUSR1-era behavior).
	LeaseTTL time.Duration
	// LeaseClock injects the lease time source (default lease.Wall) so
	// tests drive renewal and expiry deterministically.
	LeaseClock lease.Clock
}

func (c *ShardConfig) fill() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.SyncWait <= 0 {
		c.SyncWait = 2 * time.Second
	}
}

// Shard is one serving shard: a ShardCore owned by the run goroutine,
// fed through a bounded op queue, with a replication shipper whose
// subscriber connections arrive via Adopt (the shard's own listener is a
// never-dialed placeholder — the daemon multiplexes subscribers over the
// client port).
type Shard struct {
	ID      int
	Core    *ShardCore
	Shipper *logship.Shipper

	cfg    ShardConfig
	ops    chan shardOp
	done   chan struct{}
	shipLn net.Listener
	err    error // set by the run goroutine on a durability failure
	digest [32]byte

	// holder is the serving-lease state machine (nil when LeaseTTL is
	// off), touched only by the run goroutine; demoted is the lease-loss
	// flag, atomic so sessions and Drain can read it.
	holder  *lease.Holder
	demoted atomic.Bool
}

// NewShard boots a shard around an optionally-recovered core (img/seq
// from RecoverImage, nil/0 for a fresh shard) and starts its goroutine.
func NewShard(id int, cfg ShardConfig, img []byte, seq uint32) (*Shard, error) {
	cfg.fill()
	c, err := NewCore(cfg.Core, img, seq)
	if err != nil {
		return nil, err
	}
	s := &Shard{
		ID:   id,
		Core: c,
		cfg:  cfg,
		ops:  make(chan shardOp, cfg.QueueDepth),
		done: make(chan struct{}),
	}
	// A recovered arena (slot directory + tenant data) precedes anything
	// in the truncated hardware log, so the shipper's logical cursor must
	// start past it: a fresh subscriber is then caught up by snapshot
	// instead of a log replay that never contained the pre-existing
	// state. The serving epoch is the core's election (NewCore): a
	// promotion grant exactly, otherwise strictly past both the resumed
	// checkpoint generation and the epoch the last committed checkpoint
	// persisted — so each restart renumbers the stream, subscribers of an
	// earlier boot full-resync rather than resume against a renumbered
	// log, and a once-promoted shard is never fenced out by replicas
	// floored at its granted epoch.
	if cfg.Ship.StartSeq == 0 && seq != 0 {
		cfg.Ship.StartSeq = uint64(seq)
	}
	if cfg.Ship.Epoch == 0 {
		cfg.Ship.Epoch = c.Mgr.Epoch()
	}
	ln, _ := logship.NewMemTransport()
	s.shipLn = ln
	s.Shipper = logship.NewShipper(c.Sys, c.Arena, c.LogSeg, ln, cfg.Ship)
	c.SetShipper(s.Shipper)
	c.EnableTuning()
	if cfg.LeaseTTL > 0 {
		clk := cfg.LeaseClock
		if clk == nil {
			clk = lease.Wall{}
		}
		s.holder = lease.NewHolder(clk, lease.Ticks(cfg.LeaseTTL), s.Shipper.Epoch())
	}
	s.cfg = cfg // keep the filled Ship/lease values the goroutine reads
	go s.run()
	return s, nil
}

// submit enqueues an op, waiting up to stall for queue space. False
// means the queue stayed full (or the shard is gone) — the session
// applies its backpressure policy (PolicyStall kills the connection
// after the stall; PolicyDrop passes stall=0 and kills immediately).
func (s *Shard) submit(op shardOp, stall time.Duration) bool {
	if stall <= 0 {
		select {
		case s.ops <- op:
			return true
		case <-s.done:
			return false
		default:
			return false
		}
	}
	t := time.NewTimer(stall)
	defer t.Stop()
	select {
	case s.ops <- op:
		return true
	case <-s.done:
		return false
	case <-t.C:
		return false
	}
}

// run is the shard's single-writer loop: collect a batch of ops, apply
// them to the simulation, fence durability once for the whole batch,
// then acknowledge. Group commit across clients falls out of batching —
// one tail fsync covers every commit in the batch.
func (s *Shard) run() {
	defer close(s.done)
	// The heartbeat ticker renews the serving lease roughly four times
	// per TTL — enough slack that only a genuine stall (not scheduling
	// noise) misses the deadline. Renewal is a select case, not a
	// goroutine: the lease belongs to the single-writer loop, so a loop
	// wedged behind a stuck fence stops renewing, which is exactly the
	// signal the standbys promote on.
	var beatC <-chan time.Time
	if s.holder != nil {
		iv := s.cfg.LeaseTTL / 4
		if iv <= 0 {
			iv = time.Millisecond
		}
		tick := time.NewTicker(iv)
		defer tick.Stop()
		beatC = tick.C
	}
	for {
		var op shardOp
		var ok bool
		select {
		case op, ok = <-s.ops:
		case <-beatC:
			s.leaseTick()
			continue
		}
		if !ok {
			s.drainExit()
			return
		}
		batch := append(make([]shardOp, 0, s.cfg.MaxBatch), op)
		closed := false
	fill:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case op, ok := <-s.ops:
				if !ok {
					closed = true
					break fill
				}
				batch = append(batch, op)
			default:
				break fill
			}
		}
		s.process(batch)
		if closed {
			s.drainExit()
			return
		}
	}
}

// staged is a response held back until the batch's durability fence.
type staged struct {
	typ     byte
	payload []byte
	t0      time.Time
	commit  bool
	// mut marks a successful mutation ack (open or commit). If the lease
	// is found lost after the fence, these replies are suppressed — the
	// client sees an in-doubt request, never an ack from a fenced zombie.
	mut   bool
	reply func(byte, []byte)
}

func (s *Shard) process(batch []shardOp) {
	// Check the lease before staging anything: a loop resumed after a
	// pause longer than the TTL has both the op queue and the beat ticker
	// ready, and Go's select picks uniformly — without this check the
	// batch could be processed and acked before the ticker case ever ran,
	// after a standby already promoted.
	s.leaseTick()
	c := s.Core
	// out[i] answers batch[i]; reads are filled in after the fence.
	out := make([]staged, 0, len(batch))
	mutated := false
	for _, op := range batch {
		if s.err != nil {
			out = append(out, s.refuse(op, StatusDraining))
			continue
		}
		if s.demoted.Load() && (op.kind == opOpen || op.kind == opCommit) {
			// Lease lost: a standby may already be the writable primary.
			// Accepting a write here would fork the timeline the moment
			// it promoted; refusing is what "exactly one writable
			// primary" costs. Reads stay up — the data is consistent to
			// the last acked commit.
			out = append(out, s.refuse(op, StatusDemoted))
			continue
		}
		switch op.kind {
		case opOpen:
			slot, _, err := c.Open(op.segID)
			resp := openResp{
				segID:     op.segID,
				slotSize:  c.SlotSize(),
				arenaSize: c.Arena.Size(),
				shard:     byte(s.ID),
			}
			switch {
			case err == ErrNoSlot:
				resp.status = StatusNoSlot
			case err == ErrMoved:
				resp.status = StatusMoved
			case err != nil:
				resp.status = StatusBad
			default:
				resp.slotOff = c.SlotOff(slot)
				mutated = true
			}
			out = append(out, staged{typ: logship.FrameOpenResp, payload: encodeOpenResp(resp),
				t0: op.t0, mut: resp.status == StatusOK, reply: op.reply})
		case opCommit:
			seq, err := c.Commit(op.segID, op.writes)
			resp := commitResp{segID: op.segID, clientSeq: op.clientSeq, shardSeq: seq}
			switch {
			case err == ErrMoved:
				resp.status = StatusMoved
			case err != nil:
				if _, known := c.Lookup(op.segID); !known {
					resp.status = StatusUnknown
				} else {
					resp.status = StatusBad
				}
			default:
				mutated = true
			}
			out = append(out, staged{typ: logship.FrameCommitResp, payload: encodeCommitResp(resp),
				t0: op.t0, commit: resp.status == StatusOK, mut: resp.status == StatusOK,
				reply: op.reply})
		case opRead:
			out = append(out, staged{t0: op.t0, reply: op.reply})
		case opFunc:
			if op.fn(c) {
				mutated = true
			}
			out = append(out, staged{t0: op.t0, reply: op.reply})
		}
	}
	if mutated && s.err == nil {
		// The fence: nothing above is acknowledged until this returns.
		if err := c.SyncBatch(); err != nil {
			s.fail(err)
			return
		}
		// Shipping trouble does not gate client durability — the tail
		// fsync above already happened; consumers redial and resync.
		_ = s.Shipper.FlushAll() //errgate:ok — replication is advisory for client acks
		if s.cfg.SyncReplicas {
			sealed := s.Shipper.SealedSeq()
			if err := s.Shipper.WaitAcked(sealed, s.cfg.SyncWait); err != nil {
				// A replica that can't keep up loses its seat, not the
				// clients their throughput.
				s.Shipper.DropLaggards(sealed)
			}
		}
	}
	// Re-check the lease after the fence: a fence that stalled past the
	// TTL means a standby may have promoted while these mutations waited
	// for durability. Their acks are suppressed below — the writes exist
	// (durable here) but may not exist on the promoted timeline, so the
	// client must see them as in-doubt, not acknowledged.
	s.leaseTick()
	leaseLost := s.demoted.Load()
	// Reads run after the fence: a client that commits then reads (even
	// on another connection) sees its acked writes.
	for bi, op := range batch {
		if op.kind != opRead || out[bi].typ != 0 {
			continue
		}
		data, err := c.Read(op.segID, op.off, op.n)
		resp := readResp{segID: op.segID, off: op.off, data: data}
		switch {
		case err == ErrMoved:
			resp.status = StatusMoved
			resp.data = nil
		case err != nil:
			if _, known := c.Lookup(op.segID); !known {
				resp.status = StatusUnknown
			} else {
				resp.status = StatusBad
			}
			resp.data = nil
		}
		out[bi] = staged{typ: logship.FrameReadResp,
			payload: encodeReadResp(resp), t0: op.t0, reply: op.reply}
	}
	for _, r := range out {
		if r.reply == nil {
			continue
		}
		if leaseLost && r.mut {
			// opFunc replies are never suppressed (Exec would hang); they
			// carry no client-visible ack.
			continue
		}
		if r.commit {
			c.sh.Observe(metrics.HistLvmdCommitAck, uint64(time.Since(r.t0).Nanoseconds()))
		}
		r.reply(r.typ, r.payload)
	}
	// A refused compaction costs log headroom, not correctness; the next
	// batch retries. A full log that then loses records fails SyncBatch.
	_, _ = c.MaybeCompact() //errgate:ok — deferred to the SyncBatch loss check
}

// leaseTick renews the serving lease and broadcasts the heartbeat. A
// renewal past the TTL — or, once a standby has subscribed, a TTL
// without any beat acknowledged — means this shard cannot prove it is
// still the primary: it demotes itself permanently (until restart) and
// stops heartbeating, so even if its beats could still reach a standby
// they would not re-arm a superseded deadline. Evidence is gathered
// (and joiners admitted) BEFORE the renewal decision, which is what
// keeps the holder's evidence deadline at or before every monitor's
// expiry deadline.
func (s *Shard) leaseTick() {
	if s.holder == nil || s.demoted.Load() {
		return
	}
	engaged, acked := s.Shipper.LeaseEvidence()
	b, ok := s.holder.Renew(engaged, acked)
	if !ok {
		s.demoted.Store(true)
		return
	}
	// A heartbeat that fails to broadcast (a full consumer window) is
	// advisory for delivery — the next beat covers it — and safe for the
	// lease: an undelivered beat is never acked, so it earns no evidence.
	_ = s.Shipper.Heartbeat(b) //errgate:ok — renewal is best effort; the next beat covers it
}

// Demoted reports whether the shard lost its serving lease and now
// refuses writes.
func (s *Shard) Demoted() bool { return s.demoted.Load() }

// refuse stages an error response matching the op's expected frame type.
func (s *Shard) refuse(op shardOp, status byte) staged {
	switch op.kind {
	case opOpen:
		return staged{typ: logship.FrameOpenResp, t0: op.t0, reply: op.reply,
			payload: encodeOpenResp(openResp{segID: op.segID, status: status, shard: byte(s.ID)})}
	case opCommit:
		return staged{typ: logship.FrameCommitResp, t0: op.t0, reply: op.reply,
			payload: encodeCommitResp(commitResp{segID: op.segID, clientSeq: op.clientSeq, status: status})}
	case opFunc:
		return staged{t0: op.t0, reply: op.reply}
	default:
		return staged{typ: logship.FrameReadResp, t0: op.t0, reply: op.reply,
			payload: encodeReadResp(readResp{segID: op.segID, off: op.off, status: status})}
	}
}

// fail marks the shard broken: the durability fence failed, so none of
// the batch's staged acknowledgements may be sent — an ack after a
// failed fence would be a durability lie. The batch's clients see their
// requests die unanswered (their connections are torn down when the
// server notices the failure), which reads as an in-doubt outcome — the
// honest one.
func (s *Shard) fail(err error) {
	s.err = fmt.Errorf("lvmd: shard %d failed: %w", s.ID, err)
}

// drainExit runs after the op channel closes: fence whatever is left,
// stop the shipper, and commit a final checkpoint so a clean restart
// recovers from the image alone.
func (s *Shard) drainExit() {
	c := s.Core
	if s.err == nil {
		if err := c.SyncBatch(); err != nil {
			s.err = err
		}
	}
	// Hand the last records to any live subscribers before disconnecting
	// them — best effort with a bounded wait; a consumer that misses it
	// resyncs from its acked sequence on reconnect.
	_ = s.Shipper.ReleaseShip(2 * time.Second) //errgate:ok — replication handover is advisory at drain
	s.Shipper.Close()
	if s.err == nil {
		if err := c.Checkpoint(); err != nil {
			s.err = err
		}
	}
	s.digest = c.Digest()
}

// Close drains the shard: no further submits may race this.
func (s *Shard) Close() {
	close(s.ops)
	<-s.done
	s.shipLn.Close()
}

// Err reports a shard durability failure (nil while healthy). Safe only
// after done (Close) or from the run goroutine.
func (s *Shard) Err() error { return s.err }

// Digest is the shard's final state hash, valid after Close.
func (s *Shard) Digest() [32]byte { return s.digest }

// Adopt hands a subscriber connection to the shard's shipper.
func (s *Shard) Adopt(conn net.Conn) { s.Shipper.Adopt(conn) }

// Exec runs fn on the shard goroutine and returns once it (and, if it
// mutated the core, the batch durability fence behind it) completed.
// ok=false means the shard refused it (failed or draining). This is the
// migration driver's phase primitive: each phase is one Exec, so phase
// ordering is fence ordering.
func (s *Shard) Exec(fn func(c *ShardCore) bool, stall time.Duration) (bool, error) {
	done := make(chan struct{})
	ran := false
	op := shardOp{
		kind:  opFunc,
		t0:    time.Now(),
		fn:    func(c *ShardCore) bool { ran = true; return fn(c) },
		reply: func(byte, []byte) { close(done) },
	}
	if !s.submit(op, stall) {
		return false, fmt.Errorf("lvmd: shard %d queue full", s.ID)
	}
	<-done
	return ran, nil
}
