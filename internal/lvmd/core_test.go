package lvmd

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"path/filepath"
	"testing"
)

func testCfg(t *testing.T, dir string) (CoreConfig, *TailFile) {
	t.Helper()
	disk, err := OpenFileDisk(filepath.Join(dir, "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { disk.Close() })
	tail, err := OpenTail(filepath.Join(dir, "tail"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tail.Close() })
	return CoreConfig{
		Slots:    8,
		SlotSize: 256,
		LogPages: 16,
		Disk:     disk,
		Tail:     tail,
	}, tail
}

// reopen recovers a shard from its durable files, as the daemon does on
// restart.
func reopen(t *testing.T, dir string) (*ShardCore, RecoverInfo) {
	t.Helper()
	cfg, tail := testCfg(t, dir)
	img, info, err := RecoverImage(cfg, tail)
	if err != nil {
		t.Fatalf("RecoverImage: %v", err)
	}
	c, err := NewCore(cfg, img, info.Seq)
	if err != nil {
		t.Fatalf("NewCore(recovered): %v", err)
	}
	return c, info
}

func TestCoreCommitRestartRecover(t *testing.T) {
	dir := t.TempDir()
	cfg, _ := testCfg(t, dir)
	c, err := NewCore(cfg, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.EnableTuning()

	for seg := uint64(1); seg <= 4; seg++ {
		if _, existed, err := c.Open(seg); err != nil || existed {
			t.Fatalf("Open(%d) = existed=%v err=%v", seg, existed, err)
		}
	}
	if _, existed, err := c.Open(2); err != nil || !existed {
		t.Fatalf("reopen of segment 2: existed=%v err=%v", existed, err)
	}
	for i := 0; i < 10; i++ {
		seg := uint64(i%4 + 1)
		if _, err := c.Commit(seg, []Write{
			{Off: uint32(4 * i), Val: uint32(0x1000 + i)},
			{Off: 128, Val: uint32(i)},
		}); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	if err := c.SyncBatch(); err != nil {
		t.Fatalf("SyncBatch: %v", err)
	}
	want := c.Digest()
	wantSeq := c.Seq()

	// Simulated crash: the ShardCore is dropped, only the files survive.
	c2, info := reopen(t, dir)
	if got := c2.Digest(); got != want {
		t.Fatalf("digest mismatch after restart: %x vs %x", got, want)
	}
	if c2.Seq() != wantSeq {
		t.Fatalf("seq after restart = %d, want %d", c2.Seq(), wantSeq)
	}
	if c2.Segments() != 4 {
		t.Fatalf("segments after restart = %d, want 4", c2.Segments())
	}
	if info.TailRecords == 0 || info.ReissuedRecords != info.TailRecords {
		t.Fatalf("tail re-issue: %+v", info)
	}
	// The slot map must line up: committing to an old segment works.
	if _, err := c2.Commit(3, []Write{{Off: 0, Val: 7}}); err != nil {
		t.Fatalf("Commit after restart: %v", err)
	}

	b, err := c2.Read(1, 128, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := get32(b); got != 8 { // last i with seg 1 was i=8
		t.Fatalf("read back %d, want 8", got)
	}
}

func TestCoreUncommittedTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	cfg, tail := testCfg(t, dir)
	c, err := NewCore(cfg, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Open(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit(1, []Write{{Off: 0, Val: 0xAA}}); err != nil {
		t.Fatal(err)
	}
	if err := c.SyncBatch(); err != nil {
		t.Fatal(err)
	}
	committed := c.Digest()

	// An in-flight transaction: begin marker and store mirrored, commit
	// marker missing — the crash hit between the ack fence and the next.
	slot, _ := c.Lookup(1)
	c.seq++
	c.P.Store32(c.base, c.seq)
	c.P.Store32(c.base+2048, 0) // arbitrary committed-area store
	_ = slot
	if err := c.SyncBatch(); err != nil {
		t.Fatal(err)
	}
	_ = tail

	c2, _ := reopen(t, dir)
	if got := c2.Digest(); got != committed {
		t.Fatalf("uncommitted tail leaked into recovered image")
	}
}

func TestCoreCompactionKeepsRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg, _ := testCfg(t, dir)
	c, err := NewCore(cfg, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.EnableTuning()
	if _, _, err := c.Open(1); err != nil {
		t.Fatal(err)
	}
	compacted := 0
	for round := 0; round < 200; round++ {
		for j := 0; j < 8; j++ {
			if _, err := c.Commit(1, []Write{{Off: uint32(4 * j), Val: uint32(round)}}); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.SyncBatch(); err != nil {
			t.Fatal(err)
		}
		did, err := c.MaybeCompact()
		if err != nil {
			t.Fatalf("MaybeCompact: %v", err)
		}
		if did {
			compacted++
		}
	}
	if compacted == 0 {
		t.Fatalf("no compaction in 200 rounds with a %d-page log", cfg.LogPages)
	}
	want := c.Digest()
	c2, info := reopen(t, dir)
	if got := c2.Digest(); got != want {
		t.Fatalf("digest mismatch after compacted restart")
	}
	if !info.FromCheckpoint {
		t.Fatalf("recovery ignored the checkpoint: %+v", info)
	}
}

// TestRecoverImagePure checks the -check determinism probe: recovering
// twice from the same files yields identical images and leaves the files
// unchanged.
func TestRecoverImagePure(t *testing.T) {
	dir := t.TempDir()
	cfg, _ := testCfg(t, dir)
	c, err := NewCore(cfg, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.EnableTuning()
	if _, _, err := c.Open(9); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := c.Commit(9, []Write{{Off: 12, Val: uint32(i)}}); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			if err := c.SyncBatch(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.SyncBatch(); err != nil {
		t.Fatal(err)
	}

	cfg2, tail2 := testCfg(t, dir)
	img1, info1, err := RecoverImage(cfg2, tail2)
	if err != nil {
		t.Fatal(err)
	}
	img2, info2, err := RecoverImage(cfg2, tail2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img1, img2) {
		t.Fatal("RecoverImage is not deterministic")
	}
	if info1.Seq != info2.Seq || info1.TailRecords != info2.TailRecords {
		t.Fatalf("RecoverImage info drifted: %+v vs %+v", info1, info2)
	}
}

// TestCoreIdleGenerationKeepsSeq replays the soak lifecycle that exposed
// a stale-marker bug: generation 1 drains cleanly, generation 2 commits
// and dies without draining (its state lives only in the tail mirror),
// generation 3 recovers, serves nothing, and drains. Replay never writes
// protocol words into the recovered image, so without the marker stamp
// in RecoverImage generation 3's checkpoints would carry generation 1's
// marker word — and the final recovery, finding an empty tail and so no
// replayed LastSeq to compensate, would report generation 1's sequence.
func TestCoreIdleGenerationKeepsSeq(t *testing.T) {
	dir := t.TempDir()
	cfg, _ := testCfg(t, dir)
	c, err := NewCore(cfg, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Open(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := c.Commit(1, []Write{{Off: 0, Val: uint32(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SyncBatch(); err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint(); err != nil { // generation 1 drains
		t.Fatal(err)
	}

	c2, _ := reopen(t, dir) // generation 2: commits, then dies undrained
	for i := 0; i < 7; i++ {
		if _, err := c2.Commit(1, []Write{{Off: 4, Val: uint32(0x100 + i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c2.SyncBatch(); err != nil {
		t.Fatal(err)
	}
	wantSeq := c2.Seq()
	wantDigest := c2.Digest()

	c3, info3 := reopen(t, dir) // generation 3: recovers, serves nothing
	if info3.Seq != wantSeq || c3.Digest() != wantDigest {
		t.Fatalf("generation 3 recovered seq %d, want %d", info3.Seq, wantSeq)
	}
	if err := c3.Checkpoint(); err != nil { // generation 3 drains idle
		t.Fatal(err)
	}

	cfg4, tail4 := testCfg(t, dir)
	img, info4, err := RecoverImage(cfg4, tail4)
	if err != nil {
		t.Fatal(err)
	}
	if info4.Seq != wantSeq {
		t.Fatalf("post-idle recovery reports seq %d, want %d (stale marker)", info4.Seq, wantSeq)
	}
	if info4.TailRecords != 0 {
		t.Fatalf("idle generation left %d tail records", info4.TailRecords)
	}
	d := sha256.Sum256(img[MarkerLimit:])
	w := wantDigest
	if d != w {
		t.Fatal("post-idle recovery changed the image")
	}
}

func TestCoreSlotExhaustion(t *testing.T) {
	dir := t.TempDir()
	cfg, _ := testCfg(t, dir)
	c, err := NewCore(cfg, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for seg := uint64(1); seg <= uint64(cfg.Slots); seg++ {
		if _, _, err := c.Open(seg); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.Open(999); err != ErrNoSlot {
		t.Fatalf("Open past capacity = %v, want ErrNoSlot", err)
	}
	if _, err := c.Commit(999, nil); err == nil {
		t.Fatal("commit to unopened segment succeeded")
	}
	if _, err := c.Commit(1, []Write{{Off: cfg.SlotSize, Val: 1}}); err == nil {
		t.Fatal("out-of-range store accepted")
	}
	if _, err := c.Commit(1, []Write{{Off: 2, Val: 1}}); err == nil {
		t.Fatal("unaligned store accepted")
	}
	if _, err := c.Read(1, cfg.SlotSize-2, 4); err == nil {
		t.Fatal("out-of-range read accepted")
	}
}

func TestTailTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	cfg, tail := testCfg(t, dir)
	c, err := NewCore(cfg, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Open(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit(1, []Write{{Off: 0, Val: 42}}); err != nil {
		t.Fatal(err)
	}
	if err := c.SyncBatch(); err != nil {
		t.Fatal(err)
	}
	want := c.Digest()

	// Torn append: 7 garbage bytes past the last full record.
	if _, err := tail.f.WriteAt([]byte{1, 2, 3, 4, 5, 6, 7}, int64(tailHdrSize+tail.size)); err != nil {
		t.Fatal(err)
	}
	c2, _ := reopen(t, dir)
	if got := c2.Digest(); got != want {
		t.Fatal("torn tail bytes changed the recovered image")
	}
}

func BenchmarkCoreCommitSync(b *testing.B) {
	dir := b.TempDir()
	disk, err := OpenFileDisk(filepath.Join(dir, "ckpt"))
	if err != nil {
		b.Fatal(err)
	}
	defer disk.Close()
	tail, err := OpenTail(filepath.Join(dir, "tail"))
	if err != nil {
		b.Fatal(err)
	}
	defer tail.Close()
	c, err := NewCore(CoreConfig{Slots: 64, SlotSize: 4096, LogPages: 1024, Disk: disk, Tail: tail,
		AbsorbWindow: 8, GroupSize: 8, GroupDeadline: 1024}, nil, 0)
	if err != nil {
		b.Fatal(err)
	}
	c.EnableTuning()
	for seg := uint64(1); seg <= 64; seg++ {
		if _, _, err := c.Open(seg); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg := uint64(i%64 + 1)
		if _, err := c.Commit(seg, []Write{{Off: uint32(i % 1024 * 4), Val: uint32(i)}}); err != nil {
			b.Fatal(err)
		}
		if i%16 == 15 {
			if err := c.SyncBatch(); err != nil {
				b.Fatal(err)
			}
		}
		if i%256 == 255 {
			if _, err := c.MaybeCompact(); err != nil {
				b.Fatal(fmt.Errorf("compact: %w", err))
			}
		}
	}
}
