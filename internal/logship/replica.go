package logship

import (
	"errors"
	"fmt"
	"net"
	"time"

	"lvm/internal/core"
	"lvm/internal/dsm"
	"lvm/internal/logcursor"
	"lvm/internal/logrec"
	"lvm/internal/recovery"
)

// Replica is one log-shipping consumer: its own simulated System holding
// a replica segment that converges on the producer's shared segment as
// batches arrive. Records apply through the dsm.Consumer machinery and
// are validated with the crash-recovery rules; a torn or corrupt frame
// quarantines the session (nothing past the damage applies, the frame is
// never acked), and the next Connect resumes from the last acknowledged
// sequence — the shipper re-reads its log to catch the replica up, the
// replication analogue of recovery.Replay over a surviving log.
type Replica struct {
	sys  *core.System
	cons *dsm.Consumer
	dial DialFunc
	size uint32

	// Session state. Written only by the consume goroutine; reads from
	// other goroutines must wait for Done (Kill and Connect do).
	lastSeq uint64
	epoch   uint32
	err     error

	// Marker-protocol transaction tracking (TrackMarkers). Batches seal
	// at record-count boundaries, not transaction boundaries, so an acked
	// replica can hold the front half of a transaction; the undo ledger
	// records the pre-image of every word the open transaction touched so
	// Rollback can settle the replica at its last transaction boundary
	// before a promotion serves from it.
	markerLimit uint32
	undo        []undoWord
	inflight    bool
	// inflightUnknown: the session began from a snapshot image whose
	// marker word shows an open transaction — there is no pre-image to
	// undo with, so Rollback must refuse until a commit marker closes it.
	inflightUnknown bool

	// leaseObs, when set by TrackLease, receives every lease heartbeat
	// frame. Called from the consume goroutine; the observer (typically
	// a lease.Monitor) must be safe for that.
	leaseObs func(Beat)

	conn      net.Conn
	done      chan struct{}
	connected bool

	// Stats surface in the replica System's MetricsSnapshot as
	// logship.replica_* counters.
	Stats ReplicaStats
}

// NewReplica builds a replica for a shared segment of the given size.
// The replica owns a fresh single-CPU System; nothing is shared with the
// producer but the wire.
func NewReplica(dial DialFunc, size uint32) (*Replica, error) {
	frames := int(size/core.PageSize) + 32
	sys := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: frames})
	cons, err := dsm.NewConsumer(sys, sys.NewProcess(0, sys.NewAddressSpace()), size)
	if err != nil {
		return nil, err
	}
	r := &Replica{sys: sys, cons: cons, dial: dial, size: size, done: closedChan()}
	sys.Metrics().AddCollector(r.Stats.Collect)
	return r, nil
}

func closedChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// ErrFenced marks a session refused because the shipper's generation is
// behind the replica's: a zombie ex-primary trying to feed a replica
// that already follows a promoted timeline.
var ErrFenced = errors.New("logship: fenced: shipper epoch is stale")

// undoWord is one pre-image entry of the open transaction's undo ledger.
type undoWord struct {
	off uint32
	val uint32
}

// TrackMarkers enables marker-protocol transaction tracking: the word at
// offset 0 of a segment whose writers follow the recovery marker
// protocol carries begin/commit markers, and the replica keeps the
// pre-image of every word the open transaction wrote so Rollback can
// undo a half-replicated tail. Call while disconnected, before Connect.
func (r *Replica) TrackMarkers(markerLimit uint32) { r.markerLimit = markerLimit }

// TrackLease routes serving-lease heartbeats (internal/lease) to obs —
// typically a lease.Monitor's Observe. obs runs on the consume
// goroutine. Call while disconnected, before Connect.
func (r *Replica) TrackLease(obs func(Beat)) { r.leaseObs = obs }

// System exposes the replica's simulated machine (for metrics snapshots).
func (r *Replica) System() *core.System { return r.sys }

// Consumer exposes the replica state for verification (dsm.Verify).
func (r *Replica) Consumer() *dsm.Consumer { return r.cons }

// LastSeq reports the last acknowledged sequence. Call only while
// disconnected (after Kill or a session end).
func (r *Replica) LastSeq() uint64 { return r.lastSeq }

// Err reports how the last session ended (nil for a clean Kill). Call
// only while disconnected.
func (r *Replica) Err() error { return r.err }

// Connect dials the shipper, performs the handshake, and starts a
// consume goroutine. A second Connect after a session ended resumes from
// the last acknowledged sequence (counted as a reconnect); if the
// shipper's log generation changed, the welcome forces a full resync
// from sequence zero, which converges because records replay in order.
func (r *Replica) Connect() error {
	<-r.done // join any previous session
	c, err := r.dial()
	if err != nil {
		return err
	}
	deadline := time.Now().Add(5 * time.Second)
	_ = c.SetDeadline(deadline)
	var flags byte
	if r.leaseObs != nil {
		// Only lease observers advertise themselves: their beat-acks are
		// the delivery evidence the holder's renewal feeds on, and a
		// transient subscriber (e.g. a segment migration) must not engage
		// the holder or sustain its evidence.
		flags |= helloObserver
	}
	if _, err := c.Write(encodeFrame(typeHello, encodeHello(hello{
		lastSeq: r.lastSeq,
		epoch:   r.epoch,
		segSize: r.size,
		flags:   flags,
	}))); err != nil {
		c.Close()
		return err
	}
	typ, payload, err := readFrame(c)
	if err != nil {
		c.Close()
		return err
	}
	if typ != typeWelcome {
		c.Close()
		return fmt.Errorf("logship: handshake got frame type %d", typ)
	}
	w, err := decodeWelcome(payload)
	if err != nil {
		c.Close()
		return err
	}
	if w.segSize != r.size {
		c.Close()
		return fmt.Errorf("logship: shipper segment is %d bytes, replica is %d", w.segSize, r.size)
	}
	if w.epoch < r.epoch {
		// Epochs only move forward: a shipper behind our generation is a
		// zombie ex-primary, and following it would roll this replica
		// back behind the promoted timeline it already acknowledged.
		c.Close()
		r.Stats.Fenced.Add(1)
		return fmt.Errorf("%w: shipper at epoch %d, replica follows %d", ErrFenced, w.epoch, r.epoch)
	}
	_ = c.SetDeadline(time.Time{})
	if w.startSeq == 0 && (r.lastSeq > 0 || w.epoch != r.epoch) {
		// Full resync under a new log generation: replaying from the
		// log start in order converges the replica regardless of its
		// current contents.
		r.lastSeq = 0
		r.undo = r.undo[:0]
		r.inflight = false
		r.inflightUnknown = false
	}
	r.epoch = w.epoch
	if r.connected {
		r.Stats.Reconnects.Add(1)
	}
	r.connected = true
	r.err = nil
	r.conn = c
	r.done = make(chan struct{})
	go r.consume(c)
	return nil
}

// Kill abruptly drops the connection — the mid-stream crash of the
// acceptance test — and joins the consume goroutine. The replica keeps
// its segment and last acked sequence, exactly like a node whose state
// survived on NVM; Connect brings it back and catches it up.
func (r *Replica) Kill() {
	if r.conn != nil {
		r.conn.Close()
	}
	<-r.done
	r.conn = nil
}

// consume applies batches until the connection dies or a frame fails
// validation.
func (r *Replica) consume(c net.Conn) {
	defer close(r.done)
	defer c.Close()
	for {
		typ, payload, err := readFrame(c)
		if err != nil {
			if errors.Is(err, ErrCorrupt) {
				r.Stats.QuarantinedFrames.Add(1)
			}
			r.err = err
			return
		}
		r.Stats.BytesReceived.Add(uint64(headerSize + len(payload) + crcSize))
		if typ == typeSnapshot {
			if !r.applySnapshot(c, payload) {
				return
			}
			continue
		}
		if typ == typeLease {
			b, err := decodeBeat(payload)
			if err != nil {
				r.Stats.QuarantinedFrames.Add(1)
				r.err = err
				return
			}
			r.Stats.BeatsSeen.Add(1)
			if r.leaseObs != nil {
				r.leaseObs(b)
				// Acknowledge after observing: once the ack reaches the
				// shipper, this monitor's expiry deadline is provably at
				// or beyond the holder's evidence deadline for this beat.
				if !r.sendBeatAck(c, b.Seq) {
					return
				}
			}
			continue
		}
		if typ != typeBatch {
			continue
		}
		h, records, err := decodeBatch(payload)
		if err != nil {
			r.Stats.QuarantinedFrames.Add(1)
			r.err = err
			return
		}
		if h.endSeq <= r.lastSeq {
			// Duplicate delivery (e.g. a batch raced a reconnect):
			// already applied, just re-ack so the shipper advances.
			r.sendAck(c, r.lastSeq)
			continue
		}
		if h.baseSeq > r.lastSeq {
			r.Stats.QuarantinedFrames.Add(1)
			r.Stats.QuarantinedRecords.Add(uint64(h.count))
			r.err = fmt.Errorf("logship: gap: batch starts at seq %d, replica at %d", h.baseSeq, r.lastSeq)
			return
		}
		if !r.applyBatch(h, records) {
			return
		}
		r.lastSeq = h.endSeq
		if !r.sendAck(c, h.endSeq) {
			return
		}
	}
}

// applySnapshot applies one chunk of a catch-up segment image (shipped
// when this replica's cursor predates the shipper's compaction cut). The
// cursor advances — and the ack goes out — only on the final chunk, so a
// torn snapshot is never acked and the next session restarts it. Chunks
// overwrite raw: the image is at least as new as anything the replica
// holds, and records newer than coverSeq that it happens to include are
// re-asserted by the batches that follow.
func (r *Replica) applySnapshot(c net.Conn, payload []byte) bool {
	h, data, err := decodeSnapshot(payload)
	if err != nil {
		r.Stats.QuarantinedFrames.Add(1)
		r.err = err
		return false
	}
	if h.segSize != r.size {
		r.Stats.QuarantinedFrames.Add(1)
		r.err = fmt.Errorf("logship: snapshot of a %d-byte segment, replica is %d", h.segSize, r.size)
		return false
	}
	r.cons.ApplyImage(h.off, data)
	r.Stats.SnapshotBytes.Add(uint64(len(data)))
	if uint64(h.off)+uint64(len(data)) < uint64(h.segSize) {
		return true // more chunks coming
	}
	r.Stats.SnapshotsApplied.Add(1)
	if h.coverSeq > r.lastSeq {
		r.lastSeq = h.coverSeq
	}
	if r.markerLimit > 0 {
		// The image replaced whatever transaction state we were tracking.
		// If its marker word shows an open transaction, we hold its
		// writes without their pre-images — note that, so Rollback can
		// refuse instead of pretending.
		r.undo = r.undo[:0]
		r.inflight = false
		m := r.cons.Word(0)
		r.inflightUnknown = m != 0 && m&recovery.MarkerCommit == 0
	}
	return r.sendAck(c, r.lastSeq)
}

// applyBatch validates and applies every record of a batch through the
// shared logcursor walk (apply-all view: the replica image keeps the
// producer's marker words; rollback is the undo ledger's job). The first
// invalid record quarantines the remainder, reports false, and leaves
// lastSeq untouched so the batch is not acked.
func (r *Replica) applyBatch(h batchHeader, records []byte) bool {
	src := logcursor.NewBytesSource(records[:int(h.count)*logrec.Size], r.size)
	w := logcursor.NewWalker(logcursor.Config{
		View: logcursor.ApplyAll,
		End:  src.End(),
		Apply: func(rec logcursor.Rec) {
			if r.markerLimit > 0 {
				r.track(rec)
			}
			r.cons.ApplyRecord(rec.Off, rec.Value, rec.Size)
			r.Stats.RecordsApplied.Add(1)
		},
	})
	if st := logcursor.Run(src, w); st.Quarantined() {
		r.Stats.QuarantinedFrames.Add(1)
		r.Stats.QuarantinedRecords.Add(uint64(int(h.count) - st.Bad.Idx))
		r.err = fmt.Errorf("logship: invalid record %d/%d (off %#x size %d): quarantined",
			st.Bad.Idx, h.count, st.Bad.Off, st.Bad.Size)
		return false
	}
	r.Stats.BatchesApplied.Add(1)
	return true
}

// track maintains the undo ledger across one record. A whole-word store
// into the marker area (logcursor.IsMarker — the same classifier the
// recovery replay brackets transactions with) opens (begin: seq, commit
// bit clear) and closes (commit: seq|MarkerCommit) transactions; while
// one is open, every word about to be overwritten is saved first.
func (r *Replica) track(rec logcursor.Rec) {
	if logcursor.IsMarker(rec.Off, rec.Size, r.markerLimit) {
		if rec.Value&recovery.MarkerCommit != 0 {
			// Commit marker: the transaction is whole on this replica.
			r.undo = r.undo[:0]
			r.inflight = false
			r.inflightUnknown = false
			return
		}
		// Begin marker: root a fresh ledger at the pre-begin marker word.
		r.undo = append(r.undo[:0], undoWord{rec.Off, r.cons.Word(rec.Off)})
		r.inflight = true
		r.inflightUnknown = false
		return
	}
	if !r.inflight {
		return
	}
	for w := rec.Off &^ 3; w < rec.Off+uint32(rec.Size); w += 4 {
		r.undo = append(r.undo, undoWord{w, r.cons.Word(w)})
	}
}

// Rollback settles the replica at its last transaction boundary: the
// pre-images of a half-replicated open transaction are restored in
// reverse, leaving exactly the state every acknowledged commit marker
// covers. It reports the words restored. Call only while disconnected —
// this is the freeze step of a promotion.
func (r *Replica) Rollback() (int, error) {
	<-r.done
	if r.inflightUnknown {
		return 0, fmt.Errorf("logship: replica image holds an open transaction with no pre-images; cannot roll back")
	}
	n := len(r.undo)
	for i := n - 1; i >= 0; i-- {
		u := r.undo[i]
		r.cons.ApplyRecord(u.off, u.val, 4)
	}
	r.undo = r.undo[:0]
	r.inflight = false
	r.Stats.RolledBack.Add(uint64(n))
	return n, nil
}

// Image dumps the replica segment — the state a promotion re-seeds the
// new primary from. Call only while disconnected, after Rollback if the
// segment follows the marker protocol.
func (r *Replica) Image() []byte {
	<-r.done
	img := make([]byte, r.size)
	r.cons.ReadInto(0, img)
	return img
}

// Epoch reports the last generation a welcome taught this replica. Call
// only while disconnected.
func (r *Replica) Epoch() uint32 { return r.epoch }

// SetEpoch seeds the fencing floor: a replica told the promoted
// generation refuses any shipper behind it, even before first contact
// with the new primary. Call only while disconnected.
func (r *Replica) SetEpoch(e uint32) {
	<-r.done
	if e > r.epoch {
		r.epoch = e
	}
}

// Done exposes the current session's termination channel: closed when no
// consume goroutine is running.
func (r *Replica) Done() <-chan struct{} { return r.done }

func (r *Replica) sendAck(c net.Conn, seq uint64) bool {
	if _, err := c.Write(encodeFrame(typeAck, encodeAck(seq))); err != nil {
		r.err = err
		return false
	}
	r.Stats.AcksSent.Add(1)
	return true
}

// sendBeatAck acknowledges receipt of lease beat seq — the delivery
// evidence half of the beat round trip (Shipper.LeaseEvidence).
func (r *Replica) sendBeatAck(c net.Conn, seq uint64) bool {
	if _, err := c.Write(encodeFrame(typeBeatAck, encodeAck(seq))); err != nil {
		r.err = err
		return false
	}
	r.Stats.BeatAcksSent.Add(1)
	return true
}
