// Package logship ships LVM log records from a producer System to N
// replica consumers over a real transport — the first piece of the
// codebase that moves log data between independent systems instead of
// simulating consistency inside one address space (Section 2.6's
// log-based distributed consistency, scaled out).
//
// The design follows the paper's observation that the hardware log is
// already the enumerated update set: the producer's write path is
// untouched (logged stores stay zero-allocation), and a shipping layer
// drains the log into framed batches of 16-byte records on the producer's
// thread, bounded per consumer by an in-flight window. Replicas apply
// records through the existing dsm.Consumer machinery, validate each one
// with the crash-recovery rules (recovery.ValidWrite), quarantine on
// torn or corrupt frames, and resume from their last acknowledged
// sequence number after a crash or disconnect — the same
// degrade-don't-panic posture as internal/recovery.Replay.
//
// Wire protocol (version 4, little-endian):
//
//	frame    := magic(4)="LVSH" ver(1) type(1) flags(2) len(4) payload len-bytes crc32(4)
//	hello    := lastSeq(8) epoch(4) segSize(4) flags(1)   replica → shipper
//	welcome  := startSeq(8) epoch(4) segSize(4)           shipper → replica
//	batch    := baseSeq(8) endSeq(8) count(4) count×16-byte records
//	ack      := seq(8)                                    replica → shipper
//	snapshot := coverSeq(8) segSize(4) off(4) image-chunk shipper → replica
//	lease    := kind(1) pad(3) epoch(4) seq(8) ttl(8)     shipper → replica
//	beatack  := seq(8)                                    replica → shipper
//
// Sequence numbers are logical log-record indices: physical log offset /
// 16 plus the shipper's compaction base, so they stay monotonic across
// log compactions (internal/compact) and an ack doubles as a catch-up
// cursor. The epoch is the log generation; it bumps only when the
// producer rewinds the log outside compaction, and a stale-epoch hello
// forces a resync. Version 2 adds the snapshot frame: a replica whose
// cursor predates the compaction cut (or that needs a full resync under
// a compacted log) receives the producer's current segment image in
// chunks — covering every record below coverSeq — followed by the live
// tail, instead of a re-scan of log records the producer no longer has.
// Version 3 adds the lease frame: the primary's serving-lease heartbeat
// (internal/lease), broadcast down the same stream as the batches so
// standbys observe renewals exactly where they observe the data whose
// authority the lease asserts. Lease frames carry no cursor — consumers
// that don't track leases skip them like any unknown type.
// Version 4 adds lease delivery evidence: the hello grows a flags byte
// whose observer bit marks a consumer that feeds a lease.Monitor, and
// such consumers acknowledge every lease frame with a beatack carrying
// the beat's renewal sequence. The shipper folds those acks into
// LeaseEvidence, which the lease holder renews against — a primary that
// an admitted observer has not acknowledged for a full TTL demotes
// itself, closing the split-brain a live-but-partitioned renewal loop
// would otherwise cause.
// The replica applies chunks raw and acks coverSeq when the final chunk
// (off+len == segSize) lands; a torn snapshot is never acked, so a
// reconnect restarts it. Record address fields are rewritten to segment
// offsets before shipping: replicas never see (and could not resolve)
// producer physical addresses.
package logship

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"lvm/internal/logrec"
)

// Protocol constants.
const (
	// Magic is the frame preamble, "LVSH" in little-endian.
	Magic = uint32(0x4853564C)
	// Version is the wire protocol version this package speaks (2 added
	// the snapshot frame for catch-up across log compactions, 3 the
	// lease heartbeat frame for automatic failure detection, 4 the hello
	// observer flag and the beat-ack frame for lease delivery evidence).
	Version = 4

	headerSize = 12
	crcSize    = 4

	// maxPayload bounds a frame's declared payload length so a corrupt
	// or hostile length field can never cause an unbounded allocation.
	maxPayload = 1 << 20
)

// Frame types.
const (
	typeHello    = byte(1)
	typeWelcome  = byte(2)
	typeBatch    = byte(3)
	typeAck      = byte(4)
	typeSnapshot = byte(5)
	typeLease    = byte(6)
	typeBeatAck  = byte(7)
)

// ErrCorrupt marks a frame that failed structural validation: bad magic,
// unsupported version, oversize length, or a CRC mismatch. Receivers
// treat it like crash recovery treats a torn log tail — quarantine and
// drop the connection rather than guess.
var ErrCorrupt = errors.New("logship: corrupt frame")

func put32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func put64(b []byte, v uint64) {
	put32(b, uint32(v))
	put32(b[4:], uint32(v>>32))
}

func get32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func get64(b []byte) uint64 {
	return uint64(get32(b)) | uint64(get32(b[4:]))<<32
}

// encodeFrame wraps payload in a framed, CRC-protected message.
func encodeFrame(typ byte, payload []byte) []byte {
	b := make([]byte, headerSize+len(payload)+crcSize)
	put32(b, Magic)
	b[4] = Version
	b[5] = typ
	put32(b[8:], uint32(len(payload)))
	copy(b[headerSize:], payload)
	put32(b[headerSize+len(payload):], crc32.ChecksumIEEE(payload))
	return b
}

// readFrame reads one frame from r, validating magic, version, length
// bound and CRC. A short read surfaces as io.ErrUnexpectedEOF (a torn
// frame); structural damage surfaces as ErrCorrupt.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if m := get32(hdr[:]); m != Magic {
		return 0, nil, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, m)
	}
	if hdr[4] != Version {
		return 0, nil, fmt.Errorf("%w: version %d (want %d)", ErrCorrupt, hdr[4], Version)
	}
	n := get32(hdr[8:])
	if n > maxPayload {
		return 0, nil, fmt.Errorf("%w: payload length %d exceeds %d", ErrCorrupt, n, maxPayload)
	}
	buf := make([]byte, n+crcSize)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	payload = buf[:n]
	if got, want := crc32.ChecksumIEEE(payload), get32(buf[n:]); got != want {
		return 0, nil, fmt.Errorf("%w: crc %#x != %#x", ErrCorrupt, got, want)
	}
	return hdr[5], payload, nil
}

// hello is the replica's handshake: where it left off, and what kind of
// consumer it is.
type hello struct {
	lastSeq uint64
	epoch   uint32
	segSize uint32
	flags   byte
}

// helloObserver marks the consumer as a promotion-capable lease
// observer: it feeds heartbeats to a lease.Monitor and acknowledges
// each one, so the shipper counts its admission (and its beat-acks) as
// lease delivery evidence.
const helloObserver = byte(1 << 0)

// welcome is the shipper's handshake reply: where shipping will resume.
type welcome struct {
	startSeq uint64
	epoch    uint32
	segSize  uint32
}

const (
	helloSize   = 17
	welcomeSize = 16
)

func encodeHello(h hello) []byte {
	b := make([]byte, helloSize)
	put64(b, h.lastSeq)
	put32(b[8:], h.epoch)
	put32(b[12:], h.segSize)
	b[16] = h.flags
	return b
}

func decodeHello(p []byte) (hello, error) {
	if len(p) != helloSize {
		return hello{}, fmt.Errorf("%w: hello payload %d bytes", ErrCorrupt, len(p))
	}
	return hello{lastSeq: get64(p), epoch: get32(p[8:]), segSize: get32(p[12:]), flags: p[16]}, nil
}

func encodeWelcome(w welcome) []byte {
	b := make([]byte, welcomeSize)
	put64(b, w.startSeq)
	put32(b[8:], w.epoch)
	put32(b[12:], w.segSize)
	return b
}

func decodeWelcome(p []byte) (welcome, error) {
	if len(p) != welcomeSize {
		return welcome{}, fmt.Errorf("%w: welcome payload %d bytes", ErrCorrupt, len(p))
	}
	return welcome{startSeq: get64(p), epoch: get32(p[8:]), segSize: get32(p[12:])}, nil
}

// batchHeader precedes the raw records in a batch payload. baseSeq is the
// first log index the batch's scan covered and endSeq the index after the
// last; count may be smaller than endSeq-baseSeq when scanned records
// belonged to other segments sharing the log (they ship as nothing but
// still advance the cursor), and may be zero for a pure cursor advance.
type batchHeader struct {
	baseSeq uint64
	endSeq  uint64
	count   uint32
}

const batchHeaderSize = 20

func encodeBatch(h batchHeader, records []byte) []byte {
	b := make([]byte, batchHeaderSize+len(records))
	put64(b, h.baseSeq)
	put64(b[8:], h.endSeq)
	put32(b[16:], h.count)
	copy(b[batchHeaderSize:], records)
	return b
}

func decodeBatch(p []byte) (batchHeader, []byte, error) {
	if len(p) < batchHeaderSize {
		return batchHeader{}, nil, fmt.Errorf("%w: batch payload %d bytes", ErrCorrupt, len(p))
	}
	h := batchHeader{baseSeq: get64(p), endSeq: get64(p[8:]), count: get32(p[16:])}
	records := p[batchHeaderSize:]
	if uint64(len(records)) != uint64(h.count)*logrec.Size {
		return batchHeader{}, nil, fmt.Errorf("%w: batch count %d != %d record bytes", ErrCorrupt, h.count, len(records))
	}
	if h.endSeq < h.baseSeq || h.endSeq-h.baseSeq < uint64(h.count) {
		return batchHeader{}, nil, fmt.Errorf("%w: batch seq range [%d,%d) holds %d records", ErrCorrupt, h.baseSeq, h.endSeq, h.count)
	}
	return h, records, nil
}

func encodeAck(seq uint64) []byte {
	b := make([]byte, 8)
	put64(b, seq)
	return b
}

func decodeAck(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("%w: ack payload %d bytes", ErrCorrupt, len(p))
	}
	return get64(p), nil
}

// snapHeader precedes each image chunk of a snapshot. coverSeq is the
// logical sequence the full image covers (the replica's cursor after the
// final chunk); off is the chunk's byte offset within the segment.
type snapHeader struct {
	coverSeq uint64
	segSize  uint32
	off      uint32
}

const snapHeaderSize = 16

// snapChunkBytes bounds one snapshot chunk, comfortably under maxPayload.
const snapChunkBytes = 64 * 1024

func encodeSnapshot(h snapHeader, data []byte) []byte {
	b := make([]byte, snapHeaderSize+len(data))
	put64(b, h.coverSeq)
	put32(b[8:], h.segSize)
	put32(b[12:], h.off)
	copy(b[snapHeaderSize:], data)
	return b
}

func decodeSnapshot(p []byte) (snapHeader, []byte, error) {
	if len(p) <= snapHeaderSize {
		return snapHeader{}, nil, fmt.Errorf("%w: snapshot payload %d bytes", ErrCorrupt, len(p))
	}
	h := snapHeader{coverSeq: get64(p), segSize: get32(p[8:]), off: get32(p[12:])}
	data := p[snapHeaderSize:]
	if uint64(h.off)+uint64(len(data)) > uint64(h.segSize) {
		return snapHeader{}, nil, fmt.Errorf("%w: snapshot chunk [%d,%d) leaves the %d-byte segment",
			ErrCorrupt, h.off, uint64(h.off)+uint64(len(data)), h.segSize)
	}
	return h, data, nil
}

// Beat is one serving-lease heartbeat (internal/lease): the primary
// asserting it still holds the lease for Epoch, renewal number Seq, to
// be re-armed for TTL clock ticks from receipt. TTL is in the lease
// clock's units (nanoseconds for wall-clocked daemons); sender and
// receiver clocks need comparable rates, never synchronized values —
// each side arms its own deadline from its own clock.
type Beat struct {
	Kind  byte // BeatGrant or BeatRenew
	Epoch uint32
	Seq   uint64
	TTL   uint64
}

// Beat kinds: the first heartbeat of a grant announces it, the rest
// renew it. Observers treat them identically; the kind is diagnostic.
const (
	BeatGrant = byte(1)
	BeatRenew = byte(2)
)

const beatSize = 24 // kind(1) pad(3) epoch(4) seq(8) ttl(8)

func encodeBeat(b Beat) []byte {
	p := make([]byte, beatSize)
	p[0] = b.Kind
	put32(p[4:], b.Epoch)
	put64(p[8:], b.Seq)
	put64(p[16:], b.TTL)
	return p
}

func decodeBeat(p []byte) (Beat, error) {
	if len(p) != beatSize {
		return Beat{}, fmt.Errorf("%w: lease payload %d bytes", ErrCorrupt, len(p))
	}
	b := Beat{Kind: p[0], Epoch: get32(p[4:]), Seq: get64(p[8:]), TTL: get64(p[16:])}
	if b.Kind != BeatGrant && b.Kind != BeatRenew {
		return Beat{}, fmt.Errorf("%w: lease kind %d", ErrCorrupt, b.Kind)
	}
	return b, nil
}

// negotiateStart decides where shipping resumes for a replica that said
// hello: from its last acked sequence when the log generation matches and
// the claim is plausible, from zero (full resync) otherwise.
func negotiateStart(h hello, curEpoch uint32, curSeq uint64) uint64 {
	if h.epoch != curEpoch || h.lastSeq > curSeq {
		return 0
	}
	return h.lastSeq
}

// physRange maps the logical sequence range [start, end) onto physical
// byte offsets of the log segment, given the compaction base (the
// logical sequence of physical byte 0) and the segment size. All
// arithmetic is 64-bit: sequences grow without bound once the log is
// compacted, so narrowing before the multiply (the old
// uint32(seq)*logrec.Size) computes garbage offsets for seq >= 2^28.
// Out-of-range inputs — a cursor below the base (those records were cut)
// or beyond the log — are explicit errors, never a wrapped offset.
func physRange(start, end, base uint64, logSize uint32) (lo, hi uint32, err error) {
	if start < base {
		return 0, 0, fmt.Errorf("logship: catch-up start seq %d predates compaction base %d", start, base)
	}
	if end < start {
		return 0, 0, fmt.Errorf("logship: catch-up range [%d,%d) is inverted", start, end)
	}
	lo64 := (start - base) * logrec.Size
	hi64 := (end - base) * logrec.Size
	if hi64 > uint64(logSize) {
		return 0, 0, fmt.Errorf("logship: catch-up range [%d,%d) ends %d bytes into a %d-byte log",
			start, end, hi64, logSize)
	}
	return uint32(lo64), uint32(hi64), nil
}
