package logship

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lvm/internal/core"
	"lvm/internal/logcursor"
	"lvm/internal/logrec"
)

// Policy says what the shipper does when a consumer's in-flight window is
// full at enqueue time.
type Policy int

const (
	// PolicyStall waits up to StallTimeout for the window to drain, then
	// drops the consumer. Release latency absorbs the wait; memory stays
	// bounded either way.
	PolicyStall Policy = iota
	// PolicyDrop disconnects the slow consumer immediately. It can
	// rejoin later and catch up from its last acked sequence.
	PolicyDrop
)

// Config tunes a Shipper.
type Config struct {
	// FlushRecords is the batch seal threshold in records (default 64).
	FlushRecords int
	// Window bounds the batches queued per consumer (default 8). With
	// FlushRecords it caps shipping memory per consumer at roughly
	// Window × FlushRecords × 16 bytes — a slow consumer can never grow
	// an unbounded backlog in the producer.
	Window int
	// OnFull is the slow-consumer policy (default PolicyStall).
	OnFull Policy
	// StallTimeout bounds one PolicyStall wait (default 5s).
	StallTimeout time.Duration
	// HandshakeTimeout bounds the hello/welcome exchange (default 5s).
	HandshakeTimeout time.Duration
	// Epoch seeds the log generation (default 1). A shipper re-seeded
	// from a promoted replica image starts at the grant's epoch so the
	// zombie ex-primary's generation is strictly behind it.
	Epoch uint32
	// StartSeq seeds the logical cursor over an empty log: sealed, seq,
	// and base all start there, so a consumer resuming below it (or fresh
	// at zero) is caught up by snapshot — exactly the semantics of a
	// promotion at the acked watermark.
	StartSeq uint64
}

func (c *Config) fill() {
	if c.FlushRecords <= 0 {
		c.FlushRecords = 64
	}
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 5 * time.Second
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	if c.Epoch == 0 {
		c.Epoch = 1
	}
}

// shipConn is one consumer connection as the shipper sees it.
type shipConn struct {
	c        net.Conn
	ch       chan []byte   // sealed frames awaiting the writer; cap = Window
	start    uint64        // sequence shipping resumed from (catch-up cursor)
	acked    atomic.Uint64 // highest sequence the consumer acknowledged
	observer bool          // hello carried the lease-observer flag
	dead     atomic.Bool
	stop     chan struct{}
	once     sync.Once
}

func (c *shipConn) kill() {
	c.once.Do(func() {
		c.dead.Store(true)
		close(c.stop)
		c.c.Close()
	})
}

// Shipper streams a logged segment's records to every connected replica.
//
// Threading: the accept loop and per-connection writer/ack goroutines are
// host-side and touch only the network and atomics. Everything that reads
// the simulated machine — Flush, FlushAll, ReleaseShip, Rebase, Close —
// must be called from the producer's (simulation) thread, because log
// readers walk kernel state that the machine mutates on every store.
type Shipper struct {
	sys  *core.System
	data *core.Segment
	ls   *core.Segment
	cfg  Config
	ln   net.Listener

	reader *core.LogReader

	// Pump-thread state.
	conns      []*shipConn
	batch      []byte // raw re-encoded records of the open batch
	batchCount int
	sealedSeq  uint64 // log index everything up to which has been sealed
	obsSeen    bool   // a lease observer was admitted at least once (sticky)

	// beatAck is the highest beat sequence any observer acknowledged;
	// written by connAcks goroutines, read by LeaseEvidence.
	beatAck atomic.Uint64

	// Shared with handshake goroutines.
	epoch  atomic.Uint32
	seq    atomic.Uint64 // logical index of the next unscanned record
	base   atomic.Uint64 // logical index of physical log byte 0 (compaction cut)
	joinCh chan *shipConn
	ack    chan struct{} // pinged on every ack, cap 1

	// all tracks every connection with live goroutines so Close can
	// unblock them; guarded by mu, which also serializes registration
	// against closing.
	mu  sync.Mutex
	all map[*shipConn]struct{}

	// Stats surface in the producer System's MetricsSnapshot as
	// logship.* counters.
	Stats ShipStats

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewShipper starts shipping the records that data's writes append to
// log segment ls, serving replicas that connect via ln. It registers its
// counters with sys's metrics registry and begins accepting immediately;
// records flow on the next Flush.
func NewShipper(sys *core.System, data, ls *core.Segment, ln net.Listener, cfg Config) *Shipper {
	cfg.fill()
	s := &Shipper{
		sys:    sys,
		data:   data,
		ls:     ls,
		cfg:    cfg,
		ln:     ln,
		reader: core.NewLogReader(sys, ls),
		joinCh: make(chan *shipConn, 64),
		ack:    make(chan struct{}, 1),
		all:    make(map[*shipConn]struct{}),
		closed: make(chan struct{}),
	}
	s.epoch.Store(cfg.Epoch)
	if cfg.StartSeq > 0 {
		s.sealedSeq = cfg.StartSeq
		s.seq.Store(cfg.StartSeq)
		s.base.Store(cfg.StartSeq)
	}
	sys.Metrics().AddCollector(s.Stats.Collect)
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Epoch reports the current log generation.
func (s *Shipper) Epoch() uint32 { return s.epoch.Load() }

// SealedSeq reports the log index up to which batches have been sealed
// and broadcast. Pump thread only.
func (s *Shipper) SealedSeq() uint64 { return s.sealedSeq }

// Consumers reports how many live consumers are attached. Pump thread
// only; joined-but-unadmitted connections don't count until the next
// Flush.
func (s *Shipper) Consumers() int {
	n := 0
	for _, c := range s.conns {
		if !c.dead.Load() {
			n++
		}
	}
	return n
}

func (s *Shipper) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.handshake(c)
	}
}

// handshake runs the hello/welcome exchange on a fresh connection and
// queues it for admission by the pump.
func (s *Shipper) handshake(c net.Conn) {
	defer s.wg.Done()
	deadline := time.Now().Add(s.cfg.HandshakeTimeout)
	_ = c.SetDeadline(deadline)
	typ, payload, err := readFrame(c)
	if err != nil || typ != typeHello {
		c.Close()
		return
	}
	h, err := decodeHello(payload)
	if err != nil || h.segSize != s.data.Size() {
		c.Close()
		return
	}
	if h.epoch > s.epoch.Load() {
		// The consumer follows a later generation than ours, which means
		// a promotion happened and we are the zombie ex-primary. Refuse
		// the session: feeding it would roll the consumer back behind the
		// promoted timeline. Epochs only move forward. The refusal is
		// loud: a welcome carrying our stale epoch goes out first, so the
		// consumer classifies this as fencing (ErrFenced) rather than a
		// dead socket and stops redialing a shipper that will never feed
		// it.
		s.Stats.FencedHellos.Add(1)
		_, _ = c.Write(encodeFrame(typeWelcome, encodeWelcome(welcome{ //errgate:ok — refusal courtesy; the close below is the real act
			startSeq: h.lastSeq,
			epoch:    s.epoch.Load(),
			segSize:  s.data.Size(),
		})))
		c.Close()
		return
	}
	start := negotiateStart(h, s.epoch.Load(), s.seq.Load())
	sc := &shipConn{
		c:        c,
		ch:       make(chan []byte, s.cfg.Window),
		start:    start,
		observer: h.flags&helloObserver != 0,
		stop:     make(chan struct{}),
	}
	sc.acked.Store(start)
	if !s.register(sc) {
		sc.kill()
		return
	}
	// Enqueue the join BEFORE the welcome goes out: the welcome write
	// completes only after the replica reads it (synchronous on the mem
	// transport, ordered on TCP), so by the time the replica's Connect
	// returns, the join is already visible to the pump's next Flush —
	// admission is deterministic, never a scheduling race. The writer
	// goroutine starts after the welcome, so no batch can precede it on
	// the wire even if the pump admits us first.
	select {
	case s.joinCh <- sc:
	case <-s.closed:
		sc.kill()
		return
	}
	if _, err := c.Write(encodeFrame(typeWelcome, encodeWelcome(welcome{
		startSeq: start,
		epoch:    s.epoch.Load(),
		segSize:  s.data.Size(),
	}))); err != nil {
		sc.kill()
		return
	}
	_ = c.SetDeadline(time.Time{})
	s.Stats.Joins.Add(1)
	if h.lastSeq > 0 || h.epoch > 0 {
		s.Stats.Reconnects.Add(1)
	}
	s.wg.Add(2)
	go s.connWriter(sc)
	go s.connAcks(sc)
}

// register adds a connection to the close set; it fails once the shipper
// is closing, so no connection's goroutines can outlive Close.
func (s *Shipper) register(c *shipConn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.closed:
		return false
	default:
	}
	s.all[c] = struct{}{}
	return true
}

// connWriter drains a consumer's frame queue onto its connection.
func (s *Shipper) connWriter(c *shipConn) {
	defer s.wg.Done()
	for {
		select {
		case b := <-c.ch:
			if _, err := c.c.Write(b); err != nil {
				c.kill()
				return
			}
		case <-c.stop:
			return
		}
	}
}

// connAcks reads acknowledgement frames and advances the consumer's
// acked cursor.
func (s *Shipper) connAcks(c *shipConn) {
	defer s.wg.Done()
	for {
		typ, payload, err := readFrame(c.c)
		if err != nil {
			c.kill()
			s.ping()
			return
		}
		if typ == typeBeatAck {
			seq, err := decodeAck(payload)
			if err != nil {
				c.kill()
				s.ping()
				return
			}
			if c.observer {
				// CAS-max: acks from concurrent observers may race.
				for {
					cur := s.beatAck.Load()
					if seq <= cur || s.beatAck.CompareAndSwap(cur, seq) {
						break
					}
				}
				s.Stats.BeatAcks.Add(1)
			}
			continue
		}
		if typ != typeAck {
			continue
		}
		seq, err := decodeAck(payload)
		if err != nil {
			c.kill()
			s.ping()
			return
		}
		if seq > c.acked.Load() {
			c.acked.Store(seq)
		}
		s.Stats.AcksReceived.Add(1)
		s.ping()
	}
}

func (s *Shipper) ping() {
	select {
	case s.ack <- struct{}{}: //errgate:ok — ack coalescing: a pending token already wakes the waiter
	default:
	}
}

// Flush drains the producer's log into batches and broadcasts every
// sealed batch; a partial batch stays open for the next Flush. It also
// admits consumers that connected since the last pump. Producer thread
// only.
func (s *Shipper) Flush() error {
	if err := s.admitJoins(); err != nil {
		return err
	}
	s.reader.Sync()
	var scratch [logrec.Size]byte
	if err := logcursor.EachData(s.reader, s.data, func(rec core.Record, isData bool) error {
		if isData {
			// Rewrite the address to a segment offset (logcursor.Wire):
			// replicas cannot resolve producer physical addresses, and
			// offsets are what their apply path wants.
			logcursor.Wire(rec).Encode(scratch[:])
			s.batch = append(s.batch, scratch[:]...)
			s.batchCount++
		}
		if s.batchCount >= s.cfg.FlushRecords {
			s.seal()
		}
		return nil
	}); err != nil {
		return err
	}
	s.seq.Store(s.base.Load() + uint64(s.reader.Offset())/logrec.Size)
	return nil
}

// FlushAll is Flush plus a seal of the open partial batch, so everything
// logged so far is on the wire (or queued within each consumer's window).
func (s *Shipper) FlushAll() error {
	if err := s.Flush(); err != nil {
		return err
	}
	s.seal()
	return nil
}

// seal closes the open batch and broadcasts it to every live consumer.
// An empty batch still ships if the cursor advanced (records for other
// segments sharing the log), so acks keep moving.
func (s *Shipper) seal() {
	endSeq := s.base.Load() + uint64(s.reader.Offset())/logrec.Size
	if endSeq == s.sealedSeq && s.batchCount == 0 {
		return
	}
	frame := encodeFrame(typeBatch, encodeBatch(batchHeader{
		baseSeq: s.sealedSeq,
		endSeq:  endSeq,
		count:   uint32(s.batchCount),
	}, s.batch))
	s.Stats.BatchesShipped.Add(1)
	s.Stats.RecordsShipped.Add(uint64(s.batchCount))
	for _, c := range s.conns {
		s.offer(c, frame)
	}
	s.sealedSeq = endSeq
	s.batch = s.batch[:0]
	s.batchCount = 0
}

// offer enqueues a frame within the consumer's window, applying the
// slow-consumer policy when the window is full.
func (s *Shipper) offer(c *shipConn, frame []byte) {
	if c.dead.Load() {
		return
	}
	select {
	case c.ch <- frame: //errgate:ok — full window falls through to the OnFull policy below, which counts the drop
		s.Stats.BytesShipped.Add(uint64(len(frame)))
		return
	default:
	}
	if s.cfg.OnFull == PolicyDrop {
		s.Stats.Drops.Add(1)
		c.kill()
		return
	}
	s.Stats.Stalls.Add(1)
	t := time.NewTimer(s.cfg.StallTimeout)
	defer t.Stop()
	select {
	case c.ch <- frame:
		s.Stats.BytesShipped.Add(uint64(len(frame)))
	case <-c.stop:
	case <-t.C:
		s.Stats.Drops.Add(1)
		c.kill()
	}
}

// admitJoins brings newly connected consumers live: the open batch is
// sealed first so the sealed cursor is the single truth, then each
// joiner is caught up from its negotiated start sequence by re-reading
// the log, exactly as crash recovery re-reads a surviving log.
func (s *Shipper) admitJoins() error {
	for {
		var c *shipConn
		select {
		case c = <-s.joinCh:
		default:
			s.sweepDead()
			return nil
		}
		s.seal()
		if err := s.catchUp(c); err != nil {
			c.kill()
			return err
		}
		s.conns = append(s.conns, c)
		if c.observer {
			s.obsSeen = true
		}
	}
}

// catchUp ships the tail [c.start, sealedSeq) to one consumer. A cursor
// that predates the compaction base points at records the log no longer
// holds, so those consumers get the segment image (shipSnapshot) instead
// of a record replay; everyone else is caught up by re-reading the log,
// exactly as crash recovery re-reads a surviving log.
func (s *Shipper) catchUp(c *shipConn) error {
	if c.start >= s.sealedSeq {
		return nil
	}
	logBase := s.base.Load()
	if c.start < logBase {
		s.shipSnapshot(c)
		c.start = s.sealedSeq
		return nil
	}
	r := core.NewLogReader(s.sys, s.ls)
	lo, hi, err := physRange(c.start, s.sealedSeq, logBase, s.ls.Size())
	if err != nil {
		return err
	}
	if err := r.Seek(lo); err != nil {
		return fmt.Errorf("logship: catch-up seek: %w", err)
	}
	r.SetEnd(hi)
	var scratch [logrec.Size]byte
	var records []byte
	base := c.start
	count := 0
	flush := func() {
		end := logBase + uint64(r.Offset())/logrec.Size
		frame := encodeFrame(typeBatch, encodeBatch(batchHeader{
			baseSeq: base,
			endSeq:  end,
			count:   uint32(count),
		}, records))
		s.Stats.BatchesShipped.Add(1)
		s.Stats.CatchupRecords.Add(uint64(count))
		s.offer(c, frame)
		base = end
		records = records[:0]
		count = 0
	}
	if err := logcursor.EachData(r, s.data, func(rec core.Record, isData bool) error {
		if isData {
			logcursor.Wire(rec).Encode(scratch[:])
			records = append(records, scratch[:]...)
			count++
		}
		if count >= s.cfg.FlushRecords {
			flush()
		}
		return nil
	}); err != nil {
		return err
	}
	if count > 0 || base < s.sealedSeq {
		flush()
	}
	return nil
}

// shipSnapshot streams the producer's current segment image to one
// consumer in chunked snapshot frames. coverSeq is the sealed cursor:
// the image reflects at least every record below it (it may also carry
// newer bytes, which the records that logged them re-assert when their
// batches arrive — absolute writes replayed in order are idempotent, the
// same argument compact.Manager makes for its checkpoint images). The
// replica acks coverSeq only once the final chunk lands, so a torn
// snapshot is re-sent from scratch on reconnect.
func (s *Shipper) shipSnapshot(c *shipConn) {
	size := s.data.Size()
	cover := s.sealedSeq
	buf := make([]byte, snapChunkBytes)
	for off := uint32(0); off < size; {
		n := uint32(len(buf))
		if off+n > size {
			n = size - off
		}
		s.data.ReadInto(off, buf[:n])
		frame := encodeFrame(typeSnapshot, encodeSnapshot(snapHeader{
			coverSeq: cover,
			segSize:  size,
			off:      off,
		}, buf[:n]))
		s.offer(c, frame)
		off += n
	}
	s.Stats.SnapshotsShipped.Add(1)
	s.Stats.SnapshotBytes.Add(uint64(size))
}

// Heartbeat broadcasts a serving-lease beat (internal/lease) to every
// live consumer. Delivery is best effort: a full window drops the beat
// for that consumer (the next renewal covers it) rather than ever
// stalling the producer on its own liveness signal. The holder's safety
// comes not from delivery but from the beat-ack round trip: observers
// acknowledge each beat, and the holder demotes itself when evidence
// dries up (lease.Holder).
//
// Heartbeat deliberately does NOT admit joiners: admission must happen
// in LeaseEvidence, BEFORE the holder decides whether it may renew.
// Admitting here — after the renewal decision — would let a fresh
// standby hear a beat the holder issued without counting that standby
// in its evidence, skewing the two deadlines apart. Call LeaseEvidence
// first (lvmd.shard does) so a standby that subscribed to an idle
// primary still hears renewals. Producer thread only.
func (s *Shipper) Heartbeat(b Beat) error {
	frame := encodeFrame(typeLease, encodeBeat(b))
	for _, c := range s.conns {
		if c.dead.Load() {
			continue
		}
		select {
		case c.ch <- frame:
			s.Stats.BeatsShipped.Add(1)
			s.Stats.BytesShipped.Add(uint64(len(frame)))
		default:
			s.Stats.BeatsDropped.Add(1)
		}
	}
	return nil
}

// LeaseEvidence admits pending joiners and reports the delivery
// evidence the lease holder's renewal decision feeds on: whether a
// lease observer has ever been admitted (engaged, sticky — a partition
// that kills the connection does not disengage the holder) and the
// highest beat sequence any observer has acknowledged. Call it
// immediately before Holder.Renew, and ship the granted beat with
// Heartbeat: admission-before-renewal is what keeps the holder's
// evidence deadline at or before every monitor's expiry deadline.
// Producer thread only.
func (s *Shipper) LeaseEvidence() (engaged bool, acked uint64) {
	_ = s.admitJoins() //errgate:ok — admission trouble is the joiner's problem; evidence already gathered stands
	return s.obsSeen, s.beatAck.Load()
}

// MinAcked reports the lowest sequence any live consumer has
// acknowledged — the replication bound on how far the log may safely be
// truncated (compact.Shipper). ^uint64(0) when no consumer is attached.
// Producer thread only.
func (s *Shipper) MinAcked() uint64 {
	min := ^uint64(0)
	for _, c := range s.conns {
		if c.dead.Load() {
			continue
		}
		if a := c.acked.Load(); a < min {
			min = a
		}
	}
	return min
}

// Base reports the logical sequence of physical log byte 0 — how many
// records compaction has cut. Producer thread only (reads are exact only
// there; elsewhere it is a monotonic lower bound).
func (s *Shipper) Base() uint64 { return s.base.Load() }

// Compacted tells the shipper the producer cut cutRecords records off
// the log's head (internal/compact): the base advances so logical
// sequence numbers stay monotonic, and the reader re-seeks its physical
// position. No epoch bump, no disconnects — consumers at or beyond the
// cut continue seamlessly, and any that later resume from below it are
// caught up with a snapshot instead of a full resync. Producer thread
// only.
func (s *Shipper) Compacted(cutRecords uint64) error {
	if cutRecords == 0 {
		return nil
	}
	s.reader.Sync()
	phys := uint64(s.reader.Offset())
	cutBytes := cutRecords * logrec.Size
	if cutBytes > phys {
		return fmt.Errorf("logship: compaction cut %d bytes but only %d scanned", cutBytes, phys)
	}
	s.base.Add(cutRecords)
	if err := s.reader.Seek(uint32(phys - cutBytes)); err != nil {
		return fmt.Errorf("logship: post-compaction reseek: %w", err)
	}
	return nil
}

// DropLaggards disconnects every live consumer whose ack trails seq and
// reports how many were cut. It is the bounded-wait escape hatch of
// synchronous replication: after ReleaseShip times out, the laggards are
// dropped (they rejoin and catch up from their acked cursor) rather than
// holding the producer's commit path hostage. Producer thread only.
func (s *Shipper) DropLaggards(seq uint64) int {
	n := 0
	for _, c := range s.conns {
		if !c.dead.Load() && c.acked.Load() < seq {
			s.Stats.Drops.Add(1)
			c.kill()
			n++
		}
	}
	s.sweepDead()
	return n
}

// sweepDead drops dead connections from the broadcast set.
func (s *Shipper) sweepDead() {
	live := s.conns[:0]
	for _, c := range s.conns {
		if !c.dead.Load() {
			live = append(live, c)
		}
	}
	s.conns = live
}

// WaitAcked blocks until every live consumer has acknowledged seq, or
// the timeout expires. Consumers that die while waiting stop being
// waited on (they will catch up when they rejoin). Producer thread only.
func (s *Shipper) WaitAcked(seq uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		pending := 0
		for _, c := range s.conns {
			if !c.dead.Load() && c.acked.Load() < seq {
				pending++
			}
		}
		if pending == 0 {
			return nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return fmt.Errorf("logship: %d consumer(s) did not ack seq %d within %v", pending, seq, timeout)
		}
		t := time.NewTimer(remain)
		select {
		case <-s.ack:
			t.Stop()
		case <-t.C:
		}
	}
}

// ReleaseShip is the lock-release synchronization of Section 2.6 over a
// real transport: flush everything logged so far and wait until every
// live replica has acknowledged it. With streaming consumers keeping up,
// the backlog here is small and release latency approaches a round trip.
// Producer thread only.
func (s *Shipper) ReleaseShip(timeout time.Duration) error {
	if err := s.FlushAll(); err != nil {
		return err
	}
	return s.WaitAcked(s.sealedSeq, timeout)
}

// Rebase tells the shipper the producer truncated or rewound its log:
// the epoch bumps, the reader returns to the log start, and every
// consumer is disconnected so it rejoins under the new generation (a
// stale-epoch hello negotiates a full resync). Producer thread only.
func (s *Shipper) Rebase() error {
	s.epoch.Add(1)
	s.reader.Sync()
	if err := s.reader.Seek(0); err != nil {
		return err
	}
	s.sealedSeq = 0
	s.seq.Store(0)
	s.base.Store(0)
	s.batch = s.batch[:0]
	s.batchCount = 0
	for _, c := range s.conns {
		c.kill()
	}
	s.conns = s.conns[:0]
	return nil
}

// Close stops accepting, disconnects every consumer, and joins all
// shipper goroutines. Producer thread only.
func (s *Shipper) Close() error {
	s.mu.Lock()
	select {
	case <-s.closed:
		s.mu.Unlock()
		return nil
	default:
	}
	close(s.closed)
	for c := range s.all {
		c.kill()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}
