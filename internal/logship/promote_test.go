package logship

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"lvm/internal/dsm"
	"lvm/internal/ramdisk"
	"lvm/internal/recovery"
)

// markerLimit mirrors lvmd.MarkerLimit: the first 16 bytes of the
// segment are the transaction-marker word the rollback ledger tracks.
const markerLimit = 16

// txnWriter issues complete marker-bracketed transactions against a
// producer, counting records so tests can assert exact watermarks.
type txnWriter struct {
	prod *dsm.LVMProducer
	seq  uint32
	recs uint64
}

// commit writes one transaction: open marker, n payload stores at
// distinct offsets past the marker region, commit marker.
func (w *txnWriter) commit(n int) {
	w.seq++
	w.prod.Write(0, w.seq)
	w.recs++
	for j := 0; j < n; j++ {
		off := uint32(markerLimit) + (uint32(j)*4+w.seq*28)%(shared-markerLimit)&^3
		w.prod.Write(off, 0xBEEF0000+w.seq<<4+uint32(j))
		w.recs++
	}
	w.prod.Write(0, w.seq|recovery.MarkerCommit)
	w.recs++
}

// open starts a transaction and leaves it uncommitted (no commit marker).
func (w *txnWriter) open(n int) {
	w.seq++
	w.prod.Write(0, w.seq)
	w.recs++
	for j := 0; j < n; j++ {
		off := uint32(markerLimit) + (uint32(j)*4+w.seq*28)%(shared-markerLimit)&^3
		w.prod.Write(off, 0xDEAD0000+w.seq<<4+uint32(j))
		w.recs++
	}
}

// TestAuthorityGrantLifecycle pins the coordinator invariants: exactly
// one grant validates at a time, Prepare is idempotent per candidate,
// and committing without a proposal is an explicit error.
func TestAuthorityGrantLifecycle(t *testing.T) {
	var a Authority
	if a.Validate(Grant{}) {
		t.Fatal("zero grant must never validate")
	}
	if _, err := a.CommitGrant(); err == nil {
		t.Fatal("commit without a prepared grant must fail")
	}
	g1 := a.Prepare("cand-a")
	if g1.Epoch != 1 {
		t.Fatalf("first epoch = %d, want 1", g1.Epoch)
	}
	if again := a.Prepare("cand-a"); again != g1 {
		t.Fatalf("re-prepare for the same candidate changed the proposal: %+v != %+v", again, g1)
	}
	g2 := a.Prepare("cand-b")
	if g2 == g1 {
		t.Fatal("a different candidate must supersede the proposal")
	}
	cur, err := a.CommitGrant()
	if err != nil {
		t.Fatal(err)
	}
	if cur != g2 {
		t.Fatalf("committed %+v, want the prepared %+v", cur, g2)
	}
	if !a.Validate(g2) {
		t.Fatal("current grant must validate")
	}
	if a.Validate(g1) {
		t.Fatal("superseded proposal must not validate")
	}
	g3 := a.Prepare("cand-c")
	if g3.Epoch != 2 {
		t.Fatalf("next epoch = %d, want 2", g3.Epoch)
	}
	if _, err := a.CommitGrant(); err != nil {
		t.Fatal(err)
	}
	if a.Validate(g2) {
		t.Fatal("old grant must stop validating at CommitGrant")
	}
}

// TestPromoteZeroTail promotes a replica that acknowledged everything
// the dead primary ever logged: the watermark is the head, the measured
// loss is zero, and nothing needs rolling back. The promoted replica's
// next session against the zombie shipper is refused on epoch alone.
func TestPromoteZeroTail(t *testing.T) {
	ln, dial := NewMemTransport()
	_, prod, ship := newProducer(t, ln, Config{FlushRecords: 8})
	r := connectReplica(t, dial)
	r.TrackMarkers(markerLimit)

	w := &txnWriter{prod: prod}
	for i := 0; i < 20; i++ {
		w.commit(3)
	}
	if err := ship.ReleaseShip(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	a := &Authority{Cur: Grant{Epoch: ship.Epoch(), Token: 7}}
	res, err := Promote(a, r, "standby", w.recs, PromoteHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Watermark != w.recs {
		t.Fatalf("watermark = %d, want head %d", res.Watermark, w.recs)
	}
	if res.Lost != 0 {
		t.Fatalf("lost = %d, want 0 (zero unshipped tail)", res.Lost)
	}
	if res.RolledBack != 0 {
		t.Fatalf("rolled back %d words, want 0 (no open transaction)", res.RolledBack)
	}
	if !a.Validate(res.Grant) {
		t.Fatal("promotion grant must validate")
	}
	if got := r.Epoch(); got != res.Grant.Epoch {
		t.Fatalf("replica epoch = %d, want granted %d", got, res.Grant.Epoch)
	}

	// The zombie ex-primary refuses the promoted replica's hello: its
	// generation is behind the granted epoch.
	reconnectErr := r.Connect()
	if reconnectErr == nil {
		r.Kill()
		t.Fatal("zombie shipper accepted a promoted replica")
	}
	if got := ship.Stats.FencedHellos.Load(); got == 0 {
		t.Fatal("zombie shipper did not fence the future-epoch hello")
	}
}

// TestPromoteRollsBackOpenTxn promotes a replica holding a
// half-replicated transaction: the freeze phase must undo it back to
// the last commit marker before the image can seed a primary.
func TestPromoteRollsBackOpenTxn(t *testing.T) {
	ln, dial := NewMemTransport()
	_, prod, ship := newProducer(t, ln, Config{FlushRecords: 8})
	r := connectReplica(t, dial)
	r.TrackMarkers(markerLimit)

	w := &txnWriter{prod: prod}
	for i := 0; i < 3; i++ {
		w.commit(2)
	}
	w.open(2) // open marker + 2 payload words, never committed
	if err := ship.ReleaseShip(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	a := &Authority{Cur: Grant{Epoch: ship.Epoch(), Token: 7}}
	res, err := Promote(a, r, "standby", w.recs, PromoteHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RolledBack == 0 {
		t.Fatal("open transaction was not rolled back")
	}
	// The image must end at the last transaction boundary: the marker
	// word reads the final committed sequence, not the open one.
	img := r.Image()
	if got, want := get32(img), uint32(3)|recovery.MarkerCommit; got != want {
		t.Fatalf("marker word after rollback = %#x, want %#x", got, want)
	}
}

// TestPromoteAckAtCompactionCut promotes at a watermark that sits
// exactly on a compaction cut: every acked record has been cut from the
// physical log, so the logical sequence numbering (base + offset) is
// the only thing carrying the watermark forward. The takeover primary
// must serve from it and catch a fresh replica up by snapshot.
func TestPromoteAckAtCompactionCut(t *testing.T) {
	ln, dial := NewMemTransport()
	_, prod, ship := newProducer(t, ln, Config{FlushRecords: 8})
	r := connectReplica(t, dial)
	r.TrackMarkers(markerLimit)

	w := &txnWriter{prod: prod}
	for i := 0; i < 16; i++ {
		w.commit(3)
	}
	if err := ship.ReleaseShip(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Cut the whole acked prefix: the ack now sits exactly at the cut.
	if err := ship.Compacted(w.recs); err != nil {
		t.Fatal(err)
	}
	if got := ship.Base(); got != w.recs {
		t.Fatalf("compaction base = %d, want %d", got, w.recs)
	}

	a := &Authority{Cur: Grant{Epoch: ship.Epoch(), Token: 7}}
	res, err := Promote(a, r, "standby", w.recs, PromoteHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Watermark != w.recs || res.Lost != 0 {
		t.Fatalf("watermark=%d lost=%d, want %d and 0", res.Watermark, res.Lost, w.recs)
	}

	ln2, dial2 := NewMemTransport()
	pr, err := Takeover(r.Image(), res.Grant, res.Watermark, ln2, TakeoverConfig{
		Disk: ramdisk.New(),
		Ship: Config{FlushRecords: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Ship.Close()
	if got := pr.Ship.SealedSeq(); got != w.recs {
		t.Fatalf("takeover shipper starts at seq %d, want watermark %d", got, w.recs)
	}

	// A fresh replica (cursor far below the cut) converges by snapshot.
	r2 := connectReplica(t, dial2)
	r2.TrackMarkers(markerLimit)
	for i := 0; i < 4; i++ {
		w.seq++
		pr.P.Store32(pr.Base, w.seq)
		pr.P.Store32(pr.Base+markerLimit, 0xF00D0000+w.seq)
		pr.P.Store32(pr.Base, w.seq|recovery.MarkerCommit)
	}
	pr.Sys.Sync()
	if err := pr.Ship.ReleaseShip(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	r2.Kill()
	if err := dsm.Verify(pr.Seg, r2.Consumer(), shared); err != nil {
		t.Fatalf("fresh replica did not converge on the promoted primary: %v", err)
	}
	if got := r2.Stats.SnapshotsApplied.Load(); got == 0 {
		t.Fatal("catch-up across the cut did not use a snapshot")
	}
}

// TestPromoteLaggardCandidate promotes a candidate whose ack trails the
// other replica's (the laggard wins the promotion because the leader
// died too): the loss bound is exactly head − candidate watermark, and
// the better-replicated survivor must discard its unacked suffix by
// resyncing under the granted epoch.
func TestPromoteLaggardCandidate(t *testing.T) {
	ln, dial := NewMemTransport()
	_, prod, ship := newProducer(t, ln, Config{FlushRecords: 8})
	var target atomic.Value // DialFunc: retargeted at the promoted primary later
	target.Store(DialFunc(dial))
	redial := func() (net.Conn, error) { return target.Load().(DialFunc)() }

	cand := connectReplica(t, DialFunc(redial))
	cand.TrackMarkers(markerLimit)
	ahead := connectReplica(t, DialFunc(redial))
	ahead.TrackMarkers(markerLimit)

	w := &txnWriter{prod: prod}
	for i := 0; i < 8; i++ {
		w.commit(3)
	}
	if err := ship.ReleaseShip(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	candMark := w.recs

	// The candidate goes dark; the other replica keeps acking.
	cand.Kill()
	for i := 0; i < 8; i++ {
		w.commit(3)
	}
	if err := ship.ReleaseShip(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	head := w.recs
	ahead.Kill()
	if got := ahead.LastSeq(); got != head {
		t.Fatalf("survivor acked %d, want head %d", got, head)
	}

	a := &Authority{Cur: Grant{Epoch: ship.Epoch(), Token: 7}}
	res, err := Promote(a, cand, "laggard", head, PromoteHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Watermark != candMark {
		t.Fatalf("watermark = %d, want the candidate's ack %d", res.Watermark, candMark)
	}
	if res.Lost != head-candMark {
		t.Fatalf("lost = %d, want head-watermark = %d", res.Lost, head-candMark)
	}

	ln2, dial2 := NewMemTransport()
	pr, err := Takeover(cand.Image(), res.Grant, res.Watermark, ln2, TakeoverConfig{
		Disk: ramdisk.New(),
		Ship: Config{FlushRecords: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Ship.Close()

	// The survivor reconnects to the new primary. Its cursor is AHEAD of
	// the promoted watermark under a dead epoch, so the welcome forces a
	// full resync: the unacked suffix it holds is discarded, not merged.
	target.Store(DialFunc(dial2))
	if err := ahead.Connect(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		w.seq++
		pr.P.Store32(pr.Base, w.seq)
		pr.P.Store32(pr.Base+markerLimit, 0xF00D0000+w.seq)
		pr.P.Store32(pr.Base, w.seq|recovery.MarkerCommit)
	}
	pr.Sys.Sync()
	if err := pr.Ship.ReleaseShip(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	ahead.Kill()
	if err := dsm.Verify(pr.Seg, ahead.Consumer(), shared); err != nil {
		t.Fatalf("survivor did not converge on the promoted timeline: %v", err)
	}
	if got := ahead.Epoch(); got != res.Grant.Epoch {
		t.Fatalf("survivor epoch = %d, want granted %d", got, res.Grant.Epoch)
	}
}

// TestPromoteResumesAfterCoordinatorCrash kills the coordinator right
// after CommitGrant and runs Promote again: the second run must finish
// (burning one epoch is fine — epochs only move forward) and leave
// exactly one valid grant.
func TestPromoteResumesAfterCoordinatorCrash(t *testing.T) {
	ln, dial := NewMemTransport()
	_, prod, ship := newProducer(t, ln, Config{FlushRecords: 8})
	r := connectReplica(t, dial)
	r.TrackMarkers(markerLimit)

	w := &txnWriter{prod: prod}
	for i := 0; i < 6; i++ {
		w.commit(2)
	}
	if err := ship.ReleaseShip(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	a := &Authority{Cur: Grant{Epoch: ship.Epoch(), Token: 7}}
	boom := errors.New("coordinator crash")
	_, err := Promote(a, r, "standby", w.recs, PromoteHooks{
		After: func(phase string) error {
			if phase == PhaseCommit {
				return boom
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("crash hook did not abort the promotion: %v", err)
	}

	res, err := Promote(a, r, "standby", w.recs, PromoteHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Validate(res.Grant) {
		t.Fatal("resumed promotion's grant must validate")
	}
	if res.Watermark != w.recs || res.Lost != 0 {
		t.Fatalf("resumed watermark=%d lost=%d, want %d and 0", res.Watermark, res.Lost, w.recs)
	}
	if got := r.Epoch(); got != res.Grant.Epoch {
		t.Fatalf("replica epoch = %d, want %d", got, res.Grant.Epoch)
	}
}

// TestReplicaFencesStaleWelcome hand-crafts a shipper whose welcome
// carries a generation behind the replica's: the replica must refuse
// the session with ErrFenced rather than roll back behind the promoted
// timeline it acknowledged.
func TestReplicaFencesStaleWelcome(t *testing.T) {
	ln, dial := NewMemTransport()
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		if _, _, err := readFrame(c); err != nil {
			return
		}
		c.Write(encodeFrame(typeWelcome, encodeWelcome(welcome{
			startSeq: 0,
			epoch:    2, // behind the replica's generation
			segSize:  shared,
		})))
	}()

	r, err := NewReplica(dial, shared)
	if err != nil {
		t.Fatal(err)
	}
	r.SetEpoch(5)
	err = r.Connect()
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("stale welcome error = %v, want ErrFenced", err)
	}
	if got := r.Stats.Fenced.Load(); got != 1 {
		t.Fatalf("fenced sessions = %d, want 1", got)
	}
}

// TestRetryDialerFlakyListener exercises the bounded-retry dialer
// against a listener that refuses the first dials: the retry loop must
// absorb the flake, and exhaustion must surface the last error.
func TestRetryDialerFlakyListener(t *testing.T) {
	var calls atomic.Int32
	flaky := func() (net.Conn, error) {
		if calls.Add(1) <= 3 {
			return nil, fmt.Errorf("connection refused (attempt %d)", calls.Load())
		}
		a, b := net.Pipe()
		go a.Close()
		return b, nil
	}
	dial := RetryDialer(flaky, RetryConfig{Attempts: 5, Base: time.Millisecond, Max: 4 * time.Millisecond})
	c, err := dial()
	if err != nil {
		t.Fatalf("retry did not absorb a 3-dial flake: %v", err)
	}
	c.Close()
	if got := calls.Load(); got != 4 {
		t.Fatalf("dial attempts = %d, want 4 (3 failures + 1 success)", got)
	}

	// Exhaustion: every attempt fails, the last error comes back wrapped.
	sentinel := errors.New("still down")
	calls.Store(0)
	down := func() (net.Conn, error) { calls.Add(1); return nil, sentinel }
	dial = RetryDialer(down, RetryConfig{Attempts: 3, Base: time.Millisecond, Max: 2 * time.Millisecond})
	if _, err := dial(); !errors.Is(err, sentinel) {
		t.Fatalf("exhaustion error = %v, want wrapped %v", err, sentinel)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("dial attempts = %d, want the configured 3", got)
	}
}
