package logship

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// DialFunc opens one connection to a shipper. Replicas hold a DialFunc
// rather than a net.Conn so they can redial after a crash or disconnect.
type DialFunc func() (net.Conn, error)

// TCPDialer returns a DialFunc for a shipper listening at addr, with the
// default bounded-retry policy: a primary restarting after a crash takes
// longer than one dial, and a terminal first-dial failure would orphan
// the replica.
func TCPDialer(addr string) DialFunc {
	return TCPDialerWith(addr, RetryConfig{})
}

// TCPDialerWith is TCPDialer with an explicit retry policy — most
// usefully a Stop channel, so a draining standby abandons its redial
// schedule promptly.
func TCPDialerWith(addr string, cfg RetryConfig) DialFunc {
	return RetryDialer(func() (net.Conn, error) { return net.Dial("tcp", addr) }, cfg)
}

// RetryConfig tunes RetryDialer.
type RetryConfig struct {
	// Attempts bounds the dials per call (default 5); the last error is
	// returned when they are exhausted.
	Attempts int
	// Base is the first backoff (default 10ms); each retry doubles it up
	// to Max (default 2s).
	Base time.Duration
	Max  time.Duration
	// Seed drives the deterministic jitter stream (default 1).
	Seed uint64
	// Stop cancels the retry schedule: a closed channel makes the dialer
	// return ErrDialStopped promptly, even mid-backoff, instead of
	// sleeping out the remaining schedule. A draining or demoted daemon
	// closes it so teardown never blocks on a retry budget.
	Stop <-chan struct{}
}

func (c *RetryConfig) fill() {
	if c.Attempts <= 0 {
		c.Attempts = 5
	}
	if c.Base <= 0 {
		c.Base = 10 * time.Millisecond
	}
	if c.Max <= 0 {
		c.Max = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// ErrDialStopped reports a dial canceled by RetryConfig.Stop before a
// connection was made.
var ErrDialStopped = errors.New("logship: dial stopped")

// RetryDialer wraps dial with bounded retry: exponential backoff plus up
// to 50% jitter from a deterministic xorshift stream, so a fleet of
// replicas redialing a restarted primary spreads out instead of
// thundering. Closing cfg.Stop cancels promptly, even mid-backoff. The
// returned DialFunc is safe for concurrent use.
func RetryDialer(dial DialFunc, cfg RetryConfig) DialFunc {
	cfg.fill()
	var mu sync.Mutex
	rng := cfg.Seed
	jitter := func(d time.Duration) time.Duration {
		mu.Lock()
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		j := rng
		mu.Unlock()
		if d <= 1 {
			return 0
		}
		return time.Duration(j % uint64(d/2))
	}
	return func() (net.Conn, error) {
		backoff := cfg.Base
		var lastErr error
		for i := 0; i < cfg.Attempts; i++ {
			if i > 0 {
				t := time.NewTimer(backoff + jitter(backoff))
				select {
				case <-t.C:
				case <-cfg.Stop:
					t.Stop()
					return nil, ErrDialStopped
				}
				backoff *= 2
				if backoff > cfg.Max {
					backoff = cfg.Max
				}
			}
			select {
			case <-cfg.Stop:
				return nil, ErrDialStopped
			default:
			}
			c, err := dial()
			if err == nil {
				return c, nil
			}
			lastErr = err
		}
		return nil, fmt.Errorf("logship: dial failed after %d attempts: %w", cfg.Attempts, lastErr)
	}
}

// memAddr is the mem transport's net.Addr.
type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "mem" }

// memListener is an in-process net.Listener over net.Pipe connections:
// the deterministic transport the logship tests run on. Pipe writes are
// synchronous (a Write completes only when the peer has read it), which
// makes backpressure visible and timing-independent.
type memListener struct {
	ch   chan net.Conn
	done chan struct{}
}

// NewMemTransport returns a connected in-memory listener and a dialer
// for it. The listener's Accept and the dialer may be used from any
// goroutine; Close unblocks both sides.
func NewMemTransport() (net.Listener, DialFunc) {
	l := &memListener{ch: make(chan net.Conn), done: make(chan struct{})}
	dial := func() (net.Conn, error) {
		server, client := net.Pipe()
		select {
		case l.ch <- server:
			return client, nil
		case <-l.done:
			server.Close()
			client.Close()
			return nil, fmt.Errorf("logship: mem transport closed")
		}
	}
	return l, dial
}

// Accept implements net.Listener.
func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener.
func (l *memListener) Close() error {
	select {
	case <-l.done:
	default:
		close(l.done)
	}
	return nil
}

// Addr implements net.Listener.
func (l *memListener) Addr() net.Addr { return memAddr{} }
