package logship

import (
	"fmt"
	"net"
)

// DialFunc opens one connection to a shipper. Replicas hold a DialFunc
// rather than a net.Conn so they can redial after a crash or disconnect.
type DialFunc func() (net.Conn, error)

// TCPDialer returns a DialFunc for a shipper listening at addr.
func TCPDialer(addr string) DialFunc {
	return func() (net.Conn, error) { return net.Dial("tcp", addr) }
}

// memAddr is the mem transport's net.Addr.
type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "mem" }

// memListener is an in-process net.Listener over net.Pipe connections:
// the deterministic transport the logship tests run on. Pipe writes are
// synchronous (a Write completes only when the peer has read it), which
// makes backpressure visible and timing-independent.
type memListener struct {
	ch   chan net.Conn
	done chan struct{}
}

// NewMemTransport returns a connected in-memory listener and a dialer
// for it. The listener's Accept and the dialer may be used from any
// goroutine; Close unblocks both sides.
func NewMemTransport() (net.Listener, DialFunc) {
	l := &memListener{ch: make(chan net.Conn), done: make(chan struct{})}
	dial := func() (net.Conn, error) {
		server, client := net.Pipe()
		select {
		case l.ch <- server:
			return client, nil
		case <-l.done:
			server.Close()
			client.Close()
			return nil, fmt.Errorf("logship: mem transport closed")
		}
	}
	return l, dial
}

// Accept implements net.Listener.
func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener.
func (l *memListener) Close() error {
	select {
	case <-l.done:
	default:
		close(l.done)
	}
	return nil
}

// Addr implements net.Listener.
func (l *memListener) Addr() net.Addr { return memAddr{} }
