package logship

// Differential and regression tests for the logcursor port of the
// replica apply path: the pre-cursor applyBatch/track, frozen verbatim,
// must produce byte-identical replica images on in-domain batches, and
// the one intentional divergence — marker classification now uses the
// shared logcursor.IsMarker rule (any whole-word store in the marker
// area) instead of the replica's private offset-0-only rule, so the
// undo ledger brackets transactions exactly as crash recovery does —
// is pinned against recovery.Replay itself.

import (
	"bytes"
	"testing"

	"lvm/internal/core"
	"lvm/internal/logcursor"
	"lvm/internal/logrec"
	"lvm/internal/recovery"
)

// wireRec encodes one wire record (segment-offset addressed).
func wireRec(off, val uint32, size uint16) []byte {
	var b [logrec.Size]byte
	logrec.Record{Addr: off, Value: val, WriteSize: size}.Encode(b[:])
	return b[:]
}

// legacyApplyBatch is Replica.applyBatch as it stood before the
// logcursor unification, including its private marker rule in
// legacyTrack.
func legacyApplyBatch(r *Replica, h batchHeader, records []byte) bool {
	for i := uint32(0); i < h.count; i++ {
		rec := logrec.Decode(records[i*logrec.Size:])
		if !recovery.ValidWrite(rec.Addr, rec.WriteSize, r.size) {
			return false
		}
		if r.markerLimit > 0 {
			legacyTrack(r, rec)
		}
		r.cons.ApplyRecord(rec.Addr, rec.Value, rec.WriteSize)
	}
	return true
}

func legacyTrack(r *Replica, rec logrec.Record) {
	if rec.Addr == 0 && rec.WriteSize == 4 {
		if rec.Value&recovery.MarkerCommit != 0 {
			r.undo = r.undo[:0]
			r.inflight = false
			r.inflightUnknown = false
			return
		}
		r.undo = append(r.undo[:0], undoWord{0, r.cons.Word(0)})
		r.inflight = true
		r.inflightUnknown = false
		return
	}
	if !r.inflight {
		return
	}
	for w := rec.Addr &^ 3; w < rec.Addr+uint32(rec.WriteSize); w += 4 {
		r.undo = append(r.undo, undoWord{w, r.cons.Word(w)})
	}
}

func newBareReplica(t *testing.T, size uint32, markers bool) *Replica {
	t.Helper()
	r, err := NewReplica(nil, size)
	if err != nil {
		t.Fatal(err)
	}
	if markers {
		r.TrackMarkers(16)
	}
	return r
}

// TestApplyBatchMatchesLegacy feeds identical batch streams — committed
// transactions, sub-word writes, an offset-0 marker protocol, and a
// corrupt tail — through the cursor-based applyBatch and the frozen
// legacy loop, requiring byte-identical images, identical verdicts, and
// identical undo-ledger state.
func TestApplyBatchMatchesLegacy(t *testing.T) {
	const size = 4 * core.PageSize
	batches := [][]byte{
		bytes.Join([][]byte{
			wireRec(0, 1, 4), // begin 1
			wireRec(0x100, 0xAABBCCDD, 4),
			wireRec(0x104, 0xBEEF, 2),
			wireRec(0x107, 0x7F, 1),
			wireRec(0, 1|recovery.MarkerCommit, 4), // commit 1
		}, nil),
		bytes.Join([][]byte{
			wireRec(0, 2, 4), // begin 2, never commits: ledger stays open
			wireRec(0x200, 99, 4),
		}, nil),
		bytes.Join([][]byte{
			wireRec(0x204, 100, 4),
			wireRec(0x300, 5, 7), // impossible size: quarantine here
			wireRec(0x304, 6, 4),
		}, nil),
	}
	cur := newBareReplica(t, size, true)
	leg := newBareReplica(t, size, true)
	for bi, b := range batches {
		h := batchHeader{count: uint32(len(b) / logrec.Size)}
		okC := cur.applyBatch(h, b)
		okL := legacyApplyBatch(leg, h, b)
		if okC != okL {
			t.Fatalf("batch %d verdicts differ: cursor %v legacy %v", bi, okC, okL)
		}
		if !bytes.Equal(cur.Image(), leg.Image()) {
			t.Fatalf("batch %d: images diverged", bi)
		}
		if len(cur.undo) != len(leg.undo) || cur.inflight != leg.inflight {
			t.Fatalf("batch %d: ledger diverged: %d/%v vs %d/%v",
				bi, len(cur.undo), cur.inflight, len(leg.undo), leg.inflight)
		}
		for i := range cur.undo {
			if cur.undo[i] != leg.undo[i] {
				t.Fatalf("batch %d: undo[%d] = %+v vs %+v", bi, i, cur.undo[i], leg.undo[i])
			}
		}
	}
	if cur.err == nil {
		t.Fatalf("corrupt batch did not set the session error")
	}
}

// TestTrackMarkerAreaMatchesRecovery pins the intentional divergence:
// the replica's old private rule only recognized markers at offset 0,
// so a marker word elsewhere in the area (which recovery's replay DOES
// treat as a transaction bracket) split the two consumers' notions of
// "committed". Now both use logcursor.IsMarker: after a rollback, the
// replica must hold exactly the state recovery's committed view
// reconstructs from the same stream.
func TestTrackMarkerAreaMatchesRecovery(t *testing.T) {
	const size = 4 * core.PageSize
	// A stream whose second transaction brackets with a marker word at
	// offset 4 and never commits.
	stream := [][]byte{
		wireRec(0, 1, 4),
		wireRec(0x100, 11, 4),
		wireRec(0, 1|recovery.MarkerCommit, 4),
		wireRec(4, 2, 4), // begin via a non-zero marker word
		wireRec(0x104, 22, 4),
		// crash: no commit
	}
	rep := newBareReplica(t, size, true)
	b := bytes.Join(stream, nil)
	if !rep.applyBatch(batchHeader{count: uint32(len(b) / logrec.Size)}, b) {
		t.Fatalf("in-domain batch quarantined: %v", rep.err)
	}
	if _, err := rep.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := rep.Consumer().Word(0x104); got != 0 {
		t.Fatalf("uncommitted write survived rollback: %d (legacy bug: offset-4 marker not tracked)", got)
	}
	if got := rep.Consumer().Word(0x100); got != 11 {
		t.Fatalf("committed write lost in rollback: %d", got)
	}

	// The committed view of the SAME wire bytes — the walk recovery's
	// replay runs — must agree with the rolled-back replica on every
	// data word outside the marker area.
	committed := make([]byte, size)
	st := logcursor.Run(
		logcursor.NewBytesSource(b, size),
		logcursor.NewWalker(logcursor.Config{
			View: logcursor.Committed, MarkerLimit: 16, End: uint32(len(b)),
			Apply: func(r logcursor.Rec) {
				for i := 0; i < int(r.Size); i++ {
					committed[r.Off+uint32(i)] = byte(r.Value >> (8 * i))
				}
			},
		}))
	if st.Quarantined() || st.Txns != 1 {
		t.Fatalf("committed view of the stream: %+v", st)
	}
	img := rep.Image()
	if !bytes.Equal(img[16:], committed[16:]) {
		t.Fatalf("rolled-back replica differs from the committed view")
	}
}
