package logship

import (
	"errors"
	"net"
	"testing"
	"time"

	"lvm/internal/compact"
	"lvm/internal/core"
	"lvm/internal/dsm"
	"lvm/internal/logrec"
	"lvm/internal/ramdisk"
)

const shared = 8 * core.PageSize

// newProducer builds a simulated machine with an LVM producer whose
// writes append to a hardware log, plus a shipper serving ln.
func newProducer(t *testing.T, ln net.Listener, cfg Config) (*core.System, *dsm.LVMProducer, *Shipper) {
	t.Helper()
	sys := core.NewSystem(core.Config{NumCPUs: 2, MemFrames: 8192})
	p := sys.NewProcess(0, sys.NewAddressSpace())
	prod, err := dsm.NewLVMProducer(sys, p, shared, 256)
	if err != nil {
		t.Fatal(err)
	}
	s := NewShipper(sys, prod.Segment(), prod.LogSegment(), ln, cfg)
	t.Cleanup(func() { s.Close() })
	return sys, prod, s
}

func connectReplica(t *testing.T, dial DialFunc) *Replica {
	t.Helper()
	r, err := NewReplica(dial, shared)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Connect(); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestShipKillReconnect is the acceptance scenario: a seeded workload
// streams to two replicas over the deterministic in-memory transport,
// one replica is killed mid-stream and reconnects, and both converge
// byte-identical to the producer.
func TestShipKillReconnect(t *testing.T) {
	ln, dial := NewMemTransport()
	sys, prod, ship := newProducer(t, ln, Config{FlushRecords: 8})
	ra := connectReplica(t, dial)
	rb := connectReplica(t, dial)

	write := func(i uint32) { prod.Write((i*52)%shared&^3, 0xA000+i) }

	// First tranche streams to both replicas.
	for i := uint32(0); i < 60; i++ {
		write(i)
		if i%10 == 9 {
			if err := ship.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := ship.ReleaseShip(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Crash replica B mid-stream; the producer keeps going.
	rb.Kill()
	bSeq := rb.LastSeq()
	for i := uint32(60); i < 140; i++ {
		write(i)
		if i%10 == 9 {
			if err := ship.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := ship.ReleaseShip(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// B rejoins from its last acked sequence and is caught up from the
	// shipper's log, then both replicas synchronize on a final release.
	if err := rb.Connect(); err != nil {
		t.Fatal(err)
	}
	for i := uint32(140); i < 160; i++ {
		write(i)
	}
	if err := ship.ReleaseShip(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	for name, r := range map[string]*Replica{"A": ra, "B": rb} {
		if err := dsm.Verify(prod.Segment(), r.Consumer(), shared); err != nil {
			t.Fatalf("replica %s: %v", name, err)
		}
	}
	if ship.Consumers() != 2 {
		t.Fatalf("consumers = %d, want 2", ship.Consumers())
	}
	if bSeq == 0 {
		t.Fatal("replica B never acked before the crash")
	}
	if got := ship.Stats.CatchupRecords.Load(); got == 0 {
		t.Fatal("reconnect did not trigger catch-up")
	}
	if got := rb.Stats.Reconnects.Load(); got != 1 {
		t.Fatalf("replica B reconnects = %d, want 1", got)
	}

	// Both sides' counters surface through the metrics registries.
	snap := sys.MetricsSnapshot()
	if snap.Counters["logship.batches_shipped"] == 0 {
		t.Fatal("producer snapshot missing logship counters")
	}
	if rb.System().MetricsSnapshot().Counters["logship.replica_records_applied"] == 0 {
		t.Fatal("replica snapshot missing logship counters")
	}
}

// TestShipTCPSmoke runs one replica over real TCP loopback.
func TestShipTCPSmoke(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback TCP: %v", err)
	}
	_, prod, ship := newProducer(t, ln, Config{})
	r := connectReplica(t, TCPDialer(ln.Addr().String()))
	for i := uint32(0); i < 200; i++ {
		prod.Write((i*36)%shared&^3, 0xC000+i)
	}
	if err := ship.ReleaseShip(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := dsm.Verify(prod.Segment(), r.Consumer(), shared); err != nil {
		t.Fatal(err)
	}
	r.Kill()
}

// stuckConsumer handshakes like a replica and then never reads again —
// the pathological slow consumer the backpressure policy exists for.
func stuckConsumer(t *testing.T, dial DialFunc) net.Conn {
	t.Helper()
	c, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if _, err := c.Write(encodeFrame(typeHello, encodeHello(hello{segSize: shared}))); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := readFrame(c); err != nil || typ != typeWelcome {
		t.Fatalf("handshake: type %d err %v", typ, err)
	}
	return c
}

// TestBackpressureDrop: with PolicyDrop a consumer whose window is full
// is disconnected instead of growing an unbounded backlog.
func TestBackpressureDrop(t *testing.T) {
	ln, dial := NewMemTransport()
	_, prod, ship := newProducer(t, ln, Config{FlushRecords: 1, Window: 1, OnFull: PolicyDrop})
	stuckConsumer(t, dial)

	for i := uint32(0); i < 64 && ship.Stats.Drops.Load() == 0; i++ {
		prod.Write(i*4, i)
		if err := ship.FlushAll(); err != nil {
			t.Fatal(err)
		}
	}
	if ship.Stats.Drops.Load() == 0 {
		t.Fatal("stuck consumer was never dropped")
	}
	if err := ship.Flush(); err != nil { // sweeps the dead connection
		t.Fatal(err)
	}
	if n := ship.Consumers(); n != 0 {
		t.Fatalf("consumers = %d after drop, want 0", n)
	}
}

// TestBackpressureStall: with PolicyStall the shipper waits for the
// window, counts the stall, and drops the consumer only after the
// timeout — release latency is bounded, memory always is.
func TestBackpressureStall(t *testing.T) {
	ln, dial := NewMemTransport()
	_, prod, ship := newProducer(t, ln, Config{
		FlushRecords: 1, Window: 1, OnFull: PolicyStall, StallTimeout: 20 * time.Millisecond,
	})
	stuckConsumer(t, dial)

	for i := uint32(0); i < 64 && ship.Stats.Drops.Load() == 0; i++ {
		prod.Write(i*4, i)
		if err := ship.FlushAll(); err != nil {
			t.Fatal(err)
		}
	}
	if ship.Stats.Stalls.Load() == 0 {
		t.Fatal("full window never stalled the shipper")
	}
	if ship.Stats.Drops.Load() == 0 {
		t.Fatal("stalled consumer was never dropped after the timeout")
	}
}

// fakeServer accepts one replica connection and hands the test direct
// control of the wire.
func fakeServer(t *testing.T, ln net.Listener) net.Conn {
	t.Helper()
	c, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	typ, payload, err := readFrame(c)
	if err != nil || typ != typeHello {
		t.Fatalf("hello: type %d err %v", typ, err)
	}
	h, err := decodeHello(payload)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(encodeFrame(typeWelcome, encodeWelcome(welcome{
		startSeq: h.lastSeq, epoch: 1, segSize: h.segSize,
	}))); err != nil {
		t.Fatal(err)
	}
	return c
}

func encodeTestBatch(base, end uint64, recs ...logrec.Record) []byte {
	var records []byte
	var buf [logrec.Size]byte
	for _, rec := range recs {
		rec.Encode(buf[:])
		records = append(records, buf[:]...)
	}
	return encodeFrame(typeBatch, encodeBatch(batchHeader{
		baseSeq: base, endSeq: end, count: uint32(len(recs)),
	}, records))
}

// TestReplicaQuarantinesCorruptFrame: a replica applies clean batches,
// then a frame whose CRC fails ends the session unacked; the applied
// prefix and acked cursor survive for the next connect.
func TestReplicaQuarantinesCorruptFrame(t *testing.T) {
	ln, dial := NewMemTransport()
	r, err := NewReplica(dial, shared)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- r.Connect() }()
	c := fakeServer(t, ln)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	good := encodeTestBatch(0, 2,
		logrec.Record{Addr: 16, Value: 0x11111111, WriteSize: 4},
		logrec.Record{Addr: 17, Value: 0xAB, WriteSize: 1},
	)
	if _, err := c.Write(good); err != nil {
		t.Fatal(err)
	}
	if typ, payload, err := readFrame(c); err != nil || typ != typeAck {
		t.Fatalf("ack: type %d err %v", typ, err)
	} else if seq, _ := decodeAck(payload); seq != 2 {
		t.Fatalf("acked seq = %d, want 2", seq)
	}

	bad := encodeTestBatch(2, 3, logrec.Record{Addr: 20, Value: 0x22222222, WriteSize: 4})
	bad[headerSize] ^= 0x01 // corrupt the payload under the CRC
	if _, err := c.Write(bad); err != nil {
		t.Fatal(err)
	}
	r.Kill() // joins the consume goroutine, which quarantined and exited
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("session error = %v, want ErrCorrupt", r.Err())
	}
	if r.LastSeq() != 2 {
		t.Fatalf("lastSeq = %d, want 2 (corrupt frame must not ack)", r.LastSeq())
	}
	if got := r.Consumer().Word(16); got != 0x1111AB11 {
		t.Fatalf("word 16 = %#x, want 0x1111AB11", got)
	}
	if r.Stats.QuarantinedFrames.Load() != 1 {
		t.Fatalf("quarantined frames = %d, want 1", r.Stats.QuarantinedFrames.Load())
	}
}

// TestReplicaQuarantinesInvalidRecord: a structurally valid frame whose
// record fails the recovery validation rules stops the apply at the
// damage; nothing past it lands and the batch is never acked.
func TestReplicaQuarantinesInvalidRecord(t *testing.T) {
	ln, dial := NewMemTransport()
	r, err := NewReplica(dial, shared)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- r.Connect() }()
	c := fakeServer(t, ln)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	frame := encodeTestBatch(0, 3,
		logrec.Record{Addr: 8, Value: 1, WriteSize: 4},
		logrec.Record{Addr: shared + 64, Value: 2, WriteSize: 4}, // out of range
		logrec.Record{Addr: 12, Value: 3, WriteSize: 4},
	)
	if _, err := c.Write(frame); err != nil {
		t.Fatal(err)
	}
	r.Kill()
	if r.Err() == nil {
		t.Fatal("invalid record did not end the session")
	}
	if r.LastSeq() != 0 {
		t.Fatalf("lastSeq = %d, want 0", r.LastSeq())
	}
	if got := r.Consumer().Word(8); got != 1 {
		t.Fatalf("record before the damage did not apply: word 8 = %#x", got)
	}
	if got := r.Consumer().Word(12); got != 0 {
		t.Fatalf("record past the damage applied: word 12 = %#x", got)
	}
	if r.Stats.QuarantinedRecords.Load() != 2 {
		t.Fatalf("quarantined records = %d, want 2", r.Stats.QuarantinedRecords.Load())
	}
}

// TestRebaseForcesResync: after the producer rewinds its log generation,
// a reconnecting replica's stale-epoch hello negotiates a full replay
// from sequence zero, which converges because records apply in order.
func TestRebaseForcesResync(t *testing.T) {
	ln, dial := NewMemTransport()
	_, prod, ship := newProducer(t, ln, Config{FlushRecords: 8})
	r := connectReplica(t, dial)

	for i := uint32(0); i < 50; i++ {
		prod.Write((i*28)%shared&^3, 0xE000+i)
	}
	if err := ship.ReleaseShip(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	r.Kill()
	if r.LastSeq() == 0 {
		t.Fatal("replica never acked")
	}

	if err := ship.Rebase(); err != nil {
		t.Fatal(err)
	}
	if err := r.Connect(); err != nil {
		t.Fatal(err)
	}
	if err := ship.ReleaseShip(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := dsm.Verify(prod.Segment(), r.Consumer(), shared); err != nil {
		t.Fatal(err)
	}
	if ship.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", ship.Epoch())
	}
}

// TestShipAcrossCompaction is the acceptance scenario for checkpointed
// compaction under replication: replica B dies, the producer compacts its
// log (the cut bounded by live replica A's acks), and B reconnects to a
// log that no longer holds the records it missed. B must converge via the
// snapshot catch-up path — image plus live tail — without the shipper
// bumping its epoch (no full resync), while A streams straight through
// the compaction untouched.
func TestShipAcrossCompaction(t *testing.T) {
	ln, dial := NewMemTransport()
	sys, prod, ship := newProducer(t, ln, Config{FlushRecords: 8})
	mgr, err := compact.New(sys, compact.Options{
		Data: prod.Segment(),
		Log:  prod.LogSegment(),
		Disk: ramdisk.New(),
		Ship: ship,
	})
	if err != nil {
		t.Fatal(err)
	}
	ra := connectReplica(t, dial)
	rb := connectReplica(t, dial)

	write := func(i uint32) { prod.Write((i*44)%shared&^3, 0xC000+i) }

	// Both replicas ack the first tranche; then B dies.
	for i := uint32(0); i < 60; i++ {
		write(i)
	}
	if err := ship.ReleaseShip(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	rb.Kill()
	bSeq := rb.LastSeq()
	if bSeq == 0 {
		t.Fatal("replica B never acked before the crash")
	}

	// More writes reach only A, then the producer compacts. A has acked
	// everything, so the whole physical log is cut; the records B is
	// missing no longer exist anywhere but in the checkpoint image.
	for i := uint32(60); i < 140; i++ {
		write(i)
	}
	if err := ship.ReleaseShip(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Compact(nil); err != nil {
		t.Fatal(err)
	}
	if ship.Base() == 0 {
		t.Fatal("compaction did not advance the shipper base")
	}
	if bSeq >= ship.Base() {
		t.Fatalf("test premise broken: B's cursor %d survived the cut at %d", bSeq, ship.Base())
	}

	// Post-compaction writes ship with logical sequences continuing past
	// the cut; then B reconnects from its pre-cut cursor.
	for i := uint32(140); i < 200; i++ {
		write(i)
	}
	if err := ship.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := rb.Connect(); err != nil {
		t.Fatal(err)
	}
	for i := uint32(200); i < 220; i++ {
		write(i)
	}
	if err := ship.ReleaseShip(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	for name, r := range map[string]*Replica{"A": ra, "B": rb} {
		if err := dsm.Verify(prod.Segment(), r.Consumer(), shared); err != nil {
			t.Fatalf("replica %s: %v", name, err)
		}
	}
	if ship.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1 (compaction must not force a resync)", ship.Epoch())
	}
	if got := ship.Stats.SnapshotsShipped.Load(); got != 1 {
		t.Fatalf("snapshots shipped = %d, want 1", got)
	}
	if got := rb.Stats.SnapshotsApplied.Load(); got != 1 {
		t.Fatalf("replica B snapshots applied = %d, want 1", got)
	}
	if got := ra.Stats.SnapshotsApplied.Load(); got != 0 {
		t.Fatalf("replica A applied %d snapshots, want 0 (it streamed through)", got)
	}
	if rb.LastSeq() != ship.SealedSeq() {
		t.Fatalf("replica B cursor = %d, want %d", rb.LastSeq(), ship.SealedSeq())
	}
}
