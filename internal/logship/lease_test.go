package logship

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"lvm/internal/dsm"
)

func TestBeatRoundTrip(t *testing.T) {
	want := Beat{Kind: BeatRenew, Epoch: 7, Seq: 42, TTL: 5_000_000}
	got, err := decodeBeat(encodeBeat(want))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("beat round trip: %+v != %+v", got, want)
	}
	if _, err := decodeBeat(make([]byte, beatSize-1)); err == nil {
		t.Fatal("short beat payload accepted")
	}
	bad := encodeBeat(want)
	bad[0] = 9
	if _, err := decodeBeat(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad beat kind error = %v, want ErrCorrupt", err)
	}
}

// TestHeartbeatFlowsToObserver ships lease heartbeats interleaved with
// batches: a tracking replica observes every beat in order, a
// non-tracking replica skips them and still converges byte-identical.
func TestHeartbeatFlowsToObserver(t *testing.T) {
	ln, dial := NewMemTransport()
	_, prod, ship := newProducer(t, ln, Config{FlushRecords: 8, Epoch: 3})

	var mu sync.Mutex
	var beats []Beat
	ra, err := NewReplica(dial, shared)
	if err != nil {
		t.Fatal(err)
	}
	ra.TrackLease(func(b Beat) {
		mu.Lock()
		beats = append(beats, b)
		mu.Unlock()
	})
	if err := ra.Connect(); err != nil {
		t.Fatal(err)
	}
	rb := connectReplica(t, dial) // no lease tracking: beats must be harmless

	// LeaseEvidence admits just-joined consumers (Heartbeat deliberately
	// does not: evidence must be gathered before the renewal decision),
	// so even an idle primary's standby hears the grant announcement.
	// With a tracking replica attached the holder reads engaged=true and
	// no acks yet.
	if engaged, acked := ship.LeaseEvidence(); !engaged || acked != 0 {
		t.Fatalf("evidence before first beat = engaged=%v acked=%d, want true/0", engaged, acked)
	}
	if err := ship.Heartbeat(Beat{Kind: BeatGrant, Epoch: 3, Seq: 1, TTL: 1000}); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 40; i++ {
		prod.Write((i*28)%shared&^3, 0xB000+i)
	}
	if err := ship.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := ship.Heartbeat(Beat{Kind: BeatRenew, Epoch: 3, Seq: 2, TTL: 1000}); err != nil {
		t.Fatal(err)
	}
	for i := uint32(40); i < 60; i++ {
		prod.Write((i*28)%shared&^3, 0xB000+i)
	}
	// The release's batch ack proves everything queued before it — both
	// beats included — was consumed: per-connection delivery is FIFO.
	if err := ship.ReleaseShip(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	got := append([]Beat(nil), beats...)
	mu.Unlock()
	if len(got) != 2 || got[0].Kind != BeatGrant || got[0].Seq != 1 ||
		got[1].Kind != BeatRenew || got[1].Seq != 2 || got[1].Epoch != 3 {
		t.Fatalf("observed beats = %+v, want grant seq 1 then renew seq 2", got)
	}
	if n := ra.Stats.BeatsSeen.Load(); n != 2 {
		t.Fatalf("tracking replica beats seen = %d, want 2", n)
	}
	if n := rb.Stats.BeatsSeen.Load(); n != 2 {
		t.Fatalf("non-tracking replica beats seen = %d, want 2", n)
	}
	if n := ship.Stats.BeatsShipped.Load(); n != 4 {
		t.Fatalf("beats shipped = %d, want 4 (2 beats × 2 consumers)", n)
	}
	// Only the tracking replica acknowledges beats — it is the lease
	// observer; the plain replica consumes them silently. Per-connection
	// delivery is FIFO both ways: the release's batch ack was written
	// after beat-ack 2, and connAcks reads them in order, so by now the
	// shipper's evidence deterministically covers beat seq 2.
	if _, acked := ship.LeaseEvidence(); acked != 2 {
		t.Fatalf("evidence acked = %d, want 2", acked)
	}
	if n := ra.Stats.BeatAcksSent.Load(); n != 2 {
		t.Fatalf("tracking replica beat acks sent = %d, want 2", n)
	}
	if n := rb.Stats.BeatAcksSent.Load(); n != 0 {
		t.Fatalf("non-tracking replica sent %d beat acks, want 0", n)
	}
	if n := ship.Stats.BeatAcks.Load(); n != 2 {
		t.Fatalf("shipper beat acks = %d, want 2", n)
	}
	for name, r := range map[string]*Replica{"tracking": ra, "plain": rb} {
		if err := dsm.Verify(prod.Segment(), r.Consumer(), shared); err != nil {
			t.Fatalf("replica %s: %v", name, err)
		}
	}
}

// TestCorruptBeatQuarantines: a lease frame with a mangled payload ends
// the session unacked, like any other corrupt frame.
func TestCorruptBeatQuarantines(t *testing.T) {
	ln, dial := NewMemTransport()
	r, err := NewReplica(dial, shared)
	if err != nil {
		t.Fatal(err)
	}
	r.TrackLease(func(Beat) { t.Error("corrupt beat reached the observer") })
	errc := make(chan error, 1)
	go func() { errc <- r.Connect() }()
	c := fakeServer(t, ln)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	bad := encodeFrame(typeLease, make([]byte, beatSize-3)) // wrong size, valid CRC
	if _, err := c.Write(bad); err != nil {
		t.Fatal(err)
	}
	r.Kill()
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("session error = %v, want ErrCorrupt", r.Err())
	}
	if r.Stats.QuarantinedFrames.Load() != 1 {
		t.Fatalf("quarantined frames = %d, want 1", r.Stats.QuarantinedFrames.Load())
	}
}

// TestFencedHelloRefusedLoudly: a consumer ahead of the shipper's epoch
// is refused with a welcome carrying the stale epoch, so Connect
// surfaces ErrFenced — the zombie classifies itself — instead of a bare
// connection error.
func TestFencedHelloRefusedLoudly(t *testing.T) {
	ln, dial := NewMemTransport()
	_, _, ship := newProducer(t, ln, Config{Epoch: 2})
	r, err := NewReplica(dial, shared)
	if err != nil {
		t.Fatal(err)
	}
	r.SetEpoch(5) // follows a promoted generation
	if err := r.Connect(); !errors.Is(err, ErrFenced) {
		t.Fatalf("connect to a stale shipper = %v, want ErrFenced", err)
	}
	if got := ship.Stats.FencedHellos.Load(); got != 1 {
		t.Fatalf("fenced hellos = %d, want 1", got)
	}
	if got := r.Stats.Fenced.Load(); got != 1 {
		t.Fatalf("replica fenced sessions = %d, want 1", got)
	}
}

// TestRetryDialerStop is the satellite regression: a dialer stuck in its
// backoff schedule must return promptly — not after the remaining
// schedule — when the stop channel closes.
func TestRetryDialerStop(t *testing.T) {
	stop := make(chan struct{})
	dial := RetryDialer(func() (net.Conn, error) {
		return nil, errors.New("refused")
	}, RetryConfig{
		Attempts: 5,
		Base:     30 * time.Second, // without cancellation this call sleeps minutes
		Max:      30 * time.Second,
		Stop:     stop,
	})
	done := make(chan error, 1)
	go func() {
		_, err := dial()
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // land mid-backoff
	start := time.Now()
	close(stop)
	select {
	case err := <-done:
		if !errors.Is(err, ErrDialStopped) {
			t.Fatalf("canceled dial error = %v, want ErrDialStopped", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("dial did not return after stop; still sleeping out the backoff")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("dial returned %v after stop, want prompt", d)
	}

	// A pre-closed stop channel refuses before the first dial attempt.
	if _, err := dial(); !errors.Is(err, ErrDialStopped) {
		t.Fatalf("pre-stopped dial error = %v, want ErrDialStopped", err)
	}
}
