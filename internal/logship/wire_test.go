package logship

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"lvm/internal/logrec"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := encodeHello(hello{lastSeq: 42, epoch: 7, segSize: 4096, flags: helloObserver})
	frame := encodeFrame(typeHello, payload)
	typ, got, err := readFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if typ != typeHello {
		t.Fatalf("type = %d", typ)
	}
	h, err := decodeHello(got)
	if err != nil {
		t.Fatal(err)
	}
	if h.lastSeq != 42 || h.epoch != 7 || h.segSize != 4096 || h.flags != helloObserver {
		t.Fatalf("hello = %+v", h)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	var records []byte
	var buf [logrec.Size]byte
	for i := 0; i < 3; i++ {
		logrec.Record{Addr: uint32(i * 4), Value: uint32(0x100 + i), WriteSize: 4}.Encode(buf[:])
		records = append(records, buf[:]...)
	}
	payload := encodeBatch(batchHeader{baseSeq: 10, endSeq: 15, count: 3}, records)
	typ, got, err := readFrame(bytes.NewReader(encodeFrame(typeBatch, payload)))
	if err != nil || typ != typeBatch {
		t.Fatalf("readFrame: %v type %d", err, typ)
	}
	h, recs, err := decodeBatch(got)
	if err != nil {
		t.Fatal(err)
	}
	if h.baseSeq != 10 || h.endSeq != 15 || h.count != 3 || len(recs) != 3*logrec.Size {
		t.Fatalf("batch = %+v, %d record bytes", h, len(recs))
	}
	if rec := logrec.Decode(recs[logrec.Size:]); rec.Value != 0x101 {
		t.Fatalf("record 1 value = %#x", rec.Value)
	}
}

func TestCorruptFrameDetected(t *testing.T) {
	frame := encodeFrame(typeAck, encodeAck(9))

	// Flip a payload bit: CRC must catch it.
	bad := append([]byte(nil), frame...)
	bad[headerSize] ^= 0x40
	if _, _, err := readFrame(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip: err = %v", err)
	}

	// Bad magic.
	bad = append([]byte(nil), frame...)
	bad[0] = 'X'
	if _, _, err := readFrame(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err = %v", err)
	}

	// Unsupported version.
	bad = append([]byte(nil), frame...)
	bad[4] = 99
	if _, _, err := readFrame(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad version: err = %v", err)
	}

	// Oversize declared length must not allocate; it must reject.
	bad = append([]byte(nil), frame...)
	put32(bad[8:], maxPayload+1)
	if _, _, err := readFrame(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversize: err = %v", err)
	}

	// Torn frame: header promises more payload than arrives.
	if _, _, err := readFrame(bytes.NewReader(frame[:len(frame)-2])); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn: err = %v", err)
	}
}

func TestBatchValidation(t *testing.T) {
	// Count disagreeing with the record bytes.
	payload := encodeBatch(batchHeader{baseSeq: 0, endSeq: 2, count: 2}, make([]byte, logrec.Size))
	if _, _, err := decodeBatch(payload); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("count mismatch: err = %v", err)
	}
	// Sequence range too small for the record count.
	payload = encodeBatch(batchHeader{baseSeq: 5, endSeq: 6, count: 2}, make([]byte, 2*logrec.Size))
	if _, _, err := decodeBatch(payload); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad range: err = %v", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	payload := encodeSnapshot(snapHeader{coverSeq: 1 << 40, segSize: 4096, off: 512}, data)
	typ, got, err := readFrame(bytes.NewReader(encodeFrame(typeSnapshot, payload)))
	if err != nil || typ != typeSnapshot {
		t.Fatalf("readFrame: %v type %d", err, typ)
	}
	h, chunk, err := decodeSnapshot(got)
	if err != nil {
		t.Fatal(err)
	}
	if h.coverSeq != 1<<40 || h.segSize != 4096 || h.off != 512 {
		t.Fatalf("snapshot header = %+v", h)
	}
	if !bytes.Equal(chunk, data) {
		t.Fatal("snapshot chunk bytes differ")
	}

	// Empty chunk and chunk escaping the segment are structural damage.
	if _, _, err := decodeSnapshot(payload[:snapHeaderSize]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty chunk: err = %v", err)
	}
	bad := encodeSnapshot(snapHeader{coverSeq: 1, segSize: 4096, off: 4000}, data)
	if _, _, err := decodeSnapshot(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("out-of-segment chunk: err = %v", err)
	}
}

// TestPhysRange pins the 64-bit catch-up offset math. The old code
// computed uint32(seq) * logrec.Size, which silently wraps for any
// sequence at or past 2^28 (offset 2^32); with a compaction base the
// physical offset is small even when sequences are huge, and out-of-range
// cursors must be explicit errors, never wrapped offsets.
func TestPhysRange(t *testing.T) {
	const big = uint64(1) << 28 // uint32(big)*16 == 0: the old overflow
	cases := []struct {
		start, end, base uint64
		logSize          uint32
		lo, hi           uint32
		wantErr          bool
		scenario         string
	}{
		{0, 4, 0, 256, 0, 64, false, "uncompacted log"},
		{big + 2, big + 4, big, 256, 32, 64, false, "huge seqs, small offsets past 2^28"},
		{big, big + 16, big - 16, 512, 256, 512, false, "boundary seq lands mid-log"},
		{10, 20, 16, 4096, 0, 0, true, "cursor predates the compaction cut"},
		{20, 10, 0, 4096, 0, 0, true, "inverted range"},
		{0, 300, 0, 4096, 0, 0, true, "range past the log end"},
	}
	for _, c := range cases {
		lo, hi, err := physRange(c.start, c.end, c.base, c.logSize)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: err = %v, wantErr %v", c.scenario, err, c.wantErr)
			continue
		}
		if err == nil && (lo != c.lo || hi != c.hi) {
			t.Errorf("%s: range = [%d,%d), want [%d,%d)", c.scenario, lo, hi, c.lo, c.hi)
		}
	}
}

func TestNegotiateStart(t *testing.T) {
	cases := []struct {
		h        hello
		epoch    uint32
		seq      uint64
		want     uint64
		scenario string
	}{
		{hello{lastSeq: 0, epoch: 0}, 1, 100, 0, "fresh replica"},
		{hello{lastSeq: 40, epoch: 1}, 1, 100, 40, "clean reconnect"},
		{hello{lastSeq: 40, epoch: 1}, 2, 100, 0, "stale epoch forces resync"},
		{hello{lastSeq: 200, epoch: 1}, 1, 100, 0, "implausible claim forces resync"},
	}
	for _, c := range cases {
		if got := negotiateStart(c.h, c.epoch, c.seq); got != c.want {
			t.Errorf("%s: start = %d, want %d", c.scenario, got, c.want)
		}
	}
}
