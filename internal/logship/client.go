package logship

import "net"

// Client frame types: the lvmd serving protocol rides on the same CRC
// framing (and the same Version) as replication, in a disjoint type
// range. The payload layouts live in internal/lvmd; this package only
// reserves the type space so a single connection can speak either
// protocol — a subscriber opens with FrameSubscribe and is then handed
// to the shard's Shipper, after which the replication frames above flow
// unchanged.
const (
	// FrameOpen / FrameOpenResp map a segment ID to a shard slot.
	FrameOpen     = byte(16)
	FrameOpenResp = byte(17)
	// FrameStore buffers one word write into the session's open
	// transaction; FrameCommit applies the buffered writes behind the
	// marker protocol and FrameCommitResp acknowledges durability.
	FrameStore      = byte(18)
	FrameCommit     = byte(19)
	FrameCommitResp = byte(20)
	// FrameRead / FrameReadResp read committed segment bytes.
	FrameRead     = byte(21)
	FrameReadResp = byte(22)
	// FrameSubscribe upgrades the connection to a replication consumer of
	// one shard's arena (the logship protocol proper takes over).
	FrameSubscribe = byte(23)
	// FrameStats / FrameStatsResp fetch a merged metrics snapshot (JSON).
	FrameStats     = byte(24)
	FrameStatsResp = byte(25)
)

// EncodeFrame wraps payload in the framed, CRC-protected wire format.
// Exported for the serving protocol (internal/lvmd), which shares the
// framing with replication.
func EncodeFrame(typ byte, payload []byte) []byte { return encodeFrame(typ, payload) }

// ReadFrame reads one frame, validating magic, version, length bound and
// CRC. Exported counterpart of EncodeFrame for the serving protocol.
func ReadFrame(r interface{ Read([]byte) (int, error) }) (typ byte, payload []byte, err error) {
	return readFrame(r)
}

// Adopt hands the shipper a connection that was accepted elsewhere (the
// lvmd daemon accepts every client on one listener and routes
// FrameSubscribe connections here). The connection runs the normal
// hello/welcome handshake and joins the broadcast set exactly as if it
// had arrived on the shipper's own listener. Safe from any goroutine;
// a shipper that is already closed just closes the connection.
func (s *Shipper) Adopt(c net.Conn) {
	s.mu.Lock()
	select {
	case <-s.closed:
		s.mu.Unlock()
		c.Close()
		return
	default:
	}
	s.wg.Add(1)
	s.mu.Unlock()
	go s.handshake(c)
}
