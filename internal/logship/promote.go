package logship

import (
	"fmt"
	"net"

	"lvm/internal/compact"
	"lvm/internal/core"
	"lvm/internal/logrec"
	"lvm/internal/ramdisk"
)

// Promotion turns a surviving replica into the primary at its acked
// watermark. The coordinator state (Authority) is tiny and durable by
// contract — in production it would live in a lease service; in the
// crash tests it survives the simulated kill — and every phase of
// Promote is idempotent, so a coordinator that dies mid-promotion simply
// runs Promote again and finishes (possibly burning an extra epoch,
// which is harmless: epochs only need to move forward).
//
// The no-split-brain argument: exactly one Grant validates at any
// moment. Until CommitGrant the old primary's grant is current (there is
// one primary, even if dead); after it, only the candidate's. A zombie
// ex-primary that wakes up holds a grant that no longer validates, and
// its wire sessions are refused on epoch alone — replicas that learned
// the promoted generation refuse its stale welcome (ErrFenced), and its
// own listener refuses hellos from the future (FencedHellos).

// Grant is a fencing token: the authority's permission to act as primary
// for one epoch.
type Grant struct {
	Epoch uint32
	Token uint64
}

// Authority is the promotion coordinator: the single durable arbiter of
// which grant is current. Zero value: no primary granted yet.
type Authority struct {
	Cur      Grant
	prepared bool
	proposed Grant
	cand     string
}

// splitmix64 is the token mixer (deterministic, seeded by epoch+cand).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ x>>30) * 0xBF58476D1CE4E5B9
	x = (x ^ x>>27) * 0x94D049BB133111EB
	return x ^ x>>31
}

// Prepare proposes the next grant for candidate cand. Re-preparing for
// the same candidate returns the same proposal (idempotent resume); a
// different candidate supersedes it.
func (a *Authority) Prepare(cand string) Grant {
	if a.prepared && a.cand == cand {
		return a.proposed
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(cand); i++ {
		h = (h ^ uint64(cand[i])) * 1099511628211
	}
	a.proposed = Grant{
		Epoch: a.Cur.Epoch + 1,
		Token: splitmix64(uint64(a.Cur.Epoch+1)<<32 ^ h),
	}
	a.cand = cand
	a.prepared = true
	return a.proposed
}

// CommitGrant installs the prepared grant as current: the moment of
// promotion. The old grant stops validating here, atomically.
func (a *Authority) CommitGrant() (Grant, error) {
	if !a.prepared {
		return Grant{}, fmt.Errorf("logship: commit without a prepared grant")
	}
	a.Cur = a.proposed
	a.prepared = false
	return a.Cur, nil
}

// Validate reports whether g is the current grant — the check every
// write path makes before acting as primary.
func (a *Authority) Validate(g Grant) bool { return g == a.Cur && g.Epoch != 0 }

// Promotion phase names, in order; PromoteHooks.After sees each one.
const (
	PhaseFreeze   = "freeze"
	PhasePrepare  = "prepare"
	PhaseCommit   = "commit"
	PhaseActivate = "activate"
)

// PromoteHooks injects crash points for the crash tests: After runs once
// the named phase's state has settled, and an error aborts the promotion
// right there (the simulated kill).
type PromoteHooks struct {
	After func(phase string) error
}

// PromoteResult reports a completed promotion.
type PromoteResult struct {
	Grant      Grant
	Watermark  uint64 // acked sequence the new primary serves from
	RolledBack int    // words undone to reach the last transaction boundary
	// Lost is the bounded data loss: records between the watermark and
	// the dead primary's head (deadHead), i.e. writes the dead primary
	// logged but never got acknowledged by this replica.
	Lost uint64
}

// Promote runs the promotion state machine over replica r: freeze (end
// the session, roll half-replicated transaction state back to the last
// commit marker), prepare and commit a grant with a bumped epoch, then
// activate (teach the replica the granted generation so every session it
// opens from now on fences the zombie). deadHead is the dead primary's
// last known head sequence; the difference to the watermark is the
// measured loss bound. Safe to call again after a crash at any phase.
func Promote(a *Authority, r *Replica, cand string, deadHead uint64, hooks PromoteHooks) (PromoteResult, error) {
	after := hooks.After
	if after == nil {
		after = func(string) error { return nil }
	}
	// Freeze: no session may be applying records while we settle state.
	r.Kill()
	rolled, err := r.Rollback()
	if err != nil {
		return PromoteResult{}, err
	}
	if err := after(PhaseFreeze); err != nil {
		return PromoteResult{}, err
	}
	g := a.Prepare(cand)
	if err := after(PhasePrepare); err != nil {
		return PromoteResult{}, err
	}
	g, err = a.CommitGrant()
	if err != nil {
		return PromoteResult{}, err
	}
	if err := after(PhaseCommit); err != nil {
		return PromoteResult{}, err
	}
	r.SetEpoch(g.Epoch)
	if err := after(PhaseActivate); err != nil {
		return PromoteResult{}, err
	}
	res := PromoteResult{Grant: g, Watermark: r.LastSeq(), RolledBack: rolled}
	if deadHead > res.Watermark {
		res.Lost = deadHead - res.Watermark
	}
	return res, nil
}

// TakeoverConfig configures the re-seeding of a primary from a promoted
// replica image.
type TakeoverConfig struct {
	// LogPages sizes the new primary's hardware log (default 256).
	LogPages uint32
	// Disk/DiskBase locate the new primary's checkpoint area; Disk is
	// required (the first act of a promoted primary is a checkpoint, so
	// its own crash recovers the promoted state, not nothing).
	Disk     ramdisk.Device
	DiskBase uint64
	// Ship tunes the new primary's shipper; Epoch and StartSeq are
	// overwritten from the grant and watermark.
	Ship Config
}

// Primary is a re-seeded producer: a fresh System whose segment holds
// the promoted image, with a compact.Manager continuing the timeline at
// the watermark and a Shipper serving the granted epoch.
type Primary struct {
	Sys    *core.System
	Seg    *core.Segment
	LogSeg *core.Segment
	P      *core.Process
	Base   core.Addr
	Mgr    *compact.Manager
	Ship   *Shipper
}

// Takeover builds the new primary from a promoted replica image: the
// image lands raw in a fresh logged segment, a compact.Manager is seeded
// with the watermark as its cut base and immediately checkpoints (making
// the promoted state durable before the first client write), and a
// shipper starts at the watermark under the granted epoch — a replica of
// the old primary that connects resumes exactly where its acks left off;
// anything behind the watermark is caught up by snapshot.
func Takeover(img []byte, g Grant, watermark uint64, ln net.Listener, cfg TakeoverConfig) (*Primary, error) {
	if cfg.Disk == nil {
		return nil, fmt.Errorf("logship: takeover needs a checkpoint device")
	}
	if cfg.LogPages == 0 {
		cfg.LogPages = 256
	}
	size := uint32(len(img))
	pages := (size + core.PageSize - 1) / core.PageSize
	sys := core.NewSystem(core.Config{
		NumCPUs:   1,
		MemFrames: int(pages) + int(cfg.LogPages) + 64,
	})
	seg := core.NewNamedSegment(sys, "promoted", size, nil)
	reg := core.NewStdRegion(sys, seg)
	ls := core.NewLogSegment(sys, cfg.LogPages)
	if err := reg.Log(ls); err != nil {
		return nil, fmt.Errorf("logship: takeover log binding: %w", err)
	}
	as := sys.NewAddressSpace()
	base, err := reg.Bind(as, 0)
	if err != nil {
		return nil, fmt.Errorf("logship: takeover binding: %w", err)
	}
	seg.RawWrite(0, img)
	shipCfg := cfg.Ship
	shipCfg.Epoch = g.Epoch
	shipCfg.StartSeq = watermark
	ship := NewShipper(sys, seg, ls, ln, shipCfg)
	mgr, err := compact.New(sys, compact.Options{
		Data: seg, Log: ls, Disk: cfg.Disk, DiskBase: cfg.DiskBase,
		Ship: ship, CutBase: watermark * logrec.Size, Epoch: g.Epoch,
	})
	if err != nil {
		ship.Close()
		return nil, err
	}
	if err := mgr.Checkpoint(nil); err != nil {
		ship.Close()
		return nil, fmt.Errorf("logship: takeover checkpoint: %w", err)
	}
	return &Primary{
		Sys: sys, Seg: seg, LogSeg: ls,
		P: sys.NewProcess(0, as), Base: base,
		Mgr: mgr, Ship: ship,
	}, nil
}
