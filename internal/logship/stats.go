package logship

import "sync/atomic"

// ShipStats are the producer-side replication counters. They are plain
// atomics rather than metrics.Shard entries because the shipping layer
// runs host goroutines (connection writers and ack readers) alongside the
// simulation thread, and shards are strictly single-writer; the stats
// surface in the producer System's MetricsSnapshot through a registered
// metrics.Collector instead, under the logship.* names below.
type ShipStats struct {
	BatchesShipped atomic.Uint64 // batch frames enqueued to consumers
	RecordsShipped atomic.Uint64 // records carried by those frames
	BytesShipped   atomic.Uint64 // wire bytes enqueued (per consumer)
	AcksReceived   atomic.Uint64 // ack frames read from consumers
	Stalls         atomic.Uint64 // enqueue waits on a full consumer window
	Drops          atomic.Uint64 // consumers dropped (policy or stall timeout)
	Joins          atomic.Uint64 // handshakes completed
	Reconnects     atomic.Uint64 // joins that resumed a previous session
	CatchupRecords atomic.Uint64 // records re-read from the log for rejoining consumers

	// SnapshotsShipped counts consumers caught up by segment image
	// because their cursor predated the compaction base; SnapshotBytes is
	// the image bytes those snapshots carried.
	SnapshotsShipped atomic.Uint64
	SnapshotBytes    atomic.Uint64

	// FencedHellos counts handshakes refused because the consumer claimed
	// a future epoch — the signature of a zombie ex-primary still serving
	// after a promotion granted its generation away.
	FencedHellos atomic.Uint64

	// BeatsShipped counts lease heartbeat frames enqueued (per consumer);
	// BeatsDropped counts heartbeats skipped because a consumer's window
	// was full — renewal is best effort, the next beat covers it.
	BeatsShipped atomic.Uint64
	BeatsDropped atomic.Uint64

	// BeatAcks counts beat acknowledgements received from lease
	// observers — the delivery evidence the holder's renewal feeds on.
	BeatAcks atomic.Uint64
}

// Collect is a metrics.Collector emitting the shipper's counters.
func (s *ShipStats) Collect(emit func(name string, v uint64)) {
	emit("logship.batches_shipped", s.BatchesShipped.Load())
	emit("logship.records_shipped", s.RecordsShipped.Load())
	emit("logship.bytes_shipped", s.BytesShipped.Load())
	emit("logship.acks_received", s.AcksReceived.Load())
	emit("logship.stalls", s.Stalls.Load())
	emit("logship.consumers_dropped", s.Drops.Load())
	emit("logship.joins", s.Joins.Load())
	emit("logship.reconnects", s.Reconnects.Load())
	emit("logship.catchup_records", s.CatchupRecords.Load())
	emit("logship.snapshots_shipped", s.SnapshotsShipped.Load())
	emit("logship.snapshot_bytes", s.SnapshotBytes.Load())
	emit("logship.fenced_hellos", s.FencedHellos.Load())
	emit("logship.beats_shipped", s.BeatsShipped.Load())
	emit("logship.beats_dropped", s.BeatsDropped.Load())
	emit("logship.beat_acks", s.BeatAcks.Load())
}

// ReplicaStats are the consumer-side counters, surfaced in the replica
// System's MetricsSnapshot the same way.
type ReplicaStats struct {
	BatchesApplied     atomic.Uint64 // batch frames applied
	RecordsApplied     atomic.Uint64 // records applied to the replica segment
	BytesReceived      atomic.Uint64 // wire bytes received
	AcksSent           atomic.Uint64 // ack frames sent
	Reconnects         atomic.Uint64 // sessions beyond the first
	QuarantinedFrames  atomic.Uint64 // frames rejected (torn, corrupt, invalid record)
	QuarantinedRecords atomic.Uint64 // records discarded with those frames

	// SnapshotsApplied counts complete segment images applied during
	// catch-up across a compaction; SnapshotBytes is their image bytes.
	SnapshotsApplied atomic.Uint64
	SnapshotBytes    atomic.Uint64

	// Fenced counts sessions refused because the shipper's welcome carried
	// an epoch behind the replica's — a zombie ex-primary trying to feed a
	// replica that already follows a promoted generation.
	Fenced atomic.Uint64

	// RolledBack counts words restored by Rollback when a promotion
	// settles the replica at its last transaction boundary.
	RolledBack atomic.Uint64

	// BeatsSeen counts lease heartbeat frames received (whether or not a
	// monitor is tracking them); BeatAcksSent counts the acknowledgements
	// a tracking replica returned as delivery evidence.
	BeatsSeen    atomic.Uint64
	BeatAcksSent atomic.Uint64
}

// Collect is a metrics.Collector emitting the replica's counters.
func (s *ReplicaStats) Collect(emit func(name string, v uint64)) {
	emit("logship.replica_batches_applied", s.BatchesApplied.Load())
	emit("logship.replica_records_applied", s.RecordsApplied.Load())
	emit("logship.replica_bytes_received", s.BytesReceived.Load())
	emit("logship.replica_acks_sent", s.AcksSent.Load())
	emit("logship.replica_reconnects", s.Reconnects.Load())
	emit("logship.replica_quarantined_frames", s.QuarantinedFrames.Load())
	emit("logship.replica_quarantined_records", s.QuarantinedRecords.Load())
	emit("logship.replica_snapshots_applied", s.SnapshotsApplied.Load())
	emit("logship.replica_snapshot_bytes", s.SnapshotBytes.Load())
	emit("logship.replica_fenced", s.Fenced.Load())
	emit("logship.replica_rolled_back", s.RolledBack.Load())
	emit("logship.replica_beats_seen", s.BeatsSeen.Load())
	emit("logship.replica_beat_acks_sent", s.BeatAcksSent.Load())
}
