// Package cycles defines the cycle-cost calibration constants for the
// simulated ParaDiGM machine used throughout the LVM reproduction.
//
// All results in the paper (Cheriton & Duda, "Logged Virtual Memory",
// SOSP 1995) are reported in CPU cycles of a 25 MHz 68040, so the entire
// reproduction is denominated in cycles. The primitive costs below are
// calibrated to Table 2 of the paper:
//
//	Operation            Total time   Bus time
//	Word write-through    6 cycles     5 cycles
//	Cache block write     9 cycles     8 cycles
//	Log-record DMA       18 cycles     8 cycles
//
// One cycle is 40 ns. The logger timestamps records with a 6.25 MHz clock,
// i.e. one timestamp tick per four CPU cycles.
package cycles

// Machine clock parameters.
const (
	// CPUMHz is the prototype's processor clock (25 MHz 68040s).
	CPUMHz = 25
	// CyclesPerSecond converts cycle counts to wall-clock rates.
	CyclesPerSecond = CPUMHz * 1_000_000
	// NanosPerCycle is the cycle time (40 ns at 25 MHz).
	NanosPerCycle = 40
	// TimestampShift converts CPU cycles to logger timestamp ticks:
	// the logger clock runs at 6.25 MHz = 25 MHz / 4.
	TimestampShift = 2
)

// Table 2: basic machine operations.
const (
	// WordWriteThroughTotal is the CPU-visible cost of a single word
	// write on a write-through page (Table 2, line 1).
	WordWriteThroughTotal = 6
	// WordWriteThroughBus is the bus occupancy of that write.
	WordWriteThroughBus = 5

	// BlockWriteTotal is the cost of writing one 16-byte cache block to
	// the second-level cache / memory (Table 2, line 2). The same cost is
	// charged for a block read (L1 line fill), which uses the bus the
	// same way in the prototype.
	BlockWriteTotal = 9
	// BlockWriteBus is the bus occupancy of a block write.
	BlockWriteBus = 8

	// LogRecordDMATotal is the cost of the logger DMAing one 16-byte log
	// record into memory (Table 2, line 3).
	LogRecordDMATotal = 18
	// LogRecordDMABus is the bus occupancy of the record DMA.
	LogRecordDMABus = 8
)

// Cache geometry (Section 4.1).
const (
	// LineSize is the cache line size of the 68040 on-chip caches and of
	// the 4 MiB second-level cache (16 bytes).
	LineSize = 16
	// LineShift is log2(LineSize).
	LineShift = 4
	// L1DataBytes is the on-chip data-cache capacity. The 68040 has an
	// 8 KiB split I/D cache; we model the 4 KiB data half.
	L1DataBytes = 4096
	// L1Lines is the number of direct-mapped L1 data lines.
	L1Lines = L1DataBytes / LineSize
	// L2Bytes is the shared second-level cache capacity (4 MiB).
	L2Bytes = 4 << 20

	// L1HitCycles is the cost of an L1 data-cache hit.
	L1HitCycles = 1
	// L1FillCycles is the cost of filling an L1 line from the
	// second-level cache (a block read over the bus).
	L1FillCycles = BlockWriteTotal
	// L1FillBus is the bus occupancy of the fill.
	L1FillBus = BlockWriteBus
)

// Logger device parameters (Section 3.1).
const (
	// LoggerFIFOEntries is the combined capacity of the logger's write
	// FIFO and log-record FIFO ("The FIFOs hold 819 entries").
	LoggerFIFOEntries = 819
	// LoggerOverloadThreshold is the occupancy at which the logger
	// raises the overload interrupt (512 entries).
	LoggerOverloadThreshold = 512
	// LoggerLookupCycles is the logger-internal time to pop a write from
	// the write FIFO, look up the page-mapping table and the log table,
	// and assemble the record, before the DMA begins. Calibrated so that
	// one full record service costs LoggerLookupCycles +
	// LogRecordDMATotal = 33 cycles, which places the overload threshold
	// at roughly one logged write per 27 compute cycles, matching
	// Figures 11 and 12 of the paper.
	LoggerLookupCycles = 15
	// LoggerServiceCycles is the end-to-end service time for one record
	// in the uncontended case.
	LoggerServiceCycles = LoggerLookupCycles + LogRecordDMATotal

	// OverloadKernelCycles is the software cost of one overload event:
	// the interrupt, suspending every process that may generate log
	// data, and resuming them after the FIFOs drain. Together with
	// draining ~512 queued records at LoggerServiceCycles each, one
	// overload costs over 30,000 cycles, matching Section 4.5.3
	// ("overloading the logger is so expensive (more than 30,000
	// cycles)").
	OverloadKernelCycles = 13_000
)

// Virtual-memory software costs (Section 3.2 and Section 5.1).
const (
	// PageFaultCycles is the base cost of kernel page-fault handling
	// (allocate a frame, install the mapping, return to the user). The
	// paper's Section 5.1 argues a write-protect fault including
	// completing the write "would take over 3000 cycles on current
	// processors, even if implemented at a low level in the operating
	// system"; we use that figure for protection-fault-based baselines
	// and for first-touch faults.
	PageFaultCycles = 3000
	// LoggingFaultCycles is the kernel cost of servicing a logging fault
	// (reload a page-mapping-table or log-table entry, or advance the
	// log to its next page). These occur once per 256 records (one log
	// page) in the common case.
	LoggingFaultCycles = 500
	// LoggerEntrySetupCycles is the incremental page-fault cost of
	// loading the logger's page-mapping-table entry for a logged page.
	LoggerEntrySetupCycles = 120
)

// Deferred-copy and bcopy costs (Sections 3.3 and 4.4). Calibrated so that
// resetDeferredCopy() beats bcopy() when less than about two-thirds of the
// segment is dirty (Figure 9).
const (
	// BcopyLineCycles is the cost of copying one 16-byte line with
	// bcopy: a block read plus a block write.
	BcopyLineCycles = 2 * BlockWriteTotal
	// ResetLineCycles is the software cost of resetting one modified
	// second-level-cache line during resetDeferredCopy: inspecting and
	// rewriting the line's tag/source pointer over the bus. At 27 cycles
	// per line a fully dirty page costs 1.5x a bcopy of the page, which
	// places the crossover at two-thirds dirty.
	ResetLineCycles = 27
	// ResetPageCheckCycles is the per-page cost of checking the dirty
	// bit during resetDeferredCopy (the optimization in Section 3.3 that
	// skips clean pages without inspecting every line).
	ResetPageCheckCycles = 20
)

// RVM baseline costs (Section 4.2, Table 3). The Coda RVM set_range()
// bookkeeping (range-list insertion, allocation of the old-value copy,
// cross-checking overlapping ranges) dominates the 3515-cycle recoverable
// write the paper measures.
const (
	// SetRangeOverheadCycles is the fixed software cost of one
	// set_range() call in the RVM baseline. Calibrated so a single
	// 4-byte recoverable write (set_range + old-value save + the store)
	// measures ~3515 cycles, Table 3.
	SetRangeOverheadCycles = 3505
	// SetRangeByteCycles is the per-byte cost of saving the old value.
	SetRangeByteCycles = 2
	// TxnMgmtCycles is the per-transaction begin/commit bookkeeping cost
	// (transaction record allocation, list management) shared by RVM and
	// RLVM.
	TxnMgmtCycles = 900
	// CommitPerRangeCycles is the software cost of marshalling one
	// modified range into the commit record.
	CommitPerRangeCycles = 250
	// CommitPerRecordCycles is the software cost for RLVM's commit
	// daemon to consume one LVM log record.
	CommitPerRecordCycles = 60
)

// MemSpeed is a convenience: cycles to touch a word in the steady state
// (L1 hit).
const MemSpeed = L1HitCycles

// ToSeconds converts a cycle count to seconds of simulated time.
func ToSeconds(c uint64) float64 { return float64(c) / CyclesPerSecond }

// ToTimestamp converts a cycle count to a logger timestamp (6.25 MHz).
func ToTimestamp(c uint64) uint32 { return uint32(c >> TimestampShift) }
