package cycles

import "testing"

func TestTable2Constants(t *testing.T) {
	// The calibration constants ARE the paper's Table 2; a drive-by edit
	// here would silently recalibrate every experiment.
	if WordWriteThroughTotal != 6 || WordWriteThroughBus != 5 {
		t.Fatalf("word write-through: %d/%d", WordWriteThroughTotal, WordWriteThroughBus)
	}
	if BlockWriteTotal != 9 || BlockWriteBus != 8 {
		t.Fatalf("block write: %d/%d", BlockWriteTotal, BlockWriteBus)
	}
	if LogRecordDMATotal != 18 || LogRecordDMABus != 8 {
		t.Fatalf("log DMA: %d/%d", LogRecordDMATotal, LogRecordDMABus)
	}
}

func TestLoggerGeometry(t *testing.T) {
	if LoggerFIFOEntries != 819 || LoggerOverloadThreshold != 512 {
		t.Fatalf("FIFO geometry: %d/%d (Section 3.1.3 says 819/512)", LoggerFIFOEntries, LoggerOverloadThreshold)
	}
	if LoggerServiceCycles != LoggerLookupCycles+LogRecordDMATotal {
		t.Fatalf("service cycles inconsistent")
	}
}

func TestTimestampClock(t *testing.T) {
	// 6.25 MHz = 25 MHz / 4.
	if ToTimestamp(400) != 100 {
		t.Fatalf("ToTimestamp(400) = %d", ToTimestamp(400))
	}
	if ToTimestamp(3) != 0 {
		t.Fatalf("sub-tick rounding broken")
	}
}

func TestToSeconds(t *testing.T) {
	if got := ToSeconds(CyclesPerSecond); got != 1.0 {
		t.Fatalf("ToSeconds(1s) = %v", got)
	}
	if got := ToSeconds(25); got != 1e-6 {
		t.Fatalf("ToSeconds(25 cycles) = %v, want 1µs", got)
	}
}

func TestResetCrossoverCalibration(t *testing.T) {
	// Figure 9's two-thirds crossover is a pure function of these two
	// constants.
	ratio := float64(BcopyLineCycles) / float64(ResetLineCycles)
	if ratio < 0.6 || ratio > 0.72 {
		t.Fatalf("bcopy/reset per line = %.3f, want ~2/3", ratio)
	}
}
