package recovery

import (
	"bytes"
	"testing"

	"lvm/internal/core"
	"lvm/internal/logrec"
)

// parRig boots a system with a larger logged segment and drives a seeded
// marker-transaction workload through it, returning everything a
// sequential-vs-parallel comparison needs. Offsets span many pages so the
// page partitioning actually distributes work.
func parRig(t *testing.T, seed uint64, txns int, commitEvery int) (*core.System, *core.Segment, *core.Segment) {
	t.Helper()
	const size = 64 * core.PageSize
	sys := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 4096})
	seg := core.NewNamedSegment(sys, "par-data", size, nil)
	reg := core.NewStdRegion(sys, seg)
	ls := core.NewLogSegment(sys, 256)
	if err := reg.Log(ls); err != nil {
		t.Fatal(err)
	}
	as := sys.NewAddressSpace()
	base, err := reg.Bind(as, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := sys.NewProcess(0, as)

	rng := seed | 1
	next := func() uint32 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return uint32(rng)
	}
	for txn := 1; txn <= txns; txn++ {
		p.Store32(base, uint32(txn)) // begin marker
		n := 2 + int(next()%6)
		for j := 0; j < n; j++ {
			off := markerLimit + (next()%((size-markerLimit)/4))*4
			p.Store32(base+off, next())
		}
		if commitEvery <= 1 || txn%commitEvery != 0 {
			p.Store32(base, uint32(txn)|MarkerCommit)
		}
		// else: leave the transaction uncommitted (dropped by the next
		// begin marker), exercising the buffered-batch path.
	}
	sys.Sync()
	return sys, seg, ls
}

func segBytes(s *core.Segment) []byte {
	b := make([]byte, s.Size())
	s.ReadInto(0, b)
	return b
}

// runBoth replays the same log sequentially and with workers, into fresh
// destinations, and requires identical Results and byte-identical images.
func runBoth(t *testing.T, sys *core.System, seg, ls *core.Segment, o ReplayOptions, workers int) (Result, Result) {
	t.Helper()
	dstSeq := core.NewNamedSegment(sys, "rec-seq", seg.Size(), nil)
	dstPar := core.NewNamedSegment(sys, "rec-par", seg.Size(), nil)

	oSeq := o
	oSeq.Log, oSeq.Data, oSeq.Dst = ls, seg, dstSeq
	resSeq := Replay(sys, oSeq)

	oPar := o
	oPar.Log, oPar.Data, oPar.Dst, oPar.Workers = ls, seg, dstPar, workers
	resPar := Replay(sys, oPar)

	if resSeq != resPar {
		t.Fatalf("results diverge:\n seq %+v\n par %+v", resSeq, resPar)
	}
	if !bytes.Equal(segBytes(dstSeq), segBytes(dstPar)) {
		t.Fatalf("recovered images diverge (workers=%d)", workers)
	}
	return resSeq, resPar
}

func TestParallelReplayMatchesSequential(t *testing.T) {
	sys, seg, ls := parRig(t, 0x1234, 200, 0)
	for _, w := range []int{2, 4, 8} {
		res, _ := runBoth(t, sys, seg, ls, ReplayOptions{MarkerLimit: markerLimit}, w)
		if res.Txns != 200 || res.Applied == 0 {
			t.Fatalf("workload too small to be meaningful: %+v", res)
		}
	}
}

func TestParallelReplayUncommittedTail(t *testing.T) {
	// Every 5th transaction left uncommitted: the buffered-batch drop
	// path must account identically in both scans.
	sys, seg, ls := parRig(t, 0xBEEF, 100, 5)
	res, _ := runBoth(t, sys, seg, ls, ReplayOptions{MarkerLimit: markerLimit}, 4)
	if res.Txns != 80 {
		t.Fatalf("Txns = %d, want 80 committed", res.Txns)
	}
}

func TestParallelReplayQuarantine(t *testing.T) {
	sys, seg, ls := parRig(t, 0xCAFE, 120, 0)
	// Corrupt one record in the middle of the log with an impossible
	// write size; both scans must quarantine from the same offset with
	// identical accounting, and still apply everything committed before.
	end := sys.K.LogAppendOffset(ls)
	off := (end / logrec.Size / 2) * logrec.Size
	bad := logrec.Record{Addr: 0, Value: 0xDEAD, WriteSize: 3}
	var buf [logrec.Size]byte
	bad.Encode(buf[:])
	ls.RawWrite(off, buf[:])

	res, _ := runBoth(t, sys, seg, ls, ReplayOptions{MarkerLimit: markerLimit}, 4)
	if !res.Quarantined() || res.QuarantinedFrom != off {
		t.Fatalf("quarantine = %+v, want from %d", res, off)
	}
	if res.Applied == 0 {
		t.Fatalf("no records applied before the quarantine point: %+v", res)
	}
}

func TestParallelReplayApplyAllAndDryRun(t *testing.T) {
	sys, seg, ls := parRig(t, 0xF00D, 60, 0)

	// ApplyAll ignores transaction bracketing.
	runBoth(t, sys, seg, ls, ReplayOptions{MarkerLimit: markerLimit, ApplyAll: true}, 4)

	// Dry run: no destination, counters only.
	oSeq := ReplayOptions{Log: ls, Data: seg, MarkerLimit: markerLimit}
	resSeq := Replay(sys, oSeq)
	oPar := oSeq
	oPar.Workers = 4
	resPar := Replay(sys, oPar)
	if resSeq != resPar {
		t.Fatalf("dry-run results diverge:\n seq %+v\n par %+v", resSeq, resPar)
	}
}

func TestParallelReplayFallsBackForDeferredCopyDst(t *testing.T) {
	sys, seg, ls := parRig(t, 0x7777, 20, 0)
	src := core.NewNamedSegment(sys, "dc-src", seg.Size(), nil)
	dst := core.NewNamedSegment(sys, "dc-dst", seg.Size(), nil)
	if err := dst.SetSourceSegment(src, 0); err != nil {
		t.Fatal(err)
	}
	if dst.ParallelApplySafe() {
		t.Fatal("deferred-copy destination reported parallel-safe")
	}
	// Must silently take the sequential path and still recover.
	res := Replay(sys, ReplayOptions{Log: ls, Data: seg, Dst: dst, MarkerLimit: markerLimit, Workers: 4})
	if res.Txns != 20 {
		t.Fatalf("fallback replay incomplete: %+v", res)
	}
}
