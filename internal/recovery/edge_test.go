package recovery

// Edge-case coverage for the two rollback primitives crash recovery
// composes with — deferred-copy reset (Section 3.3) and log rewind
// (Section 2.4) — each pinned against the shadow reference checker
// rather than hand-picked probe words.

import (
	"testing"

	"lvm/internal/core"
	"lvm/internal/logrec"
)

// ckptShadow captures a segment's full contents into a shadow.
func ckptShadow(seg *core.Segment) *Shadow {
	sh := NewShadow(seg.Size())
	sh.Write(0, seg.RawRead(0, seg.Size()))
	return sh
}

func TestDeferredResetZeroModifiedLines(t *testing.T) {
	sys := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 256})
	ckpt := core.NewNamedSegment(sys, "ckpt", 4*core.PageSize, nil)
	for off := uint32(0); off < ckpt.Size(); off += 64 {
		ckpt.Write32(off, off^0x5A5A)
	}
	work := core.NewNamedSegment(sys, "work", 4*core.PageSize, nil)
	if err := work.SetSourceSegment(ckpt, 0); err != nil {
		t.Fatal(err)
	}
	ref := ckptShadow(ckpt)

	// Reset with zero modified lines: nothing to undo, nothing scanned
	// dirty, and the state still matches the checkpoint byte for byte.
	st, err := sys.K.ResetDeferredCopySegment(work, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.DirtyPages != 0 || st.LinesReset != 0 {
		t.Fatalf("clean reset did work: %+v", st)
	}
	if d := ref.Diff(work, 0); len(d) != 0 {
		t.Fatalf("clean reset diverged from checkpoint: %v", d)
	}
}

func TestDeferredResetThenDoubleReset(t *testing.T) {
	sys := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 256})
	ckpt := core.NewNamedSegment(sys, "ckpt", 4*core.PageSize, nil)
	for off := uint32(0); off < ckpt.Size(); off += 4 {
		ckpt.Write32(off, off*3+1)
	}
	work := core.NewNamedSegment(sys, "work", 4*core.PageSize, nil)
	if err := work.SetSourceSegment(ckpt, 0); err != nil {
		t.Fatal(err)
	}
	reg := core.NewStdRegion(sys, work)
	as := sys.NewAddressSpace()
	base, err := reg.Bind(as, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := sys.NewProcess(0, as)
	ref := ckptShadow(ckpt)

	// Scribble over three of the four pages, including a page-boundary
	// straddle.
	for i := uint32(0); i < 300; i++ {
		p.Store32(base+i*40%(3*core.PageSize), 0xDEAD0000+i)
	}
	sys.Sync()
	if d := ref.Diff(work, 0); len(d) == 0 {
		t.Fatalf("workload left no trace; test is vacuous")
	}

	st, err := sys.K.ResetDeferredCopySegment(work, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.DirtyPages == 0 || st.LinesReset == 0 {
		t.Fatalf("reset found no dirty state: %+v", st)
	}
	if d := ref.Diff(work, 0); len(d) != 0 {
		t.Fatalf("reset did not restore the checkpoint: %v", d)
	}

	// Double reset: the second pass must find nothing dirty, charge only
	// the page scans, and leave the state untouched.
	st2, err := sys.K.ResetDeferredCopySegment(work, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.DirtyPages != 0 || st2.LinesReset != 0 {
		t.Fatalf("second reset re-found dirty state: %+v", st2)
	}
	if st2.Cycles >= st.Cycles {
		t.Fatalf("second reset cost %d >= first %d; cost must track dirty data", st2.Cycles, st.Cycles)
	}
	if d := ref.Diff(work, 0); len(d) != 0 {
		t.Fatalf("double reset diverged: %v", d)
	}
}

// TestLogRewindPastPageBoundary rewinds an append head that has crossed
// into a later log page back into the first page, appends a fresh tail,
// and verifies by full replay that exactly the pre-rewind prefix plus the
// new tail survive.
func TestLogRewindPastPageBoundary(t *testing.T) {
	recsPerPage := uint32(core.PageSize / logrec.Size)
	sys := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 1024})
	seg := core.NewNamedSegment(sys, "data", 16*core.PageSize, nil)
	reg := core.NewStdRegion(sys, seg)
	ls := core.NewLogSegment(sys, 4)
	if err := reg.Log(ls); err != nil {
		t.Fatal(err)
	}
	as := sys.NewAddressSpace()
	base, err := reg.Bind(as, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := sys.NewProcess(0, as)

	expected := NewShadow(seg.Size())
	keep := uint32(10) // records to survive the rewind
	// Fill a page and a half: the head crosses into log page 1.
	n := recsPerPage + recsPerPage/2
	for i := uint32(0); i < n; i++ {
		p.Store32(base+16+i*4, 1000+i)
		if i < keep {
			expected.Write32(16+i*4, 1000+i)
		}
	}
	sys.Sync()
	if got := sys.K.LogAppendOffset(ls); got != n*logrec.Size {
		t.Fatalf("append offset = %d before rewind, want %d", got, n*logrec.Size)
	}

	// Rewind across the page boundary, back into page 0.
	if err := sys.K.RewindLog(ls, keep*logrec.Size); err != nil {
		t.Fatal(err)
	}
	// Fresh tail after the rewind.
	for i := uint32(0); i < 20; i++ {
		off := uint32(0x8000) + i*4
		p.Store32(base+off, 2000+i)
		expected.Write32(off, 2000+i)
	}
	sys.Sync()
	if got := sys.K.LogAppendOffset(ls); got != (keep+20)*logrec.Size {
		t.Fatalf("append offset = %d after rewind+append, want %d", got, (keep+20)*logrec.Size)
	}

	dst := core.NewNamedSegment(sys, "rebuilt", seg.Size(), nil)
	res := Replay(sys, ReplayOptions{Log: ls, Data: seg, Dst: dst, ApplyAll: true})
	if res.Applied != int(keep+20) || res.InvalidRecords != 0 {
		t.Fatalf("replay = %+v, want %d applied", res, keep+20)
	}
	if d := expected.Diff(dst, 0); len(d) != 0 {
		t.Fatalf("replayed state diverges from shadow: %v", d)
	}

	// Rewind to the current offset is a no-op for the head...
	cur := sys.K.LogAppendOffset(ls)
	if err := sys.K.RewindLog(ls, cur); err != nil {
		t.Fatal(err)
	}
	if got := sys.K.LogAppendOffset(ls); got != cur {
		t.Fatalf("no-op rewind moved the head: %d != %d", got, cur)
	}
	// ...and a full truncation empties it.
	if err := sys.K.TruncateLog(ls); err != nil {
		t.Fatal(err)
	}
	if got := sys.K.LogAppendOffset(ls); got != 0 {
		t.Fatalf("truncate left head at %d", got)
	}
}
