package recovery

import (
	"testing"

	"lvm/internal/core"
)

// absorbRun drives one seeded hot-address transaction workload — lots of
// repeated stores to the same words, exactly what write absorption
// coalesces — and replays its log into a fresh segment. The expected
// final state is tracked in a Shadow (last committed write wins).
func absorbRun(t *testing.T, absorb bool, shadow *Shadow) (*core.Segment, uint64) {
	t.Helper()
	const size = 16 * core.PageSize
	sys := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 2048})
	seg := core.NewNamedSegment(sys, "abs-data", size, nil)
	seg.SetNoAbsorbLimit(markerLimit)
	reg := core.NewStdRegion(sys, seg)
	ls := core.NewLogSegment(sys, 128)
	if err := reg.Log(ls); err != nil {
		t.Fatal(err)
	}
	as := sys.NewAddressSpace()
	base, err := reg.Bind(as, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := sys.NewProcess(0, as)
	if absorb {
		sys.EnableWriteAbsorption(8)
		sys.EnableGroupCommit(8, 1024)
	}

	// A small pool of hot words: most stores rewrite a recently written
	// word, so the absorbing run coalesces heavily.
	var hot [6]uint32
	rng := uint64(0x9E3779B9)
	next := func() uint32 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return uint32(rng)
	}
	for i := range hot {
		hot[i] = markerLimit + (next()%((size-markerLimit)/4))*4
	}
	for txn := uint32(1); txn <= 120; txn++ {
		p.Store32(base, txn)
		n := 3 + int(next()%8)
		for j := 0; j < n; j++ {
			off := hot[next()%uint32(len(hot))]
			v := next()
			p.Store32(base+off, v)
			shadow.Write32(off, v)
		}
		p.Store32(base, txn|MarkerCommit)
	}
	sys.Sync()

	dst := core.NewNamedSegment(sys, "abs-recovered", size, nil)
	res := Replay(sys, ReplayOptions{Log: ls, Data: seg, Dst: dst, MarkerLimit: markerLimit})
	if res.Quarantined() || res.Txns != 120 {
		t.Fatalf("absorb=%v replay = %+v, want 120 clean txns", absorb, res)
	}
	return dst, sys.K.Log.RecordsAbsorbed
}

// TestAbsorbedRecoveryIdentical is the determinism check from the issue:
// an absorbing run and a non-absorbing run of the same workload must
// recover to identical segment images (validated via Shadow.Diff), even
// though the absorbing log holds far fewer records.
func TestAbsorbedRecoveryIdentical(t *testing.T) {
	shadowPlain := NewShadow(16 * core.PageSize)
	dstPlain, absorbedPlain := absorbRun(t, false, shadowPlain)
	if absorbedPlain != 0 {
		t.Fatalf("non-absorbing run absorbed %d records", absorbedPlain)
	}
	if d := shadowPlain.Diff(dstPlain, markerLimit); len(d) != 0 {
		t.Fatalf("plain recovery diverges from shadow: %v", d)
	}

	shadowAbs := NewShadow(16 * core.PageSize)
	dstAbs, absorbed := absorbRun(t, true, shadowAbs)
	if absorbed == 0 {
		t.Fatal("absorbing run absorbed nothing — hot workload not exercising the window")
	}
	if d := shadowAbs.Diff(dstAbs, markerLimit); len(d) != 0 {
		t.Fatalf("absorbed recovery diverges from shadow: %v", d)
	}
}
