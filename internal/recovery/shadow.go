package recovery

import (
	"encoding/binary"

	"lvm/internal/core"
)

// Shadow is a reference copy of a logged segment maintained outside the
// simulated machine (plain host memory — no simulated cycles, no
// logging). The crash-recovery harness applies each write to the shadow
// only once it is known durable; after recovery, Diff against the
// recovered segment is the ground-truth correctness check.
type Shadow struct {
	data []byte
}

// NewShadow creates a zeroed shadow of the given size (segments start
// zero-filled, so a fresh shadow matches a fresh segment).
func NewShadow(size uint32) *Shadow {
	return &Shadow{data: make([]byte, size)}
}

// Size returns the shadow's size in bytes.
func (s *Shadow) Size() uint32 { return uint32(len(s.data)) }

// Write copies b into the shadow at off.
func (s *Shadow) Write(off uint32, b []byte) {
	copy(s.data[off:], b)
}

// Write32 stores a little-endian word, mirroring Process.Store32.
func (s *Shadow) Write32(off, v uint32) {
	binary.LittleEndian.PutUint32(s.data[off:], v)
}

// Read32 loads a little-endian word.
func (s *Shadow) Read32(off uint32) uint32 {
	return binary.LittleEndian.Uint32(s.data[off:])
}

// Bytes returns the backing slice (callers must not resize it).
func (s *Shadow) Bytes() []byte { return s.data }

// Clone returns an independent copy.
func (s *Shadow) Clone() *Shadow {
	c := &Shadow{data: make([]byte, len(s.data))}
	copy(c.data, s.data)
	return c
}

// DiffRange is one maximal run of bytes where segment and shadow
// disagree.
type DiffRange struct {
	Off, Len uint32
}

// Diff compares the shadow against seg over [from, size) and returns the
// maximal mismatching ranges (nil when the states agree). It reads the
// segment through RawRead-style access, so it charges no simulated
// cycles and triggers no logging.
func (s *Shadow) Diff(seg *core.Segment, from uint32) []DiffRange {
	n := s.Size()
	if sz := seg.Size(); sz < n {
		n = sz
	}
	var out []DiffRange
	var buf [core.PageSize]byte
	open := false
	var start uint32
	for off := from; off < n; {
		chunk := n - off
		if chunk > core.PageSize {
			chunk = core.PageSize
		}
		seg.ReadInto(off, buf[:chunk])
		for i := uint32(0); i < chunk; i++ {
			if buf[i] != s.data[off+i] {
				if !open {
					open = true
					start = off + i
				}
			} else if open {
				open = false
				out = append(out, DiffRange{Off: start, Len: off + i - start})
			}
		}
		off += chunk
	}
	if open {
		out = append(out, DiffRange{Off: start, Len: n - start})
	}
	return out
}
