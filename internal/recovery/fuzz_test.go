package recovery

import (
	"bytes"
	"testing"

	"lvm/internal/core"
	"lvm/internal/logcursor"
	"lvm/internal/logrec"
)

// fuzzRig builds the deterministic small system the fuzz target replays
// into. Construction is identical every call, so physical addresses in a
// captured log stay valid across iterations.
func fuzzRig() (*core.System, *core.Segment, *core.Segment, *core.Process, core.Addr) {
	sys := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 256})
	seg := core.NewNamedSegment(sys, "fz-data", 4*core.PageSize, nil)
	reg := core.NewStdRegion(sys, seg)
	ls := core.NewLogSegment(sys, 4)
	if err := reg.Log(ls); err != nil {
		panic(err)
	}
	as := sys.NewAddressSpace()
	base, err := reg.Bind(as, 0)
	if err != nil {
		panic(err)
	}
	return sys, seg, ls, sys.NewProcess(0, as), base
}

// realLogBytes captures the byte image of a genuine marker-bracketed log
// so the fuzzer starts from inputs that exercise the apply path, not just
// the validator.
func realLogBytes() []byte {
	sys, _, ls, p, base := fuzzRig()
	p.Store32(base, 1)
	p.Store32(base+0x100, 42)
	p.Store32(base+0x104, 43)
	p.Store32(base, 1|MarkerCommit)
	p.Store32(base, 2) // uncommitted tail
	p.Store32(base+0x200, 99)
	sys.Sync()
	return ls.RawRead(0, sys.K.LogAppendOffset(ls))
}

// FuzzLogReplay feeds arbitrary bytes to the crash-recovery replay as a
// surviving log image. The invariant under test: Replay never panics and
// never applies a record that fails validation — damaged input is
// quarantined, not trusted.
func FuzzLogReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 64))                       // zeroed tail
	f.Add([]byte("garbage that is not a record")) // short junk
	real := realLogBytes()
	f.Add(real)               // a genuine committed log
	f.Add(real[:len(real)-5]) // torn mid-record
	corrupt := append([]byte{}, real...)
	corrupt[4*logrec.Size+8] = 7 // impossible WriteSize
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		sys, seg, ls, _, _ := fuzzRig()
		n := uint32(len(data))
		if n > ls.Size() {
			n = ls.Size()
		}
		if n > 0 {
			ls.RawWrite(0, data[:n])
		}
		dst := core.NewNamedSegment(sys, "fz-dst", 4*core.PageSize, nil)
		o := ReplayOptions{Log: ls, Data: seg, Dst: dst, MarkerLimit: 16, End: n}
		res := Replay(sys, o)
		if res.Scanned > int(n/logrec.Size) {
			t.Fatalf("scanned %d records from %d bytes", res.Scanned, n)
		}
		if res.Applied+res.Skipped+res.InvalidRecords > res.Scanned {
			t.Fatalf("accounting exceeds scan: %+v", res)
		}
		if res.Quarantined() && res.QuarantinedFrom >= n && n > 0 {
			t.Fatalf("quarantine starts past the log end: %+v", res)
		}

		// Drive the logcursor walker directly over the same log and require
		// the committed-write set it produces to match Replay's.
		src := logcursor.NewMachineSource(sys, ls, seg)
		src.SetEnd(n)
		var writes []logcursor.Rec
		w := logcursor.NewWalker(logcursor.Config{
			View: logcursor.Committed, MarkerLimit: 16, End: src.End(),
			Apply: func(r logcursor.Rec) { writes = append(writes, r) },
		})
		st := logcursor.Run(src, w)
		if len(writes) != res.Applied || st.Scanned != res.Scanned ||
			st.Txns != res.Txns || st.QuarantinedFrom != res.QuarantinedFrom ||
			st.LastSeq != res.LastSeq {
			t.Fatalf("direct cursor walk disagrees with Replay:\n stats %+v\n result %+v", st, res)
		}
		cur := core.NewNamedSegment(sys, "fz-cursor", 4*core.PageSize, nil)
		for _, r := range writes {
			applyRecTo(cur, r.Off, r.Value, r.Size)
		}
		if !bytes.Equal(cur.RawRead(0, 4*core.PageSize), dst.RawRead(0, 4*core.PageSize)) {
			t.Fatalf("cursor committed-write set diverges from Replay image")
		}

		// Differential against the frozen pre-cursor Replay: byte-identical
		// unless the input hits one of the two pinned, intentional fixes.
		markerViolation, nonMonotonic := legacyDivergences(sys, o)
		ldst := core.NewNamedSegment(sys, "fz-legacy", 4*core.PageSize, nil)
		lo := o
		lo.Dst = ldst
		lres := legacyReplay(sys, lo)
		if markerViolation {
			if !res.Quarantined() {
				t.Fatalf("marker violation present but cursor replay did not quarantine: %+v", res)
			}
			return
		}
		cmp := res
		cmp.NonMonotonicCommits = 0
		if nonMonotonic {
			cmp.LastSeq = lres.LastSeq
		}
		if cmp != lres {
			t.Fatalf("legacy vs cursor results differ:\n legacy %+v\n cursor %+v", lres, res)
		}
		if !bytes.Equal(ldst.RawRead(0, 4*core.PageSize), dst.RawRead(0, 4*core.PageSize)) {
			t.Fatalf("legacy vs cursor images differ")
		}
	})
}
