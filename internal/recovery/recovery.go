// Package recovery is the crash-recovery manager for logged virtual
// memory: after a simulated crash it replays the surviving log (via
// core.LogReader) to reconstruct segment state, detects torn or corrupt
// records by validation, applies bounded retry-with-backoff to transient
// device errors, and degrades gracefully — quarantining the damaged log
// tail and reporting the lost-record extent — instead of panicking.
//
// The replay understands the marker-word transaction protocol the RLVM
// manager (and the crashtest log workload) uses: a store to the marker
// area with the high bit clear opens a transaction, one with the high
// bit set (MarkerCommit) commits it. Records between markers are
// buffered and applied only when their commit marker is found, so an
// uncommitted tail is discarded rather than half-applied.
package recovery

import (
	"fmt"

	"lvm/internal/core"
	"lvm/internal/logcursor"
	"lvm/internal/logrec"
	"lvm/internal/machine"
	"lvm/internal/metrics"
	"lvm/internal/ramdisk"
)

// MarkerCommit is the high bit of a marker-word value: set = the store
// commits the transaction the marker opened.
const MarkerCommit = logcursor.MarkerCommit

// NoQuarantine is the QuarantinedFrom value when the whole log replayed
// cleanly.
const NoQuarantine = logcursor.NoQuarantine

// ReplayOptions configures one replay.
type ReplayOptions struct {
	// Log is the surviving log segment; Data is the logged data segment
	// whose records are replayed.
	Log  *core.Segment
	Data *core.Segment
	// Dst receives the replayed writes (typically a fresh segment, or
	// the data segment itself for in-place reconstruction). nil = dry
	// run (validate and count only).
	Dst *core.Segment
	// MarkerLimit: data offsets below this are marker words driving the
	// transaction protocol above. 0 disables marker interpretation.
	MarkerLimit uint32
	// ApplyAll applies every valid record immediately, ignoring
	// transaction bracketing (used by edge tests that replay raw logs).
	ApplyAll bool
	// End overrides the log-end offset (clamped to the segment size).
	// 0 = ask the kernel for the hardware append offset. Crash recovery
	// sets this when the device head did not survive the crash.
	End uint32
	// Start is the log offset the scan begins at — a committed
	// checkpoint's replay-skip point (internal/compact), making recovery
	// O(tail) instead of O(log). It is rounded down to a record boundary;
	// state the skipped prefix described must come from the checkpoint
	// image the caller loaded into Dst. 0 replays the whole log.
	Start uint32
	// Workers > 1 enables partitioned parallel replay: record decode and
	// validation are sharded across host workers, the marker-transaction
	// walk stays sequential (it is a cheap in-memory pass), and committed
	// writes are applied concurrently with pages partitioned across
	// workers — producing a Result and destination image byte-identical
	// to the sequential scan. Falls back to the sequential path when the
	// destination segment's write path is not page-local.
	Workers int
}

// Result reports what one replay did and what it could not recover.
type Result struct {
	Scanned        int // records read from the log
	Applied        int // records applied to Dst
	Skipped        int // records resolving to other segments
	Txns           int // committed transactions replayed
	InvalidRecords int // records rejected by validation (0 or 1: first stops the scan)
	IncompleteTail int // buffered records discarded (no commit marker / quarantine)

	// QuarantinedFrom/QuarantinedBytes describe the damaged tail: the
	// log offset of the first invalid record and the extent from there
	// to the log end. QuarantinedFrom == NoQuarantine when clean.
	QuarantinedFrom  uint32
	QuarantinedBytes uint32

	LostRecords uint64 // hardware-counted records lost before the crash

	// LastSeq is the highest committed transaction sequence number. A
	// commit whose sequence regresses below an earlier one (only a
	// damaged log produces that) does not lower it; it is counted in
	// NonMonotonicCommits instead.
	LastSeq             uint32
	NonMonotonicCommits int
}

// Quarantined reports whether the replay hit a damaged tail.
func (r *Result) Quarantined() bool { return r.QuarantinedFrom != NoQuarantine }

// Replay scans the log and reconstructs data-segment state per the
// options. It never panics on damaged input: the first record that
// fails validation ends the scan and quarantines the rest of the log.
// The scan itself is the shared logcursor walk — recovery contributes
// only the machine bookkeeping (metrics, lost-record count) and the
// destination-segment apply.
func Replay(sys *core.System, o ReplayOptions) Result {
	if o.Workers > 1 {
		if res, ok := replayParallel(sys, o); ok {
			return res
		}
	}
	res := Result{QuarantinedFrom: NoQuarantine}
	sh := sys.DeviceShard()
	sh.Inc(metrics.RecoveryReplays)
	if sys.K.Log != nil {
		res.LostRecords = sys.K.Log.RecordsLost
	}

	src := logcursor.NewMachineSource(sys, o.Log, o.Data)
	if o.End != 0 {
		src.SetEnd(o.End)
	}
	if start := o.Start - o.Start%logrec.Size; start > 0 {
		if start > src.End() {
			start = src.End()
		}
		if err := src.Seek(start); err != nil {
			// Unreachable (start is record-aligned by construction), but a
			// misplaced scan must never be papered over: replay nothing and
			// report the whole range as an unrecovered tail.
			res.QuarantinedFrom = 0
			res.QuarantinedBytes = src.End()
			return res
		}
		sh.Add(metrics.RecoverySkippedBytes, uint64(start))
	}
	w := logcursor.NewWalker(logcursor.Config{
		View:        view(o),
		MarkerLimit: o.MarkerLimit,
		End:         src.End(),
		Apply: func(r logcursor.Rec) {
			if o.Dst != nil {
				applyRecTo(o.Dst, r.Off, r.Value, r.Size)
			}
		},
	})
	fillResult(&res, sh, logcursor.Run(src, w))
	return res
}

// view maps the replay options onto the cursor's view.
func view(o ReplayOptions) logcursor.View {
	if o.ApplyAll {
		return logcursor.ApplyAll
	}
	return logcursor.Committed
}

// fillResult copies the cursor's walk stats into a Result and charges
// the recovery metrics.
func fillResult(res *Result, sh *metrics.Shard, st logcursor.Stats) {
	res.Scanned = st.Scanned
	res.Applied = st.Applied
	res.Skipped = st.Skipped
	res.Txns = st.Txns
	res.InvalidRecords = st.InvalidRecords
	res.IncompleteTail = st.IncompleteTail
	res.QuarantinedFrom = st.QuarantinedFrom
	res.QuarantinedBytes = st.QuarantinedBytes
	res.LastSeq = st.LastSeq
	res.NonMonotonicCommits = st.NonMonotonicCommits
	if st.InvalidRecords > 0 {
		sh.Add(metrics.RecoveryInvalidRecords, uint64(st.InvalidRecords))
		sh.Add(metrics.QuarantinedBytes, uint64(st.QuarantinedBytes))
	}
	sh.Add(metrics.RecoveryRecordsApplied, uint64(st.Applied))
}

// applyRecTo writes one record's value bytes into dst.
func applyRecTo(dst *core.Segment, off, value uint32, size uint16) {
	var buf [4]byte
	n := int(size)
	if n > 4 {
		n = 4
	}
	for b := 0; b < n; b++ {
		buf[b] = byte(value >> (8 * b))
	}
	dst.RawWrite(off, buf[:n])
}

// ValidWrite reports whether (off, size) can describe a real logged write
// into a segment of segSize bytes. It is logcursor.ValidWrite, re-exported
// where the recovery-facing callers historically found it.
func ValidWrite(off uint32, size uint16, segSize uint32) bool {
	return logcursor.ValidWrite(off, size, segSize)
}

// Policy bounds the retry loop of a RetryDisk.
type Policy struct {
	// Attempts is the total number of tries per operation (default 5).
	Attempts int
	// BackoffCycles is the simulated-cycle delay before the first
	// retry; it doubles per retry (default 256).
	BackoffCycles uint64
}

// DefaultPolicy returns the default retry policy.
func DefaultPolicy() Policy { return Policy{Attempts: 5, BackoffCycles: 256} }

// RetryDisk wraps a ramdisk.Device with bounded retry-with-backoff for
// transient errors. Backoff is charged to the calling CPU's simulated
// clock (when one is given), so retries cost deterministic simulated
// time, not host time.
type RetryDisk struct {
	inner ramdisk.Device
	pol   Policy
	sh    *metrics.Shard

	// Retries counts individual retry attempts; Exhausted counts
	// operations that failed even after all attempts.
	Retries   uint64
	Exhausted uint64
}

// NewRetryDisk wraps inner. pol == nil uses DefaultPolicy; sh (may be
// nil) receives RecoveryRetries increments.
func NewRetryDisk(inner ramdisk.Device, pol *Policy, sh *metrics.Shard) *RetryDisk {
	p := DefaultPolicy()
	if pol != nil {
		p = *pol
		if p.Attempts <= 0 {
			p.Attempts = 5
		}
		if p.BackoffCycles == 0 {
			p.BackoffCycles = 256
		}
	}
	return &RetryDisk{inner: inner, pol: p, sh: sh}
}

// TryReadAt implements ramdisk.Device.
func (d *RetryDisk) TryReadAt(cpu *machine.CPU, off uint64, out []byte) error {
	return d.do(cpu, "read", func() error { return d.inner.TryReadAt(cpu, off, out) })
}

// TryWriteAt implements ramdisk.Device.
func (d *RetryDisk) TryWriteAt(cpu *machine.CPU, off uint64, b []byte) error {
	return d.do(cpu, "write", func() error { return d.inner.TryWriteAt(cpu, off, b) })
}

// TrySync implements ramdisk.Device.
func (d *RetryDisk) TrySync(cpu *machine.CPU) error {
	return d.do(cpu, "sync", func() error { return d.inner.TrySync(cpu) })
}

func (d *RetryDisk) do(cpu *machine.CPU, name string, op func() error) error {
	back := d.pol.BackoffCycles
	var err error
	for a := 0; a < d.pol.Attempts; a++ {
		if a > 0 {
			d.Retries++
			if d.sh != nil {
				d.sh.Inc(metrics.RecoveryRetries)
			}
			if cpu != nil {
				cpu.Compute(back)
			}
			back *= 2
		}
		if err = op(); err == nil {
			return nil
		}
	}
	d.Exhausted++
	return fmt.Errorf("recovery: disk %s failed after %d attempts: %w", name, d.pol.Attempts, err)
}
