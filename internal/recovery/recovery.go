// Package recovery is the crash-recovery manager for logged virtual
// memory: after a simulated crash it replays the surviving log (via
// core.LogReader) to reconstruct segment state, detects torn or corrupt
// records by validation, applies bounded retry-with-backoff to transient
// device errors, and degrades gracefully — quarantining the damaged log
// tail and reporting the lost-record extent — instead of panicking.
//
// The replay understands the marker-word transaction protocol the RLVM
// manager (and the crashtest log workload) uses: a store to the marker
// area with the high bit clear opens a transaction, one with the high
// bit set (MarkerCommit) commits it. Records between markers are
// buffered and applied only when their commit marker is found, so an
// uncommitted tail is discarded rather than half-applied.
package recovery

import (
	"fmt"

	"lvm/internal/core"
	"lvm/internal/logrec"
	"lvm/internal/machine"
	"lvm/internal/metrics"
	"lvm/internal/ramdisk"
)

// MarkerCommit is the high bit of a marker-word value: set = the store
// commits the transaction the marker opened.
const MarkerCommit = uint32(0x8000_0000)

// NoQuarantine is the QuarantinedFrom value when the whole log replayed
// cleanly.
const NoQuarantine = ^uint32(0)

// ReplayOptions configures one replay.
type ReplayOptions struct {
	// Log is the surviving log segment; Data is the logged data segment
	// whose records are replayed.
	Log  *core.Segment
	Data *core.Segment
	// Dst receives the replayed writes (typically a fresh segment, or
	// the data segment itself for in-place reconstruction). nil = dry
	// run (validate and count only).
	Dst *core.Segment
	// MarkerLimit: data offsets below this are marker words driving the
	// transaction protocol above. 0 disables marker interpretation.
	MarkerLimit uint32
	// ApplyAll applies every valid record immediately, ignoring
	// transaction bracketing (used by edge tests that replay raw logs).
	ApplyAll bool
	// End overrides the log-end offset (clamped to the segment size).
	// 0 = ask the kernel for the hardware append offset. Crash recovery
	// sets this when the device head did not survive the crash.
	End uint32
	// Start is the log offset the scan begins at — a committed
	// checkpoint's replay-skip point (internal/compact), making recovery
	// O(tail) instead of O(log). It is rounded down to a record boundary;
	// state the skipped prefix described must come from the checkpoint
	// image the caller loaded into Dst. 0 replays the whole log.
	Start uint32
	// Workers > 1 enables partitioned parallel replay: record decode and
	// validation are sharded across host workers, the marker-transaction
	// walk stays sequential (it is a cheap in-memory pass), and committed
	// writes are applied concurrently with pages partitioned across
	// workers — producing a Result and destination image byte-identical
	// to the sequential scan. Falls back to the sequential path when the
	// destination segment's write path is not page-local.
	Workers int
}

// Result reports what one replay did and what it could not recover.
type Result struct {
	Scanned        int // records read from the log
	Applied        int // records applied to Dst
	Skipped        int // records resolving to other segments
	Txns           int // committed transactions replayed
	InvalidRecords int // records rejected by validation (0 or 1: first stops the scan)
	IncompleteTail int // buffered records discarded (no commit marker / quarantine)

	// QuarantinedFrom/QuarantinedBytes describe the damaged tail: the
	// log offset of the first invalid record and the extent from there
	// to the log end. QuarantinedFrom == NoQuarantine when clean.
	QuarantinedFrom  uint32
	QuarantinedBytes uint32

	LostRecords uint64 // hardware-counted records lost before the crash
	LastSeq     uint32 // last committed transaction sequence number
}

// Quarantined reports whether the replay hit a damaged tail.
func (r *Result) Quarantined() bool { return r.QuarantinedFrom != NoQuarantine }

// Replay scans the log and reconstructs data-segment state per the
// options. It never panics on damaged input: the first record that
// fails validation ends the scan and quarantines the rest of the log.
func Replay(sys *core.System, o ReplayOptions) Result {
	if o.Workers > 1 {
		if res, ok := replayParallel(sys, o); ok {
			return res
		}
	}
	res := Result{QuarantinedFrom: NoQuarantine}
	sh := sys.DeviceShard()
	sh.Inc(metrics.RecoveryReplays)
	if sys.K.Log != nil {
		res.LostRecords = sys.K.Log.RecordsLost
	}

	r := core.NewLogReader(sys, o.Log)
	if o.End != 0 {
		r.SetEnd(o.End)
	}
	if start := o.Start - o.Start%logrec.Size; start > 0 {
		if start > r.End() {
			start = r.End()
		}
		if err := r.Seek(start); err != nil {
			// Unreachable (start is record-aligned by construction), but a
			// misplaced scan must never be papered over: replay nothing and
			// report the whole range as an unrecovered tail.
			res.QuarantinedFrom = 0
			res.QuarantinedBytes = r.End()
			return res
		}
		sh.Add(metrics.RecoverySkippedBytes, uint64(start))
	}
	var batch []core.Record
	for {
		off := r.Offset()
		rec, ok := r.Next()
		if !ok {
			break
		}
		res.Scanned++
		if !valid(rec) {
			res.InvalidRecords++
			sh.Inc(metrics.RecoveryInvalidRecords)
			res.QuarantinedFrom = off
			res.QuarantinedBytes = r.End() - off
			sh.Add(metrics.QuarantinedBytes, uint64(res.QuarantinedBytes))
			res.IncompleteTail += len(batch)
			return res
		}
		if rec.Seg != o.Data {
			res.Skipped++
			continue
		}
		if !o.ApplyAll && rec.SegOff < o.MarkerLimit {
			if rec.Value&MarkerCommit != 0 {
				res.LastSeq = rec.Value &^ MarkerCommit
				res.Txns++
				for _, b := range batch {
					apply(&res, sh, o.Dst, b)
				}
				batch = batch[:0]
			} else {
				// A begin marker after an uncommitted transaction drops
				// that transaction's buffered writes.
				batch = batch[:0]
			}
			continue
		}
		if o.ApplyAll {
			apply(&res, sh, o.Dst, rec)
		} else {
			batch = append(batch, rec)
		}
	}
	res.IncompleteTail += len(batch)
	return res
}

// apply writes one record into dst and accounts for it.
func apply(res *Result, sh *metrics.Shard, dst *core.Segment, rec core.Record) {
	if dst != nil {
		rec.Apply(dst)
	}
	res.Applied++
	sh.Inc(metrics.RecoveryRecordsApplied)
}

// valid rejects records that cannot be real logged writes: a write size
// the hardware never emits, an address that no longer resolves, a
// misaligned offset, a range leaving the segment, or a "write" into a
// log segment (the logger never logs its own log).
func valid(rec core.Record) bool {
	if rec.Seg == nil {
		return false
	}
	if !ValidWrite(rec.SegOff, rec.WriteSize, rec.Seg.Size()) {
		return false
	}
	if rec.Seg.IsLog() {
		return false
	}
	return true
}

// ValidWrite reports whether (off, size) can describe a real logged write
// into a segment of segSize bytes: a size the hardware emits, a
// size-aligned offset, and a range inside the segment. This is the
// record-validation core shared by crash-recovery replay and the logship
// replication replica, which quarantines on the first record that fails
// it — the same degrade-don't-panic posture as Replay.
func ValidWrite(off uint32, size uint16, segSize uint32) bool {
	switch size {
	case 1, 2, 4:
	default:
		return false
	}
	ws := uint32(size)
	return off%ws == 0 && off+ws <= segSize
}

// Policy bounds the retry loop of a RetryDisk.
type Policy struct {
	// Attempts is the total number of tries per operation (default 5).
	Attempts int
	// BackoffCycles is the simulated-cycle delay before the first
	// retry; it doubles per retry (default 256).
	BackoffCycles uint64
}

// DefaultPolicy returns the default retry policy.
func DefaultPolicy() Policy { return Policy{Attempts: 5, BackoffCycles: 256} }

// RetryDisk wraps a ramdisk.Device with bounded retry-with-backoff for
// transient errors. Backoff is charged to the calling CPU's simulated
// clock (when one is given), so retries cost deterministic simulated
// time, not host time.
type RetryDisk struct {
	inner ramdisk.Device
	pol   Policy
	sh    *metrics.Shard

	// Retries counts individual retry attempts; Exhausted counts
	// operations that failed even after all attempts.
	Retries   uint64
	Exhausted uint64
}

// NewRetryDisk wraps inner. pol == nil uses DefaultPolicy; sh (may be
// nil) receives RecoveryRetries increments.
func NewRetryDisk(inner ramdisk.Device, pol *Policy, sh *metrics.Shard) *RetryDisk {
	p := DefaultPolicy()
	if pol != nil {
		p = *pol
		if p.Attempts <= 0 {
			p.Attempts = 5
		}
		if p.BackoffCycles == 0 {
			p.BackoffCycles = 256
		}
	}
	return &RetryDisk{inner: inner, pol: p, sh: sh}
}

// TryReadAt implements ramdisk.Device.
func (d *RetryDisk) TryReadAt(cpu *machine.CPU, off uint64, out []byte) error {
	return d.do(cpu, "read", func() error { return d.inner.TryReadAt(cpu, off, out) })
}

// TryWriteAt implements ramdisk.Device.
func (d *RetryDisk) TryWriteAt(cpu *machine.CPU, off uint64, b []byte) error {
	return d.do(cpu, "write", func() error { return d.inner.TryWriteAt(cpu, off, b) })
}

// TrySync implements ramdisk.Device.
func (d *RetryDisk) TrySync(cpu *machine.CPU) error {
	return d.do(cpu, "sync", func() error { return d.inner.TrySync(cpu) })
}

func (d *RetryDisk) do(cpu *machine.CPU, name string, op func() error) error {
	back := d.pol.BackoffCycles
	var err error
	for a := 0; a < d.pol.Attempts; a++ {
		if a > 0 {
			d.Retries++
			if d.sh != nil {
				d.sh.Inc(metrics.RecoveryRetries)
			}
			if cpu != nil {
				cpu.Compute(back)
			}
			back *= 2
		}
		if err = op(); err == nil {
			return nil
		}
	}
	d.Exhausted++
	return fmt.Errorf("recovery: disk %s failed after %d attempts: %w", name, d.pol.Attempts, err)
}
