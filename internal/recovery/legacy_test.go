package recovery

// The pre-logcursor Replay, frozen verbatim (metrics dropped — they are
// side effects, not results). The differential tests run it against the
// cursor-based Replay on the same machines and require byte-identical
// images and results, so the refactor onto internal/logcursor cannot
// silently change recovery semantics. The two intentional divergences —
// sub-word marker-area stores quarantine instead of corrupting the
// transaction bracketing, and LastSeq keeps the maximum committed
// sequence instead of the last one — are each pinned by their own
// regression test below and excluded from the comparison by detection,
// never by loosening it.

import (
	"bytes"
	"testing"

	"lvm/internal/core"
	"lvm/internal/logrec"
)

func legacyValid(rec core.Record) bool {
	if rec.Seg == nil {
		return false
	}
	if !ValidWrite(rec.SegOff, rec.WriteSize, rec.Seg.Size()) {
		return false
	}
	if rec.Seg.IsLog() {
		return false
	}
	return true
}

func legacyApply(res *Result, dst *core.Segment, rec core.Record) {
	if dst != nil {
		rec.Apply(dst)
	}
	res.Applied++
}

// legacyReplay is the sequential Replay as it stood before the logcursor
// unification.
func legacyReplay(sys *core.System, o ReplayOptions) Result {
	res := Result{QuarantinedFrom: NoQuarantine}
	if sys.K.Log != nil {
		res.LostRecords = sys.K.Log.RecordsLost
	}
	r := core.NewLogReader(sys, o.Log)
	if o.End != 0 {
		r.SetEnd(o.End)
	}
	if start := o.Start - o.Start%logrec.Size; start > 0 {
		if start > r.End() {
			start = r.End()
		}
		if err := r.Seek(start); err != nil {
			res.QuarantinedFrom = 0
			res.QuarantinedBytes = r.End()
			return res
		}
	}
	var batch []core.Record
	for {
		off := r.Offset()
		rec, ok := r.Next()
		if !ok {
			break
		}
		res.Scanned++
		if !legacyValid(rec) {
			res.InvalidRecords++
			res.QuarantinedFrom = off
			res.QuarantinedBytes = r.End() - off
			res.IncompleteTail += len(batch)
			return res
		}
		if rec.Seg != o.Data {
			res.Skipped++
			continue
		}
		if !o.ApplyAll && rec.SegOff < o.MarkerLimit {
			if rec.Value&MarkerCommit != 0 {
				res.LastSeq = rec.Value &^ MarkerCommit
				res.Txns++
				for _, b := range batch {
					legacyApply(&res, o.Dst, b)
				}
				batch = batch[:0]
			} else {
				batch = batch[:0]
			}
			continue
		}
		if o.ApplyAll {
			legacyApply(&res, o.Dst, rec)
		} else {
			batch = append(batch, rec)
		}
	}
	res.IncompleteTail += len(batch)
	return res
}

// legacyDivergences pre-scans the log under o's bounds and reports the
// two conditions under which the new Replay intentionally differs from
// the legacy one: a sub-word store into the marker area within the
// legacy-walkable prefix (new: quarantine; legacy: misread as a marker),
// and a committed sequence that regresses (new: LastSeq keeps the max).
func legacyDivergences(sys *core.System, o ReplayOptions) (markerViolation, nonMonotonic bool) {
	r := core.NewLogReader(sys, o.Log)
	if o.End != 0 {
		r.SetEnd(o.End)
	}
	start := o.Start - o.Start%logrec.Size
	if start > r.End() {
		start = r.End()
	}
	if r.Seek(start) != nil {
		return false, false
	}
	var last uint32
	for {
		rec, ok := r.Next()
		if !ok {
			return
		}
		if !legacyValid(rec) {
			return
		}
		if rec.Seg != o.Data || o.ApplyAll {
			continue
		}
		if rec.SegOff < o.MarkerLimit {
			if rec.WriteSize != 4 {
				markerViolation = true
				return
			}
			if rec.Value&MarkerCommit != 0 {
				seq := rec.Value &^ MarkerCommit
				if seq < last {
					nonMonotonic = true
				} else {
					last = seq
				}
			}
		}
	}
}

// diffReplay runs legacy, sequential, and parallel replays of o over
// fresh destination segments and fails the test on any divergence not
// covered by the intentional-fix detection above.
func diffReplay(t *testing.T, sys *core.System, o ReplayOptions, dstSize uint32) {
	t.Helper()
	markerViolation, nonMonotonic := legacyDivergences(sys, o)

	run := func(name string, workers int, replay func(*core.System, ReplayOptions) Result) (Result, []byte) {
		oo := o
		oo.Workers = workers
		oo.Dst = core.NewNamedSegment(sys, name, dstSize, nil)
		res := replay(sys, oo)
		return res, oo.Dst.RawRead(0, dstSize)
	}
	lres, limg := run("diff-legacy", 0, legacyReplay)
	sres, simg := run("diff-seq", 0, Replay)
	pres, pimg := run("diff-par", 4, Replay)

	// Sequential and parallel must agree unconditionally.
	if sres != pres {
		t.Fatalf("sequential vs parallel results differ:\n seq %+v\n par %+v", sres, pres)
	}
	if !bytes.Equal(simg, pimg) {
		t.Fatalf("sequential vs parallel images differ")
	}
	if markerViolation {
		// The one legal legacy divergence: the new walk quarantines at the
		// protocol violation. Everything it did apply must still be a
		// prefix legacy agrees with — but the full comparison is off.
		if !sres.Quarantined() {
			t.Fatalf("marker violation present but new replay did not quarantine: %+v", sres)
		}
		return
	}
	cmp := sres
	cmp.NonMonotonicCommits = 0
	if nonMonotonic {
		// LastSeq semantics intentionally differ (max vs last); everything
		// else must still match.
		cmp.LastSeq = lres.LastSeq
	}
	if cmp != lres {
		t.Fatalf("legacy vs cursor results differ:\n legacy %+v\n cursor %+v", lres, sres)
	}
	if !nonMonotonic && sres.NonMonotonicCommits != 0 {
		t.Fatalf("NonMonotonicCommits = %d on a monotone log", sres.NonMonotonicCommits)
	}
	if !bytes.Equal(limg, simg) {
		t.Fatalf("legacy vs cursor images differ")
	}
}

// TestReplayMatchesLegacy drives the differential harness over the
// replay shapes every consumer depends on: committed transactions with
// an uncommitted tail, abandoned transactions, foreign-segment records
// sharing the log, a corrupt mid-log record, an end override, a
// checkpoint-skip start, and apply-all mode.
func TestReplayMatchesLegacy(t *testing.T) {
	build := func(t *testing.T) (*core.System, *core.Segment, *core.Segment, *core.Process, core.Addr, core.Addr) {
		t.Helper()
		sys, seg, ls, p, base := logRig(t)
		other := core.NewNamedSegment(sys, "other", segSize, nil)
		oreg := core.NewStdRegion(sys, other)
		if err := oreg.Log(ls); err != nil {
			t.Fatal(err)
		}
		obase, err := oreg.Bind(p.AS, 0)
		if err != nil {
			t.Fatal(err)
		}
		return sys, seg, ls, p, base, obase
	}

	t.Run("committed-plus-tail", func(t *testing.T) {
		sys, seg, ls, p, base, obase := build(t)
		p.Store32(base, 1)
		p.Store32(base+0x100, 11)
		p.Store16(base+0x104, 0xBEEF)
		p.Store8(base+0x107, 0x7)
		p.Store32(obase+0x40, 77) // foreign segment, same log
		p.Store32(base, 1|MarkerCommit)
		p.Store32(base, 2)
		p.Store32(base+0x200, 99) // uncommitted tail
		sys.Sync()
		diffReplay(t, sys, ReplayOptions{Log: ls, Data: seg, MarkerLimit: markerLimit}, segSize)
	})

	t.Run("abandoned-txn", func(t *testing.T) {
		sys, seg, ls, p, base, _ := build(t)
		p.Store32(base, 1)
		p.Store32(base+0x100, 11)
		p.Store32(base, 2) // begin drops txn 1
		p.Store32(base+0x104, 22)
		p.Store32(base, 2|MarkerCommit)
		sys.Sync()
		diffReplay(t, sys, ReplayOptions{Log: ls, Data: seg, MarkerLimit: markerLimit}, segSize)
	})

	t.Run("corrupt-mid-log", func(t *testing.T) {
		sys, seg, ls, p, base, _ := build(t)
		for i := uint32(1); i <= 3; i++ {
			p.Store32(base, i)
			p.Store32(base+0x100+4*i, 100+i)
			p.Store32(base, i|MarkerCommit)
		}
		sys.Sync()
		ls.RawWrite(4*logrec.Size+8, []byte{7, 0}) // impossible WriteSize
		diffReplay(t, sys, ReplayOptions{Log: ls, Data: seg, MarkerLimit: markerLimit}, segSize)
	})

	t.Run("end-override", func(t *testing.T) {
		sys, seg, ls, p, base, _ := build(t)
		p.Store32(base, 1)
		p.Store32(base+0x100, 11)
		p.Store32(base, 1|MarkerCommit)
		sys.Sync()
		diffReplay(t, sys, ReplayOptions{
			Log: ls, Data: seg, MarkerLimit: markerLimit, End: 2 * logrec.Size,
		}, segSize)
	})

	t.Run("checkpoint-start", func(t *testing.T) {
		sys, seg, ls, p, base, _ := build(t)
		p.Store32(base, 1)
		p.Store32(base+0x100, 11)
		p.Store32(base, 1|MarkerCommit)
		sys.Sync()
		mark := sys.K.LogAppendOffset(ls)
		p.Store32(base, 2)
		p.Store32(base+0x200, 22)
		p.Store32(base, 2|MarkerCommit)
		sys.Sync()
		diffReplay(t, sys, ReplayOptions{
			Log: ls, Data: seg, MarkerLimit: markerLimit, Start: mark,
		}, segSize)
	})

	t.Run("apply-all", func(t *testing.T) {
		sys, seg, ls, p, base, obase := build(t)
		p.Store32(base, 1)
		p.Store32(base+0x100, 11)
		p.Store32(obase+0x80, 88)
		p.Store16(base+0x10, 0xAA) // marker-area sub-word: plain data in ApplyAll
		sys.Sync()
		diffReplay(t, sys, ReplayOptions{Log: ls, Data: seg, ApplyAll: true}, segSize)
	})
}

// TestReplayQuarantinesSubWordMarkerStore pins the first intentional
// divergence from the legacy replay: a sub-word store into the marker
// area is a protocol violation no writer emits, and the legacy scan
// misread it as a marker (its value's commit bit then decided the fate
// of the buffered transaction). The cursor quarantines from it instead.
func TestReplayQuarantinesSubWordMarkerStore(t *testing.T) {
	sys, seg, ls, p, base := logRig(t)
	p.Store32(base, 1)
	p.Store32(base+0x100, 11)
	p.Store32(base, 1|MarkerCommit)
	p.Store32(base, 2)
	p.Store16(base+4, 0xFFFF) // sub-word store inside the marker area
	p.Store32(base+0x104, 22)
	p.Store32(base, 2|MarkerCommit)
	sys.Sync()

	dst := core.NewNamedSegment(sys, "recovered", segSize, nil)
	res := Replay(sys, ReplayOptions{Log: ls, Data: seg, Dst: dst, MarkerLimit: markerLimit})
	if !res.Quarantined() || res.QuarantinedFrom != 4*logrec.Size {
		t.Fatalf("sub-word marker store not quarantined: %+v", res)
	}
	if res.Txns != 1 || res.Applied != 1 || res.LastSeq != 1 {
		t.Fatalf("committed prefix lost: %+v", res)
	}
	if dst.Read32(0x100) != 11 || dst.Read32(0x104) != 0 {
		t.Fatalf("image wrong around the violation: %d %d", dst.Read32(0x100), dst.Read32(0x104))
	}
	// Parallel path agrees.
	dst2 := core.NewNamedSegment(sys, "recovered2", segSize, nil)
	res2 := Replay(sys, ReplayOptions{Log: ls, Data: seg, Dst: dst2, MarkerLimit: markerLimit, Workers: 4})
	if res2.QuarantinedFrom != 4*logrec.Size || res2.Txns != 1 {
		t.Fatalf("parallel disagrees: %+v", res2)
	}
}

// TestReplayNonMonotonicCommitKeepsMaxSeq pins the second intentional
// divergence: a committed sequence that regresses (only a damaged or
// rewound log produces one) no longer lowers LastSeq — the maximum wins
// and the regression is counted.
func TestReplayNonMonotonicCommitKeepsMaxSeq(t *testing.T) {
	sys, seg, ls, p, base := logRig(t)
	p.Store32(base, 5)
	p.Store32(base+0x100, 11)
	p.Store32(base, 5|MarkerCommit)
	p.Store32(base, 3)
	p.Store32(base+0x104, 22)
	p.Store32(base, 3|MarkerCommit)
	sys.Sync()

	res := Replay(sys, ReplayOptions{Log: ls, Data: seg, MarkerLimit: markerLimit})
	if res.LastSeq != 5 || res.NonMonotonicCommits != 1 || res.Txns != 2 {
		t.Fatalf("regressing commit handled wrong: %+v", res)
	}
}
