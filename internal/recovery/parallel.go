package recovery

import (
	"lvm/internal/core"
	"lvm/internal/logrec"
	"lvm/internal/metrics"
	"lvm/internal/sim"
)

// Partitioned parallel replay.
//
// The sequential Replay is a single pass doing three different kinds of
// work per record: (1) read + decode + reverse-translate + validate, (2)
// walk the marker-word transaction protocol, (3) write committed values
// into Dst. (1) and (3) dominate and parallelize; (2) is a trivial
// in-memory state machine but is order-sensitive.
//
// So the parallel path runs three phases:
//
//	A. decode: the record range is cut into one contiguous chunk per
//	   worker; each worker runs its own core.NewLogReaderAt over a
//	   quiescent machine (reads only) and fills a preallocated slot per
//	   record — segment offset, value, size, valid/is-data flags.
//	B. walk: one sequential pass over the decoded slots replicates the
//	   marker state machine exactly — same Scanned/Txns/Skipped/
//	   quarantine accounting as the sequential scan — and routes each
//	   committed write, in log order, to the partition owning its
//	   destination page (page number mod workers).
//	C. apply: after pre-faulting every touched destination page (frame
//	   allocation mutates kernel-global state), the partitions are
//	   applied concurrently. Partitions own disjoint pages and logged
//	   writes never cross a page (size <= 4, size-aligned), and each
//	   partition preserves log order, so the resulting image is
//	   byte-identical to the sequential scan's.
type parRec struct {
	segOff uint32
	value  uint32
	size   uint16
	flags  uint8
}

const (
	prValid uint8 = 1 << iota // passed record validation
	prData                    // resolves to the Data segment
)

// applyRec is one committed write routed to a page partition.
type applyRec struct {
	segOff uint32
	value  uint32
	size   uint16
}

// replayParallel runs the three-phase parallel replay. ok=false means the
// options cannot be replayed in parallel (non-page-local destination) and
// the caller must take the sequential path.
func replayParallel(sys *core.System, o ReplayOptions) (Result, bool) {
	if o.Dst != nil && !o.Dst.ParallelApplySafe() {
		return Result{}, false
	}
	workers := o.Workers
	res := Result{QuarantinedFrom: NoQuarantine}
	sh := sys.DeviceShard()
	sh.Inc(metrics.RecoveryReplays)
	if sys.K.Log != nil {
		res.LostRecords = sys.K.Log.RecordsLost
	}

	// Establish the scan bounds exactly as the sequential path does: one
	// synced reader, then everything below runs against a quiescent
	// machine.
	r := core.NewLogReader(sys, o.Log)
	if o.End != 0 {
		r.SetEnd(o.End)
	}
	end := r.End()
	start := o.Start - o.Start%logrec.Size
	if start > end {
		start = end
	}
	if start > 0 {
		sh.Add(metrics.RecoverySkippedBytes, uint64(start))
	}
	total := int((end - start) / logrec.Size)
	if total == 0 {
		return res, true
	}

	// Phase A: parallel decode + validate into preallocated slots.
	recs := make([]parRec, total)
	chunk := (total + workers - 1) / workers
	nchunks := (total + chunk - 1) / chunk
	_, _ = sim.MapWorkers(workers, nchunks, func(ci int) (struct{}, error) {
		lo := ci * chunk
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		rr := core.NewLogReaderAt(sys, o.Log, start+uint32(lo)*logrec.Size, end)
		for i := lo; i < hi; i++ {
			rec, ok := rr.Next()
			if !ok {
				break
			}
			pr := &recs[i]
			pr.segOff = rec.SegOff
			pr.value = rec.Value
			pr.size = rec.WriteSize
			if valid(rec) {
				pr.flags |= prValid
			}
			if rec.Seg == o.Data {
				pr.flags |= prData
			}
		}
		return struct{}{}, nil
	})

	// Phase B: sequential marker walk, identical to the in-line state
	// machine of the sequential Replay, routing committed writes to page
	// partitions instead of applying them.
	parts := make([][]applyRec, workers)
	var batch []applyRec
	applied := 0
	route := func(a applyRec) {
		p := int(a.segOff/core.PageSize) % workers
		parts[p] = append(parts[p], a)
		applied++
	}
	for i := 0; i < total; i++ {
		pr := &recs[i]
		off := start + uint32(i)*logrec.Size
		res.Scanned++
		if pr.flags&prValid == 0 {
			res.InvalidRecords++
			sh.Inc(metrics.RecoveryInvalidRecords)
			res.QuarantinedFrom = off
			res.QuarantinedBytes = end - off
			sh.Add(metrics.QuarantinedBytes, uint64(res.QuarantinedBytes))
			res.IncompleteTail += len(batch)
			batch = nil
			break
		}
		if pr.flags&prData == 0 {
			res.Skipped++
			continue
		}
		if !o.ApplyAll && pr.segOff < o.MarkerLimit {
			if pr.value&MarkerCommit != 0 {
				res.LastSeq = pr.value &^ MarkerCommit
				res.Txns++
				for _, b := range batch {
					route(b)
				}
			}
			// A begin marker after an uncommitted transaction drops that
			// transaction's buffered writes, same as a commit flush.
			batch = batch[:0]
			continue
		}
		a := applyRec{segOff: pr.segOff, value: pr.value, size: pr.size}
		if o.ApplyAll {
			route(a)
		} else {
			batch = append(batch, a)
		}
	}
	res.IncompleteTail += len(batch)
	res.Applied = applied
	sh.Add(metrics.RecoveryRecordsApplied, uint64(applied))

	// Phase C: parallel apply over disjoint page partitions.
	if o.Dst != nil && applied > 0 {
		// Pre-fault every destination page first: ensureFrame mutates the
		// physical allocator and the kernel's frame-owner map, which must
		// not happen concurrently. After this, partition writers only
		// touch their own pages' frames and per-page dirty state.
		touched := make([]bool, o.Dst.NumPages())
		for _, part := range parts {
			for _, a := range part {
				page := a.segOff / core.PageSize
				if !touched[page] {
					touched[page] = true
					if _, err := o.Dst.EnsureResident(page); err != nil {
						panic(err) // same as the sequential RawWrite path
					}
				}
			}
		}
		_, _ = sim.MapWorkers(workers, workers, func(w int) (struct{}, error) {
			var buf [4]byte
			for _, a := range parts[w] {
				n := int(a.size)
				if n > 4 {
					n = 4
				}
				for b := 0; b < n; b++ {
					buf[b] = byte(a.value >> (8 * b))
				}
				o.Dst.RawWrite(a.segOff, buf[:n])
			}
			return struct{}{}, nil
		})
	}
	return res, true
}
