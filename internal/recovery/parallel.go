package recovery

import (
	"lvm/internal/core"
	"lvm/internal/logcursor"
	"lvm/internal/logrec"
	"lvm/internal/metrics"
	"lvm/internal/sim"
)

// Partitioned parallel replay.
//
// The sequential Replay is a single pass doing three different kinds of
// work per record: (1) read + decode + reverse-translate + validate, (2)
// walk the marker-word transaction protocol, (3) write committed values
// into Dst. (1) and (3) dominate and parallelize; (2) is a trivial
// in-memory state machine but is order-sensitive.
//
// So the parallel path runs three phases:
//
//	A. decode: the record range is cut into one contiguous chunk per
//	   worker; each worker runs its own logcursor.MachineSource over a
//	   quiescent machine (reads only) and fills a preallocated slot per
//	   record with the cursor's uniform Rec form.
//	B. walk: one sequential pass over the decoded slots feeds the SAME
//	   logcursor.Walker the sequential scan uses — identical Scanned/
//	   Txns/Skipped/quarantine accounting by construction — and routes
//	   each committed write, in log order, to the partition owning its
//	   destination page (page number mod workers).
//	C. apply: after pre-faulting every touched destination page (frame
//	   allocation mutates kernel-global state), the partitions are
//	   applied concurrently. Partitions own disjoint pages and logged
//	   writes never cross a page (size <= 4, size-aligned), and each
//	   partition preserves log order, so the resulting image is
//	   byte-identical to the sequential scan's.

// applyRec is one committed write routed to a page partition.
type applyRec struct {
	segOff uint32
	value  uint32
	size   uint16
}

// replayParallel runs the three-phase parallel replay. ok=false means the
// options cannot be replayed in parallel (non-page-local destination) and
// the caller must take the sequential path.
func replayParallel(sys *core.System, o ReplayOptions) (Result, bool) {
	if o.Dst != nil && !o.Dst.ParallelApplySafe() {
		return Result{}, false
	}
	workers := o.Workers
	res := Result{QuarantinedFrom: NoQuarantine}
	sh := sys.DeviceShard()
	sh.Inc(metrics.RecoveryReplays)
	if sys.K.Log != nil {
		res.LostRecords = sys.K.Log.RecordsLost
	}

	// Establish the scan bounds exactly as the sequential path does: one
	// synced source, then everything below runs against a quiescent
	// machine.
	bounds := logcursor.NewMachineSource(sys, o.Log, o.Data)
	if o.End != 0 {
		bounds.SetEnd(o.End)
	}
	end := bounds.End()
	start := o.Start - o.Start%logrec.Size
	if start > end {
		start = end
	}
	if start > 0 {
		sh.Add(metrics.RecoverySkippedBytes, uint64(start))
	}
	total := int((end - start) / logrec.Size)
	if total == 0 {
		return res, true
	}

	// Phase A: parallel decode + validate into preallocated slots.
	recs := make([]logcursor.Rec, total)
	chunk := (total + workers - 1) / workers
	nchunks := (total + chunk - 1) / chunk
	_, _ = sim.MapWorkers(workers, nchunks, func(ci int) (struct{}, error) {
		lo := ci * chunk
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		src := logcursor.NewMachineSourceAt(sys, o.Log, o.Data,
			start+uint32(lo)*logrec.Size, end)
		for i := lo; i < hi; i++ {
			rec, ok := src.Next()
			if !ok {
				break
			}
			rec.Idx = i
			recs[i] = rec
		}
		return struct{}{}, nil
	})

	// Phase B: sequential walk through the shared cursor state machine,
	// routing committed writes to page partitions instead of applying
	// them.
	parts := make([][]applyRec, workers)
	w := logcursor.NewWalker(logcursor.Config{
		View:        view(o),
		MarkerLimit: o.MarkerLimit,
		End:         end,
		Apply: func(r logcursor.Rec) {
			p := int(r.Off/core.PageSize) % workers
			parts[p] = append(parts[p], applyRec{segOff: r.Off, value: r.Value, size: r.Size})
		},
	})
	for i := 0; i < total; i++ {
		// The slot's log offset is positional; recompute it rather than
		// trusting a possibly-zero slot a phase-A early exit left behind.
		recs[i].LogOff = start + uint32(i)*logrec.Size
		if !w.Feed(recs[i]) {
			break
		}
	}
	fillResult(&res, sh, w.Finish())
	applied := res.Applied

	// Phase C: parallel apply over disjoint page partitions.
	if o.Dst != nil && applied > 0 {
		// Pre-fault every destination page first: ensureFrame mutates the
		// physical allocator and the kernel's frame-owner map, which must
		// not happen concurrently. After this, partition writers only
		// touch their own pages' frames and per-page dirty state.
		touched := make([]bool, o.Dst.NumPages())
		for _, part := range parts {
			for _, a := range part {
				page := a.segOff / core.PageSize
				if !touched[page] {
					touched[page] = true
					if _, err := o.Dst.EnsureResident(page); err != nil {
						panic(err) // same as the sequential RawWrite path
					}
				}
			}
		}
		_, _ = sim.MapWorkers(workers, workers, func(wk int) (struct{}, error) {
			for _, a := range parts[wk] {
				applyRecTo(o.Dst, a.segOff, a.value, a.size)
			}
			return struct{}{}, nil
		})
	}
	return res, true
}
