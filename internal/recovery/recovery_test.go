package recovery

import (
	"errors"
	"fmt"
	"testing"

	"lvm/internal/core"
	"lvm/internal/logrec"
	"lvm/internal/machine"
	"lvm/internal/ramdisk"
)

const (
	segSize     = 16 * core.PageSize
	markerLimit = 16
)

// logRig boots a one-CPU system with a logged segment and returns the
// pieces a replay test needs.
func logRig(t *testing.T) (*core.System, *core.Segment, *core.Segment, *core.Process, core.Addr) {
	t.Helper()
	sys := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 1024})
	seg := core.NewNamedSegment(sys, "data", segSize, nil)
	reg := core.NewStdRegion(sys, seg)
	ls := core.NewLogSegment(sys, 8)
	if err := reg.Log(ls); err != nil {
		t.Fatal(err)
	}
	as := sys.NewAddressSpace()
	base, err := reg.Bind(as, 0)
	if err != nil {
		t.Fatal(err)
	}
	return sys, seg, ls, sys.NewProcess(0, as), base
}

func TestReplayAppliesOnlyCommittedTransactions(t *testing.T) {
	sys, seg, ls, p, base := logRig(t)

	p.Store32(base, 1) // begin txn 1
	p.Store32(base+0x100, 11)
	p.Store32(base+0x104, 12)
	p.Store32(base, 1|MarkerCommit) // commit txn 1
	p.Store32(base, 2)              // begin txn 2 — never commits
	p.Store32(base+0x200, 99)
	sys.Sync()

	dst := core.NewNamedSegment(sys, "recovered", segSize, nil)
	res := Replay(sys, ReplayOptions{Log: ls, Data: seg, Dst: dst, MarkerLimit: markerLimit})

	if res.Txns != 1 || res.Applied != 2 || res.LastSeq != 1 {
		t.Fatalf("result = %+v, want 1 txn, 2 applied, last seq 1", res)
	}
	if res.IncompleteTail != 1 {
		t.Fatalf("IncompleteTail = %d, want the 1 uncommitted store", res.IncompleteTail)
	}
	if res.Quarantined() {
		t.Fatalf("clean log quarantined: %+v", res)
	}
	if dst.Read32(0x100) != 11 || dst.Read32(0x104) != 12 {
		t.Fatalf("committed writes not applied: %d %d", dst.Read32(0x100), dst.Read32(0x104))
	}
	if dst.Read32(0x200) != 0 {
		t.Fatalf("uncommitted write applied: %d", dst.Read32(0x200))
	}
}

func TestReplayBeginAfterUncommittedDropsBuffer(t *testing.T) {
	sys, seg, ls, p, base := logRig(t)

	p.Store32(base, 1) // begin txn 1 — abandoned
	p.Store32(base+0x100, 11)
	p.Store32(base, 2) // begin txn 2 drops txn 1's buffer
	p.Store32(base+0x104, 22)
	p.Store32(base, 2|MarkerCommit)
	sys.Sync()

	dst := core.NewNamedSegment(sys, "recovered", segSize, nil)
	res := Replay(sys, ReplayOptions{Log: ls, Data: seg, Dst: dst, MarkerLimit: markerLimit})

	if res.Txns != 1 || res.Applied != 1 || res.LastSeq != 2 {
		t.Fatalf("result = %+v, want txn 2 only", res)
	}
	if dst.Read32(0x100) != 0 || dst.Read32(0x104) != 22 {
		t.Fatalf("dst = %d/%d, want abandoned write dropped, committed applied",
			dst.Read32(0x100), dst.Read32(0x104))
	}
}

func TestReplayApplyAllIgnoresBracketing(t *testing.T) {
	sys, seg, ls, p, base := logRig(t)
	p.Store32(base, 1)
	p.Store32(base+0x100, 11)
	// no commit
	sys.Sync()

	dst := core.NewNamedSegment(sys, "recovered", segSize, nil)
	res := Replay(sys, ReplayOptions{Log: ls, Data: seg, Dst: dst, ApplyAll: true})
	if res.Applied != 2 || res.IncompleteTail != 0 {
		t.Fatalf("result = %+v, want every record applied", res)
	}
	if dst.Read32(0) != 1 || dst.Read32(0x100) != 11 {
		t.Fatalf("raw replay missed writes")
	}
}

func TestReplayQuarantinesDamagedTail(t *testing.T) {
	sys, seg, ls, p, base := logRig(t)

	// Three committed single-store transactions.
	for i := uint32(1); i <= 3; i++ {
		p.Store32(base, i)
		p.Store32(base+0x100+4*i, 100+i)
		p.Store32(base, i|MarkerCommit)
	}
	sys.Sync()
	end := sys.K.LogAppendOffset(ls)
	if end != 9*logrec.Size {
		t.Fatalf("append offset = %d, want 9 records", end)
	}

	// Corrupt the WriteSize field of record 4 (txn 2's data store): the
	// hardware never emits size 7, so validation must trip there.
	badOff := uint32(4 * logrec.Size)
	ls.RawWrite(badOff+8, []byte{7, 0})

	dst := core.NewNamedSegment(sys, "recovered", segSize, nil)
	res := Replay(sys, ReplayOptions{Log: ls, Data: seg, Dst: dst, MarkerLimit: markerLimit})

	if res.InvalidRecords != 1 {
		t.Fatalf("InvalidRecords = %d, want 1", res.InvalidRecords)
	}
	if !res.Quarantined() || res.QuarantinedFrom != badOff {
		t.Fatalf("quarantine = %d, want from %d", res.QuarantinedFrom, badOff)
	}
	if res.QuarantinedBytes != end-badOff {
		t.Fatalf("QuarantinedBytes = %d, want %d", res.QuarantinedBytes, end-badOff)
	}
	// Txn 1 (before the damage) replayed; txns 2 and 3 did not.
	if dst.Read32(0x104) != 101 {
		t.Fatalf("txn 1 not replayed")
	}
	if dst.Read32(0x108) != 0 || dst.Read32(0x10c) != 0 {
		t.Fatalf("writes at/after the quarantine point were applied")
	}
}

func TestReplayEndOverride(t *testing.T) {
	sys, seg, ls, p, base := logRig(t)
	p.Store32(base+0x100, 1)
	p.Store32(base+0x104, 2)
	sys.Sync()

	res := Replay(sys, ReplayOptions{Log: ls, Data: seg, ApplyAll: true, End: logrec.Size})
	if res.Scanned != 1 {
		t.Fatalf("Scanned = %d with End = one record", res.Scanned)
	}
}

func TestRetryDiskAbsorbsTransientErrors(t *testing.T) {
	m := machine.New(machine.Config{NumCPUs: 1, MemFrames: 4})
	cpu := m.CPUs[0]
	d := ramdisk.New()
	fails := 2
	boom := errors.New("transient")
	d.FailHook = func(op ramdisk.Op, off uint64, n int) error {
		if fails > 0 {
			fails--
			return boom
		}
		return nil
	}
	rd := NewRetryDisk(d, nil, nil)

	before := cpu.Now
	if err := rd.TryWriteAt(cpu, 0, []byte{1}); err != nil {
		t.Fatalf("retry did not absorb 2 transient failures: %v", err)
	}
	if rd.Retries != 2 || rd.Exhausted != 0 {
		t.Fatalf("Retries = %d, Exhausted = %d, want 2/0", rd.Retries, rd.Exhausted)
	}
	// 3 attempted device ops plus a doubling backoff (256 then 512),
	// charged to the simulated clock.
	want := 3*(uint64(ramdisk.OpCycles)+ramdisk.BlockCycles) + 256 + 512
	if got := cpu.Now - before; got != want {
		t.Fatalf("retry cost = %d cycles, want %d", got, want)
	}
}

func TestRetryDiskExhaustsAfterBoundedAttempts(t *testing.T) {
	d := ramdisk.New()
	boom := errors.New("hard")
	d.FailHook = func(op ramdisk.Op, off uint64, n int) error { return boom }
	rd := NewRetryDisk(d, &Policy{Attempts: 3, BackoffCycles: 8}, nil)

	err := rd.TrySync(nil)
	if !errors.Is(err, boom) {
		t.Fatalf("exhaustion error = %v, want wrapped cause", err)
	}
	if rd.Retries != 2 || rd.Exhausted != 1 {
		t.Fatalf("Retries = %d, Exhausted = %d, want 2/1", rd.Retries, rd.Exhausted)
	}
}

func TestShadowDiffFindsMaximalRanges(t *testing.T) {
	sys := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 64})
	seg := core.NewNamedSegment(sys, "s", 2*core.PageSize, nil)
	sh := NewShadow(2 * core.PageSize)

	if d := sh.Diff(seg, 0); len(d) != 0 {
		t.Fatalf("fresh shadow vs fresh segment differ: %v", d)
	}
	// Two separated mismatches, one crossing a page boundary.
	seg.Write32(100, 0xAAAA)
	seg.Write32(core.PageSize-2, 0xBBBBBBBB) // bytes PageSize-2..PageSize+1
	diff := sh.Diff(seg, 0)
	if len(diff) != 2 {
		t.Fatalf("diff = %v, want 2 ranges", diff)
	}
	if diff[0].Off != 100 {
		t.Fatalf("first range = %+v", diff[0])
	}
	if diff[1].Off != core.PageSize-2 || diff[1].Len != 4 {
		t.Fatalf("page-crossing range = %+v", diff[1])
	}
	// Matching the shadow clears the diff; Clone is independent.
	sh.Write32(100, 0xAAAA)
	c := sh.Clone()
	c.Write32(100, 0)
	if sh.Read32(100) != 0xAAAA {
		t.Fatalf("Clone aliases the original")
	}
	// from skips earlier mismatches.
	if d := sh.Diff(seg, core.PageSize+4); len(d) != 0 {
		t.Fatalf("diff from past all damage: %v", d)
	}
}

func TestDefaultPolicyValues(t *testing.T) {
	p := DefaultPolicy()
	if p.Attempts != 5 || p.BackoffCycles != 256 {
		t.Fatalf("DefaultPolicy = %+v", p)
	}
	// Zero-valued policy fields fall back to defaults.
	rd := NewRetryDisk(ramdisk.New(), &Policy{}, nil)
	if rd.pol.Attempts != 5 || rd.pol.BackoffCycles != 256 {
		t.Fatalf("sanitized policy = %+v", rd.pol)
	}
}

func TestResultString(t *testing.T) {
	// Quarantined() and the sentinel must agree.
	r := Result{QuarantinedFrom: NoQuarantine}
	if r.Quarantined() {
		t.Fatalf("NoQuarantine reported as quarantined")
	}
	r.QuarantinedFrom = 0
	if !r.Quarantined() {
		t.Fatalf("offset-0 quarantine not reported")
	}
	_ = fmt.Sprintf("%+v", r)
}

func TestReplayStartSkipsCheckpointedPrefix(t *testing.T) {
	sys, seg, ls, p, base := logRig(t)

	p.Store32(base, 1)
	p.Store32(base+0x100, 11)
	p.Store32(base, 1|MarkerCommit)
	sys.Sync()
	mark := sys.K.LogAppendOffset(ls) // a checkpoint's replay-skip point
	p.Store32(base, 2)
	p.Store32(base+0x200, 22)
	p.Store32(base, 2|MarkerCommit)
	sys.Sync()

	dst := core.NewNamedSegment(sys, "recovered", segSize, nil)
	res := Replay(sys, ReplayOptions{Log: ls, Data: seg, Dst: dst, MarkerLimit: markerLimit, Start: mark})
	if res.Scanned != 3 || res.Txns != 1 || res.Applied != 1 {
		t.Fatalf("result = %+v, want only txn 2's 3-record tail", res)
	}
	if dst.Read32(0x200) != 22 {
		t.Fatalf("tail write not applied: %d", dst.Read32(0x200))
	}
	if dst.Read32(0x100) != 0 {
		t.Fatalf("skipped prefix was replayed: %d", dst.Read32(0x100))
	}
	// A misaligned Start rounds down to the record boundary; one past the
	// end scans nothing rather than faulting.
	res = Replay(sys, ReplayOptions{Log: ls, Data: seg, Dst: nil, MarkerLimit: markerLimit, Start: mark + 3})
	if res.Scanned != 3 {
		t.Fatalf("misaligned Start scanned %d records, want 3", res.Scanned)
	}
	end := sys.K.LogAppendOffset(ls)
	res = Replay(sys, ReplayOptions{Log: ls, Data: seg, Dst: nil, MarkerLimit: markerLimit, Start: end + logrec.Size})
	if res.Scanned != 0 || res.Quarantined() {
		t.Fatalf("past-end Start: %+v, want an empty clean scan", res)
	}
}
