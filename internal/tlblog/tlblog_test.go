package tlblog

import (
	"testing"

	"lvm/internal/bus"
	"lvm/internal/cycles"
	"lvm/internal/logrec"
	"lvm/internal/machine"
	"lvm/internal/phys"
)

func newRig(t *testing.T) (*Logger, *phys.Memory) {
	t.Helper()
	mem := phys.NewMemory(32)
	for i := 0; i < 16; i++ {
		if _, err := mem.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	return New(bus.New(), mem), mem
}

func TestRecordsVirtualAddresses(t *testing.T) {
	l, mem := newRig(t)
	l.MapPage(0x10000>>phys.PageShift, 0)
	l.SetDescriptor(0, 0x2000, 0x3000)
	l.Snoop(machine.LoggedWrite{Addr: 0x5af0, VAddr: 0x10044, Value: 9, Size: 4, Time: 6})
	l.DrainAll()
	rec := logrec.Decode(mem.Frame(2)[:])
	if rec.Addr != 0x10044 {
		t.Fatalf("record address = %#x, want the virtual address 0x10044", rec.Addr)
	}
	if rec.Value != 9 {
		t.Fatalf("record = %+v", rec)
	}
	if d := l.Descriptor(0); d.Addr != 0x2000+logrec.Size {
		t.Fatalf("descriptor not advanced: %+v", d)
	}
}

func TestUnmappedPageDropsRecord(t *testing.T) {
	l, _ := newRig(t)
	l.Snoop(machine.LoggedWrite{VAddr: 0x99000, Value: 1, Size: 4, Time: 1})
	l.DrainAll()
	if l.RecordsLost != 1 || l.RecordsWritten != 0 {
		t.Fatalf("lost=%d written=%d", l.RecordsLost, l.RecordsWritten)
	}
}

func TestOnFullExtends(t *testing.T) {
	l, _ := newRig(t)
	l.MapPage(0, 0)
	l.SetDescriptor(0, 0x2000, 0x2000+2*logrec.Size) // room for 2 records
	calls := 0
	l.OnFull = func(lg *Logger, idx uint16) bool {
		calls++
		lg.SetDescriptor(idx, 0x3000, 0x4000)
		return true
	}
	for i := uint32(0); i < 5; i++ {
		l.Snoop(machine.LoggedWrite{VAddr: i * 4, Value: i, Size: 4, Time: uint64(i)})
	}
	l.DrainAll()
	if calls != 1 {
		t.Fatalf("OnFull calls = %d", calls)
	}
	if l.RecordsWritten != 5 || l.RecordsLost != 0 {
		t.Fatalf("written=%d lost=%d", l.RecordsWritten, l.RecordsLost)
	}
}

func TestStallInsteadOfOverload(t *testing.T) {
	l, _ := newRig(t)
	l.MapPage(0, 0)
	l.SetDescriptor(0, 0x2000, 0xC000)
	var maxStall uint64
	// Back-to-back logged writes, far more than the write buffer holds:
	// the CPU must stall, but by the *drain rate of one record*, never by
	// an overload-interrupt-sized penalty.
	for i := uint32(0); i < 100; i++ {
		s := l.Snoop(machine.LoggedWrite{VAddr: i * 4, Value: i, Size: 4, Time: uint64(i * 2)})
		if s-uint64(i*2) > maxStall {
			maxStall = s - uint64(i*2)
		}
	}
	if l.StallEvents == 0 {
		t.Fatalf("no stalls despite tiny write buffer")
	}
	if maxStall > 100*cycles.BlockWriteTotal {
		t.Fatalf("stall too large for on-chip model: %d", maxStall)
	}
	l.DrainAll()
	if l.RecordsWritten != 100 {
		t.Fatalf("written = %d", l.RecordsWritten)
	}
}

func TestServiceCostIsOneBlockWrite(t *testing.T) {
	l, _ := newRig(t)
	l.MapPage(0, 0)
	l.SetDescriptor(0, 0x2000, 0x3000)
	l.Snoop(machine.LoggedWrite{VAddr: 0, Value: 1, Size: 4, Time: 50})
	done := l.DrainAll()
	if done != 50+cycles.BlockWriteTotal {
		t.Fatalf("service done at %d, want %d", done, 50+cycles.BlockWriteTotal)
	}
}

func TestPerRegionLogsViaVirtualPages(t *testing.T) {
	// Two virtual pages of the same physical segment can go to different
	// logs — impossible in the prototype (Section 3.1.2), natural here.
	l, mem := newRig(t)
	l.MapPage(0x10, 0)
	l.MapPage(0x11, 1)
	l.SetDescriptor(0, 0x2000, 0x3000)
	l.SetDescriptor(1, 0x4000, 0x5000)
	l.Snoop(machine.LoggedWrite{VAddr: 0x10004, Value: 1, Size: 4, Time: 1})
	l.Snoop(machine.LoggedWrite{VAddr: 0x11008, Value: 2, Size: 4, Time: 2})
	l.DrainAll()
	if r := logrec.Decode(mem.Frame(2)[:]); r.Value != 1 {
		t.Fatalf("log 0 record = %+v", r)
	}
	if r := logrec.Decode(mem.Frame(4)[:]); r.Value != 2 {
		t.Fatalf("log 1 record = %+v", r)
	}
}

func TestInvalidateStopsLog(t *testing.T) {
	l, _ := newRig(t)
	l.MapPage(0, 0)
	l.SetDescriptor(0, 0x2000, 0x3000)
	l.Snoop(machine.LoggedWrite{VAddr: 0, Value: 1, Size: 4, Time: 1})
	l.DrainAll()
	l.Invalidate(0)
	l.Snoop(machine.LoggedWrite{VAddr: 4, Value: 2, Size: 4, Time: 2})
	l.DrainAll()
	if l.RecordsWritten != 1 || l.RecordsLost != 1 {
		t.Fatalf("written=%d lost=%d after invalidate", l.RecordsWritten, l.RecordsLost)
	}
}

func TestUnmapPage(t *testing.T) {
	l, _ := newRig(t)
	l.MapPage(3, 0)
	l.SetDescriptor(0, 0x2000, 0x3000)
	l.UnmapPage(3)
	l.Snoop(machine.LoggedWrite{VAddr: 3 << 12, Value: 1, Size: 4, Time: 1})
	l.DrainAll()
	if l.RecordsWritten != 0 {
		t.Fatalf("unmapped page still logged")
	}
}

// TestDMAHookDropAndCorrupt mirrors the hwlogger fault-injection contract
// on the on-chip unit: a drop is tallied as a lost record and does not
// advance the descriptor; an in-place mutation lands in memory.
func TestDMAHookDropAndCorrupt(t *testing.T) {
	l, mem := newRig(t)
	l.MapPage(0, 0)
	l.SetDescriptor(0, 0x2000, 0x3000)
	l.DMAHook = func(rec *logrec.Record, dst phys.Addr) bool {
		if rec.Value == 2 {
			return true // drop
		}
		if rec.Value == 3 {
			rec.Value = 0x30003
		}
		return false
	}
	for i := uint32(1); i <= 3; i++ {
		l.Snoop(machine.LoggedWrite{VAddr: 4 * i, Value: i, Size: 4, Time: uint64(i * 10)})
	}
	l.DrainAll()
	if l.RecordsWritten != 2 || l.RecordsLost != 1 {
		t.Fatalf("written=%d lost=%d, want 2/1", l.RecordsWritten, l.RecordsLost)
	}
	recs := logrec.DecodeAll(mem.Frame(2)[:2*logrec.Size])
	if recs[0].Value != 1 || recs[1].Value != 0x30003 {
		t.Fatalf("records = %v, want value 1 then corrupted 0x30003 (dense)", recs)
	}
	if d := l.Descriptor(0); d.Addr != 0x2000+2*logrec.Size {
		t.Fatalf("descriptor = %#x, dropped record must not advance it", d.Addr)
	}
}
