// Package tlblog models the next-generation, on-chip logging hardware of
// Section 4.6 of the paper: "A processor designed to support logging could
// tag cache blocks to be logged either in the cache tags or in the TLB
// entries... TLB entries are extended to contain a log table index and the
// log table is stored inside the CPU."
//
// Differences from the prototype bus logger (package hwlogger):
//
//   - Records carry the *virtual* address of the write, so per-region
//     logging works directly and no reverse translation is needed.
//   - There are no large FIFOs and no overload interrupt: "the processor
//     is automatically stalled if there is an excessive level of write
//     activity to a logged region, the same as if it is writing rapidly to
//     a write-through region." We model a small on-chip write buffer; when
//     it is full the CPU stalls until a slot frees.
//   - There is no table-lookup latency: the TLB and log descriptor table
//     are on-chip, so a record's service cost is just its memory write
//     (one 16-byte block, 9 cycles / 8 bus).
//
// With this support "the cost of logged writes should be essentially the
// same as unlogged writes (except for the bus overhead of the log
// records)" — the ablation benchmark BenchmarkAblationLoggerModels
// verifies exactly that against the prototype model.
package tlblog

import (
	"lvm/internal/bus"
	"lvm/internal/cycles"
	"lvm/internal/logrec"
	"lvm/internal/machine"
	"lvm/internal/metrics"
	"lvm/internal/phys"
)

// DefaultWriteBuffer is the modeled on-chip write-buffer depth.
const DefaultWriteBuffer = 8

// Descriptor is one entry of the on-chip log descriptor table (Figure 13).
type Descriptor struct {
	Valid bool
	// Addr is the physical address at which the next record is written.
	Addr phys.Addr
	// Limit is the end of the space currently provided for this log;
	// reaching it invokes OnFull.
	Limit phys.Addr
}

// Logger is the on-chip logging unit. It satisfies machine.LogDevice.
type Logger struct {
	bus *bus.Bus
	mem *phys.Memory

	// tlb maps virtual page number -> log descriptor index. (A real TLB
	// is a cache over page tables; the map stands in for the whole
	// table walk since we only model timing of the log path.)
	tlb  map[uint32]uint16
	desc []Descriptor

	// OnFull lets the kernel provide more log space; return false to
	// drop further records for that log.
	OnFull func(l *Logger, logIndex uint16) bool

	// DMAHook, when non-nil, observes each record just before it is
	// written to memory at dst; it may mutate the record or return
	// drop=true to lose it. Fault-injection insertion point, mirroring
	// hwlogger.Logger.DMAHook.
	DMAHook func(rec *logrec.Record, dst phys.Addr) (drop bool)
	// hookRec is the scratch record handed to DMAHook (keeps the drain
	// path allocation-free; see hwlogger.Logger.hookRec).
	hookRec logrec.Record

	// WriteBuffer is the stall threshold (entries buffered on chip).
	WriteBuffer int

	// fifo is a ring: Snoop drains back down to WriteBuffer entries, so
	// occupancy never exceeds WriteBuffer+1 and steady-state pushes do
	// not allocate.
	fifo     []machine.LoggedWrite
	fifoHead int
	fifoLen  int
	freeAt   uint64

	// Stats.
	RecordsWritten uint64
	RecordsLost    uint64
	StallEvents    uint64

	// ms/tr: metrics shard and (possibly nil) tracer; see
	// hwlogger.Logger.SetMetrics for the wiring convention.
	ms *metrics.Shard
	tr *metrics.Tracer
}

// New creates an on-chip logger for the given bus and memory.
func New(b *bus.Bus, mem *phys.Memory) *Logger {
	return &Logger{
		bus:         b,
		mem:         mem,
		tlb:         make(map[uint32]uint16),
		desc:        make([]Descriptor, 64),
		fifo:        make([]machine.LoggedWrite, DefaultWriteBuffer+1),
		WriteBuffer: DefaultWriteBuffer,
		ms:          metrics.New(1).Shard(0),
	}
}

// SetMetrics points the on-chip unit's counters at sh and its trace
// emissions at tr (may be nil).
func (l *Logger) SetMetrics(sh *metrics.Shard, tr *metrics.Tracer) {
	if sh != nil {
		l.ms = sh
	}
	l.tr = tr
}

// MapPage associates a virtual page (by its 20-bit VPN) with a log
// descriptor, as the extended TLB entry of Figure 13 does.
func (l *Logger) MapPage(vpn uint32, logIndex uint16) { l.tlb[vpn] = logIndex }

// UnmapPage removes a virtual page's log association.
func (l *Logger) UnmapPage(vpn uint32) { delete(l.tlb, vpn) }

// SetDescriptor provides log space [addr, limit) for a log.
func (l *Logger) SetDescriptor(logIndex uint16, addr, limit phys.Addr) {
	l.desc[logIndex] = Descriptor{Valid: true, Addr: addr, Limit: limit}
}

// Descriptor returns a log's descriptor.
func (l *Logger) Descriptor(logIndex uint16) Descriptor { return l.desc[logIndex] }

// Invalidate disables a log; subsequent records for it are dropped
// (after OnFull declines).
func (l *Logger) Invalidate(logIndex uint16) { l.desc[logIndex] = Descriptor{} }

func (l *Logger) pending() int { return l.fifoLen }

func (l *Logger) push(w machine.LoggedWrite) {
	if l.fifoLen == 0 {
		// Empty ring: rewind to keep the drained steady state in the
		// same host cache lines.
		l.fifoHead = 0
	} else if l.fifoLen == len(l.fifo) {
		// WriteBuffer was raised after New: grow the ring once.
		n := 2 * len(l.fifo)
		if n < l.WriteBuffer+1 {
			n = l.WriteBuffer + 1
		}
		if n == 0 {
			n = 1
		}
		grown := make([]machine.LoggedWrite, n)
		for i := 0; i < l.fifoLen; i++ {
			grown[i] = l.fifo[(l.fifoHead+i)%len(l.fifo)]
		}
		l.fifo = grown
		l.fifoHead = 0
	}
	idx := l.fifoHead + l.fifoLen
	if idx >= len(l.fifo) {
		idx -= len(l.fifo)
	}
	l.fifo[idx] = w
	l.fifoLen++
}

// Snoop accepts a logged write. If the on-chip write buffer is full the
// CPU stalls until the oldest buffered record drains.
func (l *Logger) Snoop(w machine.LoggedWrite) (stallUntil uint64) {
	l.push(w)
	stall := w.Time
	for l.pending() > l.WriteBuffer {
		l.serviceOne()
		l.StallEvents++
		l.ms.Inc(metrics.ChipStallEvents)
		if l.freeAt > stall {
			stall = l.freeAt
		}
	}
	if stall > w.Time {
		l.ms.Add(metrics.ChipStallCycles, stall-w.Time)
		l.tr.Emit(w.Time, metrics.EvChipStall, int(w.CPU), stall-w.Time, 0)
	}
	return stall
}

// PumpUntil drains buffered records whose bus request precedes cycle t
// (first-come-first-served arbitration with the CPUs).
func (l *Logger) PumpUntil(t uint64) {
	lead := uint64(cycles.BlockWriteTotal - cycles.BlockWriteBus)
	for l.pending() > 0 {
		start := l.freeAt
		if e := l.fifo[l.fifoHead]; e.Time > start {
			start = e.Time
		}
		if start+lead >= t {
			return
		}
		l.serviceOne()
	}
}

// DrainAll drains everything and returns the idle cycle.
func (l *Logger) DrainAll() uint64 {
	for l.pending() > 0 {
		l.serviceOne()
	}
	return l.freeAt
}

func (l *Logger) serviceOne() {
	e := l.fifo[l.fifoHead]
	l.fifoHead++
	if l.fifoHead == len(l.fifo) {
		l.fifoHead = 0
	}
	l.fifoLen--
	start := l.freeAt
	if e.Time > start {
		start = e.Time
	}

	idx, ok := l.tlb[e.VAddr>>phys.PageShift]
	if !ok {
		l.ms.Inc(metrics.ChipDescMisses)
		l.recordLost()
		l.freeAt = start
		return
	}
	d := &l.desc[idx]
	if !d.Valid || d.Addr+logrec.Size > d.Limit {
		l.ms.Inc(metrics.ChipDescMisses)
		if l.OnFull == nil || !l.OnFull(l, idx) {
			l.recordLost()
			l.freeAt = start
			return
		}
		d = &l.desc[idx]
		if !d.Valid || d.Addr+logrec.Size > d.Limit {
			l.recordLost()
			l.freeAt = start
			return
		}
	} else {
		l.ms.Inc(metrics.ChipDescHits)
	}

	// One 16-byte block write over the bus; no lookup latency (on-chip
	// tables).
	grant := l.bus.Acquire(start+uint64(cycles.BlockWriteTotal-cycles.BlockWriteBus), cycles.BlockWriteBus)
	complete := grant + cycles.BlockWriteBus

	rec := logrec.Record{
		Addr:      e.VAddr, // virtual address, Section 4.6
		Value:     e.Value,
		WriteSize: e.Size,
		CPU:       e.CPU,
		Timestamp: cycles.ToTimestamp(e.Time),
	}
	if l.DMAHook != nil {
		l.hookRec = rec
		if l.DMAHook(&l.hookRec, d.Addr) {
			l.recordLost()
			l.freeAt = complete
			return
		}
		rec = l.hookRec
	}
	var buf [logrec.Size]byte
	rec.Encode(buf[:])
	l.mem.WriteBlock16(d.Addr, &buf)
	d.Addr += logrec.Size
	l.RecordsWritten++
	l.ms.Inc(metrics.ChipRecordsDMAed)
	l.freeAt = complete
}

// recordLost tallies a dropped record in both the legacy stats field and
// the metrics shard.
func (l *Logger) recordLost() {
	l.RecordsLost++
	l.ms.Inc(metrics.ChipRecordsLost)
}
