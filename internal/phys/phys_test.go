package phys

import (
	"testing"
	"testing/quick"
)

func TestAllocReleaseCycle(t *testing.T) {
	m := NewMemory(8)
	if m.NumFrames() != 8 {
		t.Fatalf("NumFrames = %d, want 8", m.NumFrames())
	}
	seen := map[uint32]bool{}
	var frames []uint32
	for i := 0; i < 7; i++ {
		f, err := m.Alloc()
		if err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
		if f == 0 {
			t.Fatalf("Alloc returned reserved frame 0")
		}
		if seen[f] {
			t.Fatalf("Alloc returned duplicate frame %d", f)
		}
		seen[f] = true
		frames = append(frames, f)
	}
	if _, err := m.Alloc(); err != ErrOutOfMemory {
		t.Fatalf("Alloc on full memory: err = %v, want ErrOutOfMemory", err)
	}
	m.Release(frames[3])
	f, err := m.Alloc()
	if err != nil {
		t.Fatalf("Alloc after release: %v", err)
	}
	if f != frames[3] {
		t.Fatalf("Alloc after release = %d, want %d", f, frames[3])
	}
}

func TestAllocZeroesRecycledFrames(t *testing.T) {
	m := NewMemory(4)
	f, _ := m.Alloc()
	m.Frame(f)[123] = 0xAB
	m.Release(f)
	g, _ := m.Alloc()
	for g != f {
		// Drain until we get the same frame back.
		var err error
		g, err = m.Alloc()
		if err != nil {
			t.Fatalf("never got frame %d back", f)
		}
	}
	if m.Frame(g)[123] != 0 {
		t.Fatalf("recycled frame not zeroed")
	}
}

func TestReleaseInvalidPanics(t *testing.T) {
	m := NewMemory(4)
	defer func() {
		if recover() == nil {
			t.Fatalf("Release(0) did not panic")
		}
	}()
	m.Release(0)
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := NewMemory(8)
	f1, _ := m.Alloc()
	f2, _ := m.Alloc()
	// Force f1 and f2 to be physically adjacent is not guaranteed; use a
	// single frame for the aligned case.
	base := FrameBase(f1)
	m.Write32(base+16, 0xDEADBEEF)
	if got := m.Read32(base + 16); got != 0xDEADBEEF {
		t.Fatalf("Read32 = %#x, want 0xDEADBEEF", got)
	}
	buf := []byte{1, 2, 3, 4, 5}
	m.Write(base+100, buf)
	out := make([]byte, 5)
	m.Read(base+100, out)
	for i := range buf {
		if out[i] != buf[i] {
			t.Fatalf("Read mismatch at %d: %d != %d", i, out[i], buf[i])
		}
	}
	_ = f2
}

func TestCrossPageReadWrite(t *testing.T) {
	// Allocate enough frames that two adjacent frame numbers exist.
	m := NewMemory(16)
	var fs []uint32
	for i := 0; i < 4; i++ {
		f, _ := m.Alloc()
		fs = append(fs, f)
	}
	// Find two physically adjacent frames.
	var lo uint32
	found := false
	for _, a := range fs {
		for _, b := range fs {
			if b == a+1 {
				lo, found = a, true
			}
		}
	}
	if !found {
		t.Skip("no adjacent frames allocated")
	}
	addr := FrameBase(lo) + PageSize - 2
	m.Write32(addr, 0x11223344)
	if got := m.Read32(addr); got != 0x11223344 {
		t.Fatalf("cross-page Read32 = %#x", got)
	}
}

func TestPPNAndPageBase(t *testing.T) {
	if PPN(0x1250) != 1 {
		t.Fatalf("PPN(0x1250) = %d, want 1", PPN(0x1250))
	}
	if PageBase(0x1250) != 0x1000 {
		t.Fatalf("PageBase(0x1250) = %#x, want 0x1000", PageBase(0x1250))
	}
}

func TestWrite32ReadBackProperty(t *testing.T) {
	m := NewMemory(8)
	f, _ := m.Alloc()
	base := FrameBase(f)
	prop := func(off uint16, v uint32) bool {
		o := uint32(off) % (PageSize - 4)
		m.Write32(base+o, v)
		return m.Read32(base+o) == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
