// Package phys models the physical memory of the simulated ParaDiGM
// machine: a 32-bit physical address space divided into 4 KiB page frames.
//
// Frames are allocated lazily so that a Memory with a large nominal
// capacity costs nothing until it is touched. The hardware logger and the
// virtual-memory system both address this memory by physical address; the
// logger's page-mapping table is keyed by the 20-bit physical page number.
package phys

import (
	"errors"
	"fmt"
)

// Addr is a 32-bit physical address.
type Addr = uint32

const (
	// PageSize is the machine page size (4 KiB, Section 3.1).
	PageSize = 4096
	// PageShift is log2(PageSize).
	PageShift = 12
	// PageMask extracts the offset within a page.
	PageMask = PageSize - 1
)

// PPN returns the physical page number of addr.
func PPN(addr Addr) uint32 { return addr >> PageShift }

// PageBase returns the first address of the page containing addr.
func PageBase(addr Addr) Addr { return addr &^ Addr(PageMask) }

// ErrOutOfMemory is returned when no free frame remains.
var ErrOutOfMemory = errors.New("phys: out of page frames")

// Memory is the machine's physical memory: an array of page frames with a
// simple free-list allocator. Frame 0 is reserved (never allocated) so that
// physical address 0 can serve as an "invalid" sentinel.
type Memory struct {
	frames    []*[PageSize]byte
	free      []uint32
	allocated int
}

// NewMemory creates a physical memory with the given number of 4 KiB page
// frames. The frame storage is allocated lazily, on first Alloc of each
// frame.
func NewMemory(numFrames int) *Memory {
	if numFrames < 2 {
		numFrames = 2
	}
	m := &Memory{frames: make([]*[PageSize]byte, numFrames)}
	m.free = make([]uint32, 0, numFrames-1)
	// Keep allocation order low-to-high for reproducibility.
	for f := numFrames - 1; f >= 1; f-- {
		m.free = append(m.free, uint32(f))
	}
	return m
}

// NumFrames reports the total number of frames, including reserved frame 0.
func (m *Memory) NumFrames() int { return len(m.frames) }

// Allocated reports how many frames are currently allocated.
func (m *Memory) Allocated() int { return m.allocated }

// Free reports how many frames remain allocatable.
func (m *Memory) Free() int { return len(m.free) }

// Alloc allocates one zeroed page frame and returns its frame number.
func (m *Memory) Alloc() (uint32, error) {
	if len(m.free) == 0 {
		return 0, ErrOutOfMemory
	}
	f := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	if m.frames[f] == nil {
		m.frames[f] = new([PageSize]byte)
	} else {
		*m.frames[f] = [PageSize]byte{}
	}
	m.allocated++
	return f, nil
}

// Release returns a frame to the free list. Releasing frame 0 or an
// unallocated frame panics: it indicates a kernel bug.
func (m *Memory) Release(frame uint32) {
	if frame == 0 || int(frame) >= len(m.frames) || m.frames[frame] == nil {
		panic(fmt.Sprintf("phys: release of invalid frame %d", frame))
	}
	m.allocated--
	m.free = append(m.free, frame)
}

// Frame returns the backing bytes of an allocated frame.
func (m *Memory) Frame(frame uint32) *[PageSize]byte {
	if int(frame) >= len(m.frames) || m.frames[frame] == nil {
		panic(fmt.Sprintf("phys: access to unallocated frame %d", frame))
	}
	return m.frames[frame]
}

// FrameBase returns the physical address of the first byte of a frame.
func FrameBase(frame uint32) Addr { return Addr(frame) << PageShift }

// Read copies len(dst) bytes starting at physical address addr. The range
// must not cross a page boundary into an unallocated frame.
func (m *Memory) Read(addr Addr, dst []byte) {
	for len(dst) > 0 {
		f := m.Frame(PPN(addr))
		off := int(addr & PageMask)
		n := copy(dst, f[off:])
		dst = dst[n:]
		addr += Addr(n)
	}
}

// Write copies src to physical address addr.
func (m *Memory) Write(addr Addr, src []byte) {
	for len(src) > 0 {
		f := m.Frame(PPN(addr))
		off := int(addr & PageMask)
		n := copy(f[off:], src)
		src = src[n:]
		addr += Addr(n)
	}
}

// WriteBlock16 writes one 16-byte block at addr: the DMA unit of a log
// record. The fixed size compiles to straight-line stores, so the
// logger's per-record write avoids a memmove call.
func (m *Memory) WriteBlock16(addr Addr, src *[16]byte) {
	off := addr & PageMask
	if off+16 <= PageSize {
		f := m.Frame(PPN(addr))
		*(*[16]byte)(f[off:]) = *src
		return
	}
	m.Write(addr, src[:])
}

// Read32 reads a 32-bit little-endian word at addr.
func (m *Memory) Read32(addr Addr) uint32 {
	f := m.Frame(PPN(addr))
	off := addr & PageMask
	if off+4 <= PageSize {
		b := f[off : off+4 : off+4]
		return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	}
	var b [4]byte
	m.Read(addr, b[:])
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Write32 writes a 32-bit little-endian word at addr.
func (m *Memory) Write32(addr Addr, v uint32) {
	f := m.Frame(PPN(addr))
	off := addr & PageMask
	if off+4 <= PageSize {
		b := f[off : off+4 : off+4]
		b[0] = byte(v)
		b[1] = byte(v >> 8)
		b[2] = byte(v >> 16)
		b[3] = byte(v >> 24)
		return
	}
	var b [4]byte
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	m.Write(addr, b[:])
}
