// Package trace analyzes LVM write logs as address traces, per Section 1
// of the paper: "Logging can also be used to obtain a detailed address
// trace of a program, which can be useful for detecting and isolating
// performance problems or as input to memory system simulators", and
// Section 2.7: "the logs provide the information required to identify and
// eliminate these redundant writes."
package trace

import (
	"fmt"
	"sort"
	"strings"

	"lvm/internal/core"
)

// Analysis summarizes a write log.
type Analysis struct {
	Records int
	// BytesWritten is the total payload volume.
	BytesWritten uint64
	// PageWrites counts writes per segment page.
	PageWrites map[uint32]int
	// HotAddrs is the top-N most written word addresses (segment
	// offsets), descending.
	HotAddrs []AddrCount
	// RedundantWrites counts writes that stored a value over an
	// identical value at the same address (the log's before-state
	// reconstruction shows the write changed nothing).
	RedundantWrites int
	// RepeatedWrites counts consecutive-in-log writes to the same
	// address (rapid re-update, the paper's "repeatedly writes the same
	// location when only the last write is of interest").
	RepeatedWrites int
	// CPUWrites counts records per issuing processor.
	CPUWrites map[uint16]int
}

// AddrCount pairs an address with its write count.
type AddrCount struct {
	SegOff uint32
	Count  int
}

// Analyze scans the log of seg held in ls.
func Analyze(sys *core.System, seg, ls *core.Segment, topN int) Analysis {
	a := Analysis{
		PageWrites: map[uint32]int{},
		CPUWrites:  map[uint16]int{},
	}
	counts := map[uint32]int{}
	// lastVal tracks the last value written per word address for
	// redundancy detection (the initial state is all zeroes for fresh
	// segments; unknown addresses are treated as first writes).
	lastVal := map[uint32]uint32{}
	seenAddr := map[uint32]bool{}
	r := core.NewLogReader(sys, ls)
	var prevOff uint32
	prevValid := false
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		if rec.Seg != seg {
			continue
		}
		a.Records++
		a.BytesWritten += uint64(rec.WriteSize)
		a.PageWrites[rec.SegOff>>12]++
		a.CPUWrites[rec.CPU]++
		word := rec.SegOff &^ 3
		counts[word]++
		if prevValid && prevOff == word {
			a.RepeatedWrites++
		}
		prevOff, prevValid = word, true
		if rec.WriteSize == 4 {
			if seenAddr[word] && lastVal[word] == rec.Value {
				a.RedundantWrites++
			}
			lastVal[word] = rec.Value
			seenAddr[word] = true
		}
	}
	for off, n := range counts {
		a.HotAddrs = append(a.HotAddrs, AddrCount{SegOff: off, Count: n})
	}
	sort.Slice(a.HotAddrs, func(i, j int) bool {
		if a.HotAddrs[i].Count != a.HotAddrs[j].Count {
			return a.HotAddrs[i].Count > a.HotAddrs[j].Count
		}
		return a.HotAddrs[i].SegOff < a.HotAddrs[j].SegOff
	})
	if topN > 0 && len(a.HotAddrs) > topN {
		a.HotAddrs = a.HotAddrs[:topN]
	}
	return a
}

// Format renders the analysis as a report.
func (a Analysis) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "records:          %d\n", a.Records)
	fmt.Fprintf(&b, "bytes written:    %d\n", a.BytesWritten)
	fmt.Fprintf(&b, "pages touched:    %d\n", len(a.PageWrites))
	fmt.Fprintf(&b, "redundant writes: %d\n", a.RedundantWrites)
	fmt.Fprintf(&b, "repeated writes:  %d\n", a.RepeatedWrites)
	if len(a.HotAddrs) > 0 {
		fmt.Fprintf(&b, "hottest addresses:\n")
		for _, h := range a.HotAddrs {
			fmt.Fprintf(&b, "  +%#08x  %6d writes\n", h.SegOff, h.Count)
		}
	}
	return b.String()
}

// AddressTrace exports the log as a plain (offset, size, value, timestamp)
// trace suitable as memory-system-simulator input.
func AddressTrace(sys *core.System, seg, ls *core.Segment) []core.Record {
	r := core.NewLogReader(sys, ls)
	var out []core.Record
	for {
		rec, ok := r.Next()
		if !ok {
			return out
		}
		if rec.Seg == seg {
			out = append(out, rec)
		}
	}
}

// CacheSim is a trace-driven set-associative cache simulator fed by LVM
// write logs — the paper's Section 1 use: "a detailed address trace of a
// program, which can be useful... as input to memory system simulators."
type CacheSim struct {
	lineShift uint32
	sets      uint32
	assoc     int
	// tags[set] is an LRU-ordered list (front = most recent).
	tags [][]uint32

	Accesses uint64
	Misses   uint64
}

// NewCacheSim builds a simulator with the given total capacity, line size
// and associativity (all powers of two; assoc 0 = fully associative).
func NewCacheSim(capacity, lineSize uint32, assoc int) (*CacheSim, error) {
	if capacity == 0 || lineSize == 0 || capacity%lineSize != 0 {
		return nil, fmt.Errorf("trace: bad cache geometry %d/%d", capacity, lineSize)
	}
	lines := capacity / lineSize
	if assoc <= 0 || uint32(assoc) > lines {
		assoc = int(lines)
	}
	sets := lines / uint32(assoc)
	ls := uint32(0)
	for (uint32(1) << ls) < lineSize {
		ls++
	}
	c := &CacheSim{lineShift: ls, sets: sets, assoc: assoc, tags: make([][]uint32, sets)}
	return c, nil
}

// Access touches one address, returning whether it hit.
func (c *CacheSim) Access(addr uint32) bool {
	c.Accesses++
	line := addr >> c.lineShift
	set := line % c.sets
	tag := line / c.sets
	ways := c.tags[set]
	for i, t := range ways {
		if t == tag {
			// Move to front (LRU).
			copy(ways[1:i+1], ways[:i])
			ways[0] = tag
			return true
		}
	}
	c.Misses++
	if len(ways) < c.assoc {
		ways = append(ways, 0)
	}
	copy(ways[1:], ways)
	ways[0] = tag
	c.tags[set] = ways
	return false
}

// MissRate reports the miss ratio so far.
func (c *CacheSim) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// SimulateCache replays a write log through a cache model and reports the
// final simulator state.
func SimulateCache(sys *core.System, seg, ls *core.Segment, capacity, lineSize uint32, assoc int) (*CacheSim, error) {
	c, err := NewCacheSim(capacity, lineSize, assoc)
	if err != nil {
		return nil, err
	}
	r := core.NewLogReader(sys, ls)
	for {
		rec, ok := r.Next()
		if !ok {
			return c, nil
		}
		if rec.Seg != seg {
			continue
		}
		c.Access(rec.SegOff)
	}
}
