package trace

import (
	"strings"
	"testing"

	"lvm/internal/core"
)

func rig(t *testing.T) (*core.System, *core.Segment, *core.Segment, *core.Process, core.Addr) {
	t.Helper()
	sys := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 2048})
	seg := core.NewNamedSegment(sys, "prog", 2*core.PageSize, nil)
	reg := core.NewStdRegion(sys, seg)
	ls := core.NewLogSegment(sys, 32)
	if err := reg.Log(ls); err != nil {
		t.Fatal(err)
	}
	as := sys.NewAddressSpace()
	base, err := reg.Bind(as, 0)
	if err != nil {
		t.Fatal(err)
	}
	return sys, seg, ls, sys.NewProcess(0, as), base
}

func TestCountsAndPages(t *testing.T) {
	sys, seg, ls, p, base := rig(t)
	for i := uint32(0); i < 10; i++ {
		p.Store32(base+i*4, i)
	}
	p.Store32(base+core.PageSize, 1) // second page
	a := Analyze(sys, seg, ls, 5)
	if a.Records != 11 {
		t.Fatalf("records = %d", a.Records)
	}
	if len(a.PageWrites) != 2 || a.PageWrites[0] != 10 || a.PageWrites[1] != 1 {
		t.Fatalf("page writes = %v", a.PageWrites)
	}
	if a.BytesWritten != 44 {
		t.Fatalf("bytes = %d", a.BytesWritten)
	}
}

func TestHotAddresses(t *testing.T) {
	sys, seg, ls, p, base := rig(t)
	for i := 0; i < 7; i++ {
		p.Store32(base+0x40, uint32(i))
	}
	p.Store32(base+0x80, 1)
	a := Analyze(sys, seg, ls, 2)
	if len(a.HotAddrs) != 2 || a.HotAddrs[0].SegOff != 0x40 || a.HotAddrs[0].Count != 7 {
		t.Fatalf("hot addrs = %+v", a.HotAddrs)
	}
}

func TestRedundantAndRepeatedWrites(t *testing.T) {
	sys, seg, ls, p, base := rig(t)
	p.Store32(base, 5)
	p.Store32(base, 5) // redundant (same value) and repeated
	p.Store32(base, 6) // repeated only
	p.Store32(base+4, 6)
	a := Analyze(sys, seg, ls, 0)
	if a.RedundantWrites != 1 {
		t.Fatalf("redundant = %d, want 1", a.RedundantWrites)
	}
	if a.RepeatedWrites != 2 {
		t.Fatalf("repeated = %d, want 2", a.RepeatedWrites)
	}
}

func TestFormatReport(t *testing.T) {
	sys, seg, ls, p, base := rig(t)
	p.Store32(base, 1)
	s := Analyze(sys, seg, ls, 3).Format()
	if !strings.Contains(s, "records:") || !strings.Contains(s, "hottest addresses:") {
		t.Fatalf("report = %q", s)
	}
}

func TestAddressTraceOrdered(t *testing.T) {
	sys, seg, ls, p, base := rig(t)
	for i := uint32(0); i < 20; i++ {
		p.Store32(base+(i%5)*8, i)
	}
	tr := AddressTrace(sys, seg, ls)
	if len(tr) != 20 {
		t.Fatalf("trace length = %d", len(tr))
	}
	for i := 1; i < len(tr); i++ {
		if tr[i].Timestamp < tr[i-1].Timestamp {
			t.Fatalf("trace out of order at %d", i)
		}
	}
	if tr[3].Value != 3 {
		t.Fatalf("trace value = %d", tr[3].Value)
	}
}

func TestCPUAttribution(t *testing.T) {
	sys, seg, ls, p, base := rig(t)
	p.Store32(base, 1)
	a := Analyze(sys, seg, ls, 0)
	if a.CPUWrites[0] != 1 {
		t.Fatalf("cpu attribution = %v", a.CPUWrites)
	}
}

func TestCacheSimDirectMapped(t *testing.T) {
	c, err := NewCacheSim(64, 16, 1) // 4 lines, direct-mapped
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0x00) {
		t.Fatalf("cold access hit")
	}
	if !c.Access(0x04) {
		t.Fatalf("same-line access missed")
	}
	// 0x40 conflicts with 0x00 (same set, 4 sets of 16B).
	if c.Access(0x40) {
		t.Fatalf("conflicting access hit")
	}
	if c.Access(0x00) {
		t.Fatalf("evicted line still present")
	}
	if c.Misses != 3 || c.Accesses != 4 {
		t.Fatalf("stats: %d/%d", c.Misses, c.Accesses)
	}
}

func TestCacheSimAssociativityHelps(t *testing.T) {
	// Two conflicting lines ping-ponging: direct-mapped thrashes, 2-way
	// holds both.
	dm, _ := NewCacheSim(64, 16, 1)
	tw, _ := NewCacheSim(64, 16, 2)
	for i := 0; i < 20; i++ {
		dm.Access(0x00)
		dm.Access(0x40)
		tw.Access(0x00)
		tw.Access(0x40)
	}
	if dm.MissRate() < 0.9 {
		t.Fatalf("direct-mapped did not thrash: %.2f", dm.MissRate())
	}
	if tw.MissRate() > 0.1 {
		t.Fatalf("2-way thrashing: %.2f", tw.MissRate())
	}
}

func TestCacheSimLRU(t *testing.T) {
	c, _ := NewCacheSim(32, 16, 2) // one set, 2 ways
	c.Access(0x00)
	c.Access(0x10)
	c.Access(0x00) // refresh 0x00: 0x10 becomes LRU
	c.Access(0x20) // evicts 0x10
	if !c.Access(0x00) {
		t.Fatalf("MRU line evicted (not LRU)")
	}
	if c.Access(0x10) {
		t.Fatalf("LRU line survived")
	}
}

func TestSimulateCacheFromLog(t *testing.T) {
	sys, seg, ls, p, base := rig(t)
	// Sequential writes over 2 KiB: with a 1 KiB cache, 16B lines, the
	// second pass misses everything (capacity), first pass misses once
	// per line.
	for pass := 0; pass < 2; pass++ {
		for off := uint32(0); off < 2048; off += 16 {
			p.Store32(base+off, off)
		}
	}
	c, err := SimulateCache(sys, seg, ls, 1024, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Accesses != 256 {
		t.Fatalf("accesses = %d", c.Accesses)
	}
	if c.Misses != 256 {
		t.Fatalf("misses = %d, want 256 (sequential sweep larger than cache)", c.Misses)
	}
	// A cache big enough holds the working set: second pass all hits.
	c2, _ := SimulateCache(sys, seg, ls, 4096, 16, 0)
	if c2.Misses != 128 {
		t.Fatalf("large-cache misses = %d, want 128 cold misses", c2.Misses)
	}
}

func TestCacheSimBadGeometry(t *testing.T) {
	if _, err := NewCacheSim(100, 16, 1); err == nil {
		t.Fatalf("non-multiple capacity accepted")
	}
	if _, err := NewCacheSim(0, 16, 1); err == nil {
		t.Fatalf("zero capacity accepted")
	}
}
