// Package ramdisk models the RAM disk that holds the RVM redo log in the
// paper's TPC-A measurement ("using a RAM disk to hold the log",
// Section 4.2).
//
// A RAM disk has no seek or rotational latency, but going through the
// block-device driver and buffer management still costs a fixed software
// overhead per operation plus a per-block transfer cost. These constants
// are calibrated so that the RVM commit + log truncation path reproduces
// the Table 3 TPC-A throughputs (418 tps for RVM, 552 tps for RLVM); see
// EXPERIMENTS.md.
package ramdisk

import (
	"fmt"

	"lvm/internal/machine"
)

// BlockSize is the device block size in bytes.
const BlockSize = 512

// Cost model (cycles).
const (
	// OpCycles is the per-request software overhead (system call, driver,
	// buffer management, completion).
	OpCycles = 12_000
	// BlockCycles is the per-block transfer cost.
	BlockCycles = 700
	// SyncCycles is the cost of a synchronizing barrier (flush).
	SyncCycles = 11_000
)

// Op identifies a device operation for the failure-injection hook.
type Op uint8

const (
	// OpRead is a ReadAt/TryReadAt request.
	OpRead Op = iota
	// OpWrite is a WriteAt/TryWriteAt request.
	OpWrite
	// OpSync is a Sync/TrySync barrier.
	OpSync
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return "sync"
	}
}

// Device is the block-device surface the recoverable-memory managers
// (internal/rvm, internal/rlvm) write through. *Disk implements it;
// internal/recovery wraps one with bounded retry-with-backoff so
// transient faults are absorbed below the managers.
type Device interface {
	// TryReadAt reads len(out) bytes starting at off. On error the
	// operation's cycles are still charged (the request reached the
	// device) but out is untouched.
	TryReadAt(cpu *machine.CPU, off uint64, out []byte) error
	// TryWriteAt stores data starting at off. On error no bytes are
	// written: a failed commit write leaves a torn record for the WAL
	// scan to detect, never a partial silent success.
	TryWriteAt(cpu *machine.CPU, off uint64, data []byte) error
	// TrySync is a flush barrier.
	TrySync(cpu *machine.CPU) error
}

// Disk is a RAM disk: an array of blocks with a cycle cost model.
type Disk struct {
	blocks map[uint32][]byte

	// FailHook, when non-nil, may fail an operation before any data
	// moves (the fault injector's transient-error surface). The failed
	// op is still charged its device cycles and counted in FailedOps.
	FailHook func(op Op, off uint64, n int) error

	// Stats.
	Reads, Writes, Syncs uint64
	BlocksMoved          uint64
	FailedOps            uint64
}

// New creates an empty RAM disk.
func New() *Disk { return &Disk{blocks: make(map[uint32][]byte)} }

// WriteAt stores data starting at the given byte offset, charging the
// device cost to cpu (nil = uncharged, e.g. during recovery replay).
// Injected failures are dropped; fault-aware callers use TryWriteAt.
func (d *Disk) WriteAt(cpu *machine.CPU, off uint64, data []byte) {
	_ = d.TryWriteAt(cpu, off, data)
}

// TryWriteAt implements Device.
func (d *Disk) TryWriteAt(cpu *machine.CPU, off uint64, data []byte) error {
	nblocks := d.span(off, len(data))
	d.Writes++
	d.BlocksMoved += nblocks
	if cpu != nil {
		cpu.Compute(OpCycles + nblocks*BlockCycles)
	}
	if d.FailHook != nil {
		if err := d.FailHook(OpWrite, off, len(data)); err != nil {
			d.FailedOps++
			return err
		}
	}
	for len(data) > 0 {
		bn := uint32(off / BlockSize)
		bo := int(off % BlockSize)
		blk := d.block(bn)
		n := copy(blk[bo:], data)
		data = data[n:]
		off += uint64(n)
	}
	return nil
}

// ReadAt reads len(out) bytes starting at off, dropping injected
// failures; fault-aware callers use TryReadAt.
func (d *Disk) ReadAt(cpu *machine.CPU, off uint64, out []byte) {
	_ = d.TryReadAt(cpu, off, out)
}

// TryReadAt implements Device.
func (d *Disk) TryReadAt(cpu *machine.CPU, off uint64, out []byte) error {
	nblocks := d.span(off, len(out))
	d.Reads++
	d.BlocksMoved += nblocks
	if cpu != nil {
		cpu.Compute(OpCycles + nblocks*BlockCycles)
	}
	if d.FailHook != nil {
		if err := d.FailHook(OpRead, off, len(out)); err != nil {
			d.FailedOps++
			return err
		}
	}
	for len(out) > 0 {
		bn := uint32(off / BlockSize)
		bo := int(off % BlockSize)
		blk := d.block(bn)
		n := copy(out, blk[bo:])
		out = out[n:]
		off += uint64(n)
	}
	return nil
}

// Sync charges a flush barrier, dropping injected failures.
func (d *Disk) Sync(cpu *machine.CPU) {
	_ = d.TrySync(cpu)
}

// TrySync implements Device.
func (d *Disk) TrySync(cpu *machine.CPU) error {
	d.Syncs++
	if cpu != nil {
		cpu.Compute(SyncCycles)
	}
	if d.FailHook != nil {
		if err := d.FailHook(OpSync, 0, 0); err != nil {
			d.FailedOps++
			return err
		}
	}
	return nil
}

func (d *Disk) block(bn uint32) []byte {
	blk, ok := d.blocks[bn]
	if !ok {
		blk = make([]byte, BlockSize)
		d.blocks[bn] = blk
	}
	return blk
}

func (d *Disk) span(off uint64, n int) uint64 {
	if n == 0 {
		return 0
	}
	first := off / BlockSize
	last := (off + uint64(n) - 1) / BlockSize
	return last - first + 1
}

// String summarizes device activity.
func (d *Disk) String() string {
	return fmt.Sprintf("ramdisk{reads=%d writes=%d syncs=%d blocks=%d}", d.Reads, d.Writes, d.Syncs, d.BlocksMoved)
}
