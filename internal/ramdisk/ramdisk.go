// Package ramdisk models the RAM disk that holds the RVM redo log in the
// paper's TPC-A measurement ("using a RAM disk to hold the log",
// Section 4.2).
//
// A RAM disk has no seek or rotational latency, but going through the
// block-device driver and buffer management still costs a fixed software
// overhead per operation plus a per-block transfer cost. These constants
// are calibrated so that the RVM commit + log truncation path reproduces
// the Table 3 TPC-A throughputs (418 tps for RVM, 552 tps for RLVM); see
// EXPERIMENTS.md.
package ramdisk

import (
	"fmt"

	"lvm/internal/machine"
)

// BlockSize is the device block size in bytes.
const BlockSize = 512

// Cost model (cycles).
const (
	// OpCycles is the per-request software overhead (system call, driver,
	// buffer management, completion).
	OpCycles = 12_000
	// BlockCycles is the per-block transfer cost.
	BlockCycles = 700
	// SyncCycles is the cost of a synchronizing barrier (flush).
	SyncCycles = 11_000
)

// Disk is a RAM disk: an array of blocks with a cycle cost model.
type Disk struct {
	blocks map[uint32][]byte

	// Stats.
	Reads, Writes, Syncs uint64
	BlocksMoved          uint64
}

// New creates an empty RAM disk.
func New() *Disk { return &Disk{blocks: make(map[uint32][]byte)} }

// WriteAt stores data starting at the given byte offset, charging the
// device cost to cpu (nil = uncharged, e.g. during recovery replay).
func (d *Disk) WriteAt(cpu *machine.CPU, off uint64, data []byte) {
	nblocks := d.span(off, len(data))
	d.Writes++
	d.BlocksMoved += nblocks
	if cpu != nil {
		cpu.Compute(OpCycles + nblocks*BlockCycles)
	}
	for len(data) > 0 {
		bn := uint32(off / BlockSize)
		bo := int(off % BlockSize)
		blk := d.block(bn)
		n := copy(blk[bo:], data)
		data = data[n:]
		off += uint64(n)
	}
}

// ReadAt reads len(out) bytes starting at off.
func (d *Disk) ReadAt(cpu *machine.CPU, off uint64, out []byte) {
	nblocks := d.span(off, len(out))
	d.Reads++
	d.BlocksMoved += nblocks
	if cpu != nil {
		cpu.Compute(OpCycles + nblocks*BlockCycles)
	}
	for len(out) > 0 {
		bn := uint32(off / BlockSize)
		bo := int(off % BlockSize)
		blk := d.block(bn)
		n := copy(out, blk[bo:])
		out = out[n:]
		off += uint64(n)
	}
}

// Sync charges a flush barrier.
func (d *Disk) Sync(cpu *machine.CPU) {
	d.Syncs++
	if cpu != nil {
		cpu.Compute(SyncCycles)
	}
}

func (d *Disk) block(bn uint32) []byte {
	blk, ok := d.blocks[bn]
	if !ok {
		blk = make([]byte, BlockSize)
		d.blocks[bn] = blk
	}
	return blk
}

func (d *Disk) span(off uint64, n int) uint64 {
	if n == 0 {
		return 0
	}
	first := off / BlockSize
	last := (off + uint64(n) - 1) / BlockSize
	return last - first + 1
}

// String summarizes device activity.
func (d *Disk) String() string {
	return fmt.Sprintf("ramdisk{reads=%d writes=%d syncs=%d blocks=%d}", d.Reads, d.Writes, d.Syncs, d.BlocksMoved)
}
