package ramdisk

import (
	"bytes"
	"errors"
	"testing"

	"lvm/internal/machine"
)

func cpu() *machine.CPU {
	m := machine.New(machine.Config{NumCPUs: 1, MemFrames: 4})
	return m.CPUs[0]
}

func TestReadBackWrites(t *testing.T) {
	d := New()
	c := cpu()
	data := []byte("recoverable virtual memory")
	d.WriteAt(c, 100, data)
	out := make([]byte, len(data))
	d.ReadAt(c, 100, out)
	if !bytes.Equal(out, data) {
		t.Fatalf("read back %q", out)
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	d := New()
	out := make([]byte, 16)
	d.ReadAt(nil, 5000, out)
	for _, b := range out {
		if b != 0 {
			t.Fatalf("unwritten block not zero")
		}
	}
}

func TestCostModel(t *testing.T) {
	d := New()
	c := cpu()
	before := c.Now
	d.WriteAt(c, 0, make([]byte, BlockSize)) // exactly one block
	if got := c.Now - before; got != OpCycles+BlockCycles {
		t.Fatalf("1-block write cost = %d, want %d", got, OpCycles+BlockCycles)
	}
	before = c.Now
	d.WriteAt(c, BlockSize-1, make([]byte, 2)) // spans two blocks
	if got := c.Now - before; got != OpCycles+2*BlockCycles {
		t.Fatalf("spanning write cost = %d, want %d", got, OpCycles+2*BlockCycles)
	}
	before = c.Now
	d.Sync(c)
	if got := c.Now - before; got != SyncCycles {
		t.Fatalf("sync cost = %d", got)
	}
}

func TestStatsAndString(t *testing.T) {
	d := New()
	d.WriteAt(nil, 0, []byte{1})
	d.ReadAt(nil, 0, make([]byte, 1))
	d.Sync(nil)
	if d.Writes != 1 || d.Reads != 1 || d.Syncs != 1 {
		t.Fatalf("stats: %s", d)
	}
	if d.String() == "" {
		t.Fatalf("empty String")
	}
}

func TestCrossBlockIntegrity(t *testing.T) {
	d := New()
	big := make([]byte, 3*BlockSize+37)
	for i := range big {
		big[i] = byte(i * 7)
	}
	d.WriteAt(nil, 777, big)
	out := make([]byte, len(big))
	d.ReadAt(nil, 777, out)
	if !bytes.Equal(out, big) {
		t.Fatalf("cross-block data corrupted")
	}
}

func TestFailHookFailsOpButChargesCycles(t *testing.T) {
	d := New()
	c := cpu()
	d.WriteAt(nil, 0, []byte{0xAA})

	var ops []Op
	injected := errors.New("transient device error")
	d.FailHook = func(op Op, off uint64, n int) error {
		ops = append(ops, op)
		return injected
	}

	before := c.Now
	if err := d.TryWriteAt(c, 0, []byte{0xBB}); !errors.Is(err, injected) {
		t.Fatalf("TryWriteAt err = %v", err)
	}
	// The failed op still cost its device cycles (the request reached the
	// device before the error surfaced).
	if c.Now-before != OpCycles+BlockCycles {
		t.Fatalf("failed write charged %d cycles, want %d", c.Now-before, OpCycles+BlockCycles)
	}
	// ...and moved no data.
	out := make([]byte, 1)
	d.FailHook = nil
	d.ReadAt(nil, 0, out)
	if out[0] != 0xAA {
		t.Fatalf("failed write mutated the disk: %#x", out[0])
	}

	d.FailHook = func(op Op, off uint64, n int) error {
		ops = append(ops, op)
		return injected
	}
	if err := d.TryReadAt(c, 0, out); !errors.Is(err, injected) {
		t.Fatalf("TryReadAt err = %v", err)
	}
	if out[0] != 0xAA {
		t.Fatalf("failed read touched the output buffer")
	}
	if err := d.TrySync(c); !errors.Is(err, injected) {
		t.Fatalf("TrySync err = %v", err)
	}
	if d.FailedOps != 3 {
		t.Fatalf("FailedOps = %d, want 3", d.FailedOps)
	}
	want := []Op{OpWrite, OpRead, OpSync}
	for i, op := range want {
		if ops[i] != op {
			t.Fatalf("hook ops = %v, want %v", ops, want)
		}
	}
	if OpRead.String() != "read" || OpWrite.String() != "write" || OpSync.String() != "sync" {
		t.Fatalf("Op.String broken")
	}
}
