package ramdisk

import (
	"bytes"
	"testing"

	"lvm/internal/machine"
)

func cpu() *machine.CPU {
	m := machine.New(machine.Config{NumCPUs: 1, MemFrames: 4})
	return m.CPUs[0]
}

func TestReadBackWrites(t *testing.T) {
	d := New()
	c := cpu()
	data := []byte("recoverable virtual memory")
	d.WriteAt(c, 100, data)
	out := make([]byte, len(data))
	d.ReadAt(c, 100, out)
	if !bytes.Equal(out, data) {
		t.Fatalf("read back %q", out)
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	d := New()
	out := make([]byte, 16)
	d.ReadAt(nil, 5000, out)
	for _, b := range out {
		if b != 0 {
			t.Fatalf("unwritten block not zero")
		}
	}
}

func TestCostModel(t *testing.T) {
	d := New()
	c := cpu()
	before := c.Now
	d.WriteAt(c, 0, make([]byte, BlockSize)) // exactly one block
	if got := c.Now - before; got != OpCycles+BlockCycles {
		t.Fatalf("1-block write cost = %d, want %d", got, OpCycles+BlockCycles)
	}
	before = c.Now
	d.WriteAt(c, BlockSize-1, make([]byte, 2)) // spans two blocks
	if got := c.Now - before; got != OpCycles+2*BlockCycles {
		t.Fatalf("spanning write cost = %d, want %d", got, OpCycles+2*BlockCycles)
	}
	before = c.Now
	d.Sync(c)
	if got := c.Now - before; got != SyncCycles {
		t.Fatalf("sync cost = %d", got)
	}
}

func TestStatsAndString(t *testing.T) {
	d := New()
	d.WriteAt(nil, 0, []byte{1})
	d.ReadAt(nil, 0, make([]byte, 1))
	d.Sync(nil)
	if d.Writes != 1 || d.Reads != 1 || d.Syncs != 1 {
		t.Fatalf("stats: %s", d)
	}
	if d.String() == "" {
		t.Fatalf("empty String")
	}
}

func TestCrossBlockIntegrity(t *testing.T) {
	d := New()
	big := make([]byte, 3*BlockSize+37)
	for i := range big {
		big[i] = byte(i * 7)
	}
	d.WriteAt(nil, 777, big)
	out := make([]byte, len(big))
	d.ReadAt(nil, 777, out)
	if !bytes.Equal(out, big) {
		t.Fatalf("cross-block data corrupted")
	}
}
