package metrics

// The event tracer is a fixed-capacity ring of fixed-size records:
// enabling it never allocates after construction, and each Emit is a few
// stores into the preallocated ring. It is for control-plane events (page
// faults, logging faults, overloads, truncations, evictions), not for
// per-store tracing — the per-store signal is what the counters and
// histograms are for.
//
// Two switches compile or gate it away:
//
//   - the lvm_notrace build tag turns every Emit into dead code
//     (traceBuilt is an untyped false constant, so the compiler deletes
//     the body); and
//   - at runtime the tracer starts disabled, so an Emit in a hot-ish path
//     costs one predictable branch until EnableTrace is called.

// EventKind identifies a traced event.
type EventKind uint16

const (
	// EvPageFault: A = virtual page number, B = backing frame.
	EvPageFault EventKind = iota
	// EvLoggingFault: A = fault kind (hwlogger.FaultKind), B = PPN.
	EvLoggingFault
	// EvOverload: A = drain-complete cycle, B = resume cycle.
	EvOverload
	// EvLogAdvance: A = log segment id, B = fresh page number.
	EvLogAdvance
	// EvLogAbsorb: A = log segment id.
	EvLogAbsorb
	// EvLogRewind: A = log segment id, B = new append offset.
	EvLogRewind
	// EvEviction: A = segment id, B = page number.
	EvEviction
	// EvChipStall: A = stall cycles.
	EvChipStall

	numEventKinds
)

var eventKindName = [numEventKinds]string{
	EvPageFault:    "page_fault",
	EvLoggingFault: "logging_fault",
	EvOverload:     "overload",
	EvLogAdvance:   "log_advance",
	EvLogAbsorb:    "log_absorb",
	EvLogRewind:    "log_rewind",
	EvEviction:     "eviction",
	EvChipStall:    "chip_stall",
}

// String names the event kind.
func (k EventKind) String() string {
	if int(k) < len(eventKindName) {
		return eventKindName[k]
	}
	return "unknown"
}

// TraceEvent is one traced event. Time is in simulated cycles; CPU is the
// simulated CPU involved, or -1 for bus devices and the kernel acting
// outside any CPU's context.
type TraceEvent struct {
	Time uint64    `json:"time"`
	Kind EventKind `json:"kind"`
	CPU  int16     `json:"cpu"`
	A    uint64    `json:"a"`
	B    uint64    `json:"b"`
}

// KindName is Kind.String, exported on the event for JSON consumers.
func (e TraceEvent) KindName() string { return e.Kind.String() }

// DefaultTraceCapacity is the ring size NewTracer/New use by default:
// enough to hold the recent control-plane history of a long run without
// measurable memory cost (4096 * 32 bytes).
const DefaultTraceCapacity = 4096

// Tracer is the fixed-capacity ring. The zero capacity and nil tracer are
// both valid and drop everything.
type Tracer struct {
	buf     []TraceEvent
	head    int // index of oldest event
	n       int // events currently held
	dropped uint64
	enabled bool
}

// NewTracer creates a disabled tracer with the given ring capacity.
func NewTracer(capacity int) *Tracer {
	if capacity < 0 {
		capacity = 0
	}
	return &Tracer{buf: make([]TraceEvent, capacity)}
}

// Enable turns event recording on. No-op when the binary was built with
// the lvm_notrace tag.
func (t *Tracer) Enable() {
	if t != nil {
		t.enabled = traceBuilt
	}
}

// Disable turns event recording off.
func (t *Tracer) Disable() {
	if t != nil {
		t.enabled = false
	}
}

// Enabled reports whether Emit currently records.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled }

// Built reports whether tracing support was compiled in (false under the
// lvm_notrace build tag).
func Built() bool { return traceBuilt }

// Emit records an event, overwriting the oldest when the ring is full.
// It is safe on a nil tracer and compiles to nothing under lvm_notrace.
func (t *Tracer) Emit(time uint64, kind EventKind, cpu int, a, b uint64) {
	if !traceBuilt || t == nil || !t.enabled {
		return
	}
	if len(t.buf) == 0 {
		t.dropped++
		return
	}
	idx := t.head + t.n
	if idx >= len(t.buf) {
		idx -= len(t.buf)
	}
	t.buf[idx] = TraceEvent{Time: time, Kind: kind, CPU: int16(cpu), A: a, B: b}
	if t.n < len(t.buf) {
		t.n++
	} else {
		// Ring full: the slot we just wrote was the oldest event.
		t.head++
		if t.head == len(t.buf) {
			t.head = 0
		}
		t.dropped++
	}
}

// Len reports how many events the ring currently holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Dropped reports how many events were overwritten or discarded.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events copies the ring out in oldest-first order.
func (t *Tracer) Events() []TraceEvent {
	if t == nil || t.n == 0 {
		return nil
	}
	out := make([]TraceEvent, t.n)
	for i := 0; i < t.n; i++ {
		idx := t.head + i
		if idx >= len(t.buf) {
			idx -= len(t.buf)
		}
		out[i] = t.buf[idx]
	}
	return out
}

// Reset empties the ring and clears the drop count.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.head, t.n, t.dropped = 0, 0, 0
}
