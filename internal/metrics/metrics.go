// Package metrics is the simulator's zero-allocation observability layer:
// a shard-per-CPU counter/histogram registry plus a fixed-capacity
// ring-buffer event tracer (package metrics' Tracer).
//
// The paper's entire evaluation is counting — logging faults, FIFO
// overload interrupts, log bytes written, deferred-copy resets, cache
// misses (Tables 1–3, Figures 7–13) — so the hot layers (hwlogger, tlblog,
// cache, vm, machine) publish those events here, and experiments read them
// back with Snapshot instead of reaching into component internals.
//
// Design constraints, in order:
//
//  1. The logged-store hot path must stay allocation-free and within a few
//     percent of its uninstrumented speed. Counters are therefore keyed by
//     small integer IDs into preallocated per-shard arrays — an increment
//     is one indexed add, no map lookups, no interface calls, no atomics.
//  2. The simulated machine is deterministic and single-threaded per
//     instance; host-side concurrency comes from the sweep engine
//     (internal/sim) running many instances at once. Each component
//     therefore increments its own *Shard — one per simulated CPU plus one
//     for bus devices — and shards are only ever written by their owning
//     goroutine. Snapshot aggregates across shards and is safe once the
//     writers have quiesced (e.g. after sim.Map returns, which
//     happens-before the caller resumes).
//  3. Everything cold (names, aggregation kinds, JSON) lives on the
//     Snapshot side, never on the increment side.
package metrics

import "math/bits"

// ID is an integer counter key. The catalogue below is the union of the
// hardware-event counters the paper's tables and figures are built from;
// README.md's "Observability" section maps each name to its table/figure.
type ID uint16

const (
	// Prototype bus logger (Section 3.1; Figures 10–12, Table 3).
	HWFIFOHighWater        ID = iota // max combined FIFO occupancy seen
	HWSnoops                         // logged writes snooped off the bus
	HWRecordsDMAed                   // 16-byte records DMAed into log segments
	HWDMAWaitCycles                  // cycles DMA requests waited for the bus
	HWOverloads                      // FIFO overload interrupts (Section 3.1.3)
	HWOverloadDrainCycles            // cycles CPUs were suspended per overload drains
	HWLoggingFaultsPMT               // logging faults: missing/displaced PMT entry
	HWLoggingFaultsLogAddr           // logging faults: invalid log address (page crossing)
	HWRecordsLost                    // records dropped (handler declined or absorb)
	HWRecordsAbsorbed                // writes coalesced into a pending FIFO entry
	HWGroupCommits                   // batched DMA drains (group commits) issued

	// On-chip logger (Section 4.6; Figure 13).
	ChipDescHits     // log-descriptor lookups that hit a valid descriptor
	ChipDescMisses   // lookups that missed (no TLB tag or invalid descriptor)
	ChipRecordsDMAed // records written by the on-chip unit
	ChipStallEvents  // write-buffer-full processor stalls
	ChipStallCycles  // cycles the processor stalled on the write buffer
	ChipRecordsLost  // records dropped by the on-chip unit

	// Virtual-memory kernel (Sections 2–3; Figures 7–9, Table 3).
	VMPageFaults         // page faults taken (Section 3.2 fault path)
	VMLoggingFaults      // logging faults handled by the kernel
	VMLogHeadAdvances    // log head moved to a fresh log-segment page
	VMAbsorbedPages      // head pointed at the absorb page (records lost)
	VMLogRewinds         // RewindLog/TruncateLog calls (Sections 2.4, 4.2)
	VMEvictions          // page frames evicted
	VMDeferredResets     // resetDeferredCopy calls (Figure 9)
	VMDeferredDirtyPages // dirty pages encountered by resets
	VMDeferredLinesReset // cache lines re-pointed at the source by resets

	// Fault injection and crash recovery (internal/fault,
	// internal/recovery): the robustness harness counts what it breaks and
	// what the recovery manager repairs through the same registry the
	// hardware counters use, so crashtest reports come out of one snapshot.
	FaultsInjected         // faults the injector armed and fired
	FaultRecordsDropped    // log records dropped in the DMA path by injection
	RecordsCorrupted       // log records bit-corrupted in the DMA path
	FaultDiskErrors        // transient ramdisk op failures injected
	FaultCrashes           // simulated machine crashes
	RecoveryReplays        // log-replay recovery passes
	RecoveryRecordsApplied // records applied to a segment during replay
	RecoveryRetries        // bounded-backoff retries of transient device errors
	RecoveryInvalidRecords // records rejected by replay validation
	QuarantinedBytes       // log bytes quarantined as a damaged tail

	// Checkpointed log compaction (internal/compact; Sections 2.4, 4.2):
	// the log-prefix lifecycle — image snapshots behind a marker-word
	// commit, safe-point truncations, and the replay bytes those
	// checkpoints let recovery skip.
	CompactCheckpoints      // durable checkpoint images committed
	CompactSnapshotBytes    // image bytes written to the checkpoint device
	CompactTruncations      // log-prefix truncations (incl. full truncates)
	CompactBytesTruncated   // log bytes discarded by truncation
	CompactTruncateFailures // truncations that failed and were surfaced
	RecoverySkippedBytes    // log bytes checkpoint-aware replay skipped

	// Multi-tenant logged-memory serving (internal/lvmd): per-shard
	// counters the daemon merges across shard systems into one snapshot.
	LvmdOpens      // segment-open transactions applied
	LvmdCommits    // client commit transactions applied
	LvmdStores     // data-word stores applied inside commits
	LvmdBatches    // group-commit batches (one durability fence each)
	LvmdReads      // consistent read operations served
	LvmdTailBytes  // log bytes mirrored to the durable tail file
	LvmdRecoveries // shard recoveries (restart = compact.Recover per shard)

	// NumIDs is the counter-array length; keep it last.
	NumIDs
)

// Kind says how a counter aggregates across shards.
type Kind uint8

const (
	// KindSum counters add across shards (events, cycles).
	KindSum Kind = iota
	// KindMax counters take the maximum across shards (high-water marks).
	KindMax
)

// counterMeta names each ID and fixes its aggregation kind.
var counterMeta = [NumIDs]struct {
	name string
	kind Kind
}{
	HWFIFOHighWater:        {"hwlogger.fifo_high_water", KindMax},
	HWSnoops:               {"hwlogger.snoops", KindSum},
	HWRecordsDMAed:         {"hwlogger.records_dmaed", KindSum},
	HWDMAWaitCycles:        {"hwlogger.dma_wait_cycles", KindSum},
	HWOverloads:            {"hwlogger.overloads", KindSum},
	HWOverloadDrainCycles:  {"hwlogger.overload_drain_cycles", KindSum},
	HWLoggingFaultsPMT:     {"hwlogger.logging_faults_pmt", KindSum},
	HWLoggingFaultsLogAddr: {"hwlogger.logging_faults_log_addr", KindSum},
	HWRecordsLost:          {"hwlogger.records_lost", KindSum},
	HWRecordsAbsorbed:      {"hwlogger.records_absorbed", KindSum},
	HWGroupCommits:         {"hwlogger.group_commits", KindSum},
	ChipDescHits:           {"tlblog.descriptor_hits", KindSum},
	ChipDescMisses:         {"tlblog.descriptor_misses", KindSum},
	ChipRecordsDMAed:       {"tlblog.records_dmaed", KindSum},
	ChipStallEvents:        {"tlblog.stall_events", KindSum},
	ChipStallCycles:        {"tlblog.stall_cycles", KindSum},
	ChipRecordsLost:        {"tlblog.records_lost", KindSum},
	VMPageFaults:           {"vm.page_faults", KindSum},
	VMLoggingFaults:        {"vm.logging_faults", KindSum},
	VMLogHeadAdvances:      {"vm.log_head_advances", KindSum},
	VMAbsorbedPages:        {"vm.absorbed_pages", KindSum},
	VMLogRewinds:           {"vm.log_rewinds", KindSum},
	VMEvictions:            {"vm.evictions", KindSum},
	VMDeferredResets:       {"vm.deferred_resets", KindSum},
	VMDeferredDirtyPages:   {"vm.deferred_dirty_pages", KindSum},
	VMDeferredLinesReset:   {"vm.deferred_lines_reset", KindSum},
	FaultsInjected:         {"fault.injected", KindSum},
	FaultRecordsDropped:    {"fault.records_dropped", KindSum},
	RecordsCorrupted:       {"fault.records_corrupted", KindSum},
	FaultDiskErrors:        {"fault.disk_errors", KindSum},
	FaultCrashes:           {"fault.crashes", KindSum},
	RecoveryReplays:        {"recovery.replays", KindSum},
	RecoveryRecordsApplied: {"recovery.records_applied", KindSum},
	RecoveryRetries:        {"recovery.retries", KindSum},
	RecoveryInvalidRecords: {"recovery.invalid_records", KindSum},
	QuarantinedBytes:       {"recovery.quarantined_bytes", KindSum},

	CompactCheckpoints:      {"compact.checkpoints", KindSum},
	CompactSnapshotBytes:    {"compact.snapshot_bytes", KindSum},
	CompactTruncations:      {"compact.truncations", KindSum},
	CompactBytesTruncated:   {"compact.bytes_truncated", KindSum},
	CompactTruncateFailures: {"compact.truncate_failures", KindSum},
	RecoverySkippedBytes:    {"recovery.replay_skipped_bytes", KindSum},

	LvmdOpens:      {"lvmd.opens", KindSum},
	LvmdCommits:    {"lvmd.commits", KindSum},
	LvmdStores:     {"lvmd.stores", KindSum},
	LvmdBatches:    {"lvmd.batches", KindSum},
	LvmdReads:      {"lvmd.reads", KindSum},
	LvmdTailBytes:  {"lvmd.tail_bytes", KindSum},
	LvmdRecoveries: {"lvmd.recoveries", KindSum},
}

// Name returns a counter's snapshot name.
func (id ID) Name() string { return counterMeta[id].name }

// HistID keys the fixed set of power-of-two histograms.
type HistID uint16

const (
	// HistFIFODepth observes the bus logger's combined FIFO occupancy at
	// each snooped write — the distribution behind Figure 12's overload
	// counts.
	HistFIFODepth HistID = iota
	// HistStallCycles observes per-event CPU stall lengths (overload
	// suspensions, on-chip write-buffer stalls).
	HistStallCycles
	// HistBatchSize observes the number of records per group-commit DMA
	// drain (1 when group commit is disabled and every record DMAs alone).
	HistBatchSize
	// HistCommitLatency observes, per group commit, the cycles between the
	// oldest batched record's snoop and the batch's DMA completion — the
	// durability latency the group-commit deadline bounds.
	HistCommitLatency
	// HistLvmdCommitAck observes, per client commit served by the lvmd
	// daemon, the host nanoseconds from shard-queue entry to durable
	// acknowledgement (sync + tail fsync). Host-side only: the simulated
	// workloads never observe it, so determinism is untouched.
	HistLvmdCommitAck

	// NumHistIDs is the histogram-array length; keep it last.
	NumHistIDs
)

var histName = [NumHistIDs]string{
	HistFIFODepth:     "hwlogger.fifo_depth",
	HistStallCycles:   "machine.stall_event_cycles",
	HistBatchSize:     "hwlogger.batch_size",
	HistCommitLatency: "hwlogger.commit_latency_cycles",
	HistLvmdCommitAck: "lvmd.commit_ack_ns",
}

// Name returns a histogram's snapshot name.
func (id HistID) Name() string { return histName[id] }

// histBuckets is one bucket per possible bits.Len64 result: bucket i
// counts observations v with bits.Len64(v) == i, i.e. v == 0 for bucket 0
// and 2^(i-1) <= v < 2^i otherwise.
const histBuckets = 65

// Shard is one owner's counter block. Exactly one goroutine may write a
// shard at a time (the simulator is single-threaded per machine instance;
// sweep workers each own distinct machines and hence distinct shards).
// All mutating methods are single indexed adds so they inline into the
// hot path and never allocate.
type Shard struct {
	c [NumIDs]uint64
	h [NumHistIDs][histBuckets]uint64

	// Pad the struct to a multiple of the cache-line size so adjacent
	// shards in a registry's backing array never share a line (false
	// sharing would serialize the sweep workers on the host).
	_ [cacheLine - (int(NumIDs)*8+int(NumHistIDs)*histBuckets*8)%cacheLine]byte
}

const cacheLine = 64

// Inc adds 1 to a counter.
func (s *Shard) Inc(id ID) { s.c[id]++ }

// Add adds v to a counter.
func (s *Shard) Add(id ID, v uint64) { s.c[id] += v }

// SetMax raises a KindMax counter to v if v exceeds its current value.
func (s *Shard) SetMax(id ID, v uint64) {
	if v > s.c[id] {
		s.c[id] = v
	}
}

// Get reads a counter (test and snapshot use; reads race with nothing
// because shards are single-writer and readers quiesce first).
func (s *Shard) Get(id ID) uint64 { return s.c[id] }

// Observe records v into a power-of-two histogram.
func (s *Shard) Observe(id HistID, v uint64) { s.h[id][bits.Len64(v)]++ }

// Registry owns the shards for one simulated machine (one per CPU plus
// one for bus devices), the trace ring, and the cold-path collectors.
type Registry struct {
	shards []Shard
	tracer *Tracer

	// collectors run at Snapshot time and contribute named values that
	// components already count in their own structs (legacy stats fields
	// like cache hit counts); keeping them collected rather than
	// double-incremented costs the hot path nothing.
	collectors []Collector
}

// Collector contributes named counter values to a snapshot.
type Collector func(emit func(name string, v uint64))

// New creates a registry with nshards shards and a disabled tracer of the
// default capacity.
func New(nshards int) *Registry {
	if nshards < 1 {
		nshards = 1
	}
	return &Registry{
		shards: make([]Shard, nshards),
		tracer: NewTracer(DefaultTraceCapacity),
	}
}

// NumShards reports the shard count.
func (r *Registry) NumShards() int { return len(r.shards) }

// Shard returns shard i. The caller must ensure single-writer discipline
// per shard.
func (r *Registry) Shard(i int) *Shard { return &r.shards[i] }

// Tracer returns the registry's event tracer.
func (r *Registry) Tracer() *Tracer { return r.tracer }

// AddCollector registers a snapshot-time collector.
func (r *Registry) AddCollector(c Collector) {
	r.collectors = append(r.collectors, c)
}

// HistBucket is one histogram bucket: Count observations with value <= Le
// (and greater than the previous bucket's Le).
type HistBucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// Hist is an aggregated histogram.
type Hist struct {
	Count   uint64       `json:"count"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time aggregation of every shard plus the
// collector-provided values. It is built entirely on the cold path.
type Snapshot struct {
	Counters   map[string]uint64 `json:"counters"`
	Histograms map[string]Hist   `json:"histograms,omitempty"`
	// TraceDropped counts events the trace ring overwrote before they
	// were read.
	TraceDropped uint64 `json:"trace_dropped,omitempty"`
}

// Snapshot aggregates all shards (KindSum counters add, KindMax counters
// take the max), merges histogram buckets, and runs the collectors. Call
// it only when shard writers are quiescent (between simulation steps, or
// after the sweep pool has joined).
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{
		Counters:   make(map[string]uint64, int(NumIDs)+8*len(r.collectors)),
		Histograms: make(map[string]Hist, int(NumHistIDs)),
	}
	for id := ID(0); id < NumIDs; id++ {
		var v uint64
		for i := range r.shards {
			sv := r.shards[i].c[id]
			switch counterMeta[id].kind {
			case KindMax:
				if sv > v {
					v = sv
				}
			default:
				v += sv
			}
		}
		snap.Counters[counterMeta[id].name] = v
	}
	for hid := HistID(0); hid < NumHistIDs; hid++ {
		var merged [histBuckets]uint64
		var total uint64
		for i := range r.shards {
			for b, c := range r.shards[i].h[hid] {
				merged[b] += c
				total += c
			}
		}
		if total == 0 {
			continue
		}
		h := Hist{Count: total}
		for b, c := range merged {
			if c == 0 {
				continue
			}
			le := uint64(0)
			if b > 0 {
				le = 1<<uint(b) - 1
			}
			h.Buckets = append(h.Buckets, HistBucket{Le: le, Count: c})
		}
		snap.Histograms[histName[hid]] = h
	}
	for _, c := range r.collectors {
		c(func(name string, v uint64) { snap.Counters[name] = v })
	}
	if r.tracer != nil {
		snap.TraceDropped = r.tracer.Dropped()
	}
	return snap
}

// Nonzero returns the snapshot's non-zero counters (presentation helper).
func (s *Snapshot) Nonzero() map[string]uint64 {
	out := make(map[string]uint64, len(s.Counters))
	for k, v := range s.Counters {
		if v != 0 {
			out[k] = v
		}
	}
	return out
}
