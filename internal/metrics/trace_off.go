//go:build lvm_notrace

package metrics

// traceBuilt is false under the lvm_notrace build tag: every Tracer.Emit
// body is deleted by the compiler (the guard is a constant false), so
// builds that want zero tracing overhead pay not even the branch.
const traceBuilt = false
