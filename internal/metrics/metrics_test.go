package metrics_test

import (
	"encoding/json"
	"testing"

	"lvm/internal/metrics"
	"lvm/internal/sim"
)

// TestShardOps checks the three mutation kinds and Get.
func TestShardOps(t *testing.T) {
	r := metrics.New(1)
	sh := r.Shard(0)
	sh.Inc(metrics.HWSnoops)
	sh.Inc(metrics.HWSnoops)
	sh.Add(metrics.HWDMAWaitCycles, 40)
	sh.SetMax(metrics.HWFIFOHighWater, 7)
	sh.SetMax(metrics.HWFIFOHighWater, 3) // lower: must not regress
	if got := sh.Get(metrics.HWSnoops); got != 2 {
		t.Fatalf("snoops = %d, want 2", got)
	}
	if got := sh.Get(metrics.HWDMAWaitCycles); got != 40 {
		t.Fatalf("dma wait = %d, want 40", got)
	}
	if got := sh.Get(metrics.HWFIFOHighWater); got != 7 {
		t.Fatalf("high water = %d, want 7", got)
	}
}

// TestSnapshotAggregation pins the cross-shard rules: KindSum counters
// add, KindMax counters take the maximum, histograms merge bucket-wise,
// and collectors contribute named values.
func TestSnapshotAggregation(t *testing.T) {
	r := metrics.New(3)
	for i := 0; i < 3; i++ {
		sh := r.Shard(i)
		sh.Add(metrics.HWSnoops, uint64(10*(i+1)))
		sh.SetMax(metrics.HWFIFOHighWater, uint64(100+i))
		sh.Observe(metrics.HistFIFODepth, uint64(i)) // 0, 1, 2
	}
	r.AddCollector(func(emit func(string, uint64)) {
		emit("test.collected", 99)
	})
	snap := r.Snapshot()
	if got := snap.Counters[metrics.HWSnoops.Name()]; got != 60 {
		t.Fatalf("sum counter = %d, want 60", got)
	}
	if got := snap.Counters[metrics.HWFIFOHighWater.Name()]; got != 102 {
		t.Fatalf("max counter = %d, want 102", got)
	}
	if got := snap.Counters["test.collected"]; got != 99 {
		t.Fatalf("collected = %d, want 99", got)
	}
	h := snap.Histograms[metrics.HistFIFODepth.Name()]
	if h.Count != 3 {
		t.Fatalf("hist count = %d, want 3", h.Count)
	}
	// v=0 -> bucket le=0; v=1 -> le=1; v=2 -> le=3.
	want := []metrics.HistBucket{{Le: 0, Count: 1}, {Le: 1, Count: 1}, {Le: 3, Count: 1}}
	if len(h.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", h.Buckets, want)
	}
	for i, b := range want {
		if h.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, h.Buckets[i], b)
		}
	}
	// A snapshot must marshal cleanly (bench-json embeds it).
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("marshal: %v", err)
	}
	nz := snap.Nonzero()
	if _, ok := nz[metrics.HWOverloads.Name()]; ok {
		t.Fatalf("Nonzero kept a zero counter")
	}
	if nz["test.collected"] != 99 {
		t.Fatalf("Nonzero dropped a non-zero counter")
	}
}

// TestConcurrentShards drives one shard per sweep-pool worker, exactly the
// single-writer-per-shard discipline the simulator uses, and must pass
// under -race: sim.Do's join is the happens-before edge that makes the
// final Snapshot safe.
func TestConcurrentShards(t *testing.T) {
	const shards = 8
	const perShard = 100000
	r := metrics.New(shards)
	old := sim.Workers()
	sim.SetWorkers(shards)
	defer sim.SetWorkers(old)
	err := sim.Do(shards, func(i int) error {
		sh := r.Shard(i)
		for j := 0; j < perShard; j++ {
			sh.Inc(metrics.VMPageFaults)
			sh.Add(metrics.ChipStallCycles, 2)
			sh.SetMax(metrics.HWFIFOHighWater, uint64(j))
			sh.Observe(metrics.HistStallCycles, uint64(j))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if got := snap.Counters[metrics.VMPageFaults.Name()]; got != shards*perShard {
		t.Fatalf("page faults = %d, want %d", got, shards*perShard)
	}
	if got := snap.Counters[metrics.ChipStallCycles.Name()]; got != 2*shards*perShard {
		t.Fatalf("stall cycles = %d, want %d", got, 2*shards*perShard)
	}
	if got := snap.Counters[metrics.HWFIFOHighWater.Name()]; got != perShard-1 {
		t.Fatalf("high water = %d, want %d", got, perShard-1)
	}
	if got := snap.Histograms[metrics.HistStallCycles.Name()].Count; got != shards*perShard {
		t.Fatalf("hist count = %d, want %d", got, shards*perShard)
	}
}

// TestHotPathAllocationFree is the package-local half of the repo's
// TestLoggedStoreZeroAlloc gate: every operation the instrumented store
// path performs — counter increments, histogram observations, and trace
// emissions both disabled and enabled — allocates nothing.
func TestHotPathAllocationFree(t *testing.T) {
	r := metrics.New(2)
	sh := r.Shard(0)
	tr := r.Tracer()
	var i uint64
	if avg := testing.AllocsPerRun(10000, func() {
		i++
		sh.Inc(metrics.HWSnoops)
		sh.Add(metrics.HWDMAWaitCycles, i)
		sh.SetMax(metrics.HWFIFOHighWater, i%700)
		sh.Observe(metrics.HistFIFODepth, i%700)
		tr.Emit(i, metrics.EvOverload, 0, i, i) // disabled: must be free
	}); avg != 0 {
		t.Fatalf("disabled-trace instrumented path allocates %v/op", avg)
	}
	tr.Enable()
	if metrics.Built() {
		if avg := testing.AllocsPerRun(10000, func() {
			i++
			tr.Emit(i, metrics.EvPageFault, 1, i, i) // ring wraps: still free
		}); avg != 0 {
			t.Fatalf("enabled tracer allocates %v/op", avg)
		}
	}
}

// TestTracerRing pins ring semantics: capacity bound, oldest-first order,
// drop accounting, reset, nil safety, and the build/runtime gates.
func TestTracerRing(t *testing.T) {
	tr := metrics.NewTracer(4)
	tr.Emit(1, metrics.EvPageFault, 0, 0, 0)
	if tr.Len() != 0 {
		t.Fatalf("disabled tracer recorded an event")
	}
	tr.Enable()
	if !metrics.Built() {
		if tr.Enabled() {
			t.Fatalf("lvm_notrace build must not enable")
		}
		return
	}
	for i := uint64(1); i <= 6; i++ {
		tr.Emit(i, metrics.EvLogRewind, 2, i*10, i*100)
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	evs := tr.Events()
	for i, e := range evs {
		wantTime := uint64(i + 3) // events 3..6 survive
		if e.Time != wantTime || e.Kind != metrics.EvLogRewind || e.CPU != 2 ||
			e.A != wantTime*10 || e.B != wantTime*100 {
			t.Fatalf("event %d = %+v", i, e)
		}
		if e.KindName() != "log_rewind" {
			t.Fatalf("kind name = %q", e.KindName())
		}
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatalf("reset left len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	tr.Disable()
	tr.Emit(9, metrics.EvEviction, 0, 0, 0)
	if tr.Len() != 0 {
		t.Fatalf("disabled tracer recorded after Disable")
	}

	// Nil and zero-capacity tracers absorb everything quietly.
	var nilT *metrics.Tracer
	nilT.Enable()
	nilT.Emit(0, metrics.EvOverload, 0, 0, 0)
	if nilT.Len() != 0 || nilT.Dropped() != 0 || nilT.Events() != nil || nilT.Enabled() {
		t.Fatalf("nil tracer misbehaved")
	}
	nilT.Disable()
	nilT.Reset()
	z := metrics.NewTracer(0)
	z.Enable()
	z.Emit(1, metrics.EvOverload, 0, 0, 0)
	if z.Len() != 0 || z.Dropped() != 1 {
		t.Fatalf("zero-capacity tracer: len=%d dropped=%d", z.Len(), z.Dropped())
	}
}

// TestNames ensures every counter, histogram and event kind has a
// distinct, non-empty name (the snapshot is keyed by them).
func TestNames(t *testing.T) {
	seen := map[string]bool{}
	for id := metrics.ID(0); id < metrics.NumIDs; id++ {
		n := id.Name()
		if n == "" || seen[n] {
			t.Fatalf("counter %d: bad or duplicate name %q", id, n)
		}
		seen[n] = true
	}
	for id := metrics.HistID(0); id < metrics.NumHistIDs; id++ {
		n := id.Name()
		if n == "" || seen[n] {
			t.Fatalf("hist %d: bad or duplicate name %q", id, n)
		}
		seen[n] = true
	}
	kinds := []metrics.EventKind{
		metrics.EvPageFault, metrics.EvLoggingFault, metrics.EvOverload,
		metrics.EvLogAdvance, metrics.EvLogAbsorb, metrics.EvLogRewind,
		metrics.EvEviction, metrics.EvChipStall,
	}
	ks := map[string]bool{}
	for _, k := range kinds {
		n := k.String()
		if n == "" || n == "unknown" || ks[n] {
			t.Fatalf("event kind %d: bad or duplicate name %q", k, n)
		}
		ks[n] = true
	}
	if metrics.EventKind(250).String() != "unknown" {
		t.Fatalf("out-of-range kind should be unknown")
	}
}

// TestRegistryDefaults covers the clamped constructors.
func TestRegistryDefaults(t *testing.T) {
	if metrics.New(0).NumShards() != 1 {
		t.Fatalf("New(0) should clamp to one shard")
	}
	if metrics.NewTracer(-1).Len() != 0 {
		t.Fatalf("NewTracer(-1) should clamp to empty")
	}
}
