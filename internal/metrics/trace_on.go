//go:build !lvm_notrace

package metrics

// traceBuilt is true in default builds: Tracer.Emit records events when
// the tracer is enabled at runtime.
const traceBuilt = true
