package timewarp

import (
	"fmt"

	"lvm/internal/core"
	"lvm/internal/machine"
)

// Handler processes events. Implementations must be deterministic
// functions of (event, target object state) and may only touch the state
// of the event's target object, send events, and charge computation.
type Handler interface {
	Handle(s *Scheduler, ev Event)
}

// Config describes a simulation.
type Config struct {
	Schedulers          int
	ObjectsPerScheduler int
	// ObjectBytes is the per-object state size (the paper's parameter s).
	ObjectBytes uint32
	// Saver selects LVM or copy-based state saving.
	Saver SaverKind
	// LogPages is the initial LVM log capacity per scheduler.
	LogPages uint32
	// GVTInterval is the number of steps between GVT computations (and
	// CULT processing). 0 = default 64.
	GVTInterval int
	// ChargeCULT charges CULT record application to the scheduler's CPU.
	// The paper performs CULT asynchronously ("can also be performed by
	// a separate parallel process") and excludes it from the Section 4.3
	// measurements, so the default is false.
	ChargeCULT bool
	// LazyCancellation switches rollback from aggressive cancellation
	// (anti-messages sent immediately for every undone event's sends) to
	// lazy cancellation: the undone sends are remembered, and when the
	// event re-executes, sends that come out identical are simply kept —
	// only the differences are cancelled. When re-execution reproduces
	// the same behaviour (common when a straggler touches different
	// state), no anti-messages flow at all.
	LazyCancellation bool
	// CULTProcessor dedicates an extra machine CPU to CULT processing —
	// the paper's separate parallel process. CULT record application is
	// charged to that CPU instead of the schedulers', so checkpoint
	// advancement consumes real machine time without slowing the
	// simulation (unless the CULT processor itself becomes the
	// bottleneck).
	CULTProcessor bool
	// MemFrames sizes the machine (0 = 64 MiB).
	MemFrames int
}

// Policy selects which scheduler steps next; different policies exercise
// different interleavings (and hence rollback behaviour), but the final
// simulation state must not depend on the choice — that is TimeWarp's
// correctness property, and the test suite checks it.
type Policy int

const (
	// PolicyGlobalOrder always steps the scheduler holding the globally
	// smallest pending event: no rollbacks ever occur.
	PolicyGlobalOrder Policy = iota
	// PolicyRoundRobin steps schedulers cyclically regardless of virtual
	// time, letting some run ahead and roll back.
	PolicyRoundRobin
	// PolicyLeastCycles steps the scheduler with the smallest local
	// cycle clock (a throughput-balanced machine).
	PolicyLeastCycles
)

// Sim is a complete optimistic simulation instance.
type Sim struct {
	sys     *core.System
	cfg     Config
	handler Handler
	scheds  []*Scheduler
	gvt     VT

	// cultCPU is the dedicated CULT processor, when configured.
	cultCPU *machine.CPU
	// schedCPUs is how many machine CPUs run schedulers.
	schedCPUs int

	injectSeq uint32

	Steps uint64
	GVTs  uint64
}

// New builds a simulation with its own machine (one CPU per scheduler,
// capped at the ParaDiGM prototype's four).
func New(cfg Config, h Handler) (*Sim, error) {
	if cfg.Schedulers <= 0 {
		cfg.Schedulers = 1
	}
	if cfg.ObjectsPerScheduler <= 0 {
		cfg.ObjectsPerScheduler = 4
	}
	if cfg.ObjectBytes == 0 {
		cfg.ObjectBytes = 64
	}
	if cfg.ObjectBytes%4 != 0 {
		return nil, fmt.Errorf("timewarp: ObjectBytes must be word aligned")
	}
	if cfg.LogPages == 0 {
		cfg.LogPages = 64
	}
	if cfg.GVTInterval <= 0 {
		cfg.GVTInterval = 64
	}
	ncpu := cfg.Schedulers
	if ncpu > 4 {
		ncpu = 4
	}
	if cfg.CULTProcessor {
		ncpu++
	}
	frames := cfg.MemFrames
	if frames == 0 {
		frames = 64 << 8
	}
	sim := &Sim{
		sys:     core.NewSystem(core.Config{NumCPUs: ncpu, MemFrames: frames}),
		cfg:     cfg,
		handler: h,
	}
	sim.schedCPUs = ncpu
	if cfg.CULTProcessor {
		sim.cultCPU = sim.sys.Machine().CPUs[ncpu-1]
		sim.schedCPUs = ncpu - 1
	}
	for i := 0; i < cfg.Schedulers; i++ {
		s, err := newScheduler(sim, i)
		if err != nil {
			return nil, err
		}
		sim.scheds = append(sim.scheds, s)
	}
	return sim, nil
}

// System exposes the underlying LVM system.
func (s *Sim) System() *core.System { return s.sys }

// Config returns the simulation configuration.
func (s *Sim) Config() Config { return s.cfg }

// Scheduler returns scheduler i.
func (s *Sim) Scheduler(i int) *Scheduler { return s.scheds[i] }

// NumObjects is the total object count.
func (s *Sim) NumObjects() uint32 {
	return uint32(s.cfg.Schedulers * s.cfg.ObjectsPerScheduler)
}

// owner returns the scheduler owning a global object index (objects are
// striped across schedulers).
func (s *Sim) owner(obj uint32) *Scheduler {
	return s.scheds[obj%uint32(len(s.scheds))]
}

// deliver routes an event to its owner.
func (s *Sim) deliver(ev Event) { s.owner(ev.Obj).arrival(ev) }

// Inject enqueues an initial event (use before Run).
func (s *Sim) Inject(t VT, obj uint32, data uint32) {
	ev := Event{Time: t, ID: EventID{Sched: ^uint32(0), Seq: s.injectSeq}, Obj: obj, Data: data}
	s.injectSeq++
	s.deliver(ev)
}

// GVT returns the last computed global virtual time.
func (s *Sim) GVT() VT { return s.gvt }

// computeGVT: with the synchronous in-memory transport, every event is in
// some input queue between steps, so GVT is the minimum pending event time
// (the minimum of the LVTs all schedulers could be forced back to).
func (s *Sim) computeGVT() (VT, bool) {
	var mn VT
	found := false
	for _, sc := range s.scheds {
		if ev, ok := sc.q.peek(); ok {
			if !found || ev.Time < mn {
				mn = ev.Time
				found = true
			}
		}
	}
	return mn, found
}

// RunSteps executes at most maxSteps event steps under the policy,
// returning how many ran (fewer means the simulation quiesced). GVT/CULT
// processing still runs on its configured interval.
func (s *Sim) RunSteps(policy Policy, maxSteps int) uint64 {
	var ran uint64
	rr := 0
	for i := 0; i < maxSteps; i++ {
		sc := s.pick(policy, &rr)
		if sc == nil {
			break
		}
		sc.step()
		s.Steps++
		ran++
		if s.Steps%uint64(s.cfg.GVTInterval) == 0 {
			if gvt, ok := s.computeGVT(); ok {
				if gvt > s.gvt {
					s.gvt = gvt
				}
				s.GVTs++
				for _, sc := range s.scheds {
					sc.cult(s.gvt)
				}
			}
		}
	}
	return ran
}

// Run drives the simulation to completion under the given policy and
// returns the total elapsed machine time in cycles.
func (s *Sim) Run(policy Policy) uint64 {
	steps := 0
	rr := 0
	for {
		sc := s.pick(policy, &rr)
		if sc == nil {
			break
		}
		sc.step()
		s.Steps++
		steps++
		if steps%s.cfg.GVTInterval == 0 {
			if gvt, ok := s.computeGVT(); ok {
				if gvt > s.gvt {
					s.gvt = gvt
				}
				s.GVTs++
				for _, sc := range s.scheds {
					sc.cult(s.gvt)
				}
			}
		}
	}
	// Final CULT at quiescence: everything is committed.
	for _, sc := range s.scheds {
		sc.cult(^VT(0))
	}
	return s.sys.Sync()
}

func (s *Sim) pick(policy Policy, rr *int) *Scheduler {
	switch policy {
	case PolicyGlobalOrder:
		var best *Scheduler
		var bestEv Event
		for _, sc := range s.scheds {
			if ev, ok := sc.q.peek(); ok {
				if best == nil || ev.before(bestEv) {
					best, bestEv = sc, ev
				}
			}
		}
		return best
	case PolicyRoundRobin:
		for i := 0; i < len(s.scheds); i++ {
			sc := s.scheds[(*rr+i)%len(s.scheds)]
			if sc.q.len() > 0 {
				*rr = (*rr + i + 1) % len(s.scheds)
				return sc
			}
		}
		return nil
	case PolicyLeastCycles:
		var best *Scheduler
		for _, sc := range s.scheds {
			if sc.q.len() == 0 {
				continue
			}
			if best == nil || sc.p.Now() < best.p.Now() {
				best = sc
			}
		}
		return best
	}
	return nil
}

// ObjectWord reads word `word` of a global object's current state (raw;
// for result extraction and tests).
func (s *Sim) ObjectWord(obj uint32, word int) uint32 {
	sc := s.owner(obj)
	local := sc.local(obj)
	return sc.working.Read32(markerBytes + local*s.cfg.ObjectBytes + uint32(word*4))
}

// TotalStats sums scheduler statistics.
func (s *Sim) TotalStats() SchedStats {
	var t SchedStats
	for _, sc := range s.scheds {
		t.Events += sc.Stats.Events
		t.Rollbacks += sc.Stats.Rollbacks
		t.RolledBack += sc.Stats.RolledBack
		t.AntisSent += sc.Stats.AntisSent
		t.Annihilated += sc.Stats.Annihilated
		t.Replayed += sc.Stats.Replayed
		t.CULTRecords += sc.Stats.CULTRecords
		t.LazyKept += sc.Stats.LazyKept
	}
	return t
}

// Elapsed returns the machine's elapsed cycles (max CPU clock).
func (s *Sim) Elapsed() uint64 { return s.sys.Elapsed() }
