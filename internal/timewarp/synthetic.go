package timewarp

// Synthetic is the paper's "simulated" simulation workload (Section 4.3):
// each event performs c compute cycles and w writes to its s-byte object,
// then schedules follow-on events. The three knobs c, s and w are exactly
// the parameters varied in Figures 7 and 8.
type Synthetic struct {
	// Compute is c: compute cycles per event.
	Compute uint64
	// Writes is w: writes per event.
	Writes int
	// ObjectWords is s/4: the object size in words.
	ObjectWords int
	// Horizon stops the simulation: no events are scheduled at or beyond
	// this virtual time.
	Horizon VT
	// Fanout is how many follow-on events each event schedules (1 keeps
	// the event population constant per seed chain).
	Fanout int
	// MaxDelay bounds the virtual-time increment of scheduled events.
	MaxDelay VT
	// NumObjects is the global object count (targets are hashed into
	// this range).
	NumObjects uint32
	// SelfChain forces every follow-on event onto the same object,
	// producing a strictly sequential event chain (used by the forward
	// cost measurements, where cross-object traffic is noise).
	SelfChain bool
}

// mix is a deterministic 32-bit hash combiner.
func mix(a, b, c uint32) uint32 {
	h := a*2654435761 + b*40503 + c*97
	h ^= h >> 15
	h *= 2246822519
	h ^= h >> 13
	return h
}

// Handle implements Handler.
func (h Synthetic) Handle(s *Scheduler, ev Event) {
	s.Compute(h.Compute)
	st0 := s.ReadWord(ev.Obj, 0)
	for i := 0; i < h.Writes; i++ {
		word := int((ev.Data + uint32(i)) % uint32(h.ObjectWords))
		old := s.ReadWord(ev.Obj, word)
		s.WriteWord(ev.Obj, word, old*31+ev.Data+uint32(i)+1)
	}
	seed := mix(ev.Data, st0, ev.Time)
	maxDelay := h.MaxDelay
	if maxDelay == 0 {
		maxDelay = 8
	}
	fanout := h.Fanout
	if fanout == 0 {
		fanout = 1
	}
	for f := 0; f < fanout; f++ {
		t := ev.Time + 1 + seed%uint32(maxDelay)
		if t < h.Horizon {
			dest := ev.Obj
			if !h.SelfChain {
				dest = (seed / 13) % h.NumObjects
			}
			s.Send(t, dest, seed)
		}
		seed = mix(seed, uint32(f)+1, 0x9E37)
	}
}
