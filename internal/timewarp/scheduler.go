package timewarp

import (
	"fmt"

	"lvm/internal/compact"
	"lvm/internal/core"
	"lvm/internal/cycles"
	"lvm/internal/logrec"
)

// SaverKind selects the state-saving strategy (Section 4.3 compares
// copy-based state saving against LVM).
type SaverKind int

const (
	// SaverLVM: logged working segment + deferred-copy checkpoint;
	// rollback = resetDeferredCopy + roll-forward from the log.
	SaverLVM SaverKind = iota
	// SaverCopy: the conventional approach — copy the affected object's
	// state before processing each event; rollback restores the copies.
	SaverCopy
)

func (k SaverKind) String() string {
	if k == SaverLVM {
		return "lvm"
	}
	return "copy"
}

// Application-level cycle costs.
const (
	// SendCycles is the cost of scheduling/enqueueing one event. With
	// DispatchCycles it forms the simulator's per-event loop overhead
	// (~100 cycles), calibrated so that, with w=8 logged writes per
	// event, the logger overflows when c drops below roughly 200 cycles,
	// matching the Figure 7 caption.
	SendCycles = 50
	// DispatchCycles is the per-event dequeue/dispatch overhead.
	DispatchCycles = 50
	// ReplayRecordCycles is the software cost of applying one log record
	// during roll-forward.
	ReplayRecordCycles = 40
	// SaveBookkeepingCycles is the per-event bookkeeping of copy-based
	// state saving (allocating and tagging the save record), on top of
	// the bcopy of the object itself.
	SaveBookkeepingCycles = 100
	// markerBytes reserves the front of the working segment for the LVT
	// marker word (footnote 2 of the paper).
	markerBytes = 16
)

// SchedStats counts scheduler activity.
type SchedStats struct {
	Events      uint64
	Rollbacks   uint64
	RolledBack  uint64
	AntisSent   uint64
	Annihilated uint64
	Replayed    uint64
	CULTRecords uint64
	// TruncFailures counts quiescence-time log truncations the kernel
	// refused; the checkpoint positions stay valid for the kept log.
	TruncFailures uint64
	// LazyKept counts sends that lazy cancellation preserved because
	// re-execution reproduced them identically.
	LazyKept uint64
}

// processedEvent remembers everything needed to undo one event.
type processedEvent struct {
	ev       Event
	sent     []Event
	logStart uint32 // LVM: log offset before this event's marker
	save     []byte // copy: the object's prior state
}

// Scheduler is one TimeWarp scheduler: a simulated process owning a
// partition of the objects, with the segment arrangement of Figure 3.
type Scheduler struct {
	id  int
	sim *Sim
	p   *core.Process

	saver SaverKind

	working *core.Segment
	ckpt    *core.Segment    // LVM only
	logSeg  *core.Segment    // LVM only
	cm      *compact.Manager // LVM only: owns logSeg's prefix lifecycle
	reg     *core.Region
	base    core.Addr

	// recordsIssued counts logged writes issued by this scheduler, which
	// (absent absorbs) equals the log append offset / 16. Tracking it in
	// software avoids a logger sync per event.
	recordsIssued uint32
	ckptPos       uint32 // log offset corresponding to the checkpoint state
	ckptTime      VT

	q         inputQueue
	processed []processedEvent
	lvt       VT
	seq       uint32
	curSent   *[]Event

	// lazyPrev holds, per undone-but-not-yet-re-executed event, the
	// sends of its previous execution (lazy cancellation).
	lazyPrev map[EventID][]Event
	// curPrev is the previous-send list of the event being re-executed.
	curPrev []Event

	Stats SchedStats
}

func newScheduler(sim *Sim, id int) (*Scheduler, error) {
	cfg := sim.cfg
	s := &Scheduler{id: id, sim: sim, saver: cfg.Saver}
	size := markerBytes + uint32(cfg.ObjectsPerScheduler)*cfg.ObjectBytes
	size = (size + core.PageSize - 1) &^ uint32(core.PageSize-1)
	sys := sim.sys
	name := fmt.Sprintf("tw%d", id)
	as := sys.NewAddressSpace()
	s.p = sys.NewProcess(id%sim.schedCPUs, as)
	s.working = core.NewNamedSegment(sys, name+"-working", size, nil)
	s.reg = core.NewStdRegion(sys, s.working)
	if cfg.Saver == SaverLVM {
		s.ckpt = core.NewNamedSegment(sys, name+"-ckpt", size, nil)
		if err := s.working.SetSourceSegment(s.ckpt, 0); err != nil {
			return nil, err
		}
		s.logSeg = sys.K.NewLogSegment(name+"-log", cfg.LogPages)
		if err := s.reg.Log(s.logSeg); err != nil {
			return nil, err
		}
		var err error
		s.cm, err = compact.New(sys, compact.Options{Log: s.logSeg})
		if err != nil {
			return nil, err
		}
	}
	base, err := s.reg.Bind(as, 0)
	if err != nil {
		return nil, err
	}
	s.base = base
	return s, nil
}

// LVT returns the scheduler's local virtual time (Section 2.4).
func (s *Scheduler) LVT() VT { return s.lvt }

// Process exposes the scheduler's simulated process (for examples).
func (s *Scheduler) Process() *core.Process { return s.p }

// objVA returns the address of word `word` of local object `local`.
func (s *Scheduler) objVA(local uint32, word int) core.Addr {
	return s.base + markerBytes + local*s.sim.cfg.ObjectBytes + uint32(word*4)
}

// local converts a global object index owned by this scheduler to its
// local index.
func (s *Scheduler) local(obj uint32) uint32 {
	return obj / uint32(len(s.sim.scheds))
}

// ReadWord reads word `word` of the state of (owned) object obj.
func (s *Scheduler) ReadWord(obj uint32, word int) uint32 {
	return s.p.Load32(s.objVA(s.local(obj), word))
}

// WriteWord updates word `word` of object obj's state. Under LVM this is
// a logged write-through; under copy-based saving it is an ordinary
// write (the object was copied before the event started).
func (s *Scheduler) WriteWord(obj uint32, word int, v uint32) {
	s.p.Store32(s.objVA(s.local(obj), word), v)
	if s.saver == SaverLVM {
		s.recordsIssued++
	}
}

// Compute charges event-handler computation.
func (s *Scheduler) Compute(n uint64) { s.p.Compute(n) }

// Send schedules an event for object obj at virtual time t.
func (s *Scheduler) Send(t VT, obj uint32, data uint32) {
	// Lazy cancellation: if this event's previous execution already sent
	// an identical event, the original stays in flight — nothing to do
	// but account for it.
	for i, prev := range s.curPrev {
		if prev.Time == t && prev.Obj == obj && prev.Data == data {
			s.curPrev = append(s.curPrev[:i], s.curPrev[i+1:]...)
			if s.curSent != nil {
				*s.curSent = append(*s.curSent, prev)
			}
			s.p.Compute(SendCycles / 2)
			s.Stats.LazyKept++
			return
		}
	}
	ev := Event{Time: t, ID: EventID{Sched: uint32(s.id), Seq: s.seq}, Obj: obj, Data: data}
	s.seq++
	if s.curSent != nil {
		*s.curSent = append(*s.curSent, ev)
	}
	s.p.Compute(SendCycles)
	s.sim.deliver(ev)
}

// ensureLogSpace extends the log segment ahead of the hardware head so no
// records are ever absorbed ("normally in advance of a fault at the end of
// the log segment", Section 3.2).
func (s *Scheduler) ensureLogSpace() {
	need := (s.recordsIssued + 64) * logrec.Size
	if need >= s.logSeg.Size() {
		s.logSeg.Extend((need-s.logSeg.Size())/core.PageSize + 2)
	}
}

// step processes the next pending event. It returns false if the queue is
// empty.
func (s *Scheduler) step() bool {
	ev, ok := s.q.pop()
	if !ok {
		return false
	}
	s.lvt = ev.Time
	s.p.Compute(DispatchCycles)
	pe := processedEvent{ev: ev}
	if s.saver == SaverLVM {
		s.ensureLogSpace()
		pe.logStart = s.recordsIssued * logrec.Size
		// Write the LVT marker: "The scheduler writes a certain memory
		// location each time local virtual time changes. Log records of
		// these writes serve as markers" (footnote 2).
		s.p.Store32(s.base, ev.Time)
		s.recordsIssued++
	} else {
		// Copy-based state saving: snapshot the target object.
		local := s.local(ev.Obj)
		off := markerBytes + local*s.sim.cfg.ObjectBytes
		pe.save = s.working.RawRead(off, s.sim.cfg.ObjectBytes)
		lines := uint64((s.sim.cfg.ObjectBytes + core.LineSize - 1) / core.LineSize)
		s.p.Compute(SaveBookkeepingCycles + lines*cycles.BcopyLineCycles)
	}
	if s.lazyPrev != nil {
		if prev, ok := s.lazyPrev[ev.ID]; ok {
			delete(s.lazyPrev, ev.ID)
			s.curPrev = prev
		}
	}
	s.curSent = &pe.sent
	s.sim.handler.Handle(s, ev)
	s.curSent = nil
	// Lazy cancellation: whatever the previous execution sent that this
	// one did not gets cancelled now.
	for _, stale := range s.curPrev {
		anti := stale
		anti.Anti = true
		s.Stats.AntisSent++
		s.p.Compute(SendCycles)
		s.sim.deliver(anti)
	}
	s.curPrev = nil
	s.processed = append(s.processed, pe)
	s.Stats.Events++
	return true
}

// arrival delivers an event (or anti-message) to this scheduler.
func (s *Scheduler) arrival(ev Event) {
	if ev.Anti {
		if s.q.remove(ev.ID) {
			s.Stats.Annihilated++
			s.cancelLazy(ev.ID)
			return
		}
		if s.findProcessed(ev.ID) >= 0 {
			pos := ev
			pos.Anti = false
			s.rollback(pos)
			if s.q.remove(ev.ID) {
				s.Stats.Annihilated++
			}
			s.cancelLazy(ev.ID)
			return
		}
		// The positive was already annihilated or never arrived (cannot
		// happen in this in-memory transport); ignore.
		return
	}
	// A straggler is any event ordered before something already
	// processed; rollback() is a no-op when the suffix is empty.
	s.rollback(ev)
	s.q.push(ev)
}

// cancelLazy flushes the stashed sends of an event that will never
// re-execute (its positive was annihilated): they must be cancelled now.
func (s *Scheduler) cancelLazy(id EventID) {
	prev, ok := s.lazyPrev[id]
	if !ok {
		return
	}
	delete(s.lazyPrev, id)
	for _, e := range prev {
		anti := e
		anti.Anti = true
		s.Stats.AntisSent++
		s.p.Compute(SendCycles)
		s.sim.deliver(anti)
	}
}

func (s *Scheduler) findProcessed(id EventID) int {
	for i := len(s.processed) - 1; i >= 0; i-- {
		if s.processed[i].ev.ID == id {
			return i
		}
	}
	return -1
}

// rollback undoes every processed event ordered at or after ref: the
// TimeWarp rollback of Section 2.4. Under LVM: resetDeferredCopy back to
// the checkpoint, then roll forward by applying the log up to the first
// undone event; under copy-based saving: restore the per-event copies in
// reverse order. Undone events return to the input queue and their sends
// are cancelled with anti-messages.
func (s *Scheduler) rollback(ref Event) {
	var undone []processedEvent
	for len(s.processed) > 0 {
		pe := s.processed[len(s.processed)-1]
		if pe.ev.before(ref) {
			break
		}
		s.processed = s.processed[:len(s.processed)-1]
		undone = append(undone, pe)
	}
	if len(undone) == 0 {
		return
	}
	s.Stats.Rollbacks++
	s.Stats.RolledBack += uint64(len(undone))

	if s.saver == SaverCopy {
		// undone is reverse-chronological: restoring in slice order
		// rewinds each object to its earliest saved state.
		for _, pe := range undone {
			local := s.local(pe.ev.Obj)
			off := markerBytes + local*s.sim.cfg.ObjectBytes
			s.working.RawWrite(off, pe.save)
			lines := uint64((s.sim.cfg.ObjectBytes + core.LineSize - 1) / core.LineSize)
			s.p.Compute(lines * cycles.BcopyLineCycles)
		}
	} else {
		rewindOff := undone[len(undone)-1].logStart
		s.resetAndRollForward(rewindOff)
	}

	for _, pe := range undone {
		s.q.push(pe.ev)
	}
	if s.sim.cfg.LazyCancellation {
		// Remember the sends; the re-execution cancels only what it does
		// not reproduce.
		if s.lazyPrev == nil {
			s.lazyPrev = make(map[EventID][]Event)
		}
		for _, pe := range undone {
			if len(pe.sent) > 0 {
				s.lazyPrev[pe.ev.ID] = pe.sent
			}
		}
	} else {
		for _, pe := range undone {
			for _, sent := range pe.sent {
				anti := sent
				anti.Anti = true
				s.Stats.AntisSent++
				s.p.Compute(SendCycles)
				s.sim.deliver(anti)
			}
		}
	}
	if len(s.processed) > 0 {
		s.lvt = s.processed[len(s.processed)-1].ev.Time
	} else {
		s.lvt = s.ckptTime
	}
}

// resetAndRollForward implements the LVM rollback: "a scheduler first
// resets the contents of the working segment to that of the checkpoint
// segment by calling resetDeferredCopy(). The scheduler then rolls the
// working segment forward by applying each update found in the log...
// until it reaches the time of the newly-received event."
func (s *Scheduler) resetAndRollForward(rewindOff uint32) {
	k := s.sim.sys.K
	if _, err := k.ResetDeferredCopySegment(s.working, s.p.CPU); err != nil {
		panic(err)
	}
	r := core.NewLogReader(s.sim.sys, s.logSeg)
	if err := r.Seek(s.ckptPos); err != nil {
		panic(err)
	}
	for r.Offset() < rewindOff {
		rec, ok := r.Next()
		if !ok {
			break
		}
		rec.Apply(s.working)
		s.p.Compute(ReplayRecordCycles)
		s.Stats.Replayed++
	}
	if err := k.RewindLog(s.logSeg, rewindOff); err != nil {
		panic(err)
	}
	s.recordsIssued = rewindOff / logrec.Size
}

// cult performs checkpoint update and log truncation once GVT has
// advanced (Section 2.4): logged updates older than GVT are applied to the
// checkpoint segment, fossils are collected, and the log is truncated when
// fully consumed.
func (s *Scheduler) cult(gvt VT) {
	idx := 0
	for idx < len(s.processed) && s.processed[idx].ev.Time < gvt {
		idx++
	}
	if s.saver == SaverCopy {
		// Fossil collection: saves older than GVT can never be needed.
		if idx > 0 {
			s.processed = append(s.processed[:0:0], s.processed[idx:]...)
		}
		return
	}
	end := s.recordsIssued * logrec.Size
	if idx < len(s.processed) {
		end = s.processed[idx].logStart
	}
	if end > s.ckptPos {
		r := core.NewLogReader(s.sim.sys, s.logSeg)
		if err := r.Seek(s.ckptPos); err != nil {
			panic(err)
		}
		for r.Offset() < end {
			rec, ok := r.Next()
			if !ok {
				break
			}
			rec.Apply(s.ckpt)
			s.Stats.CULTRecords++
			switch {
			case s.sim.cultCPU != nil:
				// The separate CULT process of Section 2.4.
				s.sim.cultCPU.Compute(ReplayRecordCycles)
			case s.sim.cfg.ChargeCULT:
				s.p.Compute(ReplayRecordCycles)
			}
		}
		s.ckptPos = end
	}
	s.ckptTime = gvt
	if idx > 0 {
		s.processed = append(s.processed[:0:0], s.processed[idx:]...)
	}
	// Truncate when everything is consumed and nothing is outstanding.
	// A refused truncation is not silent — it used to be tested only for
	// success, which left ckptPos/recordsIssued pointing into a log that
	// was never cut with no trace. The positions stay valid for the
	// untruncated log (the next quiescence retries), and the failure is
	// tallied where tests and metrics can see it.
	if len(s.processed) == 0 && s.q.len() == 0 && s.ckptPos == s.recordsIssued*logrec.Size && s.ckptPos > 0 {
		if err := s.cm.TruncateAll(); err != nil {
			s.Stats.TruncFailures++
		} else {
			s.ckptPos = 0
			s.recordsIssued = 0
		}
	}
}
