// Package timewarp implements an optimistic (TimeWarp-style) parallel
// discrete-event simulation engine over the LVM system, following
// Section 2.4 of the paper: each scheduler keeps its simulation state in a
// working segment whose deferred-copy source is a checkpoint segment, and
// logs every update; rollback is resetDeferredCopy() plus roll-forward
// from the log, delimited by local-virtual-time marker records; CULT
// (checkpoint update and log truncation) advances the checkpoint to GVT.
//
// A conventional copy-based state saver — "the conventional rollback
// implementation which makes a copy of the affected object state before
// processing each event" — is implemented alongside as the baseline for
// Figures 7 and 8.
package timewarp

import "container/heap"

// VT is virtual time.
type VT = uint32

// EventID uniquely identifies an event and provides a total tie-break
// order for simultaneous events.
type EventID struct {
	Sched uint32
	Seq   uint32
}

// Event is one simulation event.
type Event struct {
	Time VT
	ID   EventID
	// Obj is the global index of the target object.
	Obj uint32
	// Data is the event payload.
	Data uint32
	// Anti marks an anti-message (annihilates the matching positive).
	Anti bool
}

// before orders events by (Time, Obj, Data) with the ID as the final
// arbitrary tie-break. Content-first ordering makes the simulation outcome
// independent of the stepping policy: two events with identical time,
// target and payload are semantically interchangeable (handlers are
// deterministic functions of event content and target state), so even
// though re-sent events get fresh IDs after a rollback, every policy
// processes an equivalent sequence.
func (e Event) before(o Event) bool {
	if e.Time != o.Time {
		return e.Time < o.Time
	}
	if e.Obj != o.Obj {
		return e.Obj < o.Obj
	}
	if e.Data != o.Data {
		return e.Data < o.Data
	}
	if e.ID.Sched != o.ID.Sched {
		return e.ID.Sched < o.ID.Sched
	}
	return e.ID.Seq < o.ID.Seq
}

// sameEvent reports whether two events are the same logical event
// (ignoring the Anti flag).
func sameEvent(a, b Event) bool {
	return a.ID == b.ID && a.Time == b.Time && a.Obj == b.Obj
}

// eventHeap is a min-heap of events by (Time, ID).
type eventHeap []Event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].before(h[j]) }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// inputQueue wraps the heap with annihilation support.
type inputQueue struct{ h eventHeap }

func (q *inputQueue) push(e Event) { heap.Push(&q.h, e) }

func (q *inputQueue) pop() (Event, bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	return heap.Pop(&q.h).(Event), true
}

func (q *inputQueue) peek() (Event, bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	return q.h[0], true
}

func (q *inputQueue) len() int { return len(q.h) }

// remove deletes the event matching id, reporting success.
func (q *inputQueue) remove(id EventID) bool {
	for i := range q.h {
		if q.h[i].ID == id {
			heap.Remove(&q.h, i)
			return true
		}
	}
	return false
}
