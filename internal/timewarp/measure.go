package timewarp

import "fmt"

// ForwardResult is one forward-execution cost measurement: the per-event
// cost of running the synthetic workload under one state saver, with no
// rollbacks (the Section 4.3 methodology: rollback, GVT advance and log
// truncation are excluded — "The process that is the furthest behind in an
// optimistic simulation does not perform rollbacks so these overheads are
// not expected to affect the progress of a simulation").
type ForwardResult struct {
	Saver          SaverKind
	Events         uint64
	Cycles         uint64
	CyclesPerEvent float64
	Overloads      uint64
}

func (r ForwardResult) String() string {
	return fmt.Sprintf("%-4s %6d events %10d cycles  %8.1f cyc/event  %d overloads",
		r.Saver, r.Events, r.Cycles, r.CyclesPerEvent, r.Overloads)
}

// MeasureForward runs `events` events of the (c, s, w) workload on a
// single scheduler with the given state saver and reports the steady-state
// cost. A short warmup faults pages in first.
func MeasureForward(saver SaverKind, c uint64, objBytes uint32, writes, events int) (ForwardResult, error) {
	cfg := Config{
		Schedulers:          1,
		ObjectsPerScheduler: 1,
		ObjectBytes:         objBytes,
		Saver:               saver,
		LogPages:            16,
		GVTInterval:         1 << 30, // no CULT inside the measurement
		MemFrames:           16 << 8, // 16 MiB is plenty for one object + log
	}
	h := Synthetic{
		Compute:     c,
		Writes:      writes,
		ObjectWords: int(objBytes / 4),
		Horizon:     ^VT(0) - 16,
		MaxDelay:    4,
		NumObjects:  1,
		SelfChain:   true,
	}
	sim, err := New(cfg, h)
	if err != nil {
		return ForwardResult{}, err
	}
	sim.Inject(0, 0, 12345)

	const warmup = 32
	sim.RunSteps(PolicyGlobalOrder, warmup)
	sc := sim.scheds[0]
	startCycles := sc.p.Now()
	startOv := sim.sys.K.Overloads
	ran := sim.RunSteps(PolicyGlobalOrder, events)
	res := ForwardResult{
		Saver:     saver,
		Events:    ran,
		Cycles:    sc.p.Now() - startCycles,
		Overloads: sim.sys.K.Overloads - startOv,
	}
	if ran > 0 {
		res.CyclesPerEvent = float64(res.Cycles) / float64(ran)
	}
	return res, nil
}

// Speedup measures the elapsed-time speedup of LVM state saving over
// copy-based checkpointing for one (c, s, w) point — the quantity plotted
// in Figures 7 and 8.
func Speedup(c uint64, objBytes uint32, writes, events int) (float64, ForwardResult, ForwardResult, error) {
	cp, err := MeasureForward(SaverCopy, c, objBytes, writes, events)
	if err != nil {
		return 0, cp, ForwardResult{}, err
	}
	lv, err := MeasureForward(SaverLVM, c, objBytes, writes, events)
	if err != nil {
		return 0, cp, lv, err
	}
	if lv.Cycles == 0 {
		return 0, cp, lv, fmt.Errorf("timewarp: empty LVM measurement")
	}
	return float64(cp.Cycles) / float64(lv.Cycles), cp, lv, nil
}
