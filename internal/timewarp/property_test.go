package timewarp

import (
	"errors"
	"testing"
	"testing/quick"
)

// TestPropertyPolicyInvariance: for random small workloads, every
// stepping policy and both state savers produce the same final object
// state as the sequential (global-order, single-scheduler) execution —
// TimeWarp's fundamental correctness property, exercised with real
// rollbacks, anti-messages and CULT.
func TestPropertyPolicyInvariance(t *testing.T) {
	type seedCfg struct {
		Seed    uint32
		Horizon uint8
		Writes  uint8
		Objects uint8
	}
	prop := func(sc seedCfg) bool {
		horizon := VT(sc.Horizon%60) + 20
		writes := int(sc.Writes%5) + 1
		// Keep totals divisible by both 1 and 3 schedulers.
		totalObjects := (int(sc.Objects%3) + 1) * 3

		build := func(scheds int, saver SaverKind) *Sim {
			cfg := Config{
				Schedulers:          scheds,
				ObjectsPerScheduler: totalObjects / scheds,
				ObjectBytes:         64,
				Saver:               saver,
				GVTInterval:         8,
				MemFrames:           16 << 8,
			}
			h := Synthetic{
				Compute:     200,
				Writes:      writes,
				ObjectWords: 16,
				Horizon:     horizon,
				MaxDelay:    5,
				NumObjects:  uint32(totalObjects),
			}
			sim, err := New(cfg, h)
			if err != nil {
				t.Fatal(err)
			}
			for i := uint32(0); i < sim.NumObjects(); i++ {
				sim.Inject(0, i, sc.Seed+i*13)
			}
			return sim
		}
		snapshotOf := func(s *Sim) []uint32 {
			out := make([]uint32, 0, totalObjects*16)
			for obj := uint32(0); obj < s.NumObjects(); obj++ {
				for w := 0; w < 16; w++ {
					out = append(out, s.ObjectWord(obj, w))
				}
			}
			return out
		}

		ref := build(1, SaverLVM)
		ref.Run(PolicyGlobalOrder)
		want := snapshotOf(ref)

		for _, saver := range []SaverKind{SaverLVM, SaverCopy} {
			for _, pol := range []Policy{PolicyRoundRobin, PolicyLeastCycles} {
				s := build(3, saver)
				s.Run(pol)
				got := snapshotOf(s)
				for i := range want {
					if got[i] != want[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestGVTMonotone(t *testing.T) {
	sim := buildSim(t, 3, SaverLVM, 150)
	var last VT
	for {
		if sim.RunSteps(PolicyRoundRobin, 16) == 0 {
			break
		}
		if sim.GVT() < last {
			t.Fatalf("GVT went backwards: %d -> %d", last, sim.GVT())
		}
		last = sim.GVT()
	}
}

func TestRunStepsPartialThenComplete(t *testing.T) {
	a := buildSim(t, 1, SaverLVM, 80)
	for a.RunSteps(PolicyGlobalOrder, 7) == 7 {
	}
	b := buildSim(t, 1, SaverLVM, 80)
	b.Run(PolicyGlobalOrder)
	if !equalStates(snapshot(a), snapshot(b)) {
		t.Fatalf("piecewise run differs from complete run")
	}
}

func TestChargeCULTOption(t *testing.T) {
	run := func(charge bool) uint64 {
		cfg := Config{
			Schedulers:          1,
			ObjectsPerScheduler: 2,
			ObjectBytes:         64,
			Saver:               SaverLVM,
			GVTInterval:         8,
			ChargeCULT:          charge,
			MemFrames:           8 << 8,
		}
		h := synthetic(100, 2)
		sim, err := New(cfg, h)
		if err != nil {
			t.Fatal(err)
		}
		sim.Inject(0, 0, 1)
		sim.Inject(0, 1, 2)
		sim.Run(PolicyGlobalOrder)
		if sim.TotalStats().CULTRecords == 0 {
			t.Fatalf("no CULT records")
		}
		return sim.Elapsed()
	}
	free := run(false)
	charged := run(true)
	if charged <= free {
		t.Fatalf("ChargeCULT did not add cycles: %d vs %d", charged, free)
	}
}

func TestFourSchedulersFourCPUs(t *testing.T) {
	sim := buildSimN(t, 4, SaverLVM, 120, 8)
	sim.Run(PolicyLeastCycles)
	if len(sim.System().Machine().CPUs) != 4 {
		t.Fatalf("machine CPUs = %d", len(sim.System().Machine().CPUs))
	}
	ref := buildSimN(t, 1, SaverLVM, 120, 8)
	ref.Run(PolicyGlobalOrder)
	if !equalStates(snapshot(sim), snapshot(ref)) {
		t.Fatalf("4-scheduler run diverged")
	}
}

func TestSpeedupGrowsWithObjectSizeFig7(t *testing.T) {
	// The Figure 7 claim across the four curves at fixed c.
	var prev float64
	for _, cu := range []struct {
		w int
		s uint32
	}{{1, 32}, {2, 64}, {4, 128}, {8, 256}} {
		sp, _, _, err := Speedup(512, cu.s, cu.w, 150)
		if err != nil {
			t.Fatal(err)
		}
		if sp < prev {
			t.Fatalf("speedup not increasing with (w,s): %v at s=%d after %v", sp, cu.s, prev)
		}
		prev = sp
	}
}

func TestLVMSaverLogsExactlyPerEvent(t *testing.T) {
	// Each event logs 1 marker + w writes.
	cfg := Config{
		Schedulers:          1,
		ObjectsPerScheduler: 1,
		ObjectBytes:         64,
		Saver:               SaverLVM,
		GVTInterval:         1 << 30,
		MemFrames:           8 << 8,
	}
	h := Synthetic{Compute: 50, Writes: 3, ObjectWords: 16, Horizon: 1, NumObjects: 1}
	sim, err := New(cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	sim.Inject(0, 0, 5)
	sim.Run(PolicyGlobalOrder)
	sc := sim.scheds[0]
	// Final quiescent CULT truncates; recordsIssued returns to zero but
	// CULTRecords counts what was applied.
	if got := sc.Stats.CULTRecords; got != 4 {
		t.Fatalf("records = %d, want 1 marker + 3 writes", got)
	}
}

func TestCULTProcessorOffloads(t *testing.T) {
	run := func(dedicated bool) (schedCycles, cultCycles uint64, checksum uint32) {
		cfg := Config{
			Schedulers:          2,
			ObjectsPerScheduler: 3,
			ObjectBytes:         64,
			Saver:               SaverLVM,
			GVTInterval:         8,
			ChargeCULT:          !dedicated,
			CULTProcessor:       dedicated,
			MemFrames:           16 << 8,
		}
		h := synthetic(120, 6)
		sim, err := New(cfg, h)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint32(0); i < 6; i++ {
			sim.Inject(0, i, 500+i)
		}
		sim.Run(PolicyGlobalOrder)
		if sim.TotalStats().CULTRecords == 0 {
			t.Fatalf("no CULT work")
		}
		for _, sc := range sim.scheds {
			schedCycles += sc.p.Now()
		}
		if sim.cultCPU != nil {
			cultCycles = sim.cultCPU.Now
		}
		var sum uint32
		for obj := uint32(0); obj < 6; obj++ {
			sum = sum*31 + sim.ObjectWord(obj, 0)
		}
		return schedCycles, cultCycles, sum
	}
	inlineSched, _, c1 := run(false)
	offloadSched, cultWork, c2 := run(true)
	if c1 != c2 {
		t.Fatalf("CULT placement changed results: %08x vs %08x", c1, c2)
	}
	if cultWork == 0 {
		t.Fatalf("dedicated CULT processor did no work")
	}
	if offloadSched >= inlineSched {
		t.Fatalf("offloading CULT did not relieve schedulers: %d vs %d", offloadSched, inlineSched)
	}
}

func buildLazy(t *testing.T, lazy bool, horizon VT) *Sim {
	t.Helper()
	cfg := Config{
		Schedulers:          3,
		ObjectsPerScheduler: 3,
		ObjectBytes:         64,
		Saver:               SaverLVM,
		GVTInterval:         16,
		LazyCancellation:    lazy,
		MemFrames:           16 << 8,
	}
	h := synthetic(horizon, 9)
	sim, err := New(cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 9; i++ {
		sim.Inject(0, i, 1000+i*7)
	}
	return sim
}

func TestLazyCancellationMatchesAggressive(t *testing.T) {
	ref := buildSim(t, 1, SaverLVM, 120)
	ref.Run(PolicyGlobalOrder)
	want := snapshot(ref)

	lazy := buildLazy(t, true, 120)
	lazy.Run(PolicyRoundRobin)
	if !equalStates(snapshot(lazy), want) {
		t.Fatalf("lazy cancellation diverged from sequential")
	}
	aggr := buildLazy(t, false, 120)
	aggr.Run(PolicyRoundRobin)
	if !equalStates(snapshot(aggr), want) {
		t.Fatalf("aggressive run diverged (baseline broken)")
	}
}

func TestLazyCancellationSavesAntiMessages(t *testing.T) {
	lazy := buildLazy(t, true, 160)
	lazy.Run(PolicyRoundRobin)
	aggr := buildLazy(t, false, 160)
	aggr.Run(PolicyRoundRobin)
	ls, as := lazy.TotalStats(), aggr.TotalStats()
	if as.Rollbacks == 0 {
		t.Skip("no rollbacks in this configuration")
	}
	if ls.LazyKept == 0 {
		t.Fatalf("lazy cancellation never kept a send (rollbacks=%d)", ls.Rollbacks)
	}
	t.Logf("antis: lazy=%d aggressive=%d, kept=%d", ls.AntisSent, as.AntisSent, ls.LazyKept)
}

func TestLazyStaleSendsCancelledOnAnnihilation(t *testing.T) {
	// Deterministic micro-scenario would be intricate; instead verify the
	// global invariant over a rollback-heavy run: after completion, no
	// scheduler retains stashed lazy sends (all were re-executed or
	// flushed as antis), and the event population fully drained.
	sim := buildLazy(t, true, 200)
	sim.Run(PolicyRoundRobin)
	for _, sc := range sim.scheds {
		if len(sc.lazyPrev) != 0 {
			t.Fatalf("scheduler %d retains %d stale lazy entries", sc.id, len(sc.lazyPrev))
		}
		if sc.q.len() != 0 {
			t.Fatalf("scheduler %d queue not drained", sc.id)
		}
	}
}

// TestQuiescenceTruncateFailureSurfaces pins the swallowed-error fix in
// cult(): when the kernel refuses the quiescence-time log truncation,
// the failure must be tallied and the checkpoint positions must keep
// describing the (untruncated) log, so the next quiescence can retry —
// not silently reset as if the cut had happened.
func TestQuiescenceTruncateFailureSurfaces(t *testing.T) {
	sim := buildSim(t, 1, SaverLVM, 80)
	sc := sim.Scheduler(0)
	sc.cm.FailHook = func() error { return errors.New("injected truncation failure") }
	sim.Run(PolicyGlobalOrder)

	if sc.Stats.TruncFailures == 0 {
		t.Fatal("failed quiescence truncation left no trace")
	}
	if sc.ckptPos == 0 || sc.recordsIssued == 0 {
		t.Fatal("checkpoint positions were reset despite the failed truncation")
	}
	if got := sim.sys.K.LogAppendOffset(sc.logSeg); got != sc.ckptPos {
		t.Fatalf("log append offset %d, ckptPos %d: positions no longer describe the log", got, sc.ckptPos)
	}

	// With the injection cleared the next quiescence pass truncates.
	sc.cm.FailHook = nil
	sc.cult(^VT(0))
	if sc.ckptPos != 0 || sc.recordsIssued != 0 {
		t.Fatalf("retry did not reset positions: ckptPos %d recordsIssued %d", sc.ckptPos, sc.recordsIssued)
	}
	if got := sim.sys.K.LogAppendOffset(sc.logSeg); got != 0 {
		t.Fatalf("retry left %d bytes in the log", got)
	}
}
