package timewarp

import (
	"testing"
)

func synthetic(horizon VT, numObjects uint32) Synthetic {
	return Synthetic{
		Compute:     400,
		Writes:      3,
		ObjectWords: 16,
		Horizon:     horizon,
		MaxDelay:    6,
		NumObjects:  numObjects,
	}
}

func buildSim(t *testing.T, scheds int, saver SaverKind, horizon VT) *Sim {
	return buildSimN(t, scheds, saver, horizon, 9)
}

// buildSimN builds a sim over `totalObjects` objects regardless of the
// scheduler count, so runs with different partitionings are comparable.
func buildSimN(t *testing.T, scheds int, saver SaverKind, horizon VT, totalObjects int) *Sim {
	t.Helper()
	if totalObjects%scheds != 0 {
		t.Fatalf("totalObjects %d not divisible by %d schedulers", totalObjects, scheds)
	}
	cfg := Config{
		Schedulers:          scheds,
		ObjectsPerScheduler: totalObjects / scheds,
		ObjectBytes:         64,
		Saver:               saver,
		GVTInterval:         16,
		MemFrames:           16 << 8,
	}
	h := synthetic(horizon, uint32(totalObjects))
	sim, err := New(cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < sim.NumObjects(); i++ {
		sim.Inject(0, i, 1000+i*7)
	}
	return sim
}

// snapshot captures every object word for comparison.
func snapshot(s *Sim) []uint32 {
	words := int(s.cfg.ObjectBytes / 4)
	out := make([]uint32, 0, int(s.NumObjects())*words)
	for obj := uint32(0); obj < s.NumObjects(); obj++ {
		for w := 0; w < words; w++ {
			out = append(out, s.ObjectWord(obj, w))
		}
	}
	return out
}

func equalStates(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSequentialDeterminism(t *testing.T) {
	a := buildSim(t, 1, SaverLVM, 60)
	a.Run(PolicyGlobalOrder)
	b := buildSim(t, 1, SaverLVM, 60)
	b.Run(PolicyGlobalOrder)
	if !equalStates(snapshot(a), snapshot(b)) {
		t.Fatalf("sequential runs differ")
	}
	if a.TotalStats().Events == 0 {
		t.Fatalf("no events processed")
	}
}

func TestSaversAgree(t *testing.T) {
	a := buildSim(t, 1, SaverLVM, 60)
	a.Run(PolicyGlobalOrder)
	b := buildSim(t, 1, SaverCopy, 60)
	b.Run(PolicyGlobalOrder)
	if !equalStates(snapshot(a), snapshot(b)) {
		t.Fatalf("LVM and copy-based savers computed different states")
	}
}

func TestOptimisticMatchesSequentialLVM(t *testing.T) {
	ref := buildSim(t, 1, SaverLVM, 80)
	ref.Run(PolicyGlobalOrder)
	want := snapshot(ref)

	for _, pol := range []Policy{PolicyGlobalOrder, PolicyRoundRobin, PolicyLeastCycles} {
		got := buildSim(t, 3, SaverLVM, 80)
		got.Run(pol)
		// Different scheduler counts partition objects differently, so
		// compare against a 3-scheduler global-order run instead of the
		// 1-scheduler run for layout; but object state is global, so the
		// 1-scheduler reference is directly comparable.
		if !equalStates(snapshot(got), want) {
			st := got.TotalStats()
			t.Fatalf("policy %d diverged from sequential (events=%d rollbacks=%d)", pol, st.Events, st.Rollbacks)
		}
	}
}

func TestOptimisticMatchesSequentialCopy(t *testing.T) {
	ref := buildSim(t, 1, SaverCopy, 80)
	ref.Run(PolicyGlobalOrder)
	want := snapshot(ref)
	got := buildSim(t, 3, SaverCopy, 80)
	got.Run(PolicyRoundRobin)
	if !equalStates(snapshot(got), want) {
		t.Fatalf("copy-based optimistic run diverged")
	}
}

func TestRollbacksActuallyHappen(t *testing.T) {
	// Round-robin stepping across 3 schedulers with cross-object sends
	// must produce stragglers; otherwise the equivalence tests above are
	// vacuous.
	sim := buildSim(t, 3, SaverLVM, 120)
	sim.Run(PolicyRoundRobin)
	st := sim.TotalStats()
	if st.Rollbacks == 0 {
		t.Fatalf("no rollbacks under round-robin (events=%d)", st.Events)
	}
	if st.Replayed == 0 {
		t.Fatalf("rollbacks never rolled forward from the log")
	}
}

func TestAntiMessagesCancel(t *testing.T) {
	sim := buildSim(t, 3, SaverLVM, 120)
	sim.Run(PolicyRoundRobin)
	st := sim.TotalStats()
	if st.AntisSent == 0 {
		t.Fatalf("no anti-messages sent despite %d rollbacks", st.Rollbacks)
	}
	if st.Annihilated == 0 {
		t.Fatalf("anti-messages never annihilated anything")
	}
}

func TestManualStragglerRollsBackState(t *testing.T) {
	// Drive one scheduler directly: process events at t=10 and t=20,
	// then deliver a straggler at t=15 and check the state rewinds.
	cfg := Config{
		Schedulers:          1,
		ObjectsPerScheduler: 1,
		ObjectBytes:         64,
		Saver:               SaverLVM,
		GVTInterval:         1 << 30,
		MemFrames:           8 << 8,
	}
	h := Synthetic{Compute: 10, Writes: 2, ObjectWords: 16, Horizon: 1, NumObjects: 1} // horizon 1: no sends
	sim, err := New(cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.scheds[0]
	sim.Inject(10, 0, 111)
	sim.Inject(20, 0, 222)
	sim.RunSteps(PolicyGlobalOrder, 2)
	after20 := snapshot(sim)
	if sc.lvt != 20 {
		t.Fatalf("lvt = %d", sc.lvt)
	}

	// Replay reference: a fresh sim processing 10,15,20 in order.
	refSim, _ := New(cfg, h)
	refSim.Inject(10, 0, 111)
	refSim.Inject(15, 0, 555)
	refSim.Inject(20, 0, 222)
	refSim.Run(PolicyGlobalOrder)
	want := snapshot(refSim)

	// The straggler forces a rollback of the t=20 event.
	sim.Inject(15, 0, 555)
	if sc.Stats.Rollbacks != 1 {
		t.Fatalf("rollbacks = %d, want 1", sc.Stats.Rollbacks)
	}
	sim.Run(PolicyGlobalOrder)
	if !equalStates(snapshot(sim), want) {
		t.Fatalf("state after straggler differs from in-order execution\nafter20: %v", after20[:4])
	}
}

func TestCULTAdvancesCheckpoint(t *testing.T) {
	sim := buildSimN(t, 2, SaverLVM, 200, 8)
	sim.Run(PolicyGlobalOrder)
	st := sim.TotalStats()
	if st.CULTRecords == 0 {
		t.Fatalf("CULT never applied records")
	}
	// After the final quiescent CULT, every checkpoint equals its
	// working segment.
	for _, sc := range sim.scheds {
		for off := uint32(0); off < sc.working.Size(); off += 4 {
			if sc.working.Read32(off) != sc.ckpt.Read32(off) {
				t.Fatalf("sched %d: ckpt differs from working at %#x", sc.id, off)
			}
		}
	}
}

func TestLogTruncatedAtQuiescence(t *testing.T) {
	sim := buildSim(t, 1, SaverLVM, 100)
	sim.Run(PolicyGlobalOrder)
	sc := sim.scheds[0]
	if sc.recordsIssued != 0 || sc.ckptPos != 0 {
		t.Fatalf("log not truncated at quiescence: issued=%d ckptPos=%d", sc.recordsIssued, sc.ckptPos)
	}
	if sc.logSeg.LostRecords() != 0 {
		t.Fatalf("lost %d log records", sc.logSeg.LostRecords())
	}
}

func TestForwardMeasurementSanity(t *testing.T) {
	// LVM per-event cost must sit near c + writes*write-through, the
	// copy baseline near c + bcopy(s).
	lv, err := MeasureForward(SaverLVM, 1024, 128, 4, 300)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := MeasureForward(SaverCopy, 1024, 128, 4, 300)
	if err != nil {
		t.Fatal(err)
	}
	if lv.Overloads != 0 {
		t.Fatalf("unexpected overloads at c=1024: %d", lv.Overloads)
	}
	if cp.CyclesPerEvent <= lv.CyclesPerEvent {
		t.Fatalf("copy (%f) not costlier than LVM (%f) at s=128", cp.CyclesPerEvent, lv.CyclesPerEvent)
	}
}

func TestSpeedupShapeFigure7(t *testing.T) {
	// Figure 7's two headline shapes: (1) speedup decreases as compute
	// grain c grows; (2) larger objects benefit more.
	s1, _, _, err := Speedup(256, 256, 8, 200)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, _, err := Speedup(4096, 256, 8, 200)
	if err != nil {
		t.Fatal(err)
	}
	if s1 <= s2 {
		t.Fatalf("speedup did not decrease with c: c=256 %.3f vs c=4096 %.3f", s1, s2)
	}
	small, _, _, err := Speedup(1024, 32, 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	big, _, _, err := Speedup(1024, 256, 8, 200)
	if err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Fatalf("larger objects did not benefit more: s=32 %.3f vs s=256 %.3f", small, big)
	}
	if s1 < 1.0 {
		t.Fatalf("LVM slower than copying at c=256,s=256,w=8: %.3f", s1)
	}
}

func TestOverloadAtTinyCompute(t *testing.T) {
	// Figure 7's caption: "performance for larger values of w drops off
	// for LVM when c is below 200 cycles or so because the logger
	// overflows."
	lv, err := MeasureForward(SaverLVM, 0, 256, 8, 600)
	if err != nil {
		t.Fatal(err)
	}
	if lv.Overloads == 0 {
		t.Fatalf("no overloads at c=0, w=8")
	}
}

func TestCopyCostIndependentOfWrites(t *testing.T) {
	// "Varying the number of write operations per event does not
	// significantly affect the performance because the copy-based
	// approach is independent of the number of writes" (Section 4.3).
	a, err := MeasureForward(SaverCopy, 1024, 128, 1, 300)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureForward(SaverCopy, 1024, 128, 16, 300)
	if err != nil {
		t.Fatal(err)
	}
	ratio := b.CyclesPerEvent / a.CyclesPerEvent
	if ratio > 1.10 {
		t.Fatalf("copy cost grew %.2fx from w=1 to w=16", ratio)
	}
}

func TestEventHeapOrdering(t *testing.T) {
	var q inputQueue
	q.push(Event{Time: 5, ID: EventID{0, 1}})
	q.push(Event{Time: 3, ID: EventID{0, 2}})
	q.push(Event{Time: 5, ID: EventID{0, 0}, Obj: 1})
	e, _ := q.pop()
	if e.Time != 3 {
		t.Fatalf("heap order broken: %v", e)
	}
	e, _ = q.pop()
	if e.Time != 5 || e.Obj != 0 {
		t.Fatalf("tie-break broken: %+v", e)
	}
	if !q.remove(EventID{0, 0}) {
		t.Fatalf("remove failed")
	}
	if q.len() != 0 {
		t.Fatalf("queue not empty")
	}
}
