package experiments

import (
	"fmt"

	"lvm/internal/timewarp"
)

// Fig7Point is one (curve, c) speedup measurement of Figure 7: LVM versus
// copy-based checkpointing for the simulated simulation, varying compute
// cycles per event.
type Fig7Point struct {
	Writes      int
	ObjectBytes uint32
	Compute     uint64
	Speedup     float64
	LVMOverload uint64
}

// Fig7Curves are the paper's four (w, s) pairs.
var Fig7Curves = []struct {
	W int
	S uint32
}{
	{1, 32}, {2, 64}, {4, 128}, {8, 256},
}

// Fig7ComputeSweep is the c axis.
var Fig7ComputeSweep = []uint64{64, 128, 256, 512, 1024, 2048, 4096, 8192}

// Fig7 measures every curve point. events sets the measurement length
// per point (paper: "several thousand"; a few hundred is converged here
// because the simulator is deterministic).
func Fig7(events int) ([]Fig7Point, error) {
	var out []Fig7Point
	for _, curve := range Fig7Curves {
		for _, c := range Fig7ComputeSweep {
			sp, _, lv, err := timewarp.Speedup(c, curve.S, curve.W, events)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig7Point{
				Writes:      curve.W,
				ObjectBytes: curve.S,
				Compute:     c,
				Speedup:     sp,
				LVMOverload: lv.Overloads,
			})
		}
	}
	return out, nil
}

// FormatFig7 renders one row per compute value, one column per curve.
func FormatFig7(points []Fig7Point) string {
	header := []string{"c (cycles)"}
	for _, cu := range Fig7Curves {
		header = append(header, fmt.Sprintf("w=%d,s=%d", cu.W, cu.S))
	}
	var rows [][]string
	for _, c := range Fig7ComputeSweep {
		row := []string{d(c)}
		for _, cu := range Fig7Curves {
			for _, p := range points {
				if p.Compute == c && p.Writes == cu.W && p.ObjectBytes == cu.S {
					s := f2(p.Speedup)
					if p.LVMOverload > 0 {
						s += "*"
					}
					row = append(row, s)
				}
			}
		}
		rows = append(rows, row)
	}
	return Table(header, rows) + "(speedup = copy-based time / LVM time; * = logger overloads occurred)\n"
}

// Fig8Point is one point of Figure 8: speedup versus the fraction of the
// object written per event, for fixed (s, c) pairs.
type Fig8Point struct {
	ObjectBytes uint32
	Compute     uint64
	Fraction    float64
	Writes      int
	Speedup     float64
}

// Fig8Curves are the paper's (s, c) pairs.
var Fig8Curves = []struct {
	S uint32
	C uint64
}{
	{32, 256}, {64, 512}, {128, 1024}, {256, 2048},
}

// Fig8Fractions is the fraction-written axis.
var Fig8Fractions = []float64{0.125, 0.25, 0.5, 0.75, 1.0}

// Fig8 measures every curve point.
func Fig8(events int) ([]Fig8Point, error) {
	var out []Fig8Point
	for _, curve := range Fig8Curves {
		words := int(curve.S / 4)
		for _, frac := range Fig8Fractions {
			w := int(frac * float64(words))
			if w < 1 {
				w = 1
			}
			sp, _, _, err := timewarp.Speedup(curve.C, curve.S, w, events)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig8Point{
				ObjectBytes: curve.S,
				Compute:     curve.C,
				Fraction:    frac,
				Writes:      w,
				Speedup:     sp,
			})
		}
	}
	return out, nil
}

// FormatFig8 renders one row per fraction, one column per curve.
func FormatFig8(points []Fig8Point) string {
	header := []string{"fraction"}
	for _, cu := range Fig8Curves {
		header = append(header, fmt.Sprintf("s=%d,c=%d", cu.S, cu.C))
	}
	var rows [][]string
	for _, frac := range Fig8Fractions {
		row := []string{f2(frac)}
		for _, cu := range Fig8Curves {
			for _, p := range points {
				if p.Fraction == frac && p.ObjectBytes == cu.S && p.Compute == cu.C {
					row = append(row, f2(p.Speedup))
				}
			}
		}
		rows = append(rows, row)
	}
	return Table(header, rows)
}
