package experiments

import (
	"fmt"

	"lvm/internal/sim"
	"lvm/internal/timewarp"
)

// Fig7Point is one (curve, c) speedup measurement of Figure 7: LVM versus
// copy-based checkpointing for the simulated simulation, varying compute
// cycles per event.
type Fig7Point struct {
	Writes      int
	ObjectBytes uint32
	Compute     uint64
	Speedup     float64
	LVMOverload uint64
}

// Fig7Curves are the paper's four (w, s) pairs.
var Fig7Curves = []struct {
	W int
	S uint32
}{
	{1, 32}, {2, 64}, {4, 128}, {8, 256},
}

// Fig7ComputeSweep is the c axis.
var Fig7ComputeSweep = []uint64{64, 128, 256, 512, 1024, 2048, 4096, 8192}

// Fig7 measures every curve point. events sets the measurement length
// per point (paper: "several thousand"; a few hundred is converged here
// because the simulator is deterministic). Points run on the sim worker
// pool, one machine instance per point.
func Fig7(events int) ([]Fig7Point, error) {
	type job struct {
		W int
		S uint32
		C uint64
	}
	var jobs []job
	for _, curve := range Fig7Curves {
		for _, c := range Fig7ComputeSweep {
			jobs = append(jobs, job{curve.W, curve.S, c})
		}
	}
	return sim.Map(len(jobs), func(i int) (Fig7Point, error) {
		j := jobs[i]
		sp, _, lv, err := timewarp.Speedup(j.C, j.S, j.W, events)
		if err != nil {
			return Fig7Point{}, err
		}
		return Fig7Point{
			Writes:      j.W,
			ObjectBytes: j.S,
			Compute:     j.C,
			Speedup:     sp,
			LVMOverload: lv.Overloads,
		}, nil
	})
}

// FormatFig7 renders one row per compute value, one column per curve.
func FormatFig7(points []Fig7Point) string {
	header := []string{"c (cycles)"}
	for _, cu := range Fig7Curves {
		header = append(header, fmt.Sprintf("w=%d,s=%d", cu.W, cu.S))
	}
	var rows [][]string
	for _, c := range Fig7ComputeSweep {
		row := []string{d(c)}
		for _, cu := range Fig7Curves {
			for _, p := range points {
				if p.Compute == c && p.Writes == cu.W && p.ObjectBytes == cu.S {
					s := f2(p.Speedup)
					if p.LVMOverload > 0 {
						s += "*"
					}
					row = append(row, s)
				}
			}
		}
		rows = append(rows, row)
	}
	return Table(header, rows) + "(speedup = copy-based time / LVM time; * = logger overloads occurred)\n"
}

// Fig8Point is one point of Figure 8: speedup versus the fraction of the
// object written per event, for fixed (s, c) pairs.
type Fig8Point struct {
	ObjectBytes uint32
	Compute     uint64
	Fraction    float64
	Writes      int
	Speedup     float64
}

// Fig8Curves are the paper's (s, c) pairs.
var Fig8Curves = []struct {
	S uint32
	C uint64
}{
	{32, 256}, {64, 512}, {128, 1024}, {256, 2048},
}

// Fig8Fractions is the fraction-written axis.
var Fig8Fractions = []float64{0.125, 0.25, 0.5, 0.75, 1.0}

// Fig8 measures every curve point on the sim worker pool.
func Fig8(events int) ([]Fig8Point, error) {
	type job struct {
		S    uint32
		C    uint64
		Frac float64
		W    int
	}
	var jobs []job
	for _, curve := range Fig8Curves {
		words := int(curve.S / 4)
		for _, frac := range Fig8Fractions {
			w := int(frac * float64(words))
			if w < 1 {
				w = 1
			}
			jobs = append(jobs, job{curve.S, curve.C, frac, w})
		}
	}
	return sim.Map(len(jobs), func(i int) (Fig8Point, error) {
		j := jobs[i]
		sp, _, _, err := timewarp.Speedup(j.C, j.S, j.W, events)
		if err != nil {
			return Fig8Point{}, err
		}
		return Fig8Point{
			ObjectBytes: j.S,
			Compute:     j.C,
			Fraction:    j.Frac,
			Writes:      j.W,
			Speedup:     sp,
		}, nil
	})
}

// FormatFig8 renders one row per fraction, one column per curve.
func FormatFig8(points []Fig8Point) string {
	header := []string{"fraction"}
	for _, cu := range Fig8Curves {
		header = append(header, fmt.Sprintf("s=%d,c=%d", cu.S, cu.C))
	}
	var rows [][]string
	for _, frac := range Fig8Fractions {
		row := []string{f2(frac)}
		for _, cu := range Fig8Curves {
			for _, p := range points {
				if p.Fraction == frac && p.ObjectBytes == cu.S && p.Compute == cu.C {
					row = append(row, f2(p.Speedup))
				}
			}
		}
		rows = append(rows, row)
	}
	return Table(header, rows)
}
