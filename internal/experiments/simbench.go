package experiments

import "lvm/internal/core"

// StoreLoop is the simulator-throughput workload shared by the
// BenchmarkSimulatorThroughput benchmark, the zero-allocation regression
// test and the `lvmbench bench-json` baseline: one process issuing a
// logged store every 100 compute cycles across a 64-page region, with
// the log truncated periodically so a bounded log segment absorbs an
// unbounded run. It measures the Go simulator, not the modeled machine.
type StoreLoop struct {
	Sys *core.System
	P   *core.Process

	ls       *core.Segment
	r        *core.LogReader
	base     uint32
	i        int
	truncIn  int // steps until the next log truncation (avoids a hot-path divide)
	truncErr error
}

const (
	storeLoopPages         = 64
	storeLoopLogPages      = 16
	storeLoopTruncateEvery = 4000
	storeLoopCompute       = 100

	// Group-commit configuration for the throughput workload: batch up to
	// 8 records per DMA drain, with a deadline comfortably above the
	// ~109-cycle store interarrival so batches actually fill.
	storeLoopGroupSize     = 8
	storeLoopGroupDeadline = 1024
	storeLoopAbsorbWindow  = 8
)

// NewStoreLoop builds the workload's system, region, log and process.
func NewStoreLoop() (*StoreLoop, error) {
	sys := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 16 << 8})
	seg := core.NewStdSegment(sys, storeLoopPages*core.PageSize, nil)
	reg := core.NewStdRegion(sys, seg)
	ls := core.NewLogSegment(sys, storeLoopLogPages)
	if err := reg.Log(ls); err != nil {
		return nil, err
	}
	as := sys.NewAddressSpace()
	base, err := reg.Bind(as, 0)
	if err != nil {
		return nil, err
	}
	// The baseline throughput number exercises the group-commit + write-
	// absorption fast path (the strided store stream absorbs nothing, so
	// the absorption scan cost is included honestly).
	sys.EnableGroupCommit(storeLoopGroupSize, storeLoopGroupDeadline)
	sys.EnableWriteAbsorption(storeLoopAbsorbWindow)
	return &StoreLoop{
		Sys:     sys,
		P:       sys.NewProcess(0, as),
		ls:      ls,
		r:       core.NewLogReader(sys, ls),
		base:    base,
		truncIn: storeLoopTruncateEvery,
	}, nil
}

// Warm faults in every data and log page and runs one full truncate
// period, so that subsequent Steps touch only pre-allocated frames: the
// steady state is allocation-free on the host.
func (sl *StoreLoop) Warm() error {
	for page := uint32(0); page < storeLoopPages; page++ {
		sl.P.Load32(sl.base + page*core.PageSize)
	}
	for page := uint32(0); page < storeLoopLogPages; page++ {
		if _, err := sl.ls.EnsureResident(page); err != nil {
			return err
		}
	}
	for i := 0; i < storeLoopTruncateEvery; i++ {
		sl.Step()
	}
	return sl.truncErr
}

// Step performs one iteration: compute, one logged store, and a log
// truncation every storeLoopTruncateEvery stores.
func (sl *StoreLoop) Step() {
	sl.P.Compute(storeLoopCompute)
	sl.P.Store32(sl.base+uint32(sl.i*4)%(storeLoopPages*core.PageSize), uint32(sl.i))
	sl.i++
	sl.truncIn--
	if sl.truncIn == 0 {
		sl.truncIn = storeLoopTruncateEvery
		if err := sl.r.Truncate(); err != nil && sl.truncErr == nil {
			sl.truncErr = err
		}
	}
}

// Err reports the first log-truncation failure. Step has no error
// return (it is the measured hot path), but a failed truncation lets
// the bounded log wrap into absorb mode and quietly turns the
// throughput numbers into garbage — callers must check after the loop.
func (sl *StoreLoop) Err() error { return sl.truncErr }
