package experiments

import (
	"fmt"
	"sort"
	"strings"

	"lvm/internal/metrics"
)

// StatsReport is the output of the `lvmbench stats` subcommand: a full
// counter/histogram snapshot of the instrumented simulator after a
// canonical logged-store run, plus the tail of the control-plane event
// trace.
type StatsReport struct {
	Iters  int
	Snap   *metrics.Snapshot
	Events []metrics.TraceEvent
}

// Stats runs the standard logged-store workload (the same one the
// zero-allocation gate and bench-json measure) for iters iterations with
// event tracing enabled, and snapshots every counter the simulator keeps.
func Stats(iters int) (*StatsReport, error) {
	sl, err := NewStoreLoop()
	if err != nil {
		return nil, err
	}
	sl.Sys.Trace().Enable()
	if err := sl.Warm(); err != nil {
		return nil, err
	}
	for i := 0; i < iters; i++ {
		sl.Step()
	}
	if err := sl.Err(); err != nil {
		return nil, err
	}
	return &StatsReport{
		Iters:  iters,
		Snap:   sl.Sys.MetricsSnapshot(),
		Events: sl.Sys.Trace().Events(),
	}, nil
}

// FormatStats renders the report: counters sorted by name, histograms
// with their power-of-two buckets, and the most recent trace events.
func FormatStats(r *StatsReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "counters after %d logged-store iterations:\n\n", r.Iters)

	names := make([]string, 0, len(r.Snap.Counters))
	width := 0
	for name := range r.Snap.Counters {
		names = append(names, name)
		if len(name) > width {
			width = len(name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  %-*s %12d\n", width, name, r.Snap.Counters[name])
	}

	hnames := make([]string, 0, len(r.Snap.Histograms))
	for name := range r.Snap.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := r.Snap.Histograms[name]
		fmt.Fprintf(&b, "\nhistogram %s (%d samples):\n", name, h.Count)
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, "  <= %-10d %12d\n", bk.Le, bk.Count)
		}
	}

	if len(r.Events) > 0 {
		const tail = 10
		evs := r.Events
		if len(evs) > tail {
			evs = evs[len(evs)-tail:]
		}
		fmt.Fprintf(&b, "\nlast %d trace events (of %d buffered, %d dropped):\n",
			len(evs), len(r.Events), r.Snap.TraceDropped)
		for _, e := range evs {
			fmt.Fprintf(&b, "  t=%-10d cpu=%-3d %-14s a=%d b=%d\n",
				e.Time, e.CPU, e.KindName(), e.A, e.B)
		}
	}
	return b.String()
}
