package experiments

import (
	"fmt"

	"lvm/internal/core"
	"lvm/internal/sim"
)

// loopCfg is the Section 4.5.1 test methodology: "Run several thousand
// iterations of the following code sequence: (a) Perform c compute
// cycles (b) Perform w normal write operations (c) Perform l logged write
// operations. The addresses of the writes and logged writes increase as
// the test proceeds, so accesses always hit in the second-level cache but
// not generally in the first-level cache."
type loopCfg struct {
	Compute    uint64
	Writes     int // per iteration
	Logged     bool
	OnChip     bool // use the Section 4.6 kernel instead of the prototype
	Iterations int
}

// loopResult is one run of the loop.
type loopResult struct {
	TotalCycles    uint64 // CPU cycles over the measured iterations
	CyclesPerIter  float64
	CyclesPerWrite float64 // (total - compute) / writes
	Overloads      uint64
}

const loopRegionBytes = 256 << 10 // 64 pages: far larger than L1

func runLoop(cfg loopCfg) (loopResult, error) {
	var sys *core.System
	if cfg.OnChip {
		sys = core.NewSystemOnChip(core.Config{NumCPUs: 1, MemFrames: 32 << 8})
	} else {
		sys = core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 32 << 8})
	}
	seg := core.NewNamedSegment(sys, "loop", loopRegionBytes, nil)
	reg := core.NewStdRegion(sys, seg)
	if cfg.Logged {
		pages := uint32(cfg.Iterations*cfg.Writes/256) + 32
		ls := core.NewLogSegment(sys, pages)
		if err := reg.Log(ls); err != nil {
			return loopResult{}, err
		}
	}
	as := sys.NewAddressSpace()
	base, err := reg.Bind(as, 0)
	if err != nil {
		return loopResult{}, err
	}
	p := sys.NewProcess(0, as)
	// Ensure the region is resident ("Ensure the relevant memory regions
	// are in the second-level cache").
	for off := uint32(0); off < loopRegionBytes; off += core.PageSize {
		p.Load32(base + off)
	}
	addr := base
	step := func() {
		p.Compute(cfg.Compute)
		for j := 0; j < cfg.Writes; j++ {
			p.Store32(addr, uint32(addr))
			addr += 4
			if addr >= base+loopRegionBytes {
				addr = base
			}
		}
	}
	// Warmup, then measure.
	for i := 0; i < 64; i++ {
		step()
	}
	ovBefore := sys.K.Overloads
	start := p.Now()
	for i := 0; i < cfg.Iterations; i++ {
		step()
	}
	elapsed := p.Now() - start
	res := loopResult{
		TotalCycles:   elapsed,
		CyclesPerIter: float64(elapsed) / float64(cfg.Iterations),
		Overloads:     sys.K.Overloads - ovBefore,
	}
	if cfg.Writes > 0 {
		res.CyclesPerWrite = (float64(elapsed) - float64(cfg.Compute)*float64(cfg.Iterations)) /
			float64(cfg.Iterations*cfg.Writes)
	}
	return res, nil
}

// Fig10Point is one measurement of Figure 10: cycles per write for write
// clusters of 2, 4 and 8, with and without logging.
type Fig10Point struct {
	Cluster        int
	Compute        uint64
	Logged         bool
	CyclesPerWrite float64
	Overloads      uint64
}

// Fig10Clusters and Fig10ComputeSweep define the grid.
var (
	Fig10Clusters     = []int{2, 4, 8}
	Fig10ComputeSweep = []uint64{0, 25, 50, 100, 200, 400, 800, 1600}
)

// Fig10 measures the grid, one worker-pool job per point.
func Fig10(iterations int) ([]Fig10Point, error) {
	type job struct {
		Cluster int
		Logged  bool
		Compute uint64
	}
	var jobs []job
	for _, cl := range Fig10Clusters {
		for _, logged := range []bool{true, false} {
			for _, c := range Fig10ComputeSweep {
				jobs = append(jobs, job{cl, logged, c})
			}
		}
	}
	return sim.Map(len(jobs), func(i int) (Fig10Point, error) {
		j := jobs[i]
		r, err := runLoop(loopCfg{Compute: j.Compute, Writes: j.Cluster, Logged: j.Logged, Iterations: iterations})
		if err != nil {
			return Fig10Point{}, err
		}
		return Fig10Point{
			Cluster:        j.Cluster,
			Compute:        j.Compute,
			Logged:         j.Logged,
			CyclesPerWrite: r.CyclesPerWrite,
			Overloads:      r.Overloads,
		}, nil
	})
}

// FormatFig10 renders one block per cluster size.
func FormatFig10(points []Fig10Point) string {
	s := ""
	for _, cl := range Fig10Clusters {
		var rows [][]string
		for _, c := range Fig10ComputeSweep {
			row := []string{d(c)}
			for _, logged := range []bool{true, false} {
				for _, p := range points {
					if p.Cluster == cl && p.Compute == c && p.Logged == logged {
						row = append(row, f1(p.CyclesPerWrite))
					}
				}
			}
			rows = append(rows, row)
		}
		s += fmt.Sprintf("cluster of %d writes:\n", cl)
		s += Table([]string{"c (cycles)", "with logging", "without logging"}, rows)
		s += "\n"
	}
	return s
}

// Fig11Point is one measurement of Figures 11 and 12: the total cost per
// iteration for c in [0..63], w=0, l=1, logged and unlogged, plus the
// overload-event rate.
type Fig11Point struct {
	Compute          uint64
	LoggedCyclesIter float64
	PlainCyclesIter  float64
	OverloadsPer1000 float64
}

// Fig11ComputeSweep is c = 0..63 (sampled at every 3 to keep runtime
// proportionate; pass every value for the full curve).
func Fig11ComputeSweep(stride int) []uint64 {
	if stride <= 0 {
		stride = 1
	}
	var out []uint64
	for c := 0; c <= 63; c += stride {
		out = append(out, uint64(c))
	}
	return out
}

// Fig11 measures the sweep ("a series of tests with c = [0...63], w = 0,
// and l = 1"). Each compute value is one worker-pool job running its
// logged and unlogged loops on separate machine instances.
func Fig11(sweep []uint64, iterations int) ([]Fig11Point, error) {
	return sim.Map(len(sweep), func(i int) (Fig11Point, error) {
		c := sweep[i]
		lg, err := runLoop(loopCfg{Compute: c, Writes: 1, Logged: true, Iterations: iterations})
		if err != nil {
			return Fig11Point{}, err
		}
		pl, err := runLoop(loopCfg{Compute: c, Writes: 1, Logged: false, Iterations: iterations})
		if err != nil {
			return Fig11Point{}, err
		}
		return Fig11Point{
			Compute:          c,
			LoggedCyclesIter: lg.CyclesPerIter,
			PlainCyclesIter:  pl.CyclesPerIter,
			OverloadsPer1000: 1000 * float64(lg.Overloads) / float64(iterations),
		}, nil
	})
}

// FormatFig11 renders the total-cost curves (Figure 11).
func FormatFig11(points []Fig11Point) string {
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{
			d(p.Compute), f1(p.LoggedCyclesIter), f1(p.PlainCyclesIter),
		})
	}
	return Table([]string{"c (cycles)", "with logging", "without logging"}, rows)
}

// FormatFig12 renders the overload-rate curve (Figure 12).
func FormatFig12(points []Fig11Point) string {
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{d(p.Compute), f2(p.OverloadsPer1000)})
	}
	return Table([]string{"c (cycles)", "overloads per 1000 iterations"}, rows)
}
