package experiments

import (
	"lvm/internal/core"
	"lvm/internal/cycles"
	"lvm/internal/oodb"
	"lvm/internal/ramdisk"
	"lvm/internal/sim"
)

// OODBPoint is one transaction-length measurement of the object-database
// workload: Section 4.2's prediction that "longer transactions would also
// show greater benefit from LVM, assuming correspondingly more write
// operations as well. TPC-A is a sequence of simple debit-credit
// operations. Transactions in object-oriented database systems tend to be
// longer and involve far more processing."
type OODBPoint struct {
	TouchesPerTxn int
	RVMTPS        float64
	RLVMTPS       float64
	Speedup       float64
}

// OODBTxnLengths is the default sweep of objects touched per transaction.
var OODBTxnLengths = []int{1, 2, 4, 8, 16, 32}

// OODB runs the transaction-length sweep over both engines, one
// worker-pool job per transaction length.
func OODB(lengths []int, txns int) ([]OODBPoint, error) {
	if len(lengths) == 0 {
		lengths = OODBTxnLengths
	}
	cfg := oodb.DefaultConfig()
	return sim.Map(len(lengths), func(i int) (OODBPoint, error) {
		w := oodb.Workload{
			Objects:          256,
			UpdatesPerObject: 3,
			ThinkCycles:      300,
			TouchesPerTxn:    lengths[i],
		}
		pt := OODBPoint{TouchesPerTxn: lengths[i]}

		{
			sys := core.NewSystemNoLogger(core.Config{NumCPUs: 1, MemFrames: 16 << 8})
			p := sys.NewProcess(0, sys.NewAddressSpace())
			s, err := oodb.OpenRVM(sys, p, cfg, ramdisk.New())
			if err != nil {
				return pt, err
			}
			if err := w.SeedStore(s); err != nil {
				return pt, err
			}
			elapsed, err := w.Run(s, p, txns)
			if err != nil {
				return pt, err
			}
			pt.RVMTPS = cycles.CyclesPerSecond * float64(txns) / float64(elapsed)
		}
		{
			sys := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 16 << 8})
			p := sys.NewProcess(0, sys.NewAddressSpace())
			s, err := oodb.OpenRLVM(sys, p, cfg, ramdisk.New())
			if err != nil {
				return pt, err
			}
			if err := w.SeedStore(s); err != nil {
				return pt, err
			}
			elapsed, err := w.Run(s, p, txns)
			if err != nil {
				return pt, err
			}
			pt.RLVMTPS = cycles.CyclesPerSecond * float64(txns) / float64(elapsed)
		}
		pt.Speedup = pt.RLVMTPS / pt.RVMTPS
		return pt, nil
	})
}

// FormatOODB renders the sweep.
func FormatOODB(points []OODBPoint) string {
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{
			d(uint64(p.TouchesPerTxn)), f1(p.RVMTPS), f1(p.RLVMTPS), f2(p.Speedup),
		})
	}
	return Table([]string{"objects/txn", "RVM tps", "RLVM tps", "speedup"}, rows)
}
