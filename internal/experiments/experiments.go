// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4) as structured data. cmd/lvmbench prints them;
// bench_test.go wraps them as testing.B benchmarks; EXPERIMENTS.md records
// paper-vs-measured values.
//
// The experiments:
//
//	Table 2  — basic machine operations (calibration check)
//	Table 3  — RVM vs RLVM: single recoverable write; TPC-A throughput
//	Figure 7 — LVM vs copy-based checkpointing speedup vs compute grain
//	Figure 8 — speedup vs fraction of object written
//	Figure 9 — resetDeferredCopy() vs bcopy vs dirty data
//	Figure 10 — CPU cost of logged vs unlogged writes (write clusters)
//	Figure 11 — total cost per iteration incl. overload penalty
//	Figure 12 — overload events per 1000 iterations
//
// plus the ablations called out in DESIGN.md.
package experiments

import (
	"fmt"
	"strings"
)

// OutputCSV switches every Format* function from aligned text tables to
// comma-separated values (for plotting; set by lvmbench -csv).
var OutputCSV bool

// Table renders rows of columns as an aligned text table, or as CSV when
// OutputCSV is set.
func Table(header []string, rows [][]string) string {
	if OutputCSV {
		var b strings.Builder
		writeCSVLine(&b, header)
		for _, r := range rows {
			writeCSVLine(&b, r)
		}
		return b.String()
	}
	return textTable(header, rows)
}

func writeCSVLine(b *strings.Builder, cols []string) {
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		b.WriteString(c)
	}
	b.WriteByte('\n')
}

func textTable(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func d(v uint64) string   { return fmt.Sprintf("%d", v) }
