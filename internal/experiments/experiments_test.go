package experiments

import (
	"strings"
	"testing"
)

func TestTable2Calibration(t *testing.T) {
	rows := Table2()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TotalCycle != r.PaperTotal {
			t.Fatalf("%s: total %d, paper %d", r.Operation, r.TotalCycle, r.PaperTotal)
		}
		if r.BusCycles != r.PaperBus {
			t.Fatalf("%s: bus %d, paper %d", r.Operation, r.BusCycles, r.PaperBus)
		}
	}
	if !strings.Contains(FormatTable2(rows), "Word write-through") {
		t.Fatalf("format missing rows")
	}
}

func TestTable3Shape(t *testing.T) {
	r, err := Table3(120)
	if err != nil {
		t.Fatal(err)
	}
	// Single write: paper 3515 vs 16; we require the same two orders of
	// magnitude separation and RVM within 5% of 3515.
	if r.RVMWriteCycles < 3340 || r.RVMWriteCycles > 3690 {
		t.Fatalf("RVM single write = %.0f, want ~3515", r.RVMWriteCycles)
	}
	if r.RLVMWriteCycles > 40 {
		t.Fatalf("RLVM single write = %.0f, want ~16", r.RLVMWriteCycles)
	}
	if r.RVMWriteCycles/r.RLVMWriteCycles < 100 {
		t.Fatalf("RVM/RLVM write ratio = %.0f, want >= 100", r.RVMWriteCycles/r.RLVMWriteCycles)
	}
	// TPC-A: paper 418 vs 552 (+32%); require RLVM to win by 10-60%.
	if r.RLVMTPS < r.RVMTPS*1.10 || r.RLVMTPS > r.RVMTPS*1.60 {
		t.Fatalf("TPC-A: RVM %.0f vs RLVM %.0f — ratio off", r.RVMTPS, r.RLVMTPS)
	}
	if !strings.Contains(FormatTable3(r), "TPC-A") {
		t.Fatalf("format broken")
	}
}

func TestFig9Shape(t *testing.T) {
	points, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range Fig9Sizes {
		// Reset cost grows with dirty data; bcopy stays flat; crossover
		// near two-thirds (paper: "resetdeferredcopy() performs better
		// than a raw copy if less than about two-thirds of the segment
		// is dirty").
		var prev uint64
		var bcopy uint64
		for _, p := range points {
			if p.SegmentBytes != size {
				continue
			}
			if p.ResetCycles < prev {
				t.Fatalf("size %d: reset cost not monotone", size)
			}
			prev = p.ResetCycles
			bcopy = p.BcopyCycles
		}
		_ = bcopy
		x := Crossover(points, size)
		if x < 0.55 || x > 0.8 {
			t.Fatalf("size %d: crossover at %.2f, want ~0.67", size, x)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	points, err := Fig10(400)
	if err != nil {
		t.Fatal(err)
	}
	get := func(cl int, c uint64, logged bool) Fig10Point {
		for _, p := range points {
			if p.Cluster == cl && p.Compute == c && p.Logged == logged {
				return p
			}
		}
		t.Fatalf("missing point")
		return Fig10Point{}
	}
	// At large c: logged costs more than unlogged (write-through), and
	// both are flat-ish.
	lg, un := get(4, 1600, true), get(4, 1600, false)
	if lg.CyclesPerWrite <= un.CyclesPerWrite {
		t.Fatalf("logged (%.1f) not costlier than unlogged (%.1f) at c=1600", lg.CyclesPerWrite, un.CyclesPerWrite)
	}
	if lg.Overloads != 0 {
		t.Fatalf("overloads at c=1600")
	}
	// At c=0: logged writes collapse (overload), unlogged do not.
	lg0, un0 := get(4, 0, true), get(4, 0, false)
	if lg0.CyclesPerWrite < 2*lg.CyclesPerWrite {
		t.Fatalf("no overload collapse at c=0: %.1f vs %.1f", lg0.CyclesPerWrite, lg.CyclesPerWrite)
	}
	if un0.CyclesPerWrite > 2*un.CyclesPerWrite {
		t.Fatalf("unlogged writes degraded at c=0: %.1f vs %.1f", un0.CyclesPerWrite, un.CyclesPerWrite)
	}
	// Burst size: larger logged clusters cost more per write at moderate
	// c (bus queueing behind record DMAs).
	c2, c8 := get(2, 200, true), get(8, 200, true)
	if c8.CyclesPerWrite < c2.CyclesPerWrite {
		t.Fatalf("larger bursts not costlier: cl2 %.1f vs cl8 %.1f", c2.CyclesPerWrite, c8.CyclesPerWrite)
	}
}

func TestFig11And12Shape(t *testing.T) {
	points, err := Fig11([]uint64{0, 9, 18, 27, 36, 45, 63}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	byC := map[uint64]Fig11Point{}
	for _, p := range points {
		byC[p.Compute] = p
	}
	// Overloads at c=0, none at c>=36 ("this overload is avoided as long
	// as there is no more than one logged write per 27 compute cycles on
	// average").
	if byC[0].OverloadsPer1000 == 0 {
		t.Fatalf("no overloads at c=0")
	}
	if byC[45].OverloadsPer1000 != 0 || byC[63].OverloadsPer1000 != 0 {
		t.Fatalf("overloads beyond the threshold: c45=%.2f c63=%.2f",
			byC[45].OverloadsPer1000, byC[63].OverloadsPer1000)
	}
	// The overhead over the unlogged baseline shrinks as c grows
	// (Figure 11's converging curves).
	over0 := byC[0].LoggedCyclesIter - byC[0].PlainCyclesIter
	over63 := byC[63].LoggedCyclesIter - byC[63].PlainCyclesIter
	if over0 <= over63 {
		t.Fatalf("logged overhead not shrinking: %.1f@0 vs %.1f@63", over0, over63)
	}
	// Overload rate decreases with c (Figure 12's falling curve).
	if byC[0].OverloadsPer1000 < byC[18].OverloadsPer1000 {
		t.Fatalf("overload rate not falling: %v vs %v", byC[0].OverloadsPer1000, byC[18].OverloadsPer1000)
	}
	if FormatFig11(points) == "" || FormatFig12(points) == "" {
		t.Fatalf("formatting broken")
	}
}

func TestFig7SmallGrid(t *testing.T) {
	// A reduced grid to keep unit tests quick; the shape assertions are
	// in the timewarp package and in the bench harness.
	pts, err := Fig7(60)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(Fig7Curves)*len(Fig7ComputeSweep) {
		t.Fatalf("points = %d", len(pts))
	}
	if FormatFig7(pts) == "" {
		t.Fatalf("format empty")
	}
}

func TestFig8SmallGrid(t *testing.T) {
	pts, err := Fig8(60)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(Fig8Curves)*len(Fig8Fractions) {
		t.Fatalf("points = %d", len(pts))
	}
	// Speedup decreases (weakly) with fraction written for the s=256
	// curve ("the speedup decreases slowly as the fraction of the object
	// being written is increased").
	var first, last float64
	for _, p := range pts {
		if p.ObjectBytes != 256 {
			continue
		}
		if p.Fraction == Fig8Fractions[0] {
			first = p.Speedup
		}
		if p.Fraction == Fig8Fractions[len(Fig8Fractions)-1] {
			last = p.Speedup
		}
	}
	if last > first*1.05 {
		t.Fatalf("speedup grew with fraction written: %.2f -> %.2f", first, last)
	}
	if FormatFig8(pts) == "" {
		t.Fatalf("format empty")
	}
}

func TestLoggerModelsAblation(t *testing.T) {
	pts := LoggerModels([]uint64{0, 50, 400}, 1500)
	for _, p := range pts {
		// Section 4.6: on-chip logged writes cost essentially the same
		// as unlogged writes (within a couple of cycles).
		if p.Compute >= 50 && p.OnChipWrite > p.UnloggedWrite+3 {
			t.Fatalf("c=%d: on-chip %.1f vs unlogged %.1f", p.Compute, p.OnChipWrite, p.UnloggedWrite)
		}
		// And strictly cheaper than the prototype's write-through path.
		if p.OnChipWrite >= p.PrototypeWrite {
			t.Fatalf("c=%d: on-chip %.1f not cheaper than prototype %.1f", p.Compute, p.OnChipWrite, p.PrototypeWrite)
		}
	}
	// The prototype overloads at c=0; the on-chip design never does (it
	// has no overload mechanism at all — it stalls instead).
	if pts[0].PrototypeOverloads == 0 {
		t.Fatalf("prototype did not overload at c=0")
	}
	if FormatLoggerModels(pts) == "" {
		t.Fatalf("format empty")
	}
}

func TestConsistencyAblation(t *testing.T) {
	pts, err := Consistency(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	distinct, repeated := pts[0], pts[1]
	if distinct.LVMCycles >= distinct.MuninCycles {
		t.Fatalf("distinct: LVM %d not cheaper than Munin %d", distinct.LVMCycles, distinct.MuninCycles)
	}
	if repeated.LVMBytes <= repeated.MuninBytes {
		t.Fatalf("repeated: LVM bytes %d not larger than Munin %d (the acknowledged trade-off)",
			repeated.LVMBytes, repeated.MuninBytes)
	}
}

func TestSetRangeAblation(t *testing.T) {
	r, err := SetRangeAblation(64)
	if err != nil {
		t.Fatal(err)
	}
	if !(r.RLVM < r.AmortizedRVM && r.AmortizedRVM < r.PerWriteRVM) {
		t.Fatalf("ordering wrong: rlvm %.1f, amortized %.1f, per-write %.1f",
			r.RLVM, r.AmortizedRVM, r.PerWriteRVM)
	}
	if FormatSetRange(r) == "" {
		t.Fatalf("format empty")
	}
}

func TestCheckpointStylesAblation(t *testing.T) {
	pts, err := CheckpointStyles(64, []int{1, 8, 32, 64})
	if err != nil {
		t.Fatal(err)
	}
	// With few dirty pages, deferred copy avoids the per-checkpoint
	// protect-everything cost and wins.
	if pts[0].DeferredCycles >= pts[0].WriteProtCycles {
		t.Fatalf("1 dirty page: deferred %d not cheaper than write-protect %d",
			pts[0].DeferredCycles, pts[0].WriteProtCycles)
	}
	if FormatCheckpointStyles(pts) == "" {
		t.Fatalf("format empty")
	}
}

func TestTableRenderer(t *testing.T) {
	s := Table([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(s, "a") || !strings.Contains(s, "333") {
		t.Fatalf("table = %q", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d", len(lines))
	}
}

func TestFullStackOnChipAblation(t *testing.T) {
	pts, err := FullStackOnChip([]uint64{0, 50, 400}, 1200)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		// Through the whole VM stack, on-chip logged iterations must
		// cost within a few cycles of unlogged ones (Section 4.6) — once
		// there is enough compute for the write buffer to drain. At c=0
		// the processor stalls on the buffer, "the same as if it is
		// writing rapidly to a write-through region", which is expected
		// and far milder than the prototype's overload interrupts.
		if p.Compute >= 50 && p.OnChipIter > p.UnloggedIter+6 {
			t.Fatalf("c=%d: on-chip %.1f vs unlogged %.1f", p.Compute, p.OnChipIter, p.UnloggedIter)
		}
		// In all cases it beats the prototype's write-through/overload
		// path.
		if p.OnChipIter >= p.PrototypeIter {
			t.Fatalf("c=%d: on-chip %.1f not under prototype %.1f", p.Compute, p.OnChipIter, p.PrototypeIter)
		}
	}
	if FormatFullStack(pts) == "" {
		t.Fatalf("format empty")
	}
}

func TestParallelSimExtension(t *testing.T) {
	pts, err := ParallelSim(4, 200, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Checksum != pts[1].Checksum || pts[0].Checksum != pts[2].Checksum {
		t.Fatalf("runs disagree")
	}
	if pts[0].Events == 0 || pts[0].Elapsed == 0 {
		t.Fatalf("empty run: %+v", pts[0])
	}
	if FormatParallelSim(pts) == "" {
		t.Fatalf("format empty")
	}
}

func TestOODBTxnLengthSweep(t *testing.T) {
	pts, err := OODB([]int{1, 8, 32}, 25)
	if err != nil {
		t.Fatal(err)
	}
	// RLVM wins at every length, and the advantage grows with
	// transaction length (the Section 4.2 prediction).
	var prev float64
	for _, p := range pts {
		if p.Speedup <= 1.0 {
			t.Fatalf("L=%d: RLVM not faster (%.2f)", p.TouchesPerTxn, p.Speedup)
		}
		if p.Speedup < prev {
			t.Fatalf("speedup fell with txn length: %.2f after %.2f", p.Speedup, prev)
		}
		prev = p.Speedup
	}
	if FormatOODB(pts) == "" {
		t.Fatalf("format empty")
	}
}

func TestCSVOutput(t *testing.T) {
	OutputCSV = true
	defer func() { OutputCSV = false }()
	s := Table([]string{"a", "b"}, [][]string{{"1", "with,comma"}, {"2", `q"q`}})
	want := "a,b\n1,\"with,comma\"\n2,\"q\"\"q\"\n"
	if s != want {
		t.Fatalf("csv = %q, want %q", s, want)
	}
}

func TestExperimentDeterminism(t *testing.T) {
	a, err := Fig11([]uint64{27}, 800)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig11([]uint64{27}, 800)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Fatalf("experiment not reproducible: %+v vs %+v", a[0], b[0])
	}
}
