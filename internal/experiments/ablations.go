package experiments

import (
	"lvm/internal/core"
	"lvm/internal/dsm"
	"lvm/internal/hwlogger"
	"lvm/internal/machine"
	"lvm/internal/phys"
	"lvm/internal/ramdisk"
	"lvm/internal/rlvm"
	"lvm/internal/rvm"
	"lvm/internal/sim"
	"lvm/internal/tlblog"
)

// --- Ablation 1: prototype bus logger vs Section 4.6 on-chip logger ---

// LoggerModelPoint compares per-logged-write cost across logging
// hardware for one compute grain.
type LoggerModelPoint struct {
	Compute            uint64
	PrototypeWrite     float64 // bus logger, write-through (cycles/write)
	OnChipWrite        float64 // TLB logger, write-back (cycles/write)
	UnloggedWrite      float64 // plain write-back baseline
	PrototypeOverloads uint64
}

// LoggerModels sweeps compute grain. It verifies the Section 4.6 claim:
// "With this on-chip logging support, the cost of logged writes should be
// essentially the same as unlogged writes (except for the bus overhead of
// the log records)" — and that the overload pathology disappears.
func LoggerModels(sweep []uint64, iterations int) []LoggerModelPoint {
	run := func(c uint64, mode int) (float64, uint64) {
		m := machine.New(machine.Config{NumCPUs: 1, MemFrames: 1024})
		var overloads *uint64
		switch mode {
		case 0: // prototype
			lg := newPrototypeShim(m)
			overloads = &lg.Overloads
		case 1: // on-chip
			lg := tlblog.New(m.Bus, m.Phys)
			// Map the whole data window to log 0 with generous space.
			for vpn := uint32(0); vpn < 64; vpn++ {
				lg.MapPage(vpn, 0)
			}
			logBase := phys.FrameBase(allocFrames(m, 64))
			lg.SetDescriptor(0, logBase, logBase+64*phys.PageSize)
			m.Log = lg
		}
		dataBase := phys.FrameBase(allocFrames(m, 64))
		cpu := m.CPUs[0]
		addr := dataBase
		step := func() {
			cpu.Compute(c)
			switch mode {
			case 0:
				cpu.WordWrite(addr, addr-dataBase, uint32(addr), 4, true, true)
			case 1:
				cpu.WordWrite(addr, addr-dataBase, uint32(addr), 4, false, true)
			default:
				cpu.WordWrite(addr, addr-dataBase, uint32(addr), 4, false, false)
			}
			addr += 4
			if addr >= dataBase+64*phys.PageSize {
				addr = dataBase
			}
		}
		for i := 0; i < 32; i++ {
			step()
		}
		start := cpu.Now
		for i := 0; i < iterations; i++ {
			step()
		}
		perWrite := (float64(cpu.Now-start) - float64(c)*float64(iterations)) / float64(iterations)
		var ov uint64
		if overloads != nil {
			ov = *overloads
		}
		return perWrite, ov
	}
	out, _ := sim.Map(len(sweep), func(i int) (LoggerModelPoint, error) {
		c := sweep[i]
		p := LoggerModelPoint{Compute: c}
		p.PrototypeWrite, p.PrototypeOverloads = run(c, 0)
		p.OnChipWrite, _ = run(c, 1)
		p.UnloggedWrite, _ = run(c, 2)
		return p, nil
	})
	return out
}

// newPrototypeShim attaches a raw prototype bus logger to a bare machine
// with a self-serving fault handler: missing page-mapping entries are
// loaded on demand (all pages log to log 0) and the log wraps in place
// when it fills a page — a minimal stand-in for the kernel's handler that
// keeps the per-record fault amortization realistic (one fault per 256
// records).
func newPrototypeShim(m *machine.Machine) *hwlogger.Logger {
	lg := hwlogger.New(m.Bus, m.Phys)
	logBase := phys.FrameBase(allocFrames(m, 1))
	lg.SetLogHead(0, logBase, hwlogger.ModeRecord)
	lg.OnFault = func(l *hwlogger.Logger, f hwlogger.Fault) bool {
		switch f.Kind {
		case hwlogger.FaultMissingPMT:
			l.LoadPMT(f.PPN, 0)
			if !l.LogHead(0).Valid {
				l.SetLogHead(0, logBase, hwlogger.ModeRecord)
			}
			return true
		case hwlogger.FaultInvalidLogAddr:
			l.SetLogHead(0, logBase, hwlogger.ModeRecord)
			return true
		}
		return false
	}
	m.Log = lg
	return lg
}

// FormatLoggerModels renders the comparison.
func FormatLoggerModels(points []LoggerModelPoint) string {
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{
			d(p.Compute), f1(p.PrototypeWrite), f1(p.OnChipWrite), f1(p.UnloggedWrite), d(p.PrototypeOverloads),
		})
	}
	return Table([]string{"c (cycles)", "prototype", "on-chip", "unlogged", "proto overloads"}, rows)
}

// --- Ablation 2: log-based consistency vs Munin twin/diff ---

// ConsistencyPoint compares producer overhead and bytes for one write
// pattern.
type ConsistencyPoint struct {
	Pattern     string
	MuninCycles uint64
	LVMCycles   uint64
	MuninBytes  int
	LVMBytes    int
}

// Consistency runs distinct-writes and repeated-writes patterns over both
// protocols (Section 2.6 and its acknowledged trade-off).
func Consistency(writes int) ([]ConsistencyPoint, error) {
	const size = 8 * core.PageSize
	run := func(repeat bool) (ConsistencyPoint, error) {
		name := "distinct"
		if repeat {
			name = "repeated"
		}
		pt := ConsistencyPoint{Pattern: name}
		sysA := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 8192})
		munin, err := dsm.NewMuninProducer(sysA, sysA.NewProcess(0, sysA.NewAddressSpace()), size)
		if err != nil {
			return pt, err
		}
		sysB := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 8192})
		lvmp, err := dsm.NewLVMProducer(sysB, sysB.NewProcess(0, sysB.NewAddressSpace()), size, 128)
		if err != nil {
			return pt, err
		}
		for i := 0; i < writes; i++ {
			off := uint32(i*68) % size &^ 3
			if repeat {
				off = 0
			}
			munin.Write(off, uint32(i))
			lvmp.Write(off, uint32(i))
		}
		_, stM := munin.Release()
		_, stL := lvmp.Release()
		pt.MuninCycles = munin.WriteCycles() + stM.Cycles
		pt.LVMCycles = lvmp.WriteCycles() + stL.Cycles
		pt.MuninBytes = stM.Bytes
		pt.LVMBytes = stL.Bytes
		return pt, nil
	}
	return sim.Map(2, func(i int) (ConsistencyPoint, error) {
		return run(i == 1)
	})
}

// FormatConsistency renders the comparison.
func FormatConsistency(points []ConsistencyPoint) string {
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{
			p.Pattern, d(p.MuninCycles), d(p.LVMCycles),
			d(uint64(p.MuninBytes)), d(uint64(p.LVMBytes)),
		})
	}
	return Table([]string{"pattern", "munin cycles", "lvm cycles", "munin bytes", "lvm bytes"}, rows)
}

// --- Ablation 3: SetRange amortization ---

// SetRangeAmortization compares per-write cost of (a) RVM with one
// set_range per write, (b) RVM with one set_range amortized over a large
// range, and (c) RLVM — the Section 5.3 discussion ("the performance of
// RVM can be improved by calling set_range() only once over a large
// region, amortizing its cost over several writes. However, there is a
// conflict between these two techniques and encapsulation.").
type SetRangeResult struct {
	PerWriteRVM  float64
	AmortizedRVM float64
	RLVM         float64
	Writes       int
}

// SetRangeAblation measures all three with the given write count.
func SetRangeAblation(writes int) (SetRangeResult, error) {
	res := SetRangeResult{Writes: writes}
	// (a) and (b) on RVM.
	sys := core.NewSystemNoLogger(core.Config{NumCPUs: 1, MemFrames: 2048})
	p := sys.NewProcess(0, sys.NewAddressSpace())
	m, err := rvm.New(sys, p, 4*core.PageSize, ramdisk.New(), rvm.Options{})
	if err != nil {
		return res, err
	}
	if err := m.Begin(); err != nil {
		return res, err
	}
	start := p.Now()
	for i := 0; i < writes; i++ {
		if err := m.RecoverableWrite32(m.Base()+uint32(i*4), uint32(i)); err != nil {
			return res, err
		}
	}
	res.PerWriteRVM = float64(p.Now()-start) / float64(writes)

	start = p.Now()
	if err := m.SetRange(m.Base(), uint32(writes*4)); err != nil {
		return res, err
	}
	for i := 0; i < writes; i++ {
		p.Store32(m.Base()+uint32(i*4), uint32(i))
	}
	res.AmortizedRVM = float64(p.Now()-start) / float64(writes)
	if err := m.Commit(); err != nil {
		return res, err
	}

	// (c) RLVM.
	sys2 := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 4096})
	p2 := sys2.NewProcess(0, sys2.NewAddressSpace())
	m2, err := rlvm.New(sys2, p2, 4*core.PageSize, ramdisk.New(), rlvm.Options{LogPages: 64})
	if err != nil {
		return res, err
	}
	if err := m2.Begin(); err != nil {
		return res, err
	}
	m2.RecoverableWrite32(m2.Base(), 0) // warm
	start = p2.Now()
	for i := 0; i < writes; i++ {
		if err := m2.RecoverableWrite32(m2.Base()+uint32(i*4), uint32(i)); err != nil {
			return res, err
		}
	}
	res.RLVM = float64(p2.Now()-start) / float64(writes)
	return res, nil
}

// FormatSetRange renders the comparison.
func FormatSetRange(r SetRangeResult) string {
	rows := [][]string{
		{"RVM, set_range per write", f1(r.PerWriteRVM)},
		{"RVM, one amortized set_range", f1(r.AmortizedRVM)},
		{"RLVM (no set_range)", f1(r.RLVM)},
	}
	return Table([]string{"variant", "cycles/write"}, rows)
}

// --- Ablation 4: deferred copy vs Li/Appel write-protect checkpointing ---

// CheckpointStylePoint compares one checkpoint+rollback cycle.
type CheckpointStylePoint struct {
	DirtyPages      int
	DeferredCycles  uint64 // resetDeferredCopy-based
	WriteProtCycles uint64 // Li/Appel page-protection model
}

// CheckpointStyles measures a full checkpoint + k-dirty-pages + rollback
// cycle under both schemes over a segment of the given pages, using the
// real implementations: vm's deferred copy (Section 3.3) versus vm's
// Li/Appel write-protect checkpointer (Section 5.1). Both sides issue the
// same stores through a Process; the difference is pure protocol cost
// (protect-all + fault-copy-per-page vs. line-granularity reset).
func CheckpointStyles(segPages int, dirtySweep []int) ([]CheckpointStylePoint, error) {
	size := uint32(segPages) * core.PageSize
	dirtyStores := func(p *core.Process, base core.Addr, pages int) {
		for pg := 0; pg < pages; pg++ {
			for off := uint32(0); off < core.PageSize; off += core.LineSize {
				p.Store32(base+uint32(pg)*core.PageSize+off, off^uint32(pg))
			}
		}
	}
	warm := func(p *core.Process, base core.Addr) {
		for off := uint32(0); off < size; off += core.PageSize {
			p.Load32(base + off)
		}
	}
	var sweep []int
	for _, dirty := range dirtySweep {
		if dirty <= segPages {
			sweep = append(sweep, dirty)
		}
	}
	return sim.Map(len(sweep), func(i int) (CheckpointStylePoint, error) {
		dirty := sweep[i]
		pt := CheckpointStylePoint{DirtyPages: dirty}

		// Deferred copy.
		{
			sys := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 3*segPages + 1024})
			src := core.NewNamedSegment(sys, "ckpt", size, nil)
			dst := core.NewNamedSegment(sys, "work", size, nil)
			if err := dst.SetSourceSegment(src, 0); err != nil {
				return pt, err
			}
			reg := core.NewStdRegion(sys, dst)
			as := sys.NewAddressSpace()
			base, err := reg.Bind(as, 0)
			if err != nil {
				return pt, err
			}
			p := sys.NewProcess(0, as)
			warm(p, base)
			start := p.Now()
			// The checkpoint already exists (the source segment); dirty
			// k pages, then roll back.
			dirtyStores(p, base, dirty)
			if _, err := sys.K.ResetDeferredCopySegment(dst, p.CPU); err != nil {
				return pt, err
			}
			pt.DeferredCycles = p.Now() - start
		}

		// Li/Appel write-protect.
		{
			sys := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 3*segPages + 1024})
			seg := core.NewNamedSegment(sys, "work", size, nil)
			reg := core.NewStdRegion(sys, seg)
			as := sys.NewAddressSpace()
			base, err := reg.Bind(as, 0)
			if err != nil {
				return pt, err
			}
			p := sys.NewProcess(0, as)
			warm(p, base)
			wp, err := sys.K.NewWPCheckpoint(seg)
			if err != nil {
				return pt, err
			}
			start := p.Now()
			wp.Checkpoint(p.CPU) // protect every page
			dirtyStores(p, base, dirty)
			if err := wp.Rollback(p.CPU); err != nil {
				return pt, err
			}
			pt.WriteProtCycles = p.Now() - start
		}
		return pt, nil
	})
}

// FormatCheckpointStyles renders the comparison.
func FormatCheckpointStyles(points []CheckpointStylePoint) string {
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{
			d(uint64(p.DirtyPages)), d(p.DeferredCycles), d(p.WriteProtCycles),
		})
	}
	return Table([]string{"dirty pages", "deferred copy (cycles)", "write-protect (cycles)"}, rows)
}

func allocFrames(m *machine.Machine, n int) uint32 {
	first, err := m.Phys.Alloc()
	if err != nil {
		panic(err)
	}
	for i := 1; i < n; i++ {
		if _, err := m.Phys.Alloc(); err != nil {
			panic(err)
		}
	}
	return first
}

// --- Ablation 5: full-stack on-chip logging (Section 4.6 kernel) ---

// FullStackPoint compares the Section 4.5 loop through the complete VM
// stack — page tables, fault handlers, log segments — under the prototype
// bus logger versus the Section 4.6 on-chip kernel.
type FullStackPoint struct {
	Compute                   uint64
	PrototypeIter             float64
	OnChipIter                float64
	UnloggedIter              float64
	PrototypeLoggedWritesLost uint64
}

// FullStackOnChip runs the comparison. Unlike LoggerModels (bare machine),
// this exercises Region.Log, page faults, log-segment paging and the
// kernel's fault handlers on both hardware designs.
func FullStackOnChip(sweep []uint64, iterations int) ([]FullStackPoint, error) {
	return sim.Map(len(sweep), func(i int) (FullStackPoint, error) {
		c := sweep[i]
		proto, err := runLoop(loopCfg{Compute: c, Writes: 1, Logged: true, Iterations: iterations})
		if err != nil {
			return FullStackPoint{}, err
		}
		chip, err := runLoop(loopCfg{Compute: c, Writes: 1, Logged: true, OnChip: true, Iterations: iterations})
		if err != nil {
			return FullStackPoint{}, err
		}
		plain, err := runLoop(loopCfg{Compute: c, Writes: 1, Logged: false, Iterations: iterations})
		if err != nil {
			return FullStackPoint{}, err
		}
		return FullStackPoint{
			Compute:       c,
			PrototypeIter: proto.CyclesPerIter,
			OnChipIter:    chip.CyclesPerIter,
			UnloggedIter:  plain.CyclesPerIter,
		}, nil
	})
}

// FormatFullStack renders the comparison.
func FormatFullStack(points []FullStackPoint) string {
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{
			d(p.Compute), f1(p.PrototypeIter), f1(p.OnChipIter), f1(p.UnloggedIter),
		})
	}
	return Table([]string{"c (cycles)", "prototype/iter", "on-chip/iter", "unlogged/iter"}, rows)
}
