package experiments

import (
	"lvm/internal/bus"
	"lvm/internal/cycles"
	"lvm/internal/hwlogger"
	"lvm/internal/machine"
	"lvm/internal/phys"
)

// Table2Row is one basic machine operation measurement.
type Table2Row struct {
	Operation  string
	TotalCycle uint64
	BusCycles  uint64
	PaperTotal uint64
	PaperBus   uint64
}

// Table2 measures the basic machine operations of Table 2 on the
// simulated hardware. Because the simulator is calibrated to these very
// numbers, this experiment is a self-check that the calibration holds on
// the real code paths (not just in the constants).
func Table2() []Table2Row {
	var rows []Table2Row

	// Word write-through.
	{
		m := machine.New(machine.Config{NumCPUs: 1, MemFrames: 16})
		c := m.CPUs[0]
		f, _ := m.Phys.Alloc()
		addr := phys.FrameBase(f)
		busyBefore, _, _ := m.Bus.Stats()
		c.WordWrite(addr, addr, 1, 4, true, false)
		busyAfter, _, _ := m.Bus.Stats()
		rows = append(rows, Table2Row{
			Operation:  "Word write-through",
			TotalCycle: c.Now,
			BusCycles:  busyAfter - busyBefore,
			PaperTotal: 6, PaperBus: 5,
		})
	}

	// Cache block write.
	{
		m := machine.New(machine.Config{NumCPUs: 1, MemFrames: 16})
		c := m.CPUs[0]
		busyBefore, _, _ := m.Bus.Stats()
		c.BlockWrite()
		busyAfter, _, _ := m.Bus.Stats()
		rows = append(rows, Table2Row{
			Operation:  "Cache block write",
			TotalCycle: c.Now,
			BusCycles:  busyAfter - busyBefore,
			PaperTotal: 9, PaperBus: 8,
		})
	}

	// Log-record DMA: service one record and subtract the table-lookup
	// portion (Table 2 reports the DMA itself).
	{
		mem := phys.NewMemory(16)
		for i := 0; i < 8; i++ {
			mem.Alloc()
		}
		b := bus.New()
		l := hwlogger.New(b, mem)
		l.LoadPMT(1, 0)
		l.SetLogHead(0, 0x2000, hwlogger.ModeRecord)
		busyBefore, _, _ := b.Stats()
		l.Snoop(machine.LoggedWrite{Addr: 0x1000, Value: 1, Size: 4, Time: 0})
		done := l.DrainAll()
		busyAfter, _, _ := b.Stats()
		rows = append(rows, Table2Row{
			Operation:  "Log-record DMA",
			TotalCycle: done - cycles.LoggerLookupCycles,
			BusCycles:  busyAfter - busyBefore,
			PaperTotal: 18, PaperBus: 8,
		})
	}
	return rows
}

// FormatTable2 renders the table alongside the paper's values.
func FormatTable2(rows []Table2Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Operation,
			d(r.TotalCycle), d(r.BusCycles),
			d(r.PaperTotal), d(r.PaperBus),
		})
	}
	return Table([]string{"Operation", "total", "bus", "paper-total", "paper-bus"}, out)
}
