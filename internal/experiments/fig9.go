package experiments

import (
	"fmt"

	"lvm/internal/core"
	"lvm/internal/sim"
)

// Fig9Point is one measurement of Figure 9: the execution time of
// resetDeferredCopy() versus bcopy for a segment of the given size with
// the given amount of dirty data.
type Fig9Point struct {
	SegmentBytes uint32
	DirtyKB      uint32
	ResetCycles  uint64
	BcopyCycles  uint64
}

// Fig9Sizes are the paper's three segment sizes: "32-kilobyte,
// 512-kilobyte, and 2-megabyte segments... chosen to represent small,
// medium and large-sized segments."
var Fig9Sizes = []uint32{32 << 10, 512 << 10, 2 << 20}

// Fig9DirtyFractions sweeps the dirty fraction of the segment.
var Fig9DirtyFractions = []float64{0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0}

// Fig9 measures every point. Each point dirties the leading fraction of a
// deferred-copy destination (one word per 16-byte line marks the line
// modified, as a store through the cache would), then measures the reset,
// and compares with a bcopy of the whole segment. The three segment sizes
// run in parallel; within one size the dirty fractions share a machine
// and stay strictly sequential, so the measured cycles are unchanged.
func Fig9() ([]Fig9Point, error) {
	return sim.FlatMap(len(Fig9Sizes), func(i int) ([]Fig9Point, error) {
		size := Fig9Sizes[i]
		frames := int(size/core.PageSize)*3 + 1024
		sys := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: frames})
		k := sys.K
		src := core.NewNamedSegment(sys, "ckpt", size, nil)
		dst := core.NewNamedSegment(sys, "working", size, nil)
		if err := dst.SetSourceSegment(src, 0); err != nil {
			return nil, err
		}
		cpu := sys.Machine().CPUs[0]

		// bcopy cost is independent of dirtiness: measure once.
		before := cpu.Now
		if err := k.Bcopy(cpu, dst, 0, src, 0, size); err != nil {
			return nil, err
		}
		bcopyCycles := cpu.Now - before
		// The bcopy dirtied everything; clear.
		if _, err := k.ResetDeferredCopySegment(dst, nil); err != nil {
			return nil, err
		}

		out := make([]Fig9Point, 0, len(Fig9DirtyFractions))
		for _, frac := range Fig9DirtyFractions {
			dirtyBytes := uint32(frac * float64(size))
			for off := uint32(0); off < dirtyBytes; off += core.LineSize {
				dst.Write32(off, off^0x5A5A5A5A)
			}
			st, err := k.ResetDeferredCopySegment(dst, cpu)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig9Point{
				SegmentBytes: size,
				DirtyKB:      dirtyBytes >> 10,
				ResetCycles:  st.Cycles,
				BcopyCycles:  bcopyCycles,
			})
		}
		return out, nil
	})
}

// Crossover returns the dirty fraction above which bcopy wins for a
// segment size, linearly interpolated between the measured points (paper:
// about two-thirds).
func Crossover(points []Fig9Point, size uint32) float64 {
	var prev *Fig9Point
	for i := range points {
		p := &points[i]
		if p.SegmentBytes != size {
			continue
		}
		if p.ResetCycles > p.BcopyCycles {
			if prev == nil {
				return 0
			}
			d0 := float64(prev.DirtyKB << 10)
			d1 := float64(p.DirtyKB << 10)
			r0 := float64(prev.ResetCycles)
			r1 := float64(p.ResetCycles)
			b := float64(p.BcopyCycles)
			if r1 == r0 {
				return d1 / float64(size)
			}
			return (d0 + (b-r0)*(d1-d0)/(r1-r0)) / float64(size)
		}
		prev = p
	}
	return 1.0
}

// FormatFig9 renders one block per segment size.
func FormatFig9(points []Fig9Point) string {
	s := ""
	for _, size := range Fig9Sizes {
		var rows [][]string
		for _, p := range points {
			if p.SegmentBytes != size {
				continue
			}
			rows = append(rows, []string{
				d(uint64(p.DirtyKB)),
				f1(float64(p.ResetCycles) / 1000),
				f1(float64(p.BcopyCycles) / 1000),
			})
		}
		s += fmt.Sprintf("segment %d KB:\n", size>>10)
		s += Table([]string{"dirty KB", "reset (kcycles)", "bcopy (kcycles)"}, rows)
		s += "\n"
	}
	return s
}
