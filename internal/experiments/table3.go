package experiments

import (
	"lvm/internal/core"
	"lvm/internal/ramdisk"
	"lvm/internal/rlvm"
	"lvm/internal/rvm"
	"lvm/internal/tpca"
)

// Table3Result reproduces Table 3: the cost of a single recoverable write
// and TPC-A throughput under RVM and RLVM.
type Table3Result struct {
	// Single recoverable write, cycles (paper: 3515 vs 16). Both include
	// the measurement loop's ~10-cycle per-iteration overhead, as the
	// prototype measurement did.
	RVMWriteCycles  float64
	RLVMWriteCycles float64

	// TPC-A (paper: 418 vs 552 trans/sec).
	RVMTPS           float64
	RLVMTPS          float64
	RLVMEstimatedTPS float64 // the paper's footnote-4 estimation method
	RVMInTxnFrac     float64
	RLVMInTxnFrac    float64
}

// loopOverheadCycles models the measurement loop (address update, loop
// branch) around each recoverable write, as in the prototype's benchmark.
const loopOverheadCycles = 10

// Table3 runs both measurements.
func Table3(txns int) (Table3Result, error) {
	var res Table3Result

	// --- Single recoverable write ---
	{
		sys := core.NewSystemNoLogger(core.Config{NumCPUs: 1, MemFrames: 2048})
		p := sys.NewProcess(0, sys.NewAddressSpace())
		m, err := rvm.New(sys, p, 4*core.PageSize, ramdisk.New(), rvm.Options{})
		if err != nil {
			return res, err
		}
		if err := m.Begin(); err != nil {
			return res, err
		}
		const n = 200
		m.RecoverableWrite32(m.Base(), 0) // warm
		start := p.Now()
		for i := uint32(0); i < n; i++ {
			p.Compute(loopOverheadCycles)
			if err := m.RecoverableWrite32(m.Base(), i); err != nil {
				return res, err
			}
		}
		res.RVMWriteCycles = float64(p.Now()-start) / n
	}
	{
		sys := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 4096})
		p := sys.NewProcess(0, sys.NewAddressSpace())
		m, err := rlvm.New(sys, p, 4*core.PageSize, ramdisk.New(), rlvm.Options{LogPages: 64})
		if err != nil {
			return res, err
		}
		if err := m.Begin(); err != nil {
			return res, err
		}
		const n = 200
		m.RecoverableWrite32(m.Base(), 0) // warm
		start := p.Now()
		for i := uint32(0); i < n; i++ {
			p.Compute(loopOverheadCycles)
			if err := m.RecoverableWrite32(m.Base(), i); err != nil {
				return res, err
			}
		}
		res.RLVMWriteCycles = float64(p.Now()-start) / n
	}

	// --- TPC-A ---
	cfg := tpca.DefaultConfig()
	if txns > 0 {
		cfg.Txns = txns
	}
	rvmRes, _, err := tpca.RunRVM(cfg)
	if err != nil {
		return res, err
	}
	rlvmRes, _, err := tpca.RunRLVM(cfg)
	if err != nil {
		return res, err
	}
	res.RVMTPS = rvmRes.TPS
	res.RLVMTPS = rlvmRes.TPS
	res.RLVMEstimatedTPS = tpca.EstimateRLVMTPS(rlvmRes, rvmRes)
	res.RVMInTxnFrac = rvmRes.InTxnFrac
	res.RLVMInTxnFrac = rlvmRes.InTxnFrac
	return res, nil
}

// FormatTable3 renders the result alongside the paper's values.
func FormatTable3(r Table3Result) string {
	rows := [][]string{
		{"Single write (cycles)", f1(r.RVMWriteCycles), f1(r.RLVMWriteCycles), "3515", "16"},
		{"TPC-A (trans/sec)", f1(r.RVMTPS), f1(r.RLVMTPS), "418", "552"},
		{"TPC-A est. (footnote 4)", "-", f1(r.RLVMEstimatedTPS), "-", "552"},
		{"In-transaction fraction", f2(r.RVMInTxnFrac), f2(r.RLVMInTxnFrac), "~0.25", "<0.10"},
	}
	return Table([]string{"Benchmark", "RVM", "RLVM", "paper-RVM", "paper-RLVM"}, rows)
}
