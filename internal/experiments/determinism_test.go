package experiments_test

import (
	"reflect"
	"testing"

	"lvm/internal/experiments"
	"lvm/internal/sim"
)

// The sweep engine parallelizes across independent machine instances, so
// the number of host workers must never change a single simulated cycle:
// every figure is denominated in simulated cycles, and a worker-dependent
// result would silently corrupt the reproduction. These tests run the two
// sweep shapes (Fig7: fan-out over a parameter grid via timewarp; Fig11:
// per-point paired logged/unlogged loops) sequentially and with 8 workers
// and require byte-identical output.

func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	old := sim.Workers()
	sim.SetWorkers(n)
	defer sim.SetWorkers(old)
	f()
}

func TestFig7DeterministicAcrossWorkers(t *testing.T) {
	var seq, par []experiments.Fig7Point
	withWorkers(t, 1, func() {
		var err error
		if seq, err = experiments.Fig7(40); err != nil {
			t.Fatal(err)
		}
	})
	withWorkers(t, 8, func() {
		var err error
		if par, err = experiments.Fig7(40); err != nil {
			t.Fatal(err)
		}
	})
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("Fig7 differs across worker counts:\nseq: %+v\npar: %+v", seq, par)
	}
	if a, b := experiments.FormatFig7(seq), experiments.FormatFig7(par); a != b {
		t.Fatalf("Fig7 rendering differs:\n%s\n---\n%s", a, b)
	}
}

func TestFig11DeterministicAcrossWorkers(t *testing.T) {
	sweep := []uint64{0, 15, 45}
	var seq, par []experiments.Fig11Point
	withWorkers(t, 1, func() {
		var err error
		if seq, err = experiments.Fig11(sweep, 400); err != nil {
			t.Fatal(err)
		}
	})
	withWorkers(t, 8, func() {
		var err error
		if par, err = experiments.Fig11(sweep, 400); err != nil {
			t.Fatal(err)
		}
	})
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("Fig11 differs across worker counts:\nseq: %+v\npar: %+v", seq, par)
	}
	if a, b := experiments.FormatFig11(seq), experiments.FormatFig11(par); a != b {
		t.Fatalf("Fig11 rendering differs:\n%s\n---\n%s", a, b)
	}
}
