package experiments

import (
	"fmt"

	"lvm/internal/sim"
	"lvm/internal/timewarp"
)

// ParallelSimResult is one complete optimistic simulation run: the
// end-to-end behaviour the paper's Section 4.3 deliberately factors out
// ("full simulations using the two forms of state saving are required to
// provide an accurate indication of overall performance benefit") — this
// extension experiment runs them.
type ParallelSimResult struct {
	Saver      timewarp.SaverKind
	Lazy       bool
	Events     uint64
	Rollbacks  uint64
	RolledBack uint64
	Replayed   uint64
	Elapsed    uint64 // machine cycles (max CPU clock)
	Checksum   uint32
}

// ParallelSim runs the synthetic workload to completion on `scheds`
// schedulers (one CPU each, up to the prototype's four) under the
// throughput-balanced policy, once per state saver, and verifies both
// computed the same final state.
func ParallelSim(scheds int, horizon timewarp.VT, events bool) ([]ParallelSimResult, error) {
	const totalObjects = 12
	if totalObjects%scheds != 0 {
		return nil, fmt.Errorf("experiments: %d objects not divisible by %d schedulers", totalObjects, scheds)
	}
	run := func(saver timewarp.SaverKind, lazy bool) (ParallelSimResult, error) {
		cfg := timewarp.Config{
			Schedulers:          scheds,
			ObjectsPerScheduler: totalObjects / scheds,
			ObjectBytes:         128,
			Saver:               saver,
			GVTInterval:         32,
			LazyCancellation:    lazy,
			MemFrames:           32 << 8,
		}
		h := timewarp.Synthetic{
			Compute:     800,
			Writes:      6,
			ObjectWords: 32,
			Horizon:     horizon,
			MaxDelay:    6,
			NumObjects:  totalObjects,
		}
		sim, err := timewarp.New(cfg, h)
		if err != nil {
			return ParallelSimResult{}, err
		}
		for i := uint32(0); i < totalObjects; i++ {
			sim.Inject(0, i, 7000+i*11)
		}
		elapsed := sim.Run(timewarp.PolicyLeastCycles)
		st := sim.TotalStats()
		var sum uint32
		for obj := uint32(0); obj < totalObjects; obj++ {
			for w := 0; w < 32; w++ {
				sum = sum*31 + sim.ObjectWord(obj, w)
			}
		}
		return ParallelSimResult{
			Saver:      saver,
			Lazy:       lazy,
			Events:     st.Events,
			Rollbacks:  st.Rollbacks,
			RolledBack: st.RolledBack,
			Replayed:   st.Replayed,
			Elapsed:    elapsed,
			Checksum:   sum,
		}, nil
	}
	variants := []struct {
		saver timewarp.SaverKind
		lazy  bool
	}{
		{timewarp.SaverLVM, false},
		{timewarp.SaverLVM, true},
		{timewarp.SaverCopy, false},
	}
	out, err := sim.Map(len(variants), func(i int) (ParallelSimResult, error) {
		return run(variants[i].saver, variants[i].lazy)
	})
	if err != nil {
		return nil, err
	}
	lv, lz, cp := out[0], out[1], out[2]
	if lv.Checksum != cp.Checksum || lv.Checksum != lz.Checksum {
		return nil, fmt.Errorf("experiments: runs disagree: %08x / %08x / %08x", lv.Checksum, lz.Checksum, cp.Checksum)
	}
	return out, nil
}

// FormatParallelSim renders the comparison.
func FormatParallelSim(points []ParallelSimResult) string {
	var rows [][]string
	for _, p := range points {
		name := p.Saver.String()
		if p.Lazy {
			name += "+lazy"
		}
		rows = append(rows, []string{
			name, d(p.Events), d(p.Rollbacks), d(p.RolledBack),
			d(p.Replayed), d(p.Elapsed), fmt.Sprintf("%08x", p.Checksum),
		})
	}
	return Table([]string{"saver", "events", "rollbacks", "undone", "replayed", "elapsed cycles", "checksum"}, rows)
}
