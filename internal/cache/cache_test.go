package cache

import (
	"testing"

	"lvm/internal/cycles"
)

func TestMissThenHit(t *testing.T) {
	c := NewL1()
	ev := c.Access(0x1000, false)
	if ev.Hit {
		t.Fatalf("first access hit")
	}
	ev = c.Access(0x1004, false)
	if !ev.Hit {
		t.Fatalf("same-line access missed")
	}
	ev = c.Access(0x1000+cycles.LineSize, false)
	if ev.Hit {
		t.Fatalf("next-line access hit")
	}
}

func TestDirtyVictimWriteback(t *testing.T) {
	c := NewL1()
	// Write a line, then access a conflicting line (same index, different
	// tag): the victim must be written back.
	c.Access(0x0000, true)
	conflict := uint32(cycles.L1DataBytes) // same index, next tag
	ev := c.Access(conflict, false)
	if ev.Hit {
		t.Fatalf("conflicting access hit")
	}
	if !ev.WritebackVictim {
		t.Fatalf("dirty victim not written back")
	}
	if ev.VictimAddr != 0 {
		t.Fatalf("VictimAddr = %#x, want 0", ev.VictimAddr)
	}
}

func TestCleanVictimNoWriteback(t *testing.T) {
	c := NewL1()
	c.Access(0x0000, false)
	ev := c.Access(uint32(cycles.L1DataBytes), false)
	if ev.WritebackVictim {
		t.Fatalf("clean victim written back")
	}
}

func TestWriteNoAllocateDoesNotAllocate(t *testing.T) {
	c := NewL1()
	c.WriteNoAllocate(0x2000)
	ev := c.Access(0x2000, false)
	if ev.Hit {
		t.Fatalf("write-through write allocated a line")
	}
}

func TestInvalidatePage(t *testing.T) {
	c := NewL1()
	c.Access(0x3000, true)
	c.Access(0x3010, false)
	dropped := c.InvalidatePage(0x3000)
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1 dirty line", dropped)
	}
	if ev := c.Access(0x3000, false); ev.Hit {
		t.Fatalf("line survived page invalidation")
	}
}

func TestInvalidateAll(t *testing.T) {
	c := NewL1()
	for a := uint32(0); a < 4096; a += cycles.LineSize {
		c.Access(a, true)
	}
	c.InvalidateAll()
	ev := c.Access(0, false)
	if ev.Hit {
		t.Fatalf("line survived InvalidateAll")
	}
	if ev.WritebackVictim {
		t.Fatalf("invalidated dirty line written back")
	}
}

func TestStatsCount(t *testing.T) {
	c := NewL1()
	c.Access(0, false)
	c.Access(0, false)
	c.Access(0, true)
	if c.Hits != 2 || c.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", c.Hits, c.Misses)
	}
}
