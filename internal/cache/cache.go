// Package cache models the processor's on-chip data cache (the 68040's
// split I/D cache; we model the 4 KiB data half with 16-byte lines,
// direct-mapped) as a cost model.
//
// The cache is functional only with respect to tags and dirty bits: the
// simulated machine keeps authoritative data in physical memory, so the
// cache model decides *what an access costs*, not what it returns. Logged
// pages run in write-through mode (set by the kernel at page-fault time,
// Section 3.2); write-through writes update the cached copy if present but
// never allocate, so each one appears on the bus where the logger can
// snoop it.
package cache

import "lvm/internal/cycles"

// Event describes what an L1 access did, so the machine can charge costs.
type Event struct {
	// Hit reports whether the access hit in the cache.
	Hit bool
	// WritebackVictim reports that a dirty victim line had to be written
	// back to the second-level cache before the fill.
	WritebackVictim bool
	// VictimAddr is the base address of the written-back victim line.
	VictimAddr uint32
}

type line struct {
	valid bool
	dirty bool
	tag   uint32
}

// L1 is a direct-mapped write-back data cache with 16-byte lines.
type L1 struct {
	lines      [cycles.L1Lines]line
	validLines int

	// Stats.
	Hits       uint64
	Misses     uint64
	Writebacks uint64
	// PageSweeps counts InvalidatePage calls (deferred-copy resets sweep
	// the destination pages out of the cache, Section 3.3).
	PageSweeps uint64
	// SweepDirtyDropped counts dirty lines discarded by those sweeps —
	// the modified data a resetDeferredCopy threw away.
	SweepDirtyDropped uint64
}

// NewL1 creates an empty cache.
func NewL1() *L1 { return &L1{} }

func split(addr uint32) (idx int, tag uint32) {
	lineNo := addr >> cycles.LineShift
	return int(lineNo % cycles.L1Lines), lineNo / cycles.L1Lines
}

// Access performs a (write-back mode) load or store at addr and reports
// the resulting traffic.
func (c *L1) Access(addr uint32, write bool) Event {
	idx, tag := split(addr)
	l := &c.lines[idx]
	if l.valid && l.tag == tag {
		c.Hits++
		if write {
			l.dirty = true
		}
		return Event{Hit: true}
	}
	c.Misses++
	ev := Event{}
	if l.valid && l.dirty {
		c.Writebacks++
		ev.WritebackVictim = true
		ev.VictimAddr = (l.tag*cycles.L1Lines + uint32(idx)) << cycles.LineShift
	}
	if !l.valid {
		c.validLines++
	}
	l.valid = true
	l.dirty = write
	l.tag = tag
	return ev
}

// StoreHit performs a write-back store at addr only if it hits, reporting
// whether it did. A miss changes nothing: the caller falls back to Access.
// This is the hot-path probe — no Event is materialized.
func (c *L1) StoreHit(addr uint32) bool {
	idx, tag := split(addr)
	l := &c.lines[idx]
	if l.valid && l.tag == tag {
		c.Hits++
		l.dirty = true
		return true
	}
	return false
}

// LoadHit performs a load at addr only if it hits, reporting whether it
// did. A miss changes nothing: the caller falls back to Access.
func (c *L1) LoadHit(addr uint32) bool {
	idx, tag := split(addr)
	l := &c.lines[idx]
	if l.valid && l.tag == tag {
		c.Hits++
		return true
	}
	return false
}

// WriteNoAllocate models a write-through store: the cached copy is updated
// if the line is present, but a miss does not allocate. The bus word write
// itself is charged by the machine, not here.
func (c *L1) WriteNoAllocate(addr uint32) {
	idx, tag := split(addr)
	l := &c.lines[idx]
	if l.valid && l.tag == tag {
		// Write-through: the line stays clean (memory is updated by the
		// bus write).
		_ = l
	}
}

// InvalidateAll empties the cache (context switch, explicit flush).
func (c *L1) InvalidateAll() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.validLines = 0
}

// InvalidatePage drops every line belonging to the 4 KiB page containing
// addr, returning how many dirty lines were discarded. One pass over the
// tag array: a line at index idx with tag t caches line number
// t*L1Lines+idx, which is in the page iff it falls in the page's 256-line
// range. (With a 4 KiB direct-mapped cache, a 4 KiB page covers every
// index exactly once, so per-index division as the old per-line loop did
// is redundant.)
func (c *L1) InvalidatePage(pageBase uint32) (dropped int) {
	c.PageSweeps++
	if c.validLines == 0 {
		return 0
	}
	firstLine := pageBase >> cycles.LineShift
	lastLine := firstLine + 4096/cycles.LineSize
	for idx := range c.lines {
		l := &c.lines[idx]
		if !l.valid {
			continue
		}
		lineNo := l.tag*cycles.L1Lines + uint32(idx)
		if lineNo >= firstLine && lineNo < lastLine {
			if l.dirty {
				dropped++
			}
			l.valid = false
			c.validLines--
		}
	}
	c.SweepDirtyDropped += uint64(dropped)
	return dropped
}
