package cache

import (
	"testing"

	"lvm/internal/cycles"
)

// InvalidatePage runs once per dirty page during deferred-copy rollback
// (timewarp state restoration), so its host cost scales with rollback
// depth. The three benchmarks cover its regimes: an empty cache (the
// early exit taken right after a context switch has flushed the L1), a
// scan that drops nothing (lines resident but from other pages), and the
// refill-and-drop steady state.

func BenchmarkInvalidatePageEmpty(b *testing.B) {
	c := NewL1()
	for i := 0; i < b.N; i++ {
		c.InvalidatePage(uint32(i%64) << 12)
	}
}

func BenchmarkInvalidatePageScanMiss(b *testing.B) {
	c := NewL1()
	for off := uint32(0); off < 4096; off += cycles.LineSize {
		c.Access(0x100000+off, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.InvalidatePage(0x200000)
	}
}

func BenchmarkInvalidatePageDrop(b *testing.B) {
	c := NewL1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		page := uint32(i%16) << 12
		for off := uint32(0); off < 4096; off += cycles.LineSize {
			c.Access(page+off, true)
		}
		c.InvalidatePage(page)
	}
}
