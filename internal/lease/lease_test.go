package lease

import (
	"errors"
	"net"
	"testing"
	"time"

	"lvm/internal/logship"
)

func TestManualClock(t *testing.T) {
	c := NewManual(100)
	if got := c.Now(); got != 100 {
		t.Fatalf("Now = %d, want 100", got)
	}
	c.Advance(50)
	if got := c.Now(); got != 150 {
		t.Fatalf("Now = %d, want 150", got)
	}
}

func TestWallClockAdvances(t *testing.T) {
	a := Wall{}.Now()
	time.Sleep(time.Millisecond)
	b := Wall{}.Now()
	if b <= a {
		t.Fatalf("wall clock did not advance: %d then %d", a, b)
	}
	if Ticks(time.Millisecond) != 1e6 || Ticks(-1) != 0 {
		t.Fatalf("Ticks conversion wrong: %d, %d", Ticks(time.Millisecond), Ticks(-1))
	}
}

func TestAuthorityAcquireRenewExpire(t *testing.T) {
	clk := NewManual(0)
	au := NewAuthority(&logship.Authority{}, clk, 100)
	if !au.Expired() {
		t.Fatal("fresh authority should report expired (no lease yet)")
	}

	g, err := au.Acquire("p1")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if g.Epoch != 1 {
		t.Fatalf("first grant epoch = %d, want 1", g.Epoch)
	}
	if au.Expired() {
		t.Fatal("freshly granted lease reports expired")
	}
	if h, ok := au.Holder(); h != "p1" || !ok {
		t.Fatalf("holder = %q/%v, want p1/true", h, ok)
	}

	// A rival cannot acquire while the lease is current.
	if _, err := au.Acquire("p2"); !errors.Is(err, ErrHeld) {
		t.Fatalf("rival acquire = %v, want ErrHeld", err)
	}

	// Renewal pushes the deadline without burning an epoch.
	clk.Advance(90)
	dl, err := au.Renew("p1", g)
	if err != nil {
		t.Fatalf("renew: %v", err)
	}
	if dl != 190 {
		t.Fatalf("renewed deadline = %d, want 190", dl)
	}
	if au.Epochs.Cur.Epoch != 1 {
		t.Fatalf("renewal bumped the epoch to %d", au.Epochs.Cur.Epoch)
	}

	// Same-holder re-acquire of an unexpired lease keeps the grant.
	g2, err := au.Acquire("p1")
	if err != nil || g2 != g {
		t.Fatalf("re-acquire = %+v, %v; want original grant", g2, err)
	}

	// Past the deadline: renewal refuses, the lease reads expired.
	clk.Advance(201)
	if _, err := au.Renew("p1", g); !errors.Is(err, ErrExpired) {
		t.Fatalf("late renew = %v, want ErrExpired", err)
	}
	if !au.Expired() {
		t.Fatal("lease past deadline not expired")
	}
	if _, ok := au.Holder(); ok {
		t.Fatal("expired lease still reports a valid holder")
	}

	// The successor acquires: fresh grant, old one stops validating.
	g3, err := au.Acquire("p2")
	if err != nil {
		t.Fatalf("successor acquire: %v", err)
	}
	if g3.Epoch != 2 {
		t.Fatalf("successor epoch = %d, want 2", g3.Epoch)
	}
	if au.Epochs.Validate(g) {
		t.Fatal("superseded grant still validates")
	}
	if !au.Epochs.Validate(g3) {
		t.Fatal("successor grant does not validate")
	}

	// The old holder's renewal with its stale grant is a zombie.
	if _, err := au.Renew("p1", g); !errors.Is(err, ErrNotHolder) {
		t.Fatalf("zombie renew = %v, want ErrNotHolder", err)
	}
}

func TestHolderRenewAndLoss(t *testing.T) {
	clk := NewManual(0)
	h := NewHolder(clk, 100, 7)

	b, ok := h.Renew()
	if !ok {
		t.Fatal("first renew refused")
	}
	if b.Kind != logship.BeatGrant || b.Epoch != 7 || b.Seq != 1 || b.TTL != 100 {
		t.Fatalf("first beat = %+v", b)
	}
	clk.Advance(100) // exactly the TTL: still in time
	b, ok = h.Renew()
	if !ok || b.Kind != logship.BeatRenew || b.Seq != 2 {
		t.Fatalf("second beat = %+v, ok=%v", b, ok)
	}
	if h.Lost() || h.Beats() != 2 {
		t.Fatalf("lost=%v beats=%d after two renewals", h.Lost(), h.Beats())
	}

	// A gap past the TTL loses the lease, permanently.
	clk.Advance(101)
	if _, ok := h.Renew(); ok {
		t.Fatal("renew past the TTL succeeded")
	}
	if !h.Lost() {
		t.Fatal("holder not lost after missing the deadline")
	}
	clk.Advance(1)
	if _, ok := h.Renew(); ok {
		t.Fatal("lost holder renewed again")
	}
}

func TestMonitorObserveExpiry(t *testing.T) {
	clk := NewManual(0)
	m := NewMonitor(clk, 100)

	// Never-heard monitors never expire: promotion must not trigger
	// before the primary proved itself on this stream.
	clk.Advance(1000)
	if m.Expired() || m.Heard() {
		t.Fatal("silent monitor expired or heard")
	}

	m.Observe(logship.Beat{Kind: logship.BeatGrant, Epoch: 3, Seq: 1, TTL: 100})
	if !m.Heard() || m.Expired() || m.Epoch() != 3 || m.Beats() != 1 {
		t.Fatalf("after first beat: heard=%v expired=%v epoch=%d beats=%d",
			m.Heard(), m.Expired(), m.Epoch(), m.Beats())
	}
	clk.Advance(100) // deadline inclusive
	if m.Expired() {
		t.Fatal("expired exactly at the deadline")
	}
	clk.Advance(1)
	if !m.Expired() {
		t.Fatal("not expired past the deadline")
	}

	// A renewal re-arms.
	m.Observe(logship.Beat{Kind: logship.BeatRenew, Epoch: 3, Seq: 2, TTL: 100})
	if m.Expired() {
		t.Fatal("renewed monitor still expired")
	}

	// Zombie beats (superseded epoch) are dropped, not re-armed.
	m.Observe(logship.Beat{Kind: logship.BeatRenew, Epoch: 4, Seq: 1, TTL: 100})
	clk.Advance(50)
	m.Observe(logship.Beat{Kind: logship.BeatRenew, Epoch: 3, Seq: 9, TTL: 100})
	if m.Stale() != 1 {
		t.Fatalf("stale beats = %d, want 1", m.Stale())
	}
	clk.Advance(51) // epoch-4 deadline passed; the stale beat must not have re-armed
	if !m.Expired() {
		t.Fatal("zombie beat re-armed the promoted generation's deadline")
	}
	if m.Epoch() != 4 {
		t.Fatalf("epoch = %d, want 4", m.Epoch())
	}
}

func TestAutoPromoteOnlyAfterExpiry(t *testing.T) {
	clk := NewManual(0)
	au := NewAuthority(&logship.Authority{}, clk, 100)
	g, err := au.Acquire("primary")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}

	// Promotion itself runs disconnected; the replica never dials.
	r, err := logship.NewReplica(func() (net.Conn, error) { return nil, errors.New("unused") }, 4096)
	if err != nil {
		t.Fatalf("replica: %v", err)
	}

	// Held lease: automatic promotion refuses.
	if _, err := au.AutoPromote(r, "standby", 0, logship.PromoteHooks{}); !errors.Is(err, ErrHeld) {
		t.Fatalf("AutoPromote under a held lease = %v, want ErrHeld", err)
	}

	// Expired lease: promotion runs, commits epoch 2, adopts the lease.
	clk.Advance(101)
	res, err := au.AutoPromote(r, "standby", 5, logship.PromoteHooks{})
	if err != nil {
		t.Fatalf("AutoPromote: %v", err)
	}
	if res.Grant.Epoch != g.Epoch+1 {
		t.Fatalf("promoted epoch = %d, want %d", res.Grant.Epoch, g.Epoch+1)
	}
	if res.Lost != 5 {
		t.Fatalf("lost = %d, want 5 (deadHead 5, watermark 0)", res.Lost)
	}
	if au.Expired() {
		t.Fatal("adopted lease reports expired")
	}
	if h, ok := au.Holder(); h != "standby" || !ok {
		t.Fatalf("holder = %q/%v, want standby/true", h, ok)
	}
	if au.Epochs.Validate(g) {
		t.Fatal("old primary's grant survived the automatic promotion")
	}

	// Crash-resume shape: a failed promotion leaves the lease expired so
	// a retry proceeds (idempotence is Promote's own property).
	clk.Advance(101)
	boom := errors.New("crash")
	if _, err := au.AutoPromote(r, "standby2", 0, logship.PromoteHooks{
		After: func(phase string) error { return boom },
	}); !errors.Is(err, boom) {
		t.Fatalf("crashed AutoPromote = %v, want injected error", err)
	}
	if !au.Expired() {
		t.Fatal("crashed promotion adopted the lease anyway")
	}
	if _, err := au.AutoPromote(r, "standby2", 0, logship.PromoteHooks{}); err != nil {
		t.Fatalf("AutoPromote retry: %v", err)
	}
}
