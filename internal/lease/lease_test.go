package lease

import (
	"errors"
	"net"
	"testing"
	"time"

	"lvm/internal/logship"
)

func TestManualClock(t *testing.T) {
	c := NewManual(100)
	if got := c.Now(); got != 100 {
		t.Fatalf("Now = %d, want 100", got)
	}
	c.Advance(50)
	if got := c.Now(); got != 150 {
		t.Fatalf("Now = %d, want 150", got)
	}
}

func TestWallClockAdvances(t *testing.T) {
	a := Wall{}.Now()
	time.Sleep(time.Millisecond)
	b := Wall{}.Now()
	if b <= a {
		t.Fatalf("wall clock did not advance: %d then %d", a, b)
	}
	if Ticks(time.Millisecond) != 1e6 || Ticks(-1) != 0 {
		t.Fatalf("Ticks conversion wrong: %d, %d", Ticks(time.Millisecond), Ticks(-1))
	}
}

func TestAuthorityAcquireRenewExpire(t *testing.T) {
	clk := NewManual(0)
	au := NewAuthority(&logship.Authority{}, clk, 100)
	if !au.Expired() {
		t.Fatal("fresh authority should report expired (no lease yet)")
	}

	g, err := au.Acquire("p1")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if g.Epoch != 1 {
		t.Fatalf("first grant epoch = %d, want 1", g.Epoch)
	}
	if au.Expired() {
		t.Fatal("freshly granted lease reports expired")
	}
	if h, ok := au.Holder(); h != "p1" || !ok {
		t.Fatalf("holder = %q/%v, want p1/true", h, ok)
	}

	// A rival cannot acquire while the lease is current.
	if _, err := au.Acquire("p2"); !errors.Is(err, ErrHeld) {
		t.Fatalf("rival acquire = %v, want ErrHeld", err)
	}

	// Renewal pushes the deadline without burning an epoch.
	clk.Advance(90)
	dl, err := au.Renew("p1", g)
	if err != nil {
		t.Fatalf("renew: %v", err)
	}
	if dl != 190 {
		t.Fatalf("renewed deadline = %d, want 190", dl)
	}
	if au.Epochs.Cur.Epoch != 1 {
		t.Fatalf("renewal bumped the epoch to %d", au.Epochs.Cur.Epoch)
	}

	// Same-holder re-acquire of an unexpired lease keeps the grant.
	g2, err := au.Acquire("p1")
	if err != nil || g2 != g {
		t.Fatalf("re-acquire = %+v, %v; want original grant", g2, err)
	}

	// Past the deadline: renewal refuses, the lease reads expired.
	clk.Advance(201)
	if _, err := au.Renew("p1", g); !errors.Is(err, ErrExpired) {
		t.Fatalf("late renew = %v, want ErrExpired", err)
	}
	if !au.Expired() {
		t.Fatal("lease past deadline not expired")
	}
	if _, ok := au.Holder(); ok {
		t.Fatal("expired lease still reports a valid holder")
	}

	// The successor acquires: fresh grant, old one stops validating.
	g3, err := au.Acquire("p2")
	if err != nil {
		t.Fatalf("successor acquire: %v", err)
	}
	if g3.Epoch != 2 {
		t.Fatalf("successor epoch = %d, want 2", g3.Epoch)
	}
	if au.Epochs.Validate(g) {
		t.Fatal("superseded grant still validates")
	}
	if !au.Epochs.Validate(g3) {
		t.Fatal("successor grant does not validate")
	}

	// The old holder's renewal with its stale grant is a zombie.
	if _, err := au.Renew("p1", g); !errors.Is(err, ErrNotHolder) {
		t.Fatalf("zombie renew = %v, want ErrNotHolder", err)
	}
}

func TestHolderRenewAndLoss(t *testing.T) {
	clk := NewManual(0)
	h := NewHolder(clk, 100, 7)

	b, ok := h.Renew(false, 0)
	if !ok {
		t.Fatal("first renew refused")
	}
	if b.Kind != logship.BeatGrant || b.Epoch != 7 || b.Seq != 1 || b.TTL != 100 {
		t.Fatalf("first beat = %+v", b)
	}
	clk.Advance(100) // exactly the TTL: still in time
	b, ok = h.Renew(false, 0)
	if !ok || b.Kind != logship.BeatRenew || b.Seq != 2 {
		t.Fatalf("second beat = %+v, ok=%v", b, ok)
	}
	if h.Lost() || h.Beats() != 2 {
		t.Fatalf("lost=%v beats=%d after two renewals", h.Lost(), h.Beats())
	}

	// A gap past the TTL loses the lease, permanently.
	clk.Advance(101)
	if _, ok := h.Renew(false, 0); ok {
		t.Fatal("renew past the TTL succeeded")
	}
	if !h.Lost() {
		t.Fatal("holder not lost after missing the deadline")
	}
	clk.Advance(1)
	if _, ok := h.Renew(false, 0); ok {
		t.Fatal("lost holder renewed again")
	}
}

// TestHolderDeliveryEvidence is the partition half of the safety
// argument: a holder whose renewal loop keeps running on schedule must
// still demote once an engaged observer stops acknowledging beats for
// a full TTL — that is the shape of a network partition, where
// self-measured gaps prove nothing.
func TestHolderDeliveryEvidence(t *testing.T) {
	clk := NewManual(0)
	h := NewHolder(clk, 100, 7)

	// Beat 1 issued at tick 0 with an observer engaged.
	if _, ok := h.Renew(true, 0); !ok {
		t.Fatal("engaged first renew refused")
	}
	// The loop stays perfectly healthy (25-tick cadence) but no ack ever
	// arrives: the lease must run out one TTL after engagement.
	for i := 1; i <= 3; i++ {
		clk.Advance(25)
		if _, ok := h.Renew(true, 0); !ok {
			t.Fatalf("renew at tick %d refused while evidence current", 25*i)
		}
	}
	clk.Advance(25) // tick 100: exactly the TTL since engagement — still in time
	if _, ok := h.Renew(true, 0); !ok {
		t.Fatal("renew exactly at the evidence deadline refused")
	}
	clk.Advance(25) // tick 125: past it
	if _, ok := h.Renew(true, 0); ok || !h.Lost() {
		t.Fatal("partitioned holder renewed past the evidence TTL: split brain")
	}
}

// TestHolderEvidenceExtends: acknowledged beats push the evidence
// deadline by their ISSUE tick, not their ack-arrival tick, and acks
// for never-issued sequences are ignored.
func TestHolderEvidenceExtends(t *testing.T) {
	clk := NewManual(0)
	h := NewHolder(clk, 100, 7)

	if _, ok := h.Renew(true, 0); !ok { // beat 1 @ tick 0
		t.Fatal("first renew refused")
	}
	clk.Advance(60)
	if _, ok := h.Renew(true, 1); !ok { // beat 2 @ tick 60; beat 1 acked
		t.Fatal("renew with fresh ack refused")
	}
	// Beat 1's ack dates evidence at tick 0, so the deadline is 100 —
	// not 160. At tick 101 with nothing further acked, the lease is out.
	clk.Advance(41)
	if _, ok := h.Renew(true, 1); ok || !h.Lost() {
		t.Fatal("ack-arrival time extended the lease; issue time must bound it")
	}

	// The positive half: a stream of acks, each dating to its beat's
	// issue tick, keeps the lease alive indefinitely.
	clk2 := NewManual(0)
	hh := NewHolder(clk2, 100, 7)
	seq := uint64(0)
	for i := 0; i < 10; i++ {
		if _, ok := hh.Renew(true, seq); !ok {
			t.Fatalf("renewal %d refused with current acks", i)
		}
		seq++ // the beat just issued is acked before the next renewal
		clk2.Advance(90)
	}
	if hh.Lost() {
		t.Fatal("holder lost despite every beat being acknowledged")
	}

	// A holder fed an ack for a sequence it never issued must not treat
	// it as evidence: with its loop still healthy (50-tick cadence), it
	// demotes by the evidence rule anyway.
	clk3 := NewManual(0)
	h2 := NewHolder(clk3, 100, 7)
	if _, ok := h2.Renew(true, 99); !ok { // bogus future ack; beat 1 issued
		t.Fatal("first renew refused")
	}
	clk3.Advance(50)
	if _, ok := h2.Renew(true, 99); !ok { // still within the evidence TTL
		t.Fatal("renew at tick 50 refused")
	}
	clk3.Advance(51) // tick 101: past engagement + TTL, nothing really acked
	if _, ok := h2.Renew(true, 99); ok || !h2.Lost() {
		t.Fatal("never-issued ack sequence counted as delivery evidence")
	}
}

// TestHolderEngagementSticky: once an observer has been admitted,
// losing every consumer (the connection-killing face of a partition)
// must NOT disengage the holder back to loop-only renewal.
func TestHolderEngagementSticky(t *testing.T) {
	clk := NewManual(0)
	h := NewHolder(clk, 100, 7)
	if _, ok := h.Renew(true, 0); !ok {
		t.Fatal("first renew refused")
	}
	// Evidence dries up AND the caller now reports no observers (they
	// all disconnected). Engagement is sticky: the holder still demotes.
	clk.Advance(101)
	if _, ok := h.Renew(false, 0); ok || !h.Lost() {
		t.Fatal("holder disengaged when its observers vanished")
	}
}

func TestMonitorObserveExpiry(t *testing.T) {
	clk := NewManual(0)
	m := NewMonitor(clk, 100)

	// Never-heard monitors never expire: promotion must not trigger
	// before the primary proved itself on this stream.
	clk.Advance(1000)
	if m.Expired() || m.Heard() {
		t.Fatal("silent monitor expired or heard")
	}

	m.Observe(logship.Beat{Kind: logship.BeatGrant, Epoch: 3, Seq: 1, TTL: 100})
	if !m.Heard() || m.Expired() || m.Epoch() != 3 || m.Beats() != 1 {
		t.Fatalf("after first beat: heard=%v expired=%v epoch=%d beats=%d",
			m.Heard(), m.Expired(), m.Epoch(), m.Beats())
	}
	clk.Advance(100) // deadline inclusive
	if m.Expired() {
		t.Fatal("expired exactly at the deadline")
	}
	clk.Advance(1)
	if !m.Expired() {
		t.Fatal("not expired past the deadline")
	}

	// A renewal re-arms.
	m.Observe(logship.Beat{Kind: logship.BeatRenew, Epoch: 3, Seq: 2, TTL: 100})
	if m.Expired() {
		t.Fatal("renewed monitor still expired")
	}

	// Zombie beats (superseded epoch) are dropped, not re-armed.
	m.Observe(logship.Beat{Kind: logship.BeatRenew, Epoch: 4, Seq: 1, TTL: 100})
	clk.Advance(50)
	m.Observe(logship.Beat{Kind: logship.BeatRenew, Epoch: 3, Seq: 9, TTL: 100})
	if m.Stale() != 1 {
		t.Fatalf("stale beats = %d, want 1", m.Stale())
	}
	clk.Advance(51) // epoch-4 deadline passed; the stale beat must not have re-armed
	if !m.Expired() {
		t.Fatal("zombie beat re-armed the promoted generation's deadline")
	}
	if m.Epoch() != 4 {
		t.Fatalf("epoch = %d, want 4", m.Epoch())
	}
}

// TestMonitorClampsWireTTL: the deadline arms with the smaller of the
// monitor's configured TTL and the beat's wire-carried one. A single
// beat carrying a huge TTL — a -lease-ms mismatch, a bug, a hostile
// peer — must not disable failover on this shard indefinitely.
func TestMonitorClampsWireTTL(t *testing.T) {
	clk := NewManual(0)
	m := NewMonitor(clk, 100)

	m.Observe(logship.Beat{Kind: logship.BeatGrant, Epoch: 1, Seq: 1, TTL: 1 << 60})
	clk.Advance(101)
	if !m.Expired() {
		t.Fatal("oversized wire TTL overrode the configured one: failover disabled")
	}

	// A zero wire TTL (malformed beat) clamps too, not "never expires".
	m.Observe(logship.Beat{Kind: logship.BeatRenew, Epoch: 1, Seq: 2, TTL: 0})
	if m.Expired() {
		t.Fatal("renewal did not re-arm")
	}
	clk.Advance(101)
	if !m.Expired() {
		t.Fatal("zero wire TTL disabled expiry")
	}

	// A primary configured SHORTER expires us early — the safe direction
	// — so the wire TTL is honored when it is the smaller one.
	m.Observe(logship.Beat{Kind: logship.BeatRenew, Epoch: 1, Seq: 3, TTL: 40})
	clk.Advance(41)
	if !m.Expired() {
		t.Fatal("shorter wire TTL not honored")
	}
}

func TestAutoPromoteOnlyAfterExpiry(t *testing.T) {
	clk := NewManual(0)
	au := NewAuthority(&logship.Authority{}, clk, 100)
	g, err := au.Acquire("primary")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}

	// Promotion itself runs disconnected; the replica never dials.
	r, err := logship.NewReplica(func() (net.Conn, error) { return nil, errors.New("unused") }, 4096)
	if err != nil {
		t.Fatalf("replica: %v", err)
	}

	// Held lease: automatic promotion refuses.
	if _, err := au.AutoPromote(r, "standby", 0, logship.PromoteHooks{}); !errors.Is(err, ErrHeld) {
		t.Fatalf("AutoPromote under a held lease = %v, want ErrHeld", err)
	}

	// Expired lease: promotion runs, commits epoch 2, adopts the lease.
	clk.Advance(101)
	res, err := au.AutoPromote(r, "standby", 5, logship.PromoteHooks{})
	if err != nil {
		t.Fatalf("AutoPromote: %v", err)
	}
	if res.Grant.Epoch != g.Epoch+1 {
		t.Fatalf("promoted epoch = %d, want %d", res.Grant.Epoch, g.Epoch+1)
	}
	if res.Lost != 5 {
		t.Fatalf("lost = %d, want 5 (deadHead 5, watermark 0)", res.Lost)
	}
	if au.Expired() {
		t.Fatal("adopted lease reports expired")
	}
	if h, ok := au.Holder(); h != "standby" || !ok {
		t.Fatalf("holder = %q/%v, want standby/true", h, ok)
	}
	if au.Epochs.Validate(g) {
		t.Fatal("old primary's grant survived the automatic promotion")
	}

	// Crash-resume shape: a failed promotion leaves the lease expired so
	// a retry proceeds (idempotence is Promote's own property).
	clk.Advance(101)
	boom := errors.New("crash")
	if _, err := au.AutoPromote(r, "standby2", 0, logship.PromoteHooks{
		After: func(phase string) error { return boom },
	}); !errors.Is(err, boom) {
		t.Fatalf("crashed AutoPromote = %v, want injected error", err)
	}
	if !au.Expired() {
		t.Fatal("crashed promotion adopted the lease anyway")
	}
	if _, err := au.AutoPromote(r, "standby2", 0, logship.PromoteHooks{}); err != nil {
		t.Fatalf("AutoPromote retry: %v", err)
	}
}
