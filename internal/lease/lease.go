// Package lease adds automatic failure detection to the failover stack:
// a serving lease the primary must renew within a bounded interval, and
// a standby-side monitor that promotes when renewals stop — replacing
// the operator's SIGUSR1 with the classic lease / fencing-token pattern.
//
// A lease grant is just an epoch grant with a deadline. The Authority
// here wraps logship.Authority: acquiring a lease prepares and commits a
// fencing grant (bumping the epoch), so the persisted-epoch machinery —
// ErrFenced on a stale welcome, FencedHellos on a future-epoch hello,
// the checkpointed serving epoch that survives restart — is what keeps a
// paused-then-resumed primary from ever splitting the brain. Renewal is
// cheap and grant-free: the holder broadcasts logship heartbeat frames
// (logship.Beat) down the same subscription stream that ships log
// batches, and each standby re-arms its expiry deadline at receipt.
//
// The safety argument needs no clock synchronization, only comparable
// clock *rates*, and it has two halves — one per failure shape:
//
//   - Stall (pause, wedge, SIGSTOP): the holder measures the renewal gap
//     on its own clock and demotes itself when the gap exceeds the TTL,
//     while each observer arms its deadline at its own receipt time plus
//     the same TTL. Receipt necessarily happens after send, so the
//     observer's deadline expires no earlier (in real time) than the
//     holder's own.
//
//   - Partition (the loop stays live, the messages die): self-measured
//     gaps prove nothing — a partitioned-but-alive primary renews its
//     own loop forever while the standby hears silence and promotes. So
//     renewal also demands *delivery evidence*: observers (consumers
//     that feed a Monitor) acknowledge every heartbeat, and once an
//     observer has ever been admitted to the stream, the holder demotes
//     unless some observer acknowledged a beat issued within the last
//     TTL. An acked beat was received at or after its issue tick, so
//     the observer's deadline (receipt + TTL) expires no earlier than
//     the holder's evidence deadline (issue + TTL). Evidence is
//     gathered before each beat is broadcast (logship.LeaseEvidence
//     admits joiners first), so a beat can never arm an observer the
//     holder has not yet started demanding evidence for.
//
// A dead primary trivially stops renewing. Either way, by the time a
// standby's monitor expires, the primary has already refused to keep
// serving: at most one node believes it holds the serving lease. The
// evidence rule assumes the topology the failover stack actually builds
// — one promotable standby per primary (cmd/lvmd); with several
// independent observers, evidence from one cannot speak for another.
//
// Every component takes an injected Clock in abstract ticks (nanoseconds
// under the production Wall clock), so crashtest drives expiry
// deterministically with a Manual clock while the daemons run on wall
// time.
package lease

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"lvm/internal/logship"
)

// Clock is the injected time source, in abstract monotonic ticks. Wall
// uses nanoseconds; Manual uses whatever the test says. Both sides of a
// lease must tick in comparable units, never synchronized values.
type Clock interface {
	Now() uint64
}

// Wall is the production clock: monotonic nanoseconds since process
// start. It deliberately reads Go's monotonic clock, never the
// steppable wall clock — an NTP or administrative step backward would
// underflow a holder's renewal gap (permanently demoting a healthy
// primary) and a step forward would expire a monitor early (promoting
// while the primary still serves). Lease ticks order events within one
// process; across processes only the tick *rate* matters.
type Wall struct{}

// wallBase anchors Wall ticks. time.Since reads the monotonic clock
// carried by this instant, so later steps of the wall clock are
// invisible to the gap arithmetic.
var wallBase = time.Now()

// Now implements Clock.
func (Wall) Now() uint64 { return uint64(time.Since(wallBase)) }

// Ticks converts a duration to Wall-clock lease ticks.
func Ticks(d time.Duration) uint64 {
	if d <= 0 {
		return 0
	}
	return uint64(d.Nanoseconds())
}

// Manual is a settable clock for deterministic tests: time moves only
// when the test advances it. Safe for concurrent use (the monitor reads
// it from the replica's consume goroutine).
type Manual struct {
	mu  sync.Mutex
	now uint64
}

// NewManual returns a manual clock starting at start ticks.
func NewManual(start uint64) *Manual { return &Manual{now: start} }

// Now implements Clock.
func (m *Manual) Now() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Advance moves the clock forward by d ticks.
func (m *Manual) Advance(d uint64) {
	m.mu.Lock()
	m.now += d
	m.mu.Unlock()
}

// Lease errors.
var (
	// ErrHeld refuses an acquisition while another holder's lease is
	// still current.
	ErrHeld = errors.New("lease: held by another primary")
	// ErrExpired refuses a renewal past the deadline: the holder must
	// re-acquire, which bumps the epoch and fences its old grant.
	ErrExpired = errors.New("lease: expired")
	// ErrNotHolder refuses a renewal by anyone but the current holder.
	ErrNotHolder = errors.New("lease: not the holder")
)

// Authority is the deterministic lease authority: logship's promotion
// Authority plus a deadline. Exactly one unexpired grant exists at any
// moment; acquiring after expiry commits a fresh grant through
// Epochs.CommitGrant, so the new lease and the fencing epoch are the
// same atomic step. Like logship.Authority it is tiny, single-threaded
// coordinator state — durable by contract in the crash tests.
type Authority struct {
	// Epochs is the underlying fencing-grant authority; its current
	// grant is the lease's token.
	Epochs *logship.Authority

	clock   Clock
	ttl     uint64
	holder  string
	expiry  uint64
	granted bool
}

// NewAuthority wraps epochs with lease semantics: grants expire ttl
// ticks after acquisition or last renewal.
func NewAuthority(epochs *logship.Authority, clock Clock, ttl uint64) *Authority {
	return &Authority{Epochs: epochs, clock: clock, ttl: ttl}
}

// Acquire grants holder the serving lease. A first acquisition or one
// after expiry prepares and commits a fresh fencing grant (epoch bump:
// the previous holder's grant stops validating here); re-acquiring an
// unexpired lease by the same holder just pushes the deadline and keeps
// the grant. Another holder's unexpired lease refuses with ErrHeld.
func (a *Authority) Acquire(holder string) (logship.Grant, error) {
	now := a.clock.Now()
	if a.granted && now <= a.expiry {
		if a.holder != holder {
			return logship.Grant{}, fmt.Errorf("%w: %q holds until tick %d", ErrHeld, a.holder, a.expiry)
		}
		a.expiry = now + a.ttl
		return a.Epochs.Cur, nil
	}
	a.Epochs.Prepare(holder)
	g, err := a.Epochs.CommitGrant()
	if err != nil {
		return logship.Grant{}, err
	}
	a.holder = holder
	a.expiry = now + a.ttl
	a.granted = true
	return g, nil
}

// Renew pushes the deadline of an unexpired lease. The grant must be
// current (a superseded grant is a zombie and refuses with ErrNotHolder)
// and the deadline not yet passed (a late renewal refuses with
// ErrExpired — the holder must re-Acquire, burning an epoch, so anything
// it did after the deadline is fenced by its stale grant).
func (a *Authority) Renew(holder string, g logship.Grant) (uint64, error) {
	if !a.granted || a.holder != holder || !a.Epochs.Validate(g) {
		return 0, fmt.Errorf("%w: renewal by %q epoch %d", ErrNotHolder, holder, g.Epoch)
	}
	now := a.clock.Now()
	if now > a.expiry {
		return 0, fmt.Errorf("%w: deadline tick %d passed at %d", ErrExpired, a.expiry, now)
	}
	a.expiry = now + a.ttl
	return a.expiry, nil
}

// Expired reports whether no unexpired lease is outstanding.
func (a *Authority) Expired() bool {
	return !a.granted || a.clock.Now() > a.expiry
}

// Holder reports the current holder and whether its lease is unexpired.
func (a *Authority) Holder() (string, bool) {
	return a.holder, a.granted && a.clock.Now() <= a.expiry
}

// AutoPromote is the no-operator promotion rule: run the existing
// logship.Promote handshake if and only if the serving lease has
// expired. The grant Promote commits through Epochs is adopted as the
// candidate's new lease, so detection, fencing, and the new serving
// grant are one state machine. Idempotent like Promote itself: a crash
// at any phase leaves the lease expired (adoption is the last step), so
// running AutoPromote again finishes the job.
func (a *Authority) AutoPromote(r *logship.Replica, cand string, deadHead uint64, hooks logship.PromoteHooks) (logship.PromoteResult, error) {
	if !a.Expired() {
		return logship.PromoteResult{}, fmt.Errorf("%w: refusing automatic promotion of %q", ErrHeld, cand)
	}
	res, err := logship.Promote(a.Epochs, r, cand, deadHead, hooks)
	if err != nil {
		return res, err
	}
	a.holder = cand
	a.expiry = a.clock.Now() + a.ttl
	a.granted = true
	return res, nil
}

// Holder is the primary-side lease state machine: it turns renewal
// attempts into heartbeat frames and self-demotes when it cannot prove
// it renewed in time — by its own clock (the stall half of the safety
// argument) and by delivery evidence (the partition half). Single-
// goroutine (the shard's run loop).
type Holder struct {
	clock Clock
	ttl   uint64
	epoch uint32
	seq   uint64
	last  uint64
	lost  bool

	// Delivery evidence. engaged latches once an observer was admitted
	// to the stream: from then on the lease is only renewable on proof
	// that an observer heard a beat issued within the last TTL. evidTick
	// is the issue tick that proof currently covers; pending remembers
	// the issue tick of each not-yet-acknowledged beat so an incoming
	// ack can be dated by when its beat was *sent*, not when the ack
	// came back.
	engaged  bool
	evidTick uint64
	ackSeen  uint64
	pending  []beatStamp
}

// beatStamp records when one heartbeat was issued, by renewal number.
type beatStamp struct{ seq, tick uint64 }

// NewHolder starts a held lease for the serving epoch: the grant moment
// counts as the first renewal.
func NewHolder(clock Clock, ttl uint64, epoch uint32) *Holder {
	return &Holder{clock: clock, ttl: ttl, epoch: epoch, last: clock.Now()}
}

// Renew attempts a renewal. engaged reports whether any promotion-
// capable observer has ever been admitted to the heartbeat stream, and
// acked the newest beat sequence an observer has acknowledged — both
// straight from logship's LeaseEvidence, gathered BEFORE the previous
// beats were broadcast so no observer can be armed unaccounted-for.
//
// The lease is lost — observers may already have promoted past us — if
// either the gap since the previous renewal exceeded the TTL (a stalled
// loop) or, once engaged, no observer acknowledged a beat issued within
// the TTL (a partition: the loop is fine, the messages are not). Loss
// demotes permanently (ok=false, every later call refuses too).
// Otherwise it returns the heartbeat to broadcast: the first beat
// announces the grant, later ones renew it.
func (h *Holder) Renew(engaged bool, acked uint64) (b logship.Beat, ok bool) {
	if h.lost {
		return logship.Beat{}, false
	}
	now := h.clock.Now()
	if now-h.last > h.ttl {
		h.lost = true
		return logship.Beat{}, false
	}
	// Date the newest acknowledged beat by its issue tick. Acks for
	// sequences never issued (a buggy or hostile consumer) are ignored;
	// acks for beats already pruned cannot move the evidence forward.
	if acked > h.ackSeen && acked <= h.seq {
		h.ackSeen = acked
		i := 0
		for ; i < len(h.pending) && h.pending[i].seq <= acked; i++ {
			h.evidTick = h.pending[i].tick
		}
		h.pending = append(h.pending[:0], h.pending[i:]...)
	}
	if engaged && !h.engaged {
		// First observer admitted: it hears no beat issued before this
		// renewal, so demanding evidence from now on starts the holder's
		// deadline no later than any observer's.
		h.engaged = true
		h.evidTick = now
	}
	if h.engaged && now-h.evidTick > h.ttl {
		h.lost = true
		return logship.Beat{}, false
	}
	h.last = now
	h.seq++
	h.pending = append(h.pending, beatStamp{seq: h.seq, tick: now})
	// A beat issued more than a TTL ago could not push the evidence
	// deadline past now even if acked, so its stamp is dead weight.
	for len(h.pending) > 0 && now-h.pending[0].tick > h.ttl {
		h.pending = h.pending[1:]
	}
	kind := logship.BeatRenew
	if h.seq == 1 {
		kind = logship.BeatGrant
	}
	return logship.Beat{Kind: kind, Epoch: h.epoch, Seq: h.seq, TTL: h.ttl}, true
}

// Lost reports whether the holder missed a renewal and demoted itself.
func (h *Holder) Lost() bool { return h.lost }

// Beats reports how many heartbeats this holder has issued.
func (h *Holder) Beats() uint64 { return h.seq }

// Monitor is the standby-side observer: it watches the heartbeat stream
// off a replica subscription and reports expiry. Observe is called from
// the replica's consume goroutine while Expired polls from the standby's
// watcher, so the monitor locks. The deadline arms at *receipt* time
// plus the TTL — receipt happens after send, so this deadline expires no
// earlier than the holder's own, which is the whole safety argument.
type Monitor struct {
	mu       sync.Mutex
	clock    Clock
	ttl      uint64
	heard    bool
	deadline uint64
	epoch    uint32
	seq      uint64
	beats    uint64
	stale    uint64
}

// NewMonitor builds a monitor expecting renewals within ttl ticks.
func NewMonitor(clock Clock, ttl uint64) *Monitor {
	return &Monitor{clock: clock, ttl: ttl}
}

// Observe feeds one heartbeat. Beats from a superseded epoch are
// dropped: a zombie ex-primary's heartbeats must never re-arm the
// deadline of the generation that replaced it. The deadline arms with
// the SMALLER of the monitor's configured TTL and the beat's
// wire-carried one: a primary configured shorter expires us early
// (safe), but a single beat carrying a huge TTL — a -lease-ms mismatch,
// a bug, a hostile peer — must not disable failover on this shard for
// that long.
func (m *Monitor) Observe(b logship.Beat) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if b.Epoch < m.epoch {
		m.stale++
		return
	}
	m.epoch = b.Epoch
	m.heard = true
	m.beats++
	m.seq = b.Seq
	ttl := b.TTL
	if m.ttl > 0 && (ttl == 0 || ttl > m.ttl) {
		ttl = m.ttl
	}
	m.deadline = m.clock.Now() + ttl
}

// Expired reports whether a once-heard lease has gone unrenewed past its
// deadline. A monitor that never heard a beat reports false: promotion
// must not trigger before the primary proved it was alive on this
// stream.
func (m *Monitor) Expired() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.heard && m.clock.Now() > m.deadline
}

// Heard reports whether any heartbeat arrived yet.
func (m *Monitor) Heard() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.heard
}

// Epoch reports the highest epoch observed in a heartbeat.
func (m *Monitor) Epoch() uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Beats reports heartbeats accepted; Stale reports zombie beats dropped.
func (m *Monitor) Beats() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.beats
}

// Stale reports heartbeats dropped for carrying a superseded epoch.
func (m *Monitor) Stale() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stale
}
