package vm

import (
	"fmt"
)

// Per-process logs on the prototype hardware via context switching —
// the extension Section 3.1.2 of the paper sketches: "The logger could be
// extended to use the processor number... A context switch could then
// unload logs from the logger tables as necessary to implement per-region
// logs."
//
// The bus logger maps *physical pages* to logs, so only one log can be
// active per segment at a time. Several regions (typically in different
// address spaces) may each register a log for the same segment; Activate
// points the hardware tables at one of them, and ContextSwitch activates
// every registered log of the incoming address space. While a region's
// log is inactive, writes to the segment are logged to whichever log is
// active — the physical reality of page-level tagging.

// ContextSwitchCycles is the kernel cost of a context switch (register
// save/restore, address-space change) excluding the logger-table reloads,
// which are charged per entry.
const ContextSwitchCycles = 800

// PMTReloadCycles is the per-entry cost of rewriting a logger
// page-mapping-table entry during activation.
const PMTReloadCycles = 30

// Activate points the prototype logger's tables at region r's log: every
// resident frame of r's segment maps to r's log index, and mappings in
// every address space re-fault so their cache-mode bits follow.
func (k *Kernel) Activate(r *Region, cpu *machineCPU) error {
	if k.Log == nil {
		return fmt.Errorf("vm: Activate requires the prototype logger")
	}
	ls := r.logSeg
	if ls == nil {
		return fmt.Errorf("vm: Activate on an unlogged region")
	}
	s := r.seg
	if s.logTo == ls {
		return nil // already active
	}
	// Drain in-flight records first: FIFO entries carry only physical
	// addresses and are routed through the page-mapping table at service
	// time, so rewriting the table under a non-empty FIFO would misroute
	// the previous process's tail of writes into the new log.
	k.Sync()
	if !ls.started {
		if err := k.setLogHeadAt(ls, ls.savedOff); err != nil {
			return err
		}
	}
	s.logged = true
	s.logTo = ls
	s.logIndex = ls.logIndex
	n := uint64(0)
	for page := range s.pages {
		if f := s.pages[page].frame; f != 0 {
			k.loadPMT(s, uint32(page), f, ls.logIndex)
			n++
		}
	}
	if cpu != nil {
		cpu.Compute(n * PMTReloadCycles)
	}
	k.invalidateSegmentMappings(s)
	return nil
}

// Deactivate stops logging for a segment without forgetting its regions'
// registered logs.
func (k *Kernel) Deactivate(s *Segment) {
	if !s.logged {
		return
	}
	if s.logTo != nil {
		s.logTo.savedOff = k.LogAppendOffset(s.logTo)
	}
	k.Sync()
	if s.logTo != nil {
		s.logTo.savedOff = k.LogAppendOffset(s.logTo)
		if s.logTo.logIdxValid {
			k.Log.InvalidateLog(s.logTo.logIndex)
		}
		s.logTo.started = false
	}
	for page := range s.pages {
		if f := s.pages[page].frame; f != 0 {
			k.Log.InvalidatePMT(f)
		}
	}
	s.logged = false
	s.logTo = nil
	k.invalidateSegmentMappings(s)
}

// invalidateSegmentMappings forces every PTE of a segment, in every
// address space, to re-fault so cache-mode and logging bits are
// recomputed.
func (k *Kernel) invalidateSegmentMappings(s *Segment) {
	for _, as := range k.asList {
		for _, e := range as.pt {
			if e.seg == s {
				e.resident = false
			}
		}
		as.lastPTE = nil
	}
}

// ContextSwitch installs an address space on a CPU: the on-chip cache is
// invalidated, the switch cost charged, and — on the prototype — every
// registered log of the incoming address space's regions is activated so
// the process's writes land in its own logs (per-process logs,
// Section 3.1.2 / Section 2.5: "Using a separate log per region means
// that each process can have a separate log").
func (k *Kernel) ContextSwitch(p *Process, as *AddressSpace) error {
	p.CPU.Compute(ContextSwitchCycles)
	p.CPU.D1.InvalidateAll()
	p.AS = as
	if k.Log == nil {
		return nil // on-chip logging is per virtual page: nothing to do
	}
	for _, r := range as.regions {
		if r.logSeg != nil {
			if err := k.Activate(r, p.CPU); err != nil {
				return err
			}
		}
	}
	return nil
}
