package vm

import (
	"testing"

	"lvm/internal/machine"
)

// BenchmarkContextSwitchReset measures the host cost of the rollback
// sequence timewarp state restoration performs: dirty a deferred-copy
// region, context-switch (which flushes the L1), then reset the region —
// so every per-page InvalidatePage call inside ResetDeferredCopy takes
// the empty-cache early exit.
func BenchmarkContextSwitchReset(b *testing.B) {
	k := NewKernel(machine.Config{NumCPUs: 1, MemFrames: 2048})
	src := k.NewSegment("src", 8*PageSize, nil)
	dst := k.NewSegment("dst", 8*PageSize, nil)
	if err := dst.SetSourceSegment(src, 0); err != nil {
		b.Fatal(err)
	}
	r := k.NewRegion(dst)
	as := k.NewAddressSpace()
	base, err := r.Bind(as, 0)
	if err != nil {
		b.Fatal(err)
	}
	p := k.NewProcess(0, as)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for pg := uint32(0); pg < 8; pg++ {
			p.Store32(base+pg*PageSize, uint32(i))
		}
		if err := k.ContextSwitch(p, as); err != nil {
			b.Fatal(err)
		}
		if _, err := as.ResetDeferredCopy(base, base+8*PageSize, p.CPU); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResetDeferredCopyWarm is the same rollback without the
// intervening context switch: the dirtied lines are still cached, so each
// InvalidatePage must scan the tag array and drop them.
func BenchmarkResetDeferredCopyWarm(b *testing.B) {
	k := NewKernel(machine.Config{NumCPUs: 1, MemFrames: 2048})
	src := k.NewSegment("src", 8*PageSize, nil)
	dst := k.NewSegment("dst", 8*PageSize, nil)
	if err := dst.SetSourceSegment(src, 0); err != nil {
		b.Fatal(err)
	}
	r := k.NewRegion(dst)
	as := k.NewAddressSpace()
	base, err := r.Bind(as, 0)
	if err != nil {
		b.Fatal(err)
	}
	p := k.NewProcess(0, as)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for pg := uint32(0); pg < 8; pg++ {
			p.Store32(base+pg*PageSize, uint32(i))
		}
		if _, err := as.ResetDeferredCopy(base, base+8*PageSize, p.CPU); err != nil {
			b.Fatal(err)
		}
	}
}
