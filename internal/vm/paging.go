package vm

import (
	"fmt"

	"lvm/internal/cycles"
	"lvm/internal/metrics"
)

// PageStore is an optional extension of SegmentManager: segment managers
// that implement it receive evicted page contents and supply them again
// at the next fault, giving segments a backing store (the V++ Cache
// Kernel's user-level pager arrangement).
type PageStore interface {
	SegmentManager
	// StorePage receives the contents of a page being evicted.
	StorePage(seg *Segment, page uint32, data *[PageSize]byte)
}

// EvictPage removes a page's frame, writing its contents to the segment
// manager's backing store when one exists. All mappings of the page are
// invalidated so the next touch re-faults; the hardware logger's
// page-mapping entry for the frame is removed (the next logged write to
// the re-faulted page reloads it, Section 3.2's displacement handling).
//
// Pages of deferred-copy destinations cannot be evicted: their per-line
// source state lives in the second-level cache and has no backing-store
// representation (the prototype pinned such working segments as well).
func (k *Kernel) EvictPage(s *Segment, page uint32) error {
	if page >= s.NumPages() {
		return fmt.Errorf("vm: evict: page %d out of range", page)
	}
	if s.source != nil {
		return fmt.Errorf("vm: evict: segment %q is a deferred-copy destination", s.name)
	}
	if s.isLog && s.logIdxValid && s.started {
		// The hardware may hold a head pointer into this segment.
		cur := k.LogAppendOffset(s) >> PageShift
		if page == cur {
			return fmt.Errorf("vm: evict: page %d holds the active log head", page)
		}
	}
	p := &s.pages[page]
	if p.frame == 0 {
		return nil
	}
	if ps, ok := s.mgr.(PageStore); ok {
		ps.StorePage(s, page, k.M.Phys.Frame(p.frame))
	}
	if k.Log != nil {
		k.Log.InvalidatePMT(p.frame)
	}
	delete(k.owners, p.frame)
	k.M.Phys.Release(p.frame)
	p.frame = 0
	p.dirty = false
	for i := range p.lineDirty {
		p.lineDirty[i] = 0
	}
	k.invalidateMappingsOf(s, page)
	k.Evictions++
	k.kshard(nil).Inc(metrics.VMEvictions)
	k.tracer().Emit(k.M.MaxNow(), metrics.EvEviction, -1, uint64(s.id), uint64(page))
	return nil
}

// invalidateMappingsOf forces every PTE mapping (s, page) to re-fault.
func (k *Kernel) invalidateMappingsOf(s *Segment, page uint32) {
	for _, as := range k.asList {
		for vp, e := range as.pt {
			if e.seg == s && e.segPage == page {
				e.resident = false
				if as.lastPTE == e {
					as.lastPTE = nil
				}
				_ = vp
			}
		}
	}
}

// ReclaimFrames evicts up to n clean-evictable resident pages across all
// segments (a trivial page-replacement sweep for tests and long-running
// workloads). It returns how many frames were reclaimed.
func (k *Kernel) ReclaimFrames(n int) int {
	reclaimed := 0
	for _, s := range k.segments {
		if s.source != nil {
			continue
		}
		for page := uint32(0); page < s.NumPages() && reclaimed < n; page++ {
			if s.pages[page].frame == 0 {
				continue
			}
			if err := k.EvictPage(s, page); err == nil {
				reclaimed++
			}
		}
		if reclaimed >= n {
			break
		}
	}
	return reclaimed
}

// PageInCost is the cycle cost charged for a page fault that found its
// data in a backing store (same as any fault; the transfer itself is the
// manager's business).
const PageInCost = cycles.PageFaultCycles
