package vm

import (
	"fmt"

	"lvm/internal/cycles"
	"lvm/internal/hwlogger"
	"lvm/internal/metrics"
	"lvm/internal/phys"
)

// PTE is a software page-table entry: one mapped virtual page.
type pte struct {
	region  *Region
	seg     *Segment
	segPage uint32
	// resident means the frame is present AND, for logged pages, the
	// logger tables were loaded and the page is in write-through mode.
	resident     bool
	writeThrough bool
	logged       bool
}

// AddressSpace is a 32-bit virtual address space with 4 KiB pages.
type AddressSpace struct {
	k       *Kernel
	pt      map[uint32]*pte
	regions []*Region
	nextVA  Addr

	// lastVP/lastPTE is a one-entry software TLB for the hot path.
	lastVP  uint32
	lastPTE *pte
}

// NewAddressSpace creates an empty address space. Each address space gets
// a distinct default allocation base so that kernel-chosen bindings in
// different address spaces occupy disjoint virtual ranges — the on-chip
// logger's extended TLB (Section 4.6) is modeled without address-space
// identifiers, so per-region log tags are keyed by virtual page number
// alone.
func (k *Kernel) NewAddressSpace() *AddressSpace {
	as := &AddressSpace{
		k:      k,
		pt:     make(map[uint32]*pte),
		nextVA: 0x1000_0000 + uint32(k.addressSpaces)*0x0800_0000,
	}
	k.addressSpaces++
	k.asList = append(k.asList, as)
	return as
}

// Kernel returns the owning kernel.
func (a *AddressSpace) Kernel() *Kernel { return a.k }

// Regions returns the regions bound into this address space.
func (a *AddressSpace) Regions() []*Region { return a.regions }

// Region represents a mapping of a segment into an address space
// (Section 2.1). A region becomes active when bound. Logging is specified
// at the region level (Region::log, Table 1) and can be enabled and
// disabled dynamically (Section 2.7).
type Region struct {
	seg    *Segment
	logSeg *Segment
	mode   hwlogger.Mode

	as   *AddressSpace
	base Addr
	size uint32

	// writeThrough forces write-through mode even without logging (used
	// by experiments isolating the write-through cost).
	writeThrough bool
}

// NewRegion creates a region over the whole segment (StdRegion, Table 1).
func (k *Kernel) NewRegion(seg *Segment) *Region {
	return &Region{seg: seg, size: seg.size, mode: hwlogger.ModeRecord}
}

// Segment returns the mapped segment.
func (r *Region) Segment() *Segment { return r.seg }

// Base returns the region's bound base virtual address (0 before Bind).
func (r *Region) Base() Addr { return r.base }

// Size returns the region size in bytes.
func (r *Region) Size() uint32 { return r.size }

// LogSegment returns the region's log segment, if logging is enabled.
func (r *Region) LogSegment() *Segment { return r.logSeg }

// SetLogMode selects the logging mode (record, direct-mapped or indexed;
// Section 2.6). It must be called before Log.
func (r *Region) SetLogMode(m hwlogger.Mode) { r.mode = m }

// Log declares ls as the log segment for this region: "Log records for all
// writes to region this appear in ls" (Table 1). It may be called before
// or after Bind, and by a separate program such as a debugger
// (Section 2.2). The prototype supports a single logged region per segment
// (Section 3.1.2); enabling logging on a second region of the same segment
// fails.
func (r *Region) Log(ls *Segment) error {
	if !ls.isLog {
		return fmt.Errorf("vm: Log: %q is not a log segment", ls.name)
	}
	k := r.seg.k
	if r.logSeg != nil {
		return fmt.Errorf("vm: region already logged")
	}
	if k.Chip != nil {
		// Section 4.6 hardware: per-region logging, no per-segment
		// restriction.
		return k.logOnChip(r, ls)
	}
	if k.Log == nil {
		return fmt.Errorf("vm: no logger hardware attached")
	}
	if !ls.logIdxValid {
		idx, err := k.allocLogIndex()
		if err != nil {
			return err
		}
		ls.logIndex = idx
		ls.logIdxValid = true
		ls.logMode = r.mode
	}
	r.logSeg = ls
	ls.loggedRegion = r
	if r.seg.logged {
		// Another region's log is currently active for this segment: the
		// bus logger maps physical pages, so this registration takes
		// effect at the next Activate/ContextSwitch (Section 3.1.2's
		// per-process logs via context switching).
		return nil
	}
	return k.Activate(r, nil)
}

// Unlog dynamically disables logging for the region (Section 2.7: "The
// logging of a region can be dynamically enabled and disabled").
func (r *Region) Unlog() {
	if r.logSeg == nil {
		return
	}
	k := r.seg.k
	if k.Chip != nil {
		k.unlogOnChip(r)
		return
	}
	ls := r.logSeg
	if r.seg.logTo == ls {
		k.Deactivate(r.seg)
	}
	ls.loggedRegion = nil
	r.logSeg = nil
	if r.as != nil {
		r.as.invalidateRange(r.base, r.size)
	}
}

// Bind maps the region into the address space at virtaddr (0 = let the
// kernel choose), returning the bound address (Table 1: Region::bind).
func (r *Region) Bind(a *AddressSpace, virtaddr Addr) (Addr, error) {
	if r.as != nil {
		return 0, fmt.Errorf("vm: region already bound")
	}
	if virtaddr == 0 {
		virtaddr = a.nextVA
		a.nextVA += (r.size + PageSize - 1) &^ uint32(PageMask)
		a.nextVA += PageSize // guard page
	}
	if virtaddr&PageMask != 0 {
		return 0, fmt.Errorf("vm: bind address %#x not page aligned", virtaddr)
	}
	npages := (r.size + PageSize - 1) / PageSize
	for p := uint32(0); p < npages; p++ {
		vp := (virtaddr >> PageShift) + p
		if _, exists := a.pt[vp]; exists {
			return 0, fmt.Errorf("vm: bind overlaps existing mapping at %#x", vp<<PageShift)
		}
	}
	for p := uint32(0); p < npages; p++ {
		vp := (virtaddr >> PageShift) + p
		a.pt[vp] = &pte{region: r, seg: r.seg, segPage: p}
	}
	r.as = a
	r.base = virtaddr
	a.regions = append(a.regions, r)
	if r.logSeg != nil && a.k.Chip != nil {
		r.mapChipPages()
	}
	return virtaddr, nil
}

// Unbind removes the region's mapping from its address space.
func (r *Region) Unbind() {
	if r.as == nil {
		return
	}
	a := r.as
	npages := (r.size + PageSize - 1) / PageSize
	for p := uint32(0); p < npages; p++ {
		delete(a.pt, (r.base>>PageShift)+p)
		if a.k.Chip != nil && r.logSeg != nil {
			a.k.Chip.UnmapPage((r.base >> PageShift) + p)
		}
	}
	a.lastPTE = nil
	for i, rr := range a.regions {
		if rr == r {
			a.regions = append(a.regions[:i], a.regions[i+1:]...)
			break
		}
	}
	r.as = nil
	r.base = 0
}

// invalidateRange forces the pages of [base, base+size) to re-fault.
func (a *AddressSpace) invalidateRange(base Addr, size uint32) {
	npages := (size + PageSize - 1) / PageSize
	for p := uint32(0); p < npages; p++ {
		if e, ok := a.pt[(base>>PageShift)+p]; ok {
			e.resident = false
			e.writeThrough = false
			e.logged = false
		}
	}
	a.lastPTE = nil
}

// Translate resolves a virtual address without faulting; ok is false if
// the page is unmapped.
func (a *AddressSpace) Translate(va Addr) (seg *Segment, off uint32, ok bool) {
	e, found := a.pt[va>>PageShift]
	if !found {
		return nil, 0, false
	}
	return e.seg, e.segPage*PageSize + va&PageMask, true
}

// lookup returns the PTE for va, handling the page fault if needed; the
// fault cost is charged to cpu.
func (a *AddressSpace) lookup(va Addr, cpu *machineCPU) (*pte, error) {
	vp := va >> PageShift
	if a.lastPTE != nil && a.lastVP == vp && a.lastPTE.resident {
		return a.lastPTE, nil
	}
	e, found := a.pt[vp]
	if !found {
		return nil, fmt.Errorf("vm: fault: unmapped address %#x", va)
	}
	if !e.resident {
		if err := a.k.pageFault(e, cpu); err != nil {
			return nil, err
		}
	}
	a.lastVP = vp
	a.lastPTE = e
	return e, nil
}

// pageFault implements the page-fault path of Section 3.2: normal fault
// handling (frame allocation and data arrival), then for logged regions:
// write-through mode for the page, a log-table entry if missing, and a
// page-mapping-table entry mapping the page's physical address to the
// log's index.
func (k *Kernel) pageFault(e *pte, cpu *machineCPU) error {
	k.PageFaults++
	k.kshard(cpu).Inc(metrics.VMPageFaults)
	if cpu != nil {
		cpu.Compute(cycles.PageFaultCycles)
	}
	if _, err := e.seg.ensureFrame(e.segPage); err != nil {
		return err
	}
	if tr := k.tracer(); tr.Enabled() {
		var now uint64
		cpuID := -1
		if cpu != nil {
			now, cpuID = cpu.Now, cpu.ID
		}
		tr.Emit(now, metrics.EvPageFault, cpuID, uint64(e.segPage), uint64(e.seg.pages[e.segPage].frame))
	}
	r := e.region
	if r != nil && r.logSeg != nil && k.Chip != nil {
		// On-chip logging: the page's TLB entry carries the log index;
		// the page stays write-back (Section 4.6).
		e.logged = true
		e.writeThrough = r.writeThrough
		k.Chip.MapPage((r.base>>PageShift)+e.segPage, r.logSeg.logIndex)
	} else if k.Log != nil && e.seg.logged {
		// The prototype logger tags physical pages, so any mapping of a
		// segment with an active log is logged — whichever region the
		// write comes through (the log itself is selected per segment by
		// Activate/ContextSwitch).
		e.logged = true
		e.writeThrough = true
		if cpu != nil {
			cpu.Compute(cycles.LoggerEntrySetupCycles)
		}
		ls := e.seg.logTo
		if !k.Log.LogHead(ls.logIndex).Valid && !ls.absorbing {
			if !k.advanceLogHead(ls) {
				return fmt.Errorf("vm: cannot initialize log head for %q", ls.name)
			}
		}
		frame := e.seg.pages[e.segPage].frame
		displaced := k.loadPMT(e.seg, e.segPage, frame, ls.logIndex)
		_ = displaced // displaced pages recover via logging faults
	} else {
		e.logged = false
		e.writeThrough = r != nil && r.writeThrough
	}
	e.resident = true
	return nil
}

// SetWriteThrough forces the region's pages into write-through mode
// independent of logging (experimental control for the Section 4.5
// measurements).
func (r *Region) SetWriteThrough(wt bool) {
	r.writeThrough = wt
	if r.as != nil {
		r.as.invalidateRange(r.base, r.size)
	}
}

// PAddr returns the physical address backing va, faulting the page in
// (uncharged) if needed.
func (a *AddressSpace) PAddr(va Addr) (phys.Addr, error) {
	e, err := a.lookup(va, nil)
	if err != nil {
		return 0, err
	}
	return phys.FrameBase(e.seg.pages[e.segPage].frame) + va&PageMask, nil
}
