package vm

import (
	"testing"
	"testing/quick"

	"lvm/internal/cycles"
	"lvm/internal/machine"
)

func TestTranslateWithoutFault(t *testing.T) {
	k := testKernel()
	s := k.NewSegment("s", 2*PageSize, nil)
	r := k.NewRegion(s)
	as := k.NewAddressSpace()
	base, _ := r.Bind(as, 0)
	seg, off, ok := as.Translate(base + PageSize + 12)
	if !ok || seg != s || off != PageSize+12 {
		t.Fatalf("Translate = %v %d %v", seg, off, ok)
	}
	if _, _, ok := as.Translate(0xFEED0000); ok {
		t.Fatalf("Translate of unmapped address succeeded")
	}
	// Translate must not fault the page in.
	if s.Resident(1) {
		t.Fatalf("Translate made page resident")
	}
}

func TestPAddrFaultsIn(t *testing.T) {
	k := testKernel()
	s := k.NewSegment("s", PageSize, nil)
	r := k.NewRegion(s)
	as := k.NewAddressSpace()
	base, _ := r.Bind(as, 0)
	pa, err := as.PAddr(base + 40)
	if err != nil {
		t.Fatal(err)
	}
	if pa != s.Frame(0)<<PageShift+40 {
		t.Fatalf("PAddr = %#x", pa)
	}
	if _, err := as.PAddr(0xFEED0000); err == nil {
		t.Fatalf("PAddr of unmapped succeeded")
	}
}

func TestAutoBindAddressesDisjoint(t *testing.T) {
	k := testKernel()
	as := k.NewAddressSpace()
	var prevEnd Addr
	for i := 0; i < 5; i++ {
		s := k.NewSegment("s", 3*PageSize, nil)
		r := k.NewRegion(s)
		base, err := r.Bind(as, 0)
		if err != nil {
			t.Fatal(err)
		}
		if base < prevEnd {
			t.Fatalf("auto bind overlapped: %#x < %#x", base, prevEnd)
		}
		prevEnd = base + 3*PageSize
	}
}

func TestAddressSpacesGetDistinctBases(t *testing.T) {
	k := testKernel()
	a1 := k.NewAddressSpace()
	a2 := k.NewAddressSpace()
	s1 := k.NewSegment("s1", PageSize, nil)
	s2 := k.NewSegment("s2", PageSize, nil)
	b1, _ := k.NewRegion(s1).Bind(a1, 0)
	b2, _ := k.NewRegion(s2).Bind(a2, 0)
	if b1 == b2 {
		t.Fatalf("default bases collide across address spaces: %#x", b1)
	}
}

func TestUnbindThenRebind(t *testing.T) {
	k := testKernel()
	s := k.NewSegment("s", PageSize, nil)
	s.Write32(0, 42)
	r := k.NewRegion(s)
	as := k.NewAddressSpace()
	base, _ := r.Bind(as, 0x3000_0000)
	p := k.NewProcess(0, as)
	if got := p.Load32(base); got != 42 {
		t.Fatalf("pre-unbind read = %d", got)
	}
	r.Unbind()
	func() {
		defer func() { recover() }()
		p.Load32(base)
		t.Fatalf("access after unbind did not fault")
	}()
	base2, err := r.Bind(as, 0x4000_0000)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Load32(base2); got != 42 {
		t.Fatalf("post-rebind read = %d", got)
	}
}

func TestSetWriteThroughWithoutLogging(t *testing.T) {
	k := testKernel()
	s := k.NewSegment("s", PageSize, nil)
	r := k.NewRegion(s)
	r.SetWriteThrough(true)
	as := k.NewAddressSpace()
	base, _ := r.Bind(as, 0)
	p := k.NewProcess(0, as)
	p.Store32(base, 1) // fault
	start := p.Now()
	p.Store32(base+4, 2)
	if got := p.Now() - start; got != cycles.WordWriteThroughTotal {
		t.Fatalf("write-through cost = %d", got)
	}
	k.Sync()
	if k.Log.RecordsWritten != 0 {
		t.Fatalf("unlogged write-through produced records")
	}
}

func TestDeferredCopyDetachSource(t *testing.T) {
	k := testKernel()
	src := k.NewSegment("src", PageSize, nil)
	src.Write32(0, 7)
	dst := k.NewSegment("dst", PageSize, nil)
	mustSource(t, dst, src, 0)
	if dst.Read32(0) != 7 {
		t.Fatalf("read-through failed")
	}
	mustSource(t, dst, nil, 0)
	if got := dst.Read32(0); got != 0 {
		t.Fatalf("after detach = %d, want 0 (own zero frame)", got)
	}
}

func TestStoreBytesLoadBytesRoundTrip(t *testing.T) {
	k := testKernel()
	s := k.NewSegment("s", PageSize, nil)
	r := k.NewRegion(s)
	as := k.NewAddressSpace()
	base, _ := r.Bind(as, 0)
	p := k.NewProcess(0, as)
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	p.StoreBytes(base+4, data)
	got := p.LoadBytes(base+4, len(data))
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d", i, got[i])
		}
	}
}

func TestLoggedStoreBytesRecordsEverything(t *testing.T) {
	k := testKernel()
	_, _, ls, p, base := setupLogged(t, k, 1, 4)
	p.StoreBytes(base, []byte{1, 2, 3, 4, 5, 6}) // one word + two bytes
	k.Sync()
	if got := k.LogAppendOffset(ls) / 16; got != 3 {
		t.Fatalf("records = %d, want 3 (4B + 1B + 1B)", got)
	}
}

func TestPropertyDeferredCopyMatchesShadow(t *testing.T) {
	// Random interleavings of writes to source and destination plus
	// resets must match a simple shadow model.
	type op struct {
		ToSrc bool
		Reset bool
		Off   uint16
		Val   uint32
	}
	prop := func(ops []op) bool {
		if len(ops) > 200 {
			ops = ops[:200]
		}
		k := testKernel()
		src := k.NewSegment("src", 2*PageSize, nil)
		dst := k.NewSegment("dst", 2*PageSize, nil)
		if dst.SetSourceSegment(src, 0) != nil {
			return false
		}
		srcShadow := map[uint32]uint32{}
		dstShadow := map[uint32]bool{} // has dst diverged at off?
		dstVals := map[uint32]uint32{}
		for _, o := range ops {
			off := uint32(o.Off) % (2*PageSize - 4) &^ 3
			switch {
			case o.Reset:
				if _, err := k.ResetDeferredCopySegment(dst, nil); err != nil {
					return false
				}
				dstShadow = map[uint32]bool{}
				dstVals = map[uint32]uint32{}
			case o.ToSrc:
				src.Write32(off, o.Val)
				srcShadow[off] = o.Val
			default:
				dst.Write32(off, o.Val)
				// A dst write materializes the whole 16-byte line: the
				// other words of the line freeze at current src values.
				line := off &^ 15
				for w := line; w < line+16; w += 4 {
					if !dstShadow[w] {
						dstShadow[w] = true
						dstVals[w] = srcShadow[w]
					}
				}
				dstVals[off] = o.Val
			}
		}
		for off := uint32(0); off < 2*PageSize; off += 4 {
			var want uint32
			if dstShadow[off] {
				want = dstVals[off]
			} else {
				want = srcShadow[off]
			}
			if dst.Read32(off) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiCPULoggedWritesShareOneLog(t *testing.T) {
	k := NewKernel(machine.Config{NumCPUs: 4, MemFrames: 2048})
	s := k.NewSegment("shared", PageSize, nil)
	ls := k.NewLogSegment("log", 8)
	r := k.NewRegion(s)
	if err := r.Log(ls); err != nil {
		t.Fatal(err)
	}
	as := k.NewAddressSpace()
	base, _ := r.Bind(as, 0)
	procs := make([]*Process, 4)
	for i := range procs {
		procs[i] = k.NewProcess(i, as)
	}
	for round := uint32(0); round < 20; round++ {
		for i, p := range procs {
			p.Compute(100)
			p.Store32(base+uint32(i)*4, round*10+uint32(i))
		}
	}
	k.Sync()
	if got := k.LogAppendOffset(ls) / 16; got != 80 {
		t.Fatalf("records = %d, want 80", got)
	}
	// CPU attribution survives in the records.
	cpus := map[uint16]int{}
	for i := uint32(0); i < 80; i++ {
		rec := ls.RawRead(i*16, 16)
		cpus[uint16(rec[10])|uint16(rec[11])<<8]++
	}
	for c := uint16(0); c < 4; c++ {
		if cpus[c] != 20 {
			t.Fatalf("cpu %d wrote %d records, want 20", c, cpus[c])
		}
	}
}

func TestResetDeferredCopyRangeSubset(t *testing.T) {
	k := testKernel()
	src := k.NewSegment("src", 4*PageSize, nil)
	dst := k.NewSegment("dst", 4*PageSize, nil)
	mustSource(t, dst, src, 0)
	r := k.NewRegion(dst)
	as := k.NewAddressSpace()
	base, _ := r.Bind(as, 0)
	p := k.NewProcess(0, as)
	p.Store32(base, 1)
	p.Store32(base+2*PageSize, 2)
	// Reset only the first two pages.
	if _, err := as.ResetDeferredCopy(base, base+2*PageSize, p.CPU); err != nil {
		t.Fatal(err)
	}
	if got := p.Load32(base); got != 0 {
		t.Fatalf("page0 not reset: %d", got)
	}
	if got := p.Load32(base + 2*PageSize); got != 2 {
		t.Fatalf("page2 reset despite being out of range: %d", got)
	}
	if _, err := as.ResetDeferredCopy(base+PageSize, base, nil); err == nil {
		t.Fatalf("inverted range accepted")
	}
}
