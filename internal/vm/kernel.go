// Package vm implements the virtual-memory system software of the LVM
// prototype: the V++ Cache Kernel extensions of Sections 2 and 3.2–3.3 of
// the paper.
//
// It provides memory segments, regions (mappings of segments into address
// spaces), log segments, per-region logging, deferred copy, and the two
// kernel fault paths the paper describes:
//
//   - the page-fault handler, which allocates a frame, initializes the
//     page (zero-fill, a user-level segment manager, or the deferred-copy
//     source), puts logged pages into write-through mode, and loads the
//     hardware logger's page-mapping-table and log-table entries; and
//   - the logging-fault handler, which reloads displaced page-mapping
//     entries and advances a log to its next page frame when the hardware
//     invalidates the log-table entry at a page crossing, falling back to
//     a default "absorb" page (discarding records) when the user has not
//     extended the log segment.
//
// All kernel work is charged in cycles to the faulting CPU, calibrated per
// package cycles.
package vm

import (
	"fmt"

	"lvm/internal/cycles"
	"lvm/internal/hwlogger"
	"lvm/internal/machine"
	"lvm/internal/metrics"
	"lvm/internal/phys"
	"lvm/internal/tlblog"
)

// Addr is a 32-bit virtual address.
type Addr = uint32

// Page constants re-exported for convenience.
const (
	PageSize  = phys.PageSize
	PageShift = phys.PageShift
	PageMask  = phys.PageMask
	LineSize  = cycles.LineSize
	// LinesPerPage is the number of 16-byte cache lines in a page.
	LinesPerPage = PageSize / LineSize
)

// frameOwner records which segment page occupies a physical frame, for the
// logger's reverse translation and for logging-fault recovery.
type frameOwner struct {
	seg  *Segment
	page uint32
}

// Kernel is the virtual-memory system: it owns the machine, the hardware
// logger, the frame-ownership (reverse) map, and the log-index allocator.
type Kernel struct {
	M   *machine.Machine
	Log *hwlogger.Logger
	// Chip is the Section 4.6 on-chip logger; exactly one of Log and
	// Chip is non-nil on a logging-capable kernel (see NewKernelOnChip).
	Chip *tlblog.Logger

	owners map[uint32]frameOwner // ppn -> owner

	freeLogIdx    []uint16
	segments      []*Segment
	addressSpaces int
	asList        []*AddressSpace

	// absorbFrame is the default log page used to absorb records when a
	// log segment runs out of space (Section 3.2).
	absorbFrame uint32

	// Stats.
	PageFaults    uint64
	LoggingFaults uint64
	Overloads     uint64
	AbsorbedPages uint64
	Evictions     uint64
}

// NewKernel builds a machine per cfg, attaches a hardware logger to its
// bus, and wires the kernel's fault handlers into it.
func NewKernel(cfg machine.Config) *Kernel {
	m := machine.New(cfg)
	k := &Kernel{
		M:      m,
		Log:    hwlogger.New(m.Bus, m.Phys),
		owners: make(map[uint32]frameOwner),
	}
	m.Log = k.Log
	k.Log.SetMetrics(m.DeviceShard(), m.Metrics.Tracer())
	for i := k.Log.NumLogs() - 1; i >= 0; i-- {
		k.freeLogIdx = append(k.freeLogIdx, uint16(i))
	}
	f, err := m.Phys.Alloc()
	if err != nil {
		panic("vm: cannot allocate absorb frame")
	}
	k.absorbFrame = f
	k.Log.OnFault = k.handleLoggingFault
	k.Log.OnOverload = func(drained uint64) uint64 {
		k.Overloads++
		resume := drained + cycles.OverloadKernelCycles
		k.M.StallAll(resume)
		return resume
	}
	m.Metrics.AddCollector(k.collectStats)
	return k
}

// NewKernelNoLogger builds a kernel without a logging device, for
// baselines that must not pay even the possibility of snooping.
func NewKernelNoLogger(cfg machine.Config) *Kernel {
	m := machine.New(cfg)
	k := &Kernel{M: m, owners: make(map[uint32]frameOwner)}
	m.Metrics.AddCollector(k.collectStats)
	return k
}

// collectStats publishes the kernel-level aggregates that live in kernel
// and segment structs (snapshot-time collection; no hot-path cost).
func (k *Kernel) collectStats(emit func(name string, v uint64)) {
	var lost uint64
	for _, s := range k.segments {
		if s.isLog {
			// LostRecords, not the raw field: an actively absorbing log's
			// in-flight loss lives in the hardware head until accounted.
			lost += s.LostRecords()
		}
	}
	emit("vm.log_records_lost_absorbed", lost)
	emit("vm.segments", uint64(len(k.segments)))
	emit("vm.address_spaces", uint64(k.addressSpaces))
	emit("vm.kernel_overloads", k.Overloads)
	if k.Log != nil {
		// Device-side loss and overload-resume accounting, counted in the
		// logger's own stats fields but previously absent from snapshots.
		emit("hwlogger.records_lost_total", k.Log.RecordsLost)
		emit("hwlogger.overload_resume_cycles", k.Log.StallCycles)
	}
}

// allocLogIndex reserves a hardware log-table slot.
func (k *Kernel) allocLogIndex() (uint16, error) {
	if len(k.freeLogIdx) == 0 {
		return 0, fmt.Errorf("vm: out of hardware log-table entries")
	}
	i := k.freeLogIdx[len(k.freeLogIdx)-1]
	k.freeLogIdx = k.freeLogIdx[:len(k.freeLogIdx)-1]
	return i, nil
}

func (k *Kernel) releaseLogIndex(i uint16) {
	if k.Log != nil {
		k.Log.InvalidateLog(i)
	}
	if k.Chip != nil {
		k.Chip.Invalidate(i)
	}
	k.freeLogIdx = append(k.freeLogIdx, i)
}

// kshard picks the metrics shard kernel work is charged to: the faulting
// CPU's shard when the kernel runs in a CPU's context, shard 0 otherwise.
func (k *Kernel) kshard(cpu *machineCPU) *metrics.Shard {
	if cpu != nil {
		return cpu.MS
	}
	return k.M.Metrics.Shard(0)
}

// tracer is the machine's event tracer (never nil; disabled by default).
func (k *Kernel) tracer() *metrics.Tracer { return k.M.Metrics.Tracer() }

// ReverseTranslate maps a physical address (as found in a prototype log
// record) back to the owning segment and byte offset within it. This is
// the software reverse translation discussed in Section 3.1.2: the
// FPGA logger stores physical addresses, so log consumers translate.
func (k *Kernel) ReverseTranslate(paddr phys.Addr) (seg *Segment, off uint32, ok bool) {
	o, found := k.owners[phys.PPN(paddr)]
	if !found {
		return nil, 0, false
	}
	return o.seg, o.page*PageSize + paddr&PageMask, true
}

// loadPMT installs the logger's page-mapping entry for data page `page`
// of segment s (resident in `frame`), clearing the absorb-enable bit when
// the page overlaps the segment's no-absorb prefix so marker-word writes
// are never coalesced.
func (k *Kernel) loadPMT(s *Segment, page, frame uint32, logIndex uint16) (displaced hwlogger.PMTEntry) {
	displaced = k.Log.LoadPMT(frame, logIndex)
	if s.noAbsorbLimit > 0 && page*PageSize < s.noAbsorbLimit {
		k.Log.SetPMTAbsorb(frame, false)
	}
	return displaced
}

// handleLoggingFault is the kernel's logging-fault handler (Section 3.2).
func (k *Kernel) handleLoggingFault(l *hwlogger.Logger, f hwlogger.Fault) bool {
	k.LoggingFaults++
	k.M.DeviceShard().Inc(metrics.VMLoggingFaults)
	switch f.Kind {
	case hwlogger.FaultMissingPMT:
		// A displaced page-mapping entry: reload it from the frame
		// ownership map if the owning segment is logged.
		o, found := k.owners[f.PPN]
		if !found || !o.seg.logged {
			return false
		}
		o.seg.loggingFaults++
		k.loadPMT(o.seg, o.page, f.PPN, o.seg.logIndex)
		if !l.LogHead(o.seg.logIndex).Valid {
			return k.advanceLogHead(o.seg.logTo)
		}
		return true
	case hwlogger.FaultInvalidLogAddr:
		// The log address crossed a page boundary: move the head to the
		// log segment's next page, or to the absorb page.
		for _, s := range k.segments {
			if s.isLog && s.logIdxValid && s.logIndex == f.LogIndex {
				s.loggingFaults++
				return k.advanceLogHead(s)
			}
		}
		return false
	}
	return false
}

// advanceLogHead points the hardware log head at the next page of the log
// segment, or at the kernel's absorb page when the user has not provided
// one ("If the user has not provided a page, the kernel uses a default log
// page to absorb the log records... Log records may be lost in this
// case.", Section 3.2).
func (k *Kernel) advanceLogHead(ls *Segment) bool {
	if ls == nil || !ls.logIdxValid {
		return false
	}
	k.accountAbsorbLoss(ls)
	if ls.nextPage < ls.NumPages() {
		frame, err := ls.ensureFrame(ls.nextPage)
		if err != nil {
			return false
		}
		ls.hwPage = ls.nextPage
		ls.nextPage++
		ls.absorbing = false
		k.Log.SetLogHead(ls.logIndex, phys.FrameBase(frame), ls.logMode)
		k.M.DeviceShard().Inc(metrics.VMLogHeadAdvances)
		k.tracer().Emit(k.M.MaxNow(), metrics.EvLogAdvance, -1, uint64(ls.id), uint64(ls.hwPage))
		return true
	}
	// Absorb: records land in the absorb frame and are lost.
	k.AbsorbedPages++
	ls.absorbing = true
	k.Log.SetLogHead(ls.logIndex, phys.FrameBase(k.absorbFrame), ls.logMode)
	k.M.DeviceShard().Inc(metrics.VMAbsorbedPages)
	k.tracer().Emit(k.M.MaxNow(), metrics.EvLogAbsorb, -1, uint64(ls.id), 0)
	return true
}

// accountAbsorbLoss tallies the records that landed in the absorb frame
// since it was last loaded for this log.
func (k *Kernel) accountAbsorbLoss(ls *Segment) {
	if !ls.absorbing || k.Log == nil {
		return
	}
	h := k.Log.LogHead(ls.logIndex)
	if h.Valid {
		ls.lostRecords += uint64(h.Addr-phys.FrameBase(k.absorbFrame)) / uint64(ls.recordSize())
	} else {
		// The absorb page filled completely before the head was moved.
		ls.lostRecords += uint64(PageSize / ls.recordSize())
	}
}

// setLogHeadAt points the hardware head at byte offset off of the log
// segment (used when logging is (re-)enabled: the head resumes at the end
// of the log segment data, Section 3.2).
func (k *Kernel) setLogHeadAt(ls *Segment, off uint32) error {
	k.accountAbsorbLoss(ls)
	page := off >> PageShift
	if page >= ls.NumPages() {
		// Already full: absorb from the start.
		ls.nextPage = ls.NumPages()
		return boolErr(k.advanceLogHead(ls), "vm: cannot start log head")
	}
	frame, err := ls.ensureFrame(page)
	if err != nil {
		return err
	}
	ls.hwPage = page
	ls.nextPage = page + 1
	ls.absorbing = false
	ls.started = true
	k.Log.SetLogHead(ls.logIndex, phys.FrameBase(frame)+(off&PageMask), ls.logMode)
	return nil
}

func boolErr(ok bool, msg string) error {
	if !ok {
		return fmt.Errorf("%s", msg)
	}
	return nil
}

// LogAppendOffset reports the byte offset within the log segment at which
// the next record will be written (i.e. the current end of the log data).
// Call Sync first to account for in-flight records.
func (k *Kernel) LogAppendOffset(ls *Segment) uint32 {
	if k.Chip != nil {
		return k.chipAppendOffset(ls)
	}
	if !ls.logIdxValid || !ls.started {
		return ls.savedOff
	}
	if ls.absorbing {
		return ls.NumPages() * PageSize
	}
	h := k.Log.LogHead(ls.logIndex)
	if !h.Valid {
		// The head invalidated itself at a page crossing: the page
		// before nextPage is full.
		return ls.nextPage * PageSize
	}
	return ls.hwPage*PageSize + (h.Addr & PageMask)
}

// TruncateLog discards the contents of a log segment and moves the append
// position back to its start (log truncation, Sections 2.4 and 4.2).
func (k *Kernel) TruncateLog(ls *Segment) error {
	return k.RewindLog(ls, 0)
}

// RewindLog moves a log segment's append position back to byte offset off,
// discarding the records at and beyond it. RLVM uses this to drop the
// records of an aborted transaction. In-flight records are drained first.
func (k *Kernel) RewindLog(ls *Segment, off uint32) error {
	if !ls.isLog {
		return fmt.Errorf("vm: RewindLog on non-log segment %q", ls.name)
	}
	k.Sync()
	ls.savedOff = off
	k.kshard(nil).Inc(metrics.VMLogRewinds)
	k.tracer().Emit(k.M.MaxNow(), metrics.EvLogRewind, -1, uint64(ls.id), uint64(off))
	if !ls.logIdxValid {
		return nil
	}
	if k.Chip != nil {
		return k.setChipHeadAt(ls, off)
	}
	return k.setLogHeadAt(ls, off)
}

// Sync completes all in-flight logger work (the "synchronize on the end of
// the log" of Section 2.6) and returns the cycle at which the machine went
// idle.
func (k *Kernel) Sync() uint64 { return k.M.Drain() }
