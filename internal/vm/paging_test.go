package vm

import (
	"testing"
)

// memStore is a PageStore keeping evicted pages in a map.
type memStore struct {
	pages map[uint32][PageSize]byte
}

func newMemStore() *memStore { return &memStore{pages: map[uint32][PageSize]byte{}} }

func (m *memStore) FillPage(_ *Segment, page uint32, data *[PageSize]byte) {
	if saved, ok := m.pages[page]; ok {
		*data = saved
	}
}

func (m *memStore) StorePage(_ *Segment, page uint32, data *[PageSize]byte) {
	m.pages[page] = *data
}

func TestEvictAndRefaultPreservesData(t *testing.T) {
	k := testKernel()
	store := newMemStore()
	s := k.NewSegment("paged", 4*PageSize, store)
	r := k.NewRegion(s)
	as := k.NewAddressSpace()
	base, _ := r.Bind(as, 0)
	p := k.NewProcess(0, as)
	p.Store32(base+8, 1234)
	frames := k.M.Phys.Allocated()
	if err := k.EvictPage(s, 0); err != nil {
		t.Fatal(err)
	}
	if k.M.Phys.Allocated() != frames-1 {
		t.Fatalf("frame not released")
	}
	if s.Resident(0) {
		t.Fatalf("page still resident")
	}
	// The next access re-faults and reads the stored contents.
	if got := p.Load32(base + 8); got != 1234 {
		t.Fatalf("after refault = %d", got)
	}
}

func TestEvictWithoutStoreLosesData(t *testing.T) {
	k := testKernel()
	s := k.NewSegment("volatile", PageSize, nil) // zero-fill manager
	r := k.NewRegion(s)
	as := k.NewAddressSpace()
	base, _ := r.Bind(as, 0)
	p := k.NewProcess(0, as)
	p.Store32(base, 7)
	if err := k.EvictPage(s, 0); err != nil {
		t.Fatal(err)
	}
	if got := p.Load32(base); got != 0 {
		t.Fatalf("zero-fill refault = %d", got)
	}
}

func TestEvictLoggedPageReloadsPMT(t *testing.T) {
	k := testKernel()
	store := newMemStore()
	s := k.NewSegment("data", PageSize, store)
	ls := k.NewLogSegment("log", 4)
	r := k.NewRegion(s)
	if err := r.Log(ls); err != nil {
		t.Fatal(err)
	}
	as := k.NewAddressSpace()
	base, _ := r.Bind(as, 0)
	p := k.NewProcess(0, as)
	p.Store32(base, 1)
	k.Sync()
	if err := k.EvictPage(s, 0); err != nil {
		t.Fatal(err)
	}
	// After refault, logging continues into the same log.
	p.Store32(base+4, 2)
	k.Sync()
	if got := k.LogAppendOffset(ls) / 16; got != 2 {
		t.Fatalf("records = %d, want 2", got)
	}
	if s.Read32(0) != 1 || s.Read32(4) != 2 {
		t.Fatalf("data lost across eviction")
	}
}

func TestEvictDeferredCopyDestinationRejected(t *testing.T) {
	k := testKernel()
	src := k.NewSegment("src", PageSize, nil)
	dst := k.NewSegment("dst", PageSize, nil)
	mustSource(t, dst, src, 0)
	dst.Write32(0, 1)
	if err := k.EvictPage(dst, 0); err == nil {
		t.Fatalf("evicted a deferred-copy destination")
	}
}

func TestEvictActiveLogHeadRejected(t *testing.T) {
	k := testKernel()
	_, _, ls, p, base := setupLogged(t, k, 1, 4)
	p.Store32(base, 1)
	k.Sync()
	if err := k.EvictPage(ls, 0); err == nil {
		t.Fatalf("evicted the active log head page")
	}
}

func TestReclaimFrames(t *testing.T) {
	k := testKernel()
	store := newMemStore()
	s := k.NewSegment("big", 8*PageSize, store)
	r := k.NewRegion(s)
	as := k.NewAddressSpace()
	base, _ := r.Bind(as, 0)
	p := k.NewProcess(0, as)
	for i := uint32(0); i < 8; i++ {
		p.Store32(base+i*PageSize, i)
	}
	if got := k.ReclaimFrames(3); got != 3 {
		t.Fatalf("reclaimed %d, want 3", got)
	}
	if k.Evictions != 3 {
		t.Fatalf("evictions = %d", k.Evictions)
	}
	// Everything still readable.
	for i := uint32(0); i < 8; i++ {
		if got := p.Load32(base + i*PageSize); got != i {
			t.Fatalf("page %d = %d", i, got)
		}
	}
}

func TestEvictInvalidatesAllMappings(t *testing.T) {
	k := testKernel()
	store := newMemStore()
	s := k.NewSegment("shared", PageSize, store)
	r1 := k.NewRegion(s)
	r2 := k.NewRegion(s)
	as1 := k.NewAddressSpace()
	as2 := k.NewAddressSpace()
	b1, _ := r1.Bind(as1, 0)
	b2, _ := r2.Bind(as2, 0)
	p1 := k.NewProcess(0, as1)
	p2 := k.NewProcess(1, as2)
	p1.Store32(b1, 5)
	if got := p2.Load32(b2); got != 5 {
		t.Fatalf("sharing broken")
	}
	if err := k.EvictPage(s, 0); err != nil {
		t.Fatal(err)
	}
	// Both mappings must re-fault onto the (possibly new) frame and see
	// the stored data.
	if got := p2.Load32(b2); got != 5 {
		t.Fatalf("as2 after evict = %d", got)
	}
	p2.Store32(b2, 6)
	if got := p1.Load32(b1); got != 6 {
		t.Fatalf("as1 after evict = %d", got)
	}
}
