package vm

import (
	"fmt"

	"lvm/internal/cycles"
	"lvm/internal/machine"
	"lvm/internal/metrics"
)

// ResetStats reports what a ResetDeferredCopy did.
type ResetStats struct {
	PagesScanned int
	DirtyPages   int
	LinesReset   int
	// Cycles is the cost charged for the reset.
	Cycles uint64
}

// ResetDeferredCopy undoes all modifications to deferred-copy destination
// pages in the virtual address range [start, end): for each address mapped
// in deferred-copy mode, the next read returns the datum from the
// deferred-copy source (Table 1: AddressSpace::resetDeferredCopy).
//
// Per Section 3.3, the implementation checks the per-page dirty bit to
// skip clean pages, and for dirty pages it invalidates the modified cache
// lines and re-points their sources at the source segment — no data is
// copied. The cost charged is therefore proportional to the amount of
// dirty data, which is what gives Figure 9 its shape.
func (a *AddressSpace) ResetDeferredCopy(start, end Addr, cpu *machine.CPU) (ResetStats, error) {
	var st ResetStats
	if end < start {
		return st, fmt.Errorf("vm: ResetDeferredCopy: end %#x < start %#x", end, start)
	}
	for vp := start >> PageShift; vp < (end+PageSize-1)>>PageShift; vp++ {
		e, ok := a.pt[vp]
		if !ok || e.seg.source == nil {
			continue
		}
		st.PagesScanned++
		st.Cycles += cycles.ResetPageCheckCycles
		p := &e.seg.pages[e.segPage]
		if p.frame == 0 || !p.dirty {
			continue
		}
		st.DirtyPages++
		lines := 0
		for w := range p.lineDirty {
			lines += popcount(p.lineDirty[w])
			p.lineDirty[w] = 0
			p.fromSource[w] = ^uint64(0)
		}
		p.dirty = false
		st.LinesReset += lines
		st.Cycles += uint64(lines) * cycles.ResetLineCycles
		if cpu != nil {
			// The processor's own cached copies of the page must go too.
			cpu.D1.InvalidatePage(uint32(vp) << PageShift)
		}
	}
	if cpu != nil {
		cpu.Compute(st.Cycles)
	}
	a.k.noteDeferredReset(cpu, st)
	return st, nil
}

// noteDeferredReset publishes one reset's work to the metrics layer
// (Figure 9's quantities: resets, dirty pages found, lines re-pointed).
func (k *Kernel) noteDeferredReset(cpu *machineCPU, st ResetStats) {
	sh := k.kshard(cpu)
	sh.Inc(metrics.VMDeferredResets)
	sh.Add(metrics.VMDeferredDirtyPages, uint64(st.DirtyPages))
	sh.Add(metrics.VMDeferredLinesReset, uint64(st.LinesReset))
}

// ResetDeferredCopySegment resets every page of a deferred-copy
// destination segment directly (without going through a bound region).
func (k *Kernel) ResetDeferredCopySegment(s *Segment, cpu *machine.CPU) (ResetStats, error) {
	var st ResetStats
	if s.source == nil {
		return st, fmt.Errorf("vm: segment %q has no deferred-copy source", s.name)
	}
	for i := range s.pages {
		st.PagesScanned++
		st.Cycles += cycles.ResetPageCheckCycles
		p := &s.pages[i]
		if p.frame == 0 || !p.dirty {
			continue
		}
		st.DirtyPages++
		lines := 0
		for w := range p.lineDirty {
			lines += popcount(p.lineDirty[w])
			p.lineDirty[w] = 0
			p.fromSource[w] = ^uint64(0)
		}
		p.dirty = false
		st.LinesReset += lines
		st.Cycles += uint64(lines) * cycles.ResetLineCycles
	}
	if cpu != nil {
		cpu.Compute(st.Cycles)
		cpu.D1.InvalidateAll()
	}
	k.noteDeferredReset(cpu, st)
	return st, nil
}

// Bcopy copies n bytes from srcOff in src to dstOff in dst, charging the
// conventional block-copy cost (a block read plus a block write per
// 16-byte line). This is the baseline resetDeferredCopy is compared
// against in Section 4.4 / Figure 9.
func (k *Kernel) Bcopy(cpu *machine.CPU, dst *Segment, dstOff uint32, src *Segment, srcOff uint32, n uint32) error {
	if n == 0 {
		return nil
	}
	if dstOff+n > dst.size || srcOff+n > src.size {
		return fmt.Errorf("vm: Bcopy out of range")
	}
	buf := make([]byte, n)
	src.readInto(srcOff, buf)
	if err := dst.writeBytes(dstOff, buf); err != nil {
		return err
	}
	lines := uint64((n + LineSize - 1) / LineSize)
	if cpu != nil {
		cpu.Compute(lines * cycles.BcopyLineCycles)
	}
	return nil
}
