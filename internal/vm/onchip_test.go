package vm

import (
	"testing"

	"lvm/internal/cycles"
	"lvm/internal/logrec"
	"lvm/internal/machine"
)

func chipKernel() *Kernel {
	return NewKernelOnChip(machine.Config{NumCPUs: 2, MemFrames: 2048})
}

func setupChipLogged(t *testing.T, k *Kernel, segPages, logPages uint32) (*Region, *Segment, *Segment, *Process, Addr) {
	t.Helper()
	s := k.NewSegment("data", segPages*PageSize, nil)
	ls := k.NewLogSegment("log", logPages)
	r := k.NewRegion(s)
	if err := r.Log(ls); err != nil {
		t.Fatal(err)
	}
	as := k.NewAddressSpace()
	base, err := r.Bind(as, 0)
	if err != nil {
		t.Fatal(err)
	}
	return r, s, ls, k.NewProcess(0, as), base
}

func TestOnChipRecordsVirtualAddresses(t *testing.T) {
	k := chipKernel()
	_, _, ls, p, base := setupChipLogged(t, k, 1, 4)
	p.Store32(base+0x20, 77)
	k.Sync()
	rec := logrec.Decode(ls.RawRead(0, logrec.Size))
	if rec.Addr != base+0x20 {
		t.Fatalf("record addr = %#x, want virtual %#x (Section 4.6)", rec.Addr, base+0x20)
	}
	if rec.Value != 77 {
		t.Fatalf("record = %+v", rec)
	}
	seg, off, ok := k.ResolveLogAddr(ls, rec.Addr)
	if !ok || off != 0x20 || seg == nil {
		t.Fatalf("ResolveLogAddr = %v %d %v", seg, off, ok)
	}
}

func TestOnChipLoggedWritesStayWriteBack(t *testing.T) {
	k := chipKernel()
	_, _, _, p, base := setupChipLogged(t, k, 1, 4)
	p.Store32(base, 1) // fault
	// Steady-state logged write: same cost as an unlogged write-back
	// store (L1 hit = 1 cycle) — "essentially the same as unlogged
	// writes" (Section 4.6).
	start := p.CPU.Now
	p.Store32(base+4, 2) // same L1 line: hit
	if got := p.CPU.Now - start; got != cycles.L1HitCycles {
		t.Fatalf("on-chip logged write cost = %d, want %d", got, cycles.L1HitCycles)
	}
}

func TestOnChipPerRegionLogsOnOneSegment(t *testing.T) {
	// Two regions mapping the SAME segment log to DIFFERENT segments —
	// impossible with the prototype (Section 3.1.2), natural on-chip.
	k := chipKernel()
	s := k.NewSegment("shared", PageSize, nil)
	r1 := k.NewRegion(s)
	r2 := k.NewRegion(s)
	ls1 := k.NewLogSegment("l1", 2)
	ls2 := k.NewLogSegment("l2", 2)
	if err := r1.Log(ls1); err != nil {
		t.Fatal(err)
	}
	if err := r2.Log(ls2); err != nil {
		t.Fatalf("second logged region rejected on-chip: %v", err)
	}
	as1 := k.NewAddressSpace()
	as2 := k.NewAddressSpace()
	b1, _ := r1.Bind(as1, 0)
	b2, _ := r2.Bind(as2, 0)
	p1 := k.NewProcess(0, as1)
	p2 := k.NewProcess(1, as2)
	p1.Store32(b1+8, 111)
	p2.Store32(b2+12, 222)
	k.Sync()
	if got := k.LogAppendOffset(ls1); got != logrec.Size {
		t.Fatalf("log1 offset = %d", got)
	}
	if got := k.LogAppendOffset(ls2); got != logrec.Size {
		t.Fatalf("log2 offset = %d", got)
	}
	r1rec := logrec.Decode(ls1.RawRead(0, logrec.Size))
	r2rec := logrec.Decode(ls2.RawRead(0, logrec.Size))
	if r1rec.Value != 111 || r2rec.Value != 222 {
		t.Fatalf("per-process logs mixed: %v / %v", r1rec, r2rec)
	}
	// Both wrote the same underlying segment.
	if s.Read32(8) != 111 || s.Read32(12) != 222 {
		t.Fatalf("shared segment data wrong")
	}
}

func TestOnChipLogSpansPages(t *testing.T) {
	k := chipKernel()
	_, _, ls, p, base := setupChipLogged(t, k, 1, 4)
	for i := uint32(0); i < 600; i++ {
		p.Store32(base+(i%1024)*4, i)
	}
	k.Sync()
	if got := k.LogAppendOffset(ls); got != 600*logrec.Size {
		t.Fatalf("append offset = %d, want %d", got, 600*logrec.Size)
	}
	rec := logrec.Decode(ls.RawRead(300*logrec.Size, logrec.Size))
	if rec.Value != 300 {
		t.Fatalf("record 300 = %+v", rec)
	}
	if ls.LostRecords() != 0 {
		t.Fatalf("lost %d records", ls.LostRecords())
	}
}

func TestOnChipAbsorbAndExtend(t *testing.T) {
	k := chipKernel()
	_, _, ls, p, base := setupChipLogged(t, k, 1, 1)
	for i := uint32(0); i < 300; i++ {
		p.Store32(base, i)
	}
	k.Sync()
	if ls.LostRecords() == 0 {
		t.Fatalf("no records lost on overflow")
	}
	lost := ls.LostRecords()
	ls.Extend(4)
	p.Store32(base, 9999)
	k.Sync()
	if ls.LostRecords() != lost {
		t.Fatalf("still losing after extend")
	}
	rec := logrec.Decode(ls.RawRead(256*logrec.Size, logrec.Size))
	if rec.Value != 9999 {
		t.Fatalf("first record after extend = %+v", rec)
	}
}

func TestOnChipNoOverloadEver(t *testing.T) {
	k := chipKernel()
	_, _, _, p, base := setupChipLogged(t, k, 1, 64)
	for i := uint32(0); i < 3000; i++ {
		p.Store32(base+(i%1024)*4, i) // zero compute between writes
	}
	if k.Overloads != 0 {
		t.Fatalf("on-chip design overloaded")
	}
	if k.Chip.StallEvents == 0 {
		t.Fatalf("write buffer never stalled despite back-to-back writes")
	}
}

func TestOnChipUnlogAndRelog(t *testing.T) {
	k := chipKernel()
	r, _, ls, p, base := setupChipLogged(t, k, 1, 4)
	p.Store32(base, 1)
	k.Sync()
	off1 := k.LogAppendOffset(ls)
	r.Unlog()
	p.Store32(base+4, 2)
	k.Sync()
	if got := k.LogAppendOffset(ls); got != off1 {
		t.Fatalf("log grew while disabled")
	}
	if err := r.Log(ls); err != nil {
		t.Fatal(err)
	}
	p.Store32(base+8, 3)
	k.Sync()
	if got := k.LogAppendOffset(ls); got != off1+logrec.Size {
		t.Fatalf("log after re-enable = %d", got)
	}
}

func TestOnChipRewind(t *testing.T) {
	k := chipKernel()
	_, _, ls, p, base := setupChipLogged(t, k, 1, 4)
	for i := uint32(0); i < 10; i++ {
		p.Store32(base, i)
	}
	if err := k.RewindLog(ls, 4*logrec.Size); err != nil {
		t.Fatal(err)
	}
	p.Store32(base, 100)
	k.Sync()
	if got := k.LogAppendOffset(ls); got != 5*logrec.Size {
		t.Fatalf("offset after rewind+write = %d", got)
	}
	rec := logrec.Decode(ls.RawRead(4*logrec.Size, logrec.Size))
	if rec.Value != 100 {
		t.Fatalf("record after rewind = %+v", rec)
	}
}

func TestOnChipDeferredCopyInterop(t *testing.T) {
	// The full RLVM-style arrangement on the on-chip kernel: logged
	// working segment over a checkpoint source.
	k := chipKernel()
	ckpt := k.NewSegment("ckpt", PageSize, nil)
	ckpt.Write32(0x10, 5)
	work := k.NewSegment("work", PageSize, nil)
	if err := work.SetSourceSegment(ckpt, 0); err != nil {
		t.Fatal(err)
	}
	r := k.NewRegion(work)
	ls := k.NewLogSegment("log", 4)
	if err := r.Log(ls); err != nil {
		t.Fatal(err)
	}
	as := k.NewAddressSpace()
	base, _ := r.Bind(as, 0)
	p := k.NewProcess(0, as)
	if got := p.Load32(base + 0x10); got != 5 {
		t.Fatalf("read-through = %d", got)
	}
	p.Store32(base+0x10, 6)
	if _, err := as.ResetDeferredCopy(base, base+PageSize, p.CPU); err != nil {
		t.Fatal(err)
	}
	if got := p.Load32(base + 0x10); got != 5 {
		t.Fatalf("after reset = %d", got)
	}
	k.Sync()
	if got := k.LogAppendOffset(ls); got != logrec.Size {
		t.Fatalf("log records = %d bytes", got)
	}
}
