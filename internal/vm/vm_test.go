package vm

import (
	"testing"

	"lvm/internal/cycles"
	"lvm/internal/logrec"
	"lvm/internal/machine"
)

func testKernel() *Kernel {
	return NewKernel(machine.Config{NumCPUs: 2, MemFrames: 1024})
}

// mustSource wires dst's deferred-copy source, failing the test on error.
func mustSource(t *testing.T, dst, src *Segment, off uint32) {
	t.Helper()
	if err := dst.SetSourceSegment(src, off); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentZeroFill(t *testing.T) {
	k := testKernel()
	s := k.NewSegment("s", 2*PageSize, nil)
	if s.Read32(100) != 0 {
		t.Fatalf("fresh segment not zero")
	}
	s.Write32(100, 42)
	if s.Read32(100) != 42 {
		t.Fatalf("raw write lost")
	}
}

type patternFill struct{ v byte }

func (p patternFill) FillPage(_ *Segment, page uint32, data *[PageSize]byte) {
	for i := range data {
		data[i] = p.v + byte(page)
	}
}

func TestSegmentManagerFillsPages(t *testing.T) {
	k := testKernel()
	s := k.NewSegment("s", 2*PageSize, patternFill{v: 7})
	if got := s.RawRead(0, 1)[0]; got != 0 {
		// Non-resident read does not fault in: it reads zero.
		t.Fatalf("non-resident read = %d, want 0", got)
	}
	if _, err := s.ensureFrame(0); err != nil {
		t.Fatal(err)
	}
	if got := s.RawRead(10, 1)[0]; got != 7 {
		t.Fatalf("page 0 fill = %d, want 7", got)
	}
	if _, err := s.ensureFrame(1); err != nil {
		t.Fatal(err)
	}
	if got := s.RawRead(PageSize+10, 1)[0]; got != 8 {
		t.Fatalf("page 1 fill = %d, want 8", got)
	}
}

func TestBindAndStoreLoad(t *testing.T) {
	k := testKernel()
	s := k.NewSegment("s", PageSize, nil)
	r := k.NewRegion(s)
	as := k.NewAddressSpace()
	base, err := r.Bind(as, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := k.NewProcess(0, as)
	p.Store32(base+16, 0xABCD)
	if got := p.Load32(base + 16); got != 0xABCD {
		t.Fatalf("load = %#x", got)
	}
	if got := s.Read32(16); got != 0xABCD {
		t.Fatalf("segment data = %#x", got)
	}
}

func TestBindAtFixedAddress(t *testing.T) {
	k := testKernel()
	s := k.NewSegment("s", PageSize, nil)
	r := k.NewRegion(s)
	as := k.NewAddressSpace()
	base, err := r.Bind(as, 0x2000_0000)
	if err != nil || base != 0x2000_0000 {
		t.Fatalf("bind = %#x, %v", base, err)
	}
	s2 := k.NewSegment("s2", PageSize, nil)
	r2 := k.NewRegion(s2)
	if _, err := r2.Bind(as, 0x2000_0000); err == nil {
		t.Fatalf("overlapping bind succeeded")
	}
	if _, err := r2.Bind(as, 0x2000_0004); err == nil {
		t.Fatalf("unaligned bind succeeded")
	}
}

func TestUnmappedAccessPanics(t *testing.T) {
	k := testKernel()
	p := k.NewProcess(0, k.NewAddressSpace())
	defer func() {
		if recover() == nil {
			t.Fatalf("store to unmapped address did not panic")
		}
	}()
	p.Store32(0xDEAD0000, 1)
}

func TestUnalignedAccessPanics(t *testing.T) {
	k := testKernel()
	s := k.NewSegment("s", PageSize, nil)
	r := k.NewRegion(s)
	as := k.NewAddressSpace()
	base, _ := r.Bind(as, 0)
	p := k.NewProcess(0, as)
	defer func() {
		if recover() == nil {
			t.Fatalf("unaligned store did not panic")
		}
	}()
	p.Store32(base+2, 1)
}

func setupLogged(t *testing.T, k *Kernel, segPages, logPages uint32) (*Region, *Segment, *Segment, *Process, Addr) {
	t.Helper()
	s := k.NewSegment("data", segPages*PageSize, nil)
	ls := k.NewLogSegment("log", logPages)
	r := k.NewRegion(s)
	if err := r.Log(ls); err != nil {
		t.Fatal(err)
	}
	as := k.NewAddressSpace()
	base, err := r.Bind(as, 0)
	if err != nil {
		t.Fatal(err)
	}
	return r, s, ls, k.NewProcess(0, as), base
}

func TestLoggedWritesProduceRecords(t *testing.T) {
	k := testKernel()
	_, s, ls, p, base := setupLogged(t, k, 1, 4)
	p.Store32(base+0x10, 111)
	p.Store32(base+0x20, 222)
	p.Store16(base+0x30, 333)
	p.Store8(base+0x33, 44)
	k.Sync()
	end := k.LogAppendOffset(ls)
	if end != 4*logrec.Size {
		t.Fatalf("append offset = %d, want %d", end, 4*logrec.Size)
	}
	recs := logrec.DecodeAll(ls.RawRead(0, end))
	wantVals := []uint32{111, 222, 333, 44}
	wantSizes := []uint16{4, 4, 2, 1}
	for i, rec := range recs {
		if rec.Value != wantVals[i] || rec.WriteSize != wantSizes[i] {
			t.Fatalf("record %d = %+v", i, rec)
		}
		seg, off, ok := k.ReverseTranslate(rec.Addr)
		if !ok || seg != s {
			t.Fatalf("record %d reverse translation failed", i)
		}
		if i == 0 && off != 0x10 {
			t.Fatalf("record 0 offset = %#x", off)
		}
	}
	// Timestamps non-decreasing.
	for i := 1; i < len(recs); i++ {
		if recs[i].Timestamp < recs[i-1].Timestamp {
			t.Fatalf("timestamps out of order")
		}
	}
}

func TestUnloggedWritesProduceNoRecords(t *testing.T) {
	k := testKernel()
	s := k.NewSegment("data", PageSize, nil)
	r := k.NewRegion(s)
	as := k.NewAddressSpace()
	base, _ := r.Bind(as, 0)
	p := k.NewProcess(0, as)
	for i := uint32(0); i < 100; i++ {
		p.Store32(base+i*4, i)
	}
	k.Sync()
	if k.Log.RecordsWritten != 0 {
		t.Fatalf("unlogged region produced %d records", k.Log.RecordsWritten)
	}
}

func TestLogSpansPagesViaLoggingFaults(t *testing.T) {
	k := testKernel()
	_, _, ls, p, base := setupLogged(t, k, 1, 4)
	// One page holds 256 records; write 600 to span 3 pages.
	for i := uint32(0); i < 600; i++ {
		p.Store32(base+(i%1024)*4, i)
	}
	k.Sync()
	if got := k.LogAppendOffset(ls); got != 600*logrec.Size {
		t.Fatalf("append offset = %d, want %d", got, 600*logrec.Size)
	}
	if k.LoggingFaults < 2 {
		t.Fatalf("expected page-crossing logging faults, got %d", k.LoggingFaults)
	}
	// Record 300 lives on page 1 and must be intact.
	rec := logrec.Decode(ls.RawRead(300*logrec.Size, logrec.Size))
	if rec.Value != 300 {
		t.Fatalf("record 300 = %+v", rec)
	}
	if ls.LostRecords() != 0 {
		t.Fatalf("lost %d records with space available", ls.LostRecords())
	}
}

func TestLogOverflowAbsorbs(t *testing.T) {
	k := testKernel()
	_, _, ls, p, base := setupLogged(t, k, 1, 1) // one page = 256 records
	for i := uint32(0); i < 300; i++ {
		p.Store32(base, i)
	}
	k.Sync()
	if ls.LostRecords() == 0 {
		t.Fatalf("no records lost despite overflow")
	}
	if k.AbsorbedPages == 0 {
		t.Fatalf("absorb page never used")
	}
	// The first 256 records are intact.
	rec := logrec.Decode(ls.RawRead(255*logrec.Size, logrec.Size))
	if rec.Value != 255 {
		t.Fatalf("record 255 = %+v", rec)
	}
}

func TestExtendRecoversFromAbsorb(t *testing.T) {
	k := testKernel()
	_, _, ls, p, base := setupLogged(t, k, 1, 1)
	for i := uint32(0); i < 300; i++ {
		p.Store32(base, i)
	}
	k.Sync()
	lost := ls.LostRecords()
	ls.Extend(4)
	for i := uint32(0); i < 100; i++ {
		p.Store32(base, 1000+i)
	}
	k.Sync()
	if ls.LostRecords() != lost {
		t.Fatalf("still losing records after extend")
	}
	// New records continue on the extended pages.
	rec := logrec.Decode(ls.RawRead(256*logrec.Size, logrec.Size))
	if rec.Value < 1000 {
		t.Fatalf("first record after extend = %+v", rec)
	}
}

func TestWriteThroughModeSetOnLoggedPages(t *testing.T) {
	k := testKernel()
	_, _, _, p, base := setupLogged(t, k, 1, 2)
	start := p.CPU.Now
	p.Store32(base, 1) // page fault + write-through
	faultCost := p.CPU.Now - start
	if faultCost < cycles.PageFaultCycles {
		t.Fatalf("first touch cost %d < page fault cost", faultCost)
	}
	start = p.CPU.Now
	p.Store32(base+4, 2)
	if got := p.CPU.Now - start; got != cycles.WordWriteThroughTotal {
		t.Fatalf("logged write cost = %d, want %d", got, cycles.WordWriteThroughTotal)
	}
}

func TestDynamicUnlogAndRelog(t *testing.T) {
	k := testKernel()
	r, _, ls, p, base := setupLogged(t, k, 1, 4)
	p.Store32(base, 1)
	k.Sync()
	off1 := k.LogAppendOffset(ls)
	r.Unlog()
	p.Store32(base+4, 2) // not logged
	k.Sync()
	if got := k.LogAppendOffset(ls); got != off1 {
		t.Fatalf("log grew while disabled: %d -> %d", off1, got)
	}
	if err := r.Log(ls); err != nil {
		t.Fatal(err)
	}
	p.Store32(base+8, 3)
	k.Sync()
	if got := k.LogAppendOffset(ls); got != off1+logrec.Size {
		t.Fatalf("log after re-enable = %d, want %d", got, off1+logrec.Size)
	}
	rec := logrec.Decode(ls.RawRead(off1, logrec.Size))
	if rec.Value != 3 {
		t.Fatalf("record after re-enable = %+v", rec)
	}
}

func TestOneActiveLogPerSegment(t *testing.T) {
	// The prototype's physical page-mapping table supports one ACTIVE
	// log per segment; a second region's log registers but stays
	// inactive until a context switch activates it (Section 3.1.2).
	k := testKernel()
	s := k.NewSegment("data", PageSize, nil)
	r1 := k.NewRegion(s)
	r2 := k.NewRegion(s)
	ls1 := k.NewLogSegment("l1", 2)
	ls2 := k.NewLogSegment("l2", 2)
	if err := r1.Log(ls1); err != nil {
		t.Fatal(err)
	}
	if err := r2.Log(ls2); err != nil {
		t.Fatalf("second log registration failed: %v", err)
	}
	as1 := k.NewAddressSpace()
	as2 := k.NewAddressSpace()
	b1, _ := r1.Bind(as1, 0)
	b2, _ := r2.Bind(as2, 0)
	p1 := k.NewProcess(0, as1)
	p2 := k.NewProcess(0, as2)
	// r1's log is active: writes through EITHER region land in ls1.
	p1.Store32(b1, 1)
	p2.Store32(b2+4, 2)
	k.Sync()
	if got := k.LogAppendOffset(ls1) / 16; got != 2 {
		t.Fatalf("active log records = %d, want 2", got)
	}
	if got := k.LogAppendOffset(ls2); got != 0 {
		t.Fatalf("inactive log grew: %d", got)
	}
}

func TestContextSwitchSelectsPerProcessLog(t *testing.T) {
	// Section 2.5: "Using a separate log per region means that each
	// process can have a separate log so transactions are not randomly
	// intermixed in the log" — realized on the prototype hardware by
	// reloading the logger tables at context-switch time.
	k := testKernel()
	s := k.NewSegment("shared-db", PageSize, nil)
	r1 := k.NewRegion(s)
	r2 := k.NewRegion(s)
	ls1 := k.NewLogSegment("proc1-log", 4)
	ls2 := k.NewLogSegment("proc2-log", 4)
	if err := r1.Log(ls1); err != nil {
		t.Fatal(err)
	}
	if err := r2.Log(ls2); err != nil {
		t.Fatal(err)
	}
	as1 := k.NewAddressSpace()
	as2 := k.NewAddressSpace()
	b1, _ := r1.Bind(as1, 0)
	b2, _ := r2.Bind(as2, 0)
	p := k.NewProcess(0, as1)

	// Process 1 runs.
	p.Store32(b1, 101)
	p.Store32(b1+4, 102)
	// Switch to process 2.
	if err := k.ContextSwitch(p, as2); err != nil {
		t.Fatal(err)
	}
	p.Store32(b2+8, 201)
	// And back.
	if err := k.ContextSwitch(p, as1); err != nil {
		t.Fatal(err)
	}
	p.Store32(b1+12, 103)
	k.Sync()

	if got := k.LogAppendOffset(ls1) / 16; got != 3 {
		t.Fatalf("process 1 log records = %d, want 3", got)
	}
	if got := k.LogAppendOffset(ls2) / 16; got != 1 {
		t.Fatalf("process 2 log records = %d, want 1", got)
	}
	rec := logrec.Decode(ls2.RawRead(0, 16))
	if rec.Value != 201 {
		t.Fatalf("process 2 record = %+v", rec)
	}
	// The shared data is all there regardless of which log captured it.
	if s.Read32(0) != 101 || s.Read32(8) != 201 || s.Read32(12) != 103 {
		t.Fatalf("shared data wrong")
	}
}

func TestDeactivateStopsLogging(t *testing.T) {
	k := testKernel()
	_, s, ls, p, base := func() (*Region, *Segment, *Segment, *Process, Addr) {
		return setupLoggedHelper(t, k)
	}()
	p.Store32(base, 1)
	k.Sync()
	k.Deactivate(s)
	p.Store32(base+4, 2)
	k.Sync()
	if got := k.LogAppendOffset(ls) / 16; got != 1 {
		t.Fatalf("records after deactivate = %d, want 1", got)
	}
}

func setupLoggedHelper(t *testing.T, k *Kernel) (*Region, *Segment, *Segment, *Process, Addr) {
	t.Helper()
	return setupLogged(t, k, 1, 4)
}

func TestSharedSegmentTwoAddressSpaces(t *testing.T) {
	k := testKernel()
	s := k.NewSegment("shared", PageSize, nil)
	r1 := k.NewRegion(s)
	r2 := k.NewRegion(s)
	as1 := k.NewAddressSpace()
	as2 := k.NewAddressSpace()
	b1, _ := r1.Bind(as1, 0)
	b2, _ := r2.Bind(as2, 0)
	p1 := k.NewProcess(0, as1)
	p2 := k.NewProcess(1, as2)
	p1.Store32(b1+40, 777)
	if got := p2.Load32(b2 + 40); got != 777 {
		t.Fatalf("shared segment not shared: %d", got)
	}
}

// --- Deferred copy (Section 2.3 / 3.3) ---

func TestDeferredCopyReadsThrough(t *testing.T) {
	k := testKernel()
	src := k.NewSegment("src", PageSize, nil)
	src.Write32(0x40, 1234)
	dst := k.NewSegment("dst", PageSize, nil)
	if err := dst.SetSourceSegment(src, 0); err != nil {
		t.Fatal(err)
	}
	if got := dst.Read32(0x40); got != 1234 {
		t.Fatalf("deferred read = %d, want 1234", got)
	}
}

func TestDeferredCopyWritesDoNotTouchSource(t *testing.T) {
	k := testKernel()
	src := k.NewSegment("src", PageSize, nil)
	src.Write32(0x40, 1234)
	dst := k.NewSegment("dst", PageSize, nil)
	mustSource(t, dst, src, 0)
	dst.Write32(0x40, 5678)
	if got := dst.Read32(0x40); got != 5678 {
		t.Fatalf("dst after write = %d", got)
	}
	if got := src.Read32(0x40); got != 1234 {
		t.Fatalf("source modified: %d", got)
	}
	// Partial-line write keeps neighbouring source bytes.
	src.Write32(0x80, 0xAAAAAAAA)
	src.Write32(0x84, 0xBBBBBBBB)
	dst.Write32(0x80, 1)
	if got := dst.Read32(0x84); got != 0xBBBBBBBB {
		t.Fatalf("partial-line materialization lost neighbour: %#x", got)
	}
}

func TestDeferredCopyWithOffset(t *testing.T) {
	k := testKernel()
	src := k.NewSegment("src", 2*PageSize, nil)
	src.Write32(PageSize+0x10, 99)
	dst := k.NewSegment("dst", PageSize, nil)
	if err := dst.SetSourceSegment(src, PageSize); err != nil {
		t.Fatal(err)
	}
	if got := dst.Read32(0x10); got != 99 {
		t.Fatalf("offset deferred read = %d", got)
	}
	// Source smaller than needed is rejected.
	small := k.NewSegment("small", PageSize, nil)
	dst2 := k.NewSegment("dst2", 2*PageSize, nil)
	if err := dst2.SetSourceSegment(small, PageSize); err == nil {
		t.Fatalf("oversized deferred copy accepted")
	}
}

func TestResetDeferredCopyRollsBack(t *testing.T) {
	k := testKernel()
	src := k.NewSegment("src", PageSize, nil)
	for i := uint32(0); i < 64; i++ {
		src.Write32(i*4, i)
	}
	dst := k.NewSegment("dst", PageSize, nil)
	mustSource(t, dst, src, 0)
	r := k.NewRegion(dst)
	as := k.NewAddressSpace()
	base, _ := r.Bind(as, 0)
	p := k.NewProcess(0, as)
	p.Store32(base+8, 9999)
	if got := p.Load32(base + 8); got != 9999 {
		t.Fatalf("pre-reset read = %d", got)
	}
	st, err := as.ResetDeferredCopy(base, base+PageSize, p.CPU)
	if err != nil {
		t.Fatal(err)
	}
	if st.DirtyPages != 1 || st.LinesReset != 1 {
		t.Fatalf("reset stats = %+v", st)
	}
	if got := p.Load32(base + 8); got != 2 {
		t.Fatalf("post-reset read = %d, want 2 (source value)", got)
	}
	// Unmodified locations still read through.
	if got := p.Load32(base + 40); got != 10 {
		t.Fatalf("post-reset clean read = %d", got)
	}
}

func TestResetCostProportionalToDirtyData(t *testing.T) {
	k := testKernel()
	src := k.NewSegment("src", 8*PageSize, nil)
	dst := k.NewSegment("dst", 8*PageSize, nil)
	mustSource(t, dst, src, 0)
	r := k.NewRegion(dst)
	as := k.NewAddressSpace()
	base, _ := r.Bind(as, 0)
	p := k.NewProcess(0, as)

	// Dirty one page sparsely.
	p.Store32(base, 1)
	st1, _ := as.ResetDeferredCopy(base, base+8*PageSize, p.CPU)

	// Dirty one page fully.
	for off := uint32(0); off < PageSize; off += 4 {
		p.Store32(base+off, 1)
	}
	st2, _ := as.ResetDeferredCopy(base, base+8*PageSize, p.CPU)
	if st2.Cycles <= st1.Cycles {
		t.Fatalf("full-page reset (%d) not costlier than one-line reset (%d)", st2.Cycles, st1.Cycles)
	}
	wantFull := uint64(LinesPerPage)*cycles.ResetLineCycles + 8*cycles.ResetPageCheckCycles
	if st2.Cycles != wantFull {
		t.Fatalf("full-page reset cost = %d, want %d", st2.Cycles, wantFull)
	}
}

func TestResetCrossoverNearTwoThirds(t *testing.T) {
	// Figure 9: resetDeferredCopy beats bcopy below ~2/3 dirty.
	full := uint64(LinesPerPage) * cycles.ResetLineCycles
	bcopyPage := uint64(LinesPerPage) * cycles.BcopyLineCycles
	ratio := float64(bcopyPage) / float64(full)
	if ratio < 0.6 || ratio > 0.72 {
		t.Fatalf("crossover ratio = %.3f, want ~2/3", ratio)
	}
}

func TestBcopyCopiesAndCharges(t *testing.T) {
	k := testKernel()
	src := k.NewSegment("src", PageSize, nil)
	dst := k.NewSegment("dst", PageSize, nil)
	for i := uint32(0); i < PageSize; i += 4 {
		src.Write32(i, i)
	}
	cpu := k.M.CPUs[0]
	before := cpu.Now
	if err := k.Bcopy(cpu, dst, 0, src, 0, PageSize); err != nil {
		t.Fatal(err)
	}
	want := uint64(PageSize/LineSize) * cycles.BcopyLineCycles
	if cpu.Now-before != want {
		t.Fatalf("bcopy cost = %d, want %d", cpu.Now-before, want)
	}
	if dst.Read32(0x100) != 0x100 {
		t.Fatalf("bcopy data wrong")
	}
}

func TestDeferredCopyChainedSources(t *testing.T) {
	k := testKernel()
	a := k.NewSegment("a", PageSize, nil)
	a.Write32(0, 5)
	b := k.NewSegment("b", PageSize, nil)
	mustSource(t, b, a, 0)
	c := k.NewSegment("c", PageSize, nil)
	mustSource(t, c, b, 0)
	if got := c.Read32(0); got != 5 {
		t.Fatalf("chained read = %d", got)
	}
	b.Write32(0, 6)
	if got := c.Read32(0); got != 6 {
		t.Fatalf("chained read after middle write = %d", got)
	}
}

func TestReverseTranslate(t *testing.T) {
	k := testKernel()
	s := k.NewSegment("s", 2*PageSize, nil)
	s.Write32(PageSize+12, 1) // makes page 1 resident
	frame := s.Frame(1)
	seg, off, ok := k.ReverseTranslate(frame<<PageShift + 12)
	if !ok || seg != s || off != PageSize+12 {
		t.Fatalf("reverse translate = %v %d %v", seg, off, ok)
	}
	if _, _, ok := k.ReverseTranslate(0xFFFF_F000); ok {
		t.Fatalf("reverse translate of unowned frame succeeded")
	}
}

func TestSegmentFreeReleasesFrames(t *testing.T) {
	k := testKernel()
	before := k.M.Phys.Allocated()
	s := k.NewSegment("s", 4*PageSize, nil)
	for i := uint32(0); i < 4; i++ {
		s.Write32(i*PageSize, 1)
	}
	if k.M.Phys.Allocated() != before+4 {
		t.Fatalf("frames not allocated")
	}
	s.Free()
	if k.M.Phys.Allocated() != before {
		t.Fatalf("frames not released: %d != %d", k.M.Phys.Allocated(), before)
	}
}

func TestOverloadSuspendsProcesses(t *testing.T) {
	k := testKernel()
	_, _, _, p, base := setupLogged(t, k, 1, 64)
	// Issue logged writes with no compute: the logger must overload.
	for i := uint32(0); i < 2000; i++ {
		p.Store32(base+(i%1024)*4, i)
	}
	if k.Overloads == 0 {
		t.Fatalf("no overload despite zero compute per logged write")
	}
}

func TestNoOverloadWithEnoughCompute(t *testing.T) {
	k := testKernel()
	_, _, _, p, base := setupLogged(t, k, 1, 64)
	// One logged write per 100 compute cycles: well above the ~27-cycle
	// threshold of Figure 12.
	for i := uint32(0); i < 2000; i++ {
		p.Compute(100)
		p.Store32(base+(i%1024)*4, i)
	}
	if k.Overloads != 0 {
		t.Fatalf("overloaded %d times despite ample compute", k.Overloads)
	}
}
