package vm

import (
	"testing"

	"lvm/internal/machine"
)

func wpRig(t *testing.T) (*Kernel, *Segment, *Process, Addr, *WPCheckpoint) {
	t.Helper()
	k := NewKernelNoLogger(machine.Config{NumCPUs: 1, MemFrames: 1024})
	s := k.NewSegment("data", 4*PageSize, nil)
	r := k.NewRegion(s)
	as := k.NewAddressSpace()
	base, err := r.Bind(as, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := k.NewProcess(0, as)
	// Warm residency.
	for off := uint32(0); off < 4*PageSize; off += PageSize {
		p.Load32(base + off)
	}
	wp, err := k.NewWPCheckpoint(s)
	if err != nil {
		t.Fatal(err)
	}
	return k, s, p, base, wp
}

func TestWPRollbackRestores(t *testing.T) {
	_, _, p, base, wp := wpRig(t)
	p.Store32(base, 1)
	p.Store32(base+PageSize, 2)
	wp.Checkpoint(p.CPU)
	p.Store32(base, 100)
	p.Store32(base+PageSize+8, 200)
	if wp.DirtyPages() != 2 {
		t.Fatalf("dirty pages = %d", wp.DirtyPages())
	}
	if err := wp.Rollback(p.CPU); err != nil {
		t.Fatal(err)
	}
	if got := p.Load32(base); got != 1 {
		t.Fatalf("page0 after rollback = %d", got)
	}
	if got := p.Load32(base + PageSize); got != 2 {
		t.Fatalf("page1 after rollback = %d", got)
	}
	if got := p.Load32(base + PageSize + 8); got != 0 {
		t.Fatalf("page1+8 after rollback = %d", got)
	}
}

func TestWPCheckpointRemainsActiveAfterRollback(t *testing.T) {
	_, _, p, base, wp := wpRig(t)
	wp.Checkpoint(p.CPU)
	p.Store32(base, 7)
	wp.Rollback(p.CPU)
	// Pages are re-protected: another write, another rollback.
	p.Store32(base, 8)
	if wp.DirtyPages() != 1 {
		t.Fatalf("page not re-protected: dirty = %d", wp.DirtyPages())
	}
	wp.Rollback(p.CPU)
	if got := p.Load32(base); got != 0 {
		t.Fatalf("after second rollback = %d", got)
	}
}

func TestWPCommitKeepsChanges(t *testing.T) {
	_, _, p, base, wp := wpRig(t)
	wp.Checkpoint(p.CPU)
	p.Store32(base, 9)
	wp.Commit(p.CPU)
	if got := p.Load32(base); got != 9 {
		t.Fatalf("after commit = %d", got)
	}
	if wp.Active() {
		t.Fatalf("still active after commit")
	}
	if err := wp.Rollback(p.CPU); err == nil {
		t.Fatalf("rollback after commit accepted")
	}
}

func TestWPFaultCostChargedOncePerPage(t *testing.T) {
	_, _, p, base, wp := wpRig(t)
	wp.Checkpoint(p.CPU)
	before := p.Now()
	p.Store32(base, 1) // fault: trap + page copy
	faultCost := p.Now() - before
	if faultCost < FaultCost() {
		t.Fatalf("first write cost %d < fault cost %d", faultCost, FaultCost())
	}
	before = p.Now()
	p.Store32(base+4, 2) // same page: no fault
	if got := p.Now() - before; got >= FaultCost() {
		t.Fatalf("second write to page re-faulted: %d cycles", got)
	}
	if wp.Faults != 1 {
		t.Fatalf("faults = %d", wp.Faults)
	}
}

func TestWPCheckpointReplacesPrevious(t *testing.T) {
	_, _, p, base, wp := wpRig(t)
	wp.Checkpoint(p.CPU)
	p.Store32(base, 5)
	wp.Checkpoint(p.CPU) // new checkpoint: 5 is now the baseline
	p.Store32(base, 6)
	wp.Rollback(p.CPU)
	if got := p.Load32(base); got != 5 {
		t.Fatalf("rollback went past the newer checkpoint: %d", got)
	}
}

func TestWPOnePerSegment(t *testing.T) {
	k, s, _, _, wp := wpRig(t)
	if _, err := k.NewWPCheckpoint(s); err == nil {
		t.Fatalf("second checkpointer on one segment accepted")
	}
	wp.Close()
	if _, err := k.NewWPCheckpoint(s); err != nil {
		t.Fatalf("checkpointer after Close rejected: %v", err)
	}
}

func TestWPSubWordWritesSavePage(t *testing.T) {
	_, _, p, base, wp := wpRig(t)
	p.Store32(base+16, 0x11223344)
	wp.Checkpoint(p.CPU)
	p.Store8(base+17, 0xFF)
	wp.Rollback(p.CPU)
	if got := p.Load32(base + 16); got != 0x11223344 {
		t.Fatalf("byte write not rolled back: %#x", got)
	}
}

func TestWPGrowsWithSegmentExtend(t *testing.T) {
	k, s, p, base, wp := wpRig(t)
	_ = k
	s.Extend(2)
	wp.Checkpoint(p.CPU)
	// A write to the new page must be protected too.
	_ = base
	s.Write32(4*PageSize+8, 42) // raw write also triggers the save
	wp.Rollback(nil)
	if got := s.Read32(4*PageSize + 8); got != 0 {
		t.Fatalf("extended page not rolled back: %d", got)
	}
}
