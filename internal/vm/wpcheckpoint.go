package vm

import (
	"fmt"

	"lvm/internal/cycles"
	"lvm/internal/machine"
)

// WPCheckpoint implements the virtual-memory-based checkpoint facility of
// Li and Appel discussed in Section 5.1 of the paper: "the operating
// system uses page write-protect to force a trap on the first write to a
// page after a checkpoint to save a copy of the page as part of this
// earlier checkpoint. Resetting to a previous checkpoint requires
// resetting the mappings... Creating a new checkpoint entails
// write-protecting all the virtual pages in the region."
//
// The paper notes "It would be relatively straightforward to extend our
// implementation to provide their form of checkpointing and allow the
// applications to choose" — this type is that extension, and the
// checkpoint-styles ablation compares it against deferred copy.
//
// Costs: Checkpoint() charges a per-page protect cost; the first write to
// a protected page charges a protection fault plus a page copy; Rollback()
// charges a per-page remap cost for each modified page (Li/Appel's cheap
// restore). One checkpoint may be active per segment.
type WPCheckpoint struct {
	k   *Kernel
	seg *Segment

	active    bool
	protected []bool
	saved     map[uint32][]byte // page -> contents at checkpoint time

	// Stats.
	Faults     uint64
	PagesSaved uint64
}

// Li/Appel cost model.
const (
	// WPProtectPageCycles is the cost of write-protecting one page when
	// the checkpoint is created (PTE update and TLB maintenance).
	WPProtectPageCycles = 150
	// WPRemapPageCycles is the per-modified-page cost of resetting the
	// mapping at rollback.
	WPRemapPageCycles = 200
)

// NewWPCheckpoint prepares write-protect checkpointing for a segment.
func (k *Kernel) NewWPCheckpoint(seg *Segment) (*WPCheckpoint, error) {
	if seg.wp != nil {
		return nil, fmt.Errorf("vm: segment %q already has a write-protect checkpointer", seg.name)
	}
	c := &WPCheckpoint{
		k:         k,
		seg:       seg,
		protected: make([]bool, len(seg.pages)),
		saved:     map[uint32][]byte{},
	}
	seg.wp = c
	return c, nil
}

// Close detaches the checkpointer from its segment.
func (c *WPCheckpoint) Close() {
	if c.seg != nil && c.seg.wp == c {
		c.seg.wp = nil
	}
	c.active = false
}

// Active reports whether a checkpoint is in effect.
func (c *WPCheckpoint) Active() bool { return c.active }

// DirtyPages reports how many pages have been modified (and saved) since
// the checkpoint.
func (c *WPCheckpoint) DirtyPages() int { return len(c.saved) }

// Checkpoint establishes a new checkpoint: every page of the region is
// write-protected. Prior saved pages are discarded (the previous
// checkpoint is replaced).
func (c *WPCheckpoint) Checkpoint(cpu *machine.CPU) {
	if n := uint32(len(c.seg.pages)); uint32(len(c.protected)) < n {
		c.protected = append(c.protected, make([]bool, n-uint32(len(c.protected)))...)
	}
	for i := range c.protected {
		c.protected[i] = true
	}
	c.saved = map[uint32][]byte{}
	c.active = true
	if cpu != nil {
		cpu.Compute(uint64(len(c.protected)) * WPProtectPageCycles)
	}
}

// protectedPage reports whether a write to the page would fault.
func (c *WPCheckpoint) protectedPage(page uint32) bool {
	return c.active && page < uint32(len(c.protected)) && c.protected[page]
}

// fault handles the first write to a protected page: save a copy and
// unprotect. The data capture happens uncharged (the hardware writes the
// copy); the cost is charged by the Process store path via FaultCost.
func (c *WPCheckpoint) fault(page uint32) {
	if !c.protectedPage(page) {
		return
	}
	c.protected[page] = false
	c.saved[page] = c.seg.RawRead(page*PageSize, PageSize)
	c.Faults++
	c.PagesSaved++
}

// FaultCost is the cycle cost of one write-protect fault: the trap plus
// the page copy.
func FaultCost() uint64 {
	return cycles.PageFaultCycles + uint64(LinesPerPage)*cycles.BcopyLineCycles
}

// Rollback restores the segment to the checkpoint: each modified page's
// saved copy is re-installed (modelled as Li/Appel's mapping reset, a
// cheap per-page remap) and re-protected so the checkpoint remains
// active.
func (c *WPCheckpoint) Rollback(cpu *machine.CPU) error {
	if !c.active {
		return fmt.Errorf("vm: rollback without an active checkpoint")
	}
	for page, data := range c.saved {
		c.seg.RawWrite(page*PageSize, data)
		c.protected[page] = true
		if cpu != nil {
			cpu.Compute(WPRemapPageCycles)
			cpu.D1.InvalidatePage(page << PageShift) // stale cached lines
		}
	}
	c.saved = map[uint32][]byte{}
	return nil
}

// Commit abandons the checkpoint, keeping the current contents: saved
// copies are discarded and protection lifted.
func (c *WPCheckpoint) Commit(cpu *machine.CPU) {
	c.saved = map[uint32][]byte{}
	for i := range c.protected {
		c.protected[i] = false
	}
	c.active = false
	_ = cpu
}
