package vm

import (
	"fmt"

	"lvm/internal/cycles"
	"lvm/internal/hwlogger"
)

// SegmentManager implements user-level page-fault handling for a segment
// ("The given segment manager implements user-level page-fault handling",
// Table 1). FillPage initializes the contents of a newly resident page.
type SegmentManager interface {
	FillPage(seg *Segment, page uint32, data *[PageSize]byte)
}

// ZeroFill is the default segment manager: pages appear zeroed.
type ZeroFill struct{}

// FillPage leaves the freshly allocated (already zeroed) frame untouched.
func (ZeroFill) FillPage(*Segment, uint32, *[PageSize]byte) {}

// pageInfo is the per-page metadata of a segment: residency, the page
// dirty bit used by resetDeferredCopy's fast path, and the per-line
// deferred-copy state bitmaps (256 lines per 4 KiB page).
type pageInfo struct {
	frame uint32 // 0 = not resident
	dirty bool
	// fromSource: bit set = the line is still sourced from the
	// deferred-copy source segment (reads redirect there). Only
	// meaningful while the segment has a source.
	fromSource [LinesPerPage / 64]uint64
	// lineDirty: bit set = the line has been modified since the last
	// resetDeferredCopy (or since first residency).
	lineDirty [LinesPerPage / 64]uint64
}

// Segment is a memory segment: a virtual-memory system object that can be
// mapped to a region (Section 2.1). Log segments are segments too
// (LogSegment "is also derived from Segment", Table 1); they carry the
// extra hardware-log head state.
type Segment struct {
	k    *Kernel
	id   int
	name string
	size uint32
	mgr  SegmentManager

	pages []pageInfo

	// Deferred copy (Section 2.3): this segment appears initialized by
	// source starting at sourceOff.
	source    *Segment
	sourceOff uint32

	// wp is the optional Li/Appel-style write-protect checkpointer
	// (Section 5.1); writes to protected pages save the page first.
	wp *WPCheckpoint

	// Active logging state for data segments. The prototype logger works
	// on physical addresses (Section 3.1.2), so one log is ACTIVE per
	// segment at a time; additional registered logs take over at
	// Activate/ContextSwitch. (The on-chip kernel has no such
	// restriction: its tags are per virtual page.)
	logged   bool
	logTo    *Segment
	logIndex uint16

	// Log-segment state.
	isLog       bool
	logIdxValid bool
	// loggedRegion is the region whose writes fill this log (used for
	// virtual-address resolution with the on-chip logger).
	loggedRegion *Region
	logMode      hwlogger.Mode
	hwPage       uint32 // page currently under the hardware head
	nextPage     uint32 // next page to hand to the hardware
	absorbing    bool
	lostRecords  uint64
	started      bool   // hardware head has been initialized
	savedOff     uint32 // append offset saved while logging is disabled

	// loggingFaults counts the logging faults this segment was involved
	// in: PMT reloads for data segments, page-crossing head advances for
	// log segments (Section 3.2).
	loggingFaults uint64

	// noAbsorbLimit: offsets below this are transaction marker words, so
	// pages overlapping [0, noAbsorbLimit) get their PMT absorb-enable
	// bit cleared — their writes are absorption barriers.
	noAbsorbLimit uint32
}

// SetNoAbsorbLimit marks the first limit bytes of the segment as
// never-absorb: writes to pages overlapping the range act as write-
// absorption barriers in the hardware logger, so marker-word stores keep
// their order and multiplicity in the log. Takes effect for pages mapped
// after the call; call before binding (or re-Activate) for full coverage.
func (s *Segment) SetNoAbsorbLimit(limit uint32) { s.noAbsorbLimit = limit }

// ParallelApplySafe reports whether page-disjoint concurrent RawWrites to
// this segment are race-free once its pages are resident: there must be
// no deferred-copy source (line-sourcing state spans the segment) and no
// write-protect checkpointer (its fault hook mutates shared state).
// Partitioned parallel recovery checks this before fanning out.
func (s *Segment) ParallelApplySafe() bool { return s.source == nil && s.wp == nil }

// LoggingFaultCount reports how many logging faults involved this segment.
func (s *Segment) LoggingFaultCount() uint64 { return s.loggingFaults }

// NewSegment creates a memory segment of the given size (rounded up to a
// whole number of pages). mgr may be nil for zero-fill.
func (k *Kernel) NewSegment(name string, size uint32, mgr SegmentManager) *Segment {
	if mgr == nil {
		mgr = ZeroFill{}
	}
	npages := (size + PageSize - 1) / PageSize
	s := &Segment{
		k:     k,
		id:    len(k.segments),
		name:  name,
		size:  npages * PageSize,
		mgr:   mgr,
		pages: make([]pageInfo, npages),
	}
	k.segments = append(k.segments, s)
	return s
}

// NewLogSegment creates a log segment with the given initial capacity in
// pages. The application extends it with Extend as the log grows
// ("the user explicitly extends the log segment, normally in advance of a
// fault at the end of the log segment", Section 3.2).
func (k *Kernel) NewLogSegment(name string, pages uint32) *Segment {
	s := k.NewSegment(name, pages*PageSize, nil)
	s.isLog = true
	return s
}

// Name returns the segment's debug name.
func (s *Segment) Name() string { return s.name }

// Size returns the segment size in bytes.
func (s *Segment) Size() uint32 { return s.size }

// NumPages returns the segment size in pages.
func (s *Segment) NumPages() uint32 { return uint32(len(s.pages)) }

// IsLog reports whether this is a log segment.
func (s *Segment) IsLog() bool { return s.isLog }

// LostRecords reports how many records were absorbed and lost because the
// log segment ran out of space (Section 3.2). Call Kernel.Sync first to
// account for in-flight records.
func (s *Segment) LostRecords() uint64 {
	n := s.lostRecords
	if !s.isLog || !s.logIdxValid || !s.absorbing {
		return n
	}
	switch {
	case s.k.Log != nil:
		h := s.k.Log.LogHead(s.logIndex)
		if h.Valid {
			n += uint64(h.Addr&PageMask) / uint64(s.recordSize())
		} else {
			n += uint64(PageSize / s.recordSize())
		}
	case s.k.Chip != nil:
		d := s.k.Chip.Descriptor(s.logIndex)
		if d.Valid {
			n += uint64(d.Addr&PageMask) / uint64(s.recordSize())
		}
	}
	return n
}

// recordSize is the byte granularity of one log entry for this log's mode.
func (s *Segment) recordSize() uint32 {
	if s.logMode == hwlogger.ModeIndexed {
		return 4
	}
	return 16
}

// SetSourceSegment declares source as the deferred-copy source for this
// segment starting at the given offset (Table 1: Segment::sourceSegment).
// Reads of unmodified locations return the source's data; writes affect
// only this segment.
func (s *Segment) SetSourceSegment(source *Segment, offset uint32) error {
	if s.isLog {
		return fmt.Errorf("vm: segment %q: a log segment cannot be a deferred-copy destination", s.name)
	}
	if source != nil && offset+s.size > source.size {
		return fmt.Errorf("vm: segment %q: deferred-copy source %q too small (%d+%d > %d)",
			s.name, source.name, offset, s.size, source.size)
	}
	s.source = source
	s.sourceOff = offset
	// Every already-resident page reverts to all-lines-from-source.
	for i := range s.pages {
		p := &s.pages[i]
		if p.frame != 0 {
			for j := range p.fromSource {
				p.fromSource[j] = ^uint64(0)
				p.lineDirty[j] = 0
			}
			p.dirty = false
		}
	}
	return nil
}

// Source returns the deferred-copy source, if any.
func (s *Segment) Source() (*Segment, uint32) { return s.source, s.sourceOff }

// Extend grows the segment by n pages, returning the new size. For log
// segments this provides the next pages for the hardware head ("the user
// explicitly extends the log segment, normally in advance of a fault at
// the end of the log segment", Section 3.2); if the log had fallen back to
// the absorb page, the head is immediately re-pointed at the new space so
// no further records are lost.
func (s *Segment) Extend(n uint32) uint32 {
	s.pages = append(s.pages, make([]pageInfo, n)...)
	s.size += n * PageSize
	if s.isLog && s.logIdxValid && s.absorbing {
		if s.k.Chip != nil {
			s.k.advanceChipHead(s)
		} else {
			s.k.advanceLogHead(s)
		}
	}
	return s.size
}

// ensureFrame makes the given page resident and returns its frame.
func (s *Segment) ensureFrame(page uint32) (uint32, error) {
	if page >= uint32(len(s.pages)) {
		return 0, fmt.Errorf("vm: segment %q: page %d out of range", s.name, page)
	}
	p := &s.pages[page]
	if p.frame != 0 {
		return p.frame, nil
	}
	f, err := s.k.M.Phys.Alloc()
	if err != nil {
		return 0, err
	}
	p.frame = f
	s.k.owners[f] = frameOwner{seg: s, page: page}
	if s.source != nil {
		// Deferred copy: the page begins with every line sourced.
		for j := range p.fromSource {
			p.fromSource[j] = ^uint64(0)
		}
	} else {
		s.mgr.FillPage(s, page, s.k.M.Phys.Frame(f))
	}
	return f, nil
}

// EnsureResident makes a page resident without charging fault costs
// (pre-faulting for warmups and tools).
func (s *Segment) EnsureResident(page uint32) (uint32, error) {
	return s.ensureFrame(page)
}

// Resident reports whether a page is resident.
func (s *Segment) Resident(page uint32) bool {
	return page < uint32(len(s.pages)) && s.pages[page].frame != 0
}

// Frame returns the physical frame of a resident page (0 if absent).
func (s *Segment) Frame(page uint32) uint32 {
	if page >= uint32(len(s.pages)) {
		return 0
	}
	return s.pages[page].frame
}

// PageDirty reports the page's dirty bit (set by the first modifying write
// since the last resetDeferredCopy).
func (s *Segment) PageDirty(page uint32) bool {
	return page < uint32(len(s.pages)) && s.pages[page].dirty
}

// DirtyLines counts modified lines in a page.
func (s *Segment) DirtyLines(page uint32) int {
	if page >= uint32(len(s.pages)) {
		return 0
	}
	n := 0
	for _, w := range s.pages[page].lineDirty {
		n += popcount(w)
	}
	return n
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// --- Data access (functional semantics, no cycle charging) ---
//
// These "raw" accessors implement the deferred-copy read/write semantics.
// Cycle costs are charged separately by the Process accessors; tools
// (log readers, checkpoint roll-forward by a separate processor, tests)
// use the raw accessors directly.

// lineIdx returns the bitmap word and bit for a line number.
func lineIdx(line uint32) (word, bit uint32) { return line / 64, line % 64 }

// readInto copies n bytes at byte offset off into dst, resolving
// deferred-copy lines. The page need not be resident: non-resident pages
// read through to the source or as zeroes.
func (s *Segment) readInto(off uint32, dst []byte) {
	for len(dst) > 0 {
		page := off >> PageShift
		po := off & PageMask
		n := PageSize - po
		if n > uint32(len(dst)) {
			n = uint32(len(dst))
		}
		s.readPage(page, po, dst[:n])
		dst = dst[n:]
		off += n
	}
}

func (s *Segment) readPage(page, po uint32, dst []byte) {
	if page >= uint32(len(s.pages)) {
		zero(dst)
		return
	}
	p := &s.pages[page]
	if p.frame == 0 {
		if s.source != nil {
			s.source.readInto(s.sourceOff+page*PageSize+po, dst)
		} else {
			zero(dst)
		}
		return
	}
	if s.source == nil {
		copy(dst, s.k.M.Phys.Frame(p.frame)[po:po+uint32(len(dst))])
		return
	}
	// Resolve line by line.
	f := s.k.M.Phys.Frame(p.frame)
	for len(dst) > 0 {
		line := po >> cycles.LineShift
		lo := po & (LineSize - 1)
		n := LineSize - lo
		if n > uint32(len(dst)) {
			n = uint32(len(dst))
		}
		w, b := lineIdx(line)
		if p.fromSource[w]&(1<<b) != 0 {
			s.source.readInto(s.sourceOff+page*PageSize+po, dst[:n])
		} else {
			copy(dst[:n], f[po:po+n])
		}
		dst = dst[n:]
		po += n
	}
}

// writeBytes stores b at byte offset off, materializing deferred-copy
// lines as needed and maintaining dirty state. Pages are made resident on
// demand. It returns an error only on out-of-memory.
func (s *Segment) writeBytes(off uint32, b []byte) error {
	for len(b) > 0 {
		page := off >> PageShift
		po := off & PageMask
		n := PageSize - po
		if n > uint32(len(b)) {
			n = uint32(len(b))
		}
		if err := s.writePage(page, po, b[:n]); err != nil {
			return err
		}
		b = b[n:]
		off += n
	}
	return nil
}

func (s *Segment) writePage(page, po uint32, b []byte) error {
	if s.wp != nil {
		s.wp.fault(page)
	}
	if _, err := s.ensureFrame(page); err != nil {
		return err
	}
	p := &s.pages[page]
	f := s.k.M.Phys.Frame(p.frame)
	p.dirty = true
	if s.source == nil {
		copy(f[po:], b)
		// Track line dirtiness anyway (cheap, used by trace tools).
		for line := po >> cycles.LineShift; line <= (po+uint32(len(b))-1)>>cycles.LineShift; line++ {
			w, bit := lineIdx(line)
			p.lineDirty[w] |= 1 << bit
		}
		return nil
	}
	// Materialize each touched line from the source first, so that the
	// unwritten bytes of a partially written line keep source data. This
	// is the second-level cache's load-on-reference of Section 3.3,
	// charged as part of the normal miss costs.
	first := po >> cycles.LineShift
	last := (po + uint32(len(b)) - 1) >> cycles.LineShift
	for line := first; line <= last; line++ {
		w, bit := lineIdx(line)
		if p.fromSource[w]&(1<<bit) != 0 {
			lo := line * LineSize
			s.source.readInto(s.sourceOff+page*PageSize+lo, f[lo:lo+LineSize])
			p.fromSource[w] &^= 1 << bit
		}
		p.lineDirty[w] |= 1 << bit
	}
	copy(f[po:], b)
	return nil
}

// store32 is the hot-path word store used by Process.Store32: it assumes
// the page is resident and the offset word-aligned.
func (s *Segment) store32(page, po uint32, v uint32) {
	if s.wp != nil {
		s.wp.fault(page)
	}
	p := &s.pages[page]
	f := s.k.M.Phys.Frame(p.frame)
	p.dirty = true
	line := po >> cycles.LineShift
	w, bit := lineIdx(line)
	if s.source != nil && p.fromSource[w]&(1<<bit) != 0 {
		lo := line * LineSize
		s.source.readInto(s.sourceOff+page*PageSize+lo, f[lo:lo+LineSize])
		p.fromSource[w] &^= 1 << bit
	}
	p.lineDirty[w] |= 1 << bit
	b := f[po : po+4 : po+4]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// load32 is the hot-path word load used by Process.Load32.
func (s *Segment) load32(page, po uint32) uint32 {
	p := &s.pages[page]
	if s.source != nil {
		w, bit := lineIdx(po >> cycles.LineShift)
		if p.fromSource[w]&(1<<bit) != 0 {
			return s.source.Read32(s.sourceOff + page*PageSize + po)
		}
	}
	f := s.k.M.Phys.Frame(p.frame)
	b := f[po : po+4 : po+4]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// RawRead copies n bytes at off into a fresh slice (tool/test backdoor; no
// cycles charged).
func (s *Segment) RawRead(off, n uint32) []byte {
	b := make([]byte, n)
	s.readInto(off, b)
	return b
}

// ReadInto copies len(dst) bytes at off into dst: RawRead without the
// allocation, for callers with a reusable buffer (no cycles charged).
func (s *Segment) ReadInto(off uint32, dst []byte) {
	s.readInto(off, dst)
}

// RawWrite stores b at off without charging cycles (tool/test backdoor;
// also used by checkpoint roll-forward performed by a separate process,
// whose cost the caller accounts explicitly).
func (s *Segment) RawWrite(off uint32, b []byte) {
	if err := s.writeBytes(off, b); err != nil {
		panic(err)
	}
}

// Read32 reads a little-endian word at off (raw).
func (s *Segment) Read32(off uint32) uint32 {
	var b [4]byte
	s.readInto(off, b[:])
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Write32 writes a little-endian word at off (raw).
func (s *Segment) Write32(off uint32, v uint32) {
	b := [4]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
	s.RawWrite(off, b[:])
}

// Free releases the segment's frames and logger resources.
func (s *Segment) Free() {
	for i := range s.pages {
		p := &s.pages[i]
		if p.frame != 0 {
			if s.k.Log != nil {
				s.k.Log.InvalidatePMT(p.frame)
			}
			delete(s.k.owners, p.frame)
			s.k.M.Phys.Release(p.frame)
			p.frame = 0
		}
	}
	if s.isLog && s.logIdxValid {
		s.k.releaseLogIndex(s.logIndex)
		s.logIdxValid = false
	}
}
