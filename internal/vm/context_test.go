package vm

import (
	"testing"

	"lvm/internal/logrec"
)

func TestContextSwitchChargesCost(t *testing.T) {
	k := testKernel()
	as1 := k.NewAddressSpace()
	as2 := k.NewAddressSpace()
	p := k.NewProcess(0, as1)
	before := p.Now()
	if err := k.ContextSwitch(p, as2); err != nil {
		t.Fatal(err)
	}
	if p.Now()-before < ContextSwitchCycles {
		t.Fatalf("switch cost = %d", p.Now()-before)
	}
	if p.AS != as2 {
		t.Fatalf("address space not installed")
	}
}

func TestContextSwitchInvalidatesL1(t *testing.T) {
	k := testKernel()
	s := k.NewSegment("s", PageSize, nil)
	r := k.NewRegion(s)
	as := k.NewAddressSpace()
	base, _ := r.Bind(as, 0)
	p := k.NewProcess(0, as)
	p.Load32(base) // warm a line
	hitsBefore := p.CPU.D1.Hits
	p.Load32(base)
	if p.CPU.D1.Hits != hitsBefore+1 {
		t.Fatalf("expected warm hit")
	}
	if err := k.ContextSwitch(p, as); err != nil {
		t.Fatal(err)
	}
	missesBefore := p.CPU.D1.Misses
	p.Load32(base)
	if p.CPU.D1.Misses != missesBefore+1 {
		t.Fatalf("cache survived context switch")
	}
}

func TestActivateRequiresLoggedRegion(t *testing.T) {
	k := testKernel()
	s := k.NewSegment("s", PageSize, nil)
	r := k.NewRegion(s)
	if err := k.Activate(r, nil); err == nil {
		t.Fatalf("Activate on unlogged region accepted")
	}
}

func TestActivateIdempotent(t *testing.T) {
	k := testKernel()
	_, _, ls, p, base := setupLogged(t, k, 1, 4)
	p.Store32(base, 1)
	reg := ls.loggedRegion
	if err := k.Activate(reg, p.CPU); err != nil {
		t.Fatal(err)
	}
	p.Store32(base+4, 2)
	k.Sync()
	if got := k.LogAppendOffset(ls) / 16; got != 2 {
		t.Fatalf("records after re-activate = %d", got)
	}
}

func TestSwitchPreservesLogPositions(t *testing.T) {
	// Alternate between two processes repeatedly: each log accumulates
	// only its own writes, in order, across many switches.
	k := testKernel()
	s := k.NewSegment("db", PageSize, nil)
	r1 := k.NewRegion(s)
	r2 := k.NewRegion(s)
	ls1 := k.NewLogSegment("l1", 8)
	ls2 := k.NewLogSegment("l2", 8)
	if err := r1.Log(ls1); err != nil {
		t.Fatal(err)
	}
	if err := r2.Log(ls2); err != nil {
		t.Fatal(err)
	}
	as1 := k.NewAddressSpace()
	as2 := k.NewAddressSpace()
	b1, _ := r1.Bind(as1, 0)
	b2, _ := r2.Bind(as2, 0)
	p := k.NewProcess(0, as1)
	for round := uint32(0); round < 6; round++ {
		if round%2 == 0 {
			if err := k.ContextSwitch(p, as1); err != nil {
				t.Fatal(err)
			}
			p.Store32(b1+round*4, 100+round)
		} else {
			if err := k.ContextSwitch(p, as2); err != nil {
				t.Fatal(err)
			}
			p.Store32(b2+round*4, 200+round)
		}
	}
	k.Sync()
	if got := k.LogAppendOffset(ls1) / 16; got != 3 {
		t.Fatalf("log1 records = %d", got)
	}
	if got := k.LogAppendOffset(ls2) / 16; got != 3 {
		t.Fatalf("log2 records = %d", got)
	}
	for i := uint32(0); i < 3; i++ {
		r1v := logrec.Decode(ls1.RawRead(i*16, 16)).Value
		r2v := logrec.Decode(ls2.RawRead(i*16, 16)).Value
		if r1v != 100+i*2 || r2v != 200+i*2+1 {
			t.Fatalf("round %d: %d / %d", i, r1v, r2v)
		}
	}
}

func TestWPCheckpointOnLoggedSegment(t *testing.T) {
	// Write-protect checkpointing composes with logging: the store is
	// both saved (first touch) and logged.
	k := testKernel()
	_, s, ls, p, base := setupLogged(t, k, 1, 4)
	wp, err := k.NewWPCheckpoint(s)
	if err != nil {
		t.Fatal(err)
	}
	p.Store32(base, 1)
	wp.Checkpoint(p.CPU)
	p.Store32(base, 2)
	if err := wp.Rollback(p.CPU); err != nil {
		t.Fatal(err)
	}
	if got := p.Load32(base); got != 1 {
		t.Fatalf("rollback = %d", got)
	}
	k.Sync()
	// Both stores were logged (the rollback's restore is a kernel remap,
	// not a store).
	if got := k.LogAppendOffset(ls) / 16; got != 2 {
		t.Fatalf("records = %d, want 2", got)
	}
}
