package vm

import (
	"fmt"

	"lvm/internal/machine"
	"lvm/internal/phys"
)

// machineCPU aliases machine.CPU for internal signatures.
type machineCPU = machine.CPU

// Process is a thread of execution bound to one simulated CPU and one
// address space. Its accessors are the application's loads and stores:
// they charge the cycle costs of the access (cache mode, bus, logging) and
// perform the data movement, including deferred-copy resolution.
//
// Accesses must be naturally aligned (the 68040 faults on unaligned
// accesses); an unaligned or unmapped access panics, which models the
// machine check / segmentation violation the prototype would take.
type Process struct {
	k   *Kernel
	CPU *machine.CPU
	AS  *AddressSpace
}

// NewProcess creates a process on the given CPU.
func (k *Kernel) NewProcess(cpuID int, as *AddressSpace) *Process {
	if cpuID < 0 || cpuID >= len(k.M.CPUs) {
		panic(fmt.Sprintf("vm: no CPU %d", cpuID))
	}
	return &Process{k: k, CPU: k.M.CPUs[cpuID], AS: as}
}

// Kernel returns the owning kernel.
func (p *Process) Kernel() *Kernel { return p.k }

// Compute charges n cycles of computation.
func (p *Process) Compute(n uint64) { p.CPU.Compute(n) }

// Now returns the process's CPU clock.
func (p *Process) Now() uint64 { return p.CPU.Now }

func (p *Process) mustLookup(va Addr, size uint32) *pte {
	if va&(size-1) != 0 {
		panic(fmt.Sprintf("vm: unaligned %d-byte access at %#x", size, va))
	}
	e, err := p.AS.lookup(va, p.CPU)
	if err != nil {
		panic(err)
	}
	return e
}

// chargeWPFault charges the write-protect trap + page-copy cost when the
// store below will hit a Li/Appel-protected page (Section 5.1); the data
// capture itself happens in the segment's write path.
func (p *Process) chargeWPFault(e *pte) {
	if wp := e.seg.wp; wp != nil && wp.protectedPage(e.segPage) {
		p.CPU.Compute(FaultCost())
	}
}

// Store32 writes a 32-bit word at va.
func (p *Process) Store32(va Addr, v uint32) {
	e := p.mustLookup(va, 4)
	p.chargeWPFault(e)
	po := va & PageMask
	paddr := phys.FrameBase(e.seg.pages[e.segPage].frame) + po
	p.CPU.WordWrite(paddr, va, v, 4, e.writeThrough, e.logged)
	e.seg.store32(e.segPage, po, v)
}

// Store16 writes a 16-bit halfword at va.
func (p *Process) Store16(va Addr, v uint16) {
	e := p.mustLookup(va, 2)
	p.chargeWPFault(e)
	po := va & PageMask
	paddr := phys.FrameBase(e.seg.pages[e.segPage].frame) + po
	p.CPU.WordWrite(paddr, va, uint32(v), 2, e.writeThrough, e.logged)
	b := [2]byte{byte(v), byte(v >> 8)}
	if err := e.seg.writePage(e.segPage, po, b[:]); err != nil {
		panic(err)
	}
}

// Store8 writes a byte at va.
func (p *Process) Store8(va Addr, v uint8) {
	e := p.mustLookup(va, 1)
	p.chargeWPFault(e)
	po := va & PageMask
	paddr := phys.FrameBase(e.seg.pages[e.segPage].frame) + po
	p.CPU.WordWrite(paddr, va, uint32(v), 1, e.writeThrough, e.logged)
	b := [1]byte{v}
	if err := e.seg.writePage(e.segPage, po, b[:]); err != nil {
		panic(err)
	}
}

// Load32 reads a 32-bit word at va.
func (p *Process) Load32(va Addr) uint32 {
	e := p.mustLookup(va, 4)
	po := va & PageMask
	paddr := phys.FrameBase(e.seg.pages[e.segPage].frame) + po
	p.CPU.WordRead(paddr)
	return e.seg.load32(e.segPage, po)
}

// Load16 reads a 16-bit halfword at va.
func (p *Process) Load16(va Addr) uint16 {
	e := p.mustLookup(va, 2)
	po := va & PageMask
	paddr := phys.FrameBase(e.seg.pages[e.segPage].frame) + po
	p.CPU.WordRead(paddr)
	var b [2]byte
	e.seg.readPage(e.segPage, po, b[:])
	return uint16(b[0]) | uint16(b[1])<<8
}

// Load8 reads a byte at va.
func (p *Process) Load8(va Addr) uint8 {
	e := p.mustLookup(va, 1)
	po := va & PageMask
	paddr := phys.FrameBase(e.seg.pages[e.segPage].frame) + po
	p.CPU.WordRead(paddr)
	var b [1]byte
	e.seg.readPage(e.segPage, po, b[:])
	return b[0]
}

// StoreBytes writes b starting at va, word by word (charging each store).
func (p *Process) StoreBytes(va Addr, b []byte) {
	i := 0
	for ; i+4 <= len(b) && (va+Addr(i))%4 == 0; i += 4 {
		p.Store32(va+Addr(i), uint32(b[i])|uint32(b[i+1])<<8|uint32(b[i+2])<<16|uint32(b[i+3])<<24)
	}
	for ; i < len(b); i++ {
		p.Store8(va+Addr(i), b[i])
	}
}

// LoadBytes reads n bytes starting at va, word by word (charging each
// load).
func (p *Process) LoadBytes(va Addr, n int) []byte {
	out := make([]byte, n)
	i := 0
	for ; i+4 <= n && (va+Addr(i))%4 == 0; i += 4 {
		v := p.Load32(va + Addr(i))
		out[i] = byte(v)
		out[i+1] = byte(v >> 8)
		out[i+2] = byte(v >> 16)
		out[i+3] = byte(v >> 24)
	}
	for ; i < n; i++ {
		out[i] = p.Load8(va + Addr(i))
	}
	return out
}
