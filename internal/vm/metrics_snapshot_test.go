package vm

import (
	"testing"

	"lvm/internal/logrec"
	"lvm/internal/phys"
)

// TestSnapshotExposesLoggerLossAndOverloadCycles pins the snapshot keys
// that surface the hardware logger's lost-record and overload-resume
// accounting: both counters existed as Logger stats fields but were
// invisible to MetricsSnapshot consumers before the collector emitted
// them.
func TestSnapshotExposesLoggerLossAndOverloadCycles(t *testing.T) {
	k := testKernel()
	_, _, _, p, base := setupLogged(t, k, 1, 64)

	// One dropped DMA (the fault injector's loss path) feeds
	// records_lost_total.
	dropped := false
	k.Log.DMAHook = func(rec *logrec.Record, dst phys.Addr) bool {
		if !dropped {
			dropped = true
			return true
		}
		return false
	}
	// Zero-compute logged stores overload the FIFO, which feeds
	// overload_resume_cycles (CPU cycles lost to overload drains).
	for i := uint32(0); i < 2000; i++ {
		p.Store32(base+(i%1024)*4, i)
	}
	k.Sync()
	k.Log.DMAHook = nil
	if k.Overloads == 0 {
		t.Fatalf("workload did not overload; the test needs at least one drain")
	}

	snap := k.M.Metrics.Snapshot()
	if got := snap.Counters["hwlogger.records_lost_total"]; got != k.Log.RecordsLost || got == 0 {
		t.Fatalf("records_lost_total = %d, want the logger's %d (non-zero)", got, k.Log.RecordsLost)
	}
	if got := snap.Counters["hwlogger.overload_resume_cycles"]; got != k.Log.StallCycles || got == 0 {
		t.Fatalf("overload_resume_cycles = %d, want the logger's %d (non-zero)", got, k.Log.StallCycles)
	}
}

// TestSnapshotCountsAbsorbedLoss: records lost to log overflow (absorb
// mode) appear under vm.log_records_lost_absorbed.
func TestSnapshotCountsAbsorbedLoss(t *testing.T) {
	k := testKernel()
	_, _, ls, p, base := setupLogged(t, k, 1, 1) // one page = 256 records
	for i := uint32(0); i < 300; i++ {
		p.Compute(100)
		p.Store32(base, i)
	}
	k.Sync()
	if ls.LostRecords() == 0 {
		t.Fatalf("no overflow loss; widen the workload")
	}
	snap := k.M.Metrics.Snapshot()
	if got := snap.Counters["vm.log_records_lost_absorbed"]; got != ls.LostRecords() {
		t.Fatalf("log_records_lost_absorbed = %d, want %d", got, ls.LostRecords())
	}
}
