package vm

import (
	"fmt"

	"lvm/internal/machine"
	"lvm/internal/metrics"
	"lvm/internal/phys"
	"lvm/internal/tlblog"
)

// On-chip logging mode (Section 4.6 of the paper): instead of the bus
// logger, the kernel drives a processor with TLB-resident log support.
// Consequences, exactly as the paper describes:
//
//   - log records carry virtual addresses, so no reverse translation is
//     needed and "per-region logging is also directly supported" — the
//     prototype's one-logged-region-per-segment restriction disappears;
//   - logged pages stay in ordinary write-back mode ("while still using
//     a physically addressed cache"): the CPU emits the record itself,
//     so logged writes cost the same as unlogged writes;
//   - there are no FIFO overload interrupts: "the processor is
//     automatically stalled if there is an excessive level of write
//     activity to a logged region."
//
// The kernel keeps the same Segment/Region/LogSegment interface; only the
// fault handling underneath differs.

// NewKernelOnChip builds a machine whose logging device is the
// next-generation on-chip logger.
func NewKernelOnChip(cfg machine.Config) *Kernel {
	m := machine.New(cfg)
	k := &Kernel{
		M:      m,
		owners: make(map[uint32]frameOwner),
	}
	k.Chip = tlblog.New(m.Bus, m.Phys)
	m.Log = k.Chip
	k.Chip.SetMetrics(m.DeviceShard(), m.Metrics.Tracer())
	for i := 63; i >= 0; i-- {
		k.freeLogIdx = append(k.freeLogIdx, uint16(i))
	}
	f, err := m.Phys.Alloc()
	if err != nil {
		panic("vm: cannot allocate absorb frame")
	}
	k.absorbFrame = f
	k.Chip.OnFull = k.handleChipFull
	m.Metrics.AddCollector(k.collectStats)
	return k
}

// OnChip reports whether this kernel uses the Section 4.6 logger.
func (k *Kernel) OnChip() bool { return k.Chip != nil }

// handleChipFull advances a log to its next page when the descriptor's
// space is exhausted (the on-chip analogue of the invalid-log-address
// logging fault).
func (k *Kernel) handleChipFull(l *tlblog.Logger, logIndex uint16) bool {
	k.LoggingFaults++
	k.M.DeviceShard().Inc(metrics.VMLoggingFaults)
	for _, s := range k.segments {
		if s.isLog && s.logIdxValid && s.logIndex == logIndex && s.started {
			s.loggingFaults++
			return k.advanceChipHead(s)
		}
	}
	return false
}

// advanceChipHead points the log descriptor at the log segment's next
// page, or at the absorb page when the user has not extended the segment.
func (k *Kernel) advanceChipHead(ls *Segment) bool {
	if ls == nil || !ls.logIdxValid {
		return false
	}
	k.accountChipAbsorbLoss(ls)
	if ls.nextPage < ls.NumPages() {
		frame, err := ls.ensureFrame(ls.nextPage)
		if err != nil {
			return false
		}
		ls.hwPage = ls.nextPage
		ls.nextPage++
		ls.absorbing = false
		base := phys.FrameBase(frame)
		k.Chip.SetDescriptor(ls.logIndex, base, base+PageSize)
		k.M.DeviceShard().Inc(metrics.VMLogHeadAdvances)
		k.tracer().Emit(k.M.MaxNow(), metrics.EvLogAdvance, -1, uint64(ls.id), uint64(ls.hwPage))
		return true
	}
	k.AbsorbedPages++
	ls.absorbing = true
	base := phys.FrameBase(k.absorbFrame)
	k.Chip.SetDescriptor(ls.logIndex, base, base+PageSize)
	k.M.DeviceShard().Inc(metrics.VMAbsorbedPages)
	k.tracer().Emit(k.M.MaxNow(), metrics.EvLogAbsorb, -1, uint64(ls.id), 0)
	return true
}

// setChipHeadAt positions the descriptor at byte offset off of the log
// segment.
func (k *Kernel) setChipHeadAt(ls *Segment, off uint32) error {
	k.accountChipAbsorbLoss(ls)
	page := off >> PageShift
	if page >= ls.NumPages() {
		ls.nextPage = ls.NumPages()
		if !k.advanceChipHead(ls) {
			return fmt.Errorf("vm: cannot start on-chip log head")
		}
		return nil
	}
	frame, err := ls.ensureFrame(page)
	if err != nil {
		return err
	}
	ls.hwPage = page
	ls.nextPage = page + 1
	ls.absorbing = false
	ls.started = true
	base := phys.FrameBase(frame)
	k.Chip.SetDescriptor(ls.logIndex, base+(off&PageMask), base+PageSize)
	return nil
}

// accountChipAbsorbLoss tallies records lost to the absorb page.
func (k *Kernel) accountChipAbsorbLoss(ls *Segment) {
	if !ls.absorbing || k.Chip == nil {
		return
	}
	d := k.Chip.Descriptor(ls.logIndex)
	ls.lostRecords += uint64(d.Addr-phys.FrameBase(k.absorbFrame)) / uint64(ls.recordSize())
}

// chipAppendOffset is LogAppendOffset for on-chip logs.
func (k *Kernel) chipAppendOffset(ls *Segment) uint32 {
	if !ls.logIdxValid || !ls.started {
		return ls.savedOff
	}
	if ls.absorbing {
		return ls.NumPages() * PageSize
	}
	d := k.Chip.Descriptor(ls.logIndex)
	if !d.Valid {
		return ls.savedOff
	}
	return ls.hwPage*PageSize + (d.Addr & PageMask)
}

// logOnChip enables logging for a region under the on-chip design: the
// region's virtual pages are tagged in the (extended) TLB with the log's
// descriptor index. Several regions of the same segment may log to
// different segments — the per-region logging of Section 4.6.
func (k *Kernel) logOnChip(r *Region, ls *Segment) error {
	if r.mode != 0 { // hwlogger.ModeRecord
		return fmt.Errorf("vm: the on-chip logger supports record mode only")
	}
	if !ls.logIdxValid {
		idx, err := k.allocLogIndex()
		if err != nil {
			return err
		}
		ls.logIndex = idx
		ls.logIdxValid = true
	}
	if err := k.setChipHeadAt(ls, ls.savedOff); err != nil {
		return err
	}
	r.logSeg = ls
	ls.loggedRegion = r
	if r.as != nil {
		r.mapChipPages()
		r.as.invalidateRange(r.base, r.size)
	}
	return nil
}

// mapChipPages installs the TLB log tags for every page of the region.
func (r *Region) mapChipPages() {
	k := r.seg.k
	npages := (r.size + PageSize - 1) / PageSize
	for p := uint32(0); p < npages; p++ {
		k.Chip.MapPage((r.base>>PageShift)+p, r.logSeg.logIndex)
	}
}

// unlogOnChip disables on-chip logging for the region.
func (k *Kernel) unlogOnChip(r *Region) {
	ls := r.logSeg
	k.Sync()
	ls.savedOff = k.chipAppendOffset(ls)
	if ls.logIdxValid {
		k.Chip.Invalidate(ls.logIndex)
	}
	ls.started = false
	if r.as != nil {
		npages := (r.size + PageSize - 1) / PageSize
		for p := uint32(0); p < npages; p++ {
			k.Chip.UnmapPage((r.base >> PageShift) + p)
		}
		r.as.invalidateRange(r.base, r.size)
	}
	ls.loggedRegion = nil
	r.logSeg = nil
}

// ResolveLogAddr maps a log record's address field to the segment and
// offset it names: physical reverse translation for the prototype logger,
// direct virtual resolution through the logged region for the on-chip
// logger (whose records hold virtual addresses).
func (k *Kernel) ResolveLogAddr(ls *Segment, addr uint32) (seg *Segment, off uint32, ok bool) {
	if k.Chip != nil {
		r := ls.loggedRegion
		if r == nil || addr < r.base || addr >= r.base+r.size {
			return nil, 0, false
		}
		return r.seg, addr - r.base, true
	}
	return k.ReverseTranslate(addr)
}
