package rlvm

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"lvm/internal/core"
	"lvm/internal/ramdisk"
	"lvm/internal/rvm"
)

func setup(t *testing.T) (*core.System, *core.Process, *ramdisk.Disk, *Manager) {
	t.Helper()
	sys := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 8192})
	p := sys.NewProcess(0, sys.NewAddressSpace())
	d := ramdisk.New()
	m, err := New(sys, p, 8*core.PageSize, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sys, p, d, m
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestNoSetRangeNeeded(t *testing.T) {
	_, p, _, m := setup(t)
	must(t, m.Begin())
	must(t, m.RecoverableWrite32(m.Base()+40, 7))
	must(t, m.Commit())
	if got := p.Load32(m.Base() + 40); got != 7 {
		t.Fatalf("committed value = %d", got)
	}
}

func TestAbortRollsBackViaDeferredCopy(t *testing.T) {
	_, p, _, m := setup(t)
	must(t, m.Begin())
	must(t, m.RecoverableWrite32(m.Base(), 1))
	must(t, m.RecoverableWrite32(m.Base()+4, 2))
	must(t, m.Commit())
	must(t, m.Begin())
	must(t, m.RecoverableWrite32(m.Base(), 99))
	must(t, m.RecoverableWrite32(m.Base()+8, 100))
	must(t, m.Abort())
	if got := p.Load32(m.Base()); got != 1 {
		t.Fatalf("aborted word = %d, want 1", got)
	}
	if got := p.Load32(m.Base() + 4); got != 2 {
		t.Fatalf("committed word lost on abort: %d", got)
	}
	if got := p.Load32(m.Base() + 8); got != 0 {
		t.Fatalf("aborted word = %d, want 0", got)
	}
}

func TestAbortRewindsLog(t *testing.T) {
	sys, _, _, m := setup(t)
	must(t, m.Begin())
	must(t, m.RecoverableWrite32(m.Base(), 1))
	must(t, m.Abort())
	must(t, m.Begin())
	must(t, m.RecoverableWrite32(m.Base()+4, 2))
	must(t, m.Commit())
	// The aborted record must not have leaked into the committed WAL:
	// recover and check.
	p2 := sys.NewProcess(0, sys.NewAddressSpace())
	m2, err := New(sys, p2, 8*core.PageSize, ramdiskOf(m), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Load32(m2.Base()); got != 0 {
		t.Fatalf("aborted write recovered: %d", got)
	}
	if got := p2.Load32(m2.Base() + 4); got != 2 {
		t.Fatalf("committed write lost: %d", got)
	}
}

func ramdiskOf(m *Manager) ramdisk.Device { return m.disk }

func TestRecoveryReplaysCommitted(t *testing.T) {
	sys, _, d, m := setup(t)
	must(t, m.Begin())
	must(t, m.RecoverableWrite32(m.Base()+16, 1234))
	must(t, m.Commit())
	must(t, m.Begin())
	must(t, m.RecoverableWrite32(m.Base()+20, 5678))
	// Crash before commit.
	p2 := sys.NewProcess(0, sys.NewAddressSpace())
	m2, err := New(sys, p2, 8*core.PageSize, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Load32(m2.Base() + 16); got != 1234 {
		t.Fatalf("recovered = %d", got)
	}
	if got := p2.Load32(m2.Base() + 20); got != 0 {
		t.Fatalf("uncommitted write survived crash: %d", got)
	}
}

func TestRecoveryAfterTruncation(t *testing.T) {
	sys, _, d, m := setup(t)
	for i := uint32(0); i < 20; i++ {
		must(t, m.Begin())
		must(t, m.RecoverableWrite32(m.Base()+i*4, 100+i))
		must(t, m.Commit())
	}
	p2 := sys.NewProcess(0, sys.NewAddressSpace())
	m2, err := New(sys, p2, 8*core.PageSize, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 20; i++ {
		if got := p2.Load32(m2.Base() + i*4); got != 100+i {
			t.Fatalf("value %d after truncation+recovery = %d", i, got)
		}
	}
}

func TestSingleRecoverableWriteIsCheap(t *testing.T) {
	// Table 3: ~16 cycles for RLVM vs ~3515 for RVM. Our in-transaction
	// store is a 6-cycle logged write-through; with no per-write
	// software, it must stay two orders of magnitude below RVM's.
	_, p, _, m := setup(t)
	must(t, m.Begin())
	m.RecoverableWrite32(m.Base(), 1) // warm
	before := p.Now()
	must(t, m.RecoverableWrite32(m.Base(), 2))
	got := p.Now() - before
	if got > 40 {
		t.Fatalf("RLVM recoverable write = %d cycles, want ~6-16 (Table 3)", got)
	}
}

func TestMarkerDelimitsTransactions(t *testing.T) {
	_, _, _, m := setup(t)
	must(t, m.Begin())
	must(t, m.RecoverableWrite32(m.Base()+8, 1111))
	must(t, m.Commit())
	must(t, m.Begin())
	must(t, m.RecoverableWrite32(m.Base()+12, 2222))
	must(t, m.Commit())
	var seqs []uint32
	markerSeen := 0
	dataSeen := 0
	if err := m.wal.Scan(func(seq uint32, ranges []rvm.WALRange) {
		seqs = append(seqs, seq)
		for _, r := range ranges {
			if r.Off == 0 {
				markerSeen++ // the transaction-identifier word itself
			}
			if r.Off >= MarkerBytes {
				dataSeen++
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Fatalf("WAL sequences = %v", seqs)
	}
	if markerSeen != 2 || dataSeen != 2 {
		t.Fatalf("marker=%d data=%d ranges in WAL", markerSeen, dataSeen)
	}
}

func TestPropertyCommittedStateMatchesShadow(t *testing.T) {
	type op struct {
		Off    uint16
		Val    uint32
		Commit bool
	}
	prop := func(ops []op) bool {
		if len(ops) > 40 {
			ops = ops[:40]
		}
		sys := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 8192})
		p := sys.NewProcess(0, sys.NewAddressSpace())
		d := ramdisk.New()
		m, err := New(sys, p, 2*core.PageSize, d, Options{TruncateEvery: 3})
		if err != nil {
			return false
		}
		shadow := map[uint32]uint32{}
		for _, o := range ops {
			off := uint32(o.Off) % (2*core.PageSize - 4) &^ 3
			if m.Begin() != nil {
				return false
			}
			if m.RecoverableWrite32(m.Base()+off, o.Val) != nil {
				return false
			}
			if o.Commit {
				if m.Commit() != nil {
					return false
				}
				shadow[off] = o.Val
			} else if m.Abort() != nil {
				return false
			}
		}
		for off, v := range shadow {
			if p.Load32(m.Base()+off) != v {
				return false
			}
		}
		// Recovery equivalence.
		p2 := sys.NewProcess(0, sys.NewAddressSpace())
		m2, err := New(sys, p2, 2*core.PageSize, d, Options{})
		if err != nil {
			return false
		}
		for off, v := range shadow {
			if p2.Load32(m2.Base()+off) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestTruncateFailurePropagates pins the swallowed-error fix: a failure
// of the LVM-log truncation — injected in the window after the WAL is
// already reset — must surface to the caller instead of being tested
// only for success, and the manager must stay consistent: the log keeps
// its records, the next commit resumes from the same offset, and a
// recovery sees exactly the committed state.
func TestTruncateFailurePropagates(t *testing.T) {
	sys, _, d, m := setup(t)
	must(t, m.Begin())
	must(t, m.RecoverableWrite32(m.Base()+16, 0xAA))
	must(t, m.Commit())

	boom := fmt.Errorf("injected truncation failure")
	m.CompactManager().FailHook = func() error { return boom }
	if err := m.Truncate(); !errors.Is(err, boom) {
		t.Fatalf("Truncate error = %v, want wrapped injected failure", err)
	}
	if got := m.CompactManager().Stats.TruncateFailures; got != 1 {
		t.Fatalf("truncate failures = %d, want 1", got)
	}
	if sys.K.LogAppendOffset(m.LogSegment()) == 0 {
		t.Fatal("failed truncation emptied the log anyway")
	}

	// With the injection cleared the same call succeeds, and the manager
	// keeps committing and recovering correctly.
	m.CompactManager().FailHook = nil
	must(t, m.Truncate())
	if got := sys.K.LogAppendOffset(m.LogSegment()); got != 0 {
		t.Fatalf("log append offset after truncate = %d, want 0", got)
	}
	must(t, m.Begin())
	must(t, m.RecoverableWrite32(m.Base()+20, 0xBB))
	must(t, m.Commit())
	p2 := sys.NewProcess(0, sys.NewAddressSpace())
	m2, err := New(sys, p2, 8*core.PageSize, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Load32(m2.Base() + 16); got != 0xAA {
		t.Fatalf("recovered word 16 = %#x, want 0xAA", got)
	}
	if got := p2.Load32(m2.Base() + 20); got != 0xBB {
		t.Fatalf("recovered word 20 = %#x, want 0xBB", got)
	}
}
