package rlvm

import (
	"testing"

	"lvm/internal/core"
	"lvm/internal/ramdisk"
)

// TestRLVMOnChipKernel runs the full RLVM manager over the Section 4.6
// on-chip logging hardware instead of the prototype bus logger: the same
// recoverable-memory semantics must hold, with logged writes now costing
// the same as unlogged ones.
func TestRLVMOnChipKernel(t *testing.T) {
	sys := core.NewSystemOnChip(core.Config{NumCPUs: 1, MemFrames: 8192})
	p := sys.NewProcess(0, sys.NewAddressSpace())
	d := ramdisk.New()
	m, err := New(sys, p, 4*core.PageSize, d, Options{LogPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	must(t, m.Begin())
	must(t, m.RecoverableWrite32(m.Base(), 11))
	must(t, m.Commit())
	must(t, m.Begin())
	must(t, m.RecoverableWrite32(m.Base(), 99))
	must(t, m.Abort())
	if got := p.Load32(m.Base()); got != 11 {
		t.Fatalf("after abort = %d", got)
	}
	must(t, m.Begin())
	must(t, m.RecoverableWrite32(m.Base()+4, 22))
	must(t, m.Commit())

	// Crash recovery on a fresh on-chip system.
	sys2 := core.NewSystemOnChip(core.Config{NumCPUs: 1, MemFrames: 8192})
	p2 := sys2.NewProcess(0, sys2.NewAddressSpace())
	m2, err := New(sys2, p2, 4*core.PageSize, d, Options{LogPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Load32(m2.Base()); got != 11 {
		t.Fatalf("recovered = %d", got)
	}
	if got := p2.Load32(m2.Base() + 4); got != 22 {
		t.Fatalf("recovered+4 = %d", got)
	}
}

// TestRLVMOnChipWriteCost verifies the Section 4.6 promise at the
// application level: a recoverable write over on-chip logging costs the
// same as a plain cached store.
func TestRLVMOnChipWriteCost(t *testing.T) {
	sys := core.NewSystemOnChip(core.Config{NumCPUs: 1, MemFrames: 8192})
	p := sys.NewProcess(0, sys.NewAddressSpace())
	m, err := New(sys, p, 4*core.PageSize, ramdisk.New(), Options{LogPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	must(t, m.Begin())
	m.RecoverableWrite32(m.Base(), 0) // warm
	before := p.Now()
	must(t, m.RecoverableWrite32(m.Base(), 1))
	if got := p.Now() - before; got > 2 {
		t.Fatalf("on-chip recoverable write = %d cycles, want ~1 (L1 hit)", got)
	}
}
