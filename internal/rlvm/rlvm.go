// Package rlvm implements RLVM — recoverable virtual memory built on
// logged virtual memory, as described in Section 2.5 of the paper:
//
// "In RLVM, no set_range() calls are needed. Instead, all recoverable
// segments are logged so all modifications of a logged segment in the
// context of a transaction are automatically recorded. By writing the
// transaction identifier to a special logged location (whenever it
// changes), RLVM can determine the transaction to which a log record
// belongs."
//
// The manager keeps a checkpoint segment holding the last committed state
// as the deferred-copy source of the working (recoverable) segment:
//
//   - a store to recoverable memory is just a logged write (no software);
//   - commit reads the transaction's records out of the LVM log, writes
//     them as one redo record to the RAM-disk write-ahead log (the same
//     commit/truncation machinery as the RVM baseline — the paper notes
//     RLVM does not reduce those costs), and rolls the checkpoint forward;
//   - abort is resetDeferredCopy (back to the committed checkpoint) plus
//     a rewind of the LVM log over the aborted records.
package rlvm

import (
	"fmt"

	"lvm/internal/compact"
	"lvm/internal/core"
	"lvm/internal/cycles"
	"lvm/internal/ramdisk"
	"lvm/internal/rvm"
)

// MarkerBytes reserves the start of the recoverable region for the
// transaction-identifier word ("a special logged location").
const MarkerBytes = 16

// Options tunes the manager.
type Options struct {
	// TruncateEvery truncates the disk log (and the LVM log) after this
	// many commits. 0 = default (8).
	TruncateEvery int
	// LogPages is the LVM log segment capacity in pages. 0 = 64.
	LogPages uint32
}

// Stats mirrors rvm.Stats for comparison.
type Stats struct {
	Txns         uint64
	Records      uint64 // LVM log records consumed at commit
	BadRecords   uint64 // records rejected by commit-time validation
	InTxnCycles  uint64
	CommitCycles uint64
	TruncCycles  uint64
	Aborts       uint64
}

// Manager is an RLVM recoverable segment manager for one process.
type Manager struct {
	sys  *core.System
	p    *core.Process
	disk ramdisk.Device
	wal  *rvm.WAL

	ckpt *core.Segment // committed state (deferred-copy source)
	seg  *core.Segment // working recoverable segment (logged)
	reg  *core.Region
	ls   *core.Segment    // LVM log segment
	cm   *compact.Manager // owns the LVM log's prefix lifecycle
	base core.Addr
	size uint32

	seq       uint32
	inTxn     bool
	txnStart  uint64
	commitOff uint32 // LVM log offset at the last commit

	dirtyImage []rvm.WALRange
	commits    int
	opts       Options

	Stats Stats
}

// New creates an RLVM recoverable segment of the given usable size (the
// marker word is carved out of the front), recovers committed state from
// disk, and binds the working region (logged) into the process's address
// space. The disk is any ramdisk.Device — crash recovery passes a
// retry-wrapped device so transient faults during the image load and log
// scan are absorbed below this layer.
func New(sys *core.System, p *core.Process, size uint32, disk ramdisk.Device, opts Options) (*Manager, error) {
	if opts.TruncateEvery <= 0 {
		opts.TruncateEvery = 8
	}
	if opts.LogPages == 0 {
		opts.LogPages = 64
	}
	total := size + MarkerBytes
	m := &Manager{
		sys:  sys,
		p:    p,
		disk: disk,
		wal:  rvm.NewWAL(disk, walBase(total)),
		size: total,
		opts: opts,
	}
	m.ckpt = core.NewNamedSegment(sys, "rlvm-checkpoint", total, nil)
	m.seg = core.NewNamedSegment(sys, "rlvm-working", total, nil)
	if err := m.seg.SetSourceSegment(m.ckpt, 0); err != nil {
		return nil, err
	}
	m.reg = core.NewStdRegion(sys, m.seg)
	m.ls = core.NewLogSegment(sys, opts.LogPages)
	if err := m.reg.Log(m.ls); err != nil {
		return nil, err
	}
	base, err := m.reg.Bind(p.AS, 0)
	if err != nil {
		return nil, err
	}
	m.base = base
	m.cm, err = compact.New(sys, compact.Options{Log: m.ls})
	if err != nil {
		return nil, err
	}
	// Recovery: image + committed redo records go into the checkpoint;
	// the working segment then reads through.
	img := make([]byte, total)
	if err := disk.TryReadAt(nil, 0, img); err != nil {
		return nil, fmt.Errorf("rlvm: image load: %w", err)
	}
	m.ckpt.RawWrite(0, img)
	if err := m.wal.Scan(func(seq uint32, ranges []rvm.WALRange) {
		m.seq = seq
		for _, r := range ranges {
			m.ckpt.RawWrite(r.Off, r.Data)
			m.dirtyImage = append(m.dirtyImage, r)
		}
	}); err != nil {
		return nil, err
	}
	return m, nil
}

func walBase(size uint32) uint64 {
	return (uint64(size) + ramdisk.BlockSize - 1) / ramdisk.BlockSize * ramdisk.BlockSize
}

// Base returns the first usable (post-marker) virtual address of the
// recoverable region.
func (m *Manager) Base() core.Addr { return m.base + MarkerBytes }

// Segment returns the working segment.
func (m *Manager) Segment() *core.Segment { return m.seg }

// LogSegment returns the LVM log segment backing the working region (the
// fault injector arms its DMA perturbations against it).
func (m *Manager) LogSegment() *core.Segment { return m.ls }

// CompactManager exposes the log-prefix manager, so fault injection can
// arm its FailHook against the WAL-reset-to-log-truncation window.
func (m *Manager) CompactManager() *compact.Manager { return m.cm }

// markerVA is the logged transaction-identifier word.
func (m *Manager) markerVA() core.Addr { return m.base }

// Begin starts a transaction by writing the new transaction identifier to
// the marker location — one logged write.
func (m *Manager) Begin() error {
	if m.inTxn {
		return fmt.Errorf("rlvm: nested transaction")
	}
	m.seq++
	m.p.Store32(m.markerVA(), m.seq)
	m.inTxn = true
	m.txnStart = m.p.Now()
	m.Stats.Txns++
	return nil
}

// RecoverableWrite32 is the RLVM single recoverable write of Table 3: just
// the store. Logging happens in hardware; the old value exists in the
// checkpoint/log, so no per-write software runs.
func (m *Manager) RecoverableWrite32(va core.Addr, v uint32) error {
	if !m.inTxn {
		return fmt.Errorf("rlvm: write outside transaction")
	}
	m.p.Store32(va, v)
	return nil
}

// Commit makes the transaction durable: the commit daemon consumes the
// LVM log records written since the previous commit, emits them as one
// write-ahead-log record (same device discipline as RVM), and rolls the
// checkpoint segment forward so it holds the committed state.
func (m *Manager) Commit() error {
	if !m.inTxn {
		return fmt.Errorf("rlvm: Commit outside transaction")
	}
	m.Stats.InTxnCycles += m.p.Now() - m.txnStart
	commitStart := m.p.Now()

	r := core.NewLogReader(m.sys, m.ls)
	if err := r.Seek(m.commitOff); err != nil {
		return err
	}
	var recs []rvm.WALRange
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		m.p.Compute(cycles.CommitPerRecordCycles)
		m.Stats.Records++
		if rec.Seg != m.seg {
			continue
		}
		val := rec.ValueBytes()
		if uint64(rec.SegOff)+uint64(len(val)) > uint64(m.size) {
			// A record whose range leaves the segment cannot be a real
			// logged write (corrupted addr/size bits): skip it rather
			// than let it wreck the checkpoint.
			m.Stats.BadRecords++
			continue
		}
		recs = append(recs, rvm.WALRange{Off: rec.SegOff, Data: val})
		// Roll the checkpoint forward (CULT for the committed txn).
		m.ckpt.RawWrite(rec.SegOff, val)
	}
	if err := m.wal.AppendCommit(m.p.CPU, m.seq, recs); err != nil {
		// The commit never became durable; the transaction stays open and
		// the checkpoint roll-forward is undone at the next recovery (the
		// checkpoint is volatile — disk state is untouched).
		return err
	}
	m.dirtyImage = append(m.dirtyImage, recs...)
	m.p.Compute(cycles.TxnMgmtCycles / 2)
	m.commitOff = r.Offset()
	// The working segment's modifications are now reflected in the
	// checkpoint; clear the deferred-copy dirty state so a later abort
	// rolls back only past this point.
	if _, err := m.sys.K.ResetDeferredCopySegment(m.seg, nil); err != nil {
		return err
	}
	m.inTxn = false
	m.commits++
	m.Stats.CommitCycles += m.p.Now() - commitStart
	if m.commits%m.opts.TruncateEvery == 0 {
		if err := m.Truncate(); err != nil {
			return err
		}
	}
	return nil
}

// Abort rolls the working segment back to the committed checkpoint with
// resetDeferredCopy and rewinds the LVM log over the aborted records.
func (m *Manager) Abort() error {
	if !m.inTxn {
		return fmt.Errorf("rlvm: Abort outside transaction")
	}
	m.Stats.InTxnCycles += m.p.Now() - m.txnStart
	if _, err := m.sys.K.ResetDeferredCopySegment(m.seg, m.p.CPU); err != nil {
		return err
	}
	if err := m.sys.K.RewindLog(m.ls, m.commitOff); err != nil {
		return err
	}
	m.inTxn = false
	m.Stats.Aborts++
	return nil
}

// Truncate applies committed updates to the durable image, resets the
// write-ahead log, and truncates the LVM log segment. On a device error
// before the reset the write-ahead log keeps its records, so nothing
// committed is lost. A failure of the LVM-log truncation itself — after
// the WAL is already reset — must surface too: this code used to test it
// only for success, leaving commitOff pointing into a log the kernel
// refused to truncate, and the caller none the wiser.
func (m *Manager) Truncate() error {
	start := m.p.Now()
	// One scatter-gather device operation for the image update.
	var bytes uint64
	for _, r := range m.dirtyImage {
		if err := m.disk.TryWriteAt(nil, uint64(r.Off), r.Data); err != nil {
			return fmt.Errorf("rlvm: truncate image write: %w", err)
		}
		bytes += uint64(len(r.Data))
	}
	blocks := (bytes + ramdisk.BlockSize - 1) / ramdisk.BlockSize
	m.p.Compute(ramdisk.OpCycles + blocks*ramdisk.BlockCycles)
	if err := m.disk.TrySync(m.p.CPU); err != nil {
		return fmt.Errorf("rlvm: truncate sync: %w", err)
	}
	m.dirtyImage = m.dirtyImage[:0]
	if err := m.wal.Reset(m.p.CPU); err != nil {
		return err
	}
	if err := m.cm.TruncateAll(); err != nil {
		return fmt.Errorf("rlvm: lvm log truncate after wal reset: %w", err)
	}
	m.commitOff = 0
	m.Stats.TruncCycles += m.p.Now() - start
	return nil
}
