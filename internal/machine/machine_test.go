package machine

import (
	"testing"

	"lvm/internal/cycles"
	"lvm/internal/phys"
)

func TestWordWriteThroughCost(t *testing.T) {
	m := New(Config{NumCPUs: 1, MemFrames: 16})
	c := m.CPUs[0]
	f, _ := m.Phys.Alloc()
	addr := phys.FrameBase(f)
	c.WordWrite(addr, addr, 1, 4, true, false)
	if c.Now != cycles.WordWriteThroughTotal {
		t.Fatalf("write-through cost = %d, want %d (Table 2)", c.Now, cycles.WordWriteThroughTotal)
	}
}

func TestBlockOpsCost(t *testing.T) {
	m := New(Config{NumCPUs: 1, MemFrames: 16})
	c := m.CPUs[0]
	c.BlockWrite()
	if c.Now != cycles.BlockWriteTotal {
		t.Fatalf("block write cost = %d, want %d (Table 2)", c.Now, cycles.BlockWriteTotal)
	}
	before := c.Now
	c.BlockRead()
	if c.Now-before != cycles.BlockWriteTotal {
		t.Fatalf("block read cost = %d, want %d", c.Now-before, cycles.BlockWriteTotal)
	}
}

func TestWriteBackHitCost(t *testing.T) {
	m := New(Config{NumCPUs: 1, MemFrames: 16})
	c := m.CPUs[0]
	f, _ := m.Phys.Alloc()
	addr := phys.FrameBase(f)
	c.WordWrite(addr, addr, 1, 4, false, false) // miss: fill
	missCost := c.Now
	if missCost != cycles.BlockWriteTotal+cycles.L1HitCycles {
		t.Fatalf("write miss cost = %d, want %d", missCost, cycles.BlockWriteTotal+cycles.L1HitCycles)
	}
	c.WordWrite(addr+4, addr+4, 2, 4, false, false) // same line: hit
	if c.Now-missCost != cycles.L1HitCycles {
		t.Fatalf("write hit cost = %d, want %d", c.Now-missCost, cycles.L1HitCycles)
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	m := New(Config{NumCPUs: 2, MemFrames: 16})
	m.CPUs[0].Compute(100)
	m.CPUs[1].Compute(50)
	if m.MaxNow() != 100 {
		t.Fatalf("MaxNow = %d, want 100", m.MaxNow())
	}
}

func TestBusContentionBetweenCPUs(t *testing.T) {
	m := New(Config{NumCPUs: 2, MemFrames: 16})
	f, _ := m.Phys.Alloc()
	addr := phys.FrameBase(f)
	// Both CPUs write through at the same local time: the second must
	// queue behind the first on the shared bus.
	m.CPUs[0].WordWrite(addr, addr, 1, 4, true, false)
	m.CPUs[1].WordWrite(addr+4, addr+4, 2, 4, true, false)
	if m.CPUs[0].Now != cycles.WordWriteThroughTotal {
		t.Fatalf("cpu0 = %d", m.CPUs[0].Now)
	}
	if m.CPUs[1].Now <= m.CPUs[0].Now {
		t.Fatalf("cpu1 (%d) did not queue behind cpu0 (%d)", m.CPUs[1].Now, m.CPUs[0].Now)
	}
}

func TestStallAll(t *testing.T) {
	m := New(Config{NumCPUs: 3, MemFrames: 16})
	m.CPUs[0].Compute(10)
	m.StallAll(100)
	for i, c := range m.CPUs {
		if c.Now != 100 {
			t.Fatalf("cpu%d = %d, want 100", i, c.Now)
		}
	}
	if m.CPUs[0].StallCycles != 90 {
		t.Fatalf("cpu0 stall = %d, want 90", m.CPUs[0].StallCycles)
	}
}

// fakeLog records snoops and exercises the LogDevice plumbing.
type fakeLog struct {
	snooped []LoggedWrite
	pumped  []uint64
	stall   uint64
}

func (f *fakeLog) Snoop(w LoggedWrite) uint64 {
	f.snooped = append(f.snooped, w)
	if f.stall > w.Time {
		return f.stall
	}
	return w.Time
}
func (f *fakeLog) PumpUntil(t uint64) { f.pumped = append(f.pumped, t) }
func (f *fakeLog) DrainAll() uint64   { return 0 }

func TestLoggedWriteSnoops(t *testing.T) {
	m := New(Config{NumCPUs: 1, MemFrames: 16})
	fl := &fakeLog{}
	m.Log = fl
	f, _ := m.Phys.Alloc()
	addr := phys.FrameBase(f) + 0x10
	m.CPUs[0].WordWrite(addr, addr, 0x42, 4, true, true)
	if len(fl.snooped) != 1 {
		t.Fatalf("snooped %d writes, want 1", len(fl.snooped))
	}
	w := fl.snooped[0]
	if w.Addr != addr || w.Value != 0x42 || w.Size != 4 || w.CPU != 0 {
		t.Fatalf("snooped = %+v", w)
	}
	if w.Time != cycles.WordWriteThroughTotal {
		t.Fatalf("snoop time = %d", w.Time)
	}
}

func TestUnloggedWriteThroughDoesNotSnoop(t *testing.T) {
	m := New(Config{NumCPUs: 1, MemFrames: 16})
	fl := &fakeLog{}
	m.Log = fl
	f, _ := m.Phys.Alloc()
	m.CPUs[0].WordWrite(phys.FrameBase(f), phys.FrameBase(f), 1, 4, true, false)
	if len(fl.snooped) != 0 {
		t.Fatalf("unlogged write snooped")
	}
	if len(fl.pumped) == 0 {
		t.Fatalf("log device not pumped before bus use")
	}
}

func TestSnoopStallAppliesToCPU(t *testing.T) {
	m := New(Config{NumCPUs: 1, MemFrames: 16})
	fl := &fakeLog{stall: 5000}
	m.Log = fl
	f, _ := m.Phys.Alloc()
	m.CPUs[0].WordWrite(phys.FrameBase(f), phys.FrameBase(f), 1, 4, true, true)
	if m.CPUs[0].Now != 5000 {
		t.Fatalf("CPU not stalled by snoop: now = %d", m.CPUs[0].Now)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.NumCPUs != 4 {
		t.Fatalf("prototype has 4 CPUs, config says %d", cfg.NumCPUs)
	}
	m := New(cfg)
	if len(m.CPUs) != 4 {
		t.Fatalf("machine has %d CPUs", len(m.CPUs))
	}
}

func TestLoggedWriteBackSnoops(t *testing.T) {
	// Section 4.6: with on-chip logging support, a logged write in
	// write-back mode still reaches the log device (the CPU emits the
	// record itself).
	m := New(Config{NumCPUs: 1, MemFrames: 16})
	fl := &fakeLog{}
	m.Log = fl
	f, _ := m.Phys.Alloc()
	addr := phys.FrameBase(f)
	m.CPUs[0].WordWrite(addr, 0x77770000, 5, 4, false, true)
	if len(fl.snooped) != 1 {
		t.Fatalf("write-back logged write not snooped")
	}
	if fl.snooped[0].VAddr != 0x77770000 {
		t.Fatalf("virtual address not carried: %#x", fl.snooped[0].VAddr)
	}
}

func TestDrainWaitsForLogDevice(t *testing.T) {
	m := New(Config{NumCPUs: 1, MemFrames: 16})
	fl := &fakeLog{}
	m.Log = fl
	m.CPUs[0].Compute(50)
	if got := m.Drain(); got != 50 {
		t.Fatalf("Drain = %d, want 50 (device idle)", got)
	}
}

func TestStoreLoadCounters(t *testing.T) {
	m := New(Config{NumCPUs: 1, MemFrames: 16})
	c := m.CPUs[0]
	f, _ := m.Phys.Alloc()
	addr := phys.FrameBase(f)
	c.WordWrite(addr, addr, 1, 4, false, false)
	c.WordRead(addr)
	c.WordRead(addr + 4)
	if c.Stores != 1 || c.Loads != 2 {
		t.Fatalf("counters: stores=%d loads=%d", c.Stores, c.Loads)
	}
}

func TestCycleWatchFiresOnceAndDisarms(t *testing.T) {
	m := New(Config{NumCPUs: 1, MemFrames: 16})
	c := m.CPUs[0]

	var fired []uint64
	m.SetCycleWatch(100, func(w *CPU) {
		fired = append(fired, w.Now)
		// Re-entrant work from the callback must not re-fire the
		// already-disarmed watch.
		w.Compute(500)
	})
	c.Compute(40) // 40 < 100: nothing
	if len(fired) != 0 {
		t.Fatalf("watch fired early at %v", fired)
	}
	c.Compute(70) // 110 >= 100: fires exactly once
	if len(fired) != 1 || fired[0] != 110 {
		t.Fatalf("fired = %v, want exactly [110]", fired)
	}
	c.Compute(1000) // disarmed: no re-fire
	if len(fired) != 1 {
		t.Fatalf("disarmed watch re-fired: %v", fired)
	}
}

func TestCycleWatchFiresOnWriteThroughStore(t *testing.T) {
	m := New(Config{NumCPUs: 1, MemFrames: 16})
	c := m.CPUs[0]
	f, _ := m.Phys.Alloc()
	addr := phys.FrameBase(f)

	fired := false
	m.SetCycleWatch(1, func(w *CPU) { fired = true })
	c.WordWrite(addr, addr, 1, 4, true, false)
	if !fired {
		t.Fatalf("watch did not fire at a write-through store site")
	}
}

func TestCycleWatchDisarmedCostsNothing(t *testing.T) {
	// Two identical runs, one with a watch armed far beyond the horizon:
	// an armed-but-unfired watch must not change simulated timing.
	run := func(arm bool) uint64 {
		m := New(Config{NumCPUs: 1, MemFrames: 16})
		if arm {
			m.SetCycleWatch(1<<60, func(*CPU) {})
		}
		c := m.CPUs[0]
		f, _ := m.Phys.Alloc()
		addr := phys.FrameBase(f)
		for i := 0; i < 100; i++ {
			c.Compute(7)
			c.WordWrite(addr+phys.Addr(4*(i%8)), 0, uint32(i), 4, true, false)
		}
		return c.Now
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("armed watch changed timing: %d vs %d", a, b)
	}
	// SetCycleWatch(0, ...) disarms.
	m := New(Config{NumCPUs: 1, MemFrames: 16})
	fired := false
	m.SetCycleWatch(10, func(*CPU) { fired = true })
	m.SetCycleWatch(0, nil)
	m.CPUs[0].Compute(100)
	if fired {
		t.Fatalf("watch fired after explicit disarm")
	}
}
