// Package machine models the ParaDiGM multiprocessor of the LVM prototype:
// four (configurable) 25 MHz processors with on-chip split I/D caches, a
// shared system bus, a 4 MiB second-level cache, physical memory, and an
// attached bus-snooping log device.
//
// The model is a deterministic, single-threaded, cycle-level simulation.
// Each CPU carries its own cycle clock; the bus serializes all off-chip
// traffic on a shared timeline; the log device (the hardware logger of
// Section 3.1, or the on-chip logger of Section 4.6) is pumped lazily so
// that its DMA traffic competes with CPU traffic for the bus exactly as in
// the prototype. All costs are calibrated to Table 2 of the paper; see
// package cycles.
//
// The Go runtime cannot trap individual stores the way the prototype's
// write-through cache plus bus snoop can, so application stores are issued
// through explicit CPU operations (WordWrite, with the write-through and
// logged attributes supplied by the virtual-memory layer). This preserves
// the paper's data path — store, bus, snoop, FIFO, DMA — while remaining
// portable; see DESIGN.md for the substitution rationale.
package machine

import (
	"strconv"

	"lvm/internal/bus"
	"lvm/internal/cache"
	"lvm/internal/cycles"
	"lvm/internal/metrics"
	"lvm/internal/phys"
)

// LoggedWrite is one write operation observed on the bus with the "logged"
// tag asserted (Section 3.1: "a bus signal controlled by the page mapping
// associated with the address indicates whether the write operation is to
// be logged").
type LoggedWrite struct {
	Addr  phys.Addr // physical address of the write
	VAddr uint32    // virtual address (used by the on-chip logger of Section 4.6; 0 if unknown)
	Value uint32    // datum written
	Size  uint16    // size in bytes (1, 2 or 4)
	CPU   uint16    // issuing processor
	Time  uint64    // bus cycle at which the write completed
}

// LogDevice is the interface between the machine and a logging device.
// The prototype's bus logger (package hwlogger) and the next-generation
// on-chip logger (package tlblog) both satisfy it.
type LogDevice interface {
	// Snoop delivers a logged write to the device. If the device must
	// stall the processors (FIFO overload in the prototype, write-buffer
	// stall on-chip), it returns the cycle until which the issuing CPU
	// is stalled; otherwise it returns w.Time.
	Snoop(w LoggedWrite) (stallUntil uint64)
	// PumpUntil lets the device perform any internal processing whose
	// service would begin before cycle t, acquiring the bus as needed.
	// The machine calls this before every CPU bus request so the
	// device's DMA traffic interleaves with CPU traffic.
	PumpUntil(t uint64)
	// DrainAll completes all pending device work and returns the cycle
	// at which the device went idle.
	DrainAll() uint64
}

// Config describes a machine.
type Config struct {
	// NumCPUs is the processor count (the prototype has four).
	NumCPUs int
	// MemFrames is the physical memory size in 4 KiB frames.
	MemFrames int
}

// DefaultConfig is the ParaDiGM prototype configuration with 64 MiB of
// physical memory.
func DefaultConfig() Config {
	return Config{NumCPUs: 4, MemFrames: 64 << 8} // 16384 frames = 64 MiB
}

// Machine is the simulated multiprocessor.
type Machine struct {
	Phys *phys.Memory
	Bus  *bus.Bus
	Log  LogDevice // nil when no logger is attached
	CPUs []*CPU

	// Metrics is the machine's counter/histogram registry: one shard per
	// CPU plus a final shard for bus devices (the hardware logger).
	Metrics *metrics.Registry

	// watchAt/watchFn is a one-shot cycle watchpoint: the first time a CPU
	// clock reaches watchAt at a watch site (Compute, write-through
	// stores), watchFn fires once and the watch disarms. The fault
	// injector uses it to crash the machine at a chosen cycle. The check
	// is a single predictable compare, and firing never adjusts any clock,
	// so an armed (or disarmed) watch cannot perturb cycle accounting.
	watchAt uint64
	watchFn func(c *CPU)
}

// New creates a machine. The log device, if any, is attached afterwards by
// assigning Machine.Log (the virtual-memory layer does this, since the
// logger's fault handling lives in the kernel).
func New(cfg Config) *Machine {
	if cfg.NumCPUs <= 0 {
		cfg.NumCPUs = 1
	}
	if cfg.MemFrames <= 0 {
		cfg.MemFrames = 64 << 8
	}
	m := &Machine{
		Phys:    phys.NewMemory(cfg.MemFrames),
		Bus:     bus.New(),
		Metrics: metrics.New(cfg.NumCPUs + 1),
	}
	for i := 0; i < cfg.NumCPUs; i++ {
		m.CPUs = append(m.CPUs, &CPU{ID: i, D1: cache.NewL1(), m: m, MS: m.Metrics.Shard(i)})
	}
	m.Metrics.AddCollector(m.collectStats)
	return m
}

// DeviceShard is the metrics shard bus devices (the hardware logger)
// charge their events to.
func (m *Machine) DeviceShard() *metrics.Shard {
	return m.Metrics.Shard(len(m.CPUs))
}

// collectStats publishes the per-CPU and per-cache stats the components
// already count in their own fields. Running at Snapshot time keeps the
// hot paths free of double accounting.
func (m *Machine) collectStats(emit func(name string, v uint64)) {
	var compute, stall, loads, stores, hits, misses, wbacks, sweeps, dirtyDropped uint64
	for i, c := range m.CPUs {
		p := "machine.cpu" + strconv.Itoa(i)
		emit(p+".compute_cycles", c.ComputeCycles)
		emit(p+".stall_cycles", c.StallCycles)
		emit(p+".loads", c.Loads)
		emit(p+".stores", c.Stores)
		compute += c.ComputeCycles
		stall += c.StallCycles
		loads += c.Loads
		stores += c.Stores
		hits += c.D1.Hits
		misses += c.D1.Misses
		wbacks += c.D1.Writebacks
		sweeps += c.D1.PageSweeps
		dirtyDropped += c.D1.SweepDirtyDropped
	}
	emit("machine.compute_cycles", compute)
	emit("machine.stall_cycles", stall)
	emit("machine.loads", loads)
	emit("machine.stores", stores)
	emit("cache.l1_hits", hits)
	emit("cache.l1_misses", misses)
	emit("cache.l1_writebacks", wbacks)
	emit("cache.page_sweeps", sweeps)
	emit("cache.sweep_dirty_dropped", dirtyDropped)
}

// CPU is one simulated processor with its own cycle clock and on-chip data
// cache model.
type CPU struct {
	ID int
	// Now is this processor's cycle clock.
	Now uint64
	// D1 is the on-chip data cache cost model.
	D1 *cache.L1
	// MS is this CPU's metrics shard.
	MS *metrics.Shard
	m  *Machine

	// Stats.
	ComputeCycles uint64
	Loads         uint64
	Stores        uint64
	StallCycles   uint64
}

// Machine returns the machine this CPU belongs to.
func (c *CPU) Machine() *Machine { return c.m }

// Compute advances the CPU clock by n cycles of pure computation.
func (c *CPU) Compute(n uint64) {
	c.Now += n
	c.ComputeCycles += n
	if c.m.watchAt != 0 && c.Now >= c.m.watchAt {
		c.m.fireWatch(c)
	}
}

// SetCycleWatch arms fn to fire once, the first time any CPU's clock
// reaches cycle t at a watch site. t == 0 disarms. Watch sites cover
// Compute and write-through stores — the paths every logged workload goes
// through — not the write-back store hit, which is the machine's hot path.
func (m *Machine) SetCycleWatch(t uint64, fn func(c *CPU)) {
	m.watchAt = t
	m.watchFn = fn
}

// fireWatch disarms the watch before invoking it, so a callback that
// panics (a simulated crash) or issues more work cannot re-enter.
func (m *Machine) fireWatch(c *CPU) {
	fn := m.watchFn
	m.watchAt, m.watchFn = 0, nil
	if fn != nil {
		fn(c)
	}
}

// pump lets the log device claim bus slots that become serviceable before
// the CPU's next request.
func (m *Machine) pump(t uint64) {
	if m.Log != nil {
		m.Log.PumpUntil(t)
	}
}

// WordWrite performs one data write of the given size at physical address
// paddr, virtual address vaddr (carried for log devices that record
// virtual addresses, Section 4.6). writeThrough selects the on-chip cache
// mode for the page (the kernel puts logged pages in write-through mode,
// Section 3.2); logged asserts the bus "log this" tag.
//
// A write-through write costs 6 cycles (5 on the bus, Table 2). A
// write-back write is an L1 cache access: a hit costs 1 cycle; a miss
// fills the line from the second-level cache (9 cycles, 8 bus), first
// writing back a dirty victim if necessary (9 cycles, 8 bus).
func (c *CPU) WordWrite(paddr phys.Addr, vaddr uint32, value uint32, size uint16, writeThrough, logged bool) {
	c.Stores++
	if writeThrough {
		c.m.pump(c.Now)
		lead := uint64(cycles.WordWriteThroughTotal - cycles.WordWriteThroughBus)
		grant := c.m.Bus.Acquire(c.Now+lead, cycles.WordWriteThroughBus)
		done := grant + cycles.WordWriteThroughBus
		c.StallCycles += grant - (c.Now + lead)
		c.Now = done
		// Update the L1 copy if present (write-through, no allocate).
		c.D1.WriteNoAllocate(paddr)
		if logged && c.m.Log != nil {
			if stall := c.m.Log.Snoop(LoggedWrite{
				Addr: paddr, VAddr: vaddr, Value: value, Size: size,
				CPU: uint16(c.ID), Time: done,
			}); stall > c.Now {
				c.StallCycles += stall - c.Now
				c.MS.Observe(metrics.HistStallCycles, stall-c.Now)
				c.Now = stall
			}
		}
		if c.m.watchAt != 0 && c.Now >= c.m.watchAt {
			c.m.fireWatch(c)
		}
		return
	}
	// Fast path: a write-back hit costs exactly one cycle and touches no
	// bus, so skip the event plumbing entirely.
	if c.D1.StoreHit(paddr) {
		c.Now += cycles.L1HitCycles
	} else {
		c.chargeL1(c.D1.Access(paddr, true))
	}
	if logged && c.m.Log != nil {
		// Write-back logged writes exist only with on-chip logging
		// support (Section 4.6): the CPU itself emits the record, so no
		// write-through is needed to make the write visible.
		if stall := c.m.Log.Snoop(LoggedWrite{
			Addr: paddr, VAddr: vaddr, Value: value, Size: size,
			CPU: uint16(c.ID), Time: c.Now,
		}); stall > c.Now {
			c.StallCycles += stall - c.Now
			c.MS.Observe(metrics.HistStallCycles, stall-c.Now)
			c.Now = stall
		}
	}
}

// WordRead performs one data read at paddr, charging L1/L2 costs.
func (c *CPU) WordRead(paddr phys.Addr) {
	c.Loads++
	if c.D1.LoadHit(paddr) {
		c.Now += cycles.L1HitCycles
		return
	}
	c.chargeL1(c.D1.Access(paddr, false))
}

func (c *CPU) chargeL1(ev cache.Event) {
	if ev.Hit {
		c.Now += cycles.L1HitCycles
		return
	}
	if ev.WritebackVictim {
		c.BlockWrite()
	}
	c.BlockRead()
	c.Now += cycles.L1HitCycles
}

// BlockRead charges one 16-byte block read from the second-level cache
// (9 cycles total, 8 bus).
func (c *CPU) BlockRead() {
	c.m.pump(c.Now)
	grant := c.m.Bus.Acquire(c.Now+uint64(cycles.BlockWriteTotal-cycles.BlockWriteBus), cycles.BlockWriteBus)
	c.Now = grant + cycles.BlockWriteBus
}

// BlockWrite charges one 16-byte block write to the second-level cache
// (9 cycles total, 8 bus).
func (c *CPU) BlockWrite() {
	c.m.pump(c.Now)
	grant := c.m.Bus.Acquire(c.Now+uint64(cycles.BlockWriteTotal-cycles.BlockWriteBus), cycles.BlockWriteBus)
	c.Now = grant + cycles.BlockWriteBus
}

// StallAll suspends every processor until cycle t (used by the kernel's
// logger-overload handling: "The kernel responds to the interrupt by
// suspending all processes that might be generating log data until the
// FIFOs drain", Section 3.1.3).
func (m *Machine) StallAll(t uint64) {
	for _, c := range m.CPUs {
		if c.Now < t {
			c.StallCycles += t - c.Now
			c.Now = t
		}
	}
}

// MaxNow returns the latest CPU clock, i.e. the machine's elapsed time.
func (m *Machine) MaxNow() uint64 {
	var mx uint64
	for _, c := range m.CPUs {
		if c.Now > mx {
			mx = c.Now
		}
	}
	return mx
}

// Drain completes all pending log-device work and returns the cycle at
// which the whole machine (CPUs and devices) went idle.
func (m *Machine) Drain() uint64 {
	idle := m.MaxNow()
	if m.Log != nil {
		if t := m.Log.DrainAll(); t > idle {
			idle = t
		}
	}
	return idle
}
