package tpca

import "testing"

func TestMultiBranchScale(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Branches = 4
	cfg.Txns = 80
	rv, mv, err := RunRVM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rl, ml, err := RunRLVM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rl.TPS <= rv.TPS {
		t.Fatalf("RLVM (%f) not faster at 4 branches (%f)", rl.TPS, rv.TPS)
	}
	// Conservation: total money added must equal the sum of history
	// deltas, identically in both engines.
	l := newLayout(cfg)
	var sumV, sumL uint32
	for b := 0; b < cfg.Branches; b++ {
		off := l.branchOff + uint32(b)*balanceRecBytes
		sumV += mv.Segment().Read32(off)
		sumL += ml.Segment().Read32(off + 16) // marker shift
	}
	if sumV != sumL || sumV == 0 {
		t.Fatalf("branch totals: rvm=%d rlvm=%d", sumV, sumL)
	}
}

func TestSeedChangesWorkload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Txns = 40
	a, _, _ := RunRVM(cfg)
	cfg.Seed = 12345
	b, _, _ := RunRVM(cfg)
	if a.Cycles == b.Cycles {
		// Different accounts hit different cache lines; identical totals
		// would be suspicious but not impossible — check balances too.
		t.Logf("cycle counts equal across seeds (possible but unusual)")
	}
	_ = b
}

func TestTruncateEveryAffectsCost(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Txns = 64
	cfg.TruncateEvery = 2
	frequent, _, err := RunRVM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TruncateEvery = 32
	rare, _, err := RunRVM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if frequent.TPS >= rare.TPS {
		t.Fatalf("frequent truncation (%f tps) not slower than rare (%f tps)", frequent.TPS, rare.TPS)
	}
}

func TestResultString(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Txns = 10
	r, _, err := RunRVM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.String() == "" {
		t.Fatalf("empty Result string")
	}
}

func TestRNGDeterministicAndSpread(t *testing.T) {
	a, b := newRNG(7), newRNG(7)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		x, y := a.intn(1000), b.intn(1000)
		if x != y {
			t.Fatalf("rng not deterministic")
		}
		seen[x] = true
	}
	if len(seen) < 500 {
		t.Fatalf("rng poorly distributed: %d distinct of 1000", len(seen))
	}
}
