package tpca

import (
	"testing"

	"lvm/internal/core"
)

func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.Txns = 120
	return cfg
}

func TestRVMRuns(t *testing.T) {
	res, m, err := RunRVM(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.TPS <= 0 {
		t.Fatalf("TPS = %v", res.TPS)
	}
	if m.Stats.Txns != 120 {
		t.Fatalf("txns = %d", m.Stats.Txns)
	}
	// Section 4.2: "only about 25% of the CPU time in RVM is actually
	// spent inside the transaction."
	if res.InTxnFrac < 0.15 || res.InTxnFrac > 0.40 {
		t.Fatalf("RVM in-txn fraction = %.2f, want ~0.25", res.InTxnFrac)
	}
}

func TestRLVMRuns(t *testing.T) {
	res, m, err := RunRLVM(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.TPS <= 0 {
		t.Fatalf("TPS = %v", res.TPS)
	}
	if m.Stats.Txns != 120 {
		t.Fatalf("txns = %d", m.Stats.Txns)
	}
	// "it does reduce the time TPC-A spends inside the transaction to
	// less than 10% of the benchmark's total runtime."
	if res.InTxnFrac > 0.10 {
		t.Fatalf("RLVM in-txn fraction = %.3f, want < 0.10", res.InTxnFrac)
	}
}

func TestRLVMBeatsRVM(t *testing.T) {
	cfg := smallCfg()
	rv, _, err := RunRVM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rl, _, err := RunRLVM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Table 3: 418 vs 552 tps — RLVM wins by roughly a third.
	speedup := rl.TPS / rv.TPS
	if speedup < 1.10 {
		t.Fatalf("RLVM/RVM = %.2f, want >= 1.10 (paper: 1.32)", speedup)
	}
	est := EstimateRLVMTPS(rl, rv)
	if est < rv.TPS {
		t.Fatalf("footnote-4 estimate %.0f below RVM %.0f", est, rv.TPS)
	}
	t.Logf("RVM %.0f tps, RLVM %.0f tps (estimated %.0f), speedup %.2f", rv.TPS, rl.TPS, est, speedup)
}

func TestThroughputBallpark(t *testing.T) {
	// The absolute numbers are calibration targets, not law; require the
	// right order of magnitude (paper: 418 and 552).
	cfg := smallCfg()
	rv, _, _ := RunRVM(cfg)
	rl, _, _ := RunRLVM(cfg)
	if rv.TPS < 200 || rv.TPS > 800 {
		t.Fatalf("RVM TPS = %.0f, want a few hundred", rv.TPS)
	}
	if rl.TPS < 300 || rl.TPS > 1100 {
		t.Fatalf("RLVM TPS = %.0f, want a few hundred", rl.TPS)
	}
}

func TestBothEnginesComputeSameBalances(t *testing.T) {
	cfg := smallCfg()
	cfg.Txns = 60
	_, mv, err := RunRVM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, ml, err := RunRLVM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := newLayout(cfg)
	// Same seed, same transaction stream: every balance must agree.
	for i := 0; i < cfg.Branches; i++ {
		off := l.branchOff + uint32(i)*balanceRecBytes
		v1 := mv.Segment().Read32(off)
		v2 := ml.Segment().Read32(off + 16) // rlvm MarkerBytes shift
		if v1 != v2 {
			t.Fatalf("branch %d balance: rvm=%d rlvm=%d", i, v1, v2)
		}
	}
	for i := 0; i < cfg.Branches*cfg.AccountsPerBranch; i += 97 {
		off := l.accountOff + uint32(i)*balanceRecBytes
		v1 := mv.Segment().Read32(off)
		v2 := ml.Segment().Read32(off + 16)
		if v1 != v2 {
			t.Fatalf("account %d balance: rvm=%d rlvm=%d", i, v1, v2)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := smallCfg()
	a, _, _ := RunRVM(cfg)
	b, _, _ := RunRVM(cfg)
	if a.Cycles != b.Cycles {
		t.Fatalf("non-deterministic: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

func TestLayoutFitsRegion(t *testing.T) {
	cfg := DefaultConfig()
	l := newLayout(cfg)
	if l.size%core.PageSize != 0 {
		t.Fatalf("layout size not page aligned")
	}
	if l.historyOff <= l.accountOff {
		t.Fatalf("layout overlap")
	}
}
