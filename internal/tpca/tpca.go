// Package tpca implements the TPC-A debit-credit benchmark over the RVM
// and RLVM recoverable-memory managers, reproducing the second line of
// Table 3 of the paper: RVM 418 trans/sec vs RLVM 552 trans/sec with the
// log on a RAM disk.
//
// A TPC-A transaction: pick a random (branch, teller, account) and a
// delta; update the account, teller and branch balances; append a history
// record. Under RVM each update is bracketed by set_range; under RLVM the
// stores are simply logged writes.
//
// Per the paper's footnote 4, the published RLVM throughput was estimated
// by adding RLVM's in-transaction time to RVM's commit and log-truncation
// times (the prototype did not use the LVM log for recovery). Result
// carries both that estimate and the throughput of our full RLVM
// implementation, which does use the log.
package tpca

import (
	"fmt"

	"lvm/internal/core"
	"lvm/internal/cycles"
	"lvm/internal/ramdisk"
	"lvm/internal/rlvm"
	"lvm/internal/rvm"
)

// Record sizes in the recoverable region.
const (
	balanceRecBytes = 16 // balance word + padding (branch/teller/account)
	historyRecBytes = 16 // account, teller+branch, delta, timestamp
	// LookupCycles models finding a record by key (index traversal).
	LookupCycles = 150
)

// Config sizes the database and the run.
type Config struct {
	Branches          int
	TellersPerBranch  int
	AccountsPerBranch int
	Txns              int
	HistorySlots      int
	Seed              uint64
	// TruncateEvery forwards to the managers (0 = their default).
	TruncateEvery int
}

// DefaultConfig is a laptop-scale TPC-A: 1 branch, 10 tellers, 1000
// accounts (the balance update pattern, not the full-scale row counts,
// is what the measurement exercises).
func DefaultConfig() Config {
	return Config{
		Branches:          1,
		TellersPerBranch:  10,
		AccountsPerBranch: 1000,
		Txns:              400,
		HistorySlots:      256,
	}
}

// Result reports a run.
type Result struct {
	Engine       string
	Txns         int
	Cycles       uint64
	TPS          float64
	InTxnCycles  uint64
	OtherCycles  uint64
	InTxnFrac    float64
	EstimatedTPS float64 // for RLVM: the paper's footnote-4 estimate
}

func (r Result) String() string {
	return fmt.Sprintf("%-5s %6d txns  %10d cycles  %6.0f tps  in-txn %4.1f%%",
		r.Engine, r.Txns, r.Cycles, r.TPS, 100*r.InTxnFrac)
}

// layout computes the region size and record addresses.
type layout struct {
	cfg                              Config
	branchOff, tellerOff, accountOff uint32
	historyOff                       uint32
	size                             uint32
}

func newLayout(cfg Config) layout {
	var l layout
	l.cfg = cfg
	l.branchOff = 0
	l.tellerOff = l.branchOff + uint32(cfg.Branches)*balanceRecBytes
	l.accountOff = l.tellerOff + uint32(cfg.Branches*cfg.TellersPerBranch)*balanceRecBytes
	l.historyOff = l.accountOff + uint32(cfg.Branches*cfg.AccountsPerBranch)*balanceRecBytes
	l.size = l.historyOff + uint32(cfg.HistorySlots)*historyRecBytes
	l.size = (l.size + core.PageSize - 1) &^ uint32(core.PageSize-1)
	return l
}

// Layout is the public view of the TPC-A region layout, for harnesses
// (e.g. the crashtest driver) that drive the TPC-A access pattern
// themselves instead of calling RunRVM/RunRLVM.
type Layout struct {
	BranchOff, TellerOff, AccountOff, HistoryOff uint32
	BalanceRecBytes, HistoryRecBytes             uint32
	Size                                         uint32
}

// NewLayout computes the region layout for a configuration.
func NewLayout(cfg Config) Layout {
	l := newLayout(cfg)
	return Layout{
		BranchOff:       l.branchOff,
		TellerOff:       l.tellerOff,
		AccountOff:      l.accountOff,
		HistoryOff:      l.historyOff,
		BalanceRecBytes: balanceRecBytes,
		HistoryRecBytes: historyRecBytes,
		Size:            l.size,
	}
}

// rng is a small deterministic generator (xorshift64*), independent of the
// host's math/rand for reproducibility.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// txn is one debit-credit: the chosen rows and the delta.
type txn struct {
	branch, teller, account int
	delta                   uint32
}

func (l layout) genTxn(r *rng) txn {
	b := r.intn(l.cfg.Branches)
	return txn{
		branch:  b,
		teller:  b*l.cfg.TellersPerBranch + r.intn(l.cfg.TellersPerBranch),
		account: b*l.cfg.AccountsPerBranch + r.intn(l.cfg.AccountsPerBranch),
		delta:   uint32(r.intn(1000) + 1),
	}
}

// recoverable-memory write interface shared by the two engines.
type engine interface {
	Begin() error
	Write32(va core.Addr, v uint32) error
	Commit() error
	Base() core.Addr
}

type rvmEngine struct{ m *rvm.Manager }

func (e rvmEngine) Begin() error    { return e.m.Begin() }
func (e rvmEngine) Commit() error   { return e.m.Commit() }
func (e rvmEngine) Base() core.Addr { return e.m.Base() }
func (e rvmEngine) Write32(va core.Addr, v uint32) error {
	return e.m.RecoverableWrite32(va, v)
}

type rlvmEngine struct{ m *rlvm.Manager }

func (e rlvmEngine) Begin() error    { return e.m.Begin() }
func (e rlvmEngine) Commit() error   { return e.m.Commit() }
func (e rlvmEngine) Base() core.Addr { return e.m.Base() }
func (e rlvmEngine) Write32(va core.Addr, v uint32) error {
	return e.m.RecoverableWrite32(va, v)
}

func runTxns(cfg Config, l layout, p *core.Process, e engine, histWriteRange func(va core.Addr, n uint32) error) error {
	r := newRNG(cfg.Seed)
	base := e.Base()
	histSlot := 0
	for i := 0; i < cfg.Txns; i++ {
		tx := l.genTxn(r)
		if err := e.Begin(); err != nil {
			return err
		}
		// Find and update the three balance rows.
		acctVA := base + l.accountOff + uint32(tx.account)*balanceRecBytes
		tellVA := base + l.tellerOff + uint32(tx.teller)*balanceRecBytes
		brVA := base + l.branchOff + uint32(tx.branch)*balanceRecBytes
		for _, va := range []core.Addr{acctVA, tellVA, brVA} {
			p.Compute(LookupCycles)
			old := p.Load32(va)
			if err := e.Write32(va, old+tx.delta); err != nil {
				return err
			}
		}
		// Append the history record (one range of 16 bytes).
		hVA := base + l.historyOff + uint32(histSlot)*historyRecBytes
		histSlot = (histSlot + 1) % cfg.HistorySlots
		p.Compute(LookupCycles)
		if histWriteRange != nil {
			if err := histWriteRange(hVA, historyRecBytes); err != nil {
				return err
			}
		}
		p.Store32(hVA+0, uint32(tx.account))
		p.Store32(hVA+4, uint32(tx.teller)<<16|uint32(tx.branch))
		p.Store32(hVA+8, tx.delta)
		p.Store32(hVA+12, uint32(i))
		if err := e.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// RunRVM executes the benchmark over the RVM baseline and reports
// throughput in simulated transactions per second.
func RunRVM(cfg Config) (Result, *rvm.Manager, error) {
	l := newLayout(cfg)
	sys := core.NewSystemNoLogger(core.Config{NumCPUs: 1, MemFrames: int(l.size/core.PageSize) + 4096})
	p := sys.NewProcess(0, sys.NewAddressSpace())
	d := ramdisk.New()
	m, err := rvm.New(sys, p, l.size, d, rvm.Options{TruncateEvery: cfg.TruncateEvery})
	if err != nil {
		return Result{}, nil, err
	}
	warmup(p, m.Base(), l.size)
	start := p.Now()
	if err := runTxns(cfg, l, p, rvmEngine{m}, func(va core.Addr, n uint32) error {
		return m.SetRange(va, n)
	}); err != nil {
		return Result{}, nil, err
	}
	elapsed := p.Now() - start
	res := mkResult("RVM", cfg.Txns, elapsed, m.Stats.InTxnCycles)
	return res, m, nil
}

// RunRLVM executes the benchmark over RLVM.
func RunRLVM(cfg Config) (Result, *rlvm.Manager, error) {
	l := newLayout(cfg)
	sys := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: int(l.size/core.PageSize) + 8192})
	p := sys.NewProcess(0, sys.NewAddressSpace())
	d := ramdisk.New()
	m, err := rlvm.New(sys, p, l.size, d, rlvm.Options{
		TruncateEvery: cfg.TruncateEvery,
		LogPages:      512,
	})
	if err != nil {
		return Result{}, nil, err
	}
	warmup(p, m.Base(), l.size)
	start := p.Now()
	if err := runTxns(cfg, l, p, rlvmEngine{m}, nil); err != nil {
		return Result{}, nil, err
	}
	elapsed := p.Now() - start
	res := mkResult("RLVM", cfg.Txns, elapsed, m.Stats.InTxnCycles)
	return res, m, nil
}

// EstimateRLVMTPS applies the paper's footnote-4 method: RLVM's
// in-transaction time plus RVM's commit and truncation times.
func EstimateRLVMTPS(rlvmRes, rvmRes Result) float64 {
	perTxn := float64(rlvmRes.InTxnCycles+rvmRes.OtherCycles) / float64(rlvmRes.Txns)
	return cycles.CyclesPerSecond / perTxn
}

func warmup(p *core.Process, base core.Addr, size uint32) {
	// Touch every page once so page-fault costs don't pollute the
	// steady-state measurement (the paper's methodology keeps regions
	// resident).
	for off := uint32(0); off < size; off += core.PageSize {
		p.Load32(base + off)
	}
}

func mkResult(engine string, txns int, elapsed, inTxn uint64) Result {
	r := Result{
		Engine:      engine,
		Txns:        txns,
		Cycles:      elapsed,
		InTxnCycles: inTxn,
	}
	if elapsed > 0 {
		r.TPS = cycles.CyclesPerSecond * float64(txns) / float64(elapsed)
		r.InTxnFrac = float64(inTxn) / float64(elapsed)
	}
	r.OtherCycles = elapsed - inTxn
	return r
}
