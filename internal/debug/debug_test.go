package debug

import (
	"testing"

	"lvm/internal/core"
)

// rig builds a logged region with an initial checkpoint and runs a little
// "program" that corrupts a variable partway through.
func rig(t *testing.T) (*core.System, *core.Segment, *core.Segment, *core.Segment, *core.Process, core.Addr) {
	t.Helper()
	sys := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 2048})
	seg := core.NewNamedSegment(sys, "prog", core.PageSize, nil)
	reg := core.NewStdRegion(sys, seg)
	ls := core.NewLogSegment(sys, 16)
	if err := reg.Log(ls); err != nil {
		t.Fatal(err)
	}
	as := sys.NewAddressSpace()
	base, err := reg.Bind(as, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := sys.NewProcess(0, as)
	ckpt := core.NewNamedSegment(sys, "ckpt", core.PageSize, nil)
	return sys, seg, ls, ckpt, p, base
}

func TestWatchpointFindsWriter(t *testing.T) {
	sys, seg, ls, _, p, base := rig(t)
	p.Store32(base+0x10, 1)
	p.Compute(100)
	p.Store32(base+0x20, 2) // unrelated
	p.Compute(100)
	p.Store32(base+0x10, 3) // the overwrite
	w := NewWatcher(sys, seg, ls)
	writes := w.WritesTo(0x10, 4)
	if len(writes) != 2 {
		t.Fatalf("writes = %d, want 2", len(writes))
	}
	if writes[1].Value != 3 || writes[1].Index != 2 {
		t.Fatalf("overwrite = %+v", writes[1])
	}
	wi, ok := w.FirstOverwriteAfter(0x10, 4, 1)
	if !ok || wi.Value != 3 {
		t.Fatalf("FirstOverwriteAfter = %+v, %v", wi, ok)
	}
	if _, ok := w.FirstOverwriteAfter(0x40, 4, 0); ok {
		t.Fatalf("found write to untouched range")
	}
}

func TestLastWriterBefore(t *testing.T) {
	sys, seg, ls, _, p, base := rig(t)
	p.Store32(base+0x10, 1)
	p.Compute(4000)
	p.Store32(base+0x10, 2)
	w := NewWatcher(sys, seg, ls)
	all := w.WritesTo(0x10, 4)
	wi, ok := w.LastWriterBefore(0x10, 4, all[1].Timestamp)
	if !ok || wi.Value != 1 {
		t.Fatalf("LastWriterBefore = %+v, %v", wi, ok)
	}
}

func TestSubwordWatch(t *testing.T) {
	sys, seg, ls, _, p, base := rig(t)
	p.Store8(base+0x13, 0xAB) // touches [0x13,0x14)
	w := NewWatcher(sys, seg, ls)
	if got := w.WritesTo(0x10, 4); len(got) != 1 {
		t.Fatalf("byte write not seen by word watch: %d", len(got))
	}
	if got := w.WritesTo(0x14, 4); len(got) != 0 {
		t.Fatalf("byte write leaked into next word")
	}
}

func TestReverseExecution(t *testing.T) {
	sys, seg, ls, ckpt, p, base := rig(t)
	// The "program": x at +0x10 counts 1..5; at step 4 a stray write
	// corrupts y at +0x20.
	for i := uint32(1); i <= 5; i++ {
		p.Store32(base+0x10, i)
		if i == 4 {
			p.Store32(base+0x20, 0xDEAD)
		}
	}
	re, err := NewReverseExecutor(sys, seg, ls, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if re.Word(0x10) != 5 || re.Word(0x20) != 0xDEAD {
		t.Fatalf("failure-point state wrong: %#x %#x", re.Word(0x10), re.Word(0x20))
	}
	// Step back until y is intact; x must be 3 at that point (records:
	// x1 x2 x3 x4 y x5 -> position 4 is after x4 before y).
	n, err := re.FindLastGood(func(r *ReverseExecutor) bool { return r.Word(0x20) == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("last good position = %d, want 4", n)
	}
	if err := re.Goto(n); err != nil {
		t.Fatal(err)
	}
	if re.Word(0x10) != 4 {
		t.Fatalf("x at last-good = %d, want 4", re.Word(0x10))
	}
	// Step back twice more: x = 2? position 3 -> x=3, position 2 -> x=2.
	if err := re.StepBack(); err != nil {
		t.Fatal(err)
	}
	if err := re.StepBack(); err != nil {
		t.Fatal(err)
	}
	if re.Word(0x10) != 2 {
		t.Fatalf("x after two back-steps = %d", re.Word(0x10))
	}
	if err := re.Goto(0); err != nil {
		t.Fatal(err)
	}
	if re.Word(0x10) != 0 {
		t.Fatalf("initial state x = %d", re.Word(0x10))
	}
	if re.Goto(re.Records()+1) == nil {
		t.Fatalf("out-of-range Goto accepted")
	}
}

func TestReverseExecutorForwardSeek(t *testing.T) {
	sys, seg, ls, ckpt, p, base := rig(t)
	for i := uint32(1); i <= 10; i++ {
		p.Store32(base, i)
	}
	re, err := NewReverseExecutor(sys, seg, ls, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	re.Goto(3)
	if re.Word(0) != 3 {
		t.Fatalf("state at 3 = %d", re.Word(0))
	}
	re.Goto(7) // forward without rebuild
	if re.Word(0) != 7 {
		t.Fatalf("state at 7 = %d", re.Word(0))
	}
}
