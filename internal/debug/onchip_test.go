package debug

import (
	"testing"

	"lvm/internal/core"
)

// TestWatcherOnChipSystem: the debugger tooling works unchanged over the
// Section 4.6 kernel, where records carry virtual addresses.
func TestWatcherOnChipSystem(t *testing.T) {
	sys := core.NewSystemOnChip(core.Config{NumCPUs: 1, MemFrames: 2048})
	seg := core.NewNamedSegment(sys, "prog", core.PageSize, nil)
	reg := core.NewStdRegion(sys, seg)
	ls := core.NewLogSegment(sys, 8)
	if err := reg.Log(ls); err != nil {
		t.Fatal(err)
	}
	as := sys.NewAddressSpace()
	base, err := reg.Bind(as, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := sys.NewProcess(0, as)
	p.Store32(base+0x50, 1)
	p.Store32(base+0x60, 2)
	p.Store32(base+0x50, 3)

	w := NewWatcher(sys, seg, ls)
	hits := w.WritesTo(0x50, 4)
	if len(hits) != 2 || hits[1].Value != 3 {
		t.Fatalf("watch on on-chip system: %+v", hits)
	}
	// Reverse execution too.
	ckpt := core.NewNamedSegment(sys, "ckpt", core.PageSize, nil)
	re, err := NewReverseExecutor(sys, seg, ls, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	re.Goto(1)
	if re.Word(0x50) != 1 || re.Word(0x60) != 0 {
		t.Fatalf("reverse state at 1: %d %d", re.Word(0x50), re.Word(0x60))
	}
}
