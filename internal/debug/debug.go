// Package debug implements the debugging uses of LVM from Section 1 of
// the paper: "a debugger can use logged virtual memory to log the writes
// of a program being debugged. The debugger can then determine when data
// was erroneously overwritten as well as generally monitor the state
// updates in a program under development. The log can also be used to
// support reverse execution."
//
// Because logging is attached to the region (not compiled into the
// program), the debugger can enable it "with no change to the program
// binary" (Section 2.7) — see core.Region.Log.
package debug

import (
	"fmt"

	"lvm/internal/core"
)

// WriteInfo is one observed write to a watched range.
type WriteInfo struct {
	SegOff    uint32
	Value     uint32
	Size      uint16
	CPU       uint16
	Timestamp uint32
	// Index is the record's ordinal position in the log.
	Index int
}

// Watcher scans a log for writes of interest.
type Watcher struct {
	sys *core.System
	seg *core.Segment
	ls  *core.Segment
}

// NewWatcher watches writes to seg recorded in ls.
func NewWatcher(sys *core.System, seg, ls *core.Segment) *Watcher {
	return &Watcher{sys: sys, seg: seg, ls: ls}
}

// WritesTo returns every logged write that touched [off, off+n).
func (w *Watcher) WritesTo(off, n uint32) []WriteInfo {
	r := core.NewLogReader(w.sys, w.ls)
	var out []WriteInfo
	idx := 0
	for {
		rec, ok := r.Next()
		if !ok {
			return out
		}
		if rec.Seg == w.seg && rec.SegOff+uint32(rec.WriteSize) > off && rec.SegOff < off+n {
			out = append(out, WriteInfo{
				SegOff:    rec.SegOff,
				Value:     rec.Value,
				Size:      rec.WriteSize,
				CPU:       rec.CPU,
				Timestamp: rec.Timestamp,
				Index:     idx,
			})
		}
		idx++
	}
}

// LastWriterBefore finds the most recent write to [off, off+n) with a
// timestamp strictly before ts — "determine when data was erroneously
// overwritten".
func (w *Watcher) LastWriterBefore(off, n uint32, ts uint32) (WriteInfo, bool) {
	writes := w.WritesTo(off, n)
	for i := len(writes) - 1; i >= 0; i-- {
		if writes[i].Timestamp < ts {
			return writes[i], true
		}
	}
	return WriteInfo{}, false
}

// FirstOverwriteAfter finds the first write to [off, off+n) at or after
// record index start — the "who clobbered my variable" query.
func (w *Watcher) FirstOverwriteAfter(off, n uint32, start int) (WriteInfo, bool) {
	for _, wi := range w.WritesTo(off, n) {
		if wi.Index >= start {
			return wi, true
		}
	}
	return WriteInfo{}, false
}

// ReverseExecutor supports reverse execution over a logged region: given
// a checkpoint of the initial state and the write log, it reconstructs
// the segment's state as of any record index by replaying the prefix
// (the log "can be used to support reverse execution [7], a debugging
// technique in which a program is allowed to run until it fails, and then
// backed up... until the problem is located").
type ReverseExecutor struct {
	sys  *core.System
	seg  *core.Segment // the live (failed) segment
	ls   *core.Segment
	ckpt *core.Segment // initial-state checkpoint
	// view is the reconstructed state.
	view *core.Segment
	// pos is the record index the view reflects.
	pos int
	// total is the record count in the log.
	total int
}

// NewReverseExecutor builds an executor from a checkpoint segment holding
// the state at the start of the log. The view is positioned at the end of
// the log (the failure point).
func NewReverseExecutor(sys *core.System, seg, ls, ckpt *core.Segment) (*ReverseExecutor, error) {
	if ckpt.Size() < seg.Size() {
		return nil, fmt.Errorf("debug: checkpoint smaller than segment")
	}
	re := &ReverseExecutor{sys: sys, seg: seg, ls: ls, ckpt: ckpt}
	re.view = core.NewNamedSegment(sys, "debug-view", seg.Size(), nil)
	r := core.NewLogReader(sys, ls)
	re.total = r.Remaining()
	re.pos = -1
	if err := re.Goto(re.total); err != nil {
		return nil, err
	}
	return re, nil
}

// Records reports the total record count.
func (re *ReverseExecutor) Records() int { return re.total }

// Pos reports the current position (number of records applied).
func (re *ReverseExecutor) Pos() int { return re.pos }

// Goto reconstructs the state after the first n records.
func (re *ReverseExecutor) Goto(n int) error {
	if n < 0 || n > re.total {
		return fmt.Errorf("debug: position %d out of range [0,%d]", n, re.total)
	}
	if n < re.pos || re.pos < 0 {
		// Rebuild from the checkpoint.
		re.sys.K.Bcopy(nil, re.view, 0, re.ckpt, 0, re.seg.Size())
		re.pos = 0
	}
	r := core.NewLogReader(re.sys, re.ls)
	if err := r.Seek(uint32(re.pos) * 16); err != nil {
		return err
	}
	for re.pos < n {
		rec, ok := r.Next()
		if !ok {
			break
		}
		if rec.Seg == re.seg {
			rec.Apply(re.view)
		}
		re.pos++
	}
	return nil
}

// StepBack moves one record backwards.
func (re *ReverseExecutor) StepBack() error {
	if re.pos == 0 {
		return fmt.Errorf("debug: at start of history")
	}
	return re.Goto(re.pos - 1)
}

// Word reads a word of the reconstructed state.
func (re *ReverseExecutor) Word(off uint32) uint32 { return re.view.Read32(off) }

// FindLastGood scans backwards for the latest position at which pred
// holds (binary search is invalid because predicates need not be
// monotonic; this walks records in reverse). Returns -1 if none.
func (re *ReverseExecutor) FindLastGood(pred func(*ReverseExecutor) bool) (int, error) {
	for n := re.total; n >= 0; n-- {
		if err := re.Goto(n); err != nil {
			return -1, err
		}
		if pred(re) {
			return n, nil
		}
	}
	return -1, nil
}
