// Package core is the public API of the LVM reproduction: the C++
// virtual-memory interface of Table 1 of the paper, expressed in Go, plus
// the log-consumption machinery (readers, reverse translation, roll
// forward) that LVM applications need.
//
// The shape follows the paper's example (Section 2.2):
//
//	sys := core.NewSystem(core.DefaultConfig())
//	segA := core.NewStdSegment(sys, size, nil)      // new StdSegment(size)
//	regR := core.NewStdRegion(sys, segA)            // new StdRegion(seg_a)
//	ls := core.NewLogSegment(sys, 16)               // new LogSegment()
//	regR.Log(ls)                                    // reg_r->log(ls)
//	as := sys.NewAddressSpace()                     // thisProcess()->addressSpace()
//	base, _ := regR.Bind(as, 0)                     // reg_r->bind(as)
//
// after which every store through a Process into [base, base+size) is
// logged by the (simulated) hardware into ls, and can be read back with a
// LogReader.
package core

import (
	"lvm/internal/hwlogger"
	"lvm/internal/machine"
	"lvm/internal/metrics"
	"lvm/internal/vm"
)

// Re-exported fundamental types, so applications only import core.
type (
	// Segment is a memory segment (StdSegment / LogSegment of Table 1).
	Segment = vm.Segment
	// Region is a mapping of a segment into an address space.
	Region = vm.Region
	// AddressSpace is a 4 KiB-paged 32-bit virtual address space.
	AddressSpace = vm.AddressSpace
	// Process issues loads and stores on a simulated CPU.
	Process = vm.Process
	// SegmentManager implements user-level page-fault handling.
	SegmentManager = vm.SegmentManager
	// Addr is a 32-bit virtual address.
	Addr = vm.Addr
	// ResetStats reports the work done by a ResetDeferredCopy.
	ResetStats = vm.ResetStats
	// Config describes the simulated machine.
	Config = machine.Config
)

// Page geometry re-exports.
const (
	PageSize = vm.PageSize
	LineSize = vm.LineSize
)

// Log modes (Section 2.6).
const (
	// ModeRecord appends a 16-byte record per write (the default).
	ModeRecord = hwlogger.ModeRecord
	// ModeDirect writes each datum at the corresponding offset in the
	// log segment (mapped-I/O output).
	ModeDirect = hwlogger.ModeDirect
	// ModeIndexed streams bare data values into the log segment.
	ModeIndexed = hwlogger.ModeIndexed
)

// System is one simulated machine running the LVM-extended kernel.
type System struct {
	K *vm.Kernel
}

// DefaultConfig is the ParaDiGM prototype: four 25 MHz CPUs, 64 MiB.
func DefaultConfig() Config { return machine.DefaultConfig() }

// NewSystem boots a machine with the LVM kernel and hardware logger.
func NewSystem(cfg Config) *System {
	return &System{K: vm.NewKernel(cfg)}
}

// NewSystemNoLogger boots a machine without logger hardware (baselines).
func NewSystemNoLogger(cfg Config) *System {
	return &System{K: vm.NewKernelNoLogger(cfg)}
}

// NewSystemOnChip boots a machine whose processor has the
// next-generation on-chip logging support of Section 4.6 instead of the
// prototype's bus logger: log records carry virtual addresses, logging is
// per region (several regions of one segment may log to different
// segments), logged pages stay write-back, and overload is replaced by
// processor stalls. The rest of the API is identical.
func NewSystemOnChip(cfg Config) *System {
	return &System{K: vm.NewKernelOnChip(cfg)}
}

// Machine exposes the underlying simulated machine.
func (s *System) Machine() *machine.Machine { return s.K.M }

// Metrics exposes the machine's counter/histogram registry.
func (s *System) Metrics() *metrics.Registry { return s.K.M.Metrics }

// DeviceShard is the metrics shard non-CPU agents — bus devices, the
// fault injector, the recovery manager — charge their counters to.
func (s *System) DeviceShard() *metrics.Shard { return s.K.M.DeviceShard() }

// MetricsSnapshot aggregates the machine's counters, histograms and
// collected component stats. Take it between simulation steps (the
// simulated machine is single-threaded, so any caller-visible moment is
// quiescent).
func (s *System) MetricsSnapshot() *metrics.Snapshot { return s.K.M.Metrics.Snapshot() }

// Trace exposes the machine's control-plane event tracer (disabled until
// Tracer.Enable is called; a no-op under the lvm_notrace build tag).
func (s *System) Trace() *metrics.Tracer { return s.K.M.Metrics.Tracer() }

// NewAddressSpace creates an empty address space.
func (s *System) NewAddressSpace() *AddressSpace { return s.K.NewAddressSpace() }

// NewProcess creates a process on CPU cpuID over the given address space.
func (s *System) NewProcess(cpuID int, as *AddressSpace) *Process {
	return s.K.NewProcess(cpuID, as)
}

// Sync drains all in-flight logging work and returns the idle cycle.
func (s *System) Sync() uint64 { return s.K.Sync() }

// EnableWriteAbsorption turns on the bus logger's FIFO write-absorption
// stage with the given window (repeated stores to the same word within the
// window coalesce into one pending record). No-op for on-chip systems;
// window <= 0 disables. Pages carrying transaction markers should be
// excluded with Segment.SetNoAbsorbLimit before enabling.
func (s *System) EnableWriteAbsorption(window int) {
	if s.K.Log != nil {
		s.K.Log.SetAbsorbWindow(window)
	}
}

// EnableGroupCommit turns on batched DMA drains in the bus logger: records
// DMA in groups of up to batch, or when the oldest queued record has aged
// deadline cycles. No-op for on-chip systems; batch <= 1 disables.
func (s *System) EnableGroupCommit(batch int, deadline uint64) {
	if s.K.Log != nil {
		s.K.Log.SetGroupCommit(batch, deadline)
	}
}

// Elapsed returns the machine's elapsed time in cycles (the latest CPU
// clock).
func (s *System) Elapsed() uint64 { return s.K.M.MaxNow() }

// NewStdSegment creates a memory segment ("new StdSegment(size, flags,
// segmentMan)", Table 1). mgr may be nil for zero-fill pages.
func NewStdSegment(s *System, size uint32, mgr SegmentManager) *Segment {
	return s.K.NewSegment("std", size, mgr)
}

// NewNamedSegment is NewStdSegment with a debug name.
func NewNamedSegment(s *System, name string, size uint32, mgr SegmentManager) *Segment {
	return s.K.NewSegment(name, size, mgr)
}

// NewStdRegion creates a region representing a mapping to the given
// segment ("new StdRegion(segment)", Table 1).
func NewStdRegion(s *System, seg *Segment) *Region {
	return s.K.NewRegion(seg)
}

// NewLogSegment creates a log segment to hold log records ("new
// LogSegment()", Table 1) with an initial capacity in pages. Extend it in
// advance of the log filling (Section 3.2); when it runs out, further
// records are absorbed and lost.
func NewLogSegment(s *System, pages uint32) *Segment {
	return s.K.NewLogSegment("log", pages)
}
