package core_test

import (
	"fmt"

	"lvm/internal/core"
)

// Example reproduces the code sample of Section 2.2 of the paper and
// prints the log records a pair of stores produced.
func Example() {
	sys := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 1024})
	segA := core.NewStdSegment(sys, 64*1024, nil) // new StdSegment(size)
	regR := core.NewStdRegion(sys, segA)          // new StdRegion(seg_a)
	ls := core.NewLogSegment(sys, 4)              // new LogSegment()
	if err := regR.Log(ls); err != nil {          // reg_r->log(ls)
		panic(err)
	}
	as := sys.NewAddressSpace()
	base, err := regR.Bind(as, 0) // reg_r->bind(as)
	if err != nil {
		panic(err)
	}

	p := sys.NewProcess(0, as)
	p.Store32(base+0x10, 0xC0DE)
	p.Store16(base+0x20, 0xBEEF)

	r := core.NewLogReader(sys, ls)
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		fmt.Printf("+%#04x %08x size=%d\n", rec.SegOff, rec.Value, rec.WriteSize)
	}
	// Output:
	// +0x0010 0000c0de size=4
	// +0x0020 0000beef size=2
}

// ExampleSegment_SetSourceSegment shows deferred copy (Section 2.3):
// reads come from the source until written; resetDeferredCopy rolls back.
func ExampleSegment_SetSourceSegment() {
	sys := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 1024})
	ckpt := core.NewNamedSegment(sys, "checkpoint", core.PageSize, nil)
	ckpt.Write32(0, 42)
	work := core.NewNamedSegment(sys, "working", core.PageSize, nil)
	if err := work.SetSourceSegment(ckpt, 0); err != nil {
		panic(err)
	}
	fmt.Println("initial:", work.Read32(0))
	work.Write32(0, 99)
	fmt.Println("after write:", work.Read32(0), "— checkpoint still:", ckpt.Read32(0))
	if _, err := sys.K.ResetDeferredCopySegment(work, nil); err != nil {
		panic(err)
	}
	fmt.Println("after reset:", work.Read32(0))
	// Output:
	// initial: 42
	// after write: 99 — checkpoint still: 42
	// after reset: 42
}

// ExampleLogReader_ApplyWhile shows checkpoint roll-forward (the CULT
// primitive of Section 2.4).
func ExampleLogReader_ApplyWhile() {
	sys := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 1024})
	seg := core.NewStdSegment(sys, core.PageSize, nil)
	reg := core.NewStdRegion(sys, seg)
	ls := core.NewLogSegment(sys, 4)
	if err := reg.Log(ls); err != nil {
		panic(err)
	}
	as := sys.NewAddressSpace()
	base, _ := reg.Bind(as, 0)
	p := sys.NewProcess(0, as)
	p.Store32(base, 7)
	p.Store32(base+4, 8)

	ckpt := core.NewNamedSegment(sys, "ckpt", core.PageSize, nil)
	r := core.NewLogReader(sys, ls)
	n := r.ApplyWhile(seg, ckpt, func(core.Record) bool { return true })
	fmt.Println("applied", n, "records:", ckpt.Read32(0), ckpt.Read32(4))
	// Output:
	// applied 2 records: 7 8
}
