package core

import (
	"testing"

	"lvm/internal/logrec"
)

// TestLogSegmentMappedIntoAddressSpace: "The log segment may also be
// mapped into the address space, so that the same (or a different)
// application can read the log records" (Section 2.1). A region is bound
// over the log segment itself and the records read back with ordinary
// loads.
func TestLogSegmentMappedIntoAddressSpace(t *testing.T) {
	sys, _, ls, p, base := buildLogged(t, 1, 4)
	p.Store32(base+0x10, 0xABCD)
	p.Store32(base+0x14, 0x1234)
	sys.Sync()

	logReg := NewStdRegion(sys, ls)
	logBase, err := logReg.Bind(p.AS, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Record 1 starts at byte 16: addr, value, size+cpu, timestamp.
	if got := p.Load32(logBase + logrec.Size + 4); got != 0x1234 {
		t.Fatalf("mapped log read value = %#x", got)
	}
	if got := p.Load16(logBase + logrec.Size + 8); got != 4 {
		t.Fatalf("mapped log read size = %d", got)
	}
}

func TestSeparateProcessReadsLog(t *testing.T) {
	// A different process on a different CPU with its own address space
	// consumes the log (the output-offload arrangement of Section 2.6).
	sys, _, ls, p, base := buildLogged(t, 1, 4)
	for i := uint32(0); i < 10; i++ {
		p.Store32(base+i*4, 100+i)
	}
	consumerAS := sys.NewAddressSpace()
	consumer := sys.NewProcess(1, consumerAS)
	logReg := NewStdRegion(sys, ls)
	logBase, err := logReg.Bind(consumerAS, 0)
	if err != nil {
		t.Fatal(err)
	}
	sys.Sync()
	var sum uint32
	for i := uint32(0); i < 10; i++ {
		sum += consumer.Load32(logBase + i*logrec.Size + 4)
	}
	if sum != 10*100+45 {
		t.Fatalf("consumer sum = %d", sum)
	}
}

func TestOutOfMemoryErrors(t *testing.T) {
	// 8 frames: 1 reserved + 1 absorb leaves 6 allocatable.
	sys := NewSystem(Config{NumCPUs: 1, MemFrames: 8})
	seg := NewStdSegment(sys, 16*PageSize, nil)
	for i := uint32(0); i < 16; i++ {
		if _, err := seg.EnsureResident(i); err != nil {
			return // expected: ran out of frames
		}
	}
	t.Fatalf("allocated 16 pages from 6 frames")
}

func TestStorePanicsOnOOM(t *testing.T) {
	sys := NewSystem(Config{NumCPUs: 1, MemFrames: 4})
	seg := NewStdSegment(sys, 8*PageSize, nil)
	reg := NewStdRegion(sys, seg)
	as := sys.NewAddressSpace()
	base, _ := reg.Bind(as, 0)
	p := sys.NewProcess(0, as)
	defer func() {
		if recover() == nil {
			t.Fatalf("stores beyond physical memory did not panic")
		}
	}()
	for i := uint32(0); i < 8; i++ {
		p.Store32(base+i*PageSize, i)
	}
}

func TestReaderSeekValidation(t *testing.T) {
	sys, _, ls, _, _ := buildLogged(t, 1, 4)
	r := NewLogReader(sys, ls)
	if err := r.Seek(7); err == nil {
		t.Fatalf("unaligned seek accepted")
	}
	if err := r.Seek(logrec.Size * 2); err != nil {
		t.Fatal(err)
	}
}

func TestRecordVAInWrongRegion(t *testing.T) {
	sys, reg, ls, p, base := buildLogged(t, 1, 4)
	other := NewStdRegion(sys, NewStdSegment(sys, PageSize, nil))
	if _, err := other.Bind(p.AS, 0); err != nil {
		t.Fatal(err)
	}
	p.Store32(base, 1)
	r := NewLogReader(sys, ls)
	rec, _ := r.Next()
	if _, ok := rec.VAIn(other); ok {
		t.Fatalf("VAIn resolved against an unrelated region")
	}
	if va, ok := rec.VAIn(reg); !ok || va != base {
		t.Fatalf("VAIn = %#x %v", va, ok)
	}
}

func TestSystemElapsedAndSync(t *testing.T) {
	sys, _, _, p, base := buildLogged(t, 1, 4)
	p.Compute(1000)
	if sys.Elapsed() < 1000 {
		t.Fatalf("Elapsed = %d", sys.Elapsed())
	}
	p.Store32(base, 1)
	idle := sys.Sync()
	if idle < sys.Elapsed() {
		t.Fatalf("Sync idle time %d before CPU time %d", idle, sys.Elapsed())
	}
}

func TestDeterministicExperimentOutputs(t *testing.T) {
	// The whole simulator is deterministic: identical runs, identical
	// cycle counts.
	a, _, _, pa, ba := buildLogged(t, 1, 8)
	b, _, _, pb, bb := buildLogged(t, 1, 8)
	for i := uint32(0); i < 200; i++ {
		pa.Compute(37)
		pa.Store32(ba+(i%512)*4, i)
		pb.Compute(37)
		pb.Store32(bb+(i%512)*4, i)
	}
	if a.Elapsed() != b.Elapsed() {
		t.Fatalf("nondeterministic: %d vs %d", a.Elapsed(), b.Elapsed())
	}
	if a.Sync() != b.Sync() {
		t.Fatalf("nondeterministic drain")
	}
}

func TestUnlogIdempotent(t *testing.T) {
	_, reg, _, _, _ := buildLogged(t, 1, 4)
	reg.Unlog()
	reg.Unlog() // second Unlog is a no-op
}

func TestArenaMarkerExhaustion(t *testing.T) {
	sys := NewSystem(Config{NumCPUs: 1, MemFrames: 1024})
	seg := NewStdSegment(sys, PageSize, nil)
	reg := NewStdRegion(sys, seg)
	as := sys.NewAddressSpace()
	if _, err := NewArena(reg); err == nil {
		t.Fatalf("arena over unbound region accepted")
	}
	if _, err := reg.Bind(as, 0); err != nil {
		t.Fatal(err)
	}
	a, err := NewArena(reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(PageSize, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := NewMarker(a); err == nil {
		t.Fatalf("marker allocated from an exhausted arena")
	}
}

func TestReadIndexedEmpty(t *testing.T) {
	sys := NewSystem(Config{NumCPUs: 1, MemFrames: 1024})
	ls := NewLogSegment(sys, 2)
	if vals := ReadIndexed(sys, ls); len(vals) != 0 {
		t.Fatalf("empty indexed log returned %d values", len(vals))
	}
}
