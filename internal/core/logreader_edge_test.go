package core

import (
	"testing"

	"lvm/internal/logrec"
)

// TestReaderSetEndClampsToSegment: SetEnd past the log segment's size
// clamps to the size instead of letting Next read out of bounds. Crash
// recovery calls SetEnd with whatever bound survived, which may exceed
// the log that did.
func TestReaderSetEndClampsToSegment(t *testing.T) {
	sys, _, ls, p, base := buildLogged(t, 1, 2)
	p.Store32(base, 0xAA)
	r := NewLogReader(sys, ls)

	r.SetEnd(ls.Size() + 4*logrec.Size)
	if r.End() != ls.Size() {
		t.Fatalf("End = %d after oversize SetEnd, want clamp to %d", r.End(), ls.Size())
	}
	// The clamped tail is zeroes, not garbage: scanning to the clamped
	// end terminates and every record stays in bounds.
	n := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	if want := int(ls.Size() / logrec.Size); n != want {
		t.Fatalf("scanned %d records to clamped end, want %d", n, want)
	}

	// In-bounds SetEnd is taken verbatim.
	r.SetEnd(3 * logrec.Size)
	if r.End() != 3*logrec.Size {
		t.Fatalf("End = %d, want %d", r.End(), 3*logrec.Size)
	}
}

// TestReaderSeekMisaligned: Seek rejects offsets that are not a multiple
// of the record size and leaves the reader's position untouched.
func TestReaderSeekMisaligned(t *testing.T) {
	sys, _, ls, p, base := buildLogged(t, 1, 2)
	p.Store32(base, 1)
	p.Store32(base+4, 2)
	r := NewLogReader(sys, ls)
	if err := r.Seek(logrec.Size); err != nil {
		t.Fatal(err)
	}
	for _, off := range []uint32{1, logrec.Size - 1, logrec.Size + 8} {
		if err := r.Seek(off); err == nil {
			t.Fatalf("Seek(%d) accepted a misaligned offset", off)
		}
	}
	if r.Offset() != logrec.Size {
		t.Fatalf("failed Seek moved the reader to %d", r.Offset())
	}
	if rec, ok := r.Next(); !ok || rec.Value != 2 {
		t.Fatalf("record after failed seeks = %+v ok=%v, want value 2", rec, ok)
	}
}

// TestReaderNextUnresolvable: a record whose physical frame no longer
// belongs to any segment (the owner was freed) still decodes, but its
// reverse translation comes back empty — rec.Seg is nil and consumers
// must skip it rather than crash.
func TestReaderNextUnresolvable(t *testing.T) {
	sys, reg, ls, p, base := buildLogged(t, 1, 2)
	p.Store32(base+8, 0xDEAD)
	r := NewLogReader(sys, ls)

	reg.Segment().Free() // drops frame ownership: reverse translation fails

	rec, ok := r.Next()
	if !ok {
		t.Fatal("record vanished from the log")
	}
	if rec.Value != 0xDEAD {
		t.Fatalf("raw record still decodes: value = %#x", rec.Value)
	}
	if rec.Seg != nil {
		t.Fatalf("freed owner resolved to %v", rec.Seg)
	}
	if _, ok := rec.VAIn(reg); ok {
		t.Fatal("VAIn resolved an unresolvable record")
	}
}
