package core

import (
	"testing"
)

func buildOnChipLogged(t *testing.T, segPages, logPages uint32) (*System, *Region, *Segment, *Process, Addr) {
	t.Helper()
	sys := NewSystemOnChip(Config{NumCPUs: 2, MemFrames: 2048})
	seg := NewStdSegment(sys, segPages*PageSize, nil)
	reg := NewStdRegion(sys, seg)
	ls := NewLogSegment(sys, logPages)
	if err := reg.Log(ls); err != nil {
		t.Fatal(err)
	}
	as := sys.NewAddressSpace()
	base, err := reg.Bind(as, 0)
	if err != nil {
		t.Fatal(err)
	}
	return sys, reg, ls, sys.NewProcess(0, as), base
}

func TestOnChipLogReaderResolvesVirtual(t *testing.T) {
	sys, reg, ls, p, base := buildOnChipLogged(t, 1, 4)
	p.Store32(base+0x30, 99)
	r := NewLogReader(sys, ls)
	rec, ok := r.Next()
	if !ok {
		t.Fatalf("no record")
	}
	// The raw address is virtual (Section 4.6)...
	if rec.Addr != base+0x30 {
		t.Fatalf("record addr = %#x, want %#x", rec.Addr, base+0x30)
	}
	// ...and resolution lands on the right segment offset.
	if rec.Seg != reg.Segment() || rec.SegOff != 0x30 {
		t.Fatalf("resolution: %v +%#x", rec.Seg, rec.SegOff)
	}
	if va, ok := rec.VAIn(reg); !ok || va != base+0x30 {
		t.Fatalf("VAIn = %#x, %v", va, ok)
	}
}

func TestOnChipApplyRollsForward(t *testing.T) {
	sys, reg, ls, p, base := buildOnChipLogged(t, 2, 16)
	ckpt := NewNamedSegment(sys, "ckpt", 2*PageSize, nil)
	for i := uint32(0); i < 150; i++ {
		p.Store32(base+(i*20)%(2*PageSize), i)
	}
	r := NewLogReader(sys, ls)
	if n := r.ApplyWhile(reg.Segment(), ckpt, func(Record) bool { return true }); n != 150 {
		t.Fatalf("applied %d", n)
	}
	for off := uint32(0); off < 2*PageSize; off += 4 {
		if ckpt.Read32(off) != reg.Segment().Read32(off) {
			t.Fatalf("mismatch at %#x", off)
		}
	}
}

func TestOnChipMarkers(t *testing.T) {
	sys, reg, ls, p, _ := buildOnChipLogged(t, 1, 4)
	a, _ := NewArena(reg)
	m, err := NewMarker(a)
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := a.Alloc(32, 4)
	m.Write(p, 5)
	p.Store32(obj, 1)
	m.Write(p, 6)
	r := NewLogReader(sys, ls)
	var times []uint32
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		if m.Matches(rec) {
			times = append(times, rec.Value)
		}
	}
	if len(times) != 2 || times[0] != 5 || times[1] != 6 {
		t.Fatalf("marker times = %v", times)
	}
	_ = sys
}

func TestOnChipTruncate(t *testing.T) {
	sys, _, ls, p, base := buildOnChipLogged(t, 1, 4)
	p.Store32(base, 1)
	r := NewLogReader(sys, ls)
	if err := r.Truncate(); err != nil {
		t.Fatal(err)
	}
	p.Store32(base, 2)
	r.Sync()
	rec, ok := r.Next()
	if !ok || rec.Value != 2 {
		t.Fatalf("after truncate: %+v %v", rec, ok)
	}
}
