package core

import (
	"testing"
	"testing/quick"

	"lvm/internal/logrec"
)

// buildLogged is the Section 2.2 example: a logged region bound into an
// address space.
func buildLogged(t *testing.T, segPages, logPages uint32) (*System, *Region, *Segment, *Process, Addr) {
	t.Helper()
	sys := NewSystem(Config{NumCPUs: 2, MemFrames: 2048})
	seg := NewStdSegment(sys, segPages*PageSize, nil)
	reg := NewStdRegion(sys, seg)
	ls := NewLogSegment(sys, logPages)
	if err := reg.Log(ls); err != nil {
		t.Fatal(err)
	}
	as := sys.NewAddressSpace()
	base, err := reg.Bind(as, 0)
	if err != nil {
		t.Fatal(err)
	}
	return sys, reg, ls, sys.NewProcess(0, as), base
}

func TestTable1Example(t *testing.T) {
	// The code sample of Section 2.2 end to end.
	sys, reg, ls, p, base := buildLogged(t, 1, 4)
	p.Store32(base+0x100, 0xFEED)
	r := NewLogReader(sys, ls)
	if r.Remaining() != 1 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
	rec, ok := r.Next()
	if !ok || rec.Value != 0xFEED || rec.WriteSize != 4 {
		t.Fatalf("record = %+v ok=%v", rec, ok)
	}
	if rec.Seg != reg.Segment() || rec.SegOff != 0x100 {
		t.Fatalf("reverse translation: seg=%v off=%#x", rec.Seg, rec.SegOff)
	}
	if va, ok := rec.VAIn(reg); !ok || va != base+0x100 {
		t.Fatalf("VAIn = %#x, %v", va, ok)
	}
}

func TestLogReaderOrderAndSync(t *testing.T) {
	sys, _, ls, p, base := buildLogged(t, 1, 8)
	for i := uint32(0); i < 50; i++ {
		p.Store32(base+i*4, i)
	}
	r := NewLogReader(sys, ls)
	for i := uint32(0); i < 50; i++ {
		rec, ok := r.Next()
		if !ok || rec.Value != i {
			t.Fatalf("record %d = %+v ok=%v", i, rec, ok)
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatalf("reader did not stop at end")
	}
	// More writes; reader sees them only after Sync.
	p.Store32(base, 999)
	if _, ok := r.Next(); ok {
		t.Fatalf("reader saw unsynced record")
	}
	r.Sync()
	rec, ok := r.Next()
	if !ok || rec.Value != 999 {
		t.Fatalf("post-sync record = %+v", rec)
	}
}

func TestApplyRollsForward(t *testing.T) {
	// The CULT primitive: applying log records to a checkpoint segment
	// makes it equal to the working segment.
	sys, reg, ls, p, base := buildLogged(t, 2, 16)
	ckpt := NewNamedSegment(sys, "ckpt", 2*PageSize, nil)
	for i := uint32(0); i < 200; i++ {
		p.Store32(base+(i*12)%(2*PageSize), i)
	}
	r := NewLogReader(sys, ls)
	applied := r.ApplyWhile(reg.Segment(), ckpt, func(Record) bool { return true })
	if applied != 200 {
		t.Fatalf("applied %d records, want 200", applied)
	}
	for off := uint32(0); off < 2*PageSize; off += 4 {
		if ckpt.Read32(off) != reg.Segment().Read32(off) {
			t.Fatalf("checkpoint differs at %#x", off)
		}
	}
}

func TestApplyWhileStopsAtPredicate(t *testing.T) {
	sys, reg, ls, p, base := buildLogged(t, 1, 8)
	ckpt := NewNamedSegment(sys, "ckpt", PageSize, nil)
	for i := uint32(0); i < 10; i++ {
		p.Store32(base+i*4, 100+i)
	}
	r := NewLogReader(sys, ls)
	n := 0
	applied := r.ApplyWhile(reg.Segment(), ckpt, func(Record) bool {
		n++
		return n <= 5
	})
	if applied != 5 {
		t.Fatalf("applied = %d, want 5", applied)
	}
	if ckpt.Read32(16) != 104 || ckpt.Read32(20) != 0 {
		t.Fatalf("partial apply wrong: %d %d", ckpt.Read32(16), ckpt.Read32(20))
	}
	// The reader must not have consumed the failing record.
	rec, ok := r.Next()
	if !ok || rec.Value != 105 {
		t.Fatalf("next after stop = %+v", rec)
	}
}

func TestTruncate(t *testing.T) {
	sys, _, ls, p, base := buildLogged(t, 1, 8)
	p.Store32(base, 1)
	r := NewLogReader(sys, ls)
	if err := r.Truncate(); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("records remain after truncate")
	}
	p.Store32(base, 2)
	r.Sync()
	rec, ok := r.Next()
	if !ok || rec.Value != 2 {
		t.Fatalf("record after truncate = %+v", rec)
	}
	if r.sys.K.LogAppendOffset(ls) != logrec.Size {
		t.Fatalf("append offset after truncate+write = %d", r.sys.K.LogAppendOffset(ls))
	}
}

func TestIndexedModeStream(t *testing.T) {
	sys := NewSystem(Config{NumCPUs: 1, MemFrames: 1024})
	seg := NewStdSegment(sys, PageSize, nil)
	reg := NewStdRegion(sys, seg)
	reg.SetLogMode(ModeIndexed)
	ls := NewLogSegment(sys, 4)
	if err := reg.Log(ls); err != nil {
		t.Fatal(err)
	}
	as := sys.NewAddressSpace()
	base, _ := reg.Bind(as, 0)
	p := sys.NewProcess(0, as)
	for i := uint32(0); i < 20; i++ {
		p.Store32(base+8*(i%100), 1000+i)
	}
	vals := ReadIndexed(sys, ls)
	if len(vals) != 20 {
		t.Fatalf("indexed values = %d, want 20", len(vals))
	}
	for i, v := range vals {
		if v != 1000+uint32(i) {
			t.Fatalf("value %d = %d", i, v)
		}
	}
}

func TestDirectModeMirrors(t *testing.T) {
	sys := NewSystem(Config{NumCPUs: 1, MemFrames: 1024})
	seg := NewStdSegment(sys, PageSize, nil)
	reg := NewStdRegion(sys, seg)
	reg.SetLogMode(ModeDirect)
	ls := NewLogSegment(sys, 1)
	if err := reg.Log(ls); err != nil {
		t.Fatal(err)
	}
	as := sys.NewAddressSpace()
	base, _ := reg.Bind(as, 0)
	p := sys.NewProcess(0, as)
	p.Store32(base+0x40, 0xABCD1234)
	sys.Sync()
	if got := ls.Read32(0x40); got != 0xABCD1234 {
		t.Fatalf("direct-mapped mirror = %#x", got)
	}
}

func TestArenaAllocatesAndAligns(t *testing.T) {
	sys, reg, _, _, _ := buildLogged(t, 2, 4)
	_ = sys
	a, err := NewArena(reg)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := a.Alloc(10, 4)
	v2, _ := a.Alloc(16, 16)
	if v2%16 != 0 {
		t.Fatalf("alignment violated: %#x", v2)
	}
	if v2 < v1+10 {
		t.Fatalf("overlapping allocations")
	}
	if _, err := a.Alloc(3*PageSize, 4); err == nil {
		t.Fatalf("overcommit allowed")
	}
	a.Reset()
	v3, _ := a.Alloc(4, 4)
	if v3 != reg.Base() {
		t.Fatalf("reset did not rewind")
	}
}

func TestMarkerRoundTrip(t *testing.T) {
	sys, reg, ls, p, _ := buildLogged(t, 1, 4)
	a, _ := NewArena(reg)
	m, err := NewMarker(a)
	if err != nil {
		t.Fatal(err)
	}
	objVA, _ := a.Alloc(64, 4)
	m.Write(p, 7) // virtual time 7
	p.Store32(objVA, 123)
	m.Write(p, 8)
	p.Store32(objVA+4, 456)
	r := NewLogReader(sys, ls)
	var times []uint32
	var writes int
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		if m.Matches(rec) {
			times = append(times, rec.Value)
		} else {
			writes++
		}
	}
	if len(times) != 2 || times[0] != 7 || times[1] != 8 {
		t.Fatalf("marker times = %v", times)
	}
	if writes != 2 {
		t.Fatalf("object writes = %d", writes)
	}
}

func TestPropertyLogMatchesWrites(t *testing.T) {
	// Property: for any sequence of (offset, value) stores, the log
	// replays to exactly the final segment contents, and contains
	// exactly one record per store in order.
	prop := func(ops []uint16) bool {
		if len(ops) > 300 {
			ops = ops[:300]
		}
		sys, reg, ls, p, base := buildLoggedQuick()
		for _, op := range ops {
			off := uint32(op) % (PageSize / 4) * 4
			p.Store32(base+off, uint32(op)^0x5A5A)
		}
		r := NewLogReader(sys, ls)
		if r.Remaining() != len(ops) {
			return false
		}
		replay := NewNamedSegment(sys, "replay", PageSize, nil)
		r.ApplyWhile(reg.Segment(), replay, func(Record) bool { return true })
		for off := uint32(0); off < PageSize; off += 4 {
			if replay.Read32(off) != reg.Segment().Read32(off) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func buildLoggedQuick() (*System, *Region, *Segment, *Process, Addr) {
	sys := NewSystem(Config{NumCPUs: 1, MemFrames: 2048})
	seg := NewStdSegment(sys, PageSize, nil)
	reg := NewStdRegion(sys, seg)
	ls := NewLogSegment(sys, 32)
	if err := reg.Log(ls); err != nil {
		panic(err)
	}
	as := sys.NewAddressSpace()
	base, err := reg.Bind(as, 0)
	if err != nil {
		panic(err)
	}
	return sys, reg, ls, sys.NewProcess(0, as), base
}

func TestSeparateProgramAddsLogging(t *testing.T) {
	// Section 2.2: "The creation of the log segment and its association
	// with an existing segment can also be performed by a separate
	// program, such as a debugger" — logging is attached after the
	// region is already bound and in use.
	sys := NewSystem(Config{NumCPUs: 1, MemFrames: 1024})
	seg := NewStdSegment(sys, PageSize, nil)
	reg := NewStdRegion(sys, seg)
	as := sys.NewAddressSpace()
	base, _ := reg.Bind(as, 0)
	p := sys.NewProcess(0, as)
	p.Store32(base, 1) // unlogged
	ls := NewLogSegment(sys, 4)
	if err := reg.Log(ls); err != nil {
		t.Fatal(err)
	}
	p.Store32(base+4, 2) // logged
	r := NewLogReader(sys, ls)
	if r.Remaining() != 1 {
		t.Fatalf("Remaining = %d, want 1", r.Remaining())
	}
	rec, _ := r.Next()
	if rec.Value != 2 {
		t.Fatalf("record = %+v", rec)
	}
}
