package core

import "fmt"

// Arena is a bump allocator over a bound region: the mechanism behind the
// paper's recommendation that applications "place each object in the right
// region" and give classes overloaded new operators choosing a logged or
// unlogged region (Section 2.7). Objects allocated from an arena over a
// logged region are logged; the same type allocated from an arena over an
// unlogged region is not.
type Arena struct {
	r    *Region
	next Addr
}

// NewArena creates an allocator over a bound region.
func NewArena(r *Region) (*Arena, error) {
	if r.Base() == 0 {
		return nil, fmt.Errorf("core: arena over unbound region")
	}
	return &Arena{r: r, next: r.Base()}, nil
}

// Alloc reserves size bytes with the given alignment (a power of two) and
// returns the virtual address.
func (a *Arena) Alloc(size, align uint32) (Addr, error) {
	if align == 0 {
		align = 4
	}
	va := (a.next + align - 1) &^ (align - 1)
	if va+size > a.r.Base()+a.r.Size() {
		return 0, fmt.Errorf("core: arena exhausted (%d bytes requested)", size)
	}
	a.next = va + size
	return va, nil
}

// Used reports how many bytes of the region the arena has handed out.
func (a *Arena) Used() uint32 { return a.next - a.r.Base() }

// Reset makes the whole region available again.
func (a *Arena) Reset() { a.next = a.r.Base() }

// Marker is a reserved logged word whose writes delimit points in the log:
// the paper's applications write local virtual time (Section 2.4, footnote
// 2) or a transaction identifier (Section 2.5) to such a location so log
// consumers can attribute records.
type Marker struct {
	Seg    *Segment
	SegOff uint32
	VA     Addr
}

// NewMarker allocates a marker word from an arena over a logged region.
func NewMarker(a *Arena) (Marker, error) {
	va, err := a.Alloc(4, 4)
	if err != nil {
		return Marker{}, err
	}
	return Marker{Seg: a.r.Segment(), SegOff: va - a.r.Base(), VA: va}, nil
}

// Write stores v to the marker location through p, producing a marker
// record in the log.
func (m Marker) Write(p *Process, v uint32) { p.Store32(m.VA, v) }

// Matches reports whether a log record is a write of this marker.
func (m Marker) Matches(rec Record) bool {
	return rec.Seg == m.Seg && rec.SegOff == m.SegOff
}
