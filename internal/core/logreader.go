package core

import (
	"fmt"

	"lvm/internal/logrec"
)

// Record is one logged write as seen by a log consumer: the raw 16-byte
// record (Section 3.1) plus the kernel's reverse translation of its
// physical address back to the owning segment and offset (Section 3.1.2:
// the prototype logger stores physical addresses, so consumers that want
// segment-relative or virtual addresses translate in software).
type Record struct {
	logrec.Record
	// Seg is the segment the write landed in (nil if the frame is no
	// longer owned, e.g. the segment was freed).
	Seg *Segment
	// SegOff is the byte offset of the write within Seg.
	SegOff uint32
}

// VAIn returns the virtual address of the write as seen through region r
// (which must map Record.Seg), ok=false otherwise.
func (rec Record) VAIn(r *Region) (Addr, bool) {
	if rec.Seg == nil || r.Segment() != rec.Seg || rec.SegOff >= r.Size() {
		return 0, false
	}
	return r.Base() + rec.SegOff, true
}

// LogReader iterates over the records of a (record-mode) log segment in
// write order: "These log records are arranged sequentially in the log
// segment so that an earlier write is stored in a lower offset than a
// later write" (Section 2.1).
type LogReader struct {
	sys *System
	ls  *Segment
	off uint32
	end uint32
	// scratch receives the raw record bytes so that Next does not
	// allocate per record.
	scratch [logrec.Size]byte
}

// NewLogReader creates a reader positioned at the start of the log. It
// synchronizes with the logger (drains in-flight records) to find the end
// of the log.
func NewLogReader(sys *System, ls *Segment) *LogReader {
	r := &LogReader{sys: sys, ls: ls}
	r.Sync()
	return r
}

// NewLogReaderAt creates a reader over [start, end) of the log WITHOUT
// synchronizing with the logger or consulting the hardware append state.
// Callers must have established the bounds beforehand (typically from a
// synced NewLogReader); because it touches no kernel or device state, any
// number of such readers may run concurrently over a quiescent machine —
// the partitioned parallel recovery path depends on exactly that.
func NewLogReaderAt(sys *System, ls *Segment, start, end uint32) *LogReader {
	r := &LogReader{sys: sys, ls: ls, off: start}
	r.SetEnd(end)
	return r
}

// Sync drains the logger and refreshes the reader's view of the log end.
func (r *LogReader) Sync() {
	r.sys.K.Sync()
	r.end = r.sys.K.LogAppendOffset(r.ls)
}

// Offset reports the reader's current byte offset within the log segment.
func (r *LogReader) Offset() uint32 { return r.off }

// End reports the reader's view of the log end offset.
func (r *LogReader) End() uint32 { return r.end }

// SetEnd overrides the reader's view of the log end, bounded by the
// segment size. Crash recovery uses it to scan a log whose hardware
// append state did not survive: the surviving bytes are authoritative,
// not the (lost) device head.
func (r *LogReader) SetEnd(end uint32) {
	if max := r.ls.Size(); end > max {
		end = max
	}
	r.end = end
}

// Seek positions the reader at the given byte offset (must be a multiple
// of the record size).
func (r *LogReader) Seek(off uint32) error {
	if off%logrec.Size != 0 {
		return fmt.Errorf("core: log seek offset %d not record aligned", off)
	}
	r.off = off
	return nil
}

// Remaining reports how many whole records remain.
func (r *LogReader) Remaining() int { return int((r.end - r.off) / logrec.Size) }

// Next returns the next record, resolving its address. ok is false at the
// end of the log.
func (r *LogReader) Next() (rec Record, ok bool) {
	if r.off+logrec.Size > r.end {
		return Record{}, false
	}
	r.ls.ReadInto(r.off, r.scratch[:])
	raw := logrec.Decode(r.scratch[:])
	r.off += logrec.Size
	rec = Record{Record: raw}
	if seg, off, found := r.sys.K.ResolveLogAddr(r.ls, raw.Addr); found {
		rec.Seg = seg
		rec.SegOff = off
	}
	return rec, true
}

// All returns every remaining record.
func (r *LogReader) All() []Record {
	out := make([]Record, 0, r.Remaining())
	for {
		rec, ok := r.Next()
		if !ok {
			return out
		}
		out = append(out, rec)
	}
}

// Apply replays a record into dst at the record's segment offset: the
// basic operation of checkpoint roll-forward ("the scheduler applies all
// logged updates older than T to the checkpoint segment", Section 2.4).
// dst is typically a different segment (a checkpoint) with the same
// layout as the logged segment.
func (rec Record) Apply(dst *Segment) {
	dst.RawWrite(rec.SegOff, rec.ValueBytes())
}

// ApplyWhile replays records into dst while pred returns true, stopping
// (without consuming) at the first record for which pred is false. It
// returns how many records were applied. Records that resolve to a
// different segment than src are skipped (they belong to other data
// logged into the same log, e.g. marker words elsewhere).
func (r *LogReader) ApplyWhile(src, dst *Segment, pred func(Record) bool) int {
	n := 0
	for {
		save := r.off
		rec, ok := r.Next()
		if !ok {
			return n
		}
		if !pred(rec) {
			r.off = save
			return n
		}
		if rec.Seg == src {
			rec.Apply(dst)
			n++
		}
	}
}

// Truncate discards the log contents and resets both the hardware append
// position and this reader to the start.
func (r *LogReader) Truncate() error {
	if err := r.sys.K.TruncateLog(r.ls); err != nil {
		return err
	}
	r.off, r.end = 0, 0
	return nil
}

// ReadIndexed returns the values of an indexed-mode log (Section 2.6:
// "the log generates a sequence of data values into the log segment
// without addresses or other information").
func ReadIndexed(sys *System, ls *Segment) []uint32 {
	sys.K.Sync()
	end := sys.K.LogAppendOffset(ls)
	out := make([]uint32, 0, end/4)
	for off := uint32(0); off+4 <= end; off += 4 {
		out = append(out, ls.Read32(off))
	}
	return out
}
