// Package dsm implements the distributed-consistency comparison of
// Section 2.6 of the paper: log-based consistency versus Munin-style
// twin/diff processing for write-shared data.
//
// In Munin, "determining the updates is implemented by write-protecting
// pages, taking a page fault on write to such a page, creating a twin of
// the page and performing a word-by-word comparison to generate a list of
// differences when sending an update on a write-shared object."
//
// With log-based consistency, the producer's writes are logged by the LVM
// hardware as they happen; at lock release the updates are already
// enumerated, so release-time processing "is reduced to the time required
// to synchronize with consumers". The trade-off the paper acknowledges —
// "the amount of data transmitted can be more with LVM if locations are
// updated repeatedly between acquiring and releasing locks" — is
// measurable here and exercised by the ablation benchmark.
package dsm

import (
	"fmt"

	"lvm/internal/core"
	"lvm/internal/cycles"
	"lvm/internal/logcursor"
)

// Cost model for the software consistency layer.
const (
	// DiffWordCycles is the per-word cost of Munin's twin comparison.
	DiffWordCycles = 3
	// TwinLineCycles is the per-16-byte cost of creating a page twin
	// (a bcopy of the page).
	TwinLineCycles = cycles.BcopyLineCycles
	// WriteProtectCycles is the kernel cost of re-protecting a page.
	WriteProtectCycles = 400
	// RecordCycles is the per-log-record cost of building an update
	// entry from the LVM log.
	RecordCycles = 40
	// SkipCycles is the per-record cost of recognizing and skipping a
	// record that belongs to another segment sharing the log: the
	// consumer still decodes the record and resolves its address, but
	// builds no entry. Charged instead of RecordCycles, never on top of
	// it.
	SkipCycles = 8
	// ApplyWordCycles is the consumer-side per-entry application cost.
	ApplyWordCycles = 6
	// MsgHeaderBytes and EntryBytes define the update-message encoding:
	// each entry carries a 4-byte offset and a 4-byte datum.
	MsgHeaderBytes = 32
	EntryBytes     = 8
)

// Entry is one word update in a consistency message.
type Entry struct {
	Off uint32
	Val uint32
}

// UpdateMsg is the update set shipped at lock release.
type UpdateMsg struct {
	Entries []Entry
	Bytes   int
}

// ReleaseStats reports the producer-side cost of one release.
type ReleaseStats struct {
	Cycles  uint64
	Bytes   int
	Entries int
}

// Producer is a write-shared-object producer under some protocol.
type Producer interface {
	// Write updates one shared word (within the critical section).
	Write(off uint32, val uint32)
	// Release ends the critical section, returning the update message
	// and the release-time cost.
	Release() (UpdateMsg, ReleaseStats)
	// Base returns the region's virtual base (for direct access).
	Base() core.Addr
	// WriteCycles reports total cycles spent inside Write calls.
	WriteCycles() uint64
}

// --- Munin twin/diff producer ---

// MuninProducer implements twin/diff over an unlogged region.
type MuninProducer struct {
	sys  *core.System
	p    *core.Process
	seg  *core.Segment
	base core.Addr
	size uint32

	twins       map[uint32][]byte // page -> twin copy
	writeCycles uint64
}

// NewMuninProducer maps a shared segment of the given size.
func NewMuninProducer(sys *core.System, p *core.Process, size uint32) (*MuninProducer, error) {
	seg := core.NewNamedSegment(sys, "munin-shared", size, nil)
	reg := core.NewStdRegion(sys, seg)
	base, err := reg.Bind(p.AS, 0)
	if err != nil {
		return nil, err
	}
	// Fault pages in once so steady-state runs don't mix initial page
	// faults into the protocol costs.
	for off := uint32(0); off < size; off += core.PageSize {
		p.Load32(base + off)
	}
	return &MuninProducer{sys: sys, p: p, seg: seg, base: base, size: size, twins: map[uint32][]byte{}}, nil
}

// Base returns the region base.
func (m *MuninProducer) Base() core.Addr { return m.base }

// WriteCycles reports cycles spent in Write.
func (m *MuninProducer) WriteCycles() uint64 { return m.writeCycles }

// Write performs one shared write: the first write to a protected page
// takes a protection fault and creates a twin.
func (m *MuninProducer) Write(off uint32, val uint32) {
	start := m.p.Now()
	page := off >> 12
	if _, ok := m.twins[page]; !ok {
		// Write-protection fault + twin creation.
		m.p.Compute(cycles.PageFaultCycles)
		m.twins[page] = m.seg.RawRead(page*core.PageSize, core.PageSize)
		m.p.Compute(uint64(core.PageSize/core.LineSize) * TwinLineCycles)
	}
	m.p.Store32(m.base+off, val)
	m.writeCycles += m.p.Now() - start
}

// Release diffs every twinned page word by word and re-protects it.
func (m *MuninProducer) Release() (UpdateMsg, ReleaseStats) {
	start := m.p.Now()
	var msg UpdateMsg
	// Deterministic page order.
	for page := uint32(0); page*core.PageSize < m.size; page++ {
		twin, ok := m.twins[page]
		if !ok {
			continue
		}
		m.p.Compute(uint64(core.PageSize/4) * DiffWordCycles)
		cur := m.seg.RawRead(page*core.PageSize, core.PageSize)
		for w := 0; w < core.PageSize; w += 4 {
			if cur[w] != twin[w] || cur[w+1] != twin[w+1] || cur[w+2] != twin[w+2] || cur[w+3] != twin[w+3] {
				msg.Entries = append(msg.Entries, Entry{
					Off: page*core.PageSize + uint32(w),
					Val: le32(cur[w:]),
				})
			}
		}
		m.p.Compute(WriteProtectCycles)
		delete(m.twins, page)
	}
	msg.Bytes = MsgHeaderBytes + len(msg.Entries)*EntryBytes
	st := ReleaseStats{Cycles: m.p.Now() - start, Bytes: msg.Bytes, Entries: len(msg.Entries)}
	return msg, st
}

// --- Log-based producer ---

// LVMProducer ships updates from the LVM log.
type LVMProducer struct {
	sys    *core.System
	p      *core.Process
	seg    *core.Segment
	ls     *core.Segment
	reader *core.LogReader
	base   core.Addr

	writeCycles uint64
}

// NewLVMProducer maps a logged shared segment.
func NewLVMProducer(sys *core.System, p *core.Process, size uint32, logPages uint32) (*LVMProducer, error) {
	if logPages == 0 {
		logPages = 64
	}
	seg := core.NewNamedSegment(sys, "lvm-shared", size, nil)
	reg := core.NewStdRegion(sys, seg)
	ls := core.NewLogSegment(sys, logPages)
	if err := reg.Log(ls); err != nil {
		return nil, err
	}
	base, err := reg.Bind(p.AS, 0)
	if err != nil {
		return nil, err
	}
	for off := uint32(0); off < size; off += core.PageSize {
		p.Load32(base + off)
	}
	l := &LVMProducer{sys: sys, p: p, seg: seg, ls: ls, base: base}
	l.reader = core.NewLogReader(sys, ls)
	return l, nil
}

// Base returns the region base.
func (l *LVMProducer) Base() core.Addr { return l.base }

// Segment exposes the shared data segment (for shipping/verification).
func (l *LVMProducer) Segment() *core.Segment { return l.seg }

// LogSegment exposes the log segment the shared writes land in, so a
// replication layer (internal/logship) can ship its records.
func (l *LVMProducer) LogSegment() *core.Segment { return l.ls }

// WriteCycles reports cycles spent in Write.
func (l *LVMProducer) WriteCycles() uint64 { return l.writeCycles }

// Write is just a logged store — the hardware enumerates the update.
func (l *LVMProducer) Write(off uint32, val uint32) {
	start := l.p.Now()
	l.p.Store32(l.base+off, val)
	l.writeCycles += l.p.Now() - start
}

// Release synchronizes with the log and emits one entry per record since
// the last release. The enumeration is the shared logcursor selection
// walk; the producer reads its own log, so the records are in-domain and
// the current-word widening below is correct (entries are applied as
// whole messages, never partially).
func (l *LVMProducer) Release() (UpdateMsg, ReleaseStats) {
	start := l.p.Now()
	l.reader.Sync()
	var msg UpdateMsg
	_ = logcursor.EachData(l.reader, l.seg, func(rec core.Record, isData bool) error {
		if !isData {
			// Records from other segments sharing this log cost only
			// the skip, not a full entry build.
			l.p.Compute(SkipCycles)
			return nil
		}
		l.p.Compute(RecordCycles)
		w := rec.SegOff &^ 3
		msg.Entries = append(msg.Entries, Entry{
			Off: w,
			Val: mergeWord(l.seg.Read32(w), rec.SegOff, rec.Value, rec.WriteSize),
		})
		return nil
	})
	msg.Bytes = MsgHeaderBytes + len(msg.Entries)*EntryBytes
	st := ReleaseStats{Cycles: l.p.Now() - start, Bytes: msg.Bytes, Entries: len(msg.Entries)}
	return msg, st
}

// mergeWord widens a write to its containing word by overlaying the
// value bytes onto prev, the word's contents *before* this write. For a
// consumer, prev is the replica's current word, so applying a backlog
// reconstructs each point-in-time value instead of reading the producer
// segment's current word — which would transiently install values from
// writes that come later in the log.
func mergeWord(prev uint32, off, val uint32, size uint16) uint32 {
	var mask uint32
	switch size {
	case 1:
		mask = 0xFF
	case 2:
		mask = 0xFFFF
	default:
		return val
	}
	shift := (off & 3) * 8
	return prev&^(mask<<shift) | (val&mask)<<shift
}

// Consumer holds a replicated copy and applies update messages.
type Consumer struct {
	sys  *core.System
	p    *core.Process
	seg  *core.Segment
	base core.Addr

	ApplyCycles uint64
	BytesRecv   uint64
}

// NewConsumer maps a replica segment of the given size.
func NewConsumer(sys *core.System, p *core.Process, size uint32) (*Consumer, error) {
	seg := core.NewNamedSegment(sys, "dsm-replica", size, nil)
	reg := core.NewStdRegion(sys, seg)
	base, err := reg.Bind(p.AS, 0)
	if err != nil {
		return nil, err
	}
	return &Consumer{sys: sys, p: p, seg: seg, base: base}, nil
}

// Apply installs an update message into the replica.
func (c *Consumer) Apply(msg UpdateMsg) {
	start := c.p.Now()
	for _, e := range msg.Entries {
		c.p.Compute(ApplyWordCycles)
		c.seg.Write32(e.Off, e.Val)
	}
	c.ApplyCycles += c.p.Now() - start
	c.BytesRecv += uint64(msg.Bytes)
}

// ApplyRecord applies one shipped log record to the replica: the write's
// value bytes land at their segment offset, so sub-word writes merge into
// the replica's prior contents exactly as the original store did. This is
// the apply path of the logship replication layer; validation (size,
// alignment, bounds) is the caller's job (recovery.ValidWrite).
func (c *Consumer) ApplyRecord(off uint32, val uint32, size uint16) {
	start := c.p.Now()
	c.p.Compute(ApplyWordCycles)
	var b [4]byte
	n := int(size)
	if n > 4 {
		n = 4
	}
	for i := 0; i < n; i++ {
		b[i] = byte(val >> (8 * i))
	}
	c.seg.RawWrite(off, b[:n])
	c.ApplyCycles += c.p.Now() - start
}

// ApplyImage installs a chunk of a producer segment image at the given
// offset — the snapshot catch-up path of the logship layer, used when a
// replica's cursor predates the producer's log compaction cut and the
// records it is missing no longer exist. The chunk lands raw; cost is
// charged per word like Apply.
func (c *Consumer) ApplyImage(off uint32, b []byte) {
	start := c.p.Now()
	c.p.Compute(uint64(len(b)/4+1) * ApplyWordCycles)
	c.seg.RawWrite(off, b)
	c.ApplyCycles += c.p.Now() - start
	c.BytesRecv += uint64(len(b))
}

// Word reads one replica word (raw).
func (c *Consumer) Word(off uint32) uint32 { return c.seg.Read32(off) }

// ReadInto copies replica bytes starting at off into b — the image dump
// a failover uses to re-seed a new primary from a surviving replica.
func (c *Consumer) ReadInto(off uint32, b []byte) { c.seg.ReadInto(off, b) }

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Verify checks that the replica matches the producer's segment over
// [0, size).
func Verify(prodSeg *core.Segment, c *Consumer, size uint32) error {
	for off := uint32(0); off < size; off += 4 {
		if got, want := c.Word(off), prodSeg.Read32(off); got != want {
			return fmt.Errorf("dsm: replica differs at %#x: %#x != %#x", off, got, want)
		}
	}
	return nil
}

// SegmentOf exposes a producer's shared segment for verification.
func SegmentOf(p Producer) *core.Segment {
	switch v := p.(type) {
	case *MuninProducer:
		return v.seg
	case *LVMProducer:
		return v.seg
	}
	return nil
}

// StreamingConsumer pulls updates from an LVM producer's log *during* the
// critical section, so that "the time for processing on lock release
// (when these updates are flushed) is reduced to the time required to
// synchronize with consumers. That is, there should be little or no
// backlog of data updates to transmit at this time" (Section 2.6).
type StreamingConsumer struct {
	*Consumer
	prod   *LVMProducer
	reader *core.LogReader

	Pulls   uint64
	Entries uint64

	// Quarantined: a pulled record failed validation. The consumer stops
	// consuming — nothing past damage can be trusted to be a real write
	// — and further pulls are no-ops, the same degrade-don't-panic
	// posture as crash recovery and the replication replica.
	Quarantined    bool
	InvalidRecords int
}

// NewStreamingConsumer attaches a consumer directly to the producer's log.
func NewStreamingConsumer(sys *core.System, p *core.Process, prod *LVMProducer, size uint32) (*StreamingConsumer, error) {
	c, err := NewConsumer(sys, p, size)
	if err != nil {
		return nil, err
	}
	return &StreamingConsumer{
		Consumer: c,
		prod:     prod,
		reader:   core.NewLogReader(sys, prod.ls),
	}, nil
}

// Pull consumes any records logged since the last Pull, applying them to
// the replica. It returns how many updates arrived.
func (s *StreamingConsumer) Pull() int { return s.PullN(-1) }

// PullN consumes at most max log records (all of them if max < 0),
// applying those that belong to the shared segment. A bounded pull models
// a consumer that lags the producer: the replica must hold point-in-time
// values, so sub-word records are widened against the replica's own prior
// contents, never against the producer's (possibly newer) segment.
//
// Records cross a trust boundary here (the consumer applies another
// domain's log), so each one passes the shared logcursor validation; the
// first invalid record quarantines the stream and ends this consumer's
// pulling for good.
func (s *StreamingConsumer) PullN(max int) int {
	if s.Quarantined {
		return 0
	}
	s.reader.Sync()
	n := 0
	w := logcursor.NewWalker(logcursor.Config{
		View: logcursor.ApplyAll,
		End:  s.reader.End(),
		Apply: func(r logcursor.Rec) {
			s.p.Compute(ApplyWordCycles)
			wd := r.Off &^ 3
			s.seg.Write32(wd, mergeWord(s.seg.Read32(wd), r.Off, r.Value, r.Size))
			n++
		},
	})
	src := logcursor.WrapReader(s.reader, s.prod.seg)
	for scanned := 0; max < 0 || scanned < max; scanned++ {
		rec, ok := src.Next()
		if !ok {
			break
		}
		if !w.Feed(rec) {
			break
		}
	}
	if st := w.Finish(); st.Quarantined() {
		s.Quarantined = true
		s.InvalidRecords += st.InvalidRecords
	}
	s.Pulls++
	s.Entries += uint64(n)
	s.BytesRecv += uint64(n * EntryBytes)
	return n
}

// ReleaseStreaming finalizes a critical section against a streaming
// consumer: one last Pull covers whatever the consumer had not yet seen
// (the backlog), and the producer's cost is only the synchronization.
func (p *LVMProducer) ReleaseStreaming(c *StreamingConsumer) (backlog int, producerCycles uint64, err error) {
	start := p.p.Now()
	p.reader.Sync() // the producer synchronizes on the end of the log
	if err := p.reader.Seek(p.sys.K.LogAppendOffset(p.ls)); err != nil {
		return 0, p.p.Now() - start, err
	}
	producerCycles = p.p.Now() - start
	backlog = c.Pull()
	return backlog, producerCycles, nil
}
