package dsm

import (
	"testing"
	"testing/quick"

	"lvm/internal/core"
)

const shared = 8 * core.PageSize

func newSys() *core.System {
	return core.NewSystem(core.Config{NumCPUs: 2, MemFrames: 8192})
}

func TestMuninConsistency(t *testing.T) {
	sys := newSys()
	p := sys.NewProcess(0, sys.NewAddressSpace())
	prod, err := NewMuninProducer(sys, p, shared)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := NewConsumer(sys, sys.NewProcess(1, sys.NewAddressSpace()), shared)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 100; i++ {
		prod.Write((i*52)%shared&^3, 1000+i)
	}
	msg, st := prod.Release()
	cons.Apply(msg)
	if err := Verify(SegmentOf(prod), cons, shared); err != nil {
		t.Fatal(err)
	}
	if st.Entries == 0 || st.Bytes <= MsgHeaderBytes {
		t.Fatalf("empty update: %+v", st)
	}
}

func TestLVMConsistency(t *testing.T) {
	sys := newSys()
	p := sys.NewProcess(0, sys.NewAddressSpace())
	prod, err := NewLVMProducer(sys, p, shared, 64)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := NewConsumer(sys, sys.NewProcess(1, sys.NewAddressSpace()), shared)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 100; i++ {
		prod.Write((i*52)%shared&^3, 1000+i)
	}
	msg, st := prod.Release()
	cons.Apply(msg)
	if err := Verify(SegmentOf(prod), cons, shared); err != nil {
		t.Fatal(err)
	}
	if st.Entries != 100 {
		t.Fatalf("entries = %d, want 100 (one per logged write)", st.Entries)
	}
}

func TestProtocolsAgreeOnFinalState(t *testing.T) {
	prop := func(offs []uint16, vals []uint32) bool {
		n := len(offs)
		if len(vals) < n {
			n = len(vals)
		}
		if n > 120 {
			n = 120
		}
		sysA := newSys()
		pa := sysA.NewProcess(0, sysA.NewAddressSpace())
		munin, err := NewMuninProducer(sysA, pa, shared)
		if err != nil {
			return false
		}
		ca, _ := NewConsumer(sysA, sysA.NewProcess(1, sysA.NewAddressSpace()), shared)

		sysB := newSys()
		pb := sysB.NewProcess(0, sysB.NewAddressSpace())
		lvmp, err := NewLVMProducer(sysB, pb, shared, 64)
		if err != nil {
			return false
		}
		cb, _ := NewConsumer(sysB, sysB.NewProcess(1, sysB.NewAddressSpace()), shared)

		for i := 0; i < n; i++ {
			off := uint32(offs[i]) % shared &^ 3
			munin.Write(off, vals[i])
			lvmp.Write(off, vals[i])
		}
		ma, _ := munin.Release()
		mb, _ := lvmp.Release()
		ca.Apply(ma)
		cb.Apply(mb)
		if Verify(SegmentOf(munin), ca, shared) != nil {
			return false
		}
		if Verify(SegmentOf(lvmp), cb, shared) != nil {
			return false
		}
		// Replicas agree with each other too.
		for off := uint32(0); off < shared; off += 4 {
			if ca.Word(off) != cb.Word(off) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestLVMReleaseCheaperThanMunin(t *testing.T) {
	// Section 2.6: "LVM reduces the overhead of determining the updates
	// to transmit" — the release-time processing collapses to log
	// consumption instead of twin diffs over whole pages.
	sysA := newSys()
	munin, _ := NewMuninProducer(sysA, sysA.NewProcess(0, sysA.NewAddressSpace()), shared)
	sysB := newSys()
	lvmp, _ := NewLVMProducer(sysB, sysB.NewProcess(0, sysB.NewAddressSpace()), shared, 64)
	// Sparse writes across every page: Munin must twin and diff all of
	// them.
	for page := uint32(0); page < 8; page++ {
		for i := uint32(0); i < 4; i++ {
			off := page*core.PageSize + i*64
			munin.Write(off, page*100+i)
			lvmp.Write(off, page*100+i)
		}
	}
	_, stM := munin.Release()
	_, stL := lvmp.Release()
	if stL.Cycles >= stM.Cycles {
		t.Fatalf("LVM release (%d) not cheaper than Munin (%d)", stL.Cycles, stM.Cycles)
	}
	// Total producer overhead (writes + release): Munin pays faults and
	// twins; LVM pays only write-throughs.
	totM := munin.WriteCycles() + stM.Cycles
	totL := lvmp.WriteCycles() + stL.Cycles
	if totL >= totM {
		t.Fatalf("LVM total (%d) not cheaper than Munin total (%d)", totL, totM)
	}
}

func TestRepeatedWritesCostLVMMoreBytes(t *testing.T) {
	// The acknowledged trade-off: "the amount of data transmitted can be
	// more with LVM if locations are updated repeatedly between
	// acquiring and releasing locks."
	sysA := newSys()
	munin, _ := NewMuninProducer(sysA, sysA.NewProcess(0, sysA.NewAddressSpace()), shared)
	sysB := newSys()
	lvmp, _ := NewLVMProducer(sysB, sysB.NewProcess(0, sysB.NewAddressSpace()), shared, 64)
	for rep := uint32(0); rep < 50; rep++ {
		munin.Write(0, rep)
		lvmp.Write(0, rep)
	}
	mM, _ := munin.Release()
	mL, _ := lvmp.Release()
	if len(mM.Entries) != 1 {
		t.Fatalf("munin entries = %d, want 1", len(mM.Entries))
	}
	if len(mL.Entries) != 50 {
		t.Fatalf("lvm entries = %d, want 50", len(mL.Entries))
	}
	if mL.Bytes <= mM.Bytes {
		t.Fatalf("LVM bytes (%d) not larger under repeated writes (munin %d)", mL.Bytes, mM.Bytes)
	}
}

func TestSubWordWritesPropagate(t *testing.T) {
	sys := newSys()
	p := sys.NewProcess(0, sys.NewAddressSpace())
	prod, _ := NewLVMProducer(sys, p, shared, 64)
	cons, _ := NewConsumer(sys, sys.NewProcess(1, sys.NewAddressSpace()), shared)
	p.Store32(prod.Base()+8, 0xAABBCCDD)
	p.Store8(prod.Base()+9, 0x11) // sub-word update
	msg, _ := prod.Release()
	cons.Apply(msg)
	if err := Verify(SegmentOf(prod), cons, shared); err != nil {
		t.Fatal(err)
	}
	if got := cons.Word(8); got != 0xAABB11DD {
		t.Fatalf("sub-word propagation = %#x", got)
	}
}

func TestMultipleReleases(t *testing.T) {
	sys := newSys()
	p := sys.NewProcess(0, sys.NewAddressSpace())
	prod, _ := NewLVMProducer(sys, p, shared, 64)
	cons, _ := NewConsumer(sys, sys.NewProcess(1, sys.NewAddressSpace()), shared)
	for round := uint32(0); round < 5; round++ {
		for i := uint32(0); i < 20; i++ {
			prod.Write((round*800+i*8)%shared&^3, round*1000+i)
		}
		msg, st := prod.Release()
		if st.Entries != 20 {
			t.Fatalf("round %d: %d entries, want 20 (stale records re-sent?)", round, st.Entries)
		}
		cons.Apply(msg)
	}
	if err := Verify(SegmentOf(prod), cons, shared); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingConsumerReducesBacklog(t *testing.T) {
	sys := newSys()
	prod, err := NewLVMProducer(sys, sys.NewProcess(0, sys.NewAddressSpace()), shared, 64)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := NewStreamingConsumer(sys, sys.NewProcess(1, sys.NewAddressSpace()), prod, shared)
	if err != nil {
		t.Fatal(err)
	}
	// The producer writes; the consumer streams during the critical
	// section ("the output process executes asynchronously").
	for i := uint32(0); i < 60; i++ {
		prod.Write((i*96)%shared&^3, 4000+i)
		if i%10 == 9 {
			cons.Pull()
		}
	}
	backlog, relCycles, err := prod.ReleaseStreaming(cons)
	if err != nil {
		t.Fatal(err)
	}
	if backlog >= 60 {
		t.Fatalf("streaming left the whole backlog for release: %d", backlog)
	}
	if cons.Entries != 60 {
		t.Fatalf("consumer saw %d entries, want 60", cons.Entries)
	}
	if err := Verify(SegmentOf(prod), cons.Consumer, shared); err != nil {
		t.Fatal(err)
	}
	// Release-time producer cost is pure synchronization: far below a
	// batch release, which walks every record at RecordCycles each.
	if relCycles >= 60*RecordCycles {
		t.Fatalf("streaming release cost %d not below batch cost", relCycles)
	}
}

func TestStreamingEmptyPulls(t *testing.T) {
	sys := newSys()
	prod, _ := NewLVMProducer(sys, sys.NewProcess(0, sys.NewAddressSpace()), shared, 64)
	cons, _ := NewStreamingConsumer(sys, sys.NewProcess(1, sys.NewAddressSpace()), prod, shared)
	if n := cons.Pull(); n != 0 {
		t.Fatalf("empty pull returned %d", n)
	}
	prod.Write(0, 1)
	if n := cons.Pull(); n != 1 {
		t.Fatalf("pull = %d", n)
	}
	if n := cons.Pull(); n != 0 {
		t.Fatalf("re-pull returned %d (records double-applied)", n)
	}
}

func TestConsumerStats(t *testing.T) {
	sys := newSys()
	p := sys.NewProcess(0, sys.NewAddressSpace())
	prod, _ := NewLVMProducer(sys, p, shared, 64)
	cons, _ := NewConsumer(sys, sys.NewProcess(1, sys.NewAddressSpace()), shared)
	prod.Write(0, 1)
	prod.Write(4, 2)
	msg, _ := prod.Release()
	cons.Apply(msg)
	if cons.ApplyCycles == 0 || cons.BytesRecv != uint64(msg.Bytes) {
		t.Fatalf("consumer stats: %d cycles, %d bytes", cons.ApplyCycles, cons.BytesRecv)
	}
}
