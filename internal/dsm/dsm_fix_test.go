package dsm

import (
	"testing"

	"lvm/internal/core"
)

// TestReleaseChargesOnlyOwnRecords pins the Release cost model when a
// second logged segment shares the producer's log: foreign records must
// cost SkipCycles, not RecordCycles — previously every record in the log
// was charged RecordCycles before the ownership filter, inflating the
// producer's release cost by records it never shipped.
func TestReleaseChargesOnlyOwnRecords(t *testing.T) {
	const own, foreign = 25, 75

	// Baseline: a producer alone in its log.
	sysA := newSys()
	pa := sysA.NewProcess(0, sysA.NewAddressSpace())
	alone, err := NewLVMProducer(sysA, pa, shared, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < own; i++ {
		alone.Write(i*8, i)
	}
	_, stAlone := alone.Release()

	// Same producer workload, but another logged segment shares the log
	// and writes 3x as many records into it.
	sysB := newSys()
	pb := sysB.NewProcess(0, sysB.NewAddressSpace())
	prod, err := NewLVMProducer(sysB, pb, shared, 64)
	if err != nil {
		t.Fatal(err)
	}
	other := core.NewNamedSegment(sysB, "other", shared, nil)
	reg := core.NewStdRegion(sysB, other)
	if err := reg.Log(prod.ls); err != nil {
		t.Fatal(err)
	}
	obase, err := reg.Bind(pb.AS, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < own; i++ {
		prod.Write(i*8, i)
	}
	for i := uint32(0); i < foreign; i++ {
		pb.Store32(obase+(i*8)%shared, 0xF000+i)
	}
	_, st := prod.Release()

	if st.Entries != own {
		t.Fatalf("entries = %d, want %d (foreign records leaked into the message)", st.Entries, own)
	}
	// The foreign records may cost at most SkipCycles each on top of the
	// baseline release (plus a little page-fault noise from the second
	// segment's first touches, which happens in Write, not Release).
	maxDelta := uint64(foreign * SkipCycles)
	if st.Cycles > stAlone.Cycles+maxDelta {
		t.Fatalf("release with foreign records cost %d cycles, baseline %d + %d skip budget",
			st.Cycles, stAlone.Cycles, maxDelta)
	}
	// And strictly below what the old accounting charged.
	if st.Cycles >= stAlone.Cycles+uint64(foreign*RecordCycles) {
		t.Fatalf("release cost %d still charges RecordCycles for foreign records", st.Cycles)
	}
}

// TestLaggingConsumerSubWordWiden interleaves sub-word and full-word
// writes to the same word across bounded Pulls: a consumer applying a
// backlog one record at a time must reconstruct each point-in-time word
// from the record value and its own prior contents. The old wordOf read
// the producer segment's *current* word, transiently installing the later
// full-word value while applying the earlier sub-word record.
func TestLaggingConsumerSubWordWiden(t *testing.T) {
	sys := newSys()
	p := sys.NewProcess(0, sys.NewAddressSpace())
	prod, err := NewLVMProducer(sys, p, shared, 64)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := NewStreamingConsumer(sys, sys.NewProcess(1, sys.NewAddressSpace()), prod, shared)
	if err != nil {
		t.Fatal(err)
	}

	p.Store32(prod.Base()+16, 0x11111111)
	if n := cons.Pull(); n != 1 {
		t.Fatalf("initial pull = %d", n)
	}

	// Backlog: a sub-word write followed by a full-word write to the
	// same word, both in the log before the consumer pulls again.
	p.Store8(prod.Base()+17, 0xAB)
	p.Store32(prod.Base()+16, 0x22222222)

	// The lagging consumer drains one record at a time.
	if n := cons.PullN(1); n != 1 {
		t.Fatalf("bounded pull = %d", n)
	}
	if got := cons.Word(16); got != 0x1111AB11 {
		t.Fatalf("after sub-word record, replica word = %#x, want 0x1111AB11 (future value leaked)", got)
	}
	if n := cons.PullN(1); n != 1 {
		t.Fatalf("second bounded pull = %d", n)
	}
	if got := cons.Word(16); got != 0x22222222 {
		t.Fatalf("after full-word record, replica word = %#x", got)
	}
	if err := Verify(prod.Segment(), cons.Consumer, shared); err != nil {
		t.Fatal(err)
	}
}

// TestSubWordBatchReleaseConverges covers the batch path with the same
// interleaving: entries are applied in log order, so the final replica
// state must match the producer even when sub-word and full-word writes
// alternate on one word.
func TestSubWordBatchReleaseConverges(t *testing.T) {
	sys := newSys()
	p := sys.NewProcess(0, sys.NewAddressSpace())
	prod, err := NewLVMProducer(sys, p, shared, 64)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := NewConsumer(sys, sys.NewProcess(1, sys.NewAddressSpace()), shared)
	if err != nil {
		t.Fatal(err)
	}
	p.Store8(prod.Base()+33, 0x5A) // sub-word before any full-word write
	p.Store32(prod.Base()+32, 0xCAFEBABE)
	p.Store16(prod.Base()+34, 0xBEEF)
	msg, _ := prod.Release()
	cons.Apply(msg)
	if err := Verify(prod.Segment(), cons, shared); err != nil {
		t.Fatal(err)
	}
	if got := cons.Word(32); got != 0xBEEFBABE {
		t.Fatalf("word = %#x, want 0xBEEFBABE", got)
	}
}

// TestApplyRecordMergesSubWord exercises the logship apply path on the
// plain Consumer: record value bytes land at their offset, preserving the
// replica's neighboring bytes.
func TestApplyRecordMergesSubWord(t *testing.T) {
	sys := newSys()
	cons, err := NewConsumer(sys, sys.NewProcess(0, sys.NewAddressSpace()), shared)
	if err != nil {
		t.Fatal(err)
	}
	cons.ApplyRecord(40, 0xDDCCBBAA, 4)
	cons.ApplyRecord(41, 0x17, 1)
	cons.ApplyRecord(42, 0x2596, 2)
	if got := cons.Word(40); got != 0x259617AA {
		t.Fatalf("word = %#x, want 0x259617AA", got)
	}
	if cons.ApplyCycles == 0 {
		t.Fatal("ApplyRecord charged no cycles")
	}
}
