package dsm

// Differential and regression tests for the logcursor port of the DSM
// consumer: the pre-cursor PullN, frozen verbatim, must produce a
// byte-identical replica on genuine logs, and the one intentional
// divergence — a pulled record that fails validation now quarantines
// the stream instead of applying garbage — is pinned here.

import (
	"bytes"
	"testing"

	"lvm/internal/core"
	"lvm/internal/logrec"
)

// legacyPullN is StreamingConsumer.PullN as it stood before the
// logcursor unification: no validation, sub-word widening against the
// replica's own word.
func legacyPullN(s *StreamingConsumer, max int) int {
	s.reader.Sync()
	n := 0
	for scanned := 0; max < 0 || scanned < max; scanned++ {
		rec, ok := s.reader.Next()
		if !ok {
			break
		}
		if rec.Seg != s.prod.seg {
			continue
		}
		s.p.Compute(ApplyWordCycles)
		w := rec.SegOff &^ 3
		s.seg.Write32(w, mergeWord(s.seg.Read32(w), rec.SegOff, rec.Value, rec.WriteSize))
		n++
	}
	s.Pulls++
	s.Entries += uint64(n)
	s.BytesRecv += uint64(n * EntryBytes)
	return n
}

func streamingPair(t *testing.T) (*core.System, *LVMProducer, *StreamingConsumer, *StreamingConsumer) {
	t.Helper()
	sys := newSys()
	p := sys.NewProcess(0, sys.NewAddressSpace())
	prod, err := NewLVMProducer(sys, p, shared, 64)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := NewStreamingConsumer(sys, sys.NewProcess(1, sys.NewAddressSpace()), prod, shared)
	if err != nil {
		t.Fatal(err)
	}
	leg, err := NewStreamingConsumer(sys, sys.NewProcess(1, sys.NewAddressSpace()), prod, shared)
	if err != nil {
		t.Fatal(err)
	}
	return sys, prod, cur, leg
}

// TestPullMatchesLegacy replays the same producer log through the
// cursor-based PullN and the frozen legacy loop, in the same bounded
// increments, and requires byte-identical replicas and counts at every
// step.
func TestPullMatchesLegacy(t *testing.T) {
	_, prod, cur, leg := streamingPair(t)

	step := func(max int) {
		t.Helper()
		nc := cur.PullN(max)
		nl := legacyPullN(leg, max)
		if nc != nl {
			t.Fatalf("PullN(%d) = %d, legacy = %d", max, nc, nl)
		}
		a := make([]byte, shared)
		b := make([]byte, shared)
		cur.ReadInto(0, a)
		leg.ReadInto(0, b)
		if !bytes.Equal(a, b) {
			t.Fatalf("replicas diverged after PullN(%d)", max)
		}
	}

	for i := uint32(0); i < 40; i++ {
		prod.Write((i*52)%shared&^3, 1000+i)
	}
	step(10)
	prod.Write(0x100, 0xAABBCCDD)
	prod.Write(0x100, 0xDDCCBBAA) // same-word churn
	step(7)
	step(-1)
	// Sub-word writes widen identically.
	prod.Write(0x200, 0x11223344)
	step(-1)
	step(-1) // empty pull
}

// TestPullQuarantinesInvalidRecord pins the intentional divergence: a
// corrupt record in the pulled stream (impossible WriteSize) stops the
// consumer at the damage instead of applying garbage, and further pulls
// are no-ops.
func TestPullQuarantinesInvalidRecord(t *testing.T) {
	sys, prod, cur, leg := streamingPair(t)

	prod.Write(0x100, 1)
	prod.Write(0x104, 2)
	prod.Write(0x108, 3)
	sys.Sync() // land the in-flight records before corrupting them
	// Corrupt record 1's WriteSize in the log image; the hardware never
	// emits size 7.
	prod.LogSegment().RawWrite(1*logrec.Size+8, []byte{7, 0})

	n := cur.PullN(-1)
	if n != 1 {
		t.Fatalf("applied %d records, want 1 (before the damage)", n)
	}
	if !cur.Quarantined || cur.InvalidRecords != 1 {
		t.Fatalf("quarantine not reported: %+v", cur)
	}
	if cur.Word(0x100) != 1 || cur.Word(0x104) != 0 || cur.Word(0x108) != 0 {
		t.Fatalf("replica holds post-damage state: %d %d %d",
			cur.Word(0x100), cur.Word(0x104), cur.Word(0x108))
	}
	if cur.PullN(-1) != 0 {
		t.Fatalf("quarantined consumer kept pulling")
	}
	// The legacy loop applied the garbage — that is the bug this pins.
	legacyPullN(leg, -1)
	if leg.Word(0x108) == 0 {
		t.Fatalf("legacy baseline changed; regression test no longer meaningful")
	}
}
