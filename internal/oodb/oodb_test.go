package oodb

import (
	"testing"

	"lvm/internal/core"
	"lvm/internal/ramdisk"
)

func openStores(t *testing.T) (rvmS, rlvmS *Store, rvmP, rlvmP *core.Process, rvmD, rlvmD *ramdisk.Disk) {
	t.Helper()
	cfg := DefaultConfig()
	sysA := core.NewSystemNoLogger(core.Config{NumCPUs: 1, MemFrames: 16 << 8})
	rvmP = sysA.NewProcess(0, sysA.NewAddressSpace())
	rvmD = ramdisk.New()
	a, err := OpenRVM(sysA, rvmP, cfg, rvmD)
	if err != nil {
		t.Fatal(err)
	}
	sysB := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 16 << 8})
	rlvmP = sysB.NewProcess(0, sysB.NewAddressSpace())
	rlvmD = ramdisk.New()
	b, err := OpenRLVM(sysB, rlvmP, cfg, rlvmD)
	if err != nil {
		t.Fatal(err)
	}
	return a, b, rvmP, rlvmP, rvmD, rlvmD
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestCreateLookupUpdate(t *testing.T) {
	for _, s := range twoStores(t) {
		must(t, s.Begin())
		id, err := s.Create(7777, []uint32{10, 20, 30})
		must(t, err)
		must(t, s.Commit())
		got, ok := s.Lookup(7777)
		if !ok || got != id {
			t.Fatalf("lookup = %d, %v", got, ok)
		}
		if s.Field(id, 1) != 20 {
			t.Fatalf("field = %d", s.Field(id, 1))
		}
		must(t, s.Begin())
		must(t, s.Update(id, 1, 99))
		must(t, s.Commit())
		if s.Field(id, 1) != 99 {
			t.Fatalf("updated field = %d", s.Field(id, 1))
		}
	}
}

func twoStores(t *testing.T) []*Store {
	a, b, _, _, _, _ := openStores(t)
	return []*Store{a, b}
}

func TestAbortUndoesCreateAndIndex(t *testing.T) {
	for _, s := range twoStores(t) {
		must(t, s.Begin())
		_, err := s.Create(1234, []uint32{1})
		must(t, err)
		must(t, s.Abort())
		if _, ok := s.Lookup(1234); ok {
			t.Fatalf("aborted create visible in index")
		}
		if s.Allocated(0) {
			t.Fatalf("slot still allocated after abort")
		}
		// The slot is reusable.
		must(t, s.Begin())
		id, err := s.Create(5678, []uint32{2})
		must(t, err)
		must(t, s.Commit())
		if id != 0 {
			t.Fatalf("slot not reused: %d", id)
		}
	}
}

func TestDeleteUnlinksChain(t *testing.T) {
	for _, s := range twoStores(t) {
		// Force collisions: keys hashing to the same bucket.
		must(t, s.Begin())
		var ids []uint32
		var keys []uint32
		base := uint32(4000)
		b0 := s.hash(base)
		keys = append(keys, base)
		for k := base + 1; len(keys) < 3; k++ {
			if s.hash(k) == b0 {
				keys = append(keys, k)
			}
		}
		for _, k := range keys {
			id, err := s.Create(k, []uint32{k})
			must(t, err)
			ids = append(ids, id)
		}
		must(t, s.Commit())
		// Delete the middle of the chain.
		must(t, s.Begin())
		must(t, s.Delete(ids[1]))
		must(t, s.Commit())
		if _, ok := s.Lookup(keys[1]); ok {
			t.Fatalf("deleted key still found")
		}
		for _, i := range []int{0, 2} {
			if got, ok := s.Lookup(keys[i]); !ok || got != ids[i] {
				t.Fatalf("chain broken for %d", keys[i])
			}
		}
	}
}

func TestCrashRecovery(t *testing.T) {
	cfg := DefaultConfig()
	sys := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 16 << 8})
	p := sys.NewProcess(0, sys.NewAddressSpace())
	d := ramdisk.New()
	s, err := OpenRLVM(sys, p, cfg, d)
	must(t, err)
	must(t, s.Begin())
	_, err = s.Create(42, []uint32{7})
	must(t, err)
	must(t, s.Commit())
	must(t, s.Begin())
	_, err = s.Create(43, []uint32{8})
	must(t, err)
	// Crash without commit; reopen on a fresh machine.
	sys2 := core.NewSystem(core.Config{NumCPUs: 1, MemFrames: 16 << 8})
	p2 := sys2.NewProcess(0, sys2.NewAddressSpace())
	s2, err := OpenRLVM(sys2, p2, cfg, d)
	must(t, err)
	if _, ok := s2.Lookup(42); !ok {
		t.Fatalf("committed object lost")
	}
	if _, ok := s2.Lookup(43); ok {
		t.Fatalf("uncommitted object recovered")
	}
}

func TestEnginesComputeSameState(t *testing.T) {
	a, b, _, _, _, _ := openStores(t)
	w := Workload{Objects: 64, TouchesPerTxn: 4, UpdatesPerObject: 3, ThinkCycles: 100}
	must(t, w.SeedStore(a))
	must(t, w.SeedStore(b))
	if _, err := w.Run(a, storeProc(a), 30); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(b, storeProc(b), 30); err != nil {
		t.Fatal(err)
	}
	for k := uint32(0); k < 64; k++ {
		ia, oka := a.Lookup(1000 + k)
		ib, okb := b.Lookup(1000 + k)
		if !oka || !okb {
			t.Fatalf("key %d missing", k)
		}
		for f := uint32(0); f < 3; f++ {
			if a.Field(ia, f) != b.Field(ib, f) {
				t.Fatalf("key %d field %d: rvm=%d rlvm=%d", k, f, a.Field(ia, f), b.Field(ib, f))
			}
		}
	}
}

func storeProc(s *Store) *core.Process { return s.p }

func TestStoreFull(t *testing.T) {
	cfg := Config{MaxObjects: 4, FieldsPerObject: 2, Buckets: 4}
	sys := core.NewSystemNoLogger(core.Config{NumCPUs: 1, MemFrames: 2048})
	p := sys.NewProcess(0, sys.NewAddressSpace())
	s, err := OpenRVM(sys, p, cfg, ramdisk.New())
	must(t, err)
	must(t, s.Begin())
	for i := uint32(0); i < 4; i++ {
		_, err := s.Create(i, []uint32{i})
		must(t, err)
	}
	if _, err := s.Create(99, []uint32{9}); err == nil {
		t.Fatalf("create on full store succeeded")
	}
	must(t, s.Commit())
}

func TestTransactionDiscipline(t *testing.T) {
	a, _, _, _, _, _ := openStores(t)
	if _, err := a.Create(1, nil); err == nil {
		t.Fatalf("create outside txn accepted")
	}
	if err := a.Update(0, 0, 1); err == nil {
		t.Fatalf("update outside txn accepted")
	}
	if err := a.Commit(); err == nil {
		t.Fatalf("commit outside txn accepted")
	}
	must(t, a.Begin())
	if err := a.Begin(); err == nil {
		t.Fatalf("nested begin accepted")
	}
	if err := a.Update(0, 99, 1); err == nil {
		t.Fatalf("out-of-range field accepted")
	}
}
