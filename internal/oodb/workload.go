package oodb

import (
	"fmt"

	"lvm/internal/core"
)

// Workload is a parameterized OODB transaction mix: each transaction
// looks up TouchesPerTxn objects by key and updates UpdatesPerObject
// fields of each, with ThinkCycles of computation per touch — the "longer
// transactions... and far more processing" regime of Section 4.2.
type Workload struct {
	Objects          uint32
	TouchesPerTxn    int
	UpdatesPerObject int
	ThinkCycles      uint64
	Seed             uint64
}

// Seed populates the store with the workload's objects (one transaction).
func (w Workload) SeedStore(s *Store) error {
	if err := s.Begin(); err != nil {
		return err
	}
	for k := uint32(0); k < w.Objects; k++ {
		if _, err := s.Create(1000+k, []uint32{k, k * 2, k * 3}); err != nil {
			return err
		}
	}
	return s.Commit()
}

// Run executes txns transactions against a seeded store, returning the
// process cycles consumed.
func (w Workload) Run(s *Store, p *core.Process, txns int) (uint64, error) {
	rng := w.Seed
	if rng == 0 {
		rng = 0x9E3779B97F4A7C15
	}
	next := func() uint64 {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		return rng * 0x2545F4914F6CDD1D
	}
	start := p.Now()
	for t := 0; t < txns; t++ {
		if err := s.Begin(); err != nil {
			return 0, err
		}
		for i := 0; i < w.TouchesPerTxn; i++ {
			key := 1000 + uint32(next()%uint64(w.Objects))
			id, ok := s.Lookup(key)
			if !ok {
				return 0, fmt.Errorf("oodb: key %d missing", key)
			}
			p.Compute(w.ThinkCycles)
			for f := 0; f < w.UpdatesPerObject; f++ {
				old := s.Field(id, uint32(f))
				if err := s.Update(id, uint32(f), old+uint32(t)+1); err != nil {
					return 0, err
				}
			}
		}
		if err := s.Commit(); err != nil {
			return 0, err
		}
	}
	return p.Now() - start, nil
}
