// Package oodb implements a small memory-mapped object-oriented database
// over recoverable virtual memory — the application the paper's
// introduction leads with: "Object-oriented database management systems
// can also use logged virtual memory to log updates to the objects mapped
// into a virtual memory region... persistent objects supporting atomic
// transactions can be read and written in virtual memory with the same
// efficiency as standard C++ objects."
//
// The store keeps fixed-size objects and a hash index in one recoverable
// region; every structural update (slot bitmaps, index buckets, object
// fields) is a recoverable write, so transactions touch many words — the
// regime where Section 4.2 predicts LVM's advantage grows: "Longer
// transactions would also show greater benefit from LVM, assuming
// correspondingly more write operations as well. ... Transactions in
// object-oriented database systems tend to be longer and involve far more
// processing."
//
// The store runs unchanged over the RVM baseline (per-write set_range)
// and over RLVM (plain stores); the transaction-length experiment in
// package experiments sweeps both.
package oodb

import (
	"fmt"

	"lvm/internal/core"
	"lvm/internal/ramdisk"
	"lvm/internal/rlvm"
	"lvm/internal/rvm"
)

// Engine abstracts the two recoverable-memory managers.
type Engine interface {
	Begin() error
	Commit() error
	Abort() error
	RecoverableWrite32(va core.Addr, v uint32) error
	Base() core.Addr
}

// rvmEngine / rlvmEngine adapt the managers.
type rvmEngine struct{ *rvm.Manager }

func (e rvmEngine) RecoverableWrite32(va core.Addr, v uint32) error {
	return e.Manager.RecoverableWrite32(va, v)
}

type rlvmEngine struct{ *rlvm.Manager }

func (e rlvmEngine) RecoverableWrite32(va core.Addr, v uint32) error {
	return e.Manager.RecoverableWrite32(va, v)
}

// Config sizes the store.
type Config struct {
	// MaxObjects is the slot count.
	MaxObjects uint32
	// FieldsPerObject is the object size in 32-bit fields (field 0 is
	// the key).
	FieldsPerObject uint32
	// Buckets is the hash-index bucket count (each bucket holds one
	// chain head; chains link through a per-object next word).
	Buckets uint32
}

// DefaultConfig is a small store.
func DefaultConfig() Config {
	return Config{MaxObjects: 512, FieldsPerObject: 8, Buckets: 128}
}

// Layout (all offsets relative to the engine base):
//
//	header:    [0]=magic [4]=objCount
//	bitmap:    MaxObjects words (1 = allocated)  — one word per slot keeps
//	           writes word-granular, as recoverable writes must be
//	dirIndex:  Buckets words: head object id + 1 (0 = empty)
//	objects:   MaxObjects × (2+FieldsPerObject) words:
//	           [0]=key [1]=next-in-bucket+1 [2..]=fields
const (
	hdrWords  = 2
	oodbMagic = 0x4F4F4442 // "OODB"
)

// Store is an open object store bound to one process.
type Store struct {
	cfg Config
	eng Engine
	p   *core.Process

	inTxn bool

	// Stats.
	Creates, Updates, Deletes, Lookups uint64
}

// RegionBytes reports the recoverable-region size a config needs.
func RegionBytes(cfg Config) uint32 {
	words := uint32(hdrWords) + cfg.MaxObjects + cfg.Buckets +
		cfg.MaxObjects*(2+cfg.FieldsPerObject)
	return (words*4 + core.PageSize - 1) &^ uint32(core.PageSize-1)
}

// OpenRVM opens (or recovers) a store over the RVM baseline.
func OpenRVM(sys *core.System, p *core.Process, cfg Config, disk *ramdisk.Disk) (*Store, error) {
	m, err := rvm.New(sys, p, RegionBytes(cfg), disk, rvm.Options{})
	if err != nil {
		return nil, err
	}
	return open(cfg, rvmEngine{m}, p)
}

// OpenRLVM opens (or recovers) a store over RLVM.
func OpenRLVM(sys *core.System, p *core.Process, cfg Config, disk *ramdisk.Disk) (*Store, error) {
	m, err := rlvm.New(sys, p, RegionBytes(cfg), disk, rlvm.Options{LogPages: 256})
	if err != nil {
		return nil, err
	}
	return open(cfg, rlvmEngine{m}, p)
}

func open(cfg Config, eng Engine, p *core.Process) (*Store, error) {
	s := &Store{cfg: cfg, eng: eng, p: p}
	if p.Load32(eng.Base()) != oodbMagic {
		// Fresh store: format it in one transaction.
		if err := eng.Begin(); err != nil {
			return nil, err
		}
		if err := eng.RecoverableWrite32(eng.Base(), oodbMagic); err != nil {
			return nil, err
		}
		if err := eng.Commit(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Offsets.
func (s *Store) bitmapVA(id uint32) core.Addr {
	return s.eng.Base() + (hdrWords+id)*4
}

func (s *Store) bucketVA(b uint32) core.Addr {
	return s.eng.Base() + (hdrWords+s.cfg.MaxObjects+b)*4
}

func (s *Store) objVA(id uint32) core.Addr {
	return s.eng.Base() + (hdrWords+s.cfg.MaxObjects+s.cfg.Buckets+id*(2+s.cfg.FieldsPerObject))*4
}

func (s *Store) hash(key uint32) uint32 {
	h := key * 2654435761
	return (h >> 7) % s.cfg.Buckets
}

// Begin starts a transaction.
func (s *Store) Begin() error {
	if s.inTxn {
		return fmt.Errorf("oodb: nested transaction")
	}
	if err := s.eng.Begin(); err != nil {
		return err
	}
	s.inTxn = true
	return nil
}

// Commit commits the transaction.
func (s *Store) Commit() error {
	if !s.inTxn {
		return fmt.Errorf("oodb: commit outside transaction")
	}
	s.inTxn = false
	return s.eng.Commit()
}

// Abort rolls the transaction back.
func (s *Store) Abort() error {
	if !s.inTxn {
		return fmt.Errorf("oodb: abort outside transaction")
	}
	s.inTxn = false
	return s.eng.Abort()
}

// Create allocates an object with the given key and field values,
// inserting it into the index. It returns the object id.
func (s *Store) Create(key uint32, fields []uint32) (uint32, error) {
	if !s.inTxn {
		return 0, fmt.Errorf("oodb: Create outside transaction")
	}
	if uint32(len(fields)) > s.cfg.FieldsPerObject {
		return 0, fmt.Errorf("oodb: %d fields > configured %d", len(fields), s.cfg.FieldsPerObject)
	}
	// Find a free slot (the scan reads are ordinary loads).
	id := uint32(0)
	found := false
	for ; id < s.cfg.MaxObjects; id++ {
		s.p.Compute(4)
		if s.p.Load32(s.bitmapVA(id)) == 0 {
			found = true
			break
		}
	}
	if !found {
		return 0, fmt.Errorf("oodb: store full")
	}
	if err := s.eng.RecoverableWrite32(s.bitmapVA(id), 1); err != nil {
		return 0, err
	}
	// Object header: key and bucket chain insert at head.
	b := s.hash(key)
	oldHead := s.p.Load32(s.bucketVA(b))
	if err := s.eng.RecoverableWrite32(s.objVA(id), key); err != nil {
		return 0, err
	}
	if err := s.eng.RecoverableWrite32(s.objVA(id)+4, oldHead); err != nil {
		return 0, err
	}
	if err := s.eng.RecoverableWrite32(s.bucketVA(b), id+1); err != nil {
		return 0, err
	}
	for i, v := range fields {
		if err := s.eng.RecoverableWrite32(s.objVA(id)+8+uint32(i)*4, v); err != nil {
			return 0, err
		}
	}
	s.Creates++
	return id, nil
}

// Lookup finds an object id by key through the hash index.
func (s *Store) Lookup(key uint32) (uint32, bool) {
	s.Lookups++
	b := s.hash(key)
	cur := s.p.Load32(s.bucketVA(b))
	for cur != 0 {
		s.p.Compute(6) // chain traversal
		id := cur - 1
		if s.p.Load32(s.objVA(id)) == key {
			return id, true
		}
		cur = s.p.Load32(s.objVA(id) + 4)
	}
	return 0, false
}

// Field reads field f of object id.
func (s *Store) Field(id, f uint32) uint32 {
	return s.p.Load32(s.objVA(id) + 8 + f*4)
}

// Key reads the key of object id.
func (s *Store) Key(id uint32) uint32 { return s.p.Load32(s.objVA(id)) }

// Update writes field f of object id.
func (s *Store) Update(id, f uint32, v uint32) error {
	if !s.inTxn {
		return fmt.Errorf("oodb: Update outside transaction")
	}
	if f >= s.cfg.FieldsPerObject {
		return fmt.Errorf("oodb: field %d out of range", f)
	}
	s.Updates++
	return s.eng.RecoverableWrite32(s.objVA(id)+8+f*4, v)
}

// Delete removes an object and unlinks it from its bucket chain.
func (s *Store) Delete(id uint32) error {
	if !s.inTxn {
		return fmt.Errorf("oodb: Delete outside transaction")
	}
	key := s.p.Load32(s.objVA(id))
	b := s.hash(key)
	// Unlink from the chain.
	cur := s.p.Load32(s.bucketVA(b))
	if cur == id+1 {
		next := s.p.Load32(s.objVA(id) + 4)
		if err := s.eng.RecoverableWrite32(s.bucketVA(b), next); err != nil {
			return err
		}
	} else {
		for cur != 0 {
			s.p.Compute(6)
			prev := cur - 1
			next := s.p.Load32(s.objVA(prev) + 4)
			if next == id+1 {
				if err := s.eng.RecoverableWrite32(s.objVA(prev)+4, s.p.Load32(s.objVA(id)+4)); err != nil {
					return err
				}
				break
			}
			cur = next
		}
	}
	if err := s.eng.RecoverableWrite32(s.bitmapVA(id), 0); err != nil {
		return err
	}
	s.Deletes++
	return nil
}

// Allocated reports whether slot id holds a live object.
func (s *Store) Allocated(id uint32) bool {
	return s.p.Load32(s.bitmapVA(id)) != 0
}
