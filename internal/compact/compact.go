// Package compact owns the log-prefix lifecycle of a logged segment: it
// snapshots the segment image to a ramdisk behind a durable marker-word
// commit, computes the safe truncation point (the minimum of the
// checkpoint watermark and every replication consumer's acknowledged
// sequence), truncates the hardware log with RewindLog, and teaches
// recovery to replay only the post-checkpoint tail — Section 2.4's "the
// log segment can be truncated once the records have been applied" and
// Section 4.2's RLVM truncation, promoted from per-client ad-hoc calls
// to one manager.
//
// Checkpoint durability reuses the recovery marker protocol
// (recovery.MarkerCommit): each checkpoint writes an open header (seal
// word zero, invalidating the slot), then the image, then the seal word
// seq|MarkerCommit — each step behind a sync. Two slots alternate, so a
// crash anywhere leaves either the previous committed checkpoint or the
// new one, never neither. Because the slide of the surviving tail and
// the hardware rewind happen only after the seal is durable, a crash in
// the commit-to-cut window merely replays records the image already
// covers — replaying an in-order suffix of absolute writes is
// idempotent.
//
// Logical positions: the manager tracks cutBase, the logical log byte
// offset of physical byte 0. Checkpoint headers store logical
// watermarks, and the shipping layer's sequence numbers stay logical
// (and monotonic) across compactions, so live replication consumers
// stream straight through a truncation without an epoch-bump resync.
package compact

import (
	"errors"
	"fmt"

	"lvm/internal/core"
	"lvm/internal/cycles"
	"lvm/internal/logrec"
	"lvm/internal/machine"
	"lvm/internal/metrics"
	"lvm/internal/ramdisk"
	"lvm/internal/recovery"
)

// Magic is the checkpoint header preamble, "LVCP" little-endian.
const Magic = uint32(0x5043564C)

// Header layout (one disk block per slot; little-endian):
//
//	0  u32 magic
//	4  u32 seq        checkpoint generation, monotonically increasing
//	8  u32 imgLen     image length in bytes (== Data.Size())
//	12 u32 epoch      fencing epoch served when the image committed (0 = legacy header)
//	16 u64 watermark  logical log offset the image covers
//	24 u64 cutBase    logical offset of physical log byte 0 at commit
//	32 u32 seal       seq|recovery.MarkerCommit once committed, 0 while open
const (
	hdrSeq       = 4
	hdrImgLen    = 8
	hdrEpoch     = 12
	hdrWatermark = 16
	hdrCutBase   = 24
	hdrSeal      = 32
	hdrSize      = 36
)

// Shipper is the producer-side replication surface a compaction must
// respect and notify. *logship.Shipper implements it; the indirection
// keeps this package free of a transport dependency.
type Shipper interface {
	// MinAcked reports the lowest record sequence acknowledged across
	// live consumers, ^uint64(0) when none are attached.
	MinAcked() uint64
	// Compacted tells the shipping layer that cutRecords records were
	// sliced off the front of the physical log, so it can rebase its
	// reader without bumping the epoch.
	Compacted(cutRecords uint64) error
}

// Options configures a Manager.
type Options struct {
	// Data is the logged data segment checkpoints snapshot. nil makes a
	// truncate-only manager (TruncateAll works, Checkpoint/Compact error).
	Data *core.Segment
	// Log is the hardware log segment whose prefix is managed. Required.
	Log *core.Segment
	// Disk holds the checkpoint slots and images, starting at DiskBase.
	// nil makes a truncate-only manager.
	Disk ramdisk.Device
	// DiskBase is the byte offset of the checkpoint area on Disk. The
	// area occupies 2 header blocks plus 2 block-aligned images.
	DiskBase uint64
	// Ship, when non-nil, bounds the safe truncation point by consumer
	// acknowledgements and is told about every cut.
	Ship Shipper
	// CutBase seeds the logical offset of physical log byte 0 (default
	// 0). A manager re-seeded from a promoted replica image continues
	// the dead primary's timeline at the promotion watermark instead of
	// restarting at zero, so checkpoint watermarks and shipped sequence
	// numbers stay monotonic across the failover.
	CutBase uint64
	// Epoch seeds the fencing epoch stamped into every checkpoint header
	// (a promotion grant). The committed epoch on disk wins if higher, so
	// a restart can never re-serve an epoch an earlier incarnation already
	// fenced past.
	Epoch uint32
}

// Stats counts manager activity (mirrored into the compact.* metrics).
type Stats struct {
	Checkpoints      uint64
	SnapshotBytes    uint64
	Truncations      uint64
	BytesTruncated   uint64
	TruncateFailures uint64
}

// Manager runs checkpoints and compactions for one logged segment.
type Manager struct {
	sys *core.System
	o   Options

	seq     uint32 // committed checkpoint generation
	epoch   uint32 // fencing epoch stamped into checkpoint headers
	cutBase uint64 // logical offset of physical log byte 0

	img     []byte // reusable image buffer
	scratch []byte // reusable slide buffer

	// FailHook, when non-nil, runs immediately before the hardware-log
	// rewind — after every durable step of the cycle has committed. It is
	// the fault injector's surface for the window the swallowed-error
	// bugs hid (e.g. "WAL reset done, LVM truncation fails or the machine
	// dies"): returning an error aborts the truncation, which is counted
	// and surfaced, never swallowed.
	FailHook func() error

	Stats Stats
}

// New creates a manager. With a Disk it resumes the committed checkpoint
// generation so new checkpoints never lose the highest-seq slot election
// to a stale slot. It performs no recovery and trusts that the current
// log contents match the manager's (zero) cutBase: a caller restarting
// after a crash must first reconstruct state with Recover and then
// either truncate the log (TruncateAll) or re-checkpoint before relying
// on compaction again.
func New(sys *core.System, o Options) (*Manager, error) {
	if o.Log == nil {
		return nil, errors.New("compact: Options.Log is required")
	}
	if !o.Log.IsLog() {
		return nil, errors.New("compact: Options.Log is not a log segment")
	}
	m := &Manager{sys: sys, o: o, cutBase: o.CutBase, epoch: o.Epoch}
	if o.Disk != nil {
		if o.Data == nil {
			return nil, errors.New("compact: checkpointing needs Options.Data")
		}
		st, ok, err := loadState(o.Disk, o.DiskBase)
		if err != nil {
			return nil, err
		}
		if ok {
			m.seq = st.seq
			if st.epoch > m.epoch {
				m.epoch = st.epoch
			}
		}
	}
	return m, nil
}

// Seq reports the committed checkpoint generation (0 = none).
func (m *Manager) Seq() uint32 { return m.seq }

// Epoch reports the fencing epoch the next checkpoint will stamp: the
// maximum of the Options seed and the last committed header's epoch.
func (m *Manager) Epoch() uint32 { return m.epoch }

// SetEpoch raises the fencing epoch stamped into checkpoint headers.
// Epochs only move forward: a lower value is ignored, so a caller can
// never re-serve an epoch a previous incarnation already persisted.
func (m *Manager) SetEpoch(e uint32) {
	if e > m.epoch {
		m.epoch = e
	}
}

// CutBase reports the logical log offset of physical byte 0.
func (m *Manager) CutBase() uint64 { return m.cutBase }

// Checkpoint snapshots the data segment behind a marker-word commit
// without truncating anything. cpu (may be nil) is charged the device
// costs. Call at a transaction boundary: the image must hold only
// committed state, since replay resumes after it.
func (m *Manager) Checkpoint(cpu *machine.CPU) error {
	if m.o.Disk == nil {
		return errors.New("compact: no checkpoint device configured")
	}
	m.sys.K.Sync()
	end := m.sys.K.LogAppendOffset(m.o.Log)
	return m.writeCheckpoint(cpu, m.cutBase+uint64(end), m.cutBase)
}

// Compact runs one full cycle: checkpoint the image, pick the safe cut
// point, slide the surviving tail to the front of the log, rewind the
// hardware append position, and rebase the shipping layer. The safe cut
// is min(checkpoint watermark, lowest consumer ack); everything below it
// is covered by the image (and by every replica), so no information is
// lost. Call at a transaction boundary, producer thread only.
func (m *Manager) Compact(cpu *machine.CPU) error {
	if m.o.Disk == nil {
		return errors.New("compact: no checkpoint device configured")
	}
	m.sys.K.Sync()
	end := m.sys.K.LogAppendOffset(m.o.Log)
	watermark := m.cutBase + uint64(end)
	safe := watermark
	if m.o.Ship != nil {
		if acked := m.o.Ship.MinAcked(); acked < watermark/logrec.Size {
			safe = acked * logrec.Size
		}
	}
	if safe < m.cutBase {
		safe = m.cutBase
	}
	// Physical offsets are record-aligned throughout; keep the cut so.
	safe -= (safe - m.cutBase) % logrec.Size
	if err := m.writeCheckpoint(cpu, watermark, safe); err != nil {
		return err
	}
	return m.truncateTo(cpu, uint32(safe-m.cutBase), end, safe)
}

// TruncateAll discards the whole current log after a logger sync — the
// shared replacement for the bare Kernel.TruncateLog calls in RLVM and
// timewarp, whose durability lives elsewhere (a write-ahead log, a
// checkpoint segment). Unlike those calls it propagates failure: the log
// keeps its contents, the failure is counted in Stats.TruncateFailures
// and the compact.truncate_failures metric, and the caller decides.
// It charges no cycles, so calibrated simulations are undisturbed.
func (m *Manager) TruncateAll() error {
	m.sys.K.Sync()
	end := m.sys.K.LogAppendOffset(m.o.Log)
	return m.truncateTo(nil, end, end, m.cutBase+uint64(end))
}

// truncateTo cuts the first cut bytes of the physical log (whose current
// append offset is end), leaving the tail at the front, and moves
// cutBase to newBase. FailHook fires first — after all durable state has
// committed — so injected failures land exactly in the window the old
// swallowed-error code hid.
func (m *Manager) truncateTo(cpu *machine.CPU, cut, end uint32, newBase uint64) error {
	if m.FailHook != nil {
		if err := m.FailHook(); err != nil {
			return m.failTrunc(err)
		}
	}
	if cut == 0 {
		return nil
	}
	tail := end - cut
	if tail > 0 {
		m.slide(cpu, cut, end)
	}
	if err := m.sys.K.RewindLog(m.o.Log, tail); err != nil {
		return m.failTrunc(fmt.Errorf("compact: log rewind: %w", err))
	}
	m.cutBase = newBase
	m.Stats.Truncations++
	m.Stats.BytesTruncated += uint64(cut)
	sh := m.sys.DeviceShard()
	sh.Inc(metrics.CompactTruncations)
	sh.Add(metrics.CompactBytesTruncated, uint64(cut))
	if m.o.Ship != nil {
		if err := m.o.Ship.Compacted(uint64(cut) / logrec.Size); err != nil {
			return fmt.Errorf("compact: shipper rebase: %w", err)
		}
	}
	return nil
}

func (m *Manager) failTrunc(err error) error {
	m.Stats.TruncateFailures++
	m.sys.DeviceShard().Inc(metrics.CompactTruncateFailures)
	return err
}

// slide moves log bytes [cut, end) to [0, end-cut). Raw segment accesses
// fire no crash triggers and charge nothing, so the move is atomic with
// respect to the fault model; the cost is charged as one lump (a bcopy
// of the tail) when a cpu is given.
func (m *Manager) slide(cpu *machine.CPU, cut, end uint32) {
	if m.scratch == nil {
		m.scratch = make([]byte, 4096)
	}
	for off := cut; off < end; {
		n := uint32(len(m.scratch))
		if off+n > end {
			n = end - off
		}
		m.o.Log.ReadInto(off, m.scratch[:n])
		m.o.Log.RawWrite(off-cut, m.scratch[:n])
		off += n
	}
	if cpu != nil {
		lines := uint64(end-cut+core.LineSize-1) / core.LineSize
		cpu.Compute(lines * cycles.BcopyLineCycles)
	}
}

// writeCheckpoint runs the marker protocol for one checkpoint: open
// header (seal cleared — the slot being overwritten is the older one),
// image, seal, each behind a sync. Six device operations, so crash
// injection can land before, inside, and after the commit point.
func (m *Manager) writeCheckpoint(cpu *machine.CPU, watermark, cutBase uint64) error {
	seq := m.seq + 1
	slot := uint64(seq & 1)
	hdrOff := m.o.DiskBase + slot*ramdisk.BlockSize

	var hdr [hdrSize]byte
	put32(hdr[0:], Magic)
	put32(hdr[hdrSeq:], seq)
	put32(hdr[hdrImgLen:], m.o.Data.Size())
	put32(hdr[hdrEpoch:], m.epoch)
	put64(hdr[hdrWatermark:], watermark)
	put64(hdr[hdrCutBase:], cutBase)
	put32(hdr[hdrSeal:], 0)
	if err := m.o.Disk.TryWriteAt(cpu, hdrOff, hdr[:]); err != nil {
		return fmt.Errorf("compact: checkpoint header write: %w", err)
	}
	if err := m.o.Disk.TrySync(cpu); err != nil {
		return fmt.Errorf("compact: checkpoint header sync: %w", err)
	}

	if m.img == nil {
		m.img = make([]byte, m.o.Data.Size())
	}
	m.o.Data.ReadInto(0, m.img)
	if err := m.o.Disk.TryWriteAt(cpu, imgOff(m.o.DiskBase, slot, m.o.Data.Size()), m.img); err != nil {
		return fmt.Errorf("compact: checkpoint image write: %w", err)
	}
	if err := m.o.Disk.TrySync(cpu); err != nil {
		return fmt.Errorf("compact: checkpoint image sync: %w", err)
	}

	var seal [4]byte
	put32(seal[:], seq|recovery.MarkerCommit)
	if err := m.o.Disk.TryWriteAt(cpu, hdrOff+hdrSeal, seal[:]); err != nil {
		return fmt.Errorf("compact: checkpoint seal write: %w", err)
	}
	if err := m.o.Disk.TrySync(cpu); err != nil {
		return fmt.Errorf("compact: checkpoint seal sync: %w", err)
	}

	m.seq = seq
	m.Stats.Checkpoints++
	m.Stats.SnapshotBytes += uint64(len(m.img))
	sh := m.sys.DeviceShard()
	sh.Inc(metrics.CompactCheckpoints)
	sh.Add(metrics.CompactSnapshotBytes, uint64(len(m.img)))
	return nil
}

// imgOff places slot images after the two header blocks, block-aligned.
func imgOff(base, slot uint64, imgLen uint32) uint64 {
	span := (uint64(imgLen) + ramdisk.BlockSize - 1) / ramdisk.BlockSize * ramdisk.BlockSize
	return base + 2*ramdisk.BlockSize + slot*span
}

// state is one decoded, validated checkpoint header.
type state struct {
	slot      uint64
	seq       uint32
	imgLen    uint32
	epoch     uint32
	watermark uint64
	cutBase   uint64
}

// loadState reads both slots and returns the committed checkpoint with
// the highest generation, ok=false when neither slot holds one (a fresh
// disk, or every checkpoint was interrupted before its seal).
func loadState(disk ramdisk.Device, base uint64) (state, bool, error) {
	var best state
	found := false
	for slot := uint64(0); slot < 2; slot++ {
		var hdr [hdrSize]byte
		if err := disk.TryReadAt(nil, base+slot*ramdisk.BlockSize, hdr[:]); err != nil {
			return state{}, false, fmt.Errorf("compact: checkpoint header read: %w", err)
		}
		st, ok := decodeHeader(slot, hdr[:])
		if ok && (!found || st.seq > best.seq) {
			best = st
			found = true
		}
	}
	return best, found, nil
}

// decodeHeader validates one header against the marker protocol: magic,
// a seal matching seq|MarkerCommit, and internally consistent offsets.
func decodeHeader(slot uint64, hdr []byte) (state, bool) {
	st := state{
		slot:      slot,
		seq:       get32(hdr[hdrSeq:]),
		imgLen:    get32(hdr[hdrImgLen:]),
		epoch:     get32(hdr[hdrEpoch:]),
		watermark: get64(hdr[hdrWatermark:]),
		cutBase:   get64(hdr[hdrCutBase:]),
	}
	if get32(hdr) != Magic || st.seq == 0 || st.imgLen == 0 {
		return state{}, false
	}
	if get32(hdr[hdrSeal:]) != st.seq|recovery.MarkerCommit {
		return state{}, false
	}
	if st.watermark < st.cutBase || st.watermark-st.cutBase > uint64(^uint32(0)) {
		return state{}, false
	}
	return st, true
}

// RecoverOptions configures one checkpoint-aware recovery.
type RecoverOptions struct {
	// Disk/DiskBase locate the checkpoint area (Disk nil = plain replay;
	// recovery typically passes a recovery.RetryDisk wrap).
	Disk     ramdisk.Device
	DiskBase uint64
	// Log, Data, Dst, MarkerLimit, End mirror recovery.ReplayOptions.
	Log         *core.Segment
	Data        *core.Segment
	Dst         *core.Segment
	MarkerLimit uint32
	End         uint32
}

// RecoverResult is a replay result plus where the replay started.
type RecoverResult struct {
	recovery.Result
	// FromCheckpoint reports whether a committed checkpoint image seeded
	// Dst; Seq is its generation and Start the replay offset (0 without
	// one — the O(log) fallback).
	FromCheckpoint bool
	Seq            uint32
	Start          uint32
	// Epoch is the fencing epoch the committed header carried (0 on a
	// legacy header or without a checkpoint) — the floor a restarted
	// primary must serve strictly above.
	Epoch uint32
}

// Recover reconstructs Dst after a crash: load the last committed
// checkpoint image (if any), then replay only the log tail past its
// watermark — O(tail) instead of O(log). Without a usable checkpoint it
// degrades to a full replay from offset 0. The replay itself never
// panics on damaged input (see recovery.Replay); only device errors
// reading the checkpoint area surface here.
func Recover(sys *core.System, o RecoverOptions) (RecoverResult, error) {
	var rr RecoverResult
	start := uint32(0)
	if o.Disk != nil {
		st, ok, err := loadState(o.Disk, o.DiskBase)
		if err != nil {
			return rr, err
		}
		if ok && st.imgLen == o.Dst.Size() {
			img := make([]byte, st.imgLen)
			if err := o.Disk.TryReadAt(nil, imgOff(o.DiskBase, st.slot, st.imgLen), img); err != nil {
				return rr, fmt.Errorf("compact: checkpoint image load: %w", err)
			}
			o.Dst.RawWrite(0, img)
			start = uint32(st.watermark - st.cutBase)
			rr.FromCheckpoint = true
			rr.Seq = st.seq
			rr.Epoch = st.epoch
		}
	}
	rr.Start = start
	rr.Result = recovery.Replay(sys, recovery.ReplayOptions{
		Log: o.Log, Data: o.Data, Dst: o.Dst,
		MarkerLimit: o.MarkerLimit, End: o.End, Start: start,
	})
	return rr, nil
}

func put32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func put64(b []byte, v uint64) {
	put32(b, uint32(v))
	put32(b[4:], uint32(v>>32))
}

func get32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func get64(b []byte) uint64 {
	return uint64(get32(b)) | uint64(get32(b[4:]))<<32
}
